package itcfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"itcfs/internal/prot"
	"itcfs/internal/proto"
	"itcfs/internal/rpc"
	"itcfs/internal/sim"
)

// provision builds a cell with one user volume and a logged-in workstation.
func provision(t *testing.T, mode Mode, clusters int) (*Cell, *Workstation) {
	t.Helper()
	cell := NewCell(CellConfig{Mode: mode, Clusters: clusters})
	cell.Run(func(p *sim.Proc) {
		admin, err := cell.Admin(p, 0)
		if err != nil {
			t.Errorf("admin: %v", err)
			return
		}
		if err := admin.NewUser(p, "satya", "pw", 0); err != nil {
			t.Errorf("new user: %v", err)
		}
	})
	ws := cell.AddWorkstation(0, "ws-test")
	cell.Run(func(p *sim.Proc) {
		if err := ws.Login(p, "satya", "pw"); err != nil {
			t.Errorf("login: %v", err)
		}
	})
	return cell, ws
}

func TestEndToEndWriteRead(t *testing.T) {
	for _, mode := range []Mode{Prototype, Revised} {
		t.Run(mode.String(), func(t *testing.T) {
			cell, ws := provision(t, mode, 1)
			var got []byte
			cell.Run(func(p *sim.Proc) {
				if err := ws.FS.WriteFile(p, "/vice/usr/satya/hello", []byte("end to end")); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				var err error
				got, err = ws.FS.ReadFile(p, "/vice/usr/satya/hello")
				if err != nil {
					t.Errorf("read: %v", err)
				}
			})
			if string(got) != "end to end" {
				t.Fatalf("got %q", got)
			}
		})
	}
}

func TestLoginWrongPasswordFails(t *testing.T) {
	cell, _ := provision(t, Prototype, 1)
	ws2 := cell.AddWorkstation(0, "ws2")
	var err error
	cell.Run(func(p *sim.Proc) {
		err = ws2.Login(p, "satya", "wrong-password")
	})
	if err == nil {
		t.Fatal("login with wrong password succeeded")
	}
}

func TestVirtualTimeAdvancesWithWork(t *testing.T) {
	cell, ws := provision(t, Prototype, 1)
	start := cell.Now()
	cell.Run(func(p *sim.Proc) {
		big := make([]byte, 1<<20)
		if err := ws.FS.WriteFile(p, "/vice/usr/satya/big", big); err != nil {
			t.Errorf("write: %v", err)
		}
	})
	elapsed := time.Duration(cell.Now() - start)
	// 1MB over a 10 Mbit LAN plus server disk time: comfortably >1s.
	if elapsed < time.Second {
		t.Fatalf("virtual time advanced only %v for a 1MB store", elapsed)
	}
}

func TestServerResourcesAccumulate(t *testing.T) {
	cell, ws := provision(t, Prototype, 1)
	cpuBefore := cell.Servers[0].CPU.BusyTime()
	cell.Run(func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			path := fmt.Sprintf("/vice/usr/satya/f%d", i)
			if err := ws.FS.WriteFile(p, path, []byte("data")); err != nil {
				t.Errorf("write: %v", err)
			}
		}
	})
	if cell.Servers[0].CPU.BusyTime() <= cpuBefore {
		t.Fatal("server CPU did not accumulate busy time")
	}
	if cell.Servers[0].Disk.BusyTime() == 0 {
		t.Fatal("server disk never used")
	}
}

func TestLocalFilesBypassVice(t *testing.T) {
	cell, ws := provision(t, Prototype, 1)
	served := cell.Servers[0].Endpoint.CallsTotal()
	cell.Run(func(p *sim.Proc) {
		if err := ws.FS.WriteFile(p, "/tmp/scratch", []byte("local only")); err != nil {
			// /tmp must exist first on this station.
			if err2 := ws.FS.Mkdir(p, "/tmp", 0o777); err2 != nil {
				t.Errorf("mkdir /tmp: %v", err2)
				return
			}
			if err := ws.FS.WriteFile(p, "/tmp/scratch", []byte("local only")); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
		got, err := ws.FS.ReadFile(p, "/tmp/scratch")
		if err != nil || string(got) != "local only" {
			t.Errorf("read: %q %v", got, err)
		}
	})
	if got := cell.Servers[0].Endpoint.CallsTotal(); got != served {
		t.Fatalf("local file I/O generated %d server calls", got-served)
	}
}

func TestSymbolicLinkIntoVice(t *testing.T) {
	cell, ws := provision(t, Prototype, 1)
	cell.Run(func(p *sim.Proc) {
		admin, _ := cell.Admin(p, 0)
		if err := admin.MkdirAll(p, "/unix/sun/bin"); err != nil {
			t.Errorf("mkdirall: %v", err)
			return
		}
		// Operator installs a shared binary.
		opWS := cell.AddWorkstation(0, "op-ws")
		if err := opWS.Login(p, "operator", "operator-password"); err != nil {
			t.Errorf("op login: %v", err)
			return
		}
		if err := opWS.FS.WriteFile(p, "/vice/unix/sun/bin/cc", []byte("ELF cc")); err != nil {
			t.Errorf("install cc: %v", err)
			return
		}
		// The workstation's /bin is a symlink into /vice (Figure 3-2).
		if err := ws.FS.SetupStandardLinks("sun"); err != nil {
			t.Errorf("links: %v", err)
			return
		}
		got, err := ws.FS.ReadFile(p, "/bin/cc")
		if err != nil || string(got) != "ELF cc" {
			t.Errorf("/bin/cc through symlink: %q %v", got, err)
		}
	})
}

func TestCrossClusterAccessCrossesBackbone(t *testing.T) {
	cell := NewCell(CellConfig{Mode: Prototype, Clusters: 2})
	cell.Run(func(p *sim.Proc) {
		admin, err := cell.Admin(p, 0)
		if err != nil {
			t.Errorf("admin: %v", err)
			return
		}
		if err := admin.NewUser(p, "satya", "pw", 0); err != nil {
			t.Errorf("new user: %v", err)
		}
	})
	// Workstation in cluster 1; satya's volume custodian is server0 in
	// cluster 0.
	ws := cell.AddWorkstation(1, "remote-ws")
	frames := cell.Net.CrossClusterFrames()
	cell.Run(func(p *sim.Proc) {
		if err := ws.Login(p, "satya", "pw"); err != nil {
			t.Errorf("login: %v", err)
			return
		}
		if err := ws.FS.WriteFile(p, "/vice/usr/satya/f", []byte("x")); err != nil {
			t.Errorf("write: %v", err)
		}
	})
	if cell.Net.CrossClusterFrames() <= frames {
		t.Fatal("cross-cluster file access produced no backbone traffic")
	}
}

func TestUserMobilityScenario(t *testing.T) {
	// The paper's mobility story: a user works in the office (cluster 0),
	// then uses a public workstation in a library (cluster 1), with only a
	// cache warm-up as the observable difference.
	for _, mode := range []Mode{Prototype, Revised} {
		t.Run(mode.String(), func(t *testing.T) {
			cell, office := provision(t, mode, 2)
			library := cell.AddWorkstation(1, "library-ws")
			cell.Run(func(p *sim.Proc) {
				if err := office.FS.WriteFile(p, "/vice/usr/satya/paper.mss", []byte("draft-1")); err != nil {
					t.Errorf("office write: %v", err)
					return
				}
				if err := library.Login(p, "satya", "pw"); err != nil {
					t.Errorf("library login: %v", err)
					return
				}
				got, err := library.FS.ReadFile(p, "/vice/usr/satya/paper.mss")
				if err != nil || string(got) != "draft-1" {
					t.Errorf("library read: %q %v", got, err)
					return
				}
				if err := library.FS.WriteFile(p, "/vice/usr/satya/paper.mss", []byte("draft-2")); err != nil {
					t.Errorf("library write: %v", err)
					return
				}
				got, err = office.FS.ReadFile(p, "/vice/usr/satya/paper.mss")
				if err != nil || string(got) != "draft-2" {
					t.Errorf("office re-read: %q %v", got, err)
				}
			})
		})
	}
}

func TestCacheHitsAvoidDataTraffic(t *testing.T) {
	cell, ws := provision(t, Revised, 1)
	cell.Run(func(p *sim.Proc) {
		if err := ws.FS.WriteFile(p, "/vice/usr/satya/f", bytes.Repeat([]byte("x"), 10000)); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		if _, err := ws.FS.ReadFile(p, "/vice/usr/satya/f"); err != nil {
			t.Errorf("warm read: %v", err)
		}
	})
	ws.Venus.ResetStats()
	before := cell.Servers[0].Endpoint.CallsTotal()
	cell.Run(func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			if _, err := ws.FS.ReadFile(p, "/vice/usr/satya/f"); err != nil {
				t.Errorf("read %d: %v", i, err)
			}
		}
	})
	st := ws.Venus.Stats()
	if st.Hits != 10 || st.Fetches != 0 {
		t.Fatalf("stats = %+v, want 10 pure hits", st)
	}
	if got := cell.Servers[0].Endpoint.CallsTotal(); got != before {
		t.Fatalf("%d server calls for fully cached reads in revised mode", got-before)
	}
}

func TestQuotaSurfacesToApplication(t *testing.T) {
	cell := NewCell(CellConfig{Mode: Prototype, Clusters: 1})
	cell.Run(func(p *sim.Proc) {
		admin, _ := cell.Admin(p, 0)
		if err := admin.NewUser(p, "satya", "pw", 1000); err != nil {
			t.Errorf("new user: %v", err)
		}
	})
	ws := cell.AddWorkstation(0, "ws")
	var err error
	cell.Run(func(p *sim.Proc) {
		if lerr := ws.Login(p, "satya", "pw"); lerr != nil {
			t.Errorf("login: %v", lerr)
			return
		}
		err = ws.FS.WriteFile(p, "/vice/usr/satya/big", make([]byte, 2000))
	})
	if !errors.Is(err, ErrQuota) {
		t.Fatalf("err = %v, want ErrQuota", err)
	}
}

func TestReadOnlyReplicaServedFromOwnCluster(t *testing.T) {
	cell := NewCell(CellConfig{Mode: Revised, Clusters: 2})
	cell.Run(func(p *sim.Proc) {
		admin, err := cell.Admin(p, 0)
		if err != nil {
			t.Errorf("admin: %v", err)
			return
		}
		if err := admin.MkdirAll(p, "/unix"); err != nil {
			t.Errorf("mkdir: %v", err)
			return
		}
		vid, err := admin.CreateVolume(p, "sys.bin", "/unix/bin", "operator", 0)
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		op := cell.AddWorkstation(0, "op-ws")
		if err := op.Login(p, "operator", "operator-password"); err != nil {
			t.Errorf("login: %v", err)
			return
		}
		if err := op.FS.WriteFile(p, "/vice/unix/bin/emacs", bytes.Repeat([]byte("e"), 50000)); err != nil {
			t.Errorf("install: %v", err)
			return
		}
		if _, err := admin.CloneVolume(p, vid, "/unix/bin-ro", "server1"); err != nil {
			t.Errorf("clone: %v", err)
			return
		}
		if err := admin.NewUser(p, "student", "pw", 0); err != nil {
			t.Errorf("user: %v", err)
		}
	})

	// A student in cluster 1 fetches the binary from the replica on its
	// own cluster server: no backbone crossing for the data.
	ws := cell.AddWorkstation(1, "dorm-ws")
	cell.Run(func(p *sim.Proc) {
		if err := ws.Login(p, "student", "pw"); err != nil {
			t.Errorf("login: %v", err)
		}
	})
	frames := cell.Net.CrossClusterFrames()
	var got []byte
	cell.Run(func(p *sim.Proc) {
		var err error
		got, err = ws.FS.ReadFile(p, "/vice/unix/bin-ro/emacs")
		if err != nil {
			t.Errorf("read: %v", err)
		}
	})
	if len(got) != 50000 {
		t.Fatalf("replica served %d bytes", len(got))
	}
	if crossed := cell.Net.CrossClusterFrames() - frames; crossed > 4 {
		// Location lookup may cross once; the 50 KB of data must not.
		t.Fatalf("replica read crossed the backbone %d times", crossed)
	}
}

func TestNegativeRightsRevokeInstantly(t *testing.T) {
	cell, ws := provision(t, Prototype, 1)
	mallory := cell.AddWorkstation(0, "mallory-ws")
	cell.Run(func(p *sim.Proc) {
		admin, _ := cell.Admin(p, 0)
		if err := admin.NewUser(p, "mallory", "pw", 0); err != nil {
			t.Errorf("user: %v", err)
			return
		}
		if err := mallory.Login(p, "mallory", "pw"); err != nil {
			t.Errorf("login: %v", err)
			return
		}
		if err := ws.FS.WriteFile(p, "/vice/usr/satya/doc", []byte("shared")); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		// Initially readable (AnyUser lr on home volumes).
		if _, err := mallory.FS.ReadFile(p, "/vice/usr/satya/doc"); err != nil {
			t.Errorf("initial read: %v", err)
			return
		}
		// satya adds a negative entry for mallory: instant revocation.
		acl := prot.NewACL()
		acl.Grant("satya", prot.RightsAll)
		acl.Grant(prot.AnyUser, prot.RightLookup|prot.RightRead)
		acl.Deny("mallory", prot.RightsAll)
		if err := ws.Venus.SetACL(p, "/usr/satya", proto.ACLEncode(acl)); err != nil {
			t.Errorf("setacl: %v", err)
			return
		}
		if _, err := mallory.FS.ReadFile(p, "/vice/usr/satya/doc2x"); !errors.Is(err, ErrNoEnt) && !errors.Is(err, ErrAccess) {
			t.Errorf("probe: %v", err)
		}
		if _, err := mallory.FS.Open(p, "/vice/usr/satya/doc", FlagRead); !errors.Is(err, ErrAccess) {
			t.Errorf("read after deny: %v, want ErrAccess", err)
		}
	})
}

func TestCallMixHistogramAvailable(t *testing.T) {
	cell, ws := provision(t, Prototype, 1)
	cell.Run(func(p *sim.Proc) {
		ws.FS.WriteFile(p, "/vice/usr/satya/a", []byte("1"))
		ws.FS.ReadFile(p, "/vice/usr/satya/a")
		ws.FS.ReadFile(p, "/vice/usr/satya/a")
		ws.FS.Stat(p, "/vice/usr/satya/a")
	})
	counts := cell.Servers[0].Endpoint.CallCounts()
	if counts[rpc.Op(proto.OpTestValid)] == 0 {
		t.Fatalf("no validations in histogram: %v", counts)
	}
}
