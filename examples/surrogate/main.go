// Surrogate: §3.3's answer for machines that cannot run Venus. A
// low-function workstation (the paper names IBM PCs and the Apple
// Macintosh) speaks a simple open/read-page/write-page protocol to a
// Surrogate server running on a full Virtue workstation — and is thereby
// "transparently accessing Vice files on account of a Virtue workstation's
// transparent Vice attachment."
//
//	go run ./examples/surrogate
package main

import (
	"fmt"
	"log"

	"itcfs"
	"itcfs/internal/baseline"
	"itcfs/internal/rpc"
	"itcfs/internal/sim"
	"itcfs/internal/virtue"
)

func main() {
	cell := itcfs.NewCell(itcfs.CellConfig{Mode: itcfs.Revised, Clusters: 1})

	cell.Run(func(p *sim.Proc) {
		admin, err := cell.Admin(p, 0)
		if err != nil {
			log.Fatal(err)
		}
		if err := admin.NewUser(p, "satya", "pw", 0); err != nil {
			log.Fatal(err)
		}
	})

	// A full Virtue workstation hosts the surrogate.
	host := cell.AddWorkstation(0, "surrogate-host")
	var sur *virtue.Surrogate
	cell.Run(func(p *sim.Proc) {
		if err := host.Login(p, "satya", "pw"); err != nil {
			log.Fatal(err)
		}
		sur = virtue.NewSurrogate(host.FS)
	})

	// The "PC" is attached to the surrogate host over a cheap link; here it
	// dispatches page-protocol requests straight into the surrogate. (The
	// paper imagined a machine with interfaces to both the campus LAN and
	// a cheap PC network.)
	pcConn := pcLink{sur: sur}
	pc := baseline.NewClient(pcConn)

	cell.Run(func(p *sim.Proc) {
		// The PC writes a spreadsheet into the shared name space...
		data := []byte("LOTUS 1-2-3 worksheet: budget figures for the ITC")
		if err := pc.WriteFile(p, "/vice/usr/satya/budget.wks", data); err != nil {
			log.Fatal(err)
		}
		fmt.Println("PC: wrote /vice/usr/satya/budget.wks through the surrogate")

		// ...which is a perfectly ordinary Vice file: the host workstation
		// (or any other) sees it at once.
		got, err := host.FS.ReadFile(p, "/vice/usr/satya/budget.wks")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Virtue host reads it back: %q\n", got)

		// And the PC reads shared files other workstations produced, page
		// by page, with Venus caching doing its work underneath.
		if err := host.FS.WriteFile(p, "/vice/usr/satya/memo.txt",
			[]byte("whole-file caching serves the PC too")); err != nil {
			log.Fatal(err)
		}
		memo, err := pc.ReadFile(p, "/vice/usr/satya/memo.txt")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("PC reads the memo: %q\n", memo)

		opens, reads, writes := sur.OpCounts()
		fmt.Printf("surrogate served %d opens, %d page reads, %d page writes\n",
			opens, reads, writes)
	})
}

// pcLink carries page-protocol calls from the PC into the surrogate.
type pcLink struct{ sur *virtue.Surrogate }

func (l pcLink) Call(p *sim.Proc, req rpc.Request) (rpc.Response, error) {
	return l.sur.Dispatcher().Dispatch(rpc.Ctx{User: "pc", Proc: p}, req), nil
}
