// Release: the orderly release of system software with volumes (§3.2,
// §5.3). System binaries live in a read-write volume; each release is an
// atomic, copy-on-write Clone — a frozen read-only snapshot — replicated to
// every cluster server so workstations fetch from their nearest replica.
// Multiple coexisting versions are simply multiple clones.
//
//	go run ./examples/release
package main

import (
	"fmt"
	"log"

	"itcfs"
	"itcfs/internal/sim"
)

func main() {
	cell := itcfs.NewCell(itcfs.CellConfig{Mode: itcfs.Revised, Clusters: 2})

	var binVol uint32
	cell.Run(func(p *sim.Proc) {
		admin, err := cell.Admin(p, 0)
		if err != nil {
			log.Fatal(err)
		}
		if err := admin.MkdirAll(p, "/unix"); err != nil {
			log.Fatal(err)
		}
		binVol, err = admin.CreateVolume(p, "sys.bin", "/unix/bin", "operator", 0)
		if err != nil {
			log.Fatal(err)
		}
		if err := admin.NewUser(p, "student", "pw", 0); err != nil {
			log.Fatal(err)
		}

		// The operations staff installs version 1 of the tools.
		op := cell.AddWorkstation(0, "op-console")
		if err := op.Login(p, "operator", "operator-password"); err != nil {
			log.Fatal(err)
		}
		for _, tool := range []string{"cc", "ld", "emacs"} {
			if err := op.FS.WriteFile(p, "/vice/unix/bin/"+tool, []byte(tool+" v1")); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Println("installed cc, ld, emacs (v1) into the read-write volume /unix/bin")

		// Release v1: one atomic clone, mounted at a versioned path and
		// replicated to the second cluster's server.
		cloneID, err := admin.CloneVolume(p, binVol, "/unix/bin-v1", cell.Servers[1].Vice.Name())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("released /unix/bin-v1 (read-only clone, volume %d, replica on %s)\n",
			cloneID, cell.Servers[1].Vice.Name())

		// Development continues on the read-write volume.
		if err := op.FS.WriteFile(p, "/vice/unix/bin/cc", []byte("cc v2 (experimental)")); err != nil {
			log.Fatal(err)
		}
		fmt.Println("development continues: /unix/bin/cc is now v2")
	})

	// A student in cluster 1 uses the released version. The fetch comes
	// from the replica on the student's own cluster server: no backbone
	// crossing for the data ("localize if possible", §4).
	student := cell.AddWorkstation(1, "dorm-ws")
	cell.Run(func(p *sim.Proc) {
		if err := student.Login(p, "student", "pw"); err != nil {
			log.Fatal(err)
		}
		frames0 := cell.Net.CrossClusterFrames()
		data, err := student.FS.ReadFile(p, "/vice/unix/bin-v1/cc")
		if err != nil {
			log.Fatal(err)
		}
		crossed := cell.Net.CrossClusterFrames() - frames0
		fmt.Printf("student runs the released compiler: %q (fetch crossed the backbone %d times)\n",
			data, crossed)

		// The release is immutable: even the operator cannot overwrite it.
		op2 := cell.AddWorkstation(1, "op-2")
		if err := op2.Login(p, "operator", "operator-password"); err != nil {
			log.Fatal(err)
		}
		err = op2.FS.WriteFile(p, "/vice/unix/bin-v1/cc", []byte("tamper"))
		fmt.Printf("attempt to modify the released clone: %v\n", err)

		// Both versions coexist; the experimental one is separate.
		dev, err := student.FS.ReadFile(p, "/vice/unix/bin/cc")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("meanwhile /unix/bin/cc (read-write volume) serves: %q\n", dev)
	})
}
