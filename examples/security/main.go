// Security: the mechanisms of §3.4 in action. Workstations are never
// trusted: every connection starts with a mutual-authentication handshake
// keyed by the user's password-derived key, and everything after travels
// encrypted. Access lists with groups govern sharing; a single negative
// entry revokes instantly without touching the replicated group database.
//
//	go run ./examples/security
package main

import (
	"errors"
	"fmt"
	"log"

	"itcfs"
	"itcfs/internal/prot"
	"itcfs/internal/proto"
	"itcfs/internal/sim"
)

func main() {
	cell := itcfs.NewCell(itcfs.CellConfig{Mode: itcfs.Prototype, Clusters: 1})

	cell.Run(func(p *sim.Proc) {
		admin, err := cell.Admin(p, 0)
		if err != nil {
			log.Fatal(err)
		}
		for _, u := range []string{"satya", "howard", "mallory"} {
			if err := admin.NewUser(p, u, "pw-"+u, 0); err != nil {
				log.Fatal(err)
			}
		}
		// A project group; groups may contain groups (Grapevine-style).
		if err := admin.Protect(p, prot.Mutation{Kind: prot.MutAddGroup, Name: "itc-project", Owner: "satya"}); err != nil {
			log.Fatal(err)
		}
		for _, m := range []string{"satya", "howard", "mallory"} {
			if err := admin.Protect(p, prot.Mutation{Kind: prot.MutAddMember, Name: "itc-project", Member: m}); err != nil {
				log.Fatal(err)
			}
		}
	})

	ws := map[string]*itcfs.Workstation{}
	for _, u := range []string{"satya", "howard", "mallory"} {
		ws[u] = cell.AddWorkstation(0, "ws-"+u)
	}

	cell.Run(func(p *sim.Proc) {
		// 1. Authentication: a wrong password never connects. The password
		// itself never crosses the (untrusted, encrypted) network — only a
		// challenge handshake keyed by its derived key.
		if err := ws["mallory"].Login(p, "satya", "guessed-password"); err != nil {
			fmt.Printf("1. login as satya with a wrong password: rejected (%v)\n", err)
		} else {
			log.Fatal("impersonation succeeded?!")
		}
		for _, u := range []string{"satya", "howard", "mallory"} {
			if err := ws[u].Login(p, u, "pw-"+u); err != nil {
				log.Fatal(err)
			}
		}

		// 2. Group-based sharing via access lists.
		acl := prot.NewACL()
		acl.Grant("satya", prot.RightsAll)
		acl.Grant("itc-project", prot.RightLookup|prot.RightRead|prot.RightWrite|prot.RightInsert|prot.RightLock)
		if err := ws["satya"].Venus.SetACL(p, "/usr/satya", proto.ACLEncode(acl)); err != nil {
			log.Fatal(err)
		}
		if err := ws["satya"].FS.WriteFile(p, "/vice/usr/satya/design.mss", []byte("v1")); err != nil {
			log.Fatal(err)
		}
		if _, err := ws["howard"].FS.ReadFile(p, "/vice/usr/satya/design.mss"); err != nil {
			log.Fatal(err)
		}
		fmt.Println("2. howard (itc-project) reads satya's design: allowed by the group grant")

		// 3. Rapid revocation: mallory is discovered to be untrustworthy.
		// Removing mallory from every group means updating the replicated
		// protection database; a negative entry on this access list takes
		// effect immediately at one site (§3.4).
		acl.Deny("mallory", prot.RightsAll)
		if err := ws["satya"].Venus.SetACL(p, "/usr/satya", proto.ACLEncode(acl)); err != nil {
			log.Fatal(err)
		}
		_, err := ws["mallory"].FS.ReadFile(p, "/vice/usr/satya/design.mss")
		if !errors.Is(err, itcfs.ErrAccess) {
			log.Fatalf("expected access denial, got %v", err)
		}
		fmt.Println("3. mallory: denied by a negative right, despite still being in itc-project")

		// 4. The group still works for everyone else.
		if err := ws["howard"].FS.WriteFile(p, "/vice/usr/satya/design.mss", []byte("v2 by howard")); err != nil {
			log.Fatal(err)
		}
		data, err := ws["satya"].FS.ReadFile(p, "/vice/usr/satya/design.mss")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("4. collaboration continues: satya reads %q\n", data)

		// 5. Advisory locking (§3.6) serializes cooperating writers.
		if err := ws["satya"].Venus.Lock(p, "/usr/satya/design.mss", true); err != nil {
			log.Fatal(err)
		}
		err = ws["howard"].Venus.Lock(p, "/usr/satya/design.mss", true)
		fmt.Printf("5. howard's write-lock while satya holds one: %v\n", err)
		if err := ws["satya"].Venus.Unlock(p, "/usr/satya/design.mss"); err != nil {
			log.Fatal(err)
		}
	})
}
