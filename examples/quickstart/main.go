// Quickstart: build a one-cluster cell, provision a user, and share files
// between two workstations through the Vice shared name space.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"itcfs"
	"itcfs/internal/sim"
)

func main() {
	// A cell is a complete installation: cluster network, Vice servers,
	// replicated location and protection databases, a root volume.
	cell := itcfs.NewCell(itcfs.CellConfig{
		Mode:     itcfs.Revised, // callbacks, FIDs, client-side pathname walks
		Clusters: 1,
	})

	// Provision a user: an entry in the protection database plus a home
	// volume mounted at /usr/satya in the shared space.
	cell.Run(func(p *sim.Proc) {
		admin, err := cell.Admin(p, 0)
		if err != nil {
			log.Fatal(err)
		}
		if err := admin.NewUser(p, "satya", "secret", 10<<20); err != nil {
			log.Fatal(err)
		}
	})

	// Two workstations. Each has its own local disk; the shared space
	// appears under /vice on both.
	office := cell.AddWorkstation(0, "office")
	home := cell.AddWorkstation(0, "home")

	cell.Run(func(p *sim.Proc) {
		if err := office.Login(p, "satya", "secret"); err != nil {
			log.Fatal(err)
		}
		if err := home.Login(p, "satya", "secret"); err != nil {
			log.Fatal(err)
		}

		// Write at the office...
		err := office.FS.WriteFile(p, "/vice/usr/satya/paper.mss",
			[]byte("Caching of entire files at workstations is a key element in this design."))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%v] office: wrote /vice/usr/satya/paper.mss\n", p.Now())

		// ...and read at home. Venus fetches the whole file into the home
		// workstation's cache; subsequent reads are purely local.
		data, err := home.FS.ReadFile(p, "/vice/usr/satya/paper.mss")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%v] home:   read %d bytes: %q\n", p.Now(), len(data), data)

		home.Venus.ResetStats()
		for i := 0; i < 3; i++ {
			if _, err := home.FS.ReadFile(p, "/vice/usr/satya/paper.mss"); err != nil {
				log.Fatal(err)
			}
		}
		st := home.Venus.Stats()
		fmt.Printf("[%v] home:   3 re-reads: %d cache hits, %d fetches — no server traffic\n",
			p.Now(), st.Hits, st.Fetches)

		// Local files never touch Vice.
		if err := home.FS.Mkdir(p, "/tmp", 0o777); err != nil {
			log.Fatal(err)
		}
		if err := home.FS.WriteFile(p, "/tmp/scratch", []byte("workstation-private")); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%v] home:   /tmp/scratch stays on the local disk\n", p.Now())
	})

	fmt.Printf("\nserver handled %d calls in %v of virtual time\n",
		cell.Servers[0].Endpoint.CallsTotal(), cell.Now())
}
