// Mobility: the paper's central user story (§2.2, §3.2). A student works at
// a dormitory workstation in one cluster, then sits down at a library
// workstation in another cluster. Every file is reachable unchanged; the
// only observable difference is the cache warm-up at the new workstation
// and slightly slower cross-cluster validation.
//
//	go run ./examples/mobility
package main

import (
	"fmt"
	"log"
	"time"

	"itcfs"
	"itcfs/internal/sim"
)

func main() {
	cell := itcfs.NewCell(itcfs.CellConfig{Mode: itcfs.Revised, Clusters: 2})

	cell.Run(func(p *sim.Proc) {
		admin, err := cell.Admin(p, 0)
		if err != nil {
			log.Fatal(err)
		}
		// The student's volume is placed on the dorm cluster's server —
		// custodian assignment localizes the common case (§3.1).
		if _, err := admin.NewUserAt(p, "student", "pw", 0, cell.Servers[1].Vice.Name()); err != nil {
			log.Fatal(err)
		}
	})

	dorm := cell.AddWorkstation(1, "dorm-ws")
	library := cell.AddWorkstation(0, "library-ws")

	timeRead := func(p *sim.Proc, ws *itcfs.Workstation, path string) time.Duration {
		t0 := p.Now()
		if _, err := ws.FS.ReadFile(p, path); err != nil {
			log.Fatal(err)
		}
		return p.Now().Sub(t0)
	}

	cell.Run(func(p *sim.Proc) {
		if err := dorm.Login(p, "student", "pw"); err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			path := fmt.Sprintf("/vice/usr/student/essay%d.txt", i)
			if err := dorm.FS.WriteFile(p, path, make([]byte, 6<<10)); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Println("dorm: wrote 5 essays to /vice/usr/student (custodian: dorm cluster server)")
		warm := timeRead(p, dorm, "/vice/usr/student/essay0.txt")
		fmt.Printf("dorm: warm read takes %v (pure cache hit)\n", warm)

		// The student walks to the library — a different cluster, a
		// workstation they have never used.
		if err := library.Login(p, "student", "pw"); err != nil {
			log.Fatal(err)
		}
		cold := timeRead(p, library, "/vice/usr/student/essay0.txt")
		fmt.Printf("library: first read takes %v (cache warm-up, crosses the backbone)\n", cold)
		warmAway := timeRead(p, library, "/vice/usr/student/essay0.txt")
		fmt.Printf("library: second read takes %v (cached locally now)\n", warmAway)

		// Edits made at the library are immediately visible back at the
		// dorm: the store on close reaches the custodian, which breaks the
		// dorm workstation's callback.
		if err := library.FS.WriteFile(p, "/vice/usr/student/essay0.txt",
			[]byte("revised at the library")); err != nil {
			log.Fatal(err)
		}
		data, err := dorm.FS.ReadFile(p, "/vice/usr/student/essay0.txt")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("dorm: re-read sees %q\n", data)
		fmt.Printf("dorm: venus recorded %d callback break(s)\n", dorm.Venus.Stats().CallbackBreaks)
	})

	fmt.Printf("\nbackbone carried %d cross-cluster frames\n", cell.Net.CrossClusterFrames())
}
