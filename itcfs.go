// Package itcfs is a from-scratch implementation of the ITC Distributed
// File System ("The ITC Distributed File System: Principles and Design",
// Satyanarayanan et al., SOSP 1985) — the system that became AFS.
//
// The package assembles complete cells: a simulated campus network of
// clusters bridged to a backbone (netsim), Vice cluster servers holding the
// shared name space in volumes, and Virtue workstations whose Venus cache
// managers keep whole-file copies on local disks. Authentication,
// end-to-end encryption, access lists with negative rights, callbacks,
// volumes with read-only clones, advisory locks and the replicated location
// and protection databases are all implemented; both the paper's prototype
// (check-on-open, pathname servers) and its revised design (callbacks,
// FIDs, client-side traversal) are selectable per cell.
//
// Cells run in deterministic virtual time on a discrete-event kernel, which
// is what lets the benchmark harness regenerate the paper's evaluation
// (server utilization, call mix, cache hit ratios, the five-phase
// benchmark) on a laptop. The same Vice code also serves real TCP clients
// through cmd/itcfsd.
//
// A minimal session:
//
//	cell := itcfs.NewCell(itcfs.CellConfig{Clusters: 1, Mode: itcfs.Revised})
//	cell.AddUser("satya", "password")
//	ws := cell.AddWorkstation(0, "ws1")
//	cell.Run(func(p *sim.Proc) {
//		ws.Login(p, "satya", "password")
//		ws.FS.WriteFile(p, "/vice/usr/satya/notes", []byte("hello"))
//	})
package itcfs

import (
	"fmt"
	"time"

	"itcfs/internal/netsim"
	"itcfs/internal/prot"
	"itcfs/internal/proto"
	"itcfs/internal/replica"
	"itcfs/internal/rpc"
	"itcfs/internal/secure"
	"itcfs/internal/sim"
	"itcfs/internal/store"
	"itcfs/internal/trace"
	"itcfs/internal/unixfs"
	"itcfs/internal/venus"
	"itcfs/internal/vice"
	"itcfs/internal/virtue"
	"itcfs/internal/volume"
	"itcfs/internal/wire"
)

// Mode re-exports the implementation mode.
type Mode = vice.Mode

// Modes.
const (
	Prototype = vice.Prototype
	Revised   = vice.Revised
)

// Commonly needed names re-exported for callers of the public API.
var (
	ErrAccess   = proto.ErrAccess
	ErrNoEnt    = proto.ErrNoEnt
	ErrQuota    = proto.ErrQuota
	ErrLocked   = proto.ErrLocked
	ErrReadOnly = proto.ErrReadOnly
	ErrOffline  = proto.ErrOffline
)

// Stats re-exports Venus's counters.
type Stats = venus.Stats

// Open flags, re-exported from Venus.
const (
	FlagRead   = venus.FlagRead
	FlagWrite  = venus.FlagWrite
	FlagCreate = venus.FlagCreate
	FlagTrunc  = venus.FlagTrunc
)

// CellConfig sizes a cell.
type CellConfig struct {
	Mode     Mode
	Clusters int // one cluster server per cluster
	// Workstations initially added per cluster (more can be added later).
	WorkstationsPerCluster int
	Net                    netsim.Config // zero value = ITCDefaults
	Costs                  *CostConfig   // nil = DefaultCosts
	// CacheFiles / CacheBytes override Venus cache limits (0 = defaults).
	CacheFiles int
	CacheBytes int64
	// OperatorPassword sets the bootstrap operations account ("operator").
	OperatorPassword string

	// Fault-tolerance knobs. Zero values preserve the default behaviour
	// (long timeouts, no retries, callbacks trusted forever).
	//
	// CallTimeout overrides the per-call RPC timeout on every endpoint.
	CallTimeout time.Duration
	// Retry configures RPC retransmission with exponential backoff on
	// every endpoint (servers and workstations alike).
	Retry rpc.RetryPolicy
	// CallbackTTL bounds how long Venus trusts a callback promise without
	// revalidating (revised mode; see venus.Config.CallbackTTL).
	CallbackTTL time.Duration
	// ReconnectRetries lets Venus redial a server and re-issue a call
	// after a transport failure (see venus.Config.ReconnectRetries).
	ReconnectRetries int

	// Batching ablation knobs (E14). Zero values keep batching on.
	//
	// UnbatchedBreaks forces servers to send one callback RPC per broken
	// promise instead of coalescing per-client BulkBreak batches.
	UnbatchedBreaks bool
	// RevalidateBatch caps entries per BulkTestValid sweep RPC (0 = the
	// Venus default; 1 = one legacy TestValid per entry, unbatched).
	RevalidateBatch int
	// BreakWindow widens the servers' callback coalescing window (0 = the
	// vice default): updates wait up to this long extra before replying so
	// concurrent updates' breaks to one workstation share an RPC.
	BreakWindow time.Duration

	// Observability. Both default off, costing nothing on the hot paths.
	//
	// Trace records causally linked spans across Venus, the RPC transport,
	// the network and Vice, in virtual time: identical seeds yield
	// byte-identical exported traces. Read them from Cell.Tracer.
	Trace bool
	// TraceSample keeps every nth root operation when tracing (0 or 1 =
	// keep all). Sampling decides per operation, so a kept operation is
	// always complete.
	TraceSample int
	// TracePolicy, when set, replaces TraceSample with the full deterministic
	// sampling policy: seeded per-op-class rates and slow always-keep
	// thresholds (see trace.SamplePolicy). Ignored unless Trace is set.
	TracePolicy *trace.SamplePolicy
	// SeriesTopK bounds per-volume series cardinality in StartSampling: each
	// sampling window only the K busiest volumes keep their own ops/latency
	// series, the rest fold into a "vice.vol.other.*" series. 0 = the default
	// budget (trace.DefaultSeriesTopK); negative = unbounded (the pre-collapse
	// behaviour).
	SeriesTopK int
	// Metrics, when set, receives counters and histograms from every layer
	// (cache hits, RPC latency, link utilization, per-volume service time).
	Metrics *trace.Registry
	// FlightEvents, when positive, attaches a flight recorder retaining that
	// many operational events (RPC retries, callback break storms, salvages,
	// degraded-mode entry/exit, reconnect sweeps) with virtual timestamps.
	// Read it from Cell.Flight.
	FlightEvents int

	// Store, when set, supplies a durable store per server (argument is the
	// server index; return nil for volatile). The default — nil everywhere —
	// keeps volumes in memory, exactly the pre-durability behaviour; attach
	// memstore.New() to journal through the store without touching disk, or
	// a walstore for real files. The simulator's determinism is unaffected
	// either way (see TestStoreDeterminism).
	Store func(server int) store.Store

	// Blocks, when set, is a cell-wide content-addressed block index: every
	// server deduplicates read-only clone/replica content through it, and
	// every Venus interns fetched file data into it, so N replicas of the
	// system binaries cost one copy of each distinct block. Nil (the
	// default) disables dedup entirely.
	Blocks *replica.Index
}

// Server is one Vice cluster server with its simulated devices.
type Server struct {
	Vice     *vice.Server
	Endpoint *rpc.Endpoint
	Node     *netsim.Node
	Cluster  *netsim.Cluster
	CPU      *sim.Resource
	Disk     *sim.Resource
}

// Workstation is one Virtue workstation.
type Workstation struct {
	Name     string
	Node     *netsim.Node
	Cluster  *netsim.Cluster
	Endpoint *rpc.Endpoint
	Local    *unixfs.FS
	Venus    *venus.Venus
	FS       *virtue.FS

	cell *Cell
	key  secure.Key
}

// Cell is a complete ITC file system installation.
type Cell struct {
	Kernel   *sim.Kernel
	Net      *netsim.Network
	Servers  []*Server
	Clusters []*netsim.Cluster
	Mode     Mode
	// Tracer is non-nil when CellConfig.Trace was set; Tracer.Spans() holds
	// every finished span after a run.
	Tracer *trace.Tracer
	// Metrics echoes CellConfig.Metrics.
	Metrics *trace.Registry
	// Flight is the cell-wide flight recorder, non-nil when
	// CellConfig.FlightEvents was positive.
	Flight *trace.Recorder
	// Sampler is the time-series sampler installed by StartSampling (nil
	// before the first call).
	Sampler *trace.Sampler

	cfg       CellConfig
	costs     CostConfig
	nextVol   uint32
	serverKey secure.Key
	wsCount   int
	workst    []*Workstation
}

// NewCell builds and bootstraps a cell: clusters, servers, replicated
// databases, the root volume, and inter-server connections. It runs the
// simulation kernel briefly to complete the bootstrap handshakes; the
// returned cell's clock sits just past that bootstrap.
func NewCell(cfg CellConfig) *Cell {
	if cfg.Clusters <= 0 {
		cfg.Clusters = 1
	}
	if cfg.Net.ClusterBandwidth == 0 {
		cfg.Net = netsim.ITCDefaults()
	}
	if cfg.OperatorPassword == "" {
		cfg.OperatorPassword = "operator-password"
	}
	costs := DefaultCosts()
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}
	k := sim.NewKernel()
	c := &Cell{
		Kernel:  k,
		Net:     netsim.New(k, cfg.Net),
		Mode:    cfg.Mode,
		cfg:     cfg,
		costs:   costs,
		nextVol: 1,
	}
	if cfg.Trace {
		c.Tracer = trace.New(func() sim.Time { return k.Now() })
		if cfg.TracePolicy != nil {
			c.Tracer.SetPolicy(*cfg.TracePolicy)
		} else {
			c.Tracer.SetSample(cfg.TraceSample)
		}
	}
	c.Metrics = cfg.Metrics
	if c.Metrics != nil {
		c.Net.SetMetrics(c.Metrics)
	}
	if cfg.FlightEvents > 0 {
		c.Flight = trace.NewRecorder(cfg.FlightEvents, func() sim.Time { return k.Now() })
		c.Flight.AttachMetrics(c.Metrics)
	}
	serverKey, err := secure.NewSessionKey()
	if err != nil {
		panic(err)
	}
	c.serverKey = serverKey

	// Bootstrap protection database, replicated to every server.
	base := prot.NewDB()
	mustApply(base, prot.Mutation{Kind: prot.MutAddUser, Name: vice.ServerUser, Key: serverKey})
	mustApply(base, prot.Mutation{Kind: prot.MutAddUser, Name: "operator",
		Key: secure.DeriveKey("operator", cfg.OperatorPassword)})
	mustApply(base, prot.Mutation{Kind: prot.MutAddGroup, Name: vice.AdminGroup, Owner: "operator"})
	mustApply(base, prot.Mutation{Kind: prot.MutAddMember, Name: vice.AdminGroup, Member: "operator"})

	// Whole-file operations on multi-megabyte files legitimately take
	// minutes at 1985 speeds (§2.2 bounds the design to files of a few
	// MB); the default timeout must outlast them.
	callTimeout := 15 * time.Minute
	if cfg.CallTimeout != 0 {
		callTimeout = cfg.CallTimeout
	}

	clock := func() int64 { return int64(k.Now()) }
	for i := 0; i < cfg.Clusters; i++ {
		cl := c.Net.AddCluster(fmt.Sprintf("cluster%d", i))
		c.Clusters = append(c.Clusters, cl)
		node := c.Net.AddNode(fmt.Sprintf("server%d", i), cl)
		cpu := sim.NewResource(k, fmt.Sprintf("server%d-cpu", i))
		disk := sim.NewResource(k, fmt.Sprintf("server%d-disk", i))
		db := prot.NewDB()
		if err := db.LoadSnapshot(base.Snapshot()); err != nil {
			panic(err)
		}
		vs := vice.New(vice.Config{
			Name:            fmt.Sprintf("server%d", i),
			Mode:            cfg.Mode,
			DB:              db,
			Loc:             vice.NewLocDB(),
			Clock:           clock,
			ProtAuthority:   i == 0,
			AllocVolID:      c.allocVol,
			Metrics:         cfg.Metrics,
			Flight:          c.Flight,
			UnbatchedBreaks: cfg.UnbatchedBreaks,
			BreakWindow:     cfg.BreakWindow,
			Store:           storeFor(cfg.Store, i),
			Blocks:          cfg.Blocks,
		})
		ep := rpc.NewEndpoint(c.Net, node, rpc.EndpointConfig{
			Keys:        db.LookupKey,
			Server:      vs.Dispatcher(),
			Model:       costs.Model(cfg.Mode),
			Meters:      rpc.Meters{CPU: cpu, Disk: disk},
			AuthCost:    rpc.Cost{CPU: costs.AuthCPU},
			CallTimeout: callTimeout,
			Retry:       cfg.Retry,
			Tracer:      c.Tracer,
			Metrics:     cfg.Metrics,
			Flight:      c.Flight,
			Observe:     vs.ObserveCall,
		})
		c.Servers = append(c.Servers, &Server{
			Vice: vs, Endpoint: ep, Node: node, Cluster: cl, CPU: cpu, Disk: disk,
		})
	}

	// Root volume on server0, location known everywhere.
	rootACL := prot.NewACL()
	rootACL.Grant(prot.AnyUser, prot.RightLookup|prot.RightRead)
	rootACL.Grant(vice.AdminGroup, prot.RightsAll)
	root := volume.New(1, "root", rootACL, 0, "operator", clock)
	if err := c.Servers[0].Vice.AddVolume(root); err != nil {
		panic(err)
	}
	le := proto.LocEntry{Prefix: "/", Volume: 1, Custodian: c.Servers[0].Vice.Name()}
	for _, s := range c.Servers {
		s.Vice.Loc().Install([]proto.LocEntry{le}, nil)
	}

	// Wire servers to each other over the network, authenticated as the
	// server identity.
	c.Run(func(p *sim.Proc) {
		for i, from := range c.Servers {
			for j, to := range c.Servers {
				if i == j {
					continue
				}
				conn, err := from.Endpoint.Dial(p, to.Node.ID, vice.ServerUser, serverKey)
				if err != nil {
					panic(fmt.Sprintf("itcfs: server peering: %v", err))
				}
				from.Vice.AddPeer(to.Vice.Name(), conn)
			}
		}
	})

	for i := 0; i < cfg.Clusters; i++ {
		for w := 0; w < cfg.WorkstationsPerCluster; w++ {
			c.AddWorkstation(i, fmt.Sprintf("ws%d-%d", i, w))
		}
	}
	return c
}

func mustApply(db *prot.DB, m prot.Mutation) {
	if err := db.Apply(m); err != nil {
		panic(fmt.Sprintf("itcfs: bootstrap: %v", err))
	}
}

// storeFor indirects through the optional per-server store factory.
func storeFor(f func(int) store.Store, i int) store.Store {
	if f == nil {
		return nil
	}
	return f(i)
}

func (c *Cell) allocVol() uint32 {
	c.nextVol++
	return c.nextVol
}

// Run spawns fn as a simulated process and drives the kernel until all
// pending events drain. It is the main entry point for scripted scenarios.
func (c *Cell) Run(fn func(p *sim.Proc)) {
	c.Kernel.Spawn("cell-run", fn)
	c.Kernel.Run()
}

// RunFor drives the kernel for a span of virtual time.
func (c *Cell) RunFor(d time.Duration) {
	c.Kernel.RunUntil(c.Kernel.Now().Add(d))
}

// Now returns the cell's virtual time.
func (c *Cell) Now() sim.Time { return c.Kernel.Now() }

// ServerCPUSeries names the sampled per-window CPU busy-time series (in
// nanoseconds of busy time per window) for a server; divide by the sampling
// cadence for utilization. The overload detector reads it by this name.
// These helpers delegate to the canonical name table in trace.
func ServerCPUSeries(server string) string { return trace.ServerCPUSeries(server) }

// ServerDiskSeries names the sampled per-window disk busy-time series.
func ServerDiskSeries(server string) string { return trace.ServerDiskSeries(server) }

// ServerQueueSeries names the sampled instantaneous CPU queue-depth series —
// the LWP backlog of §5.2's saturated servers.
func ServerQueueSeries(server string) string { return trace.ServerQueueSeries(server) }

// LinkBusySeries names the sampled per-window busy-time series for a network
// link (the backbone or a cluster LAN).
func LinkBusySeries(link string) string { return trace.LinkBusySeries(link) }

// StartSampling installs a time-series sampler over the cell: every registry
// instrument plus probes for per-server CPU/disk busy time and queue depth
// and per-link busy time, sampled every cadence of virtual time until
// horizon from now. The horizon bounds the tick events so Kernel.Run still
// terminates once workload drains. Sampling is read-only: it never perturbs
// any workload outcome, only adds tick events to the schedule. The sampler
// is also stored in Cell.Sampler.
func (c *Cell) StartSampling(every, horizon time.Duration) *trace.Sampler {
	s := trace.NewSampler(c.Metrics, every, 0)
	if c.cfg.SeriesTopK >= 0 {
		// Bound per-volume series cardinality: the registry still tracks
		// every volume's instruments, but only the top-K per window get their
		// own rings; the rest fold into "vice.vol.other.*".
		s.Collapse("vice.vol.", ".ops", c.cfg.SeriesTopK)
		s.Collapse("vice.vol.", ".latency", c.cfg.SeriesTopK)
	}
	if c.Tracer != nil {
		s.AttachExemplars(c.Tracer.TakeExemplars)
	}
	for _, srv := range c.Servers {
		srv := srv
		s.AddCumulative(ServerCPUSeries(srv.Vice.Name()), func() int64 { return int64(srv.CPU.BusyTime()) })
		s.AddCumulative(ServerDiskSeries(srv.Vice.Name()), func() int64 { return int64(srv.Disk.BusyTime()) })
		s.AddInstant(ServerQueueSeries(srv.Vice.Name()), func() int64 { return int64(srv.CPU.QueueLen()) })
	}
	for _, l := range c.Net.Links() {
		l := l
		s.AddCumulative(LinkBusySeries(l.Name()), func() int64 { return int64(l.BusyTime()) })
	}
	s.Start(c.Kernel, horizon)
	c.Sampler = s
	return s
}

// AddUser registers a user (and password) in every server's protection
// database replica. Bootstrap-time convenience; at runtime use the
// protection server through Admin connections.
func (c *Cell) AddUser(name, password string) {
	m := prot.Mutation{Kind: prot.MutAddUser, Name: name, Key: secure.DeriveKey(name, password)}
	for _, s := range c.Servers {
		if err := s.Vice.DB().Apply(m); err != nil {
			panic(fmt.Sprintf("itcfs: AddUser(%s): %v", name, err))
		}
	}
}

// AddGroup registers a group and its members on every replica.
func (c *Cell) AddGroup(name string, members ...string) {
	for _, s := range c.Servers {
		if err := s.Vice.DB().Apply(prot.Mutation{Kind: prot.MutAddGroup, Name: name}); err != nil {
			panic(fmt.Sprintf("itcfs: AddGroup(%s): %v", name, err))
		}
		for _, mem := range members {
			if err := s.Vice.DB().Apply(prot.Mutation{Kind: prot.MutAddMember, Name: name, Member: mem}); err != nil {
				panic(fmt.Sprintf("itcfs: AddGroup(%s)+=%s: %v", name, mem, err))
			}
		}
	}
}

// Workstations returns every workstation added so far.
func (c *Cell) Workstations() []*Workstation { return c.workst }

// AddWorkstation attaches a new Virtue workstation to a cluster.
func (c *Cell) AddWorkstation(cluster int, name string) *Workstation {
	cl := c.Clusters[cluster]
	node := c.Net.AddNode(name, cl)
	local := unixfs.New(func() int64 { return int64(c.Kernel.Now()) })

	ws := &Workstation{Name: name, Node: node, Cluster: cl, Local: local, cell: c}

	// The workstation's callback service.
	callTimeout := 15 * time.Minute
	if c.cfg.CallTimeout != 0 {
		callTimeout = c.cfg.CallTimeout
	}
	cbServer := rpc.NewServer()
	ws.Endpoint = rpc.NewEndpoint(c.Net, node, rpc.EndpointConfig{
		Server:      cbServer,
		CallTimeout: callTimeout,
		Retry:       c.cfg.Retry,
		Tracer:      c.Tracer,
		Metrics:     c.cfg.Metrics,
		Flight:      c.Flight,
	})

	home := c.Servers[cluster]
	var v *venus.Venus
	v = venus.New(venus.Config{
		Mode:             c.Mode,
		Machine:          name,
		Local:            local,
		HomeServer:       home.Vice.Name(),
		MaxFiles:         c.cfg.CacheFiles,
		MaxBytes:         c.cfg.CacheBytes,
		CallbackTTL:      c.cfg.CallbackTTL,
		ReconnectRetries: c.cfg.ReconnectRetries,
		RevalidateBatch:  c.cfg.RevalidateBatch,
		Blocks:           c.cfg.Blocks,
		Tracer:           c.Tracer,
		Metrics:          c.cfg.Metrics,
		Flight:           c.Flight,
		Connect: func(p *sim.Proc, server string) (venus.Conn, error) {
			srv := c.serverByName(server)
			if srv == nil {
				return nil, fmt.Errorf("itcfs: unknown server %s", server)
			}
			return ws.Endpoint.Dial(p, srv.Node.ID, v.User(), ws.key)
		},
	})
	ws.Venus = v
	cbServer.Handle(rpc.Op(proto.OpCallbackBreak), v.HandleCallbackBreak)
	cbServer.Handle(rpc.Op(proto.OpBulkBreak), v.HandleBulkBreak)
	ws.FS = virtue.New(local, v)
	c.workst = append(c.workst, ws)
	return ws
}

// CrashServer fails server i: its node stops transmitting and receiving,
// every open connection into and out of it is lost, and the in-memory
// volatile state — callback promises and the lock table — dies with the
// process. Volumes survive on disk (§3.3: "the callback mechanism ... is
// reinitialized when a server is restarted").
func (c *Cell) CrashServer(i int) {
	s := c.Servers[i]
	c.Net.SetNodeDown(s.Node.ID, true)
	s.Endpoint.Crash()
	s.Vice.Crash()
}

// RestartServer brings a crashed server back: its node rejoins the network
// with empty callback and lock tables, and a background process re-peers it
// with every other server (both directions, since the peers' connections
// into it died too). Clients rediscover it through Venus's reconnect path.
func (c *Cell) RestartServer(i int) {
	s := c.Servers[i]
	c.Net.SetNodeDown(s.Node.ID, false)
	s.Endpoint.Restart()
	c.Kernel.Spawn(fmt.Sprintf("repeer-%s", s.Vice.Name()), func(p *sim.Proc) {
		for j, other := range c.Servers {
			if j == i {
				continue
			}
			if conn, err := s.Endpoint.Dial(p, other.Node.ID, vice.ServerUser, c.serverKey); err == nil {
				s.Vice.AddPeer(other.Vice.Name(), conn)
			}
			if conn, err := other.Endpoint.Dial(p, s.Node.ID, vice.ServerUser, c.serverKey); err == nil {
				other.Vice.AddPeer(s.Vice.Name(), conn)
			}
		}
	})
}

func (c *Cell) serverByName(name string) *Server {
	for _, s := range c.Servers {
		if s.Vice.Name() == name {
			return s
		}
	}
	return nil
}

// Login authenticates user at this workstation; subsequent file operations
// run on the user's behalf. The password never leaves the workstation —
// only the key derived from it is used in the handshake (§3.4).
func (ws *Workstation) Login(p *sim.Proc, user, password string) error {
	ws.key = secure.DeriveKey(user, password)
	ws.Venus.Login(user)
	// Probe the home server so a bad password fails here, not on first use.
	_, err := ws.Venus.Stat(p, "/")
	if err != nil {
		ws.Venus.Login("")
		return fmt.Errorf("itcfs: login %s: %w", user, err)
	}
	return nil
}

// Admin is an authenticated administrative connection to a server.
type Admin struct {
	cell *Cell
	conn *rpc.SimConn
}

// Admin dials server (index) as the operator account.
func (c *Cell) Admin(p *sim.Proc, server int) (*Admin, error) {
	// The admin connection originates from the server's own node — the
	// operations console lives in the machine room.
	s := c.Servers[server]
	conn, err := s.Endpoint.Dial(p, s.Node.ID, "operator",
		secure.DeriveKey("operator", c.cfg.OperatorPassword))
	if err != nil {
		return nil, err
	}
	return &Admin{cell: c, conn: conn}, nil
}

func (a *Admin) call(p *sim.Proc, op uint16, body []byte) (rpc.Response, error) {
	resp, err := a.conn.Call(p, rpc.Request{Op: rpc.Op(op), Body: body})
	if err != nil {
		return resp, err
	}
	if !resp.OK() {
		return resp, proto.CodeToErr(resp.Code, string(resp.Body))
	}
	return resp, nil
}

// CreateVolume creates a volume mounted at path, owned by owner. Parent
// directories must exist; the mount entry lands in the parent's volume.
func (a *Admin) CreateVolume(p *sim.Proc, name, path, owner string, quota int64) (uint32, error) {
	resp, err := a.call(p, proto.OpVolCreate,
		proto.Marshal(proto.VolCreateArgs{Name: name, Path: path, Quota: quota, Owner: owner}))
	if err != nil {
		return 0, err
	}
	vs, err := proto.Unmarshal(resp.Body, proto.DecodeVolStatusReply)
	if err != nil {
		return 0, err
	}
	return vs.Volume, nil
}

// MkdirAll creates path and missing ancestors in the shared space.
func (a *Admin) MkdirAll(p *sim.Proc, path string) error {
	parts := vice.PathWithin(proto.LocEntry{Prefix: "/"}, path)
	cur := ""
	for _, part := range parts {
		parent := cur
		if parent == "" {
			parent = "/"
		}
		cur = cur + "/" + part
		resp, err := a.conn.Call(p, rpc.Request{
			Op:   rpc.Op(proto.OpMakeDir),
			Body: proto.Marshal(proto.NameArgs{Dir: proto.Ref{Path: parent}, Name: part, Mode: 0o755}),
		})
		if err != nil {
			return err
		}
		if !resp.OK() && resp.Code != proto.CodeExist {
			return proto.CodeToErr(resp.Code, string(resp.Body))
		}
	}
	return nil
}

// CloneVolume freezes a read-only snapshot of vol, mounts it at path (if
// non-empty) and replicates it to the named servers.
func (a *Admin) CloneVolume(p *sim.Proc, vol uint32, path string, replicas ...string) (uint32, error) {
	resp, err := a.call(p, proto.OpVolClone,
		proto.Marshal(proto.VolCloneArgs{Volume: vol, Path: path, Replicas: replicas}))
	if err != nil {
		return 0, err
	}
	vs, err := proto.Unmarshal(resp.Body, proto.DecodeVolStatusReply)
	if err != nil {
		return 0, err
	}
	return vs.Volume, nil
}

// MoveVolume reassigns vol to the named custodian.
func (a *Admin) MoveVolume(p *sim.Proc, vol uint32, target string) error {
	_, err := a.call(p, proto.OpVolMove, proto.Marshal(proto.VolMoveArgs{Volume: vol, Target: target}))
	return err
}

// SetQuota changes a volume's byte quota.
func (a *Admin) SetQuota(p *sim.Proc, vol uint32, quota int64) error {
	_, err := a.call(p, proto.OpVolSetQuota, proto.Marshal(proto.VolSetQuotaArgs{Volume: vol, Quota: quota}))
	return err
}

// VolumeStatus queries one volume.
func (a *Admin) VolumeStatus(p *sim.Proc, vol uint32) (proto.VolStatusReply, error) {
	resp, err := a.call(p, proto.OpVolStatus, proto.Marshal(proto.VolStatusArgs{Volume: vol}))
	if err != nil {
		return proto.VolStatusReply{}, err
	}
	return proto.Unmarshal(resp.Body, proto.DecodeVolStatusReply)
}

// Salvage runs crash recovery on the connected server's volumes (volume 0
// = all). It returns the number of repairs made.
func (a *Admin) Salvage(p *sim.Proc, vol uint32) (repairs int, err error) {
	resp, err := a.call(p, proto.OpVolSalvage, proto.Marshal(proto.VolStatusArgs{Volume: vol}))
	if err != nil {
		return 0, err
	}
	d := wire.NewDecoder(resp.Body)
	repairs = d.Int() + d.Int() + d.Int()
	if err := d.Close(); err != nil {
		return 0, err
	}
	return repairs, nil
}

// Protect applies a protection-database mutation through the protection
// server (which replicates it everywhere). The Admin must be connected to
// the authority (server 0).
func (a *Admin) Protect(p *sim.Proc, m prot.Mutation) error {
	_, err := a.call(p, proto.OpProtMutate, proto.Marshal(m))
	return err
}

// NewUser creates a user with a password and a home volume at
// /usr/<name>, the standard provisioning sequence.
func (a *Admin) NewUser(p *sim.Proc, name, password string, quota int64) error {
	_, err := a.NewUserAt(p, name, password, quota, "")
	return err
}

// NewUserAt provisions a user and then reassigns the home volume to the
// named custodian — how files are placed in the cluster of the user's usual
// workstation "to balance server load and minimize cross-cluster
// references" (§3.1). An empty server leaves the volume where it was
// created.
func (a *Admin) NewUserAt(p *sim.Proc, name, password string, quota int64, server string) (uint32, error) {
	if err := a.Protect(p, prot.Mutation{
		Kind: prot.MutAddUser, Name: name, Key: secure.DeriveKey(name, password),
	}); err != nil {
		return 0, err
	}
	if err := a.MkdirAll(p, "/usr"); err != nil {
		return 0, err
	}
	vid, err := a.CreateVolume(p, "user."+name, "/usr/"+name, name, quota)
	if err != nil {
		return 0, err
	}
	if server != "" && server != a.cell.Servers[0].Vice.Name() {
		if err := a.MoveVolume(p, vid, server); err != nil {
			return 0, err
		}
	}
	return vid, nil
}
