package itcfs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"itcfs/internal/sim"
	"itcfs/internal/store"
	"itcfs/internal/store/memstore"
)

// storeScenario drives a fixed workload — user provisioning, writes across
// two clusters, an overwrite, reads — and reduces the run to its
// workload-visible fingerprint: final virtual time, device busy times, Venus
// counters, and the flight-recorder ring.
func storeScenario(t *testing.T, stores func(int) store.Store) (string, *Cell) {
	t.Helper()
	cell := NewCell(CellConfig{
		Mode:         Revised,
		Clusters:     2,
		FlightEvents: 256,
		Store:        stores,
	})
	cell.Run(func(p *sim.Proc) {
		admin, err := cell.Admin(p, 0)
		if err != nil {
			t.Errorf("admin: %v", err)
			return
		}
		if err := admin.NewUser(p, "satya", "pw", 0); err != nil {
			t.Errorf("new user: %v", err)
		}
	})
	ws := cell.AddWorkstation(0, "ws-a")
	ws2 := cell.AddWorkstation(1, "ws-b")
	cell.Run(func(p *sim.Proc) {
		if err := ws.Login(p, "satya", "pw"); err != nil {
			t.Errorf("login a: %v", err)
			return
		}
		if err := ws2.Login(p, "satya", "pw"); err != nil {
			t.Errorf("login b: %v", err)
			return
		}
		for i := 0; i < 4; i++ {
			name := fmt.Sprintf("/vice/usr/satya/f%d", i)
			if err := ws.FS.WriteFile(p, name, bytes.Repeat([]byte{byte('a' + i)}, 512*(i+1))); err != nil {
				t.Errorf("write %s: %v", name, err)
				return
			}
		}
		if err := ws.FS.WriteFile(p, "/vice/usr/satya/f0", []byte("rewritten")); err != nil {
			t.Errorf("overwrite: %v", err)
			return
		}
		if b, err := ws2.FS.ReadFile(p, "/vice/usr/satya/f0"); err != nil || string(b) != "rewritten" {
			t.Errorf("cross-cluster read: %q, %v", b, err)
		}
	})

	var fp strings.Builder
	fmt.Fprintf(&fp, "now=%v\n", cell.Now())
	for _, s := range cell.Servers {
		fmt.Fprintf(&fp, "%s cpu=%d disk=%d\n", s.Vice.Name(), int64(s.CPU.BusyTime()), int64(s.Disk.BusyTime()))
	}
	for _, w := range cell.Workstations() {
		fmt.Fprintf(&fp, "%s %+v\n", w.Name, w.Venus.Stats())
	}
	cell.Flight.WriteText(&fp)
	return fp.String(), cell
}

// TestStoreDeterminism is the simulator's durability contract: attaching a
// store must not perturb the simulation by one event — the fingerprint with
// journalling on (memstore under every server) is byte-identical to the
// fingerprint with no store at all. This is what lets E12–E15 keep their
// pinned telemetry while the same server code journals durably in itcfsd.
func TestStoreDeterminism(t *testing.T) {
	bare, _ := storeScenario(t, nil)

	stores := map[int]*memstore.Store{}
	journaled, cell := storeScenario(t, func(i int) store.Store {
		s := memstore.New()
		stores[i] = s
		return s
	})

	if bare != journaled {
		t.Fatalf("attaching a store perturbed the simulation:\n--- no store\n%s\n--- memstore\n%s", bare, journaled)
	}
	if len(bare) < 200 {
		t.Fatalf("fingerprint suspiciously small (%d bytes)", len(bare))
	}

	// Durability cross-check: what each store would recover is exactly what
	// each live server holds.
	for i, s := range cell.Servers {
		rec, err := stores[i].Recover()
		if err != nil {
			t.Fatalf("server %d: recover: %v", i, err)
		}
		ids := s.Vice.VolumeIDs()
		if len(rec.Volumes) != len(ids) {
			t.Fatalf("server %d: store has %d volumes, server has %d", i, len(rec.Volumes), len(ids))
		}
		for _, rv := range rec.Volumes {
			lv, ok := s.Vice.Volume(rv.ID())
			if !ok {
				t.Fatalf("server %d: store has volume %d the server lacks", i, rv.ID())
			}
			if !bytes.Equal(rv.Serialize(), lv.Serialize()) {
				t.Fatalf("server %d volume %d: journalled state diverged from live state", i, rv.ID())
			}
		}
	}
}
