package itcfs

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"itcfs/internal/proto"
	"itcfs/internal/rpc"
	"itcfs/internal/secure"
	"itcfs/internal/sim"
)

// Availability (§2.2): "single point network or machine failures should
// not affect the entire user community. We are willing, however, to accept
// temporary loss of service to small groups of users."

func TestPartitionIsolatesOneClusterOnly(t *testing.T) {
	cell := NewCell(CellConfig{Mode: Prototype, Clusters: 2})
	var err error
	cell.Run(func(p *sim.Proc) {
		admin, aerr := cell.Admin(p, 0)
		if aerr != nil {
			err = aerr
			return
		}
		// alice's volume on server0 (cluster 0), bob's on server1.
		if _, err = admin.NewUserAt(p, "alice", "pw", 0, "server0"); err != nil {
			return
		}
		_, err = admin.NewUserAt(p, "bob", "pw", 0, "server1")
	})
	if err != nil {
		t.Fatal(err)
	}
	alice := cell.AddWorkstation(0, "alice-ws")
	bob := cell.AddWorkstation(1, "bob-ws")
	cell.Run(func(p *sim.Proc) {
		if err = alice.Login(p, "alice", "pw"); err != nil {
			return
		}
		if err = bob.Login(p, "bob", "pw"); err != nil {
			return
		}
		if err = alice.FS.WriteFile(p, "/vice/usr/alice/f", []byte("a")); err != nil {
			return
		}
		err = bob.FS.WriteFile(p, "/vice/usr/bob/f", []byte("b"))
	})
	if err != nil {
		t.Fatal(err)
	}

	// Cluster 1 falls off the backbone.
	cell.Net.Partition(cell.Clusters[1])
	var aliceErr, bobLocalErr, bobRemoteErr error
	cell.Run(func(p *sim.Proc) {
		// alice (cluster 0, custodian in cluster 0): unaffected.
		_, aliceErr = alice.FS.ReadFile(p, "/vice/usr/alice/f")
		// bob reaching his own cluster server: unaffected.
		_, bobLocalErr = bob.FS.ReadFile(p, "/vice/usr/bob/f")
		// bob reaching alice's custodian across the backbone: lost.
		_, bobRemoteErr = bob.FS.ReadFile(p, "/vice/usr/alice/f")
	})
	if aliceErr != nil {
		t.Errorf("cluster-0 user affected by cluster-1 partition: %v", aliceErr)
	}
	if bobLocalErr != nil {
		t.Errorf("intra-cluster service lost during partition: %v", bobLocalErr)
	}
	if !errors.Is(bobRemoteErr, rpc.ErrUnreachable) {
		t.Errorf("cross-partition access: %v, want ErrUnreachable", bobRemoteErr)
	}

	// Healing restores service.
	cell.Net.Heal(cell.Clusters[1])
	cell.Run(func(p *sim.Proc) {
		_, err = bob.FS.ReadFile(p, "/vice/usr/alice/f")
	})
	if err != nil {
		t.Errorf("service not restored after heal: %v", err)
	}
}

func TestCrashSalvageAndContinue(t *testing.T) {
	cell, ws := provision(t, Prototype, 1)
	var err error
	cell.Run(func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			if err = ws.FS.WriteFile(p, fmt.Sprintf("/vice/usr/satya/f%d", i), []byte("data")); err != nil {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// The server crashes, leaving volume damage; the operator salvages.
	for _, id := range cell.Servers[0].Vice.VolumeIDs() {
		if v, ok := cell.Servers[0].Vice.Volume(id); ok && !v.ReadOnly() {
			v.CorruptForTest()
		}
	}
	reports := cell.Servers[0].Vice.SalvageAll()
	repaired := 0
	for _, rep := range reports {
		repaired += rep.OrphansRemoved + rep.DanglingEntries + rep.LinksFixed
	}
	if repaired == 0 {
		t.Fatal("salvage found nothing to repair after corruption")
	}
	// Clients continue unharmed.
	cell.Run(func(p *sim.Proc) {
		var data []byte
		data, err = ws.FS.ReadFile(p, "/vice/usr/satya/f0")
		if err == nil && string(data) != "data" {
			err = fmt.Errorf("data corrupted: %q", data)
		}
		if err != nil {
			return
		}
		err = ws.FS.WriteFile(p, "/vice/usr/satya/post-salvage", []byte("alive"))
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Action consistency (§3.6): with two workstations updating the same file,
// the custodian holds one version or the other in its entirety — whichever
// close arrived last — never a mixture.
func TestConcurrentWritersLastCloseWins(t *testing.T) {
	cell, ws1 := provision(t, Prototype, 1)
	ws2 := cell.AddWorkstation(0, "ws-2")
	var err error
	cell.Run(func(p *sim.Proc) {
		if err = ws2.Login(p, "satya", "pw"); err != nil {
			return
		}
		err = ws1.FS.WriteFile(p, "/vice/usr/satya/race", []byte("original"))
	})
	if err != nil {
		t.Fatal(err)
	}

	versionA := []byte("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA")
	versionB := []byte("BB")
	// Both stations open, write locally, then close; ws2's close lands
	// second in virtual time.
	cell.Run(func(p *sim.Proc) {
		f1, oerr := ws1.FS.Open(p, "/vice/usr/satya/race", FlagWrite|FlagTrunc)
		if oerr != nil {
			err = oerr
			return
		}
		f2, oerr := ws2.FS.Open(p, "/vice/usr/satya/race", FlagWrite|FlagTrunc)
		if oerr != nil {
			err = oerr
			return
		}
		if _, err = f1.Write(versionA); err != nil {
			return
		}
		if _, err = f2.Write(versionB); err != nil {
			return
		}
		if err = f1.Close(p); err != nil {
			return
		}
		err = f2.Close(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	// A third, cold workstation sees exactly version B.
	ws3 := cell.AddWorkstation(0, "ws-3")
	var got []byte
	cell.Run(func(p *sim.Proc) {
		if err = ws3.Login(p, "satya", "pw"); err != nil {
			return
		}
		got, err = ws3.FS.ReadFile(p, "/vice/usr/satya/race")
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(versionB) {
		t.Fatalf("observer sees %q, want the last-closed version %q", got, versionB)
	}
}

// Salvage is also an administrative RPC (OpVolSalvage), usable from any
// authenticated operator connection.
func TestSalvageRPC(t *testing.T) {
	cell, ws := provision(t, Prototype, 1)
	var err error
	cell.Run(func(p *sim.Proc) {
		err = ws.FS.WriteFile(p, "/vice/usr/satya/f", []byte("x"))
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range cell.Servers[0].Vice.VolumeIDs() {
		if v, ok := cell.Servers[0].Vice.Volume(id); ok && !v.ReadOnly() {
			v.CorruptForTest()
		}
	}
	var repairs int
	cell.Run(func(p *sim.Proc) {
		admin, aerr := cell.Admin(p, 0)
		if aerr != nil {
			err = aerr
			return
		}
		repairs, err = admin.Salvage(p, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if repairs == 0 {
		t.Fatal("salvage RPC repaired nothing after corruption")
	}
	// Non-admins are refused.
	var denied error
	cell.Run(func(p *sim.Proc) {
		resp, cerr := cell.Workstations()[0].Endpoint.Dial(p, cell.Servers[0].Node.ID, "nobody", [32]byte{})
		_ = resp
		denied = cerr
	})
	if denied == nil {
		t.Fatal("unauthenticated dial succeeded")
	}
}

// Quota lifecycle: fill, fail, free, succeed.
func TestQuotaLifecycle(t *testing.T) {
	cell := NewCell(CellConfig{Mode: Prototype, Clusters: 1})
	var err error
	cell.Run(func(p *sim.Proc) {
		admin, aerr := cell.Admin(p, 0)
		if aerr != nil {
			err = aerr
			return
		}
		err = admin.NewUser(p, "tight", "pw", 4096)
	})
	if err != nil {
		t.Fatal(err)
	}
	ws := cell.AddWorkstation(0, "ws")
	cell.Run(func(p *sim.Proc) {
		if err = ws.Login(p, "tight", "pw"); err != nil {
			return
		}
		if err = ws.FS.WriteFile(p, "/vice/usr/tight/a", make([]byte, 3000)); err != nil {
			return
		}
		// Over quota.
		werr := ws.FS.WriteFile(p, "/vice/usr/tight/b", make([]byte, 2000))
		if !errors.Is(werr, ErrQuota) {
			err = fmt.Errorf("over-quota write: %v, want ErrQuota", werr)
			return
		}
		// Freeing space makes room.
		if err = ws.FS.Remove(p, "/vice/usr/tight/a"); err != nil {
			return
		}
		err = ws.FS.WriteFile(p, "/vice/usr/tight/b", make([]byte, 2000))
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Degraded operation: a workstation cut off from a custodian keeps serving
// files it holds valid cached copies of — read-only, "the user ... can
// continue to use the files currently in its cache" — and the first read
// after the partition heals revalidates, picking up anything written on the
// other side. Exercised in both implementation modes.
func TestPartitionedClientServesCachedCopy(t *testing.T) {
	for _, mode := range []Mode{Prototype, Revised} {
		t.Run(mode.String(), func(t *testing.T) {
			cell := NewCell(CellConfig{
				Mode:     mode,
				Clusters: 2,
				// Short timeout so unreachability is detected quickly;
				// a one-minute TTL so the revised client must revalidate
				// after the heal instead of trusting its dead promise.
				CallTimeout: 10 * time.Second,
				CallbackTTL: time.Minute,
			})
			var err error
			cell.Run(func(p *sim.Proc) {
				admin, aerr := cell.Admin(p, 0)
				if aerr != nil {
					err = aerr
					return
				}
				// The volume stays on server0 (cluster 0); the reader
				// lives in cluster 1 so partitioning cluster 1 cuts it
				// off from the custodian.
				err = admin.NewUser(p, "satya", "pw", 0)
			})
			if err != nil {
				t.Fatal(err)
			}
			reader := cell.AddWorkstation(1, "reader-ws")
			writer := cell.AddWorkstation(0, "writer-ws")
			const path = "/vice/usr/satya/doc"
			v1, v2 := []byte("version 1"), []byte("version 2, written across the partition")
			cell.Run(func(p *sim.Proc) {
				if err = reader.Login(p, "satya", "pw"); err != nil {
					return
				}
				if err = writer.Login(p, "satya", "pw"); err != nil {
					return
				}
				if err = writer.FS.WriteFile(p, path, v1); err != nil {
					return
				}
				_, err = reader.FS.ReadFile(p, path) // cache a valid copy
			})
			if err != nil {
				t.Fatal(err)
			}

			cell.Net.Partition(cell.Clusters[1])
			cell.RunFor(2 * time.Minute) // outlive the revised client's callback TTL
			var got []byte
			var werr error
			cell.Run(func(p *sim.Proc) {
				// Reads are served from the cache despite the dead network.
				got, err = reader.FS.ReadFile(p, path)
				// Writes are not: degraded service is read-only.
				werr = reader.FS.WriteFile(p, path, []byte("doomed"))
			})
			if err != nil {
				t.Fatalf("partitioned read with valid cache: %v", err)
			}
			if string(got) != string(v1) {
				t.Fatalf("partitioned read = %q, want cached %q", got, v1)
			}
			if !errors.Is(werr, rpc.ErrUnreachable) {
				t.Fatalf("partitioned write: %v, want ErrUnreachable", werr)
			}
			if n := reader.Venus.Stats().DegradedReads; n == 0 {
				t.Fatal("read during partition not counted as degraded")
			}

			// The other side of the partition moves on.
			cell.Run(func(p *sim.Proc) {
				err = writer.FS.WriteFile(p, path, v2)
			})
			if err != nil {
				t.Fatal(err)
			}

			// First read after the heal revalidates and sees the update.
			cell.Net.Heal(cell.Clusters[1])
			before := reader.Venus.Stats()
			cell.Run(func(p *sim.Proc) {
				got, err = reader.FS.ReadFile(p, path)
			})
			if err != nil {
				t.Fatalf("first read after heal: %v", err)
			}
			if string(got) != string(v2) {
				t.Fatalf("read after heal = %q, want %q (stale cache served)", got, v2)
			}
			after := reader.Venus.Stats()
			if after.Validations == before.Validations && after.Fetches == before.Fetches {
				t.Fatal("read after heal touched no server: cache trusted without revalidation")
			}
		})
	}
}

// A write that fails at close (write-on-close could not reach the
// custodian) must not resurrect: the failed bytes may not be served by
// later reads nor silently stored by a later close. The dangerous window
// is a crash inside the callback TTL — the open hits the fresh cache
// without touching the server, so only the store fails.
func TestFailedWriteDoesNotResurrect(t *testing.T) {
	cell := NewCell(CellConfig{
		Mode:             Revised,
		CallTimeout:      10 * time.Second,
		CallbackTTL:      10 * time.Minute,
		ReconnectRetries: 3, // redial the custodian after its restart
	})
	var err error
	cell.Run(func(p *sim.Proc) {
		admin, aerr := cell.Admin(p, 0)
		if aerr != nil {
			err = aerr
			return
		}
		err = admin.NewUser(p, "satya", "pw", 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	ws := cell.AddWorkstation(0, "ws")
	const path = "/vice/usr/satya/doc"
	cell.Run(func(p *sim.Proc) {
		if err = ws.Login(p, "satya", "pw"); err != nil {
			return
		}
		err = ws.FS.WriteFile(p, path, []byte("good"))
	})
	if err != nil {
		t.Fatal(err)
	}

	cell.CrashServer(0)
	var werr error
	cell.Run(func(p *sim.Proc) {
		// Open succeeds against the TTL-fresh cache; the store at close
		// is what fails.
		werr = ws.FS.WriteFile(p, path, []byte("doomed"))
	})
	if !errors.Is(werr, rpc.ErrUnreachable) {
		t.Fatalf("write to crashed custodian: %v, want ErrUnreachable", werr)
	}

	cell.RestartServer(0)
	cell.RunFor(10 * time.Second)
	var got []byte
	cell.Run(func(p *sim.Proc) { got, err = ws.FS.ReadFile(p, path) })
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "good" {
		t.Fatalf("read after restart = %q, want %q (failed write resurrected)", got, "good")
	}
	// And the custodian never received the doomed bytes.
	ws2 := cell.AddWorkstation(0, "ws-fresh")
	cell.Run(func(p *sim.Proc) {
		if err = ws2.Login(p, "satya", "pw"); err != nil {
			return
		}
		got, err = ws2.FS.ReadFile(p, path)
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "good" {
		t.Fatalf("cold read after restart = %q, want %q", got, "good")
	}
}

// The transport distinguishes two kinds of unavailability: a call that
// times out on an established connection (ErrTimeout, which also matches
// ErrUnreachable so existing callers keep working) and a peer that cannot
// even be dialed (ErrUnreachable only).
func TestTimeoutVsUnreachable(t *testing.T) {
	cell := NewCell(CellConfig{CallTimeout: 5 * time.Second})
	cell.AddUser("satya", "pw")
	ws := cell.AddWorkstation(0, "ws")
	key := secure.DeriveKey("satya", "pw")

	var conn *rpc.SimConn
	var err error
	cell.Run(func(p *sim.Proc) {
		conn, err = ws.Endpoint.Dial(p, cell.Servers[0].Node.ID, "satya", key)
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}

	// The server dies with the connection established: the call times out.
	cell.CrashServer(0)
	var callErr error
	cell.Run(func(p *sim.Proc) {
		_, callErr = conn.Call(p, rpc.Request{
			Op:   rpc.Op(proto.OpGetCustodian),
			Body: proto.Marshal(proto.CustodianArgs{Path: "/"}),
		})
	})
	if !errors.Is(callErr, rpc.ErrTimeout) {
		t.Fatalf("call to crashed server: %v, want ErrTimeout", callErr)
	}
	if !errors.Is(callErr, rpc.ErrUnreachable) {
		t.Fatal("ErrTimeout must also match ErrUnreachable for existing callers")
	}

	// Dialing the dead server never establishes a connection at all.
	var dialErr error
	cell.Run(func(p *sim.Proc) {
		_, dialErr = ws.Endpoint.Dial(p, cell.Servers[0].Node.ID, "satya", key)
	})
	if !errors.Is(dialErr, rpc.ErrUnreachable) {
		t.Fatalf("dial to crashed server: %v, want ErrUnreachable", dialErr)
	}
	if errors.Is(dialErr, rpc.ErrTimeout) {
		t.Fatal("dial failure is not a call timeout: must not match ErrTimeout")
	}

	// After a restart the same endpoint can be dialed again.
	cell.RestartServer(0)
	cell.Run(func(p *sim.Proc) {
		_, err = ws.Endpoint.Dial(p, cell.Servers[0].Node.ID, "satya", key)
	})
	if err != nil {
		t.Fatalf("dial after restart: %v", err)
	}
}
