package itcfs

import (
	"errors"
	"fmt"
	"testing"

	"itcfs/internal/rpc"
	"itcfs/internal/sim"
)

// Availability (§2.2): "single point network or machine failures should
// not affect the entire user community. We are willing, however, to accept
// temporary loss of service to small groups of users."

func TestPartitionIsolatesOneClusterOnly(t *testing.T) {
	cell := NewCell(CellConfig{Mode: Prototype, Clusters: 2})
	var err error
	cell.Run(func(p *sim.Proc) {
		admin, aerr := cell.Admin(p, 0)
		if aerr != nil {
			err = aerr
			return
		}
		// alice's volume on server0 (cluster 0), bob's on server1.
		if _, err = admin.NewUserAt(p, "alice", "pw", 0, "server0"); err != nil {
			return
		}
		_, err = admin.NewUserAt(p, "bob", "pw", 0, "server1")
	})
	if err != nil {
		t.Fatal(err)
	}
	alice := cell.AddWorkstation(0, "alice-ws")
	bob := cell.AddWorkstation(1, "bob-ws")
	cell.Run(func(p *sim.Proc) {
		if err = alice.Login(p, "alice", "pw"); err != nil {
			return
		}
		if err = bob.Login(p, "bob", "pw"); err != nil {
			return
		}
		if err = alice.FS.WriteFile(p, "/vice/usr/alice/f", []byte("a")); err != nil {
			return
		}
		err = bob.FS.WriteFile(p, "/vice/usr/bob/f", []byte("b"))
	})
	if err != nil {
		t.Fatal(err)
	}

	// Cluster 1 falls off the backbone.
	cell.Net.Partition(cell.Clusters[1])
	var aliceErr, bobLocalErr, bobRemoteErr error
	cell.Run(func(p *sim.Proc) {
		// alice (cluster 0, custodian in cluster 0): unaffected.
		_, aliceErr = alice.FS.ReadFile(p, "/vice/usr/alice/f")
		// bob reaching his own cluster server: unaffected.
		_, bobLocalErr = bob.FS.ReadFile(p, "/vice/usr/bob/f")
		// bob reaching alice's custodian across the backbone: lost.
		_, bobRemoteErr = bob.FS.ReadFile(p, "/vice/usr/alice/f")
	})
	if aliceErr != nil {
		t.Errorf("cluster-0 user affected by cluster-1 partition: %v", aliceErr)
	}
	if bobLocalErr != nil {
		t.Errorf("intra-cluster service lost during partition: %v", bobLocalErr)
	}
	if !errors.Is(bobRemoteErr, rpc.ErrUnreachable) {
		t.Errorf("cross-partition access: %v, want ErrUnreachable", bobRemoteErr)
	}

	// Healing restores service.
	cell.Net.Heal(cell.Clusters[1])
	cell.Run(func(p *sim.Proc) {
		_, err = bob.FS.ReadFile(p, "/vice/usr/alice/f")
	})
	if err != nil {
		t.Errorf("service not restored after heal: %v", err)
	}
}

func TestCrashSalvageAndContinue(t *testing.T) {
	cell, ws := provision(t, Prototype, 1)
	var err error
	cell.Run(func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			if err = ws.FS.WriteFile(p, fmt.Sprintf("/vice/usr/satya/f%d", i), []byte("data")); err != nil {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// The server crashes, leaving volume damage; the operator salvages.
	for _, id := range cell.Servers[0].Vice.VolumeIDs() {
		if v, ok := cell.Servers[0].Vice.Volume(id); ok && !v.ReadOnly() {
			v.CorruptForTest()
		}
	}
	reports := cell.Servers[0].Vice.SalvageAll()
	repaired := 0
	for _, rep := range reports {
		repaired += rep.OrphansRemoved + rep.DanglingEntries + rep.LinksFixed
	}
	if repaired == 0 {
		t.Fatal("salvage found nothing to repair after corruption")
	}
	// Clients continue unharmed.
	cell.Run(func(p *sim.Proc) {
		var data []byte
		data, err = ws.FS.ReadFile(p, "/vice/usr/satya/f0")
		if err == nil && string(data) != "data" {
			err = fmt.Errorf("data corrupted: %q", data)
		}
		if err != nil {
			return
		}
		err = ws.FS.WriteFile(p, "/vice/usr/satya/post-salvage", []byte("alive"))
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Action consistency (§3.6): with two workstations updating the same file,
// the custodian holds one version or the other in its entirety — whichever
// close arrived last — never a mixture.
func TestConcurrentWritersLastCloseWins(t *testing.T) {
	cell, ws1 := provision(t, Prototype, 1)
	ws2 := cell.AddWorkstation(0, "ws-2")
	var err error
	cell.Run(func(p *sim.Proc) {
		if err = ws2.Login(p, "satya", "pw"); err != nil {
			return
		}
		err = ws1.FS.WriteFile(p, "/vice/usr/satya/race", []byte("original"))
	})
	if err != nil {
		t.Fatal(err)
	}

	versionA := []byte("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA")
	versionB := []byte("BB")
	// Both stations open, write locally, then close; ws2's close lands
	// second in virtual time.
	cell.Run(func(p *sim.Proc) {
		f1, oerr := ws1.FS.Open(p, "/vice/usr/satya/race", FlagWrite|FlagTrunc)
		if oerr != nil {
			err = oerr
			return
		}
		f2, oerr := ws2.FS.Open(p, "/vice/usr/satya/race", FlagWrite|FlagTrunc)
		if oerr != nil {
			err = oerr
			return
		}
		if _, err = f1.Write(versionA); err != nil {
			return
		}
		if _, err = f2.Write(versionB); err != nil {
			return
		}
		if err = f1.Close(p); err != nil {
			return
		}
		err = f2.Close(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	// A third, cold workstation sees exactly version B.
	ws3 := cell.AddWorkstation(0, "ws-3")
	var got []byte
	cell.Run(func(p *sim.Proc) {
		if err = ws3.Login(p, "satya", "pw"); err != nil {
			return
		}
		got, err = ws3.FS.ReadFile(p, "/vice/usr/satya/race")
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(versionB) {
		t.Fatalf("observer sees %q, want the last-closed version %q", got, versionB)
	}
}

// Salvage is also an administrative RPC (OpVolSalvage), usable from any
// authenticated operator connection.
func TestSalvageRPC(t *testing.T) {
	cell, ws := provision(t, Prototype, 1)
	var err error
	cell.Run(func(p *sim.Proc) {
		err = ws.FS.WriteFile(p, "/vice/usr/satya/f", []byte("x"))
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range cell.Servers[0].Vice.VolumeIDs() {
		if v, ok := cell.Servers[0].Vice.Volume(id); ok && !v.ReadOnly() {
			v.CorruptForTest()
		}
	}
	var repairs int
	cell.Run(func(p *sim.Proc) {
		admin, aerr := cell.Admin(p, 0)
		if aerr != nil {
			err = aerr
			return
		}
		repairs, err = admin.Salvage(p, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if repairs == 0 {
		t.Fatal("salvage RPC repaired nothing after corruption")
	}
	// Non-admins are refused.
	var denied error
	cell.Run(func(p *sim.Proc) {
		resp, cerr := cell.Workstations()[0].Endpoint.Dial(p, cell.Servers[0].Node.ID, "nobody", [32]byte{})
		_ = resp
		denied = cerr
	})
	if denied == nil {
		t.Fatal("unauthenticated dial succeeded")
	}
}

// Quota lifecycle: fill, fail, free, succeed.
func TestQuotaLifecycle(t *testing.T) {
	cell := NewCell(CellConfig{Mode: Prototype, Clusters: 1})
	var err error
	cell.Run(func(p *sim.Proc) {
		admin, aerr := cell.Admin(p, 0)
		if aerr != nil {
			err = aerr
			return
		}
		err = admin.NewUser(p, "tight", "pw", 4096)
	})
	if err != nil {
		t.Fatal(err)
	}
	ws := cell.AddWorkstation(0, "ws")
	cell.Run(func(p *sim.Proc) {
		if err = ws.Login(p, "tight", "pw"); err != nil {
			return
		}
		if err = ws.FS.WriteFile(p, "/vice/usr/tight/a", make([]byte, 3000)); err != nil {
			return
		}
		// Over quota.
		werr := ws.FS.WriteFile(p, "/vice/usr/tight/b", make([]byte, 2000))
		if !errors.Is(werr, ErrQuota) {
			err = fmt.Errorf("over-quota write: %v, want ErrQuota", werr)
			return
		}
		// Freeing space makes room.
		if err = ws.FS.Remove(p, "/vice/usr/tight/a"); err != nil {
			return
		}
		err = ws.FS.WriteFile(p, "/vice/usr/tight/b", make([]byte, 2000))
	})
	if err != nil {
		t.Fatal(err)
	}
}
