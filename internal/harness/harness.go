// Package harness builds and runs the paper's evaluation (§5.2): it
// assembles cells, applies synthetic load in virtual time, collects server
// and network statistics, and renders each experiment as a table comparing
// the paper's reported numbers with the measured reproduction.
//
// Experiment index (see DESIGN.md §3):
//
//	E1  server call-mix histogram          (validate 65%, stat 27%, fetch 4%, store 2%)
//	E2  server CPU/disk utilization        (CPU ≈40% avg, disk ≈14%, peaks ≈98%)
//	E3  cache hit ratio                    (>80%)
//	E4  five-phase benchmark local/remote  (≈1000 s local, ≈80% longer remote)
//	E5  benchmark time vs server load      (≈20 WS/server acceptable)
//	E6  check-on-open vs callbacks         (motivates the revised design)
//	E7  server-side vs client-side walks   (server CPU per op)
//	E8  whole-file vs page-at-a-time       (protocol overhead, crossover)
//	E9  read-only replication              (locality, load spread)
//	E10 negative rights vs database update (rapid revocation)
package harness

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"time"

	"itcfs"
	"itcfs/internal/proto"
	"itcfs/internal/rpc"
	"itcfs/internal/sim"
	"itcfs/internal/workload"
)

// Report is one experiment's outcome.
type Report struct {
	ID         string
	Title      string
	PaperClaim string
	Header     []string
	Rows       [][]string
	// Metrics carries machine-checkable numbers for tests and benches.
	Metrics map[string]float64
}

func newReport(id, title, claim string, header ...string) *Report {
	return &Report{ID: id, Title: title, PaperClaim: claim, Header: header,
		Metrics: make(map[string]float64)}
}

func (r *Report) addRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// Print renders the report as an aligned text table.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "\n%s — %s\n", r.ID, r.Title)
	fmt.Fprintf(w, "paper: %s\n", r.PaperClaim)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(b.String(), " "))
	}
	line(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
}

// pct formats a ratio as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// secs formats a duration in whole seconds.
func secs(d time.Duration) string { return fmt.Sprintf("%.0f s", d.Seconds()) }

// LoadedCell is a provisioned cell with system binaries and per-user home
// volumes, ready for synthetic load.
type LoadedCell struct {
	Cell  *itcfs.Cell
	Users []string
	// WS[i] is user i's workstation; user i's home server is the cluster
	// server of WS[i]'s cluster.
	WS []*itcfs.Workstation
	// SysRoot is the Vice directory drivers read system binaries from: the
	// read-write volume, or its read-only replicated clone.
	SysRoot string
	marks   map[*itcfs.Server]windowMark
}

// LoadConfig sizes a loaded cell.
type LoadConfig struct {
	Mode       itcfs.Mode
	Clusters   int
	UsersPer   int // users (each with a workstation) per cluster
	Seed       int64
	Drive      workload.Config // per-user driver shape (Seed is overridden)
	CacheFiles int
	CacheBytes int64
	// ReplicateSys clones the system-binary volume read-only onto every
	// cluster server, the deployment the paper describes for frequently
	// read, rarely modified files (§3.2). Multi-cluster cells default to
	// it in DefaultLoad.
	ReplicateSys bool
}

// DefaultLoad returns the standard small configuration: one cluster of 20
// workstations on one server, the paper's operating point.
func DefaultLoad(mode itcfs.Mode) LoadConfig {
	return LoadConfig{
		Mode:     mode,
		Clusters: 1,
		UsersPer: 20,
		Seed:     1,
		Drive:    workload.DefaultConfig(0),
	}
}

// BuildLoadedCell provisions the cell: system binaries in a shared volume,
// one user+volume+workstation per seat, every home populated and every
// user logged in at their station.
func BuildLoadedCell(cfg LoadConfig) (*LoadedCell, error) {
	cell := itcfs.NewCell(itcfs.CellConfig{
		Mode:       cfg.Mode,
		Clusters:   cfg.Clusters,
		CacheFiles: cfg.CacheFiles,
		CacheBytes: cfg.CacheBytes,
	})
	lc := &LoadedCell{Cell: cell, SysRoot: cfg.Drive.SysRoot, marks: make(map[*itcfs.Server]windowMark)}
	var setupErr error
	cell.Run(func(p *sim.Proc) {
		admin, err := cell.Admin(p, 0)
		if err != nil {
			setupErr = err
			return
		}
		if err := admin.MkdirAll(p, "/unix"); err != nil {
			setupErr = err
			return
		}
		sysVol, err := admin.CreateVolume(p, "sys.bin", cfg.Drive.SysRoot, "operator", 0)
		if err != nil {
			setupErr = fmt.Errorf("system volume: %w", err)
			return
		}
		opWS := cell.AddWorkstation(0, "op-console")
		if err := opWS.Login(p, "operator", "operator-password"); err != nil {
			setupErr = err
			return
		}
		r := rand.New(rand.NewSource(cfg.Seed))
		if err := workload.PopulateSystem(p, opWS.FS, cfg.Drive, r); err != nil {
			setupErr = err
			return
		}
		if cfg.ReplicateSys {
			// Release the binaries as a read-only clone replicated to
			// every other cluster server; drivers read the released tree.
			var replicas []string
			for _, s := range cell.Servers[1:] {
				replicas = append(replicas, s.Vice.Name())
			}
			roRoot := cfg.Drive.SysRoot + "-ro"
			if _, err := admin.CloneVolume(p, sysVol, roRoot, replicas...); err != nil {
				setupErr = fmt.Errorf("replicate system volume: %w", err)
				return
			}
			lc.SysRoot = roRoot
		}
		for c := 0; c < cfg.Clusters; c++ {
			for u := 0; u < cfg.UsersPer; u++ {
				name := fmt.Sprintf("user%d-%d", c, u)
				// The home volume lives on the user's own cluster server:
				// custodianship placement balances load and localizes
				// references (§3.1).
				home := cell.Servers[c].Vice.Name()
				if _, err := admin.NewUserAt(p, name, "pw-"+name, 0, home); err != nil {
					setupErr = fmt.Errorf("provision %s: %w", name, err)
					return
				}
				lc.Users = append(lc.Users, name)
			}
		}
	})
	if setupErr != nil {
		return nil, setupErr
	}
	// One workstation per user, logged in, home populated.
	for i, name := range lc.Users {
		cluster := i / cfg.UsersPer
		ws := cell.AddWorkstation(cluster, "ws-"+name)
		lc.WS = append(lc.WS, ws)
	}
	for i, name := range lc.Users {
		i, name := i, name
		cell.Run(func(p *sim.Proc) {
			if err := lc.WS[i].Login(p, name, "pw-"+name); err != nil {
				setupErr = err
				return
			}
			drv := cfg.Drive
			drv.Seed = cfg.Seed + int64(i)
			drv.Think = 0
			u := workload.NewUser(name, "/usr/"+name, drv)
			if err := u.PopulateHome(p, lc.WS[i].FS); err != nil {
				setupErr = fmt.Errorf("populate %s: %w", name, err)
			}
		})
		if setupErr != nil {
			return nil, setupErr
		}
	}
	return lc, nil
}

// Drive runs every user's driver concurrently for the given virtual
// duration (after a warm-up of the same shape), then returns. Venus stats
// are reset after warm-up so measurements cover only the steady state.
func (lc *LoadedCell) Drive(cfg LoadConfig, warm, measure time.Duration) error {
	return lc.DriveHook(cfg, warm, measure, nil)
}

// DriveHook is Drive with a callback invoked at the boundary between
// warm-up and measurement — the place to attach gauges, whose self-renewing
// tick events must not be scheduled before a kernel run that would drain
// them through idle time.
func (lc *LoadedCell) DriveHook(cfg LoadConfig, warm, measure time.Duration, atMeasureStart func()) error {
	var driveErr error
	run := func(until sim.Time) {
		for i, name := range lc.Users {
			i, name := i, name
			drv := cfg.Drive
			drv.Seed = cfg.Seed + 1000 + int64(i)
			drv.SysRoot = lc.SysRoot
			u := workload.NewUser(name, "/usr/"+name, drv)
			lc.Cell.Kernel.Spawn("drive-"+name, func(p *sim.Proc) {
				if err := u.RunUntil(p, lc.WS[i].FS, until); err != nil && driveErr == nil {
					driveErr = fmt.Errorf("driver %s: %w", name, err)
				}
			})
		}
		lc.Cell.Kernel.Run()
	}
	start := lc.Cell.Now()
	if warm > 0 {
		run(start.Add(warm))
		if driveErr != nil {
			return driveErr
		}
	}
	for _, ws := range lc.WS {
		ws.Venus.ResetStats()
	}
	for _, s := range lc.Cell.Servers {
		lc.resetResourceWindow(s)
	}
	if atMeasureStart != nil {
		atMeasureStart()
	}
	mid := lc.Cell.Now()
	run(mid.Add(measure))
	return driveErr
}

// window bookkeeping: utilization and call counts over the measured
// interval only.
type windowMark struct {
	at    sim.Time
	cpu   time.Duration
	disk  time.Duration
	calls map[rpc.Op]int64
}

func (lc *LoadedCell) resetResourceWindow(s *itcfs.Server) {
	lc.marks[s] = windowMark{
		at:    s.CPU.Kernel().Now(),
		cpu:   s.CPU.BusyTime(),
		disk:  s.Disk.BusyTime(),
		calls: s.Endpoint.CallCounts(),
	}
}

// windowUtil returns CPU and disk utilization since the last reset.
func (lc *LoadedCell) windowUtil(s *itcfs.Server) (cpu, disk float64) {
	m, ok := lc.marks[s]
	if !ok {
		return s.CPU.Utilization(0), s.Disk.Utilization(0)
	}
	elapsed := s.CPU.Kernel().Now().Sub(m.at)
	if elapsed <= 0 {
		return 0, 0
	}
	return float64(s.CPU.BusyTime()-m.cpu) / float64(elapsed),
		float64(s.Disk.BusyTime()-m.disk) / float64(elapsed)
}

// aggregateStats sums Venus counters over all workstations.
func (lc *LoadedCell) aggregateStats() itcfs.Stats {
	var total itcfs.Stats
	for _, ws := range lc.WS {
		s := ws.Venus.Stats()
		total.Opens += s.Opens
		total.Hits += s.Hits
		total.Misses += s.Misses
		total.Validations += s.Validations
		total.Fetches += s.Fetches
		total.Stores += s.Stores
		total.StatRPCs += s.StatRPCs
		total.OtherRPCs += s.OtherRPCs
		total.CallbackBreaks += s.CallbackBreaks
		total.Evictions += s.Evictions
		total.BytesFetched += s.BytesFetched
		total.BytesStored += s.BytesStored
	}
	return total
}

// CallMix aggregates server histograms over the measured window into
// fractions of total calls, grouped by human-readable op name.
func (lc *LoadedCell) CallMix() (map[string]float64, int64) {
	counts := map[rpc.Op]int64{}
	var total int64
	for _, s := range lc.Cell.Servers {
		base := map[rpc.Op]int64{}
		if m, ok := lc.marks[s]; ok && m.calls != nil {
			base = m.calls
		}
		for op, n := range s.Endpoint.CallCounts() {
			d := n - base[op]
			counts[op] += d
			total += d
		}
	}
	names := map[string]float64{}
	for op, n := range counts {
		if total > 0 {
			names[opName(op)] += float64(n) / float64(total)
		}
	}
	return names, total
}

func opName(op rpc.Op) string {
	switch uint16(op) {
	case proto.OpTestValid:
		return "TestValid (cache validity)"
	case proto.OpFetchStatus:
		return "GetFileStat (status)"
	case proto.OpFetch:
		return "Fetch"
	case proto.OpStore:
		return "Store"
	case proto.OpGetCustodian:
		return "GetCustodian"
	case proto.OpCreate, proto.OpMakeDir, proto.OpRemove, proto.OpRemoveDir,
		proto.OpRename, proto.OpSymlink, proto.OpLink, proto.OpSetACL, proto.OpGetACL:
		return "directory ops"
	default:
		return fmt.Sprintf("other (op %d)", op)
	}
}

// sortedKeys returns map keys ordered by descending value, ties broken by
// name: without the tie-break, equal-valued rows would keep the order the
// keys came out of the map in, and the table would shuffle run to run.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if m[keys[i]] != m[keys[j]] {
			return m[keys[i]] > m[keys[j]]
		}
		return keys[i] < keys[j]
	})
	return keys
}
