package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"itcfs"
	"itcfs/internal/monitor"
	"itcfs/internal/sim"
	"itcfs/internal/trace"
)

// E17 — observability at scale. PR 9 pushed the kernel to 30k clients; this
// experiment proves the observability plane can stay on at that population.
// Leg one ablates tracing off/sampled/full over the identical sharded E14
// quick mix and measures what each mode costs in real seconds and heap
// allocations per simulated client-hour — the sampled plane must ride within
// 5% wall and 5 allocs/client-hour of tracing-off at 30k clients, with full
// tracing measured for contrast. The ablation doubles as a sampling-inertness
// guard: all three legs must produce the identical virtual timeline and a
// byte-identical metrics registry, or the tracer perturbed the workload. Leg
// two seeds an E15-shaped hot-volume cell with tracing, SLO objectives and
// burn-rate evaluation attached, and requires at least one slo.breach flight
// event whose embedded exemplar critical path names the saturated server.
// BENCH_obs.json, emitted here and committed at the repo root, records both
// legs; ci.sh re-emits the 10k point and compares the schema.

// E17Config sizes the observability bench.
type E17Config struct {
	Clients []int // client counts for the ablation sweep
	Reps    int   // wall-clock repetitions per leg, best-of (0 = 1)
	// Rate and SlowKeep shape the sampled leg's policy: keep one root in
	// Rate per op class, plus every root slower than SlowKeep.
	Rate     int
	SlowKeep time.Duration
	Seed     int64 // sampling seed (rotates per-class keep phases)
	Breach   E17BreachConfig
}

// E17BreachConfig sizes the seeded hot-volume breach leg — an E15-shaped
// two-cluster cell driven into saturation with the SLO layer attached.
type E17BreachConfig struct {
	Seed            int64
	Cadence         time.Duration
	Phase           time.Duration // length of each load phase (calm, then hot)
	HotReaders      int
	WarmReaders     int
	LightPerCluster int
	Files           int
	FileBytes       int
	HotThink        time.Duration
	WarmThink       time.Duration
	LightThink      time.Duration
	// Objective/Target/Window/BreachBurn configure the venus.open SLO.
	Objective  time.Duration
	Target     float64
	Window     int
	BreachBurn float64
	// SampleRate/SlowKeep shape the breach cell's trace policy — sampled, so
	// the breach attribution exercises the exemplar path, not full retention.
	SampleRate   int
	SlowKeep     time.Duration
	FlightEvents int
	Detect       monitor.OverloadConfig
}

// DefaultE17 returns the standard configuration: the tentpole's 10k/30k
// ablation at rate-1024 sampling, and the E15-quick-shaped breach cell.
func DefaultE17() E17Config {
	return E17Config{
		Clients:  []int{10000, 30000},
		Rate:     1024,
		SlowKeep: 5 * time.Minute,
		Seed:     17,
		Breach: E17BreachConfig{
			Seed:            1,
			Cadence:         15 * time.Second,
			Phase:           150 * time.Second,
			HotReaders:      6,
			WarmReaders:     4,
			LightPerCluster: 2,
			Files:           6,
			FileBytes:       8 << 10,
			HotThink:        1700 * time.Millisecond,
			WarmThink:       1250 * time.Millisecond,
			LightThink:      1200 * time.Millisecond,
			Objective:       250 * time.Millisecond,
			Target:          0.95,
			Window:          4,
			BreachBurn:      2.0,
			SampleRate:      4,
			SlowKeep:        2 * time.Second,
			FlightEvents:    512,
			Detect:          monitor.DefaultOverloadConfig(),
		},
	}
}

// ObsLeg is one tracing mode measured at one client count.
type ObsLeg struct {
	Mode        string  `json:"mode"` // off | sampled | full
	WallSeconds float64 `json:"wall_seconds"`
	Allocs      uint64  `json:"allocs"`
	// WallPerClientHour and AllocsPerClientHour normalize by the simulated
	// client-hours, mirroring BENCH_scale.json.
	WallPerClientHour   float64 `json:"wall_seconds_per_client_hour"`
	AllocsPerClientHour float64 `json:"allocs_per_client_hour"`
	// SpansKept is how many spans the tracer retained over the whole run —
	// the retention the sampling policy is bounding.
	SpansKept int `json:"spans_kept"`
}

// ObsPoint is the three-leg ablation at one client count, with the sampled
// and full overheads relative to the off leg.
type ObsPoint struct {
	Clients     int      `json:"clients"`
	ClientHours float64  `json:"client_hours"`
	Legs        []ObsLeg `json:"legs"` // off, sampled, full
	// Overheads: wall as a percentage of the off leg, allocations as the
	// absolute increase in allocs per client-hour (the acceptance units).
	SampledWallOverheadPct float64 `json:"sampled_wall_overhead_pct"`
	SampledAllocsPerCHOver float64 `json:"sampled_allocs_per_client_hour_over"`
	FullWallOverheadPct    float64 `json:"full_wall_overhead_pct"`
	FullAllocsPerCHOver    float64 `json:"full_allocs_per_client_hour_over"`
}

// ObsBreach is the breach leg's outcome.
type ObsBreach struct {
	Breaches        int    `json:"breaches"`
	SaturatedServer string `json:"saturated_server"` // the server the load design saturates
	HotNode         string `json:"hot_node"`         // the node the breach event blamed
	// FirstDetail is the first slo.breach event's detail — the burn numbers
	// and the exemplar critical-path decomposition.
	FirstDetail   string `json:"first_breach_detail"`
	BurnMilliPeak int64  `json:"burn_milli_peak"`
	Recovered     bool   `json:"recovered"`
	// AdvisorReason is the overload detector's finding with the SLO burn
	// citation appended (empty if the detector did not fire).
	AdvisorReason string `json:"advisor_reason"`
}

// ObsBench is the full experiment, serialized as BENCH_obs.json.
type ObsBench struct {
	Schema     string     `json:"schema"`
	Workload   string     `json:"workload"`
	SampleRate int        `json:"sample_rate"`
	SlowKeepMs int64      `json:"slow_keep_ms"`
	Points     []ObsPoint `json:"points"`
	Breach     *ObsBreach `json:"breach"`
	Note       string     `json:"note"`
}

// obsLegModes orders the ablation; "off" must come first (it is the
// baseline the overheads divide by).
var obsLegModes = []string{"off", "sampled", "full"}

// RunObsBench measures the ablation sweep and runs the breach leg. As in the
// scale bench, wall-clock time is the measurement, not a hidden dependency:
// every simulated outcome is deterministic, and the run fails if the three
// legs' virtual timelines or metric registries diverge.
func RunObsBench(cfg E17Config) (*ObsBench, error) {
	if len(cfg.Clients) == 0 {
		cfg = DefaultE17()
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 1
	}
	if cfg.Rate <= 1 {
		cfg.Rate = 1024
	}
	e14 := DefaultE14()
	// E17 always uses the quick-mix shape: overhead per client-hour is a
	// ratio, so the mix only needs to touch every hot path — and the full
	// leg must retain every span of whatever is simulated.
	e14.Scale.Ops = 10
	e14.Scale.Browse = 4
	e14.Scale.Stagger = 2 * time.Hour
	ob := &ObsBench{
		Schema: "itcfs-bench-obs/v1",
		Workload: "E14 batched quick mix, tracing ablated off/sampled/full; " +
			"E15-shaped hot-volume cell for the SLO breach leg",
		SampleRate: cfg.Rate,
		SlowKeepMs: int64(cfg.SlowKeep / time.Millisecond),
		Note: "sampled = seeded per-class rate with slow always-keep; legs are " +
			"inert: identical virtual timelines and byte-identical registries",
	}
	for _, n := range cfg.Clients {
		pt := ObsPoint{Clients: n}
		var baseElapsed time.Duration
		var baseFP string
		for _, mode := range obsLegModes {
			best := ObsLeg{}
			var bestElapsed time.Duration
			var bestFP string
			for rep := 0; rep < cfg.Reps; rep++ {
				leg, fp, elapsed, err := measureObsLeg(e14, n, mode, cfg)
				if err != nil {
					return nil, fmt.Errorf("obs bench %s at %d clients: %w", mode, n, err)
				}
				if rep == 0 || leg.WallSeconds < best.WallSeconds {
					best, bestFP, bestElapsed = leg, fp, elapsed
				}
			}
			if mode == "off" {
				baseElapsed, baseFP = bestElapsed, bestFP
				pt.ClientHours = round3(float64(n) * bestElapsed.Seconds() / 3600)
			} else {
				// The inertness guard: tracing may cost real time, never
				// virtual time or a single metric count.
				if bestElapsed != baseElapsed {
					return nil, fmt.Errorf("obs bench at %d clients: %s leg took %v virtual, off took %v — tracing perturbed the workload",
						n, mode, bestElapsed, baseElapsed)
				}
				if bestFP != baseFP {
					return nil, fmt.Errorf("obs bench at %d clients: %s leg's metrics registry diverged from off — tracing perturbed the workload", n, mode)
				}
			}
			ch := float64(n) * bestElapsed.Seconds() / 3600
			if ch > 0 {
				best.WallPerClientHour = round6(best.WallSeconds / ch)
				best.AllocsPerClientHour = round3(float64(best.Allocs) / ch)
			}
			pt.Legs = append(pt.Legs, best)
		}
		off, sampled, full := pt.Legs[0], pt.Legs[1], pt.Legs[2]
		if off.WallSeconds > 0 {
			pt.SampledWallOverheadPct = round3((sampled.WallSeconds - off.WallSeconds) / off.WallSeconds * 100)
			pt.FullWallOverheadPct = round3((full.WallSeconds - off.WallSeconds) / off.WallSeconds * 100)
		}
		pt.SampledAllocsPerCHOver = round3(sampled.AllocsPerClientHour - off.AllocsPerClientHour)
		pt.FullAllocsPerCHOver = round3(full.AllocsPerClientHour - off.AllocsPerClientHour)
		ob.Points = append(ob.Points, pt)
	}
	br, err := e17Breach(cfg.Breach)
	if err != nil {
		return nil, err
	}
	ob.Breach = br
	return ob, nil
}

// measureObsLeg runs the sharded quick mix once at n clients in one tracing
// mode, measuring wall time and allocations around the whole run, and
// returning the registry fingerprint and virtual elapsed time for the
// inertness guard.
func measureObsLeg(e14 E14Config, n int, mode string, cfg E17Config) (ObsLeg, string, time.Duration, error) {
	mut := func(cc *itcfs.CellConfig) {
		switch mode {
		case "sampled":
			cc.Trace = true
			cc.TracePolicy = &trace.SamplePolicy{
				Seed:    cfg.Seed,
				Default: trace.ClassPolicy{Rate: cfg.Rate, SlowKeep: cfg.SlowKeep},
			}
		case "full":
			cc.Trace = true // TraceSample 0 = keep every root
		}
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now() //itcvet:allow wallclock -- the obs bench measures real elapsed time by design
	cell, elapsed, err := scaleRun(e14, n, mut)
	if err != nil {
		return ObsLeg{}, "", 0, err
	}
	wall := time.Since(start) //itcvet:allow wallclock -- the obs bench measures real elapsed time by design
	runtime.ReadMemStats(&after)
	leg := ObsLeg{
		Mode:        mode,
		WallSeconds: round3(wall.Seconds()),
		Allocs:      after.Mallocs - before.Mallocs,
	}
	// Fingerprint and span count come after the measurement window so the
	// guard itself costs the legs nothing.
	var reg strings.Builder
	cell.Metrics.WriteText(&reg)
	sum := sha256.Sum256([]byte(reg.String()))
	leg.SpansKept = len(cell.Tracer.Spans())
	return leg, hex.EncodeToString(sum[:]), elapsed, nil
}

// e17Breach drives the seeded hot-volume cell: phase A is background load
// only, phase B adds cluster-1 readers hammering server0's public volumes
// past its CPU ceiling. The SLO monitor rides the sampling cadence; the leg
// requires at least one slo.breach whose exemplar critical path names the
// saturated server.
func e17Breach(cfg E17BreachConfig) (*ObsBreach, error) {
	cell := itcfs.NewCell(itcfs.CellConfig{
		Mode:         itcfs.Prototype,
		Clusters:     2,
		Metrics:      trace.NewRegistry(),
		FlightEvents: cfg.FlightEvents,
		Trace:        true,
		TracePolicy: &trace.SamplePolicy{
			Seed:    cfg.Seed,
			Default: trace.ClassPolicy{Rate: cfg.SampleRate, SlowKeep: cfg.SlowKeep},
		},
	})
	saturated := cell.Servers[0].Vice.Name()

	// Provision: public volumes on server0, background homes per cluster.
	lightUsers := [2][]string{}
	for c := 0; c < 2; c++ {
		for i := 0; i < cfg.LightPerCluster; i++ {
			lightUsers[c] = append(lightUsers[c], fmt.Sprintf("bg%d-%d", c, i))
		}
	}
	var err error
	cell.Run(func(p *sim.Proc) {
		admin, aerr := cell.Admin(p, 0)
		if aerr != nil {
			err = aerr
			return
		}
		if _, err = admin.NewUserAt(p, "pub-hot", "pw", 0, ""); err != nil {
			return
		}
		if _, err = admin.NewUserAt(p, "pub-warm", "pw", 0, ""); err != nil {
			return
		}
		for c := 0; c < 2; c++ {
			home := cell.Servers[c].Vice.Name()
			for _, name := range lightUsers[c] {
				if _, err = admin.NewUserAt(p, name, "pw", 0, home); err != nil {
					return
				}
			}
		}
	})
	if err != nil {
		return nil, fmt.Errorf("E17 breach provisioning: %w", err)
	}

	addGroup := func(n int, cluster int, prefix, user string) ([]*itcfs.Workstation, error) {
		var group []*itcfs.Workstation
		for i := 0; i < n; i++ {
			ws := cell.AddWorkstation(cluster, fmt.Sprintf("%s%d", prefix, i))
			group = append(group, ws)
			u := user
			if u == "" {
				u = lightUsers[cluster][i]
			}
			var lerr error
			cell.Run(func(p *sim.Proc) { lerr = ws.Login(p, u, "pw") })
			if lerr != nil {
				return nil, lerr
			}
		}
		return group, nil
	}
	hotWS, err := addGroup(cfg.HotReaders, 1, "hot-ws", "pub-hot")
	if err != nil {
		return nil, err
	}
	warmWS, err := addGroup(cfg.WarmReaders, 1, "warm-ws", "pub-warm")
	if err != nil {
		return nil, err
	}
	bgWS := [2][]*itcfs.Workstation{}
	for c := 0; c < 2; c++ {
		if bgWS[c], err = addGroup(cfg.LightPerCluster, c, fmt.Sprintf("bg%d-ws", c), ""); err != nil {
			return nil, err
		}
	}

	populate := func(ws *itcfs.Workstation, owner string) error {
		var werr error
		cell.Run(func(p *sim.Proc) {
			for f := 0; f < cfg.Files; f++ {
				body := make([]byte, cfg.FileBytes)
				for b := range body {
					body[b] = byte(f)
				}
				if werr = ws.FS.WriteFile(p, fmt.Sprintf("/vice/usr/%s/f%d", owner, f), body); werr != nil {
					return
				}
			}
		})
		return werr
	}
	if err := populate(hotWS[0], "pub-hot"); err != nil {
		return nil, err
	}
	if err := populate(warmWS[0], "pub-warm"); err != nil {
		return nil, err
	}
	for c := 0; c < 2; c++ {
		for i, ws := range bgWS[c] {
			if err := populate(ws, lightUsers[c][i]); err != nil {
				return nil, err
			}
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	stagger := make(map[*itcfs.Workstation]time.Duration)
	for _, ws := range hotWS {
		stagger[ws] = time.Duration(rng.Int63n(int64(cfg.HotThink)))
	}
	for _, ws := range warmWS {
		stagger[ws] = time.Duration(rng.Int63n(int64(cfg.WarmThink)))
	}
	for c := 0; c < 2; c++ {
		for _, ws := range bgWS[c] {
			stagger[ws] = time.Duration(rng.Int63n(int64(cfg.LightThink)))
		}
	}

	var loadErr error
	reader := func(ws *itcfs.Workstation, owner string, think time.Duration, until sim.Time) {
		cell.Kernel.Spawn("read-"+ws.Name, func(p *sim.Proc) {
			p.Sleep(stagger[ws])
			for f := 0; p.Now() < until; f++ {
				if _, rerr := ws.FS.ReadFile(p, fmt.Sprintf("/vice/usr/%s/f%d", owner, f%cfg.Files)); rerr != nil {
					if loadErr == nil {
						loadErr = fmt.Errorf("reader %s: %w", ws.Name, rerr)
					}
					return
				}
				p.Sleep(think)
			}
		})
	}

	// Telemetry and the SLO layer on. The pre-phase Sample absorbs the
	// provisioning traffic into the monitor's histogram baselines, so phase A
	// starts with clean windows.
	t0 := cell.Now()
	horizon := 3*cfg.Phase + cfg.Cadence
	sampler := cell.StartSampling(cfg.Cadence, horizon)
	mon := monitor.AttachSLO(sampler, cell.Metrics, cell.Tracer, cell.Flight, monitor.SLOConfig{
		Objectives: []monitor.SLOObjective{{
			Class:   trace.SpanVenusOpen,
			Latency: cfg.Objective,
			Target:  cfg.Target,
		}},
		Window:     cfg.Window,
		BreachBurn: cfg.BreachBurn,
	})
	if mon == nil {
		return nil, fmt.Errorf("E17 breach: AttachSLO returned nil")
	}
	sampler.Sample(t0)

	// Phase A: background only — the burn rate should idle at zero.
	aEnd := t0.Add(cfg.Phase)
	for c := 0; c < 2; c++ {
		for i, ws := range bgWS[c] {
			reader(ws, lightUsers[c][i], cfg.LightThink, aEnd.Add(2*cfg.Phase))
		}
	}
	cell.Kernel.RunUntil(aEnd)
	if loadErr != nil {
		return nil, loadErr
	}
	if mon.Breaching(trace.SpanVenusOpen) {
		return nil, fmt.Errorf("E17 breach: SLO breached during the calm phase")
	}

	// Phase B: the cluster-1 readers pile onto server0.
	bEnd := aEnd.Add(cfg.Phase)
	for _, ws := range hotWS {
		reader(ws, "pub-hot", cfg.HotThink, bEnd)
	}
	for _, ws := range warmWS {
		reader(ws, "pub-warm", cfg.WarmThink, bEnd)
	}
	cell.Kernel.RunUntil(bEnd)
	if loadErr != nil {
		return nil, loadErr
	}

	// The overload detector reads the same telemetry; with UseSLO it cites
	// the burn rate in its finding.
	adv := monitor.New(cell, monitor.DefaultConfig())
	adv.UseSLO(mon)
	findings := adv.DetectOverload(sampler, cfg.Detect)

	// Phase C: hot load gone — the episode should close.
	cEnd := bEnd.Add(cfg.Phase)
	cell.Kernel.RunUntil(cEnd)
	if loadErr != nil {
		return nil, loadErr
	}

	br := &ObsBreach{SaturatedServer: saturated}
	for _, e := range cell.Flight.Events() {
		switch e.Kind {
		case trace.EventSLOBreach:
			br.Breaches++
			if br.Breaches == 1 {
				br.HotNode = e.Node
				br.FirstDetail = e.Detail
			}
		case trace.EventSLORecover:
			br.Recovered = true
		}
	}
	for _, p := range sampler.Points(trace.SLOBurnSeries(trace.SpanVenusOpen)) {
		if p.V > br.BurnMilliPeak {
			br.BurnMilliPeak = p.V
		}
	}
	if len(findings) > 0 {
		br.AdvisorReason = findings[0].Reason
	}
	if br.Breaches == 0 {
		return nil, fmt.Errorf("E17 breach: no %s flight event fired (peak burn %dm)", trace.EventSLOBreach, br.BurnMilliPeak)
	}
	return br, nil
}

// WriteJSON emits the bench as deterministic, indented JSON (struct field
// order; no map keys anywhere in the schema).
func (ob *ObsBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ob)
}

// Report renders both legs as a standard experiment table.
func (ob *ObsBench) Report() *Report {
	r := newReport("E17", "observability at scale: sampled tracing overhead + SLO breach attribution",
		"the trace plane established the paper's CPU-bound-servers claim; at 30k clients it must "+
			"stay on without distorting what it measures",
		"clients · leg", "wall s", "wall s/ch", "allocs/ch", "spans kept")
	for _, pt := range ob.Points {
		for _, leg := range pt.Legs {
			r.addRow(fmt.Sprintf("%d · %s", pt.Clients, leg.Mode),
				fmt.Sprintf("%.2f", leg.WallSeconds),
				fmt.Sprintf("%.6f", leg.WallPerClientHour),
				fmt.Sprintf("%.1f", leg.AllocsPerClientHour),
				fmt.Sprintf("%d", leg.SpansKept))
		}
		r.addRow(fmt.Sprintf("%d · sampled overhead", pt.Clients),
			fmt.Sprintf("%+.1f%%", pt.SampledWallOverheadPct), "",
			fmt.Sprintf("%+.1f", pt.SampledAllocsPerCHOver), "")
		r.addRow(fmt.Sprintf("%d · full overhead", pt.Clients),
			fmt.Sprintf("%+.1f%%", pt.FullWallOverheadPct), "",
			fmt.Sprintf("%+.1f", pt.FullAllocsPerCHOver), "")
		r.Metrics[fmt.Sprintf("sampled_wall_overhead_pct_%d", pt.Clients)] = pt.SampledWallOverheadPct
		r.Metrics[fmt.Sprintf("sampled_allocs_per_ch_over_%d", pt.Clients)] = pt.SampledAllocsPerCHOver
		r.Metrics[fmt.Sprintf("full_wall_overhead_pct_%d", pt.Clients)] = pt.FullWallOverheadPct
		r.Metrics[fmt.Sprintf("spans_sampled_%d", pt.Clients)] = float64(pt.Legs[1].SpansKept)
		r.Metrics[fmt.Sprintf("spans_full_%d", pt.Clients)] = float64(pt.Legs[2].SpansKept)
	}
	if br := ob.Breach; br != nil {
		r.addRow("slo.breach events", fmt.Sprintf("%d", br.Breaches), "", "", "")
		r.addRow("breach blamed node", br.HotNode, "", "", "")
		r.addRow("saturated server", br.SaturatedServer, "", "", "")
		r.addRow("peak burn rate", fmt.Sprintf("%.1fx", float64(br.BurnMilliPeak)/1000), "", "", "")
		r.addRow("episode recovered", fmt.Sprintf("%v", br.Recovered), "", "", "")
		r.Metrics["breaches"] = float64(br.Breaches)
		r.Metrics["burn_milli_peak"] = float64(br.BurnMilliPeak)
		if br.HotNode == br.SaturatedServer {
			r.Metrics["breach_named_saturated_server"] = 1
		}
		if br.Recovered {
			r.Metrics["breach_recovered"] = 1
		}
		if strings.Contains(br.AdvisorReason, "slo burn") {
			r.Metrics["advisor_cites_burn"] = 1
		}
	}
	return r
}
