package harness

import (
	"bytes"
	"testing"

	"itcfs"
	"itcfs/internal/sim"
	"itcfs/internal/trace"
	"itcfs/internal/workload"
)

// textRun executes a small traced Andrew benchmark and returns the human
// text exports: the span report and the final metrics snapshot. These are
// the surfaces EXPERIMENTS.md results are read from, so they — not just the
// Chrome JSON — must be replay-stable.
func textRun(t *testing.T, seed int64) (report, metrics []byte) {
	t.Helper()
	cell := itcfs.NewCell(itcfs.CellConfig{
		Mode:    itcfs.Revised,
		Trace:   true,
		Metrics: trace.NewRegistry(),
	})
	andrew := smallAndrew(seed)
	var err error
	cell.Run(func(p *sim.Proc) {
		var admin *itcfs.Admin
		if admin, err = cell.Admin(p, 0); err != nil {
			return
		}
		err = admin.NewUser(p, "bench", "pw", 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	ws := cell.AddWorkstation(0, "ws-det")
	cell.Run(func(p *sim.Proc) {
		if err = ws.Login(p, "bench", "pw"); err != nil {
			return
		}
		if _, err = workload.GenerateTree(p, ws.FS, "/vice/usr/bench/src", andrew); err != nil {
			return
		}
		_, err = workload.RunAndrew(p, ws.FS, "/vice/usr/bench/src", "/vice/usr/bench/dst", andrew)
	})
	if err != nil {
		t.Fatal(err)
	}
	var rep, met bytes.Buffer
	cell.Tracer.WriteReport(&rep)
	cell.Metrics.WriteText(&met)
	return rep.Bytes(), met.Bytes()
}

// e14Text runs a small E14 sweep and returns the printed report table — the
// surface EXPERIMENTS.md quotes — plus the metrics map rendered through it.
func e14Text(t *testing.T, seed int64) []byte {
	t.Helper()
	cfg := DefaultE14()
	cfg.Seed = seed
	cfg.Scale.Seed = seed
	cfg.Clients = []int{10} // tiny population: determinism, not scaling, is under test
	rep, err := E14Scalability(cfg)
	if err != nil {
		t.Fatalf("E14 (seed %d): %v", seed, err)
	}
	var buf bytes.Buffer
	rep.Print(&buf)
	return buf.Bytes()
}

// TestE14Determinism re-runs the scalability experiment with one seed and
// demands byte-identical report tables: the coalescing flusher processes,
// the concurrent install bursts, and the per-client rand streams must all
// replay exactly. A different seed must move the table, or the check is
// vacuous.
func TestE14Determinism(t *testing.T) {
	a := e14Text(t, 14)
	b := e14Text(t, 14)
	if !bytes.Equal(a, b) {
		t.Errorf("same seed produced different E14 reports:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
	if len(a) < 200 {
		t.Errorf("E14 report suspiciously small (%d bytes)", len(a))
	}
	c := e14Text(t, 15)
	if bytes.Equal(a, c) {
		t.Error("different seeds produced byte-identical E14 reports; seed is not flowing")
	}
}

// TestTextExportDeterminism is the regression test the itcvet analyzers
// exist to defend: two in-process runs with the same seed must produce
// byte-identical text trace reports and metrics snapshots. Any wall-clock
// leak, unseeded random draw, or map-iteration-ordered export shows up here
// as a diff.
func TestTextExportDeterminism(t *testing.T) {
	rep1, met1 := textRun(t, 7)
	rep2, met2 := textRun(t, 7)
	if !bytes.Equal(rep1, rep2) {
		t.Errorf("same seed produced different trace reports (%d vs %d bytes)", len(rep1), len(rep2))
	}
	if !bytes.Equal(met1, met2) {
		t.Errorf("same seed produced different metrics snapshots (%d vs %d bytes)", len(met1), len(met2))
	}
	if len(rep1) < 200 {
		t.Errorf("trace report suspiciously small (%d bytes): tracing not recording", len(rep1))
	}
	if len(met1) < 200 {
		t.Errorf("metrics snapshot suspiciously small (%d bytes): no counters flowed", len(met1))
	}
	// A different seed must actually move the outputs, or the equality
	// above is vacuously checking empty/constant exports.
	rep3, _ := textRun(t, 8)
	if bytes.Equal(rep1, rep3) {
		t.Error("different seeds produced byte-identical trace reports; seed is not flowing")
	}
}
