package harness

import (
	"fmt"
	"math/rand"
	"time"

	"itcfs"
	"itcfs/internal/rpc"
	"itcfs/internal/sim"
	"itcfs/internal/trace"
	"itcfs/internal/venus"
	"itcfs/internal/workload"
)

// E14 — scalability sweep. The paper's revised design exists to push "a
// server load of 20 typical users per cluster server" (§5.2) further; the
// two remaining storms at scale are callback fan-out (one RPC per broken
// promise per mutation) and revalidation (one TestValid per cached entry
// per sweep). E14 drives 100/300/1000 Venus instances through a seeded
// open/write/revalidate mix in virtual time, once with the batched
// BulkBreak/BulkTestValid plane and once with the legacy per-promise,
// per-entry protocol, and reports server utilization, p90 open latency,
// callback RPCs per broken promise, and revalidation round trips.

// E14Config sizes the scalability sweep.
type E14Config struct {
	Clients []int // client counts to sweep (e.g. 100, 300, 1000)
	Seed    int64
	Scale   workload.ScaleConfig // per-client mix (Seed field is overridden)
	// CallbackTTL bounds promise trust so the periodic sweeps have entries
	// to revalidate.
	CallbackTTL time.Duration
	// LoginStagger spreads client logins uniformly over this ramp. Zero
	// keeps the original all-at-once login (fine into the low thousands);
	// the kernel scale bench sets it, because tens of thousands of
	// simultaneous handshakes against one server exceed any retry budget —
	// and real workstation populations don't power on in the same instant.
	LoginStagger time.Duration
}

// DefaultE14 returns the standard configuration.
func DefaultE14() E14Config {
	return E14Config{
		Clients: []int{100, 300, 1000},
		Seed:    14,
		Scale:   workload.DefaultScale(14),
		// Above the sweep cadence (SweepEvery ops of mean Think), so the
		// forced sweeps refresh promises before they lapse and opens almost
		// never pay a one-off validation.
		CallbackTTL: 4 * time.Hour,
	}
}

// e14Side is one (client count, protocol) measurement.
type e14Side struct {
	util       float64       // server CPU utilization over the run
	p90        time.Duration // p90 venus.open latency
	breaks     int64         // promises broken
	breakRPCs  int64         // callback RPCs delivering them
	revalRPCs  int64         // revalidation round trips (TestValid + BulkTestValid)
	revalItems int64         // cached entries revalidated by sweeps
	elapsed    time.Duration // virtual time the client phase took
}

// E14Scalability runs the sweep and reports unbatched vs. batched columns
// per client count.
func E14Scalability(cfg E14Config) (*Report, error) {
	if len(cfg.Clients) == 0 {
		cfg = DefaultE14()
	}
	r := newReport("E14", "scalability: batched callback breaks + bulk revalidation",
		"callbacks add an invalidation message on each update and state on the server (§3.2); "+
			"batching both planes is what lets a cluster server face hundreds of Venera",
		"clients · metric", "unbatched", "batched")
	for _, n := range cfg.Clients {
		var sides [2]e14Side
		for i, batched := range []bool{false, true} {
			s, err := e14Run(cfg, n, batched)
			if err != nil {
				return nil, err
			}
			sides[i] = s
		}
		un, ba := sides[0], sides[1]
		row := func(metric, a, b string) {
			r.addRow(fmt.Sprintf("%d · %s", n, metric), a, b)
		}
		row("server CPU util", pct(un.util), pct(ba.util))
		row("p90 open latency", un.p90.Round(time.Millisecond).String(), ba.p90.Round(time.Millisecond).String())
		row("promises broken", fmt.Sprintf("%d", un.breaks), fmt.Sprintf("%d", ba.breaks))
		row("callback RPCs", fmt.Sprintf("%d", un.breakRPCs), fmt.Sprintf("%d", ba.breakRPCs))
		row("RPCs per break", ratio(un.breakRPCs, un.breaks), ratio(ba.breakRPCs, ba.breaks))
		row("revalidation RPCs", fmt.Sprintf("%d", un.revalRPCs), fmt.Sprintf("%d", ba.revalRPCs))
		row("entries revalidated", fmt.Sprintf("%d", un.revalItems), fmt.Sprintf("%d", ba.revalItems))
		r.Metrics[fmt.Sprintf("util_unbatched_%d", n)] = un.util
		r.Metrics[fmt.Sprintf("util_batched_%d", n)] = ba.util
		r.Metrics[fmt.Sprintf("p90_unbatched_ms_%d", n)] = float64(un.p90) / float64(time.Millisecond)
		r.Metrics[fmt.Sprintf("p90_batched_ms_%d", n)] = float64(ba.p90) / float64(time.Millisecond)
		r.Metrics[fmt.Sprintf("break_rpcs_unbatched_%d", n)] = float64(un.breakRPCs)
		r.Metrics[fmt.Sprintf("break_rpcs_batched_%d", n)] = float64(ba.breakRPCs)
		if ba.breakRPCs > 0 {
			r.Metrics[fmt.Sprintf("break_rpc_reduction_%d", n)] = float64(un.breakRPCs) / float64(ba.breakRPCs)
		}
		r.Metrics[fmt.Sprintf("reval_rpcs_unbatched_%d", n)] = float64(un.revalRPCs)
		r.Metrics[fmt.Sprintf("reval_rpcs_batched_%d", n)] = float64(ba.revalRPCs)
	}
	return r, nil
}

func ratio(a, b int64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(a)/float64(b))
}

// e14Run measures one point: n clients against one cluster server, batched
// or legacy protocol.
func e14Run(cfg E14Config, n int, batched bool) (e14Side, error) {
	scale := cfg.Scale
	scale.Seed = cfg.Seed
	reg := trace.NewRegistry()
	cc := itcfs.CellConfig{
		Mode:        itcfs.Revised,
		Clusters:    1,
		CallbackTTL: cfg.CallbackTTL,
		Metrics:     reg,
		Retry:       e14Retry(),
	}
	if !batched {
		cc.UnbatchedBreaks = true
		cc.RevalidateBatch = 1
	} else {
		// Let a busy server linger a few seconds before each BulkBreak
		// drain: install bursts serialize on server CPU, so their breaks
		// for one workstation arrive seconds apart and need a window that
		// wide to share RPCs. Updates still reply only after delivery.
		cc.BreakWindow = 8 * time.Second
	}
	cell := itcfs.NewCell(cc)
	var err error
	cell.Run(func(p *sim.Proc) {
		admin, aerr := cell.Admin(p, 0)
		if aerr != nil {
			err = aerr
			return
		}
		err = admin.NewUser(p, "load", "pw", 0)
	})
	if err != nil {
		return e14Side{}, err
	}

	// The pool is written by a setup workstation that then stays idle, so
	// every client starts cold and every client's copy is broken when a
	// writer strikes.
	setup := cell.AddWorkstation(0, "setup")
	cell.Run(func(p *sim.Proc) {
		if err = setup.Login(p, "load", "pw"); err != nil {
			return
		}
		r := rand.New(rand.NewSource(cfg.Seed))
		err = workload.PopulateShared(p, setup.FS, scale, r)
	})
	if err != nil {
		return e14Side{}, err
	}

	ws := make([]*itcfs.Workstation, n)
	for i := range ws {
		ws[i] = cell.AddWorkstation(0, fmt.Sprintf("scale-ws%04d", i))
	}
	srv := cell.Servers[0]
	cpu0 := srv.CPU.BusyTime()
	t0 := cell.Now()
	breaks0 := breaksOf(srv)
	breakRPCs0 := srv.Vice.Callbacks().BreakRPCs()

	errs := make([]error, n)
	for i := range ws {
		i := i
		u := workload.NewScaleUser(i, scale)
		start := cell.Now()
		if cfg.LoginStagger > 0 {
			start = start.Add(cfg.LoginStagger * time.Duration(i) / time.Duration(n))
		}
		cell.Kernel.SpawnAt(start, fmt.Sprintf("scale-%04d", i), func(p *sim.Proc) {
			if lerr := ws[i].Login(p, "load", "pw"); lerr != nil {
				errs[i] = lerr
				return
			}
			errs[i] = u.Run(p, ws[i].FS, ws[i].Venus)
		})
	}
	cell.Kernel.Run()
	for _, e := range errs {
		if e != nil {
			return e14Side{}, e
		}
	}

	side := e14Side{elapsed: cell.Now().Sub(t0)}
	if side.elapsed > 0 {
		side.util = float64(srv.CPU.BusyTime()-cpu0) / float64(side.elapsed)
	}
	if h := reg.FindHistogram(trace.MetricVenusOpenLatency); h != nil {
		side.p90 = h.Quantile(0.90)
	}
	side.breaks = breaksOf(srv) - breaks0
	side.breakRPCs = srv.Vice.Callbacks().BreakRPCs() - breakRPCs0
	var agg venus.Stats
	for _, w := range ws {
		st := w.Venus.Stats()
		agg.Validations += st.Validations
		agg.BulkValidations += st.BulkValidations
		agg.Revalidated += st.Revalidated
	}
	side.revalRPCs = agg.Validations + agg.BulkValidations
	side.revalItems = agg.Revalidated
	return side, nil
}

// e14Retry is the patient retry policy the E14 sweep and the kernel scale
// bench share: load spikes (a burst's refetch wave) can push queueing past
// one call timeout.
func e14Retry() rpc.RetryPolicy {
	return rpc.RetryPolicy{Attempts: 4, Backoff: 15 * time.Second, MaxBackoff: 2 * time.Minute}
}

func breaksOf(srv *itcfs.Server) int64 {
	_, breaks := srv.Vice.Callbacks().Stats()
	return breaks
}
