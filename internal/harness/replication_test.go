package harness

import (
	"bytes"
	"testing"
)

// e16Text runs E16 and returns the printed report — the surface
// EXPERIMENTS.md quotes — so determinism is checked on exactly what a
// reader sees.
func e16Text(t *testing.T, seed int64) []byte {
	t.Helper()
	cfg := DefaultE16()
	cfg.Seed = seed
	// Small but not degenerate: the window must comfortably cover the
	// crash plus enough post-crash reads to distinguish the two legs.
	cfg.Window = 4 * 60 * 1e9 // 4 minutes
	res, err := E16Replication(cfg)
	if err != nil {
		t.Fatalf("E16 (seed %d): %v", seed, err)
	}
	var buf bytes.Buffer
	res.Report.Print(&buf)
	return buf.Bytes()
}

// TestE16Determinism re-runs the replication experiment with one seed and
// demands byte-identical report tables: the release pushes, the crash, the
// failovers, the dedup counters and the Andrew run must all replay exactly.
// A different seed must move the table, or the check is vacuous. The
// experiment's own invariants (zero failed reads on the replicated leg, a
// real outage on the unreplicated one, dedup ratio >= 1.5) are asserted
// inside E16Replication, so a pass here also certifies them twice.
func TestE16Determinism(t *testing.T) {
	a := e16Text(t, 16)
	b := e16Text(t, 16)
	if !bytes.Equal(a, b) {
		t.Errorf("same seed produced different E16 reports:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
	if len(a) < 200 {
		t.Errorf("E16 report suspiciously small (%d bytes)", len(a))
	}
	c := e16Text(t, 17)
	if bytes.Equal(a, c) {
		t.Error("different seeds produced byte-identical E16 reports; seed is not flowing")
	}
}

// TestE16Claims pins the numbers the report's availability story rests on:
// replica-local readers never even fail over, the custodian's cluster
// keeps reading through failover, and the release actually pushed one
// install per replica.
func TestE16Claims(t *testing.T) {
	cfg := DefaultE16()
	cfg.Window = 4 * 60 * 1e9
	res, err := E16Replication(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Report.Metrics
	if m["failed_replicated"] != 0 {
		t.Errorf("replicated leg failed reads = %v, want 0", m["failed_replicated"])
	}
	if m["failed_unreplicated"] == 0 {
		t.Error("unreplicated leg shows no outage; the experiment proves nothing")
	}
	if m["failovers_replicated"] == 0 {
		t.Error("no failovers on the replicated leg: cluster-0 readers never exercised the fallback path")
	}
	if got, want := m["release_installs"], float64(cfg.Clusters-1); got != want {
		t.Errorf("release installs = %v, want %v (one per replica)", got, want)
	}
	if res.DedupRatio < 1.5 {
		t.Errorf("dedup ratio = %.2f, want >= 1.5", res.DedupRatio)
	}
	if m["andrew_ok_replicated"] != 1 {
		t.Error("Andrew run over the replicated tree did not complete")
	}
}
