package harness

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"itcfs"
	"itcfs/internal/fault"
	"itcfs/internal/rpc"
	"itcfs/internal/sim"
	"itcfs/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestKernelRefactorEquivalence pins the end-to-end behavior of the sim
// kernel across refactors. The goldens under testdata/ were recorded from
// the pre-refactor kernel (one goroutine per process, single global event
// heap, one heap pop per event); any kernel, mailbox, resource or netsim
// change that reorders a single event, shifts a virtual timestamp, or
// perturbs a seeded random stream shows up here as a byte diff against
// them. Two slices cover the two behavioral extremes:
//
//   - E12: the chaos harness — fault injection, retries, duplicate
//     suppression, a full server crash/restart — where event order decides
//     which frames the injector's seeded schedule drops.
//   - E14: the scalability mix — thousands of same-instant callback events,
//     coalescing flushers, concurrent install bursts — where same-instant
//     FIFO order decides batch contents.
//
// Run with -update to re-record after an intentional behavior change (never
// as part of a kernel performance refactor).
func TestKernelRefactorEquivalence(t *testing.T) {
	compareGolden(t, "equivalence_e12.golden", e12Fingerprint(t, 1985))
	compareGolden(t, "equivalence_e14.golden", e14Fingerprint(t, 14))
}

func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to record): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("kernel behavior diverged from pre-refactor golden %s\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// e12Fingerprint runs a compact chaos slice — the Andrew workload under a
// seeded fault injector with one mid-run server crash/restart — and renders
// every order-sensitive surface: the injector's fault schedule (which
// frames it dropped/duplicated/corrupted/delayed depends on exact frame
// order), frame-conservation counters, RPC retry/dup counts, and per-
// workstation cache stats.
func e12Fingerprint(t *testing.T, seed int64) []byte {
	t.Helper()
	cell := itcfs.NewCell(itcfs.CellConfig{
		Mode:        itcfs.Revised,
		Clusters:    1,
		Costs:       &itcfs.CostConfig{},
		CallTimeout: 10 * time.Second,
		Retry: rpc.RetryPolicy{
			Attempts:   6,
			Backoff:    2 * time.Second,
			MaxBackoff: 20 * time.Second,
			Jitter:     0.3,
			Seed:       seed,
		},
		CallbackTTL:      2 * time.Minute,
		ReconnectRetries: 3,
	})

	var err error
	cell.Run(func(p *sim.Proc) {
		admin, aerr := cell.Admin(p, 0)
		if aerr != nil {
			err = aerr
			return
		}
		err = admin.NewUser(p, "satya", "pw", 0)
	})
	if err != nil {
		t.Fatalf("provision: %v", err)
	}
	ws1 := cell.AddWorkstation(0, "ws-a")
	ws2 := cell.AddWorkstation(0, "ws-b")
	wcfg := workload.AndrewConfig{Seed: seed, Files: 10, Dirs: 2, MeanFileBytes: 512}
	cell.Run(func(p *sim.Proc) {
		if err = ws1.Login(p, "satya", "pw"); err != nil {
			return
		}
		if err = ws2.Login(p, "satya", "pw"); err != nil {
			return
		}
		_, err = workload.GenerateTree(p, ws1.FS, "/src", wcfg)
	})
	if err != nil {
		t.Fatalf("setup: %v", err)
	}

	inj := fault.New(fault.Config{
		Seed:        seed,
		DropProb:    0.05,
		DupProb:     0.05,
		CorruptProb: 0.03,
		DelayProb:   0.10,
		MaxDelay:    2 * time.Second,
	})
	cell.Net.SetFaultInjector(inj)
	inj.SetActive(true)
	cell.Kernel.Spawn("chaos-crash", func(p *sim.Proc) {
		p.Sleep(45 * time.Second)
		cell.CrashServer(0)
		p.Sleep(30 * time.Second)
		cell.RestartServer(0)
	})
	var runErr error
	cell.Run(func(p *sim.Proc) {
		_, runErr = workload.RunAndrew(p, ws1.FS, "/src", "/vice/usr/satya/andrew", wcfg)
	})
	if runErr != nil {
		t.Fatalf("andrew under faults: %v", runErr)
	}
	inj.SetActive(false)

	var retries, dupSuppressed int64
	retries += cell.Servers[0].Endpoint.Retries()
	dupSuppressed += cell.Servers[0].Endpoint.DupSuppressed()
	var wsStats []string
	for _, ws := range cell.Workstations() {
		retries += ws.Endpoint.Retries()
		dupSuppressed += ws.Endpoint.DupSuppressed()
		s := ws.Venus.Stats()
		wsStats = append(wsStats, fmt.Sprintf(
			"  %s: opens=%d hits=%d misses=%d fetches=%d stores=%d degraded=%d reconnects=%d",
			ws.Name, s.Opens, s.Hits, s.Misses, s.Fetches, s.Stores, s.DegradedReads, s.Reconnects))
	}
	sort.Strings(wsStats)
	net := cell.Net
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "E12 slice (seed %d) at %v\n", seed, cell.Kernel.Now())
	fmt.Fprintf(&buf, "frames: offered=%d delivered=%d partition=%d fault=%d down=%d dup=%d corrupt=%d delay=%d\n",
		net.Offered(), net.Delivered(), net.Drops(), net.FaultDrops(), net.DownDrops(),
		net.FaultDups(), net.FaultCorrupts(), net.FaultDelays())
	fmt.Fprintf(&buf, "rpc: retries=%d dup-suppressed=%d restarts=%d\n", retries, dupSuppressed,
		cell.Servers[0].Vice.Restarts())
	buf.WriteString(strings.Join(wsStats, "\n"))
	buf.WriteString("\nfault schedule:\n")
	buf.WriteString(inj.Report())
	return buf.Bytes()
}

// e14Fingerprint reuses the determinism surface: the printed E14 report
// table at a small population, batched and unbatched planes both included.
func e14Fingerprint(t *testing.T, seed int64) []byte {
	t.Helper()
	return e14Text(t, seed)
}
