package harness

import (
	"fmt"
	"io"
	"time"

	"itcfs"
	"itcfs/internal/sim"
	"itcfs/internal/trace"
	"itcfs/internal/workload"
)

// E13Config sizes the traced latency-breakdown experiment.
type E13Config struct {
	Andrew workload.AndrewConfig
	// Sample keeps every nth traced operation (0 or 1 = all).
	Sample int
}

// DefaultE13 traces the full Andrew benchmark.
func DefaultE13() E13Config {
	return E13Config{Andrew: workload.DefaultAndrew()}
}

// E13LatencyBreakdown runs the five-phase benchmark cold against a remote
// server with distributed tracing on, in both modes, and decomposes each
// operation's end-to-end latency into client, server and network components
// on the critical path. This is the instrumented version of the paper's
// §5.2 cost accounting: it shows where the prototype's time went (server
// service time on validates and walks) and what the revised design moved
// off the servers.
func E13LatencyBreakdown(cfg E13Config) (*Report, error) {
	r := newReport("E13", "Critical-path latency breakdown (traced Andrew run)",
		"server service time, not the network, bounds prototype performance (§5.2)",
		"mode", "op", "n", "mean", "client", "server", "net-queue", "net-serial", "net-prop")
	for _, mode := range []itcfs.Mode{itcfs.Prototype, itcfs.Revised} {
		tracer, err := tracedAndrew(mode, cfg)
		if err != nil {
			return nil, fmt.Errorf("E13 %v: %w", mode, err)
		}
		rows := trace.Analyze(tracer.Spans())
		var total, client, server, net time.Duration
		for _, b := range rows {
			if b.Count == 0 {
				continue
			}
			n := time.Duration(b.Count)
			r.addRow(mode.String(), b.Name, fmt.Sprintf("%d", b.Count),
				fmt.Sprint(b.Total/n), fmt.Sprint(b.Client/n), fmt.Sprint(b.Server/n),
				fmt.Sprint(b.NetQueue/n), fmt.Sprint(b.NetSerial/n), fmt.Sprint(b.NetProp/n))
			total += b.Total
			client += b.Client
			server += b.Server
			net += b.Net()
			// Exactness check: components must reassemble the measured
			// end-to-end time (acceptance bound is ±1%; the accounting is
			// designed to be exact on a fault-free network).
			gap := b.Total - b.Client - b.Server - b.Net()
			if gap < 0 {
				gap = -gap
			}
			key := mode.String() + "_sum_err"
			if rel := float64(gap) / float64(b.Total); rel > r.Metrics[key] {
				r.Metrics[key] = rel
			}
			key = mode.String() + "_min_client_ns"
			if v := float64(b.Client); b.Count > 0 && (r.Metrics[key] == 0 || v < r.Metrics[key]) {
				r.Metrics[key] = v
			}
		}
		if total > 0 {
			r.Metrics[mode.String()+"_client_frac"] = float64(client) / float64(total)
			r.Metrics[mode.String()+"_server_frac"] = float64(server) / float64(total)
			r.Metrics[mode.String()+"_net_frac"] = float64(net) / float64(total)
		}
	}
	return r, nil
}

// ExportTracedAndrew runs the traced benchmark in one mode and writes the
// Chrome trace-event JSON (loadable in Perfetto or chrome://tracing) to w.
func ExportTracedAndrew(mode itcfs.Mode, cfg E13Config, w io.Writer) error {
	tracer, err := tracedAndrew(mode, cfg)
	if err != nil {
		return err
	}
	return tracer.ExportChrome(w)
}

// tracedAndrew provisions a cell with tracing on, installs the source tree
// from a separate workstation (so the benchmark workstation is genuinely
// cold), resets the tracer at the measurement boundary, runs the benchmark
// remotely and returns the tracer holding the measured window's spans.
func tracedAndrew(mode itcfs.Mode, cfg E13Config) (*trace.Tracer, error) {
	cell := itcfs.NewCell(itcfs.CellConfig{
		Mode:        mode,
		Clusters:    1,
		Trace:       true,
		TraceSample: cfg.Sample,
		Metrics:     trace.NewRegistry(),
	})
	var err error
	cell.Run(func(p *sim.Proc) {
		var admin *itcfs.Admin
		if admin, err = cell.Admin(p, 0); err != nil {
			return
		}
		err = admin.NewUser(p, "bench", "pw", 0)
	})
	if err != nil {
		return nil, err
	}
	setupWS := cell.AddWorkstation(0, "bench-setup")
	cell.Run(func(p *sim.Proc) {
		if err = setupWS.Login(p, "bench", "pw"); err != nil {
			return
		}
		_, err = workload.GenerateTree(p, setupWS.FS, "/vice/usr/bench/src", cfg.Andrew)
	})
	if err != nil {
		return nil, err
	}
	benchWS := cell.AddWorkstation(0, "bench-cold")
	cell.Run(func(p *sim.Proc) {
		err = benchWS.Login(p, "bench", "pw")
	})
	if err != nil {
		return nil, err
	}
	cell.Tracer.Reset() // measure the benchmark, not the provisioning
	cell.Run(func(p *sim.Proc) {
		_, err = workload.RunAndrew(p, benchWS.FS,
			"/vice/usr/bench/src", "/vice/usr/bench/dst", cfg.Andrew)
	})
	if err != nil {
		return nil, err
	}
	return cell.Tracer, nil
}
