package harness

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"itcfs"
	"itcfs/internal/monitor"
	"itcfs/internal/sim"
	"itcfs/internal/trace"
)

// E15Config sizes the saturation-timeline experiment.
type E15Config struct {
	Seed int64
	// Cadence is the telemetry sampling window; Phase is how long each load
	// phase runs. The detector needs Detect.MinWindows full windows of
	// overload inside phase B, so Phase should be several times Cadence.
	Cadence time.Duration
	Phase   time.Duration
	// MoveGrace separates phases B and C: the first half drains in-flight
	// phase-B operations, then the operator moves the hot volume.
	MoveGrace time.Duration
	// HotReaders and WarmReaders are cluster-1 stations hammering the two
	// public volumes hosted (initially) on server0; LightPerCluster stations
	// per cluster read their own local home volumes throughout.
	HotReaders      int
	WarmReaders     int
	LightPerCluster int
	Files           int // files per volume, read round-robin
	FileBytes       int
	// Per-group think times between reads; the hot group's shorter think is
	// what pushes server0 over its CPU ceiling in phase B.
	HotThink   time.Duration
	WarmThink  time.Duration
	LightThink time.Duration
	Detect     monitor.OverloadConfig
	// FlightEvents bounds the cell's flight-recorder ring.
	FlightEvents int
}

// DefaultE15 returns the standard configuration: phase B offers roughly 110%
// of one server's CPU (hot + warm + background), and after the hot volume
// moves, each server carries well under the detection threshold.
func DefaultE15() E15Config {
	return E15Config{
		Seed:            1,
		Cadence:         30 * time.Second,
		Phase:           10 * time.Minute,
		MoveGrace:       time.Minute,
		HotReaders:      6,
		WarmReaders:     4,
		LightPerCluster: 2,
		Files:           6,
		FileBytes:       8 << 10,
		HotThink:        1700 * time.Millisecond,
		WarmThink:       1250 * time.Millisecond,
		LightThink:      1200 * time.Millisecond,
		Detect:          monitor.DefaultOverloadConfig(),
		FlightEvents:    512,
	}
}

// E15Result is the experiment outcome plus its rendered telemetry surfaces,
// which itcbench -timeline prints and the determinism test byte-compares.
type E15Result struct {
	Report  *Report
	Cell    *itcfs.Cell
	Finding monitor.HotVolume
	// Timeline is the sampler's text dashboard; Flight the recorder dump.
	Timeline string
	Flight   string
}

// E15HotVolume replays §5.2's saturation story in time-resolved form. Two
// public volumes live on server0; in phase B a burst of cluster-1 readers
// drives server0 over its CPU ceiling while server1 idles. The windowed
// overload detector reads the sampled telemetry, names the onset window and
// the hottest volume, and recommends moving it to the coolest peer; a
// simulated operator applies the move, and phase C runs the same load with
// both servers below threshold. Everything — series, dashboard, flight
// recorder, the report — replays byte-identically under one seed.
func E15HotVolume(cfg E15Config) (*E15Result, error) {
	cell := itcfs.NewCell(itcfs.CellConfig{
		Mode:         itcfs.Prototype,
		Clusters:     2,
		Metrics:      trace.NewRegistry(),
		FlightEvents: cfg.FlightEvents,
	})

	// Provision: the two public volumes (owners pub-hot, pub-warm) stay on
	// server0 where CreateVolume put them; each background user's home is
	// moved to their own cluster server, the standard placement.
	lightUsers := [2][]string{}
	for c := 0; c < 2; c++ {
		for i := 0; i < cfg.LightPerCluster; i++ {
			lightUsers[c] = append(lightUsers[c], fmt.Sprintf("bg%d-%d", c, i))
		}
	}
	var hotVol uint32
	var err error
	cell.Run(func(p *sim.Proc) {
		admin, aerr := cell.Admin(p, 0)
		if aerr != nil {
			err = aerr
			return
		}
		if hotVol, err = admin.NewUserAt(p, "pub-hot", "pw", 0, ""); err != nil {
			return
		}
		if _, err = admin.NewUserAt(p, "pub-warm", "pw", 0, ""); err != nil {
			return
		}
		for c := 0; c < 2; c++ {
			home := cell.Servers[c].Vice.Name()
			for _, name := range lightUsers[c] {
				if _, err = admin.NewUserAt(p, name, "pw", 0, home); err != nil {
					return
				}
			}
		}
	})
	if err != nil {
		return nil, fmt.Errorf("E15 provisioning: %w", err)
	}

	// Stations. The shared-volume readers all sit in cluster 1 — their load
	// crosses the backbone to server0, the misplacement the move repairs.
	addGroup := func(n int, cluster int, prefix, user string) ([]*itcfs.Workstation, error) {
		var group []*itcfs.Workstation
		for i := 0; i < n; i++ {
			ws := cell.AddWorkstation(cluster, fmt.Sprintf("%s%d", prefix, i))
			group = append(group, ws)
			u := user
			if u == "" {
				u = lightUsers[cluster][i]
			}
			var lerr error
			cell.Run(func(p *sim.Proc) { lerr = ws.Login(p, u, "pw") })
			if lerr != nil {
				return nil, lerr
			}
		}
		return group, nil
	}
	hotWS, err := addGroup(cfg.HotReaders, 1, "hot-ws", "pub-hot")
	if err != nil {
		return nil, err
	}
	warmWS, err := addGroup(cfg.WarmReaders, 1, "warm-ws", "pub-warm")
	if err != nil {
		return nil, err
	}
	bgWS := [2][]*itcfs.Workstation{}
	for c := 0; c < 2; c++ {
		if bgWS[c], err = addGroup(cfg.LightPerCluster, c, fmt.Sprintf("bg%d-ws", c), ""); err != nil {
			return nil, err
		}
	}

	// Populate every volume from one logged-in station each.
	populate := func(ws *itcfs.Workstation, owner string) error {
		var werr error
		cell.Run(func(p *sim.Proc) {
			for f := 0; f < cfg.Files; f++ {
				body := make([]byte, cfg.FileBytes)
				for b := range body {
					body[b] = byte(f)
				}
				if werr = ws.FS.WriteFile(p, fmt.Sprintf("/vice/usr/%s/f%d", owner, f), body); werr != nil {
					return
				}
			}
		})
		return werr
	}
	if err := populate(hotWS[0], "pub-hot"); err != nil {
		return nil, err
	}
	if err := populate(warmWS[0], "pub-warm"); err != nil {
		return nil, err
	}
	for c := 0; c < 2; c++ {
		for i, ws := range bgWS[c] {
			if err := populate(ws, lightUsers[c][i]); err != nil {
				return nil, err
			}
		}
	}

	// Per-station start staggers, drawn deterministically from the seed in a
	// fixed order, so the stations never march in lockstep.
	rng := rand.New(rand.NewSource(cfg.Seed))
	stagger := make(map[*itcfs.Workstation]time.Duration)
	for _, ws := range hotWS {
		stagger[ws] = time.Duration(rng.Int63n(int64(cfg.HotThink)))
	}
	for _, ws := range warmWS {
		stagger[ws] = time.Duration(rng.Int63n(int64(cfg.WarmThink)))
	}
	for c := 0; c < 2; c++ {
		for _, ws := range bgWS[c] {
			stagger[ws] = time.Duration(rng.Int63n(int64(cfg.LightThink)))
		}
	}

	var loadErr error
	reader := func(ws *itcfs.Workstation, owner string, think time.Duration, until sim.Time) {
		cell.Kernel.Spawn("read-"+ws.Name, func(p *sim.Proc) {
			p.Sleep(stagger[ws])
			for f := 0; p.Now() < until; f++ {
				if _, rerr := ws.FS.ReadFile(p, fmt.Sprintf("/vice/usr/%s/f%d", owner, f%cfg.Files)); rerr != nil {
					if loadErr == nil {
						loadErr = fmt.Errorf("reader %s: %w", ws.Name, rerr)
					}
					return
				}
				p.Sleep(think)
			}
		})
	}
	spawnPhase := func(until sim.Time, shared bool) {
		if shared {
			for _, ws := range hotWS {
				reader(ws, "pub-hot", cfg.HotThink, until)
			}
			for _, ws := range warmWS {
				reader(ws, "pub-warm", cfg.WarmThink, until)
			}
		}
		for c := 0; c < 2; c++ {
			for i, ws := range bgWS[c] {
				reader(ws, lightUsers[c][i], cfg.LightThink, until)
			}
		}
	}

	// Telemetry on. From here the kernel is driven with RunUntil only: the
	// sampler's tick events extend to the horizon, and Run() would drain
	// straight through it.
	t0 := cell.Now()
	horizon := 3*cfg.Phase + cfg.MoveGrace + cfg.Cadence
	sampler := cell.StartSampling(cfg.Cadence, horizon)

	// Phase A: background load only — the calm before.
	aEnd := t0.Add(cfg.Phase)
	spawnPhase(aEnd, false)
	cell.Kernel.RunUntil(aEnd)
	if loadErr != nil {
		return nil, loadErr
	}

	// Phase B: the cluster-1 readers pile onto server0's public volumes.
	bEnd := aEnd.Add(cfg.Phase)
	spawnPhase(bEnd, true)
	cell.Kernel.RunUntil(bEnd)
	if loadErr != nil {
		return nil, loadErr
	}

	// The detector reads the sampled series as they stand at the end of B.
	adv := monitor.New(cell, monitor.DefaultConfig())
	findings := adv.DetectOverload(sampler, cfg.Detect)
	if len(findings) == 0 {
		return nil, fmt.Errorf("E15: overload detector found nothing at end of phase B")
	}
	hv := findings[0]
	if hv.To == "" {
		return nil, fmt.Errorf("E15: detector produced no destination for volume %d", hv.Volume)
	}

	// Let in-flight phase-B operations drain, then the operator moves the
	// hot volume and salvages it at its new custodian.
	drainEnd := bEnd.Add(cfg.MoveGrace / 2)
	cell.Kernel.RunUntil(drainEnd)
	target := -1
	for i, s := range cell.Servers {
		if s.Vice.Name() == hv.To {
			target = i
		}
	}
	if target < 0 {
		return nil, fmt.Errorf("E15: detector recommended unknown server %s", hv.To)
	}
	moved := false
	cell.Kernel.Spawn("operator-move", func(p *sim.Proc) {
		admin, aerr := cell.Admin(p, 0)
		if aerr != nil {
			err = aerr
			return
		}
		if err = admin.MoveVolume(p, hv.Volume, hv.To); err != nil {
			return
		}
		dst, aerr := cell.Admin(p, target)
		if aerr != nil {
			err = aerr
			return
		}
		if _, err = dst.Salvage(p, hv.Volume); err != nil {
			return
		}
		moved = true
	})
	moveEnd := bEnd.Add(cfg.MoveGrace)
	cell.Kernel.RunUntil(moveEnd)
	if err != nil {
		return nil, fmt.Errorf("E15 operator: %w", err)
	}
	if !moved {
		return nil, fmt.Errorf("E15: volume move did not finish within the grace window")
	}

	// Phase C: the same load, rebalanced.
	cEnd := moveEnd.Add(cfg.Phase)
	spawnPhase(cEnd, true)
	cell.Kernel.RunUntil(cEnd)
	if loadErr != nil {
		return nil, loadErr
	}

	utilStats := func(server string, from, to sim.Time) (mean, peak float64) {
		n := 0
		for _, p := range sampler.Points(itcfs.ServerCPUSeries(server)) {
			if p.At > from && p.At <= to {
				u := float64(p.V) / float64(cfg.Cadence)
				mean += u
				n++
				if u > peak {
					peak = u
				}
			}
		}
		if n > 0 {
			mean /= float64(n)
		}
		return mean, peak
	}
	s0, s1 := cell.Servers[0].Vice.Name(), cell.Servers[1].Vice.Name()
	meanA0, _ := utilStats(s0, t0, aEnd)
	meanA1, _ := utilStats(s1, t0, aEnd)
	meanB0, peakB0 := utilStats(s0, aEnd, bEnd)
	meanB1, peakB1 := utilStats(s1, aEnd, bEnd)
	meanC0, peakC0 := utilStats(s0, moveEnd, cEnd)
	meanC1, peakC1 := utilStats(s1, moveEnd, cEnd)
	postMove0 := adv.MeanUtilSince(sampler, s0, moveEnd)
	postMove1 := adv.MeanUtilSince(sampler, s1, moveEnd)

	r := newReport("E15", "Time-series telemetry: detect and relieve a saturated server",
		"server CPU \"sometimes peaking at 98% utilization\" (§5.2); volume moves rebalance load (§3.6)",
		"phase / metric", s0, s1)
	r.addRow("A background · mean CPU util", pct(meanA0), pct(meanA1))
	r.addRow("B hot volumes · mean CPU util", pct(meanB0), pct(meanB1))
	r.addRow("B hot volumes · peak CPU util", pct(peakB0), pct(peakB1))
	r.addRow("C after move · mean CPU util", pct(meanC0), pct(meanC1))
	r.addRow("C after move · peak CPU util", pct(peakC0), pct(peakC1))
	r.addRow("overload onset (virtual time)", hv.Onset.String(), "—")
	r.addRow("windows over threshold", fmt.Sprintf("%d", hv.Windows), "—")
	r.addRow("hottest volume", fmt.Sprintf("vol %d (%d sampled ops)", hv.Volume, hv.VolumeOps), "—")
	r.addRow("applied move", fmt.Sprintf("vol %d → %s", hv.Volume, hv.To), "—")
	r.addRow("post-move advisor check", pct(postMove0), pct(postMove1))
	r.addRow("flight events recorded", fmt.Sprintf("%d", cell.Flight.Total()), "—")

	r.Metrics["detector_fired"] = 1
	r.Metrics["onset_s"] = hv.Onset.Seconds()
	r.Metrics["b_start_s"] = aEnd.Seconds()
	r.Metrics["b_end_s"] = bEnd.Seconds()
	r.Metrics["hot_volume"] = float64(hv.Volume)
	r.Metrics["expected_hot_volume"] = float64(hotVol)
	r.Metrics["overload_windows"] = float64(hv.Windows)
	r.Metrics["mean_a_s0"] = meanA0
	r.Metrics["mean_b_s0"] = meanB0
	r.Metrics["mean_b_s1"] = meanB1
	r.Metrics["peak_b_s0"] = peakB0
	r.Metrics["peak_b_s1"] = peakB1
	r.Metrics["mean_c_s0"] = meanC0
	r.Metrics["mean_c_s1"] = meanC1
	r.Metrics["peak_c_s0"] = peakC0
	r.Metrics["peak_c_s1"] = peakC1
	r.Metrics["imbalance_b"] = meanB0 - meanB1
	r.Metrics["imbalance_c"] = meanC0 - meanC1
	r.Metrics["flight_events"] = float64(cell.Flight.Total())

	var tl, fl strings.Builder
	sampler.WriteDashboard(&tl)
	cell.Flight.WriteText(&fl)
	return &E15Result{
		Report:   r,
		Cell:     cell,
		Finding:  hv,
		Timeline: tl.String(),
		Flight:   fl.String(),
	}, nil
}
