package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"itcfs"
	"itcfs/internal/sim"
	"itcfs/internal/trace"
	"itcfs/internal/workload"
)

// Scale bench — the simulator's own performance trajectory. Every other
// experiment measures the simulated system in virtual time; this one measures
// the simulator in real time: wall-clock seconds and heap allocations per
// simulated client-hour of the batched E14 mix, at increasing client counts.
// The numbers gate the kernel-scale refactor (bucketed timetable, pooled
// messages and frames, flattened receive paths): BENCH_scale.json, emitted
// from this code and committed at the repo root, records the trajectory, and
// ci.sh re-emits it and compares the schema so the file cannot silently rot.

// ScalePoint is one measured client count.
type ScalePoint struct {
	Clients int `json:"clients"`
	// ClientHours is clients times the virtual hours the client phase took —
	// the work actually simulated, and the normalizer for the two unit costs.
	ClientHours float64 `json:"client_hours"`
	WallSeconds float64 `json:"wall_seconds"`
	Allocs      uint64  `json:"allocs"`
	// WallPerClientHour and AllocsPerClientHour are the headline unit costs:
	// real seconds and heap allocations spent to simulate one client-hour.
	WallPerClientHour   float64 `json:"wall_seconds_per_client_hour"`
	AllocsPerClientHour float64 `json:"allocs_per_client_hour"`
}

// ScaleImprovement compares the reference point against the pre-refactor
// baseline, as ratios (baseline cost / current cost; higher is better).
type ScaleImprovement struct {
	ReferenceClients int     `json:"reference_clients"`
	Wall             float64 `json:"wall"`
	Allocs           float64 `json:"allocs"`
}

// ScaleBench is the full trajectory, serialized as BENCH_scale.json.
type ScaleBench struct {
	Schema   string `json:"schema"`
	Workload string `json:"workload"`
	Quick    bool   `json:"quick"`
	// Baseline is the pre-refactor kernel at 1000 clients, measured from the
	// same tree with the refactor stashed (best of 3). It is embedded as data
	// rather than re-measured because the pre-refactor code no longer exists
	// in the tree.
	Baseline    ScalePoint        `json:"baseline"`
	Points      []ScalePoint      `json:"points"`
	Improvement *ScaleImprovement `json:"improvement"`
	// Note records measurement caveats; see the refactor discussion in
	// DESIGN.md §11 for why allocations improved far more than wall time.
	Note string `json:"note"`
}

// preRefactorBaseline is the unrefactored kernel (heap-per-event timetable,
// per-message allocation, per-name metric lookups, dispatcher processes)
// driving batched E14 at 1000 clients: best of 3 runs of the same
// measurement loop, taken via `git stash` from the refactored tree.
var preRefactorBaseline = ScalePoint{
	Clients:             1000,
	ClientHours:         26392.4,
	WallSeconds:         5.417,
	Allocs:              14569414,
	WallPerClientHour:   0.000205,
	AllocsPerClientHour: 552,
}

// ScaleBenchConfig sizes a scale-bench run.
type ScaleBenchConfig struct {
	Clients []int // client counts, in reporting order
	Reps    int   // measurement repetitions per count, best-of (0 = 1)
	Quick   bool  // shrink the per-client mix for CI smoke runs
}

// DefaultScaleBench returns the standard trajectory: the tentpole's 1k/10k/30k
// sweep at one rep.
func DefaultScaleBench() ScaleBenchConfig {
	return ScaleBenchConfig{Clients: []int{1000, 10000, 30000}}
}

// RunScaleBench measures the trajectory. Wall-clock time is the measurement
// here, not a hidden dependency: the simulated outcome is deterministic and
// unaffected.
func RunScaleBench(cfg ScaleBenchConfig) (*ScaleBench, error) {
	if len(cfg.Clients) == 0 {
		cfg.Clients = DefaultScaleBench().Clients
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 1
	}
	e14 := DefaultE14()
	if cfg.Quick {
		// A lighter per-client mix with the same shape: enough ops to touch
		// every hot path (browse, hot-set reads, bursts, sweeps), few enough
		// that a 10k-client smoke fits in CI.
		e14.Scale.Ops = 10
		e14.Scale.Browse = 4
		e14.Scale.Stagger = 2 * time.Hour
	}
	sb := &ScaleBench{
		Schema:   "itcfs-bench-scale/v1",
		Workload: "E14 batched: shared-pool browse + zipf re-reads + publisher bursts + TTL sweeps",
		Quick:    cfg.Quick,
		Baseline: preRefactorBaseline,
		Note: "allocs improved ~7x; wall ~2x, floored by real AES-CTR/HMAC sealing " +
			"and goroutine-based process switches (see DESIGN.md)",
	}
	for _, n := range cfg.Clients {
		best := ScalePoint{}
		for rep := 0; rep < cfg.Reps; rep++ {
			p, err := measureScalePoint(e14, n)
			if err != nil {
				return nil, fmt.Errorf("scale bench at %d clients: %w", n, err)
			}
			if rep == 0 || p.WallSeconds < best.WallSeconds {
				best = p
			}
		}
		sb.Points = append(sb.Points, best)
	}
	ref := sb.Points[0]
	sb.Improvement = &ScaleImprovement{
		ReferenceClients: ref.Clients,
		Wall:             round3(sb.Baseline.WallPerClientHour / ref.WallPerClientHour),
		Allocs:           round3(sb.Baseline.AllocsPerClientHour / ref.AllocsPerClientHour),
	}
	return sb, nil
}

// scaleClusterSize is the client population one cluster server carries in
// the sharded scale bench. Beyond the E14 sweep's single-server range the
// deployment grows with the population — one cluster server per
// scaleClusterSize clients, each cluster with its own shared pool — exactly
// how the paper's cell scales (§3.1). The bench measures the simulator's
// cost per client-hour, so the simulated system must stay inside its own
// operating envelope (a server drowning under 30k clients would measure
// timeout storms, not kernel throughput); 1000 clients already run one
// server at ~55% CPU with minute-scale p90 open latency, so the shards are
// half that, leaving headroom for the cross-cluster traffic every cluster
// sends the root volume's custodian (login stats, cold browse walks, sweep
// revalidations of the cached root path).
const scaleClusterSize = 500

// scaleArrivalSpacing floors the mean time between client arrivals in the
// sharded bench. Each arriving client's login and cold walk of /vice and
// /vice/usr land on the root volume's custodian regardless of cluster, so
// the sustainable arrival rate is a property of that one server, not of the
// population; 3.6 s/client is the rate the 10,000-clients-over-10-hours
// point sustains with headroom.
const scaleArrivalSpacing = 3600 * time.Millisecond

// measureScalePoint runs the batched E14 mix once at n clients, measuring
// real time and allocations around the whole run (setup included: at 30k
// clients, building the cell is part of what must scale). At or below 1000
// clients it runs the exact single-cluster e14Run the pre-refactor baseline
// was measured with, so the improvement ratio compares identical workloads;
// above that, the sharded multi-cluster variant.
func measureScalePoint(cfg E14Config, n int) (ScalePoint, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now() //itcvet:allow wallclock -- the scale bench measures real elapsed time by design
	var elapsed time.Duration
	if n <= 1000 {
		side, err := e14Run(cfg, n, true)
		if err != nil {
			return ScalePoint{}, err
		}
		elapsed = side.elapsed
	} else {
		var err error
		_, elapsed, err = scaleRun(cfg, n, nil)
		if err != nil {
			return ScalePoint{}, err
		}
	}
	wall := time.Since(start) //itcvet:allow wallclock -- the scale bench measures real elapsed time by design
	runtime.ReadMemStats(&after)
	allocs := after.Mallocs - before.Mallocs
	ch := float64(n) * elapsed.Seconds() / 3600
	p := ScalePoint{
		Clients:     n,
		ClientHours: round3(ch),
		WallSeconds: round3(wall.Seconds()),
		Allocs:      allocs,
	}
	if ch > 0 {
		p.WallPerClientHour = round6(wall.Seconds() / ch)
		p.AllocsPerClientHour = round3(float64(allocs) / ch)
	}
	return p, nil
}

// scaleRun drives the batched E14 mix at n clients across one cluster per
// scaleClusterSize of them: per-cluster load users, shared pools and
// publishers (clients round-robin over clusters, so each cluster's client 0
// is its publisher), with logins ramped over the op stagger window. mut, when
// non-nil, adjusts the cell configuration before the cell is built — how E17
// ablates the observability plane over the identical workload. Returns the
// cell and the virtual time the client phase took.
func scaleRun(cfg E14Config, n int, mut func(*itcfs.CellConfig)) (*itcfs.Cell, time.Duration, error) {
	clusters := (n + scaleClusterSize - 1) / scaleClusterSize
	reg := trace.NewRegistry()
	cc := itcfs.CellConfig{
		Mode:        itcfs.Revised,
		Clusters:    clusters,
		CallbackTTL: cfg.CallbackTTL,
		Metrics:     reg,
		Retry:       e14Retry(),
		BreakWindow: 8 * time.Second,
	}
	if mut != nil {
		mut(&cc)
	}
	cell := itcfs.NewCell(cc)

	// Widen the arrival ramp (login spawn ramp plus each client's own start
	// stagger) so arrivals never exceed the shared-root custodian's
	// sustainable rate — workstation populations this size don't power on
	// at one instant anyway.
	stagger := cfg.Scale.Stagger
	if min := time.Duration(n) * scaleArrivalSpacing; stagger < min {
		stagger = min
	}

	loadUser := func(c int) string { return fmt.Sprintf("load%d", c) }
	poolRoot := func(c int) string { return fmt.Sprintf("/vice/usr/load%d/shared", c) }
	perCluster := func(c int) workload.ScaleConfig {
		sc := cfg.Scale
		// Decorrelate the clusters' schedules: each gets its own seed, pool
		// and publisher, like independent buildings on one campus.
		sc.Seed = cfg.Seed + int64(c)*1_000_003
		sc.Root = poolRoot(c)
		sc.Stagger = stagger
		return sc
	}

	var err error
	cell.Run(func(p *sim.Proc) {
		admin, aerr := cell.Admin(p, 0)
		if aerr != nil {
			err = aerr
			return
		}
		for c := 0; c < clusters; c++ {
			if _, aerr := admin.NewUserAt(p, loadUser(c), "pw", 0, cell.Servers[c].Vice.Name()); aerr != nil {
				err = aerr
				return
			}
		}
	})
	if err != nil {
		return nil, 0, err
	}
	for c := 0; c < clusters; c++ {
		c := c
		setup := cell.AddWorkstation(c, fmt.Sprintf("setup%d", c))
		cell.Run(func(p *sim.Proc) {
			if err = setup.Login(p, loadUser(c), "pw"); err != nil {
				return
			}
			sc := perCluster(c)
			r := rand.New(rand.NewSource(sc.Seed))
			err = workload.PopulateShared(p, setup.FS, sc, r)
		})
		if err != nil {
			return nil, 0, err
		}
	}

	ws := make([]*itcfs.Workstation, n)
	for i := range ws {
		ws[i] = cell.AddWorkstation(i%clusters, fmt.Sprintf("scale-ws%05d", i))
	}
	t0 := cell.Now()
	errs := make([]error, n)
	for i := range ws {
		i := i
		c := i % clusters
		u := workload.NewScaleUser(i/clusters, perCluster(c))
		start := t0
		if stagger > 0 {
			start = start.Add(stagger * time.Duration(i) / time.Duration(n))
		}
		cell.Kernel.SpawnAt(start, fmt.Sprintf("scale-%05d", i), func(p *sim.Proc) {
			if lerr := ws[i].Login(p, loadUser(c), "pw"); lerr != nil {
				errs[i] = lerr
				return
			}
			errs[i] = u.Run(p, ws[i].FS, ws[i].Venus)
		})
	}
	cell.Kernel.Run()
	for _, e := range errs {
		if e != nil {
			return nil, 0, e
		}
	}
	return cell, cell.Now().Sub(t0), nil
}

func round3(v float64) float64 { return roundTo(v, 1e3) }
func round6(v float64) float64 { return roundTo(v, 1e6) }

func roundTo(v, scale float64) float64 {
	if v < 0 {
		return -roundTo(-v, scale)
	}
	return float64(int64(v*scale+0.5)) / scale
}

// WriteJSON emits the bench as deterministic, indented JSON (struct field
// order; no map keys anywhere in the schema).
func (sb *ScaleBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sb)
}

// Report renders the trajectory as a standard experiment table.
func (sb *ScaleBench) Report() *Report {
	r := newReport("SCALE", "sim-kernel cost per simulated client-hour (batched E14)",
		"the revised design exists to serve many more clients per server; the simulator "+
			"itself must scale to drive that population",
		"clients", "client-hours", "wall s", "wall s/ch", "allocs/ch")
	base := sb.Baseline
	r.addRow(fmt.Sprintf("%d (pre-refactor)", base.Clients),
		fmt.Sprintf("%.1f", base.ClientHours),
		fmt.Sprintf("%.2f", base.WallSeconds),
		fmt.Sprintf("%.6f", base.WallPerClientHour),
		fmt.Sprintf("%.0f", base.AllocsPerClientHour))
	for _, p := range sb.Points {
		r.addRow(fmt.Sprintf("%d", p.Clients),
			fmt.Sprintf("%.1f", p.ClientHours),
			fmt.Sprintf("%.2f", p.WallSeconds),
			fmt.Sprintf("%.6f", p.WallPerClientHour),
			fmt.Sprintf("%.0f", p.AllocsPerClientHour))
		r.Metrics[fmt.Sprintf("wall_per_ch_%d", p.Clients)] = p.WallPerClientHour
		r.Metrics[fmt.Sprintf("allocs_per_ch_%d", p.Clients)] = p.AllocsPerClientHour
	}
	if imp := sb.Improvement; imp != nil {
		r.addRow(fmt.Sprintf("improvement @%d", imp.ReferenceClients), "",
			"", fmt.Sprintf("%.1fx", imp.Wall), fmt.Sprintf("%.1fx", imp.Allocs))
		r.Metrics["improvement_wall"] = imp.Wall
		r.Metrics["improvement_allocs"] = imp.Allocs
	}
	return r
}
