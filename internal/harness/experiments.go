package harness

import (
	"fmt"
	"time"

	"itcfs"
	"itcfs/internal/sim"
	"itcfs/internal/vice"
	"itcfs/internal/workload"
)

// E1Config sizes the call-mix experiment.
type E1Config struct {
	Load    LoadConfig
	Warm    time.Duration
	Measure time.Duration
}

// DefaultE1 returns the standard configuration: the paper's operating point
// of 20 workstations on one prototype server.
func DefaultE1() E1Config {
	return E1Config{
		Load:    DefaultLoad(itcfs.Prototype),
		Warm:    30 * time.Minute,
		Measure: 2 * time.Hour,
	}
}

// E1CallMix reproduces the histogram of calls received by servers in actual
// use (§5.2): cache-validity checks 65%, file status 27%, fetch 4%,
// store 2% — more than 98% of all calls.
func E1CallMix(cfg E1Config) (*Report, error) {
	lc, err := BuildLoadedCell(cfg.Load)
	if err != nil {
		return nil, err
	}
	if err := lc.Drive(cfg.Load, cfg.Warm, cfg.Measure); err != nil {
		return nil, err
	}
	mix, total := lc.CallMix()
	r := newReport("E1", "Histogram of calls received by servers",
		"validity checks 65%, status 27%, fetch 4%, store 2% (>98% of calls)",
		"call", "paper", "measured")
	paper := map[string]string{
		"TestValid (cache validity)": "65%",
		"GetFileStat (status)":       "27%",
		"Fetch":                      "4%",
		"Store":                      "2%",
	}
	for _, name := range sortedKeys(mix) {
		p := paper[name]
		if p == "" {
			p = "—"
		}
		r.addRow(name, p, pct(mix[name]))
	}
	r.addRow("total calls", "—", fmt.Sprintf("%d", total))
	r.Metrics["validate"] = mix["TestValid (cache validity)"]
	r.Metrics["status"] = mix["GetFileStat (status)"]
	r.Metrics["fetch"] = mix["Fetch"]
	r.Metrics["store"] = mix["Store"]
	r.Metrics["top4"] = r.Metrics["validate"] + r.Metrics["status"] + r.Metrics["fetch"] + r.Metrics["store"]
	r.Metrics["total"] = float64(total)
	return r, nil
}

// E2Config sizes the utilization experiment.
type E2Config struct {
	Load       LoadConfig
	Warm       time.Duration
	Measure    time.Duration
	PeakWindow time.Duration
}

// DefaultE2 approximates the paper's deployment: 6 cluster servers with 20
// workstations each (120 total), measured over a working day. The measure
// interval is shorter than 8 hours by default; cmd/itcbench -full runs the
// full day.
func DefaultE2() E2Config {
	load := DefaultLoad(itcfs.Prototype)
	load.Clusters = 6
	load.UsersPer = 20
	load.ReplicateSys = true
	return E2Config{
		Load:       load,
		Warm:       20 * time.Minute,
		Measure:    time.Hour,
		PeakWindow: 5 * time.Minute,
	}
}

// E2Utilization reproduces the server utilization measurements: CPU
// averaging ≈40% on the most heavily loaded servers, disk ≈14%, short-term
// peaks near 98% — the server CPU is the bottleneck.
func E2Utilization(cfg E2Config) (*Report, error) {
	lc, err := BuildLoadedCell(cfg.Load)
	if err != nil {
		return nil, err
	}
	gauges := make([]*sim.Gauge, len(lc.Cell.Servers))
	err = lc.DriveHook(cfg.Load, cfg.Warm, cfg.Measure, func() {
		horizon := lc.Cell.Now().Add(cfg.Measure)
		for i, s := range lc.Cell.Servers {
			gauges[i] = sim.NewGauge(lc.Cell.Kernel, s.CPU, cfg.PeakWindow, horizon)
		}
	})
	if err != nil {
		return nil, err
	}

	r := newReport("E2", "Server CPU and disk utilization",
		"CPU ≈40% avg on busiest servers (peaks to 98%), disk ≈14%; CPU is the bottleneck",
		"server", "CPU avg", "CPU peak (5 min)", "disk avg")
	var maxCPU, maxDisk, maxPeak float64
	for i, s := range lc.Cell.Servers {
		cpu, disk := lc.windowUtil(s)
		peak := gauges[i].Peak()
		r.addRow(s.Vice.Name(), pct(cpu), pct(peak), pct(disk))
		if cpu > maxCPU {
			maxCPU = cpu
		}
		if disk > maxDisk {
			maxDisk = disk
		}
		if peak > maxPeak {
			maxPeak = peak
		}
	}
	r.Metrics["cpu_busiest"] = maxCPU
	r.Metrics["disk_busiest"] = maxDisk
	r.Metrics["cpu_peak"] = maxPeak
	r.Metrics["cpu_over_disk"] = maxCPU / maxDisk
	return r, nil
}

// E3Config sizes the hit-ratio experiment.
type E3Config struct {
	Load    LoadConfig
	Warm    time.Duration
	Measure time.Duration
}

// DefaultE3 returns the standard configuration.
func DefaultE3() E3Config {
	return E3Config{
		Load:    DefaultLoad(itcfs.Prototype),
		Warm:    30 * time.Minute,
		Measure: time.Hour,
	}
}

// E3HitRatio reproduces "an average cache hit ratio of over 80% during
// actual use".
func E3HitRatio(cfg E3Config) (*Report, error) {
	lc, err := BuildLoadedCell(cfg.Load)
	if err != nil {
		return nil, err
	}
	if err := lc.Drive(cfg.Load, cfg.Warm, cfg.Measure); err != nil {
		return nil, err
	}
	total := lc.aggregateStats()
	r := newReport("E3", "Workstation cache hit ratio",
		"average cache hit ratio over 80% during actual use",
		"metric", "paper", "measured")
	ratio := total.HitRatio()
	r.addRow("hit ratio", ">80%", pct(ratio))
	r.addRow("opens", "—", fmt.Sprintf("%d", total.Opens))
	r.addRow("whole-file fetches", "—", fmt.Sprintf("%d", total.Fetches))
	r.addRow("bytes fetched", "—", fmt.Sprintf("%d", total.BytesFetched))
	r.Metrics["hit_ratio"] = ratio
	r.Metrics["opens"] = float64(total.Opens)
	return r, nil
}

// E4Config sizes the five-phase benchmark comparison.
type E4Config struct {
	Mode   itcfs.Mode
	Andrew workload.AndrewConfig
}

// DefaultE4 returns the calibrated configuration.
func DefaultE4() E4Config {
	return E4Config{Mode: itcfs.Prototype, Andrew: workload.DefaultAndrew()}
}

// E4AndrewBenchmark reproduces the controlled experiment of §5.2: the
// five-phase benchmark over ~70 files takes about 1000 seconds with all
// files local, and about 80% longer when every file comes from an unloaded
// Vice server.
func E4AndrewBenchmark(cfg E4Config) (*Report, error) {
	// Local run: source and target both on the workstation's own disk.
	cell := itcfs.NewCell(itcfs.CellConfig{Mode: cfg.Mode, Clusters: 1})
	var provisionErr error
	cell.Run(func(p *sim.Proc) {
		admin, err := cell.Admin(p, 0)
		if err != nil {
			provisionErr = err
			return
		}
		provisionErr = admin.NewUser(p, "bench", "pw", 0)
	})
	if provisionErr != nil {
		return nil, provisionErr
	}

	runOne := func(ws *itcfs.Workstation, src, dst string, generate bool) (workload.PhaseTimes, error) {
		var pt workload.PhaseTimes
		var err error
		cell.Run(func(p *sim.Proc) {
			if lerr := ws.Login(p, "bench", "pw"); lerr != nil {
				err = lerr
				return
			}
			if generate {
				if _, gerr := workload.GenerateTree(p, ws.FS, src, cfg.Andrew); gerr != nil {
					err = gerr
					return
				}
			}
			pt, err = workload.RunAndrew(p, ws.FS, src, dst, cfg.Andrew)
		})
		return pt, err
	}

	localWS := cell.AddWorkstation(0, "bench-local")
	local, err := runOne(localWS, "/src", "/dst", true)
	if err != nil {
		return nil, fmt.Errorf("local run: %w", err)
	}
	// The remote source tree is installed by a separate workstation, so the
	// benchmark workstation's cache is genuinely cold.
	setupWS := cell.AddWorkstation(0, "bench-setup")
	var genErr error
	cell.Run(func(p *sim.Proc) {
		if genErr = setupWS.Login(p, "bench", "pw"); genErr != nil {
			return
		}
		_, genErr = workload.GenerateTree(p, setupWS.FS, "/vice/usr/bench/src", cfg.Andrew)
	})
	if genErr != nil {
		return nil, fmt.Errorf("remote tree: %w", genErr)
	}
	// Remote run: a fresh workstation; every file comes from the unloaded
	// server.
	remoteWS := cell.AddWorkstation(0, "bench-remote")
	remote, err := runOne(remoteWS, "/vice/usr/bench/src", "/vice/usr/bench/dst", false)
	if err != nil {
		return nil, fmt.Errorf("remote run: %w", err)
	}
	// Warm run: the same workstation repeats the benchmark (fresh target)
	// with the source tree already cached. In revised mode callbacks make
	// the cached reads free; the prototype still validates each one.
	var warm workload.PhaseTimes
	var warmErr error
	cell.Run(func(p *sim.Proc) {
		warm, warmErr = workload.RunAndrew(p, remoteWS.FS,
			"/vice/usr/bench/src", "/vice/usr/bench/dst2", cfg.Andrew)
	})
	if warmErr != nil {
		return nil, fmt.Errorf("warm run: %w", warmErr)
	}

	r := newReport("E4", "Five-phase benchmark, local vs all-remote",
		"≈1000 s local on a Sun; ≈80% longer with all files from an unloaded server",
		"phase", "local", "remote (cold)", "remote/local", "remote (warm cache)")
	lp, rp, wp := local.Phases(), remote.Phases(), warm.Phases()
	for i := range lp {
		ratio := float64(rp[i].D) / float64(lp[i].D)
		r.addRow(lp[i].Name, secs(lp[i].D), secs(rp[i].D), fmt.Sprintf("%.2fx", ratio), secs(wp[i].D))
	}
	overall := float64(remote.Total()) / float64(local.Total())
	r.addRow("Total", secs(local.Total()), secs(remote.Total()),
		fmt.Sprintf("%.2fx", overall), secs(warm.Total()))
	r.Metrics["local_s"] = local.Total().Seconds()
	r.Metrics["remote_s"] = remote.Total().Seconds()
	r.Metrics["warm_s"] = warm.Total().Seconds()
	r.Metrics["overhead"] = overall - 1
	r.Metrics["warm_overhead"] = float64(warm.Total())/float64(local.Total()) - 1
	return r, nil
}

// E5Config sizes the scalability sweep.
type E5Config struct {
	Mode    itcfs.Mode
	Andrew  workload.AndrewConfig
	Drive   workload.Config
	LoadWS  []int // concurrent load workstations per sweep point
	PerLoad time.Duration
}

// DefaultE5 sweeps the client/server ratio through the paper's operating
// point of 20.
func DefaultE5() E5Config {
	drive := workload.DefaultConfig(0)
	drive.Think = 4 * time.Second // "intense file system activity"
	return E5Config{
		Mode:   itcfs.Prototype,
		Andrew: workload.DefaultAndrew(),
		Drive:  drive,
		LoadWS: []int{0, 5, 10, 20, 40},
	}
}

// E5Scalability measures the five-phase benchmark against a server serving
// N active workstations: the paper operated at ≈20 workstations per server
// with performance comparable to timesharing, and observed that a few users
// with intense activity could drastically lower everyone's performance.
func E5Scalability(cfg E5Config) (*Report, error) {
	r := newReport("E5", "Benchmark time vs concurrent workstations per server",
		"≈20 WS/server ≈ timesharing; intense activity by a few degrades all",
		"load WS", "benchmark", "vs unloaded", "server CPU")
	var base time.Duration
	for _, n := range cfg.LoadWS {
		elapsed, cpu, err := e5Point(cfg, n)
		if err != nil {
			return nil, fmt.Errorf("load %d: %w", n, err)
		}
		if n == cfg.LoadWS[0] {
			base = elapsed
		}
		ratio := float64(elapsed) / float64(base)
		r.addRow(fmt.Sprintf("%d", n), secs(elapsed), fmt.Sprintf("%.2fx", ratio), pct(cpu))
		r.Metrics[fmt.Sprintf("t_%d", n)] = elapsed.Seconds()
		r.Metrics[fmt.Sprintf("ratio_%d", n)] = ratio
	}
	return r, nil
}

// e5Point runs the benchmark with n load workstations on one server.
func e5Point(cfg E5Config, n int) (time.Duration, float64, error) {
	load := LoadConfig{
		Mode:     cfg.Mode,
		Clusters: 1,
		UsersPer: n,
		Seed:     7,
		Drive:    cfg.Drive,
	}
	if n == 0 {
		load.UsersPer = 0
	}
	lc, err := BuildLoadedCell(load)
	if err != nil {
		return 0, 0, err
	}
	cell := lc.Cell
	var provisionErr error
	cell.Run(func(p *sim.Proc) {
		admin, err := cell.Admin(p, 0)
		if err != nil {
			provisionErr = err
			return
		}
		provisionErr = admin.NewUser(p, "bench", "pw", 0)
	})
	if provisionErr != nil {
		return 0, 0, provisionErr
	}
	ws := cell.AddWorkstation(0, "bench-ws")

	// Generate the remote source tree before measuring.
	var genErr error
	cell.Run(func(p *sim.Proc) {
		if err := ws.Login(p, "bench", "pw"); err != nil {
			genErr = err
			return
		}
		_, genErr = workload.GenerateTree(p, ws.FS, "/vice/usr/bench/src", cfg.Andrew)
	})
	if genErr != nil {
		return 0, 0, genErr
	}

	// Load users run continuously; the benchmark runs once among them.
	lc.resetResourceWindow(cell.Servers[0])
	var bench workload.PhaseTimes
	var benchErr error
	done := false
	for i, name := range lc.Users {
		i, name := i, name
		drv := cfg.Drive
		drv.Seed = 500 + int64(i)
		u := workload.NewUser(name, "/usr/"+name, drv)
		lc.Cell.Kernel.Spawn("load-"+name, func(p *sim.Proc) {
			for !done {
				if err := u.Step(p, lc.WS[i].FS); err != nil {
					return
				}
			}
		})
	}
	cell.Kernel.Spawn("bench", func(p *sim.Proc) {
		bench, benchErr = workload.RunAndrew(p, ws.FS, "/vice/usr/bench/src", "/vice/usr/bench/dst", cfg.Andrew)
		done = true
	})
	cell.Kernel.Run()
	if benchErr != nil {
		return 0, 0, benchErr
	}
	cpu, _ := lc.windowUtil(cell.Servers[0])
	return bench.Total(), cpu, nil
}

// ModeString names a mode for table rows.
func ModeString(m itcfs.Mode) string { return vice.Mode(m).String() }
