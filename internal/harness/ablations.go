package harness

import (
	"fmt"
	"time"

	"itcfs"
	"itcfs/internal/baseline"
	"itcfs/internal/netsim"
	"itcfs/internal/prot"
	"itcfs/internal/proto"
	"itcfs/internal/rpc"
	"itcfs/internal/secure"
	"itcfs/internal/sim"
	"itcfs/internal/unixfs"
)

// E6Config sizes the validation-policy ablation.
type E6Config struct {
	UsersPer int
	Warm     time.Duration
	Measure  time.Duration
}

// DefaultE6 returns the standard configuration.
func DefaultE6() E6Config {
	return E6Config{UsersPer: 20, Warm: 30 * time.Minute, Measure: time.Hour}
}

// E6ValidationAblation compares the prototype's check-on-open validation
// against the revised callback scheme under identical load. The paper
// concluded from the prototype's 65%-validation call mix that "major
// performance improvement is possible if cache validity checks are
// minimized" (§5.2) — this experiment quantifies that conclusion.
func E6ValidationAblation(cfg E6Config) (*Report, error) {
	r := newReport("E6", "Check-on-open vs callback invalidation (identical load)",
		"prototype validation traffic dominates; callbacks eliminate it (§3.2, §5.2)",
		"metric", "check-on-open", "callback")
	type side struct {
		calls    int64
		valid    float64
		cpu      float64
		breaks   int64
		promises int64
	}
	var sides [2]side
	for i, mode := range []itcfs.Mode{itcfs.Prototype, itcfs.Revised} {
		load := DefaultLoad(mode)
		load.UsersPer = cfg.UsersPer
		lc, err := BuildLoadedCell(load)
		if err != nil {
			return nil, err
		}
		if err := lc.Drive(load, cfg.Warm, cfg.Measure); err != nil {
			return nil, err
		}
		mix, total := lc.CallMix()
		cpu, _ := lc.windowUtil(lc.Cell.Servers[0])
		promised, breaks := lc.Cell.Servers[0].Vice.Callbacks().Stats()
		sides[i] = side{
			calls:    total,
			valid:    mix["TestValid (cache validity)"],
			cpu:      cpu,
			breaks:   breaks,
			promises: promised,
		}
	}
	r.addRow("total server calls", fmt.Sprintf("%d", sides[0].calls), fmt.Sprintf("%d", sides[1].calls))
	r.addRow("validation share", pct(sides[0].valid), pct(sides[1].valid))
	r.addRow("server CPU", pct(sides[0].cpu), pct(sides[1].cpu))
	r.addRow("callback promises", "0", fmt.Sprintf("%d", sides[1].promises))
	r.addRow("callback breaks", "0", fmt.Sprintf("%d", sides[1].breaks))
	r.Metrics["calls_proto"] = float64(sides[0].calls)
	r.Metrics["calls_revised"] = float64(sides[1].calls)
	r.Metrics["call_reduction"] = 1 - float64(sides[1].calls)/float64(sides[0].calls)
	r.Metrics["cpu_proto"] = sides[0].cpu
	r.Metrics["cpu_revised"] = sides[1].cpu
	return r, nil
}

// E7Config sizes the pathname-traversal ablation.
type E7Config struct {
	Users   int
	Depth   int // directory depth of the accessed files
	OpsEach int
}

// DefaultE7 returns the standard configuration.
func DefaultE7() E7Config {
	return E7Config{Users: 10, Depth: 6, OpsEach: 150}
}

// E7PathnameAblation measures server-side pathname traversal (prototype)
// against client-side traversal with FIDs (revised): "the offloading of
// pathname traversal from servers to clients will reduce the utilization of
// the server CPU and hence improve the scalability of our design" (§5.3).
func E7PathnameAblation(cfg E7Config) (*Report, error) {
	r := newReport("E7", "Server-side vs client-side pathname traversal",
		"moving traversal to workstations cuts server CPU per operation (§5.3)",
		"metric", "prototype (server walks)", "revised (FIDs)")
	type side struct {
		walked    int64
		cpu       time.Duration
		calls     int64
		perOpCPU  time.Duration
		elapsedWS time.Duration
	}
	var sides [2]side
	for i, mode := range []itcfs.Mode{itcfs.Prototype, itcfs.Revised} {
		cell := itcfs.NewCell(itcfs.CellConfig{Mode: mode, Clusters: 1})
		var err error
		cell.Run(func(p *sim.Proc) {
			admin, aerr := cell.Admin(p, 0)
			if aerr != nil {
				err = aerr
				return
			}
			if err = admin.NewUser(p, "deep", "pw", 0); err != nil {
				return
			}
		})
		if err != nil {
			return nil, err
		}
		// Build a deep directory chain and a file at the bottom.
		dir := "/vice/usr/deep"
		setup := cell.AddWorkstation(0, "setup")
		cell.Run(func(p *sim.Proc) {
			if err = setup.Login(p, "deep", "pw"); err != nil {
				return
			}
			for d := 0; d < cfg.Depth; d++ {
				dir = fmt.Sprintf("%s/d%d", dir, d)
				if err = setup.FS.Mkdir(p, dir, 0o755); err != nil {
					return
				}
			}
			err = setup.FS.WriteFile(p, dir+"/leaf", []byte("deep data"))
		})
		if err != nil {
			return nil, err
		}
		leaf := dir + "/leaf"
		srv := cell.Servers[0]
		cpu0 := srv.CPU.BusyTime()
		_, _, walked0 := srv.Vice.TrafficStats()
		calls0 := srv.Endpoint.CallsTotal()
		start := cell.Now()
		for u := 0; u < cfg.Users; u++ {
			ws := cell.AddWorkstation(0, fmt.Sprintf("deep-ws%d", u))
			cell.Run(func(p *sim.Proc) {
				if lerr := ws.Login(p, "deep", "pw"); lerr != nil {
					err = lerr
					return
				}
				for op := 0; op < cfg.OpsEach; op++ {
					if _, serr := ws.FS.Stat(p, leaf); serr != nil {
						err = serr
						return
					}
				}
			})
			if err != nil {
				return nil, err
			}
		}
		_, _, walked1 := srv.Vice.TrafficStats()
		calls := srv.Endpoint.CallsTotal() - calls0
		cpu := srv.CPU.BusyTime() - cpu0
		sides[i] = side{
			walked:    walked1 - walked0,
			cpu:       cpu,
			calls:     calls,
			perOpCPU:  cpu / time.Duration(cfg.Users*cfg.OpsEach),
			elapsedWS: cell.Now().Sub(start),
		}
	}
	r.addRow("components walked on server",
		fmt.Sprintf("%d", sides[0].walked), fmt.Sprintf("%d", sides[1].walked))
	r.addRow("server CPU total",
		sides[0].cpu.Round(time.Millisecond).String(), sides[1].cpu.Round(time.Millisecond).String())
	r.addRow("server CPU per stat",
		sides[0].perOpCPU.Round(time.Microsecond).String(), sides[1].perOpCPU.Round(time.Microsecond).String())
	r.addRow("server calls",
		fmt.Sprintf("%d", sides[0].calls), fmt.Sprintf("%d", sides[1].calls))
	r.Metrics["walked_proto"] = float64(sides[0].walked)
	r.Metrics["walked_revised"] = float64(sides[1].walked)
	r.Metrics["cpu_per_op_proto_ms"] = float64(sides[0].perOpCPU) / float64(time.Millisecond)
	r.Metrics["cpu_per_op_revised_ms"] = float64(sides[1].perOpCPU) / float64(time.Millisecond)
	r.Metrics["cpu_saving"] = 1 - float64(sides[1].cpu)/float64(sides[0].cpu)
	return r, nil
}

// E8Config sizes the transfer-granularity ablation.
type E8Config struct {
	FileKB     int // size of the sequentially-read file
	Rereads    int // how many times the same file is re-read
	BigMB      int // size of the partially-read file
	PartialB   int // bytes read out of the big file
	PageServer baseline.Conn
}

// DefaultE8 returns the standard configuration.
func DefaultE8() E8Config {
	return E8Config{FileKB: 128, Rereads: 5, BigMB: 4, PartialB: 256}
}

// E8WholeFileVsPaged compares whole-file transfer with caching against
// page-at-a-time remote access: "the total network protocol overhead in
// transmitting a file is lower when it is sent en masse" and custodians are
// contacted only on opens and closes (§3.2). The partial-access row shows
// the honest flip side that bounds the design to files of a few megabytes.
func E8WholeFileVsPaged(cfg E8Config) (*Report, error) {
	// Whole-file side: a standard cell.
	cell := itcfs.NewCell(itcfs.CellConfig{Mode: itcfs.Revised, Clusters: 1})
	var err error
	cell.Run(func(p *sim.Proc) {
		admin, aerr := cell.Admin(p, 0)
		if aerr != nil {
			err = aerr
			return
		}
		err = admin.NewUser(p, "u", "pw", 0)
	})
	if err != nil {
		return nil, err
	}
	ws := cell.AddWorkstation(0, "ws")
	seq := make([]byte, cfg.FileKB<<10)
	big := make([]byte, cfg.BigMB<<20)
	var wholeSeq, wholeRe, wholePartial time.Duration
	cell.Run(func(p *sim.Proc) {
		if err = ws.Login(p, "u", "pw"); err != nil {
			return
		}
		if err = ws.FS.WriteFile(p, "/vice/usr/u/seq", seq); err != nil {
			return
		}
		if err = ws.FS.WriteFile(p, "/vice/usr/u/big", big); err != nil {
			return
		}
	})
	if err != nil {
		return nil, err
	}
	// Fresh workstation: cold cache for the measured reads.
	cold := cell.AddWorkstation(0, "cold")
	var wholeSeqBytes int64
	cell.Run(func(p *sim.Proc) {
		if err = cold.Login(p, "u", "pw"); err != nil {
			return
		}
		t0 := p.Now()
		lan0 := cell.Clusters[0].LAN.Bytes()
		if _, err = cold.FS.ReadFile(p, "/vice/usr/u/seq"); err != nil {
			return
		}
		wholeSeqBytes = cell.Clusters[0].LAN.Bytes() - lan0
		wholeSeq = p.Now().Sub(t0)
		t0 = p.Now()
		for i := 0; i < cfg.Rereads; i++ {
			if _, err = cold.FS.ReadFile(p, "/vice/usr/u/seq"); err != nil {
				return
			}
		}
		wholeRe = p.Now().Sub(t0) / time.Duration(cfg.Rereads)
		// Partial access: whole-file caching must fetch all of it.
		t0 = p.Now()
		f, oerr := cold.FS.Open(p, "/vice/usr/u/big", itcfs.FlagRead)
		if oerr != nil {
			err = oerr
			return
		}
		buf := make([]byte, cfg.PartialB)
		if _, err = f.ReadAt(buf, 1<<20); err != nil {
			return
		}
		f.Close(p)
		wholePartial = p.Now().Sub(t0)
	})
	if err != nil {
		return nil, err
	}
	wsCalls := cell.Servers[0].Endpoint.CallsTotal()

	// Page side: a dedicated page server on an identical network.
	k := sim.NewKernel()
	net := netsim.New(k, netsim.ITCDefaults())
	cl := net.AddCluster("c0")
	sn := net.AddNode("pgserver", cl)
	cn := net.AddNode("client", cl)
	psrv := baseline.NewServer(unixfs.New(nil))
	key := secure.DeriveKey("u", "pw")
	costs := itcfs.DefaultCosts()
	cpu := sim.NewResource(k, "pg-cpu")
	disk := sim.NewResource(k, "pg-disk")
	// The page server pays the same per-call fixed cost a light Vice call
	// does (dispatch, process switch, request handling) and the same
	// per-byte costs, so the comparison isolates protocol structure.
	pageOpCPU := costs.BaseCPU + costs.ProcessSwitch + costs.ValidCPU
	rpc.NewEndpoint(net, sn, rpc.EndpointConfig{
		Keys:   func(user string) (secure.Key, bool) { return key, user == "u" },
		Server: psrv.Dispatcher(),
		Meters: rpc.Meters{CPU: cpu, Disk: disk},
		Model:  baseline.Costs(pageOpCPU, costs.PerKBCPU, costs.FetchDisk, costs.PerKBDisk),
	})
	cep := rpc.NewEndpoint(net, cn, rpc.EndpointConfig{})
	if err := psrv.FS().WriteFile("/seq", seq, 0o644, ""); err != nil {
		return nil, err
	}
	if err := psrv.FS().WriteFile("/big", big, 0o644, ""); err != nil {
		return nil, err
	}
	var pageSeq, pageRe, pagePartial time.Duration
	var pageSeqBytes int64
	var pageErr error
	k.Spawn("client", func(p *sim.Proc) {
		conn, derr := cep.Dial(p, sn.ID, "u", key)
		if derr != nil {
			pageErr = derr
			return
		}
		c := baseline.NewClient(conn)
		t0 := p.Now()
		lan0 := cl.LAN.Bytes()
		if _, pageErr = c.ReadFile(p, "/seq"); pageErr != nil {
			return
		}
		pageSeqBytes = cl.LAN.Bytes() - lan0
		pageSeq = p.Now().Sub(t0)
		t0 = p.Now()
		for i := 0; i < cfg.Rereads; i++ {
			if _, pageErr = c.ReadFile(p, "/seq"); pageErr != nil {
				return
			}
		}
		pageRe = p.Now().Sub(t0) / time.Duration(cfg.Rereads)
		t0 = p.Now()
		f, oerr := c.Open(p, "/big", false)
		if oerr != nil {
			pageErr = oerr
			return
		}
		buf := make([]byte, cfg.PartialB)
		if _, pageErr = f.ReadAt(p, buf, 1<<20); pageErr != nil {
			return
		}
		f.Close(p)
		pagePartial = p.Now().Sub(t0)
	})
	k.Run()
	if pageErr != nil {
		return nil, pageErr
	}
	_, pgReads, _ := psrv.OpCounts()

	r := newReport("E8", "Whole-file transfer + caching vs page-at-a-time access",
		"whole-file wins on protocol overhead and repeat access; paging only wins partial reads of huge files (§2.2, §3.2)",
		"scenario", "whole-file", "page-at-a-time")
	r.addRow(fmt.Sprintf("first sequential read (%d KB)", cfg.FileKB),
		wholeSeq.Round(time.Millisecond).String(), pageSeq.Round(time.Millisecond).String())
	r.addRow("re-read (cached)",
		wholeRe.Round(time.Millisecond).String(), pageRe.Round(time.Millisecond).String())
	r.addRow(fmt.Sprintf("read %d B of a %d MB file (cold)", cfg.PartialB, cfg.BigMB),
		wholePartial.Round(time.Millisecond).String(), pagePartial.Round(time.Millisecond).String())
	r.addRow("network bytes, first read",
		fmt.Sprintf("%d", wholeSeqBytes), fmt.Sprintf("%d", pageSeqBytes))
	r.addRow("server calls (whole run)",
		fmt.Sprintf("%d", wsCalls), fmt.Sprintf("%d page reads", pgReads))
	r.Metrics["whole_seq_ms"] = float64(wholeSeq) / float64(time.Millisecond)
	r.Metrics["page_seq_ms"] = float64(pageSeq) / float64(time.Millisecond)
	r.Metrics["whole_reread_ms"] = float64(wholeRe) / float64(time.Millisecond)
	r.Metrics["page_reread_ms"] = float64(pageRe) / float64(time.Millisecond)
	r.Metrics["whole_partial_ms"] = float64(wholePartial) / float64(time.Millisecond)
	r.Metrics["page_partial_ms"] = float64(pagePartial) / float64(time.Millisecond)
	return r, nil
}

// E9Config sizes the replication experiment.
type E9Config struct {
	Readers  int // workstations in the second cluster reading binaries
	Binaries int
	Reads    int // reads per workstation
}

// DefaultE9 returns the standard configuration.
func DefaultE9() E9Config {
	return E9Config{Readers: 10, Binaries: 12, Reads: 30}
}

// E9ReadOnlyReplication measures read-only replication of system binaries:
// without it, every fetch from another cluster crosses the backbone and
// lands on the custodian; with a replica on the local cluster server, reads
// are served locally, balancing load and cutting cross-cluster traffic
// (§3.2, §4 "localize if possible").
func E9ReadOnlyReplication(cfg E9Config) (*Report, error) {
	run := func(replicate bool) (backbone int64, custodianFetch, replicaFetch int64, mean time.Duration, err error) {
		cell := itcfs.NewCell(itcfs.CellConfig{Mode: itcfs.Revised, Clusters: 2})
		var vid uint32
		cell.Run(func(p *sim.Proc) {
			admin, aerr := cell.Admin(p, 0)
			if aerr != nil {
				err = aerr
				return
			}
			if err = admin.MkdirAll(p, "/unix"); err != nil {
				return
			}
			if vid, err = admin.CreateVolume(p, "sys.bin", "/unix/bin", "operator", 0); err != nil {
				return
			}
			op := cell.AddWorkstation(0, "op")
			if err = op.Login(p, "operator", "operator-password"); err != nil {
				return
			}
			for i := 0; i < cfg.Binaries; i++ {
				data := make([]byte, 20<<10)
				if err = op.FS.WriteFile(p, fmt.Sprintf("/vice/unix/bin/b%02d", i), data); err != nil {
					return
				}
			}
			mountAt := "/unix/bin"
			if replicate {
				mountAt = "/unix/bin-ro"
				if _, err = admin.CloneVolume(p, vid, mountAt, "server1"); err != nil {
					return
				}
			}
			for u := 0; u < cfg.Readers; u++ {
				if err = admin.NewUser(p, fmt.Sprintf("reader%d", u), "pw", 0); err != nil {
					return
				}
			}
		})
		if err != nil {
			return
		}
		root := "/vice/unix/bin"
		if replicate {
			root = "/vice/unix/bin-ro"
		}
		frames0 := cell.Net.CrossClusterFrames()
		f0, _, _ := cell.Servers[0].Vice.TrafficStats()
		f1, _, _ := cell.Servers[1].Vice.TrafficStats()
		var totalTime time.Duration
		var reads int
		for u := 0; u < cfg.Readers; u++ {
			ws := cell.AddWorkstation(1, fmt.Sprintf("dorm%d", u))
			u := u
			cell.Run(func(p *sim.Proc) {
				if lerr := ws.Login(p, fmt.Sprintf("reader%d", u), "pw"); lerr != nil {
					err = lerr
					return
				}
				for i := 0; i < cfg.Reads; i++ {
					path := fmt.Sprintf("%s/b%02d", root, i%cfg.Binaries)
					t0 := p.Now()
					if _, rerr := ws.FS.ReadFile(p, path); rerr != nil {
						err = rerr
						return
					}
					totalTime += p.Now().Sub(t0)
					reads++
				}
			})
			if err != nil {
				return
			}
		}
		backbone = cell.Net.CrossClusterFrames() - frames0
		f0b, _, _ := cell.Servers[0].Vice.TrafficStats()
		f1b, _, _ := cell.Servers[1].Vice.TrafficStats()
		custodianFetch = f0b - f0
		replicaFetch = f1b - f1
		mean = totalTime / time.Duration(reads)
		return
	}

	bbNo, custNo, replNo, meanNo, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("unreplicated: %w", err)
	}
	bbYes, custYes, replYes, meanYes, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("replicated: %w", err)
	}

	r := newReport("E9", "Read-only replication of system binaries",
		"replicas serve from the nearest cluster server, balancing load and localizing traffic (§3.2)",
		"metric", "single custodian", "replicated")
	r.addRow("backbone frames", fmt.Sprintf("%d", bbNo), fmt.Sprintf("%d", bbYes))
	r.addRow("bytes fetched from custodian", fmt.Sprintf("%d", custNo), fmt.Sprintf("%d", custYes))
	r.addRow("bytes fetched from replica", fmt.Sprintf("%d", replNo), fmt.Sprintf("%d", replYes))
	r.addRow("mean read latency", meanNo.Round(time.Millisecond).String(), meanYes.Round(time.Millisecond).String())
	r.Metrics["backbone_single"] = float64(bbNo)
	r.Metrics["backbone_replicated"] = float64(bbYes)
	r.Metrics["latency_single_ms"] = float64(meanNo) / float64(time.Millisecond)
	r.Metrics["latency_replicated_ms"] = float64(meanYes) / float64(time.Millisecond)
	r.Metrics["replica_bytes"] = float64(replYes)
	return r, nil
}

// E10Config sizes the revocation experiment.
type E10Config struct {
	Servers int // replicas the protection database update must reach
	Groups  int // groups granting the victim access
}

// DefaultE10 returns the standard configuration.
func DefaultE10() E10Config {
	return E10Config{Servers: 6, Groups: 8}
}

// E10Revocation compares the two ways to revoke a user's access (§3.4):
// removing the user from every group that grants access — a replicated
// protection-database update coordinated across all servers — against a
// single negative-rights entry on the object's access list, the rapid
// revocation mechanism.
func E10Revocation(cfg E10Config) (*Report, error) {
	cell := itcfs.NewCell(itcfs.CellConfig{Mode: itcfs.Prototype, Clusters: cfg.Servers})
	var err error
	cell.Run(func(p *sim.Proc) {
		admin, aerr := cell.Admin(p, 0)
		if aerr != nil {
			err = aerr
			return
		}
		if err = admin.NewUser(p, "victim", "pw", 0); err != nil {
			return
		}
		if err = admin.NewUser(p, "owner", "pw", 0); err != nil {
			return
		}
		// The victim gets access through several nested groups.
		for g := 0; g < cfg.Groups; g++ {
			name := fmt.Sprintf("grp%d", g)
			if err = admin.Protect(p, prot.Mutation{Kind: prot.MutAddGroup, Name: name, Owner: "owner"}); err != nil {
				return
			}
			if err = admin.Protect(p, prot.Mutation{Kind: prot.MutAddMember, Name: name, Member: "victim"}); err != nil {
				return
			}
		}
	})
	if err != nil {
		return nil, err
	}
	owner := cell.AddWorkstation(0, "owner-ws")
	cell.Run(func(p *sim.Proc) {
		if err = owner.Login(p, "owner", "pw"); err != nil {
			return
		}
		acl := prot.NewACL()
		acl.Grant("owner", prot.RightsAll)
		for g := 0; g < cfg.Groups; g++ {
			acl.Grant(fmt.Sprintf("grp%d", g), prot.RightsAll)
		}
		if err = owner.Venus.SetACL(p, "/usr/owner", itcfsACL(acl)); err != nil {
			return
		}
		err = owner.FS.WriteFile(p, "/vice/usr/owner/doc", []byte("sensitive"))
	})
	if err != nil {
		return nil, err
	}

	// Path A: negative rights — one SetACL at one site. Elapsed time is
	// measured inside the process: kernel runs sweep past lingering call
	// timeouts, which must not count.
	negCalls0 := totalCalls(cell)
	var negTime time.Duration
	cell.Run(func(p *sim.Proc) {
		acl := prot.NewACL()
		acl.Grant("owner", prot.RightsAll)
		for g := 0; g < cfg.Groups; g++ {
			acl.Grant(fmt.Sprintf("grp%d", g), prot.RightsAll)
		}
		acl.Deny("victim", prot.RightsAll)
		t0 := p.Now()
		err = owner.Venus.SetACL(p, "/usr/owner", itcfsACL(acl))
		negTime = p.Now().Sub(t0)
	})
	if err != nil {
		return nil, err
	}
	negCalls := totalCalls(cell) - negCalls0

	// Path B: group removal — one protection-server mutation per group,
	// each replicated to every server.
	dbCalls0 := totalCalls(cell)
	var dbTime time.Duration
	cell.Run(func(p *sim.Proc) {
		admin, aerr := cell.Admin(p, 0)
		if aerr != nil {
			err = aerr
			return
		}
		t0 := p.Now()
		for g := 0; g < cfg.Groups; g++ {
			if err = admin.Protect(p, prot.Mutation{
				Kind: prot.MutRemoveMember, Name: fmt.Sprintf("grp%d", g), Member: "victim",
			}); err != nil {
				return
			}
		}
		dbTime = p.Now().Sub(t0)
	})
	if err != nil {
		return nil, err
	}
	dbCalls := totalCalls(cell) - dbCalls0

	// Both paths leave the victim locked out.
	victim := cell.AddWorkstation(0, "victim-ws")
	var victimErr error
	cell.Run(func(p *sim.Proc) {
		if lerr := victim.Login(p, "victim", "pw"); lerr != nil {
			err = lerr
			return
		}
		_, victimErr = victim.FS.ReadFile(p, "/vice/usr/owner/doc")
	})
	if err != nil {
		return nil, err
	}
	if victimErr == nil {
		return nil, fmt.Errorf("E10: victim still has access after both revocations")
	}

	r := newReport("E10", "Rapid revocation: negative rights vs protection-database update",
		"negative rights revoke at a single site; group changes must update every server (§3.4)",
		"metric", "negative right", fmt.Sprintf("group removal (%d groups, %d servers)", cfg.Groups, cfg.Servers))
	r.addRow("server calls", fmt.Sprintf("%d", negCalls), fmt.Sprintf("%d", dbCalls))
	r.addRow("elapsed (virtual)", negTime.Round(time.Millisecond).String(), dbTime.Round(time.Millisecond).String())
	r.addRow("sites touched", "1", fmt.Sprintf("%d", cfg.Servers))
	r.Metrics["neg_calls"] = float64(negCalls)
	r.Metrics["db_calls"] = float64(dbCalls)
	r.Metrics["neg_ms"] = float64(negTime) / float64(time.Millisecond)
	r.Metrics["db_ms"] = float64(dbTime) / float64(time.Millisecond)
	return r, nil
}

func totalCalls(cell *itcfs.Cell) int64 {
	var n int64
	for _, s := range cell.Servers {
		n += s.Endpoint.CallsTotal()
	}
	return n
}

// itcfsACL encodes an ACL for the Venus SetACL API.
func itcfsACL(a prot.ACL) []byte { return proto.ACLEncode(a) }
