package harness

import (
	"os"
	"testing"
	"time"

	"itcfs"
)

// Scaled-down configurations keep the test suite fast; cmd/itcbench runs
// the full-size versions. The assertions here check the *shape* of each
// result, with generous bands.

func smallLoad(mode itcfs.Mode) LoadConfig {
	l := DefaultLoad(mode)
	l.UsersPer = 8
	l.Drive.UserFiles = 80
	l.Drive.SysFiles = 30
	return l
}

func TestE1CallMixShape(t *testing.T) {
	cfg := E1Config{Load: smallLoad(itcfs.Prototype), Warm: 10 * time.Minute, Measure: 30 * time.Minute}
	r, err := E1CallMix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Print(os.Stderr)
	if r.Metrics["validate"] < 0.45 {
		t.Errorf("validate share = %v, want dominant (paper 65%%)", r.Metrics["validate"])
	}
	if r.Metrics["status"] < 0.10 {
		t.Errorf("status share = %v, want substantial (paper 27%%)", r.Metrics["status"])
	}
	if r.Metrics["fetch"] > 0.15 {
		t.Errorf("fetch share = %v, want small (paper 4%%)", r.Metrics["fetch"])
	}
	if r.Metrics["store"] > 0.10 {
		t.Errorf("store share = %v, want small (paper 2%%)", r.Metrics["store"])
	}
	if r.Metrics["top4"] < 0.90 {
		t.Errorf("top-4 share = %v, want >90%% (paper 98%%)", r.Metrics["top4"])
	}
}

func TestE2UtilizationShape(t *testing.T) {
	cfg := DefaultE2()
	cfg.Load = smallLoad(itcfs.Prototype)
	cfg.Load.Clusters = 2
	cfg.Warm = 10 * time.Minute
	cfg.Measure = 30 * time.Minute
	r, err := E2Utilization(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Print(os.Stderr)
	if r.Metrics["cpu_busiest"] <= r.Metrics["disk_busiest"] {
		t.Errorf("CPU (%v) should exceed disk (%v): the CPU is the bottleneck",
			r.Metrics["cpu_busiest"], r.Metrics["disk_busiest"])
	}
	if r.Metrics["cpu_peak"] < r.Metrics["cpu_busiest"] {
		t.Errorf("peak below average")
	}
}

func TestE3HitRatioShape(t *testing.T) {
	cfg := E3Config{Load: smallLoad(itcfs.Prototype), Warm: 15 * time.Minute, Measure: 30 * time.Minute}
	r, err := E3HitRatio(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Print(os.Stderr)
	if r.Metrics["hit_ratio"] < 0.80 {
		t.Errorf("hit ratio = %v, paper reports >80%%", r.Metrics["hit_ratio"])
	}
}

func TestE4AndrewShape(t *testing.T) {
	cfg := DefaultE4()
	r, err := E4AndrewBenchmark(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Print(os.Stderr)
	if r.Metrics["local_s"] < 500 || r.Metrics["local_s"] > 1600 {
		t.Errorf("local = %v s, want ≈1000", r.Metrics["local_s"])
	}
	if r.Metrics["overhead"] < 0.4 || r.Metrics["overhead"] > 1.4 {
		t.Errorf("remote overhead = %v, want ≈0.8", r.Metrics["overhead"])
	}
}

func TestE4RevisedWarmCacheBenefit(t *testing.T) {
	cfg := DefaultE4()
	cfg.Mode = itcfs.Revised
	r, err := E4AndrewBenchmark(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Print(os.Stderr)
	// Revised mode must beat the prototype's remote overhead and gain
	// further from a warm cache (callbacks + space-limited LRU).
	if r.Metrics["warm_s"] >= r.Metrics["remote_s"] {
		t.Errorf("warm run (%v s) not faster than cold (%v s)",
			r.Metrics["warm_s"], r.Metrics["remote_s"])
	}
	if r.Metrics["overhead"] >= 1.0 {
		t.Errorf("revised remote overhead %v, want well under the prototype's ~1.0", r.Metrics["overhead"])
	}
}

func TestE5ScalabilityShape(t *testing.T) {
	cfg := DefaultE5()
	cfg.LoadWS = []int{0, 10, 30}
	cfg.Drive.UserFiles = 25
	cfg.Drive.SysFiles = 15
	r, err := E5Scalability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Print(os.Stderr)
	if r.Metrics["ratio_10"] < 1.0 {
		t.Errorf("10 load WS sped the benchmark up: %v", r.Metrics["ratio_10"])
	}
	if r.Metrics["ratio_30"] <= r.Metrics["ratio_10"] {
		t.Errorf("contention not monotone: 30 WS %v <= 10 WS %v",
			r.Metrics["ratio_30"], r.Metrics["ratio_10"])
	}
}

func TestE6ValidationAblationShape(t *testing.T) {
	cfg := E6Config{UsersPer: 8, Warm: 10 * time.Minute, Measure: 30 * time.Minute}
	r, err := E6ValidationAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Print(os.Stderr)
	if r.Metrics["call_reduction"] < 0.3 {
		t.Errorf("callbacks cut calls by only %v", r.Metrics["call_reduction"])
	}
	if r.Metrics["cpu_revised"] >= r.Metrics["cpu_proto"] {
		t.Errorf("revised CPU %v >= prototype %v", r.Metrics["cpu_revised"], r.Metrics["cpu_proto"])
	}
}

func TestE7PathnameAblationShape(t *testing.T) {
	r, err := E7PathnameAblation(DefaultE7())
	if err != nil {
		t.Fatal(err)
	}
	r.Print(os.Stderr)
	if r.Metrics["walked_revised"] != 0 {
		t.Errorf("revised mode walked %v components on the server", r.Metrics["walked_revised"])
	}
	if r.Metrics["walked_proto"] == 0 {
		t.Errorf("prototype walked nothing")
	}
	if r.Metrics["cpu_saving"] <= 0 {
		t.Errorf("no CPU saving from client-side traversal: %v", r.Metrics["cpu_saving"])
	}
}

func TestE8WholeFileVsPagedShape(t *testing.T) {
	r, err := E8WholeFileVsPaged(DefaultE8())
	if err != nil {
		t.Fatal(err)
	}
	r.Print(os.Stderr)
	if r.Metrics["whole_reread_ms"] >= r.Metrics["page_reread_ms"] {
		t.Errorf("cached re-read (%v ms) not faster than paged (%v ms)",
			r.Metrics["whole_reread_ms"], r.Metrics["page_reread_ms"])
	}
	if r.Metrics["whole_partial_ms"] <= r.Metrics["page_partial_ms"] {
		t.Errorf("partial read: whole-file (%v ms) should LOSE to paging (%v ms)",
			r.Metrics["whole_partial_ms"], r.Metrics["page_partial_ms"])
	}
}

func TestE9ReplicationShape(t *testing.T) {
	cfg := E9Config{Readers: 5, Binaries: 6, Reads: 12}
	r, err := E9ReadOnlyReplication(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Print(os.Stderr)
	if r.Metrics["backbone_replicated"] >= r.Metrics["backbone_single"] {
		t.Errorf("replication did not cut backbone traffic: %v vs %v",
			r.Metrics["backbone_replicated"], r.Metrics["backbone_single"])
	}
	if r.Metrics["latency_replicated_ms"] > r.Metrics["latency_single_ms"] {
		t.Errorf("replication slowed reads: %v vs %v ms",
			r.Metrics["latency_replicated_ms"], r.Metrics["latency_single_ms"])
	}
	if r.Metrics["replica_bytes"] == 0 {
		t.Errorf("replica served nothing")
	}
}

func TestE11RebalanceShape(t *testing.T) {
	r, err := E11Rebalance(E11Config{Movers: 3, OpsEach: 60})
	if err != nil {
		t.Fatal(err)
	}
	r.Print(os.Stderr)
	if r.Metrics["recommendations"] != 3 {
		t.Errorf("recommendations = %v, want 3 (one per misplaced volume)", r.Metrics["recommendations"])
	}
	if r.Metrics["frames_after"] >= r.Metrics["frames_before"] {
		t.Errorf("rebalancing did not cut backbone traffic: %v -> %v",
			r.Metrics["frames_before"], r.Metrics["frames_after"])
	}
	if r.Metrics["time_after_ms"] > r.Metrics["time_before_ms"] {
		t.Errorf("rebalancing slowed users down: %v -> %v ms",
			r.Metrics["time_before_ms"], r.Metrics["time_after_ms"])
	}
}

func TestE10RevocationShape(t *testing.T) {
	cfg := E10Config{Servers: 3, Groups: 4}
	r, err := E10Revocation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Print(os.Stderr)
	if r.Metrics["neg_calls"] >= r.Metrics["db_calls"] {
		t.Errorf("negative rights took %v calls vs %v for the database path",
			r.Metrics["neg_calls"], r.Metrics["db_calls"])
	}
	if r.Metrics["neg_ms"] >= r.Metrics["db_ms"] {
		t.Errorf("negative rights slower: %v ms vs %v ms", r.Metrics["neg_ms"], r.Metrics["db_ms"])
	}
}
