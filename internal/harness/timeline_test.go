package harness

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

// e15Quick shrinks E15 for tests: 15-second windows, 2.5-minute phases.
func e15Quick(seed int64) E15Config {
	cfg := DefaultE15()
	cfg.Seed = seed
	cfg.Cadence = 15 * time.Second
	cfg.Phase = 150 * time.Second
	cfg.MoveGrace = 30 * time.Second
	return cfg
}

// e15Text renders every deterministic surface of one E15 run: the report
// table, the dashboard, the flight recorder, and the CSV series export.
func e15Text(t *testing.T, res *E15Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	res.Report.Print(&buf)
	buf.WriteString(res.Timeline)
	buf.WriteString(res.Flight)
	if err := res.Cell.Sampler.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	return buf.Bytes()
}

// TestE15Detection asserts the experiment's story holds at test scale: the
// detector fires during phase B on the right server and volume, and the
// applied move brings both servers under the threshold in phase C.
func TestE15Detection(t *testing.T) {
	res, err := E15HotVolume(e15Quick(1))
	if err != nil {
		t.Fatal(err)
	}
	m := res.Report.Metrics
	if m["detector_fired"] != 1 {
		t.Fatal("detector did not fire")
	}
	if m["hot_volume"] != m["expected_hot_volume"] {
		t.Errorf("detector blamed volume %.0f, the hot volume is %.0f", m["hot_volume"], m["expected_hot_volume"])
	}
	if res.Finding.Server != "server0" || res.Finding.To != "server1" {
		t.Errorf("finding = %s → %s, want server0 → server1", res.Finding.Server, res.Finding.To)
	}
	if on := m["onset_s"]; on <= m["b_start_s"] || on > m["b_end_s"] {
		t.Errorf("onset %.1fs outside phase B (%.1fs, %.1fs]", on, m["b_start_s"], m["b_end_s"])
	}
	thr := res.Finding.PeakUtil // sanity on the numbers the table prints
	if thr < 0.80 {
		t.Errorf("peak utilization during overload = %.2f, want >= threshold", thr)
	}
	if m["peak_b_s0"] < 0.80 {
		t.Errorf("phase B peak on server0 = %.2f, want saturation", m["peak_b_s0"])
	}
	if m["mean_b_s1"] > 0.50 {
		t.Errorf("phase B mean on server1 = %.2f, want an idle peer", m["mean_b_s1"])
	}
	if m["mean_c_s0"] >= 0.80 || m["mean_c_s1"] >= 0.80 {
		t.Errorf("phase C means = %.2f / %.2f, move did not restore balance", m["mean_c_s0"], m["mean_c_s1"])
	}
	if gap, before := m["imbalance_c"], m["imbalance_b"]; gap < 0 {
		if -gap > before {
			t.Errorf("imbalance grew: before %.2f, after %.2f", before, gap)
		}
	} else if gap >= before {
		t.Errorf("imbalance not reduced: before %.2f, after %.2f", before, gap)
	}
	if m["flight_events"] < 2 {
		t.Errorf("flight recorder has %.0f events, want the move and the salvage at least", m["flight_events"])
	}
	if !strings.Contains(res.Flight, "vice.volume.move") || !strings.Contains(res.Flight, "vice.salvage") {
		t.Errorf("flight dump missing operator events:\n%s", res.Flight)
	}
}

// TestE15Determinism: two same-seed runs must render byte-identical tables,
// dashboards, flight dumps and series exports; a different seed must move
// them.
func TestE15Determinism(t *testing.T) {
	run := func(seed int64) []byte {
		res, err := E15HotVolume(e15Quick(seed))
		if err != nil {
			t.Fatalf("E15 (seed %d): %v", seed, err)
		}
		return e15Text(t, res)
	}
	a, b := run(3), run(3)
	if !bytes.Equal(a, b) {
		t.Errorf("same seed produced different E15 telemetry (%d vs %d bytes)", len(a), len(b))
	}
	if len(a) < 1000 {
		t.Errorf("E15 telemetry suspiciously small (%d bytes)", len(a))
	}
	c := run(4)
	if bytes.Equal(a, c) {
		t.Error("different seeds produced byte-identical E15 telemetry; seed is not flowing")
	}
}

// e15WorkloadFingerprint reduces a run to its workload-visible outcomes:
// final virtual time, per-server device busy time, every workstation's Venus
// counters, and the flight recorder (whose events carry virtual timestamps).
// None of these may depend on how often the sampler looked.
func e15WorkloadFingerprint(res *E15Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "now=%v\n", res.Cell.Now())
	for _, s := range res.Cell.Servers {
		fmt.Fprintf(&b, "%s cpu=%d disk=%d\n", s.Vice.Name(), int64(s.CPU.BusyTime()), int64(s.Disk.BusyTime()))
	}
	for _, ws := range res.Cell.Workstations() {
		fmt.Fprintf(&b, "%s %+v\n", ws.Name, ws.Venus.Stats())
	}
	res.Cell.Flight.WriteText(&b)
	return b.String()
}

// TestSamplingInert is the read-only contract of the telemetry plane: runs
// that differ only in sampling cadence — more tick events interleaved into
// the schedule — must agree on every workload-visible outcome, down to the
// virtual timestamps in the flight recorder.
func TestSamplingInert(t *testing.T) {
	base := e15Quick(1)
	fast := e15Quick(1)
	fast.Cadence = 10 * time.Second

	resA, err := E15HotVolume(base)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := E15HotVolume(fast)
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := e15WorkloadFingerprint(resA), e15WorkloadFingerprint(resB)
	if fa != fb {
		t.Errorf("sampling cadence perturbed the workload:\n--- 15s cadence\n%s\n--- 10s cadence\n%s", fa, fb)
	}
	if resA.Cell.Sampler.Samples() == resB.Cell.Sampler.Samples() {
		t.Error("cadence change did not change sample count; the comparison is vacuous")
	}
}
