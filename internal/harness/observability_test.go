package harness

import (
	"strings"
	"testing"
	"time"

	"itcfs/internal/trace"
)

// e17Small shrinks the ablation to one small cluster so the smoke test runs
// in seconds; the committed BENCH_obs.json carries the 10k/30k numbers.
func e17Small() E17Config {
	cfg := DefaultE17()
	cfg.Clients = []int{120}
	cfg.Reps = 1
	cfg.Rate = 64 // small population still keeps a visible sampled fraction
	return cfg
}

func TestE17ObsBenchSmoke(t *testing.T) {
	ob, err := RunObsBench(e17Small())
	if err != nil {
		t.Fatal(err)
	}
	if ob.Schema != "itcfs-bench-obs/v1" || len(ob.Points) != 1 {
		t.Fatalf("schema %q with %d points", ob.Schema, len(ob.Points))
	}
	pt := ob.Points[0]
	if len(pt.Legs) != 3 {
		t.Fatalf("legs = %d, want off/sampled/full", len(pt.Legs))
	}
	off, sampled, full := pt.Legs[0], pt.Legs[1], pt.Legs[2]
	if off.Mode != "off" || sampled.Mode != "sampled" || full.Mode != "full" {
		t.Fatalf("leg order = %s/%s/%s", off.Mode, sampled.Mode, full.Mode)
	}
	if off.SpansKept != 0 {
		t.Errorf("tracing-off leg kept %d spans", off.SpansKept)
	}
	if full.SpansKept == 0 {
		t.Error("full leg kept no spans")
	}
	if sampled.SpansKept >= full.SpansKept {
		t.Errorf("sampled kept %d spans, full kept %d — sampling retained too much",
			sampled.SpansKept, full.SpansKept)
	}
	if pt.ClientHours <= 0 {
		t.Errorf("client hours = %v", pt.ClientHours)
	}

	br := ob.Breach
	if br == nil || br.Breaches == 0 {
		t.Fatalf("breach leg fired no slo.breach events: %+v", br)
	}
	if br.HotNode != br.SaturatedServer {
		t.Errorf("breach blamed %q, load design saturates %q", br.HotNode, br.SaturatedServer)
	}
	for _, want := range []string{"class=" + trace.SpanVenusOpen, "burn=", "path[client=", "hot=" + br.SaturatedServer} {
		if !strings.Contains(br.FirstDetail, want) {
			t.Errorf("breach detail %q missing %q", br.FirstDetail, want)
		}
	}
	if br.BurnMilliPeak < 2000 {
		t.Errorf("peak burn = %dm, want >= breach threshold 2000m", br.BurnMilliPeak)
	}
	if !br.Recovered {
		t.Error("breach episode never recovered after the hot phase ended")
	}
	if !strings.Contains(br.AdvisorReason, "slo burn") {
		t.Errorf("advisor reason %q does not cite the SLO burn", br.AdvisorReason)
	}

	rep := ob.Report()
	if rep.Metrics["breaches"] < 1 || rep.Metrics["breach_named_saturated_server"] != 1 {
		t.Errorf("report metrics = %+v", rep.Metrics)
	}
}

// TestE17SamplingInert is the tentpole's perturbation guard in isolation:
// turning the tracer on — sampled or full — must not shift the virtual
// timeline or any metric count of the identical workload.
func TestE17SamplingInert(t *testing.T) {
	cfg := e17Small()
	e14 := DefaultE14()
	e14.Scale.Ops = 10
	e14.Scale.Browse = 4
	e14.Scale.Stagger = 2 * time.Hour
	var elapsed [3]time.Duration
	var fp [3]string
	for i, mode := range obsLegModes {
		leg, f, el, err := measureObsLeg(e14, 120, mode, cfg)
		if err != nil {
			t.Fatalf("%s leg: %v", mode, err)
		}
		elapsed[i], fp[i] = el, f
		if leg.WallSeconds < 0 {
			t.Fatalf("%s leg wall = %v", mode, leg.WallSeconds)
		}
	}
	for i := 1; i < 3; i++ {
		if elapsed[i] != elapsed[0] {
			t.Errorf("%s leg virtual time %v != off %v", obsLegModes[i], elapsed[i], elapsed[0])
		}
		if fp[i] != fp[0] {
			t.Errorf("%s leg metrics registry diverged from off", obsLegModes[i])
		}
	}
}

// TestE17BreachDeterminism reruns the breach leg and requires every surfaced
// string and number to match byte-for-byte — the flight event detail embeds
// trace IDs and durations, all of which must be seed-stable.
func TestE17BreachDeterminism(t *testing.T) {
	cfg := DefaultE17().Breach
	a, err := e17Breach(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e17Breach(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("breach runs diverged:\n  %+v\n  %+v", a, b)
	}
}
