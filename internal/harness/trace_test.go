package harness

import (
	"bytes"
	"os"
	"testing"

	"itcfs"
	"itcfs/internal/sim"
	"itcfs/internal/trace"
	"itcfs/internal/workload"
)

func smallAndrew(seed int64) workload.AndrewConfig {
	a := workload.DefaultAndrew()
	a.Seed = seed
	a.Files = 10
	a.Dirs = 2
	return a
}

func TestE13ComponentsSumToTotal(t *testing.T) {
	cfg := DefaultE13()
	cfg.Andrew = smallAndrew(42)
	r, err := E13LatencyBreakdown(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Print(os.Stderr)
	for _, mode := range []string{"prototype", "revised"} {
		if se := r.Metrics[mode+"_sum_err"]; se > 0.01 {
			t.Errorf("%s: components miss end-to-end total by %.2f%%, want ≤1%%", mode, 100*se)
		}
		if mc := r.Metrics[mode+"_min_client_ns"]; mc < 0 {
			t.Errorf("%s: negative client residual (%v ns): network/server time over-attributed", mode, mc)
		}
		if r.Metrics[mode+"_server_frac"] <= 0 {
			t.Errorf("%s: no server time attributed at all", mode)
		}
		if r.Metrics[mode+"_net_frac"] <= 0 {
			t.Errorf("%s: no network time attributed at all", mode)
		}
	}
	// The revised design's whole point: less of the end-to-end time is spent
	// waiting on servers than in the prototype.
	if r.Metrics["revised_server_frac"] >= r.Metrics["prototype_server_frac"] {
		t.Errorf("revised server share (%.3f) not below prototype's (%.3f)",
			r.Metrics["revised_server_frac"], r.Metrics["prototype_server_frac"])
	}
}

// tracedRun executes a small traced Andrew benchmark and returns the
// exported Chrome trace bytes.
func tracedRun(t *testing.T, seed int64) []byte {
	t.Helper()
	cell := itcfs.NewCell(itcfs.CellConfig{
		Mode:    itcfs.Revised,
		Trace:   true,
		Metrics: trace.NewRegistry(),
	})
	andrew := smallAndrew(seed)
	var err error
	cell.Run(func(p *sim.Proc) {
		var admin *itcfs.Admin
		if admin, err = cell.Admin(p, 0); err != nil {
			return
		}
		err = admin.NewUser(p, "bench", "pw", 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	ws := cell.AddWorkstation(0, "ws-det")
	cell.Run(func(p *sim.Proc) {
		if err = ws.Login(p, "bench", "pw"); err != nil {
			return
		}
		if _, err = workload.GenerateTree(p, ws.FS, "/vice/usr/bench/src", andrew); err != nil {
			return
		}
		_, err = workload.RunAndrew(p, ws.FS, "/vice/usr/bench/src", "/vice/usr/bench/dst", andrew)
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cell.Tracer.ExportChrome(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestTraceDeterminism(t *testing.T) {
	a := tracedRun(t, 7)
	b := tracedRun(t, 7)
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different trace exports (%d vs %d bytes)", len(a), len(b))
	}
	c := tracedRun(t, 8)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced byte-identical traces; the clock or IDs are not flowing")
	}
	if len(a) < 1000 {
		t.Fatalf("trace export suspiciously small (%d bytes): tracing not recording", len(a))
	}
}
