package harness

import (
	"fmt"
	"time"

	"itcfs"
	"itcfs/internal/monitor"
	"itcfs/internal/sim"
)

// E11Config sizes the rebalancing experiment.
type E11Config struct {
	// Movers is the number of users whose volumes start on the wrong
	// cluster (they "moved dormitories", §3.1's example).
	Movers  int
	OpsEach int
}

// DefaultE11 returns the standard configuration.
func DefaultE11() E11Config {
	return E11Config{Movers: 6, OpsEach: 60}
}

// E11Rebalance exercises the monitoring tools of §3.6 end to end: users
// whose volumes live in the wrong cluster generate cross-cluster traffic;
// the Advisor detects the misplacement from the servers' access counters;
// a (simulated) human operator applies the recommended volume moves; and
// the same workload afterwards stays inside its clusters. This is the
// paper's "if a student moves from one dormitory to another he may request
// that his files be moved to the cluster server at his new location",
// automated up to the human decision.
func E11Rebalance(cfg E11Config) (*Report, error) {
	cell := itcfs.NewCell(itcfs.CellConfig{Mode: itcfs.Prototype, Clusters: 2})
	var err error
	cell.Run(func(p *sim.Proc) {
		admin, aerr := cell.Admin(p, 0)
		if aerr != nil {
			err = aerr
			return
		}
		for i := 0; i < cfg.Movers; i++ {
			// Volumes created on server0 — but the users work in cluster 1.
			if _, err = admin.NewUserAt(p, fmt.Sprintf("mover%d", i), "pw", 0, ""); err != nil {
				return
			}
		}
	})
	if err != nil {
		return nil, err
	}
	var stations []*itcfs.Workstation
	for i := 0; i < cfg.Movers; i++ {
		ws := cell.AddWorkstation(1, fmt.Sprintf("dorm%d", i))
		stations = append(stations, ws)
		i := i
		cell.Run(func(p *sim.Proc) {
			if lerr := ws.Login(p, fmt.Sprintf("mover%d", i), "pw"); lerr != nil {
				err = lerr
				return
			}
			for f := 0; f < 5; f++ {
				if err = ws.FS.WriteFile(p, fmt.Sprintf("/vice/usr/mover%d/f%d", i, f), []byte("contents")); err != nil {
					return
				}
			}
		})
		if err != nil {
			return nil, err
		}
	}

	burst := func() (time.Duration, int64, error) {
		frames0 := cell.Net.CrossClusterFrames()
		var total time.Duration
		var derr error
		for i, ws := range stations {
			i, ws := i, ws
			cell.Run(func(p *sim.Proc) {
				t0 := p.Now()
				for op := 0; op < cfg.OpsEach; op++ {
					if _, rerr := ws.FS.ReadFile(p, fmt.Sprintf("/vice/usr/mover%d/f%d", i, op%5)); rerr != nil {
						derr = rerr
						return
					}
				}
				total += p.Now().Sub(t0)
			})
			if derr != nil {
				return 0, 0, derr
			}
		}
		return total / time.Duration(len(stations)), cell.Net.CrossClusterFrames() - frames0, nil
	}

	adv := monitor.New(cell, monitor.DefaultConfig())
	adv.Reset()
	beforeTime, beforeFrames, err := burst()
	if err != nil {
		return nil, err
	}
	recs := adv.Recommend()
	if len(recs) == 0 {
		return nil, fmt.Errorf("E11: advisor produced no recommendations")
	}
	// The operator applies every recommendation.
	cell.Run(func(p *sim.Proc) {
		admin, aerr := cell.Admin(p, 0)
		if aerr != nil {
			err = aerr
			return
		}
		for _, r := range recs {
			if err = admin.MoveVolume(p, r.Volume, r.To); err != nil {
				return
			}
		}
	})
	if err != nil {
		return nil, err
	}
	afterTime, afterFrames, err := burst()
	if err != nil {
		return nil, err
	}

	r := newReport("E11", "Monitoring tools: detect and repair misplaced volumes",
		"monitor access patterns, recommend reassignment, operator applies it (§3.6)",
		"metric", "before rebalancing", "after")
	r.addRow("volumes recommended to move", fmt.Sprintf("%d", len(recs)), "0 (all applied)")
	r.addRow("cross-cluster frames per burst", fmt.Sprintf("%d", beforeFrames), fmt.Sprintf("%d", afterFrames))
	r.addRow("mean user burst time", beforeTime.Round(time.Millisecond).String(), afterTime.Round(time.Millisecond).String())
	r.Metrics["recommendations"] = float64(len(recs))
	r.Metrics["frames_before"] = float64(beforeFrames)
	r.Metrics["frames_after"] = float64(afterFrames)
	r.Metrics["time_before_ms"] = float64(beforeTime) / float64(time.Millisecond)
	r.Metrics["time_after_ms"] = float64(afterTime) / float64(time.Millisecond)
	return r, nil
}
