package harness

import (
	"fmt"
	"math/rand"
	"time"

	"itcfs"
	"itcfs/internal/replica"
	"itcfs/internal/sim"
	"itcfs/internal/trace"
	"itcfs/internal/workload"
)

// E16Config sizes the replication-availability experiment.
type E16Config struct {
	Seed int64
	// Clusters is the number of cluster servers; server0 is the custodian
	// of the system-binary volume and the server that dies mid-run.
	Clusters int
	// ReadersPerCluster stations per cluster read the released binaries in
	// a round-robin loop. Cluster-0 readers prefer the (doomed) custodian
	// and must fail over; other clusters' readers prefer their own local
	// replica and should never notice the crash.
	ReadersPerCluster int
	SysFiles          int           // released system binaries
	Think             time.Duration // reader pause between binary reads
	// CacheBytes keeps the Venus caches small enough that the binaries
	// cycle out: post-crash reads are real fetches, not cache hits, or the
	// unreplicated leg would ride out the crash on cached copies.
	CacheBytes int64
	// AndrewStart delays the Andrew run so its Copy phase — the window
	// where it reads every released source file — brackets the kill.
	AndrewStart time.Duration
	KillAfter   time.Duration // custodian crash, from load start
	Window      time.Duration // reader loop duration
	// Fault-tolerance knobs passed to the cell (failure is detected by
	// timeout, so the timeout must be short relative to Window).
	CallTimeout      time.Duration
	ReconnectRetries int
	Andrew           workload.AndrewConfig
	FlightEvents     int
}

// DefaultE16 returns the standard configuration: three cluster servers, the
// binaries released to the two non-custodians, and the custodian killed
// while readers in every cluster and an Andrew run are consuming the
// released tree.
func DefaultE16() E16Config {
	andrew := DefaultAndrew()
	andrew.Files = 24
	andrew.Dirs = 3
	andrew.MeanFileBytes = 4 << 10
	// A fast compiler: E16 measures availability, not benchmark time.
	andrew.CompilePerKB = 200 * time.Millisecond
	andrew.CompilePerFile = 250 * time.Millisecond
	return E16Config{
		Seed:              1,
		Clusters:          3,
		ReadersPerCluster: 2,
		SysFiles:          24,
		Think:             2 * time.Second,
		CacheBytes:        96 << 10,
		AndrewStart:       30 * time.Second,
		KillAfter:         45 * time.Second,
		Window:            6 * time.Minute,
		CallTimeout:       10 * time.Second,
		ReconnectRetries:  1,
		Andrew:            andrew,
		FlightEvents:      512,
	}
}

// DefaultAndrew re-exports the calibrated Andrew shape for configs built on
// it.
func DefaultAndrew() workload.AndrewConfig { return workload.DefaultAndrew() }

// E16Result is the experiment outcome plus the two cells, kept alive so
// tests can inspect metrics and flight recorders.
type E16Result struct {
	Report       *Report
	Replicated   *itcfs.Cell
	Unreplicated *itcfs.Cell
	// DedupRatio is the replicated leg's content-addressed block index
	// ratio (logical bytes interned / physical bytes stored).
	DedupRatio float64
}

// e16Leg is one cell's worth of measurements.
type e16Leg struct {
	cell            *itcfs.Cell
	blocks          *replica.Index
	attempted       int64
	failed          int64
	localAttempted  int64 // readers homed on surviving replicas
	localFailed     int64
	failovers       int64
	releaseInstalls int64
	andrewErr       error
	andrewTotal     time.Duration
}

// E16Replication measures what read-only replication buys when the
// custodian dies (§3.2: "frequently read but rarely modified" subtrees are
// replicated read-only at many sites; §5.3 names availability as the
// motivation). Two identical cells run the same seeded load — readers in
// every cluster looping over the released system binaries, plus an Andrew
// run whose source tree lives in the released volume — and in both, the
// custodian of the binaries is killed mid-run. The only difference: one
// cell released the volume to replicas on every other cluster server first.
// The replicated leg must show zero failed reads (cluster-0 readers fail
// over to replicas; the others were already reading their local replica),
// while the unreplicated leg shows the outage. The replicated release also
// exercises the content-addressed block index: N+1 copies of every released
// byte intern to one, and the report prints the measured dedup ratio.
func E16Replication(cfg E16Config) (*E16Result, error) {
	if cfg.Clusters < 2 {
		return nil, fmt.Errorf("E16: need at least 2 clusters, got %d", cfg.Clusters)
	}
	rep, err := e16RunLeg(cfg, true)
	if err != nil {
		return nil, fmt.Errorf("E16 replicated leg: %w", err)
	}
	unrep, err := e16RunLeg(cfg, false)
	if err != nil {
		return nil, fmt.Errorf("E16 unreplicated leg: %w", err)
	}

	// The experiment's claims, checked here so a regression fails loudly
	// rather than printing a subtly wrong table.
	if rep.failed != 0 {
		return nil, fmt.Errorf("E16: replicated leg had %d failed reads (want 0)", rep.failed)
	}
	if rep.andrewErr != nil {
		return nil, fmt.Errorf("E16: replicated leg Andrew run failed: %w", rep.andrewErr)
	}
	if unrep.failed == 0 {
		return nil, fmt.Errorf("E16: unreplicated leg had no failed reads; the crash did not bite")
	}
	ratio := rep.blocks.Ratio()
	if ratio < 1.5 {
		return nil, fmt.Errorf("E16: dedup ratio %.2f below 1.5 on the replicated leg", ratio)
	}

	logical, physical, blocks := rep.blocks.Stats()
	andrewCell := func(l *e16Leg) string {
		if l.andrewErr != nil {
			return fmt.Sprintf("failed: %v", l.andrewErr)
		}
		return fmt.Sprintf("completed (%s)", secs(l.andrewTotal))
	}
	r := newReport("E16", "Read-only replication: release, failover, dedup",
		"replicating read-only subtrees \"at many sites\" keeps them available (§3.2, §5.3)",
		"metric", "replicated", "unreplicated")
	r.addRow("reads attempted", fmt.Sprintf("%d", rep.attempted), fmt.Sprintf("%d", unrep.attempted))
	r.addRow("reads failed", fmt.Sprintf("%d", rep.failed), fmt.Sprintf("%d", unrep.failed))
	r.addRow("… by replica-local readers", fmt.Sprintf("%d of %d", rep.localFailed, rep.localAttempted),
		fmt.Sprintf("%d of %d", unrep.localFailed, unrep.localAttempted))
	r.addRow("Venus failovers", fmt.Sprintf("%d", rep.failovers), fmt.Sprintf("%d", unrep.failovers))
	r.addRow("release installs pushed", fmt.Sprintf("%d", rep.releaseInstalls), fmt.Sprintf("%d", unrep.releaseInstalls))
	r.addRow("Andrew run over released tree", andrewCell(rep), andrewCell(unrep))
	r.addRow("dedup ratio (system binaries)",
		fmt.Sprintf("%.2fx (%d KB over %d KB, %d blocks)", ratio, logical>>10, physical>>10, blocks),
		fmt.Sprintf("%.2fx", unrep.blocks.Ratio()))
	r.addRow("flight events recorded", fmt.Sprintf("%d", rep.cell.Flight.Total()),
		fmt.Sprintf("%d", unrep.cell.Flight.Total()))

	r.Metrics["attempted_replicated"] = float64(rep.attempted)
	r.Metrics["failed_replicated"] = float64(rep.failed)
	r.Metrics["attempted_unreplicated"] = float64(unrep.attempted)
	r.Metrics["failed_unreplicated"] = float64(unrep.failed)
	r.Metrics["failovers_replicated"] = float64(rep.failovers)
	r.Metrics["release_installs"] = float64(rep.releaseInstalls)
	r.Metrics["dedup_ratio"] = ratio
	r.Metrics["andrew_ok_replicated"] = boolMetric(rep.andrewErr == nil)
	r.Metrics["andrew_ok_unreplicated"] = boolMetric(unrep.andrewErr == nil)

	return &E16Result{
		Report:       r,
		Replicated:   rep.cell,
		Unreplicated: unrep.cell,
		DedupRatio:   ratio,
	}, nil
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// e16RunLeg provisions one cell, releases the binaries (with or without
// replicas), applies the reader + Andrew load, kills the custodian on
// schedule, and collects the counters.
func e16RunLeg(cfg E16Config, replicate bool) (*e16Leg, error) {
	metrics := trace.NewRegistry()
	leg := &e16Leg{blocks: replica.NewIndex(metrics)}
	cell := itcfs.NewCell(itcfs.CellConfig{
		Mode:             itcfs.Revised,
		Clusters:         cfg.Clusters,
		CacheBytes:       cfg.CacheBytes,
		CallTimeout:      cfg.CallTimeout,
		ReconnectRetries: cfg.ReconnectRetries,
		Metrics:          metrics,
		FlightEvents:     cfg.FlightEvents,
		Blocks:           leg.blocks,
	})
	leg.cell = cell

	// Provision: the binaries and the Andrew source tree in one volume on
	// server0; the Andrew user's home on server1, where it survives.
	drive := workload.DefaultConfig(cfg.Seed)
	drive.SysFiles = cfg.SysFiles
	srcRW := "/vice" + drive.SysRoot + "/src"
	var sysVol uint32
	var err error
	cell.Run(func(p *sim.Proc) {
		admin, aerr := cell.Admin(p, 0)
		if aerr != nil {
			err = aerr
			return
		}
		if err = admin.MkdirAll(p, "/unix"); err != nil {
			return
		}
		if sysVol, err = admin.CreateVolume(p, "sys.bin", drive.SysRoot, "operator", 0); err != nil {
			return
		}
		_, err = admin.NewUserAt(p, "andrew", "pw", 0, cell.Servers[1].Vice.Name())
	})
	if err != nil {
		return nil, fmt.Errorf("provision: %w", err)
	}
	opWS := cell.AddWorkstation(0, "op-console")
	cell.Run(func(p *sim.Proc) {
		if err = opWS.Login(p, "operator", "operator-password"); err != nil {
			return
		}
		r := rand.New(rand.NewSource(cfg.Seed))
		if err = workload.PopulateSystem(p, opWS.FS, drive, r); err != nil {
			return
		}
		_, err = workload.GenerateTree(p, opWS.FS, srcRW, cfg.Andrew)
	})
	if err != nil {
		return nil, fmt.Errorf("populate: %w", err)
	}

	// Release. The read-only clone mounts beside the read-write volume; in
	// the replicated leg it is also pushed to every other cluster server.
	roRoot := drive.SysRoot + "-ro"
	var replicas []string
	if replicate {
		for _, s := range cell.Servers[1:] {
			replicas = append(replicas, s.Vice.Name())
		}
	}
	cell.Run(func(p *sim.Proc) {
		admin, aerr := cell.Admin(p, 0)
		if aerr != nil {
			err = aerr
			return
		}
		_, err = admin.CloneVolume(p, sysVol, roRoot, replicas...)
	})
	if err != nil {
		return nil, fmt.Errorf("release: %w", err)
	}
	leg.releaseInstalls = metrics.Counter(trace.MetricReplicaReleaseInstalls).Value()

	// Stations: readers in every cluster (logged in as the operator — the
	// released tree is world-readable) plus the Andrew runner next to its
	// home server in cluster 1.
	type station struct {
		ws    *itcfs.Workstation
		local bool // homed on a server that carries a replica
	}
	var readers []station
	for c := 0; c < cfg.Clusters; c++ {
		for i := 0; i < cfg.ReadersPerCluster; i++ {
			ws := cell.AddWorkstation(c, fmt.Sprintf("read%d-%d", c, i))
			var lerr error
			cell.Run(func(p *sim.Proc) { lerr = ws.Login(p, "operator", "operator-password") })
			if lerr != nil {
				return nil, lerr
			}
			readers = append(readers, station{ws: ws, local: replicate && c > 0})
		}
	}
	andrewWS := cell.AddWorkstation(1, "andrew-ws")
	cell.Run(func(p *sim.Proc) { err = andrewWS.Login(p, "andrew", "pw") })
	if err != nil {
		return nil, err
	}
	// Warm the name-space spine: resolve the build area once while every
	// server is up, caching the upper-level directories under callback. The
	// root volume's upper levels are exactly what §3.2 prescribes
	// replicating "at many sites"; this cell leaves them on server0, so a
	// workstation that never resolved /usr before the crash would lose it
	// with the custodian — a real exposure, but not the one E16 measures.
	cell.Run(func(p *sim.Proc) { _, err = andrewWS.FS.ReadDir(p, "/vice/usr/andrew") })
	if err != nil {
		return nil, err
	}

	// Load. Staggers are drawn deterministically from the seed in a fixed
	// order so the stations never march in lockstep.
	rng := rand.New(rand.NewSource(cfg.Seed + 16))
	start := cell.Now()
	until := start.Add(cfg.Window)
	for _, st := range readers {
		st := st
		stagger := time.Duration(rng.Int63n(int64(cfg.Think)))
		cell.Kernel.Spawn("read-"+st.ws.Name, func(p *sim.Proc) {
			p.Sleep(stagger)
			for f := 0; p.Now() < until; f++ {
				path := fmt.Sprintf("/vice%s/bin%03d", roRoot, f%cfg.SysFiles)
				leg.attempted++
				if st.local {
					leg.localAttempted++
				}
				if _, rerr := st.ws.FS.ReadFile(p, path); rerr != nil {
					leg.failed++
					if st.local {
						leg.localFailed++
					}
				}
				p.Sleep(cfg.Think)
			}
		})
	}
	cell.Kernel.Spawn("andrew", func(p *sim.Proc) {
		p.Sleep(cfg.AndrewStart)
		pt, aerr := workload.RunAndrew(p, andrewWS.FS, "/vice"+roRoot+"/src", "/vice/usr/andrew/build", cfg.Andrew)
		leg.andrewErr = aerr
		leg.andrewTotal = pt.Total()
	})
	cell.Kernel.Spawn("kill-custodian", func(p *sim.Proc) {
		p.Sleep(cfg.KillAfter)
		cell.CrashServer(0)
	})
	cell.Kernel.Run()

	for _, st := range readers {
		leg.failovers += st.ws.Venus.Stats().Failovers
	}
	leg.failovers += andrewWS.Venus.Stats().Failovers
	return leg, nil
}
