// Package virtue implements the workstation file-system layer of §3.1 and
// Figure 3-2: a Unix-style interface over two name spaces. The local name
// space (the workstation's root file system) holds boot files, temporaries
// and private data; everything under the mount point (conventionally
// "/vice") is the shared name space, served by Venus from its whole-file
// cache. Symbolic links in the local space may point into "/vice" — that is
// how "/bin" on a Sun resolves to "/vice/unix/sun/bin" while the same name
// on a Vax resolves to "/vice/unix/vax/bin".
//
// Application programs see one hierarchical file system; whether a file is
// local or shared changes performance, never semantics (§3.2).
package virtue

import (
	"fmt"
	"strings"

	"itcfs/internal/proto"
	"itcfs/internal/sim"
	"itcfs/internal/unixfs"
	"itcfs/internal/venus"
)

// MountPoint is the conventional root of the shared name space.
const MountPoint = "/vice"

// Open flags, re-exported from Venus so applications import only virtue.
const (
	FlagRead   = venus.FlagRead
	FlagWrite  = venus.FlagWrite
	FlagCreate = venus.FlagCreate
	FlagTrunc  = venus.FlagTrunc
)

// DirEntry is one name in a directory listing.
type DirEntry struct {
	Name  string
	IsDir bool
}

// Stat describes a file in either name space.
type Stat struct {
	Name    string
	Size    int64
	IsDir   bool
	Mode    uint16
	Owner   string
	Version uint64
	Shared  bool // true when the file lives in Vice
}

// FS is one workstation's file system view.
type FS struct {
	local *unixfs.FS
	venus *venus.Venus
	mount string
	// maxLinkDepth bounds local->vice symlink expansion.
	maxLinkDepth int
}

// New assembles the workstation view from a local file system and a Venus.
func New(local *unixfs.FS, v *venus.Venus) *FS {
	return &FS{local: local, venus: v, mount: MountPoint, maxLinkDepth: 16}
}

// Local exposes the local file system (boot scripts, tests).
func (fs *FS) Local() *unixfs.FS { return fs.local }

// Venus exposes the cache manager (stats, login).
func (fs *FS) Venus() *venus.Venus { return fs.venus }

// Login authenticates the workstation's user to Vice.
func (fs *FS) Login(user string) { fs.venus.Login(user) }

// target is the result of resolving a workstation path: either a path in
// the shared space (shared=true, path relative to the Vice root) or a local
// path.
type target struct {
	shared bool
	path   string
}

// resolve walks path at the Virtue level: component by component through
// the local space, expanding symbolic links, and diverting into the shared
// space the moment the walk enters the mount point. followLast controls
// whether a symlink in the final component is expanded.
func (fs *FS) resolve(path string, followLast bool) (target, error) {
	return fs.resolveDepth(path, followLast, 0)
}

func (fs *FS) resolveDepth(path string, followLast bool, depth int) (target, error) {
	if depth > fs.maxLinkDepth {
		return target{}, fmt.Errorf("%w: %s", unixfs.ErrLoop, path)
	}
	path = unixfs.Clean(path)
	if vicePath, ok := fs.underMount(path); ok {
		return target{shared: true, path: vicePath}, nil
	}
	// Walk local components looking for a symlink that crosses into /vice
	// or elsewhere.
	parts := strings.Split(strings.TrimPrefix(path, "/"), "/")
	prefix := ""
	for i, comp := range parts {
		if comp == "" {
			continue
		}
		prefix = prefix + "/" + comp
		last := i == len(parts)-1
		st, err := fs.local.Lstat(prefix)
		if err != nil {
			// Leaf may legitimately not exist (create); interior must.
			if last {
				return target{shared: false, path: path}, nil
			}
			return target{}, err
		}
		if st.Type == unixfs.TypeSymlink && (!last || followLast) {
			tgt := st.Target
			if !strings.HasPrefix(tgt, "/") {
				tgt = unixfs.Join(unixfs.Dir(prefix), tgt)
			}
			rest := strings.Join(parts[i+1:], "/")
			return fs.resolveDepth(unixfs.Join(tgt, rest), followLast, depth+1)
		}
	}
	return target{shared: false, path: path}, nil
}

// underMount reports whether path is inside the shared name space,
// returning the Vice-relative remainder.
func (fs *FS) underMount(path string) (string, bool) {
	if path == fs.mount {
		return "/", true
	}
	if strings.HasPrefix(path, fs.mount+"/") {
		return path[len(fs.mount):], true
	}
	return "", false
}

// File is an open file in either name space.
type File struct {
	fs     *FS
	vh     *venus.Handle // shared files
	lpath  string        // local files
	flags  venus.OpenFlag
	offset int64
	closed bool
}

// Open opens path with the given flags.
func (fs *FS) Open(p *sim.Proc, path string, flags venus.OpenFlag) (*File, error) {
	tgt, err := fs.resolve(path, true)
	if err != nil {
		return nil, err
	}
	if tgt.shared {
		vh, err := fs.venus.Open(p, tgt.path, flags)
		if err != nil {
			return nil, err
		}
		return &File{fs: fs, vh: vh, flags: flags}, nil
	}
	lp := tgt.path
	exists := fs.local.Exists(lp)
	switch {
	case !exists && flags&venus.FlagCreate != 0:
		if err := fs.local.WriteFile(lp, nil, 0o644, fs.venus.User()); err != nil {
			return nil, err
		}
	case !exists:
		return nil, fmt.Errorf("%w: %s", unixfs.ErrNotExist, path)
	case flags&venus.FlagTrunc != 0:
		if err := fs.local.Truncate(lp, 0); err != nil {
			return nil, err
		}
	}
	return &File{fs: fs, lpath: lp, flags: flags}, nil
}

// Read reads at the file offset.
func (f *File) Read(buf []byte) (int, error) {
	n, err := f.ReadAt(buf, f.offset)
	f.offset += int64(n)
	return n, err
}

// ReadAt reads at an absolute offset.
func (f *File) ReadAt(buf []byte, off int64) (int, error) {
	if f.closed {
		return 0, fmt.Errorf("%w: closed file", unixfs.ErrInvalid)
	}
	if f.vh != nil {
		return f.vh.ReadAt(buf, off)
	}
	return f.fs.local.ReadAt(f.lpath, buf, off)
}

// Write writes at the file offset.
func (f *File) Write(buf []byte) (int, error) {
	n, err := f.WriteAt(buf, f.offset)
	f.offset += int64(n)
	return n, err
}

// WriteAt writes at an absolute offset.
func (f *File) WriteAt(buf []byte, off int64) (int, error) {
	if f.closed {
		return 0, fmt.Errorf("%w: closed file", unixfs.ErrInvalid)
	}
	if f.vh != nil {
		return f.vh.WriteAt(buf, off)
	}
	if f.flags&venus.FlagWrite == 0 {
		return 0, fmt.Errorf("%w: not open for writing", proto.ErrAccess)
	}
	return f.fs.local.WriteAt(f.lpath, buf, off)
}

// Seek positions the file offset.
func (f *File) Seek(off int64, whence int) (int64, error) {
	if f.vh != nil {
		pos, err := f.vh.Seek(off, whence)
		f.offset = pos
		return pos, err
	}
	switch whence {
	case 0:
		f.offset = off
	case 1:
		f.offset += off
	case 2:
		st, err := f.fs.local.Stat(f.lpath)
		if err != nil {
			return 0, err
		}
		f.offset = st.Size + off
	default:
		return 0, unixfs.ErrInvalid
	}
	return f.offset, nil
}

// Close closes the file. For a modified shared file this is the moment the
// whole file travels to its custodian.
func (f *File) Close(p *sim.Proc) error {
	if f.closed {
		return nil
	}
	f.closed = true
	if f.vh != nil {
		return f.vh.Close(p)
	}
	return nil
}

// ReadFile reads an entire file.
func (fs *FS) ReadFile(p *sim.Proc, path string) ([]byte, error) {
	f, err := fs.Open(p, path, venus.FlagRead)
	if err != nil {
		return nil, err
	}
	defer f.Close(p)
	// Size the buffer from the open handle's (cached) status and read the
	// data straight into it — no scratch buffer, no second copy. The spare
	// byte lets the final read report EOF without an extra growth step.
	var size int64
	if f.vh != nil {
		size = f.vh.Status().Size
	} else if st, serr := fs.local.Stat(f.lpath); serr == nil {
		size = st.Size
	}
	out := make([]byte, 0, size+1)
	off := int64(0)
	for {
		if len(out) == cap(out) {
			out = append(out, 0)[:len(out)]
		}
		n, err := f.ReadAt(out[len(out):cap(out)], off)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
		out = out[:len(out)+n]
		off += int64(n)
	}
}

// WriteFile writes an entire file, creating or truncating it.
func (fs *FS) WriteFile(p *sim.Proc, path string, data []byte) error {
	f, err := fs.Open(p, path, venus.FlagWrite|venus.FlagCreate|venus.FlagTrunc)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close(p)
		return err
	}
	return f.Close(p)
}

// Stat describes path.
func (fs *FS) Stat(p *sim.Proc, path string) (Stat, error) {
	tgt, err := fs.resolve(path, true)
	if err != nil {
		return Stat{}, err
	}
	if tgt.shared {
		st, err := fs.venus.Stat(p, tgt.path)
		if err != nil {
			return Stat{}, err
		}
		return Stat{
			Name:    unixfs.Base(path),
			Size:    st.Size,
			IsDir:   st.Type == proto.TypeDir,
			Mode:    st.Mode,
			Owner:   st.Owner,
			Version: st.Version,
			Shared:  true,
		}, nil
	}
	st, err := fs.local.Stat(tgt.path)
	if err != nil {
		return Stat{}, err
	}
	return Stat{
		Name:    unixfs.Base(path),
		Size:    st.Size,
		IsDir:   st.Type == unixfs.TypeDir,
		Mode:    st.Mode,
		Owner:   st.Owner,
		Version: st.Version,
	}, nil
}

// ReadDir lists a directory in either name space.
func (fs *FS) ReadDir(p *sim.Proc, path string) ([]DirEntry, error) {
	tgt, err := fs.resolve(path, true)
	if err != nil {
		return nil, err
	}
	if tgt.shared {
		entries, err := fs.venus.ReadDir(p, tgt.path)
		if err != nil {
			return nil, err
		}
		out := make([]DirEntry, len(entries))
		for i, e := range entries {
			out[i] = DirEntry{Name: e.Name, IsDir: e.Type == proto.TypeDir}
		}
		return out, nil
	}
	entries, err := fs.local.ReadDir(tgt.path)
	if err != nil {
		return nil, err
	}
	out := make([]DirEntry, len(entries))
	for i, e := range entries {
		out[i] = DirEntry{Name: e.Name, IsDir: e.Type == unixfs.TypeDir}
	}
	return out, nil
}

// Mkdir creates a directory.
func (fs *FS) Mkdir(p *sim.Proc, path string, mode uint16) error {
	tgt, err := fs.resolve(path, false)
	if err != nil {
		return err
	}
	if tgt.shared {
		return fs.venus.Mkdir(p, tgt.path, mode)
	}
	return fs.local.Mkdir(tgt.path, mode, fs.venus.User())
}

// Remove unlinks a file or symlink.
func (fs *FS) Remove(p *sim.Proc, path string) error {
	tgt, err := fs.resolve(path, false)
	if err != nil {
		return err
	}
	if tgt.shared {
		return fs.venus.Remove(p, tgt.path)
	}
	return fs.local.Remove(tgt.path)
}

// RemoveDir removes an empty directory.
func (fs *FS) RemoveDir(p *sim.Proc, path string) error {
	tgt, err := fs.resolve(path, false)
	if err != nil {
		return err
	}
	if tgt.shared {
		return fs.venus.RemoveDir(p, tgt.path)
	}
	return fs.local.RemoveDir(tgt.path)
}

// Rename moves a file or subtree. Both ends must live in the same name
// space (and, for shared files, the same volume).
func (fs *FS) Rename(p *sim.Proc, from, to string) error {
	ft, err := fs.resolve(from, false)
	if err != nil {
		return err
	}
	tt, err := fs.resolve(to, false)
	if err != nil {
		return err
	}
	if ft.shared != tt.shared {
		return fmt.Errorf("%w: rename across local and shared spaces", proto.ErrBadRequest)
	}
	if ft.shared {
		return fs.venus.Rename(p, ft.path, tt.path)
	}
	return fs.local.Rename(ft.path, tt.path)
}

// Symlink creates a symbolic link. Links in the local space may point into
// the shared space (the Figure 3-2 arrangement); links inside Vice are
// created there.
func (fs *FS) Symlink(p *sim.Proc, target, path string) error {
	tgt, err := fs.resolve(path, false)
	if err != nil {
		return err
	}
	if tgt.shared {
		viceTarget := target
		if vp, ok := fs.underMount(unixfs.Clean(target)); ok {
			viceTarget = vp
		}
		return fs.venus.Symlink(p, viceTarget, tgt.path)
	}
	return fs.local.Symlink(target, tgt.path)
}

// Chmod updates protection bits.
func (fs *FS) Chmod(p *sim.Proc, path string, mode uint16) error {
	tgt, err := fs.resolve(path, true)
	if err != nil {
		return err
	}
	if tgt.shared {
		return fs.venus.SetMode(p, tgt.path, mode)
	}
	return fs.local.Chmod(tgt.path, mode)
}

// SetupStandardLinks builds the Figure 3-2 layout: local /tmp, and /bin and
// /lib as symbolic links into the architecture-specific shared binaries.
func (fs *FS) SetupStandardLinks(arch string) error {
	if err := fs.local.MkdirAll("/tmp", 0o777, "root"); err != nil {
		return err
	}
	for _, dir := range []string{"bin", "lib"} {
		link := "/" + dir
		if fs.local.Exists(link) {
			continue
		}
		if err := fs.local.Symlink(fmt.Sprintf("%s/unix/%s/%s", fs.mount, arch, dir), link); err != nil {
			return err
		}
	}
	return nil
}
