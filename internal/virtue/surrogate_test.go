package virtue

import (
	"bytes"
	"errors"
	"testing"

	"itcfs/internal/baseline"
	"itcfs/internal/proto"
	"itcfs/internal/rpc"
	"itcfs/internal/sim"
	"itcfs/internal/vice"
)

// surrogateConn dispatches page-protocol calls into a Surrogate, playing
// the part of the low-function client's network attachment.
type surrogateConn struct{ s *Surrogate }

func (c surrogateConn) Call(p *sim.Proc, req rpc.Request) (rpc.Response, error) {
	return c.s.Dispatcher().Dispatch(rpc.Ctx{User: "pc", Proc: p}, req), nil
}

func TestSurrogateGivesPCAccessToVice(t *testing.T) {
	fs, srv := rig(t, vice.Revised)
	sur := NewSurrogate(fs)
	pc := baseline.NewClient(surrogateConn{sur})

	// The PC writes into the shared name space through the surrogate.
	data := bytes.Repeat([]byte("pc data "), 1024) // ~8 KB, several pages
	if err := pc.WriteFile(nil, "/vice/report.doc", data); err != nil {
		t.Fatal(err)
	}
	// The write reached Vice: the server stored it.
	_, stored, _ := srv.TrafficStats()
	if stored == 0 {
		t.Fatal("PC write never reached Vice")
	}
	// And reads back page by page.
	got, err := pc.ReadFile(nil, "/vice/report.doc")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("PC read back %d bytes, %v", len(got), err)
	}
	opens, reads, writes := sur.OpCounts()
	if opens != 2 || reads < 2 || writes < 2 {
		t.Fatalf("surrogate counts: opens=%d reads=%d writes=%d", opens, reads, writes)
	}
}

func TestSurrogateSharesViceWithWorkstations(t *testing.T) {
	fs, _ := rig(t, vice.Prototype)
	sur := NewSurrogate(fs)
	pc := baseline.NewClient(surrogateConn{sur})

	// A normal Virtue application writes a file; the PC sees it.
	if err := fs.WriteFile(nil, "/vice/shared.txt", []byte("from virtue")); err != nil {
		t.Fatal(err)
	}
	got, err := pc.ReadFile(nil, "/vice/shared.txt")
	if err != nil || string(got) != "from virtue" {
		t.Fatalf("PC read: %q %v", got, err)
	}
	// The PC updates it; the store-on-close happens at the PC's Close, and
	// the Virtue side sees the new contents.
	if err := pc.WriteFile(nil, "/vice/shared.txt", []byte("from the PC")); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile(nil, "/vice/shared.txt")
	if err != nil || string(data) != "from the PC" {
		t.Fatalf("virtue read after PC write: %q %v", data, err)
	}
}

func TestSurrogateServesLocalFilesToo(t *testing.T) {
	fs, _ := rig(t, vice.Prototype)
	fs.Local().MkdirAll("/tmp", 0o777, "pc")
	sur := NewSurrogate(fs)
	pc := baseline.NewClient(surrogateConn{sur})
	if err := pc.WriteFile(nil, "/tmp/scratch", []byte("local via surrogate")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Local().ReadFile("/tmp/scratch")
	if err != nil || string(got) != "local via surrogate" {
		t.Fatalf("local file: %q %v", got, err)
	}
}

func TestSurrogateMissingFile(t *testing.T) {
	fs, _ := rig(t, vice.Prototype)
	pc := baseline.NewClient(surrogateConn{NewSurrogate(fs)})
	if _, err := pc.Open(nil, "/vice/nope", false); !errors.Is(err, proto.ErrNoEnt) {
		t.Fatalf("err = %v, want ErrNoEnt", err)
	}
}

func TestSurrogateStaleFD(t *testing.T) {
	fs, _ := rig(t, vice.Prototype)
	pc := baseline.NewClient(surrogateConn{NewSurrogate(fs)})
	if err := pc.WriteFile(nil, "/vice/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	f, err := pc.Open(nil, "/vice/f", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(nil); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := f.ReadAt(nil, buf, 0); !errors.Is(err, proto.ErrStale) {
		t.Fatalf("err = %v, want ErrStale", err)
	}
	// Double close reports staleness too.
	if err := f.Close(nil); !errors.Is(err, proto.ErrStale) {
		t.Fatalf("double close: %v", err)
	}
}

func TestSurrogateReadOnlyFallback(t *testing.T) {
	// A file whose mode forbids writing still opens for reading through
	// the surrogate (revised-mode per-file bits).
	fs, _ := rig(t, vice.Revised)
	if err := fs.WriteFile(nil, "/vice/ro", []byte("read me")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chmod(nil, "/vice/ro", 0o444); err != nil {
		t.Fatal(err)
	}
	pc := baseline.NewClient(surrogateConn{NewSurrogate(fs)})
	got, err := pc.ReadFile(nil, "/vice/ro")
	if err != nil || string(got) != "read me" {
		t.Fatalf("read-only open: %q %v", got, err)
	}
}
