package virtue

import (
	iofs "io/fs"
	"sort"
	"testing"
	"testing/fstest"

	"itcfs/internal/vice"
)

func buildTree(t *testing.T, fs *FS) {
	t.Helper()
	for _, d := range []string{"/vice/docs", "/vice/docs/sub"} {
		if err := fs.Mkdir(nil, d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	files := map[string]string{
		"/vice/docs/readme.txt":   "hello io/fs",
		"/vice/docs/sub/deep.txt": "deep contents",
		"/vice/top.txt":           "top",
	}
	for path, contents := range files {
		if err := fs.WriteFile(nil, path, []byte(contents)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestIOFSWalkAndRead(t *testing.T) {
	fs, _ := rig(t, vice.Revised)
	buildTree(t, fs)
	ifs := fs.IOFS(nil, "/vice")

	var visited []string
	err := iofs.WalkDir(ifs, ".", func(path string, d iofs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		visited = append(visited, path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(visited)
	want := []string{".", "docs", "docs/readme.txt", "docs/sub", "docs/sub/deep.txt", "top.txt"}
	if len(visited) != len(want) {
		t.Fatalf("visited %v", visited)
	}
	for i := range want {
		if visited[i] != want[i] {
			t.Fatalf("visited %v, want %v", visited, want)
		}
	}

	data, err := iofs.ReadFile(ifs, "docs/sub/deep.txt")
	if err != nil || string(data) != "deep contents" {
		t.Fatalf("ReadFile: %q %v", data, err)
	}
	matches, err := iofs.Glob(ifs, "docs/*.txt")
	if err != nil || len(matches) != 1 || matches[0] != "docs/readme.txt" {
		t.Fatalf("Glob: %v %v", matches, err)
	}
}

func TestIOFSConformance(t *testing.T) {
	fs, _ := rig(t, vice.Prototype)
	buildTree(t, fs)
	ifs := fs.IOFS(nil, "/vice")
	if err := fstest.TestFS(ifs, "docs/readme.txt", "docs/sub/deep.txt", "top.txt"); err != nil {
		t.Fatal(err)
	}
}

func TestIOFSInvalidPaths(t *testing.T) {
	fs, _ := rig(t, vice.Prototype)
	ifs := fs.IOFS(nil, "/vice")
	for _, bad := range []string{"/abs", "../escape", "a//b", ""} {
		if _, err := ifs.Open(bad); err == nil {
			t.Errorf("Open(%q) succeeded", bad)
		}
	}
	if _, err := ifs.Open("missing.txt"); err == nil {
		t.Error("Open of missing file succeeded")
	}
}

func TestIOFSStatInfo(t *testing.T) {
	fs, _ := rig(t, vice.Revised)
	buildTree(t, fs)
	ifs := fs.IOFS(nil, "/vice")
	f, err := ifs.Open("docs/readme.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if fi.Name() != "readme.txt" || fi.Size() != int64(len("hello io/fs")) || fi.IsDir() {
		t.Fatalf("info = %v %d %v", fi.Name(), fi.Size(), fi.IsDir())
	}
}
