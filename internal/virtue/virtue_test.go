package virtue

import (
	"errors"
	"fmt"
	"testing"

	"itcfs/internal/prot"
	"itcfs/internal/proto"
	"itcfs/internal/rpc"
	"itcfs/internal/secure"
	"itcfs/internal/sim"
	"itcfs/internal/unixfs"
	"itcfs/internal/venus"
	"itcfs/internal/vice"
	"itcfs/internal/volume"
)

// rig builds a single-server cell and a workstation FS wired directly to it
// (no network, like the venus unit tests).
func rig(t *testing.T, mode vice.Mode) (*FS, *vice.Server) {
	t.Helper()
	var clock int64
	clk := func() int64 { clock++; return clock }
	db := prot.NewDB()
	for _, m := range []prot.Mutation{
		{Kind: prot.MutAddUser, Name: "satya", Key: secure.DeriveKey("satya", "pw")},
		{Kind: prot.MutAddUser, Name: "operator", Key: secure.DeriveKey("operator", "pw")},
		{Kind: prot.MutAddGroup, Name: vice.AdminGroup},
		{Kind: prot.MutAddMember, Name: vice.AdminGroup, Member: "operator"},
	} {
		if err := db.Apply(m); err != nil {
			t.Fatal(err)
		}
	}
	nextVol := uint32(1)
	srv := vice.New(vice.Config{
		Name: "s0", Mode: mode, DB: db, Clock: clk,
		ProtAuthority: true,
		AllocVolID:    func() uint32 { nextVol++; return nextVol },
	})
	acl := prot.NewACL()
	acl.Grant(prot.AnyUser, prot.RightLookup|prot.RightRead)
	acl.Grant("satya", prot.RightsAll)
	acl.Grant(vice.AdminGroup, prot.RightsAll)
	root := volume.New(1, "root", acl, 0, "operator", clk)
	srv.AddVolume(root)
	srv.Loc().Install([]proto.LocEntry{{Prefix: "/", Volume: 1, Custodian: "s0"}}, nil)

	local := unixfs.New(clk)
	var v *venus.Venus
	v = venus.New(venus.Config{
		Mode: mode, Machine: "ws", Local: local, HomeServer: "s0",
		Connect: func(_ *sim.Proc, server string) (venus.Conn, error) {
			return directConn{srv: srv, user: v.User}, nil
		},
	})
	v.Login("satya")
	return New(local, v), srv
}

type directConn struct {
	srv  *vice.Server
	user func() string
}

func (c directConn) Call(p *sim.Proc, req rpc.Request) (rpc.Response, error) {
	return c.srv.Dispatcher().Dispatch(rpc.Ctx{User: c.user(), Proc: p}, req), nil
}

func TestLocalAndSharedSplit(t *testing.T) {
	fs, srv := rig(t, vice.Prototype)
	// A local file generates no Vice traffic.
	if err := fs.Local().MkdirAll("/tmp", 0o777, "root"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(nil, "/tmp/t", []byte("temp")); err != nil {
		t.Fatal(err)
	}
	if got := srv.Dispatcher(); got == nil {
		t.Fatal("nil dispatcher")
	}
	f, s, _ := srv.TrafficStats()
	if f != 0 || s != 0 {
		t.Fatalf("local write touched Vice: fetch=%d store=%d", f, s)
	}
	// A shared file round-trips through Vice.
	if err := fs.WriteFile(nil, "/vice/doc", []byte("shared")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile(nil, "/vice/doc")
	if err != nil || string(got) != "shared" {
		t.Fatalf("shared read: %q %v", got, err)
	}
	_, s, _ = srv.TrafficStats()
	if s == 0 {
		t.Fatal("shared write did not reach Vice")
	}
}

func TestStatDistinguishesSpaces(t *testing.T) {
	fs, _ := rig(t, vice.Prototype)
	fs.Local().MkdirAll("/tmp", 0o777, "root")
	fs.WriteFile(nil, "/tmp/l", []byte("ll"))
	fs.WriteFile(nil, "/vice/s", []byte("sss"))
	lst, err := fs.Stat(nil, "/tmp/l")
	if err != nil || lst.Shared || lst.Size != 2 {
		t.Fatalf("local stat: %+v %v", lst, err)
	}
	sst, err := fs.Stat(nil, "/vice/s")
	if err != nil || !sst.Shared || sst.Size != 3 {
		t.Fatalf("shared stat: %+v %v", sst, err)
	}
}

func TestSymlinkFromLocalIntoVice(t *testing.T) {
	for _, mode := range []vice.Mode{vice.Prototype, vice.Revised} {
		t.Run(mode.String(), func(t *testing.T) {
			fs, _ := rig(t, mode)
			if err := fs.Mkdir(nil, "/vice/unix", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := fs.Mkdir(nil, "/vice/unix/sun", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := fs.Mkdir(nil, "/vice/unix/sun/bin", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := fs.WriteFile(nil, "/vice/unix/sun/bin/cc", []byte("compiler")); err != nil {
				t.Fatal(err)
			}
			if err := fs.SetupStandardLinks("sun"); err != nil {
				t.Fatal(err)
			}
			got, err := fs.ReadFile(nil, "/bin/cc")
			if err != nil || string(got) != "compiler" {
				t.Fatalf("/bin/cc: %q %v", got, err)
			}
			// Listing /bin lists the shared directory.
			entries, err := fs.ReadDir(nil, "/bin")
			if err != nil || len(entries) != 1 || entries[0].Name != "cc" {
				t.Fatalf("ReadDir(/bin): %+v %v", entries, err)
			}
		})
	}
}

func TestSymlinkWithinVice(t *testing.T) {
	fs, _ := rig(t, vice.Prototype)
	fs.WriteFile(nil, "/vice/real", []byte("data"))
	if err := fs.Symlink(nil, "/vice/real", "/vice/alias"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile(nil, "/vice/alias")
	if err != nil || string(got) != "data" {
		t.Fatalf("alias: %q %v", got, err)
	}
}

func TestRenameWithinSpaces(t *testing.T) {
	fs, _ := rig(t, vice.Prototype)
	fs.Local().MkdirAll("/tmp", 0o777, "root")
	fs.WriteFile(nil, "/tmp/a", []byte("1"))
	if err := fs.Rename(nil, "/tmp/a", "/tmp/b"); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.ReadFile(nil, "/tmp/b"); string(got) != "1" {
		t.Fatalf("local rename: %q", got)
	}
	fs.WriteFile(nil, "/vice/x", []byte("2"))
	if err := fs.Rename(nil, "/vice/x", "/vice/y"); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.ReadFile(nil, "/vice/y"); string(got) != "2" {
		t.Fatalf("shared rename: %q", got)
	}
	// Cross-space rename is refused.
	if err := fs.Rename(nil, "/tmp/b", "/vice/b"); err == nil {
		t.Fatal("cross-space rename succeeded")
	}
}

func TestMkdirRemoveDirBothSpaces(t *testing.T) {
	fs, _ := rig(t, vice.Revised)
	if err := fs.Mkdir(nil, "/localdir", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir(nil, "/vice/shareddir", 0o755); err != nil {
		t.Fatal(err)
	}
	st, err := fs.Stat(nil, "/vice/shareddir")
	if err != nil || !st.IsDir || !st.Shared {
		t.Fatalf("shared dir stat: %+v %v", st, err)
	}
	if err := fs.RemoveDir(nil, "/vice/shareddir"); err != nil {
		t.Fatal(err)
	}
	if err := fs.RemoveDir(nil, "/localdir"); err != nil {
		t.Fatal(err)
	}
}

func TestMissingFileErrors(t *testing.T) {
	fs, _ := rig(t, vice.Prototype)
	if _, err := fs.Open(nil, "/vice/ghost", FlagRead); !errors.Is(err, proto.ErrNoEnt) {
		t.Fatalf("shared: %v", err)
	}
	if _, err := fs.Open(nil, "/ghost", FlagRead); !errors.Is(err, unixfs.ErrNotExist) {
		t.Fatalf("local: %v", err)
	}
}

func TestSequentialIOAndSeek(t *testing.T) {
	fs, _ := rig(t, vice.Prototype)
	fs.WriteFile(nil, "/vice/f", []byte("abcdefgh"))
	f, err := fs.Open(nil, "/vice/f", FlagRead)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close(nil)
	buf := make([]byte, 3)
	n, _ := f.Read(buf)
	if string(buf[:n]) != "abc" {
		t.Fatalf("read 1: %q", buf[:n])
	}
	if _, err := f.Seek(2, 0); err != nil {
		t.Fatal(err)
	}
	n, _ = f.Read(buf)
	if string(buf[:n]) != "cde" {
		t.Fatalf("read after seek: %q", buf[:n])
	}
}

func TestChmodOnSharedFile(t *testing.T) {
	fs, _ := rig(t, vice.Revised)
	fs.WriteFile(nil, "/vice/f", []byte("x"))
	if err := fs.Chmod(nil, "/vice/f", 0o444); err != nil {
		t.Fatal(err)
	}
	st, _ := fs.Stat(nil, "/vice/f")
	if st.Mode != 0o444 {
		t.Fatalf("mode = %04o", st.Mode)
	}
	// Per-file bits now forbid overwriting (revised mode).
	if err := fs.WriteFile(nil, "/vice/f", []byte("y")); !errors.Is(err, proto.ErrAccess) {
		t.Fatalf("write to 0444 file: %v", err)
	}
}

func TestManyFilesRoundTrip(t *testing.T) {
	fs, _ := rig(t, vice.Revised)
	if err := fs.Mkdir(nil, "/vice/dir", 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		path := fmt.Sprintf("/vice/dir/f%02d", i)
		if err := fs.WriteFile(nil, path, []byte(fmt.Sprintf("content-%d", i))); err != nil {
			t.Fatalf("write %s: %v", path, err)
		}
	}
	entries, err := fs.ReadDir(nil, "/vice/dir")
	if err != nil || len(entries) != 30 {
		t.Fatalf("dir has %d entries, %v", len(entries), err)
	}
	for i := 0; i < 30; i++ {
		path := fmt.Sprintf("/vice/dir/f%02d", i)
		got, err := fs.ReadFile(nil, path)
		if err != nil || string(got) != fmt.Sprintf("content-%d", i) {
			t.Fatalf("read %s: %q %v", path, got, err)
		}
	}
}
