package virtue

import (
	"sync"

	"itcfs/internal/baseline"
	"itcfs/internal/proto"
	"itcfs/internal/rpc"
	"itcfs/internal/venus"
	"itcfs/internal/wire"
)

// Surrogate is the surrogate server of §3.3: it runs on a Virtue
// workstation and behaves as a single-site network file server for the
// workstation's file system. Low-function machines (the paper names IBM
// PCs and the Apple Macintosh) that cannot run Venus speak a simple
// open/read-page/write-page protocol to the surrogate — and are thereby
// "transparently accessing Vice files on account of a Virtue workstation's
// transparent Vice attachment."
//
// The protocol is the page protocol of internal/baseline, so any page
// client works against a surrogate unchanged; the difference is what backs
// it: the full workstation view, local files and the shared name space
// alike, with Venus caching doing its usual work underneath.
type Surrogate struct {
	fs   *FS
	disp *rpc.Server

	mu     sync.Mutex
	nextFD uint64 // guarded by mu
	// guarded by mu
	open map[uint64]*File // fd -> open workstation file

	opens, reads, writes int64 // guarded by mu
}

// NewSurrogate builds a surrogate server over the workstation view fs.
// Attach its Dispatcher to an rpc endpoint (simulated or TCP) reachable by
// the low-function clients.
func NewSurrogate(fs *FS) *Surrogate {
	s := &Surrogate{fs: fs, disp: rpc.NewServer(), open: make(map[uint64]*File)}
	s.disp.Handle(baseline.OpOpen, s.handleOpen)
	s.disp.Handle(baseline.OpRead, s.handleRead)
	s.disp.Handle(baseline.OpWrite, s.handleWrite)
	s.disp.Handle(baseline.OpClose, s.handleClose)
	s.disp.Handle(baseline.OpStat, s.handleStat)
	return s
}

// Dispatcher returns the handler set to bind to a transport.
func (s *Surrogate) Dispatcher() *rpc.Server { return s.disp }

// OpCounts reports opens, page reads and page writes served.
func (s *Surrogate) OpCounts() (opens, reads, writes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.opens, s.reads, s.writes
}

func (s *Surrogate) handleOpen(ctx rpc.Ctx, req rpc.Request) rpc.Response {
	d := wire.NewDecoder(req.Body)
	path := d.String()
	create := d.Bool()
	if d.Close() != nil {
		return rpc.Response{Code: proto.CodeBadRequest}
	}
	flags := venus.FlagRead | venus.FlagWrite
	if create {
		flags |= venus.FlagCreate
	}
	f, err := s.fs.Open(ctx.Proc, path, flags)
	if err != nil {
		// Retry read-only: the PC may be opening a file it cannot write
		// (a released binary, a file protected by mode bits).
		f, err = s.fs.Open(ctx.Proc, path, venus.FlagRead)
		if err != nil {
			return rpc.Response{Code: proto.ErrToCode(err), Body: []byte(err.Error())}
		}
	}
	st, err := s.fs.Stat(ctx.Proc, path)
	if err != nil {
		f.Close(ctx.Proc)
		return rpc.Response{Code: proto.ErrToCode(err), Body: []byte(err.Error())}
	}
	s.mu.Lock()
	s.nextFD++
	fd := s.nextFD
	s.open[fd] = f
	s.opens++
	s.mu.Unlock()
	var e wire.Encoder
	e.U64(fd)
	e.I64(st.Size)
	return rpc.Response{Body: append([]byte(nil), e.Buf()...)}
}

func (s *Surrogate) file(fd uint64) (*File, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.open[fd]
	return f, ok
}

func (s *Surrogate) handleRead(ctx rpc.Ctx, req rpc.Request) rpc.Response {
	d := wire.NewDecoder(req.Body)
	fd := d.U64()
	off := d.I64()
	n := d.Int()
	if d.Close() != nil || n <= 0 || n > baseline.PageSize {
		return rpc.Response{Code: proto.CodeBadRequest}
	}
	f, ok := s.file(fd)
	if !ok {
		return rpc.Response{Code: proto.CodeStale}
	}
	buf := make([]byte, n)
	got, err := f.ReadAt(buf, off)
	if err != nil {
		return rpc.Response{Code: proto.ErrToCode(err), Body: []byte(err.Error())}
	}
	s.mu.Lock()
	s.reads++
	s.mu.Unlock()
	return rpc.Response{Bulk: buf[:got]}
}

func (s *Surrogate) handleWrite(ctx rpc.Ctx, req rpc.Request) rpc.Response {
	d := wire.NewDecoder(req.Body)
	fd := d.U64()
	off := d.I64()
	if d.Close() != nil || len(req.Bulk) > baseline.PageSize {
		return rpc.Response{Code: proto.CodeBadRequest}
	}
	f, ok := s.file(fd)
	if !ok {
		return rpc.Response{Code: proto.CodeStale}
	}
	if _, err := f.WriteAt(req.Bulk, off); err != nil {
		return rpc.Response{Code: proto.ErrToCode(err), Body: []byte(err.Error())}
	}
	s.mu.Lock()
	s.writes++
	s.mu.Unlock()
	return rpc.Response{}
}

// handleClose closes the workstation file; for a modified shared file this
// is the moment Venus stores it back to its custodian — the PC's writes
// reach Vice with Virtue's usual write-on-close semantics.
func (s *Surrogate) handleClose(ctx rpc.Ctx, req rpc.Request) rpc.Response {
	d := wire.NewDecoder(req.Body)
	fd := d.U64()
	if d.Close() != nil {
		return rpc.Response{Code: proto.CodeBadRequest}
	}
	s.mu.Lock()
	f, ok := s.open[fd]
	delete(s.open, fd)
	s.mu.Unlock()
	if !ok {
		return rpc.Response{Code: proto.CodeStale}
	}
	if err := f.Close(ctx.Proc); err != nil {
		return rpc.Response{Code: proto.ErrToCode(err), Body: []byte(err.Error())}
	}
	return rpc.Response{}
}

func (s *Surrogate) handleStat(ctx rpc.Ctx, req rpc.Request) rpc.Response {
	d := wire.NewDecoder(req.Body)
	path := d.String()
	if d.Close() != nil {
		return rpc.Response{Code: proto.CodeBadRequest}
	}
	st, err := s.fs.Stat(ctx.Proc, path)
	if err != nil {
		return rpc.Response{Code: proto.ErrToCode(err), Body: []byte(err.Error())}
	}
	var e wire.Encoder
	e.I64(st.Size)
	e.U64(st.Version)
	return rpc.Response{Body: append([]byte(nil), e.Buf()...)}
}
