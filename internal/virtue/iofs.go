package virtue

import (
	"io"
	iofs "io/fs"
	"time"

	"itcfs/internal/sim"
	"itcfs/internal/unixfs"
	"itcfs/internal/venus"
)

// IOFS adapts the workstation view to Go's io/fs.FS, so standard tooling —
// fs.WalkDir, fs.ReadFile, fs.Glob — operates over the combined local and
// shared name spaces. The adapter is bound to a simulated process (nil
// outside the simulator) and rooted at a workstation path: IOFS(p, "/vice")
// walks the shared space.
func (fs *FS) IOFS(p *sim.Proc, root string) iofs.FS {
	return &ioFS{fs: fs, p: p, root: unixfs.Clean(root)}
}

type ioFS struct {
	fs   *FS
	p    *sim.Proc
	root string
}

func (f *ioFS) abs(name string) (string, error) {
	if !iofs.ValidPath(name) {
		return "", &iofs.PathError{Op: "open", Path: name, Err: iofs.ErrInvalid}
	}
	if name == "." {
		return f.root, nil
	}
	return unixfs.Join(f.root, name), nil
}

// Open implements fs.FS.
func (f *ioFS) Open(name string) (iofs.File, error) {
	path, err := f.abs(name)
	if err != nil {
		return nil, err
	}
	st, err := f.fs.Stat(f.p, path)
	if err != nil {
		return nil, &iofs.PathError{Op: "open", Path: name, Err: mapErr(err)}
	}
	if st.IsDir {
		return &ioDir{fs: f, name: name, path: path, info: st}, nil
	}
	file, err := f.fs.Open(f.p, path, venus.FlagRead)
	if err != nil {
		return nil, &iofs.PathError{Op: "open", Path: name, Err: mapErr(err)}
	}
	return &ioFile{fs: f, f: file, name: name, info: st}, nil
}

// ReadDir implements fs.ReadDirFS.
func (f *ioFS) ReadDir(name string) ([]iofs.DirEntry, error) {
	path, err := f.abs(name)
	if err != nil {
		return nil, err
	}
	entries, err := f.fs.ReadDir(f.p, path)
	if err != nil {
		return nil, &iofs.PathError{Op: "readdir", Path: name, Err: mapErr(err)}
	}
	out := make([]iofs.DirEntry, len(entries))
	for i, e := range entries {
		out[i] = &ioDirEntry{fs: f, parent: path, e: e}
	}
	return out, nil
}

func mapErr(err error) error {
	switch {
	case err == nil:
		return nil
	}
	return err
}

// ioFile is an open regular file.
type ioFile struct {
	fs   *ioFS
	f    *File
	name string
	info Stat
}

func (x *ioFile) Stat() (iofs.FileInfo, error) { return fileInfo{x.info}, nil }
func (x *ioFile) Read(b []byte) (int, error) {
	n, err := x.f.Read(b)
	if err != nil {
		return n, err
	}
	if n == 0 && len(b) > 0 {
		return 0, io.EOF
	}
	return n, nil
}
func (x *ioFile) Close() error { return x.f.Close(x.fs.p) }

// ioDir is an open directory.
type ioDir struct {
	fs      *ioFS
	name    string
	path    string
	info    Stat
	entries []iofs.DirEntry
	off     int
}

func (d *ioDir) Stat() (iofs.FileInfo, error) { return fileInfo{d.info}, nil }
func (d *ioDir) Read([]byte) (int, error) {
	return 0, &iofs.PathError{Op: "read", Path: d.name, Err: iofs.ErrInvalid}
}
func (d *ioDir) Close() error { return nil }

// ReadDir implements fs.ReadDirFile.
func (d *ioDir) ReadDir(n int) ([]iofs.DirEntry, error) {
	if d.entries == nil {
		entries, err := d.fs.fs.ReadDir(d.fs.p, d.path)
		if err != nil {
			return nil, err
		}
		d.entries = make([]iofs.DirEntry, len(entries))
		for i, e := range entries {
			d.entries[i] = &ioDirEntry{fs: d.fs, parent: d.path, e: e}
		}
	}
	if n <= 0 {
		out := d.entries[d.off:]
		d.off = len(d.entries)
		return out, nil
	}
	if d.off >= len(d.entries) {
		return nil, io.EOF
	}
	end := d.off + n
	if end > len(d.entries) {
		end = len(d.entries)
	}
	out := d.entries[d.off:end]
	d.off = end
	return out, nil
}

// ioDirEntry is one listing entry, stat-ed lazily.
type ioDirEntry struct {
	fs     *ioFS
	parent string
	e      DirEntry
}

func (de *ioDirEntry) Name() string { return de.e.Name }
func (de *ioDirEntry) IsDir() bool  { return de.e.IsDir }
func (de *ioDirEntry) Type() iofs.FileMode {
	if de.e.IsDir {
		return iofs.ModeDir
	}
	return 0
}
func (de *ioDirEntry) Info() (iofs.FileInfo, error) {
	st, err := de.fs.fs.Stat(de.fs.p, unixfs.Join(de.parent, de.e.Name))
	if err != nil {
		return nil, err
	}
	return fileInfo{st}, nil
}

// fileInfo adapts virtue.Stat to fs.FileInfo.
type fileInfo struct{ st Stat }

func (fi fileInfo) Name() string { return fi.st.Name }
func (fi fileInfo) Size() int64  { return fi.st.Size }
func (fi fileInfo) Mode() iofs.FileMode {
	m := iofs.FileMode(fi.st.Mode & 0o777)
	if fi.st.IsDir {
		m |= iofs.ModeDir
	}
	return m
}
func (fi fileInfo) ModTime() time.Time { return time.Time{} }
func (fi fileInfo) IsDir() bool        { return fi.st.IsDir }
func (fi fileInfo) Sys() interface{}   { return nil }
