// Package prot implements the protection domain of Section 3.4: Users and
// Groups (groups may recursively contain other groups, as in Grapevine), the
// Current Protection Subdomain (CPS) of a user, and access lists carrying
// both positive and Negative rights. Negative rights are the paper's rapid
// revocation mechanism: revoking via group membership requires a slow
// replicated-database update, while a negative entry on a single object's
// access list takes effect immediately.
//
// The protection database also stores each user's authentication key (the
// derived password), since the paper co-locates authentication state with
// the replicated protection database at every cluster server.
package prot

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"itcfs/internal/secure"
	"itcfs/internal/wire"
)

// Right is a bitmask of access rights on a protected object. The set
// mirrors the operations the paper protects per directory: fetching and
// storing files, creating and deleting directory entries, listing status,
// locking, and modifying the access list itself.
type Right uint8

// Rights, one bit each. Letter codes follow the conventional short form.
const (
	RightLookup Right = 1 << iota // l: list directory, examine status
	RightRead                     // r: fetch files
	RightWrite                    // w: store (overwrite) files
	RightInsert                   // i: create new directory entries
	RightDelete                   // d: delete directory entries
	RightLock                     // k: set advisory locks
	RightAdmin                    // a: modify the access list

	// RightsAll grants everything.
	RightsAll Right = 1<<7 - 1
	// RightsNone grants nothing.
	RightsNone Right = 0
)

var rightLetters = []struct {
	bit    Right
	letter byte
}{
	{RightLookup, 'l'},
	{RightRead, 'r'},
	{RightWrite, 'w'},
	{RightInsert, 'i'},
	{RightDelete, 'd'},
	{RightLock, 'k'},
	{RightAdmin, 'a'},
}

// String renders rights in the conventional "lrwidka" letter form.
func (r Right) String() string {
	if r == 0 {
		return "none"
	}
	var b strings.Builder
	for _, rl := range rightLetters {
		if r&rl.bit != 0 {
			b.WriteByte(rl.letter)
		}
	}
	return b.String()
}

// ParseRights parses the letter form ("rl", "all", "none").
func ParseRights(s string) (Right, error) {
	switch s {
	case "all":
		return RightsAll, nil
	case "none", "":
		return RightsNone, nil
	}
	var r Right
letters:
	for i := 0; i < len(s); i++ {
		for _, rl := range rightLetters {
			if s[i] == rl.letter {
				r |= rl.bit
				continue letters
			}
		}
		return 0, fmt.Errorf("prot: unknown right %q", s[i])
	}
	return r, nil
}

// AnyUser is the distinguished group every principal implicitly belongs to.
// Granting it rights makes an object public.
const AnyUser = "System:AnyUser"

// Errors surfaced by database mutation.
var (
	ErrNoSuchUser   = errors.New("prot: no such user")
	ErrNoSuchGroup  = errors.New("prot: no such group")
	ErrExists       = errors.New("prot: name already exists")
	ErrInUse        = errors.New("prot: group still has members or uses")
	ErrBadName      = errors.New("prot: invalid name")
	ErrNotAuthority = errors.New("prot: this replica is not the protection server")
)

// ACL is an access list: positive entries grant, negative entries revoke.
// The effective rights of a user are the union of positive rights over the
// user's CPS minus the union of negative rights over the CPS (§3.4).
type ACL struct {
	Positive map[string]Right
	Negative map[string]Right
}

// NewACL returns an empty access list.
func NewACL() ACL {
	return ACL{Positive: make(map[string]Right), Negative: make(map[string]Right)}
}

// Clone deep-copies the ACL.
func (a ACL) Clone() ACL {
	c := NewACL()
	for k, v := range a.Positive {
		c.Positive[k] = v
	}
	for k, v := range a.Negative {
		c.Negative[k] = v
	}
	return c
}

// Grant sets the positive rights for name (replacing previous rights).
// Zero rights delete the entry.
func (a ACL) Grant(name string, r Right) {
	if r == 0 {
		delete(a.Positive, name)
	} else {
		a.Positive[name] = r
	}
}

// Deny sets the negative rights for name. Zero rights delete the entry.
func (a ACL) Deny(name string, r Right) {
	if r == 0 {
		delete(a.Negative, name)
	} else {
		a.Negative[name] = r
	}
}

// Effective computes the rights a CPS holds under this ACL.
func (a ACL) Effective(cps []string) Right {
	var plus, minus Right
	for _, name := range cps {
		plus |= a.Positive[name]
		minus |= a.Negative[name]
	}
	return plus &^ minus
}

// Check reports whether the CPS holds all rights in want.
func (a ACL) Check(cps []string, want Right) bool {
	return a.Effective(cps)&want == want
}

// Encode marshals the ACL (entries in sorted order, so encodings are
// deterministic and comparable).
func (a ACL) Encode(e *wire.Encoder) {
	encodeSide := func(m map[string]Right) {
		names := make([]string, 0, len(m))
		for n := range m {
			names = append(names, n)
		}
		sort.Strings(names)
		e.U32(uint32(len(names)))
		for _, n := range names {
			e.String(n)
			e.U8(uint8(m[n]))
		}
	}
	encodeSide(a.Positive)
	encodeSide(a.Negative)
}

// DecodeACL unmarshals an ACL written by Encode.
func DecodeACL(d *wire.Decoder) ACL {
	a := NewACL()
	for side := 0; side < 2; side++ {
		n := d.U32()
		m := a.Positive
		if side == 1 {
			m = a.Negative
		}
		for i := uint32(0); i < n && d.Err() == nil; i++ {
			name := d.String()
			m[name] = Right(d.U8())
		}
	}
	return a
}

// User is one principal.
type User struct {
	Name string
	Key  secure.Key // derived password, for the authentication handshake
}

// Group is a named set of users and other groups.
type Group struct {
	Name    string
	Owner   string
	Members map[string]bool // user or group names
}

// DB is one replica of the protection database. It answers CPS and key
// lookups locally (every cluster server holds a full copy, §3.4) and applies
// mutations shipped from the protection server.
type DB struct {
	mu      sync.RWMutex
	users   map[string]*User  // guarded by mu
	groups  map[string]*Group // guarded by mu
	version uint64            // guarded by mu
	// cpsCache memoizes CPS per user, dropped whole on any mutation.
	// guarded by mu
	cpsCache map[string][]string
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{users: make(map[string]*User), groups: make(map[string]*Group)}
}

// Version returns the mutation counter; replicas at equal versions that
// applied the same mutation stream are identical.
func (db *DB) Version() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.version
}

// LookupKey implements secure.KeyLookup against the replica.
func (db *DB) LookupKey(user string) (secure.Key, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	u, ok := db.users[user]
	if !ok {
		return secure.Key{}, false
	}
	return u.Key, true
}

// HasUser reports whether user exists.
func (db *DB) HasUser(user string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.users[user]
	return ok
}

// Users returns all user names, sorted.
func (db *DB) Users() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.users))
	for n := range db.users {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Groups returns all group names, sorted.
func (db *DB) Groups() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.groups))
	for n := range db.groups {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Members returns the direct members of a group, sorted.
func (db *DB) Members(group string) ([]string, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	g, ok := db.groups[group]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchGroup, group)
	}
	out := make([]string, 0, len(g.Members))
	for m := range g.Members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out, nil
}

// CPS computes the Current Protection Subdomain of a user: the user itself,
// AnyUser, and every group reachable by (recursive) membership. The result
// is sorted. It is memoized until the next mutation — access checks run it
// on every protected server operation — so callers must not modify the
// returned slice.
func (db *DB) CPS(user string) []string {
	db.mu.RLock()
	cps, ok := db.cpsCache[user]
	db.mu.RUnlock()
	if ok {
		return cps
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if cps, ok := db.cpsCache[user]; ok {
		return cps
	}
	cps = db.cpsLocked(user)
	if db.cpsCache == nil {
		db.cpsCache = make(map[string][]string)
	}
	db.cpsCache[user] = cps
	return cps
}

//itcvet:holds mu
func (db *DB) cpsLocked(user string) []string {
	seen := map[string]bool{user: true, AnyUser: true}
	// Fixed point: a group is in the CPS if any of its members is.
	for changed := true; changed; {
		changed = false
		for gname, g := range db.groups {
			if seen[gname] {
				continue
			}
			for m := range g.Members {
				if seen[m] {
					seen[gname] = true
					changed = true
					break
				}
			}
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// MutKind enumerates protection-database mutations.
type MutKind uint8

// Mutation kinds.
const (
	MutAddUser MutKind = iota + 1
	MutRemoveUser
	MutSetKey
	MutAddGroup
	MutRemoveGroup
	MutAddMember
	MutRemoveMember
)

// Mutation is one update to the protection database, shipped by the
// protection server to every replica.
type Mutation struct {
	Kind   MutKind
	Name   string     // user or group affected
	Member string     // for AddMember/RemoveMember
	Key    secure.Key // for AddUser/SetKey
	Owner  string     // for AddGroup
}

// Encode marshals the mutation.
func (m Mutation) Encode(e *wire.Encoder) {
	e.U8(uint8(m.Kind))
	e.String(m.Name)
	e.String(m.Member)
	e.Raw(m.Key[:])
	e.String(m.Owner)
}

// DecodeMutation unmarshals a mutation.
func DecodeMutation(d *wire.Decoder) Mutation {
	var m Mutation
	m.Kind = MutKind(d.U8())
	m.Name = d.String()
	m.Member = d.String()
	for i := range m.Key {
		m.Key[i] = d.U8()
	}
	m.Owner = d.String()
	return m
}

// Apply performs one mutation on the replica.
func (db *DB) Apply(m Mutation) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.apply(m); err != nil {
		return err
	}
	db.version++
	db.cpsCache = nil
	return nil
}

func validName(n string) bool {
	return n != "" && !strings.ContainsAny(n, " /\x00") && n != AnyUser
}

// apply performs one mutation against the in-memory state. Every caller
// (Mutate, Replay) takes the write lock first.
//
//itcvet:holds mu
func (db *DB) apply(m Mutation) error {
	switch m.Kind {
	case MutAddUser:
		if !validName(m.Name) {
			return fmt.Errorf("%w: %q", ErrBadName, m.Name)
		}
		if _, ok := db.users[m.Name]; ok {
			return fmt.Errorf("%w: user %s", ErrExists, m.Name)
		}
		if _, ok := db.groups[m.Name]; ok {
			return fmt.Errorf("%w: %s is a group", ErrExists, m.Name)
		}
		db.users[m.Name] = &User{Name: m.Name, Key: m.Key}
	case MutRemoveUser:
		if _, ok := db.users[m.Name]; !ok {
			return fmt.Errorf("%w: %s", ErrNoSuchUser, m.Name)
		}
		delete(db.users, m.Name)
		for _, g := range db.groups {
			delete(g.Members, m.Name)
		}
	case MutSetKey:
		u, ok := db.users[m.Name]
		if !ok {
			return fmt.Errorf("%w: %s", ErrNoSuchUser, m.Name)
		}
		u.Key = m.Key
	case MutAddGroup:
		if !validName(m.Name) {
			return fmt.Errorf("%w: %q", ErrBadName, m.Name)
		}
		if _, ok := db.groups[m.Name]; ok {
			return fmt.Errorf("%w: group %s", ErrExists, m.Name)
		}
		if _, ok := db.users[m.Name]; ok {
			return fmt.Errorf("%w: %s is a user", ErrExists, m.Name)
		}
		db.groups[m.Name] = &Group{Name: m.Name, Owner: m.Owner, Members: make(map[string]bool)}
	case MutRemoveGroup:
		g, ok := db.groups[m.Name]
		if !ok {
			return fmt.Errorf("%w: %s", ErrNoSuchGroup, m.Name)
		}
		if len(g.Members) != 0 {
			return fmt.Errorf("%w: %s", ErrInUse, m.Name)
		}
		delete(db.groups, m.Name)
		for _, other := range db.groups {
			delete(other.Members, m.Name)
		}
	case MutAddMember:
		g, ok := db.groups[m.Name]
		if !ok {
			return fmt.Errorf("%w: %s", ErrNoSuchGroup, m.Name)
		}
		_, isUser := db.users[m.Member]
		_, isGroup := db.groups[m.Member]
		if !isUser && !isGroup {
			return fmt.Errorf("%w: member %s", ErrNoSuchUser, m.Member)
		}
		if isGroup && db.wouldCycle(m.Name, m.Member) {
			return fmt.Errorf("prot: adding %s to %s would create a membership cycle", m.Member, m.Name)
		}
		g.Members[m.Member] = true
	case MutRemoveMember:
		g, ok := db.groups[m.Name]
		if !ok {
			return fmt.Errorf("%w: %s", ErrNoSuchGroup, m.Name)
		}
		if !g.Members[m.Member] {
			return fmt.Errorf("%w: %s not in %s", ErrNoSuchUser, m.Member, m.Name)
		}
		delete(g.Members, m.Member)
	default:
		return fmt.Errorf("prot: unknown mutation kind %d", m.Kind)
	}
	return nil
}

// wouldCycle reports whether group contains candidate transitively already
// in the reverse direction: adding candidate to group creates a cycle iff
// group is reachable from candidate. Called from apply, under the lock.
//
//itcvet:holds mu
func (db *DB) wouldCycle(group, candidate string) bool {
	if group == candidate {
		return true
	}
	seen := map[string]bool{}
	var reach func(g string) bool
	reach = func(g string) bool {
		if g == group {
			return true
		}
		if seen[g] {
			return false
		}
		seen[g] = true
		grp, ok := db.groups[g]
		if !ok {
			return false
		}
		for m := range grp.Members {
			if reach(m) {
				return true
			}
		}
		return false
	}
	return reach(candidate)
}

// Snapshot serializes the full database for replica initialization.
func (db *DB) Snapshot() []byte {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var e wire.Encoder
	e.U64(db.version)
	users := make([]string, 0, len(db.users))
	for n := range db.users {
		users = append(users, n)
	}
	sort.Strings(users)
	e.U32(uint32(len(users)))
	for _, n := range users {
		u := db.users[n]
		e.String(u.Name)
		e.Raw(u.Key[:])
	}
	groups := make([]string, 0, len(db.groups))
	for n := range db.groups {
		groups = append(groups, n)
	}
	sort.Strings(groups)
	e.U32(uint32(len(groups)))
	for _, n := range groups {
		g := db.groups[n]
		e.String(g.Name)
		e.String(g.Owner)
		members := make([]string, 0, len(g.Members))
		for m := range g.Members {
			members = append(members, m)
		}
		sort.Strings(members)
		e.U32(uint32(len(members)))
		for _, m := range members {
			e.String(m)
		}
	}
	return append([]byte(nil), e.Buf()...)
}

// LoadSnapshot replaces the replica's contents with a snapshot.
func (db *DB) LoadSnapshot(data []byte) error {
	d := wire.NewDecoder(data)
	version := d.U64()
	users := make(map[string]*User)
	nu := d.U32()
	for i := uint32(0); i < nu && d.Err() == nil; i++ {
		u := &User{Name: d.String()}
		for j := range u.Key {
			u.Key[j] = d.U8()
		}
		users[u.Name] = u
	}
	groups := make(map[string]*Group)
	ng := d.U32()
	for i := uint32(0); i < ng && d.Err() == nil; i++ {
		g := &Group{Name: d.String(), Owner: d.String(), Members: make(map[string]bool)}
		nm := d.U32()
		for j := uint32(0); j < nm && d.Err() == nil; j++ {
			g.Members[d.String()] = true
		}
		groups[g.Name] = g
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("prot: corrupt snapshot: %w", err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.version = version
	db.users = users
	db.groups = groups
	db.cpsCache = nil
	return nil
}
