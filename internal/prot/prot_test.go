package prot

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"itcfs/internal/secure"
	"itcfs/internal/wire"
)

func mustApply(t *testing.T, db *DB, m Mutation) {
	t.Helper()
	if err := db.Apply(m); err != nil {
		t.Fatalf("Apply(%+v): %v", m, err)
	}
}

func addUser(t *testing.T, db *DB, name string) {
	t.Helper()
	mustApply(t, db, Mutation{Kind: MutAddUser, Name: name, Key: secure.DeriveKey(name, "pw")})
}

func addGroup(t *testing.T, db *DB, name, owner string) {
	t.Helper()
	mustApply(t, db, Mutation{Kind: MutAddGroup, Name: name, Owner: owner})
}

func addMember(t *testing.T, db *DB, group, member string) {
	t.Helper()
	mustApply(t, db, Mutation{Kind: MutAddMember, Name: group, Member: member})
}

func TestRightsStringAndParse(t *testing.T) {
	cases := []struct {
		r Right
		s string
	}{
		{RightRead | RightLookup, "lr"},
		{RightsAll, "lrwidka"},
		{RightsNone, "none"},
		{RightAdmin, "a"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.s {
			t.Errorf("String(%d) = %q, want %q", c.r, got, c.s)
		}
		parsed, err := ParseRights(c.s)
		if err != nil || parsed != c.r {
			t.Errorf("ParseRights(%q) = %v, %v", c.s, parsed, err)
		}
	}
	if _, err := ParseRights("rz"); err == nil {
		t.Error("ParseRights accepted unknown letter")
	}
	if r, err := ParseRights("all"); err != nil || r != RightsAll {
		t.Error("ParseRights(all) failed")
	}
}

func TestCPSDirectAndRecursive(t *testing.T) {
	db := NewDB()
	addUser(t, db, "satya")
	addGroup(t, db, "faculty", "admin")
	addGroup(t, db, "cs-dept", "admin")
	addGroup(t, db, "campus", "admin")
	addMember(t, db, "faculty", "satya")
	addMember(t, db, "cs-dept", "faculty") // recursive: faculty ⊂ cs-dept
	addMember(t, db, "campus", "cs-dept")  // and cs-dept ⊂ campus

	cps := db.CPS("satya")
	want := map[string]bool{"satya": true, AnyUser: true, "faculty": true, "cs-dept": true, "campus": true}
	if len(cps) != len(want) {
		t.Fatalf("CPS = %v", cps)
	}
	for _, n := range cps {
		if !want[n] {
			t.Fatalf("unexpected CPS member %q in %v", n, cps)
		}
	}
	// An unrelated user gets only itself and AnyUser.
	addUser(t, db, "visitor")
	cps = db.CPS("visitor")
	if len(cps) != 2 {
		t.Fatalf("visitor CPS = %v", cps)
	}
}

func TestACLEffectiveUnionMinusNegative(t *testing.T) {
	db := NewDB()
	addUser(t, db, "u")
	addGroup(t, db, "g1", "")
	addGroup(t, db, "g2", "")
	addMember(t, db, "g1", "u")
	addMember(t, db, "g2", "u")

	acl := NewACL()
	acl.Grant("g1", RightRead|RightLookup)
	acl.Grant("g2", RightWrite)
	cps := db.CPS("u")
	if got := acl.Effective(cps); got != RightRead|RightLookup|RightWrite {
		t.Fatalf("Effective = %v", got)
	}
	// Negative rights subtract from the union (§3.4).
	acl.Deny("u", RightWrite)
	if got := acl.Effective(cps); got != RightRead|RightLookup {
		t.Fatalf("after Deny, Effective = %v", got)
	}
	if acl.Check(cps, RightWrite) {
		t.Fatal("Check passed despite negative right")
	}
	if !acl.Check(cps, RightRead|RightLookup) {
		t.Fatal("Check failed for granted rights")
	}
}

func TestNegativeRightsRapidRevocation(t *testing.T) {
	// The scenario of §3.4: a user reachable through many groups is locked
	// out of one object by a single negative entry, without touching the
	// group database.
	db := NewDB()
	addUser(t, db, "mallory")
	for i := 0; i < 10; i++ {
		g := fmt.Sprintf("g%d", i)
		addGroup(t, db, g, "")
		addMember(t, db, g, "mallory")
	}
	acl := NewACL()
	for i := 0; i < 10; i++ {
		acl.Grant(fmt.Sprintf("g%d", i), RightsAll)
	}
	cps := db.CPS("mallory")
	if !acl.Check(cps, RightsAll) {
		t.Fatal("setup: mallory should have all rights")
	}
	versionBefore := db.Version()
	acl.Deny("mallory", RightsAll)
	if acl.Effective(cps) != RightsNone {
		t.Fatal("negative entry did not revoke")
	}
	if db.Version() != versionBefore {
		t.Fatal("revocation touched the replicated database")
	}
}

func TestAnyUserGrantsPublicAccess(t *testing.T) {
	db := NewDB()
	addUser(t, db, "anyone")
	acl := NewACL()
	acl.Grant(AnyUser, RightLookup|RightRead)
	if !acl.Check(db.CPS("anyone"), RightRead) {
		t.Fatal("AnyUser grant not effective")
	}
}

func TestACLEncodeDecode(t *testing.T) {
	acl := NewACL()
	acl.Grant("satya", RightsAll)
	acl.Grant("faculty", RightRead|RightLookup)
	acl.Deny("mallory", RightsAll)
	var e wire.Encoder
	acl.Encode(&e)
	d := wire.NewDecoder(e.Buf())
	got := DecodeACL(d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if got.Positive["satya"] != RightsAll || got.Positive["faculty"] != RightRead|RightLookup {
		t.Fatalf("positive = %v", got.Positive)
	}
	if got.Negative["mallory"] != RightsAll {
		t.Fatalf("negative = %v", got.Negative)
	}
}

func TestACLGrantZeroRemoves(t *testing.T) {
	acl := NewACL()
	acl.Grant("u", RightRead)
	acl.Grant("u", 0)
	if len(acl.Positive) != 0 {
		t.Fatal("zero grant did not remove entry")
	}
	acl.Deny("u", RightRead)
	acl.Deny("u", 0)
	if len(acl.Negative) != 0 {
		t.Fatal("zero deny did not remove entry")
	}
}

func TestMutationErrors(t *testing.T) {
	db := NewDB()
	addUser(t, db, "u")
	addGroup(t, db, "g", "u")

	cases := []struct {
		m    Mutation
		want error
	}{
		{Mutation{Kind: MutAddUser, Name: "u"}, ErrExists},
		{Mutation{Kind: MutAddUser, Name: "g"}, ErrExists},
		{Mutation{Kind: MutAddUser, Name: "bad name"}, ErrBadName},
		{Mutation{Kind: MutAddUser, Name: AnyUser}, ErrBadName},
		{Mutation{Kind: MutRemoveUser, Name: "ghost"}, ErrNoSuchUser},
		{Mutation{Kind: MutSetKey, Name: "ghost"}, ErrNoSuchUser},
		{Mutation{Kind: MutAddGroup, Name: "g"}, ErrExists},
		{Mutation{Kind: MutAddGroup, Name: "u"}, ErrExists},
		{Mutation{Kind: MutRemoveGroup, Name: "ghost"}, ErrNoSuchGroup},
		{Mutation{Kind: MutAddMember, Name: "ghost", Member: "u"}, ErrNoSuchGroup},
		{Mutation{Kind: MutAddMember, Name: "g", Member: "ghost"}, ErrNoSuchUser},
		{Mutation{Kind: MutRemoveMember, Name: "g", Member: "u"}, ErrNoSuchUser},
	}
	for _, c := range cases {
		if err := db.Apply(c.m); !errors.Is(err, c.want) {
			t.Errorf("Apply(%+v) = %v, want %v", c.m, err, c.want)
		}
	}
}

func TestRemoveGroupRequiresEmpty(t *testing.T) {
	db := NewDB()
	addUser(t, db, "u")
	addGroup(t, db, "g", "")
	addMember(t, db, "g", "u")
	if err := db.Apply(Mutation{Kind: MutRemoveGroup, Name: "g"}); !errors.Is(err, ErrInUse) {
		t.Fatalf("err = %v, want ErrInUse", err)
	}
	mustApply(t, db, Mutation{Kind: MutRemoveMember, Name: "g", Member: "u"})
	mustApply(t, db, Mutation{Kind: MutRemoveGroup, Name: "g"})
}

func TestRemoveUserScrubsMemberships(t *testing.T) {
	db := NewDB()
	addUser(t, db, "u")
	addGroup(t, db, "g", "")
	addMember(t, db, "g", "u")
	mustApply(t, db, Mutation{Kind: MutRemoveUser, Name: "u"})
	members, err := db.Members("g")
	if err != nil || len(members) != 0 {
		t.Fatalf("members = %v, %v", members, err)
	}
}

func TestMembershipCycleRejected(t *testing.T) {
	db := NewDB()
	addGroup(t, db, "a", "")
	addGroup(t, db, "b", "")
	addGroup(t, db, "c", "")
	addMember(t, db, "a", "b") // b ∈ a
	addMember(t, db, "b", "c") // c ∈ b
	if err := db.Apply(Mutation{Kind: MutAddMember, Name: "c", Member: "a"}); err == nil {
		t.Fatal("cycle a∈c accepted")
	}
	if err := db.Apply(Mutation{Kind: MutAddMember, Name: "a", Member: "a"}); err == nil {
		t.Fatal("self-membership accepted")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	db := NewDB()
	addUser(t, db, "satya")
	addUser(t, db, "howard")
	addGroup(t, db, "itc", "satya")
	addMember(t, db, "itc", "satya")
	addMember(t, db, "itc", "howard")

	replica := NewDB()
	if err := replica.LoadSnapshot(db.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if replica.Version() != db.Version() {
		t.Fatalf("version %d != %d", replica.Version(), db.Version())
	}
	if fmt.Sprint(replica.Users()) != fmt.Sprint(db.Users()) {
		t.Fatalf("users differ: %v vs %v", replica.Users(), db.Users())
	}
	if fmt.Sprint(replica.CPS("satya")) != fmt.Sprint(db.CPS("satya")) {
		t.Fatal("CPS differs on replica")
	}
	k1, _ := db.LookupKey("satya")
	k2, ok := replica.LookupKey("satya")
	if !ok || k1 != k2 {
		t.Fatal("keys differ on replica")
	}
}

func TestLoadSnapshotRejectsGarbage(t *testing.T) {
	db := NewDB()
	if err := db.LoadSnapshot([]byte("not a snapshot")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

func TestMutationEncodeDecode(t *testing.T) {
	m := Mutation{Kind: MutAddUser, Name: "u", Member: "g", Key: secure.DeriveKey("u", "p"), Owner: "o"}
	var e wire.Encoder
	m.Encode(&e)
	d := wire.NewDecoder(e.Buf())
	got := DecodeMutation(d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("round trip: %+v != %+v", got, m)
	}
}

// Property: replicas that apply the same mutation stream converge to equal
// snapshots, regardless of starting from snapshot or from scratch.
func TestQuickReplicaConvergence(t *testing.T) {
	f := func(ops []struct {
		Kind  uint8
		A, B  uint8
		IsGrp bool
	}) bool {
		primary, replica := NewDB(), NewDB()
		for _, op := range ops {
			name := fmt.Sprintf("n%d", op.A%8)
			member := fmt.Sprintf("n%d", op.B%8)
			var m Mutation
			switch op.Kind % 5 {
			case 0:
				m = Mutation{Kind: MutAddUser, Name: name}
			case 1:
				m = Mutation{Kind: MutAddGroup, Name: "g" + name}
			case 2:
				m = Mutation{Kind: MutAddMember, Name: "g" + name, Member: member}
			case 3:
				m = Mutation{Kind: MutRemoveMember, Name: "g" + name, Member: member}
			case 4:
				m = Mutation{Kind: MutRemoveUser, Name: name}
			}
			err1 := primary.Apply(m)
			err2 := replica.Apply(m)
			if (err1 == nil) != (err2 == nil) {
				return false
			}
		}
		return string(primary.Snapshot()) == string(replica.Snapshot())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Effective never exceeds the union of positive rights, and
// denying a name present in the CPS always removes those bits.
func TestQuickNegativeRightsDominance(t *testing.T) {
	f := func(pos, neg uint8) bool {
		acl := NewACL()
		acl.Grant("u", Right(pos)&RightsAll)
		acl.Deny("u", Right(neg)&RightsAll)
		eff := acl.Effective([]string{"u"})
		return eff&(Right(neg)&RightsAll) == 0 && eff&^(Right(pos)&RightsAll) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
