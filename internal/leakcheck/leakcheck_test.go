package leakcheck

import (
	"io"
	"os"
	"runtime"
	"strings"
	"testing"
)

// TestCheckPassesWhenSettled: the baseline itself is not a leak.
func TestCheckPassesWhenSettled(t *testing.T) {
	if got := check(io.Discard, runtime.NumGoroutine()); got != 0 {
		t.Fatalf("check on a settled process = %d, want 0", got)
	}
}

// TestCheckFlagsLeak: a goroutine parked past the settling window fails the
// check and its stack appears in the dump.
func TestCheckFlagsLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	stop := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-stop
	}()
	<-started
	defer close(stop)
	var dump strings.Builder
	if got := check(&dump, base); got == 0 {
		t.Fatal("check missed a parked goroutine")
	}
	if !strings.Contains(dump.String(), "TestCheckFlagsLeak") {
		t.Fatalf("stack dump does not name the leaking test:\n%s", dump.String())
	}
}

// TestFuzzingDetection: the check stands down for fuzz invocations, whose
// coordinator goroutines never settle.
func TestFuzzingDetection(t *testing.T) {
	saved := os.Args
	defer func() { os.Args = saved }()
	os.Args = []string{"pkg.test", "-test.run=NONE"}
	if fuzzing() {
		t.Fatal("plain run misdetected as fuzzing")
	}
	os.Args = []string{"pkg.test", "-test.fuzz=^FuzzX$", "-test.fuzztime=10s"}
	if !fuzzing() {
		t.Fatal("-test.fuzz not detected")
	}
	os.Args = []string{"pkg.test", "-test.fuzzworker"}
	if !fuzzing() {
		t.Fatal("-test.fuzzworker not detected")
	}
}
