// Package leakcheck is a TestMain-level goroutine-leak guard for packages
// whose tests start servers, caches and release controllers: anything that
// outlives its Close is a leak, and a leaked goroutine in one test poisons
// the timing of every later one.
//
// Usage, in a package's main_test.go:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// Main snapshots the goroutine count before the tests run, runs them, and
// then requires the count to return to the baseline, giving stragglers a
// settling window first (connection teardown and t.Cleanup goroutines
// finish asynchronously). On failure it prints the full stack dump of every
// live goroutine — the diff against the baseline is exactly the goroutines
// whose stacks name the test that started them — and fails the test binary.
//
// Built on runtime.NumGoroutine and runtime.Stack only, so it runs under
// -race and -shuffle with no extra dependencies.
package leakcheck

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// settleRetries x settleDelay bounds how long stragglers may take to exit
// after the last test completes.
const (
	settleRetries = 100
	settleDelay   = 10 * time.Millisecond
)

// Main wraps m.Run with the leak check; call it from TestMain and nothing
// else. It does not return.
func Main(m *testing.M) {
	if fuzzing() {
		// The fuzz coordinator and its workers keep harness goroutines
		// (signal handler, worker RPC) alive past any settling window; a
		// baseline diff would only ever measure the harness. The seed-corpus
		// runs inside plain `go test` are still covered.
		os.Exit(m.Run())
	}
	base := runtime.NumGoroutine()
	code := m.Run()
	if code == 0 {
		code = check(os.Stderr, base)
	}
	os.Exit(code)
}

// fuzzing reports whether this binary was invoked in fuzzing mode
// (`go test -fuzz` hands the binary -test.fuzz/-test.fuzzworker flags).
func fuzzing() bool {
	for _, a := range os.Args[1:] {
		if strings.HasPrefix(a, "-test.fuzz") || strings.HasPrefix(a, "--test.fuzz") {
			return true
		}
	}
	return false
}

// check waits for the goroutine count to settle back to the baseline and
// returns the exit code, writing the stack dump to w on failure.
func check(w io.Writer, base int) int {
	for i := 0; i < settleRetries; i++ {
		if runtime.NumGoroutine() <= base {
			return 0
		}
		//itcvet:allow wallclock -- test harness settling delay; real goroutines exit in real time
		time.Sleep(settleDelay)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	fmt.Fprintf(w,
		"leakcheck: %d goroutines still live at exit (baseline %d); something outlived its Close.\n%s\n",
		runtime.NumGoroutine(), base, buf[:n])
	return 1
}
