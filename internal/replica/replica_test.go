package replica

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"
)

func TestPropagateConfirmsInOrder(t *testing.T) {
	c := NewController("s0", nil, nil)
	c.Begin(7, "bin.ro", "/bin-ro", []string{"s1", "s2", "s3"})
	var pushed []string
	if err := c.Propagate(7, func(s string) error {
		pushed = append(pushed, s)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pushed, []string{"s1", "s2", "s3"}) {
		t.Fatalf("pushed %v", pushed)
	}
	if p := c.Pending(7); len(p) != 0 {
		t.Fatalf("pending after full propagation: %v", p)
	}
	if inc := c.Incomplete(); len(inc) != 0 {
		t.Fatalf("incomplete: %v", inc)
	}
}

func TestPropagateResumesAfterFailure(t *testing.T) {
	c := NewController("s0", nil, nil)
	c.Begin(7, "bin.ro", "/bin-ro", []string{"s1", "s2", "s3"})

	boom := errors.New("s2 unreachable")
	var pushed []string
	err := c.Propagate(7, func(s string) error {
		pushed = append(pushed, s)
		if s == "s2" {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	if !reflect.DeepEqual(pushed, []string{"s1", "s2"}) {
		t.Fatalf("first attempt pushed %v", pushed)
	}
	if p := c.Pending(7); !reflect.DeepEqual(p, []string{"s2", "s3"}) {
		t.Fatalf("pending = %v, want [s2 s3]", p)
	}
	if inc := c.Incomplete(); !reflect.DeepEqual(inc, []uint32{7}) {
		t.Fatalf("incomplete = %v", inc)
	}

	// Retry pushes only the replicas that never confirmed.
	pushed = nil
	if err := c.Propagate(7, func(s string) error {
		pushed = append(pushed, s)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pushed, []string{"s2", "s3"}) {
		t.Fatalf("resume pushed %v, want [s2 s3]", pushed)
	}
	if p := c.Pending(7); len(p) != 0 {
		t.Fatalf("pending after resume: %v", p)
	}
}

func TestBeginAgainResetsPending(t *testing.T) {
	c := NewController("s0", nil, nil)
	c.Begin(7, "bin.ro", "/bin-ro", []string{"s1", "s2"})
	if err := c.Propagate(7, func(string) error { return nil }); err != nil {
		t.Fatal(err)
	}
	// A resume after recovery may re-register only the missing subset.
	c.Begin(7, "bin.ro", "/bin-ro", []string{"s2"})
	if p := c.Pending(7); !reflect.DeepEqual(p, []string{"s2"}) {
		t.Fatalf("pending = %v, want [s2]", p)
	}
	rels := c.Releases()
	if len(rels) != 1 || rels[0].Volume != 7 || rels[0].Path != "/bin-ro" {
		t.Fatalf("releases = %+v", rels)
	}
}

func TestPropagateUnknownVolume(t *testing.T) {
	c := NewController("s0", nil, nil)
	if err := c.Propagate(9, func(string) error { return nil }); err == nil {
		t.Fatal("expected error for unknown release")
	}
}

func TestIndexSharesIdenticalContent(t *testing.T) {
	ix := NewIndex(nil)
	a := []byte("the system binary")
	b := append([]byte(nil), a...) // same content, distinct backing array

	ca := ix.Intern(a)
	cb := ix.Intern(b)
	if !bytes.Equal(ca, cb) {
		t.Fatal("interned slices differ in content")
	}
	if &ca[0] != &cb[0] {
		t.Fatal("identical content not shared")
	}
	logical, physical, blocks := ix.Stats()
	if logical != 2*uint64(len(a)) || physical != uint64(len(a)) || blocks != 1 {
		t.Fatalf("stats = %d/%d/%d", logical, physical, blocks)
	}
	if r := ix.Ratio(); r != 2.0 {
		t.Fatalf("ratio = %v", r)
	}

	// Distinct content stays distinct.
	other := ix.Intern([]byte("something else"))
	if bytes.Equal(other, ca) {
		t.Fatal("distinct content collided")
	}
	if _, _, blocks := ix.Stats(); blocks != 2 {
		t.Fatalf("blocks = %d", blocks)
	}
}

func TestIndexNilAndEmpty(t *testing.T) {
	var nilIx *Index
	if got := nilIx.Intern([]byte("x")); string(got) != "x" {
		t.Fatalf("nil index Intern = %q", got)
	}
	if r := nilIx.Ratio(); r != 1.0 {
		t.Fatalf("nil ratio = %v", r)
	}
	ix := NewIndex(nil)
	if got := ix.Intern(nil); got != nil {
		t.Fatalf("Intern(nil) = %v", got)
	}
	if got := ix.Intern([]byte{}); len(got) != 0 {
		t.Fatalf("Intern(empty) = %v", got)
	}
	if r := ix.Ratio(); r != 1.0 {
		t.Fatalf("empty ratio = %v", r)
	}
}

func TestIndexManyBlocksRatio(t *testing.T) {
	ix := NewIndex(nil)
	// Ten distinct blocks, each interned three times.
	for round := 0; round < 3; round++ {
		for i := 0; i < 10; i++ {
			ix.Intern([]byte(fmt.Sprintf("block-%d-payload-payload", i)))
		}
	}
	if r := ix.Ratio(); r != 3.0 {
		t.Fatalf("ratio = %v, want 3.0", r)
	}
}
