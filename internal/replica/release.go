// Package replica is the read-only volume replication plane (§3.2, §5.3):
// system software is released as a read-only clone propagated to a set of
// replica servers, so a crashed custodian blacks nothing out for readers.
// The package has two halves: the release Controller here, which drives and
// tracks the propagation of a clone image to its replica set, and the
// content-addressed block Index (index.go), which stores the identical file
// contents of clones, releases and replicas once.
//
// The controller is deliberately transport-free: the server owns the peer
// connections and hands Propagate a push function, so the same state
// machine serves the deterministic simulator and the TCP daemon.
package replica

import (
	"fmt"
	"sort"
	"sync"

	"itcfs/internal/trace"
)

// Release tracks the propagation of one read-only clone to its replica set.
type Release struct {
	Volume   uint32
	Name     string
	Path     string   // mount point of the release ("" = unmounted)
	Replicas []string // desired replica set, in deterministic order
	Pending  []string // replicas that have not yet confirmed the install
}

// complete reports whether every replica confirmed.
func (r Release) complete() bool { return len(r.Pending) == 0 }

// Controller drives releases. Each Begin records the desired replica set;
// Propagate pushes the image to every replica still pending, marking each
// off as it confirms. The controller is idempotent and resumable: a replica
// that already confirmed is never pushed again, a failed push leaves the
// remainder pending, and re-running Propagate after a crash (the installs
// on the receiving side are idempotent too) finishes exactly the missing
// installs.
type Controller struct {
	origin  string // custodian server name, for events
	metrics *trace.Registry
	flight  *trace.Recorder

	mu sync.Mutex
	// keyed by clone volume ID
	// guarded by mu
	releases map[uint32]*Release
}

// NewController returns an empty controller for the named origin server.
// metrics and flight may be nil.
func NewController(origin string, metrics *trace.Registry, flight *trace.Recorder) *Controller {
	return &Controller{
		origin:   origin,
		metrics:  metrics,
		flight:   flight,
		releases: make(map[uint32]*Release),
	}
}

// Begin registers a release of clone vol to replicas, every replica
// initially pending. Re-registering an existing release (resuming after a
// restart) keeps the replica set but re-marks only the given replicas as
// pending — pass the full set to re-verify everything, or the known-missing
// subset to finish an interrupted release.
func (c *Controller) Begin(vol uint32, name, path string, replicas []string) {
	reps := append([]string(nil), replicas...)
	c.mu.Lock()
	defer c.mu.Unlock()
	rel := c.releases[vol]
	if rel == nil {
		rel = &Release{Volume: vol, Name: name, Path: path}
		c.releases[vol] = rel
	}
	rel.Name, rel.Path = name, path
	rel.Replicas = reps
	rel.Pending = append([]string(nil), reps...)
}

// Propagate pushes the release image to every pending replica, in order,
// via push (which installs the image on one server and returns nil once the
// replica acknowledged durably). The first push failure stops propagation
// and is returned; confirmed replicas stay confirmed, so a retry resumes
// where this attempt stopped.
func (c *Controller) Propagate(vol uint32, push func(server string) error) error {
	c.mu.Lock()
	rel := c.releases[vol]
	if rel == nil {
		c.mu.Unlock()
		return fmt.Errorf("replica: no release for volume %d", vol)
	}
	pending := append([]string(nil), rel.Pending...)
	name := rel.Name
	c.mu.Unlock()

	for _, server := range pending {
		if err := push(server); err != nil {
			c.metrics.Counter(trace.MetricReplicaReleasePushFailures).Inc()
			if c.flight != nil {
				c.flight.Log(trace.EventReplicaRelease, c.origin,
					fmt.Sprintf("volume %d (%s): push to %s failed: %v", vol, name, server, err))
			}
			return fmt.Errorf("replica: install volume %d on %s: %w", vol, server, err)
		}
		c.metrics.Counter(trace.MetricReplicaReleaseInstalls).Inc()
		c.confirm(vol, server)
	}
	if c.flight != nil {
		c.flight.Log(trace.EventReplicaRelease, c.origin,
			fmt.Sprintf("volume %d (%s) released to %d replicas", vol, name, len(pending)))
	}
	return nil
}

// confirm marks one replica of a release as installed.
func (c *Controller) confirm(vol uint32, server string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rel := c.releases[vol]
	if rel == nil {
		return
	}
	out := rel.Pending[:0]
	for _, s := range rel.Pending {
		if s != server {
			out = append(out, s)
		}
	}
	rel.Pending = out
}

// Pending returns the replicas of vol still awaiting an install (nil when
// the release is complete or unknown).
func (c *Controller) Pending(vol uint32) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	rel := c.releases[vol]
	if rel == nil {
		return nil
	}
	return append([]string(nil), rel.Pending...)
}

// Releases snapshots every tracked release, sorted by volume ID.
func (c *Controller) Releases() []Release {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Release, 0, len(c.releases))
	for _, rel := range c.releases {
		cp := *rel
		cp.Replicas = append([]string(nil), rel.Replicas...)
		cp.Pending = append([]string(nil), rel.Pending...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Volume < out[j].Volume })
	return out
}

// Incomplete lists the volume IDs of releases with pending replicas, in
// ascending order — the work list for a resume after a crash.
func (c *Controller) Incomplete() []uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []uint32
	for vol, rel := range c.releases {
		if !rel.complete() {
			out = append(out, vol)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
