package replica

import (
	"testing"

	"itcfs/internal/leakcheck"
)

// TestMain fails the package if any test leaves a goroutine running —
// a release controller or subscriber that outlives its Close.
func TestMain(m *testing.M) { leakcheck.Main(m) }
