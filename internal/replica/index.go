package replica

import (
	"crypto/sha256"
	"sync"

	"itcfs/internal/trace"
)

// Index is a content-addressed block store: identical byte slices — the
// common case across a volume, its clones, its releases, and the replicas
// installed from the same image — are held once and shared by reference.
// Intern hands back a canonical slice for the content; callers must treat
// it as immutable, which the store layer already guarantees (WriteData
// replaces whole slices, never edits in place) and the Venus cache adopts
// for clean entries.
//
// The index keeps two counters: logical bytes (every slice interned) and
// physical bytes (slices stored). Their ratio is the dedup ratio E16
// reports for the system-binary file class.
type Index struct {
	metrics *trace.Registry

	mu sync.Mutex
	// guarded by mu
	blocks map[[sha256.Size]byte][]byte
	// guarded by mu
	logical uint64
	// guarded by mu
	physical uint64
}

// NewIndex returns an empty index. metrics may be nil; when set, the index
// keeps "replica.dedup.logical_bytes" and "replica.dedup.physical_bytes"
// gauges current.
func NewIndex(metrics *trace.Registry) *Index {
	return &Index{
		metrics: metrics,
		blocks:  make(map[[sha256.Size]byte][]byte),
	}
}

// Intern returns the canonical shared slice for data, storing data itself
// when its content is new. Empty and nil slices intern to nil. The returned
// slice must not be mutated.
func (ix *Index) Intern(data []byte) []byte {
	if ix == nil || len(data) == 0 {
		return data
	}
	sum := sha256.Sum256(data)
	ix.mu.Lock()
	have, ok := ix.blocks[sum]
	if !ok {
		ix.blocks[sum] = data
		have = data
		ix.physical += uint64(len(data))
	}
	ix.logical += uint64(len(data))
	logical, physical := ix.logical, ix.physical
	ix.mu.Unlock()
	if ix.metrics != nil {
		ix.metrics.Gauge(trace.MetricReplicaDedupLogicalBytes).Set(int64(logical))
		ix.metrics.Gauge(trace.MetricReplicaDedupPhysicalBytes).Set(int64(physical))
	}
	return have
}

// Stats reports the bytes interned (logical), the bytes stored (physical),
// and the number of distinct blocks.
func (ix *Index) Stats() (logical, physical uint64, blocks int) {
	if ix == nil {
		return 0, 0, 0
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.logical, ix.physical, len(ix.blocks)
}

// Ratio is logical/physical — 1.0 means no sharing, 2.0 means every block
// is stored once but referenced twice on average. Zero physical bytes
// yields 1.0.
func (ix *Index) Ratio() float64 {
	logical, physical, _ := ix.Stats()
	if physical == 0 {
		return 1.0
	}
	return float64(logical) / float64(physical)
}
