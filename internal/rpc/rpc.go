// Package rpc implements the connection-based remote procedure call package
// of Section 3.5.3: mutual client/server authentication and end-to-end
// encryption are integrated into the RPC layer, whole-file transfer is a
// side effect of a call (the Bulk payload), and a server is a single process
// with lightweight threads of control per call (goroutines here, one per
// in-flight call).
//
// Two interchangeable transports carry the same sealed bytes:
//
//   - Endpoint (sim.go) runs over the simulated campus network in virtual
//     time, charging server CPU and disk per call through a CostModel. The
//     evaluation harness uses it.
//   - Peer (tcp.go) runs over any io.ReadWriteCloser, typically a TCP
//     connection. cmd/itcfsd and cmd/itcfs use it.
//
// Both transports are full duplex: either side may register a Server and
// receive calls, which is how Vice breaks callbacks to Venus.
package rpc

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"itcfs/internal/secure"
	"itcfs/internal/sim"
	"itcfs/internal/trace"
	"itcfs/internal/wire"
)

// Op identifies a remote procedure.
type Op uint16

// Request is one remote procedure call. Body carries the marshalled
// arguments; Bulk carries a whole-file side effect, kept separate so
// transports and the cost model can account data bytes apart from protocol
// bytes (the paper's protocol-overhead argument for whole-file transfer).
type Request struct {
	Op   Op
	Body []byte
	Bulk []byte
}

// Response is the result of a call. Code 0 is success; other codes are
// service-level errors defined by the application protocol. Transport-level
// failures are reported as Go errors, never as codes.
type Response struct {
	Code uint16
	Body []byte
	Bulk []byte
}

// OK reports whether the response carries a success code.
func (r Response) OK() bool { return r.Code == 0 }

// WireSize returns the approximate on-wire byte count of a request,
// including per-packet protocol overhead. The simulator charges network
// links with it.
func (r Request) WireSize() int { return packetOverhead + len(r.Body) + len(r.Bulk) }

// WireSize returns the approximate on-wire byte count of a response.
func (r Response) WireSize() int { return packetOverhead + len(r.Body) + len(r.Bulk) }

// packetOverhead approximates header plus seal overhead per packet.
const packetOverhead = 96

// Errors returned by transports.
var (
	ErrClosed      = errors.New("rpc: connection closed")
	ErrUnreachable = errors.New("rpc: peer unreachable")
	ErrBadPacket   = errors.New("rpc: malformed packet")

	// ErrTimeout reports a call that got no reply in time on an established
	// connection: the request may or may not have executed. It wraps
	// ErrUnreachable, so callers treating timeouts as unreachability keep
	// working, while tests can tell "no reply in time" (matches both) from
	// "could not even connect" (matches only ErrUnreachable).
	ErrTimeout = fmt.Errorf("rpc: call timed out: %w", ErrUnreachable)
)

// Ctx describes the authenticated origin of an incoming call.
type Ctx struct {
	User string // authenticated identity from the handshake
	Peer string // transport-level peer name (node or address), for logging
	// Back lets the handler place calls to the originating client on the
	// same connection (callback breaking). Nil when the transport or
	// direction does not support it.
	Back Backchannel
	// Proc is the simulated worker process serving the call, for handlers
	// that must block (callbacks, forwarded calls). Nil on real transports,
	// whose handlers run on ordinary goroutines and may just block.
	Proc *sim.Proc
	// Span is the server-side trace span of this call, nil or suppressed
	// when the call is untraced. Handlers may annotate it.
	Span *trace.Span
}

// HandlerFunc serves one call.
type HandlerFunc func(ctx Ctx, req Request) Response

// Server dispatches incoming calls by opcode. It is safe for concurrent use
// and may be shared across transports and connections.
type Server struct {
	mu       sync.RWMutex
	handlers map[Op]HandlerFunc // guarded by mu
	fallback HandlerFunc        // guarded by mu
}

// NewServer returns a server with no handlers.
func NewServer() *Server {
	return &Server{handlers: make(map[Op]HandlerFunc)}
}

// Handle registers fn for op, replacing any previous handler.
func (s *Server) Handle(op Op, fn HandlerFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[op] = fn
}

// HandleFallback registers fn for ops with no specific handler.
func (s *Server) HandleFallback(fn HandlerFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fallback = fn
}

// CodeUnknownOp is the response code for calls nobody handles.
const CodeUnknownOp = 0xFFFF

// Dispatch routes one call. A missing handler yields CodeUnknownOp.
func (s *Server) Dispatch(ctx Ctx, req Request) Response {
	s.mu.RLock()
	fn, ok := s.handlers[req.Op]
	if !ok {
		fn = s.fallback
	}
	s.mu.RUnlock()
	if fn == nil {
		return Response{Code: CodeUnknownOp, Body: []byte(fmt.Sprintf("unknown op %d", req.Op))}
	}
	return fn(ctx, req)
}

// Packet kinds on the wire. Handshake packets are cleartext (their contents
// are sealed records from the secure package); call and reply packets are
// sealed in their entirety under the session key.
const (
	kindHello     = 1 // client -> server, handshake message 1
	kindChallenge = 2 // server -> client, handshake message 2
	kindProof     = 3 // client -> server, handshake message 3
	kindSession   = 4 // server -> client, handshake message 4
	kindCall      = 5
	kindReply     = 6
	kindClose     = 7
)

// encodeCall produces the plaintext of a call packet (seq, trace context,
// op, body, bulk). The trace header is always present — zero when untraced —
// so packet sizes, and with them simulated time, never depend on whether
// tracing is enabled.
func encodeCallInto(e *wire.Encoder, seq uint32, tc wire.TraceHeader, req Request) {
	e.U32(seq)
	tc.Encode(e)
	e.U16(uint16(req.Op))
	e.Bytes(req.Body)
	e.Bytes(req.Bulk)
}

func encodeCall(seq uint32, tc wire.TraceHeader, req Request) []byte {
	e := wire.GetEncoder()
	encodeCallInto(e, seq, tc, req)
	out := append([]byte(nil), e.Buf()...)
	wire.PutEncoder(e)
	return out
}

// sealCall encodes and seals a call packet in one step: the plaintext lives
// only in a pooled scratch buffer, never in a fresh allocation of its own.
// With bulk transfers riding in call bodies that intermediate copy was a
// measurable slice of the simulator's allocation volume.
func sealCall(box *secure.Box, seq uint32, tc wire.TraceHeader, req Request) []byte {
	e := wire.GetEncoder()
	encodeCallInto(e, seq, tc, req)
	sealed := box.Seal(e.Buf())
	wire.PutEncoder(e)
	return sealed
}

// decodeCall decodes a call packet. The returned request's Body and Bulk
// alias plain, which the caller must treat as surrendered: every transport
// hands decodeCall a freshly allocated buffer (Box.Open output or a frame
// read), so aliasing saves two copies per call without sharing hazards.
func decodeCall(plain []byte) (seq uint32, tc wire.TraceHeader, req Request, err error) {
	var d wire.Decoder
	d.Reset(plain)
	seq = d.U32()
	tc = wire.DecodeTraceHeader(&d)
	req.Op = Op(d.U16())
	req.Body = d.Bytes()
	req.Bulk = d.Bytes()
	if err := d.Close(); err != nil {
		return 0, wire.TraceHeader{}, Request{}, fmt.Errorf("%w: %v", ErrBadPacket, err)
	}
	return seq, tc, req, nil
}

// encodeReply produces the plaintext of a reply packet (seq, service time,
// code, body, bulk). The server echoes its measured service time so the
// client can attribute call latency between network and server; like the
// trace header it is always present, zero on transports that don't measure.
func encodeReplyInto(e *wire.Encoder, seq uint32, svc time.Duration, resp Response) {
	e.U32(seq)
	e.U64(uint64(svc))
	e.U16(resp.Code)
	e.Bytes(resp.Body)
	e.Bytes(resp.Bulk)
}

func encodeReply(seq uint32, svc time.Duration, resp Response) []byte {
	e := wire.GetEncoder()
	encodeReplyInto(e, seq, svc, resp)
	out := append([]byte(nil), e.Buf()...)
	wire.PutEncoder(e)
	return out
}

// sealReply is encodeReply fused with Seal; see sealCall. Fetch replies
// carry whole files in Bulk, so the skipped plaintext copy is the file.
func sealReply(box *secure.Box, seq uint32, svc time.Duration, resp Response) []byte {
	e := wire.GetEncoder()
	encodeReplyInto(e, seq, svc, resp)
	sealed := box.Seal(e.Buf())
	wire.PutEncoder(e)
	return sealed
}

// decodeReply decodes a reply packet. Body and Bulk alias plain (see
// decodeCall).
func decodeReply(plain []byte) (seq uint32, svc time.Duration, resp Response, err error) {
	var d wire.Decoder
	d.Reset(plain)
	seq = d.U32()
	svc = time.Duration(d.U64())
	resp.Code = d.U16()
	resp.Body = d.Bytes()
	resp.Bulk = d.Bytes()
	if err := d.Close(); err != nil {
		return 0, 0, Response{}, fmt.Errorf("%w: %v", ErrBadPacket, err)
	}
	return seq, svc, resp, nil
}
