package rpc

import (
	"errors"
	"net"
	"sync"
	"testing"
)

// pipePair connects a dialed and an accepted peer over an in-memory duplex
// stream.
func pipePair(t *testing.T, clientSrv, serverSrv *Server) (*Peer, *Peer) {
	t.Helper()
	cc, sc := net.Pipe()
	var wg sync.WaitGroup
	var accepted *Peer
	var acceptErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		accepted, acceptErr = AcceptPeer(sc, keys, serverSrv)
	}()
	dialed, dialErr := DialPeer(cc, "satya", userKey, clientSrv)
	wg.Wait()
	if dialErr != nil || acceptErr != nil {
		t.Fatalf("dial: %v accept: %v", dialErr, acceptErr)
	}
	t.Cleanup(func() { dialed.Close(); accepted.Close() })
	return dialed, accepted
}

func TestPeerCallRoundTrip(t *testing.T) {
	dialed, accepted := pipePair(t, nil, echoServer())
	if accepted.User() != "satya" {
		t.Fatalf("accepted user = %q", accepted.User())
	}
	resp, err := dialed.Call(nil, Request{Op: opEcho, Body: []byte("over tcp"), Bulk: []byte("bulk")})
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if string(resp.Body) != "over tcp" || string(resp.Bulk) != "bulk" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestPeerConcurrentCalls(t *testing.T) {
	dialed, _ := pipePair(t, nil, echoServer())
	var wg sync.WaitGroup
	errs := make([]error, 20)
	for i := 0; i < 20; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := []byte{byte(i)}
			resp, err := dialed.Call(nil, Request{Op: opEcho, Body: body})
			if err != nil {
				errs[i] = err
				return
			}
			if len(resp.Body) != 1 || resp.Body[0] != byte(i) {
				errs[i] = errors.New("reply mismatch")
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

func TestPeerServerCallback(t *testing.T) {
	clientSrv := NewServer()
	clientSrv.Handle(opPoke, func(_ Ctx, _ Request) Response {
		return Response{Body: []byte("acked")}
	})
	serverSrv := NewServer()
	serverSrv.Handle(opStat, func(ctx Ctx, _ Request) Response {
		resp, err := ctx.Back.CallBack(nil, Request{Op: opPoke})
		if err != nil || string(resp.Body) != "acked" {
			return Response{Code: 2}
		}
		return Response{Body: []byte("stored")}
	})
	dialed, _ := pipePair(t, clientSrv, serverSrv)
	resp, err := dialed.Call(nil, Request{Op: opStat})
	if err != nil || !resp.OK() || string(resp.Body) != "stored" {
		t.Fatalf("resp = %+v err = %v", resp, err)
	}
}

func TestPeerWrongPasswordRejected(t *testing.T) {
	cc, sc := net.Pipe()
	defer cc.Close()
	defer sc.Close()
	go func() {
		// The server rejects at Challenge and drops the connection.
		if _, err := AcceptPeer(sc, keys, nil); err == nil {
			t.Error("server accepted a bad password")
		}
		sc.Close()
	}()
	if _, err := DialPeer(cc, "satya", userKey2(), nil); err == nil {
		t.Fatal("client connected with wrong password")
	}
}

func userKey2() [32]byte {
	k := userKey
	k[0] ^= 0xFF
	return k
}

func TestPeerCloseFailsInflight(t *testing.T) {
	stall := make(chan struct{})
	srv := NewServer()
	srv.Handle(opEcho, func(_ Ctx, req Request) Response {
		<-stall
		return Response{}
	})
	dialed, _ := pipePair(t, nil, srv)
	done := make(chan error, 1)
	go func() {
		_, err := dialed.Call(nil, Request{Op: opEcho})
		done <- err
	}()
	dialed.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	close(stall)
	if _, err := dialed.Call(nil, Request{Op: opEcho}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close call err = %v", err)
	}
}

func TestPeerNoServerReturnsUnknownOp(t *testing.T) {
	dialed, accepted := pipePair(t, nil, echoServer())
	// The accepted side calls the dialed side, which has no server.
	resp, err := accepted.Call(nil, Request{Op: opEcho})
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if resp.Code != CodeUnknownOp {
		t.Fatalf("code = %d, want CodeUnknownOp", resp.Code)
	}
	_ = dialed
}

func TestPeerOverRealTCP(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		if _, err := AcceptPeer(c, keys, echoServer()); err != nil {
			t.Errorf("accept: %v", err)
		}
	}()
	c, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	peer, err := DialPeer(c, "satya", userKey, nil)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer peer.Close()
	resp, err := peer.Call(nil, Request{Op: opEcho, Body: []byte("real tcp")})
	if err != nil || string(resp.Body) != "real tcp" {
		t.Fatalf("resp = %+v err = %v", resp, err)
	}
}
