package rpc

import (
	"errors"
	"testing"
	"time"

	"itcfs/internal/netsim"
	"itcfs/internal/secure"
	"itcfs/internal/sim"
)

const (
	opEcho Op = 1
	opStat Op = 2
	opPoke Op = 3 // server calls back the client before replying
)

var userKey = secure.DeriveKey("satya", "pw")

func keys(user string) (secure.Key, bool) {
	if user == "satya" {
		return userKey, true
	}
	return secure.Key{}, false
}

func echoServer() *Server {
	s := NewServer()
	s.Handle(opEcho, func(_ Ctx, req Request) Response {
		return Response{Body: req.Body, Bulk: req.Bulk}
	})
	return s
}

// rig builds a one-cluster network with a server node and a client node.
type rig struct {
	k      *sim.Kernel
	net    *netsim.Network
	server *Endpoint
	client *Endpoint
}

func newRig(t *testing.T, srvCfg EndpointConfig) *rig {
	t.Helper()
	k := sim.NewKernel()
	net := netsim.New(k, netsim.ITCDefaults())
	cl := net.AddCluster("c0")
	sn := net.AddNode("server", cl)
	cn := net.AddNode("client", cl)
	if srvCfg.Keys == nil {
		srvCfg.Keys = keys
	}
	return &rig{
		k:      k,
		net:    net,
		server: NewEndpoint(net, sn, srvCfg),
		client: NewEndpoint(net, cn, EndpointConfig{}),
	}
}

func TestSimDialAndCall(t *testing.T) {
	r := newRig(t, EndpointConfig{Server: echoServer()})
	var got Response
	var callErr error
	r.k.Spawn("test", func(p *sim.Proc) {
		conn, err := r.client.Dial(p, r.server.Node().ID, "satya", userKey)
		if err != nil {
			callErr = err
			return
		}
		got, callErr = conn.Call(p, Request{Op: opEcho, Body: []byte("ping"), Bulk: []byte("file-bytes")})
	})
	r.k.Run()
	if callErr != nil {
		t.Fatalf("call: %v", callErr)
	}
	if string(got.Body) != "ping" || string(got.Bulk) != "file-bytes" {
		t.Fatalf("resp = %+v", got)
	}
	if r.server.CallsTotal() != 1 || r.server.CallCounts()[opEcho] != 1 {
		t.Errorf("histogram = %v", r.server.CallCounts())
	}
}

func TestSimTimePassesForTransfer(t *testing.T) {
	r := newRig(t, EndpointConfig{Server: echoServer()})
	var elapsed sim.Duration
	r.k.Spawn("test", func(p *sim.Proc) {
		conn, err := r.client.Dial(p, r.server.Node().ID, "satya", userKey)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		start := p.Now()
		// 1 MB bulk at 10 Mbit/s is ~0.84s of serialization each way.
		if _, err := conn.Call(p, Request{Op: opEcho, Bulk: make([]byte, 1<<20)}); err != nil {
			t.Errorf("call: %v", err)
		}
		elapsed = p.Now().Sub(start)
	})
	r.k.Run()
	if elapsed < 1500*time.Millisecond {
		t.Fatalf("1MB echo took %v of virtual time, expected >1.5s on 10Mbit", elapsed)
	}
}

func TestSimWrongPasswordNeverConnects(t *testing.T) {
	r := newRig(t, EndpointConfig{Server: echoServer(), CallTimeout: time.Second})
	var dialErr error
	r.k.Spawn("test", func(p *sim.Proc) {
		_, dialErr = r.client.Dial(p, r.server.Node().ID, "satya", secure.DeriveKey("satya", "wrong"))
	})
	r.k.Run()
	if !errors.Is(dialErr, ErrUnreachable) && !errors.Is(dialErr, secure.ErrAuthFailed) {
		t.Fatalf("dial err = %v, want auth failure or timeout", dialErr)
	}
}

func TestSimUnknownUserNeverConnects(t *testing.T) {
	r := newRig(t, EndpointConfig{Server: echoServer(), CallTimeout: time.Second})
	var dialErr error
	r.k.Spawn("test", func(p *sim.Proc) {
		_, dialErr = r.client.Dial(p, r.server.Node().ID, "mallory", secure.DeriveKey("mallory", "x"))
	})
	r.k.Run()
	if dialErr == nil {
		t.Fatal("unknown user connected")
	}
}

func TestSimCostModelChargesCPU(t *testing.T) {
	k := sim.NewKernel()
	net := netsim.New(k, netsim.ITCDefaults())
	cl := net.AddCluster("c0")
	sn := net.AddNode("server", cl)
	cn := net.AddNode("client", cl)
	cpu := sim.NewResource(k, "srv-cpu")
	disk := sim.NewResource(k, "srv-disk")
	srv := NewEndpoint(net, sn, EndpointConfig{
		Keys:   keys,
		Server: echoServer(),
		Meters: Meters{CPU: cpu, Disk: disk},
		Model: func(_ Ctx, _ Request, _ Response) Cost {
			return Cost{CPU: 20 * time.Millisecond, Disk: 5 * time.Millisecond}
		},
	})
	client := NewEndpoint(net, cn, EndpointConfig{})
	k.Spawn("test", func(p *sim.Proc) {
		conn, err := client.Dial(p, srv.Node().ID, "satya", userKey)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		for i := 0; i < 5; i++ {
			if _, err := conn.Call(p, Request{Op: opEcho}); err != nil {
				t.Errorf("call %d: %v", i, err)
			}
		}
	})
	k.Run()
	if got := cpu.BusyTime(); got != 100*time.Millisecond {
		t.Errorf("cpu busy %v, want 100ms", got)
	}
	if got := disk.BusyTime(); got != 25*time.Millisecond {
		t.Errorf("disk busy %v, want 25ms", got)
	}
}

func TestSimConcurrentClientsQueueOnCPU(t *testing.T) {
	k := sim.NewKernel()
	net := netsim.New(k, netsim.ITCDefaults())
	cl := net.AddCluster("c0")
	sn := net.AddNode("server", cl)
	cpu := sim.NewResource(k, "srv-cpu")
	srv := NewEndpoint(net, sn, EndpointConfig{
		Keys:   keys,
		Server: echoServer(),
		Meters: Meters{CPU: cpu},
		Model: func(_ Ctx, _ Request, _ Response) Cost {
			return Cost{CPU: 50 * time.Millisecond}
		},
	})
	finish := make([]sim.Time, 0, 3)
	for i := 0; i < 3; i++ {
		cn := net.AddNode("client", cl)
		ep := NewEndpoint(net, cn, EndpointConfig{})
		k.Spawn("client", func(p *sim.Proc) {
			conn, err := ep.Dial(p, srv.Node().ID, "satya", userKey)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			if _, err := conn.Call(p, Request{Op: opEcho}); err != nil {
				t.Errorf("call: %v", err)
			}
			finish = append(finish, p.Now())
		})
	}
	k.Run()
	if len(finish) != 3 {
		t.Fatalf("only %d clients finished", len(finish))
	}
	// Three 50ms CPU charges must serialize: last completion at least 150ms.
	last := finish[len(finish)-1]
	if last.Sub(0) < 150*time.Millisecond {
		t.Errorf("last finish at %v, CPU contention not modelled", last)
	}
	if cpu.BusyTime() != 150*time.Millisecond {
		t.Errorf("cpu busy %v, want 150ms", cpu.BusyTime())
	}
}

func TestSimCallbackFromServer(t *testing.T) {
	// Client registers a callback handler; the server handler pokes the
	// client over the backchannel before replying — callback breaking.
	clientSrv := NewServer()
	var pokeSeen bool
	clientSrv.Handle(opPoke, func(_ Ctx, _ Request) Response {
		pokeSeen = true
		return Response{Body: []byte("acked")}
	})

	k := sim.NewKernel()
	net := netsim.New(k, netsim.ITCDefaults())
	cl := net.AddCluster("c0")
	sn := net.AddNode("server", cl)
	cn := net.AddNode("client", cl)

	srvLogic := NewServer()
	srv := NewEndpoint(net, sn, EndpointConfig{Keys: keys, Server: srvLogic})
	client := NewEndpoint(net, cn, EndpointConfig{Server: clientSrv})

	srvLogic.Handle(opStat, func(ctx Ctx, _ Request) Response {
		if ctx.Back == nil {
			return Response{Code: 1, Body: []byte("no backchannel")}
		}
		resp, err := ctx.Back.CallBack(ctx.Proc, Request{Op: opPoke})
		if err != nil || string(resp.Body) != "acked" {
			return Response{Code: 2, Body: []byte("callback failed")}
		}
		return Response{Body: []byte("stored")}
	})

	var result Response
	var callErr error
	k.Spawn("client", func(p *sim.Proc) {
		conn, err := client.Dial(p, srv.Node().ID, "satya", userKey)
		if err != nil {
			callErr = err
			return
		}
		result, callErr = conn.Call(p, Request{Op: opStat})
	})
	k.Run()
	if callErr != nil {
		t.Fatalf("call: %v", callErr)
	}
	if !result.OK() || string(result.Body) != "stored" {
		t.Fatalf("resp = %+v", result)
	}
	if !pokeSeen {
		t.Fatal("callback never reached the client")
	}
}

func TestSimPartitionTimesOut(t *testing.T) {
	k := sim.NewKernel()
	net := netsim.New(k, netsim.ITCDefaults())
	ca := net.AddCluster("a")
	cb := net.AddCluster("b")
	sn := net.AddNode("server", ca)
	cn := net.AddNode("client", cb)
	srv := NewEndpoint(net, sn, EndpointConfig{Keys: keys, Server: echoServer()})
	client := NewEndpoint(net, cn, EndpointConfig{CallTimeout: 2 * time.Second})

	var errs []error
	k.Spawn("client", func(p *sim.Proc) {
		conn, err := client.Dial(p, srv.Node().ID, "satya", userKey)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		net.Partition(cb)
		_, err = conn.Call(p, Request{Op: opEcho})
		errs = append(errs, err)
		net.Heal(cb)
		_, err = conn.Call(p, Request{Op: opEcho})
		errs = append(errs, err)
	})
	k.Run()
	if len(errs) != 2 {
		t.Fatalf("got %d results", len(errs))
	}
	if !errors.Is(errs[0], ErrUnreachable) {
		t.Errorf("partitioned call err = %v, want ErrUnreachable", errs[0])
	}
	if errs[1] != nil {
		t.Errorf("post-heal call err = %v, want nil", errs[1])
	}
}

func TestSimUnknownOp(t *testing.T) {
	r := newRig(t, EndpointConfig{Server: NewServer()})
	var resp Response
	r.k.Spawn("test", func(p *sim.Proc) {
		conn, err := r.client.Dial(p, r.server.Node().ID, "satya", userKey)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		resp, _ = conn.Call(p, Request{Op: 999})
	})
	r.k.Run()
	if resp.Code != CodeUnknownOp {
		t.Fatalf("code = %d, want CodeUnknownOp", resp.Code)
	}
}

func TestSimCloseStopsCalls(t *testing.T) {
	r := newRig(t, EndpointConfig{Server: echoServer()})
	var err2 error
	r.k.Spawn("test", func(p *sim.Proc) {
		conn, err := r.client.Dial(p, r.server.Node().ID, "satya", userKey)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		conn.Close()
		_, err2 = conn.Call(p, Request{Op: opEcho})
	})
	r.k.Run()
	if !errors.Is(err2, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err2)
	}
}
