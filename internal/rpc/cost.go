package rpc

import (
	"time"

	"itcfs/internal/sim"
)

// Cost is the simulated resource consumption of serving one call.
type Cost struct {
	CPU  time.Duration // server CPU time
	Disk time.Duration // server disk time
}

// CostModel maps a served call to its resource consumption. It runs after
// the handler, so response sizes (e.g. the number of bytes a Fetch read from
// disk) are available. A nil model charges nothing.
type CostModel func(ctx Ctx, req Request, resp Response) Cost

// Meters holds the simulated server devices that calls are charged against.
// Either field may be nil to skip that device.
type Meters struct {
	CPU  *sim.Resource
	Disk *sim.Resource
}

// charge applies c to the meters from process p, queueing FIFO behind other
// calls (the server CPU bottleneck of §5.2 emerges from this queueing).
func (m Meters) charge(p *sim.Proc, c Cost) {
	if m.CPU != nil && c.CPU > 0 {
		m.CPU.Use(p, c.CPU)
	}
	if m.Disk != nil && c.Disk > 0 {
		m.Disk.Use(p, c.Disk)
	}
}
