package rpc

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"itcfs/internal/wire"
)

func TestCallCodecRoundTrip(t *testing.T) {
	f := func(seq uint32, traceID, spanID uint64, op uint16, body, bulk []byte) bool {
		tc := wire.TraceHeader{Trace: traceID, Span: spanID}
		plain := encodeCall(seq, tc, Request{Op: Op(op), Body: body, Bulk: bulk})
		gotSeq, gotTC, req, err := decodeCall(plain)
		if err != nil || gotSeq != seq || gotTC != tc || req.Op != Op(op) {
			return false
		}
		return bytes.Equal(req.Body, body) && bytes.Equal(req.Bulk, bulk)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReplyCodecRoundTrip(t *testing.T) {
	f := func(seq uint32, svcNs int64, code uint16, body, bulk []byte) bool {
		svc := time.Duration(svcNs)
		plain := encodeReply(seq, svc, Response{Code: code, Body: body, Bulk: bulk})
		gotSeq, gotSvc, resp, err := decodeReply(plain)
		if err != nil || gotSeq != seq || gotSvc != svc || resp.Code != code {
			return false
		}
		return bytes.Equal(resp.Body, body) && bytes.Equal(resp.Bulk, bulk)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Decoding arbitrary garbage must fail cleanly, never panic, and never
// fabricate an oversized allocation.
func TestCodecGarbageSafe(t *testing.T) {
	f := func(garbage []byte) bool {
		if _, _, _, err := decodeCall(garbage); err == nil {
			// A successful decode must re-encode to an equivalent packet.
			seq, tc, req, _ := decodeCall(garbage)
			back := encodeCall(seq, tc, req)
			_, _, req2, err2 := decodeCall(back)
			if err2 != nil || !bytes.Equal(req.Body, req2.Body) {
				return false
			}
		}
		_, _, _, _ = decodeReply(garbage)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeCallAliasesBuffer(t *testing.T) {
	// Decoded payloads alias the wire buffer: the caller surrenders the
	// buffer to decodeCall (every transport hands it a freshly allocated
	// one), which saves two copies per call — with bulk transfers, the
	// copy would be the whole file. This test pins the zero-copy contract;
	// a transport that wants to reuse decryption buffers must copy first.
	plain := encodeCall(1, wire.TraceHeader{Trace: 9, Span: 4}, Request{Op: 5, Body: []byte("body"), Bulk: []byte("bulk")})
	_, _, req, err := decodeCall(plain)
	if err != nil {
		t.Fatal(err)
	}
	if string(req.Body) != "body" || string(req.Bulk) != "bulk" {
		t.Fatalf("decoded payload wrong: %q %q", req.Body, req.Bulk)
	}
	if len(req.Body) > 0 && &req.Body[0] != &plain[4+16+2+4] {
		t.Fatal("decodeCall copied Body; expected it to alias the wire buffer")
	}
}

func TestTraceHeaderAlwaysOnWire(t *testing.T) {
	// The trace header occupies the same 16 bytes whether or not the call is
	// traced, so enabling tracing cannot change packet sizes — and with them
	// the virtual-time behavior of the simulation.
	req := Request{Op: 5, Body: []byte("body")}
	untraced := encodeCall(1, wire.TraceHeader{}, req)
	traced := encodeCall(1, wire.TraceHeader{Trace: 123456, Span: 789}, req)
	if len(untraced) != len(traced) {
		t.Fatalf("traced call is %d bytes, untraced %d", len(traced), len(untraced))
	}
}

func TestWireSizeAccountsPayloads(t *testing.T) {
	small := Request{Op: 1}.WireSize()
	big := Request{Op: 1, Bulk: make([]byte, 10_000)}.WireSize()
	if big-small != 10_000 {
		t.Fatalf("WireSize delta = %d, want 10000", big-small)
	}
}
