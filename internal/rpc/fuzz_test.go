package rpc

import (
	"bytes"
	"testing"
	"time"

	"itcfs/internal/fault"
	"itcfs/internal/proto"
	"itcfs/internal/wire"
)

// th builds a distinct trace header per seed frame so the corpus exercises
// both zero and non-zero context bytes.
func th(n uint64) wire.TraceHeader {
	if n%2 == 0 {
		return wire.TraceHeader{}
	}
	return wire.TraceHeader{Trace: n, Span: n * 31}
}

// The call/reply codec sits directly behind the session box: whatever the
// box emits — including frames the fault injector flipped bits in before
// the MAC caught them in transit, and hostile plaintexts under a stolen key
// — must decode to an error or a message, never a panic, and successful
// decodes must be canonical (re-encoding reproduces the input bytes, which
// is what makes the at-most-once reply cache safe to replay).

// chaosCallFrames returns call plaintexts for the operations the chaos
// harness drives, plus fault-injector-corrupted copies of each, seeding the
// corpus with the frames this codec actually meets under fault injection.
func chaosCallFrames() [][]byte {
	ref := proto.Ref{Path: "/vice/usr/satya/andrew/src000.c"}
	fidRef := proto.Ref{FID: proto.FID{Volume: 2, Vnode: 7, Uniq: 3}}
	frames := [][]byte{
		encodeCall(1, th(1), Request{Op: Op(proto.OpFetch), Body: proto.Marshal(proto.FetchArgs{Ref: ref})}),
		encodeCall(2, th(2), Request{Op: Op(proto.OpStore),
			Body: proto.Marshal(proto.StoreArgs{Ref: fidRef, Mode: 0o644}),
			Bulk: []byte("int fn1(int x) { return x * 7; }\n")}),
		encodeCall(3, th(3), Request{Op: Op(proto.OpTestValid),
			Body: proto.Marshal(proto.TestValidArgs{Ref: fidRef, Version: 4})}),
		encodeCall(4, th(4), Request{Op: Op(proto.OpMakeDir),
			Body: proto.Marshal(proto.NameArgs{Dir: ref, Name: "sub0", Mode: 0o755})}),
		encodeCall(5, th(5), Request{Op: Op(proto.OpGetCustodian),
			Body: proto.Marshal(proto.CustodianArgs{Path: "/usr/satya"})}),
	}
	inj := fault.New(fault.Config{Seed: 1985})
	for _, f := range frames[:len(frames):len(frames)] {
		damaged := append([]byte(nil), f...)
		inj.Corrupt(damaged)
		frames = append(frames, damaged)
	}
	return frames
}

func FuzzDecodeCall(f *testing.F) {
	for _, frame := range chaosCallFrames() {
		f.Add(frame)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, plain []byte) {
		seq, tc, req, err := decodeCall(plain)
		if err != nil {
			return
		}
		if re := encodeCall(seq, tc, req); !bytes.Equal(re, plain) {
			t.Fatalf("decode accepted non-canonical call frame:\n in %x\nout %x", plain, re)
		}
	})
}

func FuzzDecodeReply(f *testing.F) {
	st := proto.Status{FID: proto.FID{Volume: 2, Vnode: 7, Uniq: 3}, Size: 33, Version: 5}
	frames := [][]byte{
		encodeReply(1, time.Millisecond, Response{Body: proto.Marshal(st), Bulk: []byte("file body bytes")}),
		encodeReply(2, 0, Response{Code: proto.CodeNoEnt, Body: []byte("vice: no such file")}),
		encodeReply(3, 42*time.Microsecond, Response{Code: CodeUnknownOp, Body: []byte("unknown op 9999")}),
	}
	inj := fault.New(fault.Config{Seed: 823})
	for _, frame := range frames[:len(frames):len(frames)] {
		damaged := append([]byte(nil), frame...)
		inj.Corrupt(damaged)
		frames = append(frames, damaged)
	}
	for _, frame := range frames {
		f.Add(frame)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, plain []byte) {
		seq, svc, resp, err := decodeReply(plain)
		if err != nil {
			return
		}
		if re := encodeReply(seq, svc, resp); !bytes.Equal(re, plain) {
			t.Fatalf("decode accepted non-canonical reply frame:\n in %x\nout %x", plain, re)
		}
	})
}
