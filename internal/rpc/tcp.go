package rpc

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"itcfs/internal/secure"
	"itcfs/internal/sim"
	"itcfs/internal/trace"
	"itcfs/internal/wire"
)

// Peer is an authenticated, encrypted, full-duplex RPC connection over a
// real byte stream (typically TCP). Both sides may place calls; both sides
// may serve them. It carries exactly the bytes the simulated transport
// models, so cmd/itcfsd is the same Vice the simulator evaluates.
type Peer struct {
	conn   io.ReadWriteCloser
	box    *secure.Box
	user   string
	name   string
	server *Server

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	nextSeq uint32                  // guarded by mu
	pending map[uint32]chan outcome // guarded by mu
	closed  bool                    // guarded by mu
	done    chan struct{}           // created at construction; closed (once) under mu, readable always

	tracer  *trace.Tracer   // optional wall-clock tracer for served calls
	metrics *trace.Registry // optional registry for served-call latency
}

// SetTracer installs a tracer recording a span per call this peer serves.
// Real clients do not propagate trace context, so each served call begins a
// new root (see Tracer.StartRemote). Call before traffic flows.
func (p *Peer) SetTracer(t *trace.Tracer) { p.tracer = t }

// SetMetrics installs a registry observing the wall-clock service time of
// every call this peer serves into the canonical rpc.serve.latency
// histogram. Call before traffic flows; a nil registry is inert.
func (p *Peer) SetMetrics(reg *trace.Registry) { p.metrics = reg }

// DialPeer authenticates as user over conn (handshake messages 1-4) and
// returns a connected peer. server, which may be nil, handles calls the far
// side places on this connection (callbacks).
func DialPeer(conn io.ReadWriteCloser, user string, key secure.Key, server *Server) (*Peer, error) {
	hs := secure.NewClientHandshake(user, key)
	if err := wire.WriteFrame(conn, hs.Hello()); err != nil {
		return nil, fmt.Errorf("rpc: handshake: %w", err)
	}
	challenge, err := wire.ReadFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("rpc: handshake: %w", err)
	}
	proof, err := hs.Proof(challenge)
	if err != nil {
		return nil, err
	}
	if err := wire.WriteFrame(conn, proof); err != nil {
		return nil, fmt.Errorf("rpc: handshake: %w", err)
	}
	final, err := wire.ReadFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("rpc: handshake: %w", err)
	}
	session, err := hs.Session(final)
	if err != nil {
		return nil, err
	}
	p := newPeer(conn, secure.NewBox(session), user, "server", server)
	go p.readLoop()
	return p, nil
}

// AcceptPeer performs the server side of the handshake on conn, resolving
// client keys through keys, and returns the authenticated peer. server
// handles the client's calls.
func AcceptPeer(conn io.ReadWriteCloser, keys secure.KeyLookup, server *Server) (*Peer, error) {
	hs := secure.NewServerHandshake(keys)
	hello, err := wire.ReadFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("rpc: handshake: %w", err)
	}
	challenge, err := hs.Challenge(hello)
	if err != nil {
		return nil, err
	}
	if err := wire.WriteFrame(conn, challenge); err != nil {
		return nil, fmt.Errorf("rpc: handshake: %w", err)
	}
	proof, err := wire.ReadFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("rpc: handshake: %w", err)
	}
	final, session, err := hs.Complete(proof)
	if err != nil {
		return nil, err
	}
	if err := wire.WriteFrame(conn, final); err != nil {
		return nil, fmt.Errorf("rpc: handshake: %w", err)
	}
	p := newPeer(conn, secure.NewBox(session), hs.User(), hs.User(), server)
	go p.readLoop()
	return p, nil
}

func newPeer(conn io.ReadWriteCloser, box *secure.Box, user, name string, server *Server) *Peer {
	return &Peer{
		conn:    conn,
		box:     box,
		user:    user,
		name:    name,
		server:  server,
		pending: make(map[uint32]chan outcome),
		done:    make(chan struct{}),
	}
}

// User returns the authenticated identity of the connection: on an accepted
// peer, the client's user; on a dialed peer, the local user.
func (p *Peer) User() string { return p.user }

// Call performs one RPC and blocks until the reply arrives or the
// connection dies. The proc argument exists for signature compatibility
// with the simulated transport and is ignored.
func (p *Peer) Call(_ *sim.Proc, req Request) (Response, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return Response{}, ErrClosed
	}
	p.nextSeq++
	seq := p.nextSeq
	ch := make(chan outcome, 1)
	p.pending[seq] = ch
	p.mu.Unlock()

	// Real clients do not trace; the header rides zeroed.
	plain := append([]byte{kindCall}, encodeCall(seq, wire.TraceHeader{}, req)...)
	if err := p.writeSealed(plain); err != nil {
		p.mu.Lock()
		delete(p.pending, seq)
		p.mu.Unlock()
		return Response{}, err
	}
	select {
	case out := <-ch:
		return out.resp, out.err
	case <-p.done:
		return Response{}, ErrClosed
	}
}

// CallBack implements Backchannel.
func (p *Peer) CallBack(proc *sim.Proc, req Request) (Response, error) { return p.Call(proc, req) }

// BackUser implements Backchannel.
func (p *Peer) BackUser() string { return p.user }

// Close tears the connection down and fails all in-flight calls.
func (p *Peer) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.done)
	seqs := make([]uint32, 0, len(p.pending))
	for seq := range p.pending {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		//itcvet:allowblocking pending channels are buffered (cap 1) and receive exactly one send, so this never parks
		p.pending[seq] <- outcome{err: ErrClosed}
		delete(p.pending, seq)
	}
	p.mu.Unlock()
	return p.conn.Close()
}

// Done is closed when the connection has terminated.
func (p *Peer) Done() <-chan struct{} { return p.done }

func (p *Peer) writeSealed(plain []byte) error {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	//itcvet:allowblocking wmu exists to serialize frame writes; writers expect to pace each other on socket I/O
	return wire.WriteFrame(p.conn, p.box.Seal(plain))
}

// readLoop demultiplexes inbound frames until the connection dies.
func (p *Peer) readLoop() {
	defer p.Close()
	for {
		frame, err := wire.ReadFrame(p.conn)
		if err != nil {
			return
		}
		plain, err := p.box.Open(frame)
		if err != nil || len(plain) == 0 {
			return // tampering: drop the connection, per mutual suspicion
		}
		kind, rest := plain[0], plain[1:]
		switch kind {
		case kindCall:
			seq, tc, req, err := decodeCall(rest)
			if err != nil {
				return
			}
			go p.serve(seq, tc, req)
		case kindReply:
			seq, svc, resp, err := decodeReply(rest)
			if err != nil {
				return
			}
			p.mu.Lock()
			ch := p.pending[seq]
			delete(p.pending, seq)
			p.mu.Unlock()
			if ch != nil {
				ch <- outcome{resp: resp, svc: svc}
			}
		default:
			return
		}
	}
}

func (p *Peer) serve(seq uint32, tc wire.TraceHeader, req Request) {
	started := time.Now() //itcvet:allow wallclock -- real transport: service time here IS wall time
	sp := p.tracer.StartRemote(tc, trace.SpanRPCServe, p.name)
	sp.SetInt(trace.AttrOp, int64(req.Op))
	var resp Response
	if p.server == nil {
		resp = Response{Code: CodeUnknownOp, Body: []byte("no server on this peer")}
	} else {
		resp = p.server.Dispatch(Ctx{User: p.user, Peer: p.name, Back: p, Span: sp}, req)
	}
	sp.End()
	// Wall-clock service time stands in for the simulator's virtual measure.
	elapsed := time.Since(started) //itcvet:allow wallclock -- real transport: service time here IS wall time
	p.metrics.Histogram(trace.MetricRPCServeLatency).Observe(elapsed)
	plain := append([]byte{kindReply}, encodeReply(seq, elapsed, resp)...)
	_ = p.writeSealed(plain) // a write failure kills the readLoop shortly
}
