package rpc

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"itcfs/internal/netsim"
	"itcfs/internal/secure"
	"itcfs/internal/sim"
	"itcfs/internal/trace"
)

// pkt is the unit carried through the simulated network. Data is real
// encrypted bytes — the simulation does not fake the cryptography, only the
// passage of time.
type pkt struct {
	Conn uint64
	Kind uint8
	Data []byte
	From netsim.NodeID

	// Network-delay accounting, stamped by netsim (the DelaySink interface)
	// as the frame traverses links. The RPC client reads the request and
	// reply packets' delays to attribute call latency between queueing,
	// serialization and propagation. A frame duplicated by the fault plane
	// shares the pkt and accumulates twice; the fault-free runs the
	// critical-path analyzer measures are unaffected.
	queueDelay  time.Duration
	serialDelay time.Duration
	propDelay   time.Duration
}

func (p *pkt) size() int { return packetOverhead + len(p.Data) }

// AddNetDelay implements netsim.DelaySink.
func (p *pkt) AddNetDelay(queue, serial, prop time.Duration) {
	p.queueDelay += queue
	p.serialDelay += serial
	p.propDelay += prop
}

// WirePayload exposes the packet's bytes to the netsim corruption fault.
// Damaged packets fail the seal's MAC (or handshake verification) at the
// receiver and are discarded, exactly like a frame with a bad checksum.
func (p *pkt) WirePayload() []byte { return p.Data }

// RetryPolicy bounds retransmission of calls (and handshake steps) over the
// simulated transport. The zero value means a single attempt per call. Each
// retry reuses the call's sequence number, so the receiver's at-most-once
// reply cache recognizes retransmissions and never executes a call twice.
type RetryPolicy struct {
	Attempts   int           // total attempts per call; <= 1 disables retries
	Backoff    time.Duration // delay before the 2nd attempt; doubles per retry
	MaxBackoff time.Duration // cap on the backoff (0 = uncapped)
	Jitter     float64       // +/- fraction of random spread per backoff
	Seed       int64         // seeds the deterministic jitter source
}

// replyCache gives a connection at-most-once call semantics: the fault plane
// can duplicate frames and clients retransmit on timeout, so the receiver
// must recognize a sequence number it has already executed and resend the
// saved reply instead of running the operation again.
type replyCache struct {
	inflight map[uint32]bool
	done     map[uint32][]byte // seq -> sealed reply packet
	order    []uint32
}

const replyCacheSize = 512

func newReplyCache() *replyCache {
	return &replyCache{inflight: make(map[uint32]bool), done: make(map[uint32][]byte)}
}

func (rc *replyCache) finish(seq uint32, sealed []byte) {
	delete(rc.inflight, seq)
	if _, ok := rc.done[seq]; !ok {
		rc.order = append(rc.order, seq)
	}
	rc.done[seq] = sealed
	for len(rc.order) > replyCacheSize {
		delete(rc.done, rc.order[0])
		rc.order = rc.order[1:]
	}
}

// Backchannel lets a server place calls back to a connected client (the
// callback path of the revised design). The proc argument is the calling
// simulated process; real transports accept nil.
type Backchannel interface {
	CallBack(p *sim.Proc, req Request) (Response, error)
	BackUser() string
}

// EndpointConfig configures an Endpoint.
type EndpointConfig struct {
	// Keys authenticates inbound connections; nil endpoints refuse them.
	Keys secure.KeyLookup
	// Server handles inbound calls; nil endpoints refuse them.
	Server *Server
	// Model computes per-call resource charges (may be nil).
	Model CostModel
	// Meters are the devices charges apply to (fields may be nil).
	Meters Meters
	// AuthCost is charged per handshake message served.
	AuthCost Cost
	// CallTimeout bounds Dial and Call waits; 0 means 60 simulated seconds.
	CallTimeout time.Duration
	// Retry enables bounded retransmission with exponential backoff and
	// jitter; the zero value keeps the original single-attempt behavior.
	Retry RetryPolicy
	// CallbackTimeout bounds a server-to-client callback break. 0 means a
	// quarter of CallTimeout: a dead cache holder must not stall a
	// mutation for the caller's full call deadline.
	CallbackTimeout time.Duration
	// Tracer records distributed spans for calls through this endpoint.
	// Nil disables tracing at near-zero cost (one nil check per call).
	Tracer *trace.Tracer
	// Metrics receives RPC counters and latency histograms. Nil disables.
	Metrics *trace.Registry
	// Flight, when set, receives operational events (call and handshake
	// retransmissions) for the flight recorder. Nil disables.
	Flight *trace.Recorder
	// Observe, when set, is invoked after every served call with the
	// measured virtual service time (dispatch plus cost-model charges).
	// The Vice server uses it to feed per-volume latency histograms.
	Observe func(ctx Ctx, req Request, resp Response, svc time.Duration)
}

// Endpoint binds RPC to one node of the simulated network. It serves
// inbound connections (if configured with keys and a server) and originates
// outbound ones. It registers itself as the node's frame sink at
// construction, so received frames dispatch in kernel event context with no
// receive loop to wake.
type Endpoint struct {
	k    *sim.Kernel
	net  *netsim.Network
	node *netsim.Node
	cfg  EndpointConfig

	nextConn uint64
	outbound map[uint64]*SimConn
	inbound  map[inKey]*inConn

	down bool
	rng  *rand.Rand // deterministic jitter source for retry backoff

	callCounts    map[Op]int64
	callsTotal    int64
	retries       int64
	dupSuppressed int64

	// mInflight gauges the calls currently executing in worker processes on
	// this endpoint (server endpoints only). Nil without a registry.
	mInflight *trace.Gauge

	// Cached handles for the per-call metrics. Registry lookups hash the
	// metric name under a mutex; resolving once at construction keeps the
	// call hot path free of them. All are nil (and their methods no-ops)
	// without a registry. The cell-wide counters every endpoint shares by
	// name are striped: mShard (this endpoint's node-name hash) pins each
	// machine's increments to one shard, so 30k clients retrying at once
	// don't serialize on a single cache line.
	mShard    uint64
	mRetries  *trace.StripedCounter
	mTimeouts *trace.StripedCounter
	mReplays  *trace.StripedCounter
	mDupSup   *trace.StripedCounter
	mServeLat *trace.Histogram
	mCallLat  *trace.Histogram
}

type inKey struct {
	from netsim.NodeID
	conn uint64
}

type callKey struct {
	conn uint64
	seq  uint32
}

type outcome struct {
	resp Response
	err  error
	svc  time.Duration // server-reported service time, echoed in the reply
	pkt  *pkt          // the reply packet, carrying its network delays
}

// SimConn is an authenticated outbound connection.
type SimConn struct {
	ep      *Endpoint
	remote  netsim.NodeID
	id      uint64
	user    string
	box     *secure.Box
	nextSeq uint32
	pending map[uint32]*sim.Future[outcome]
	hsReply *sim.Future[[]byte] // in-flight handshake step
	serve   *replyCache         // dedupes inbound callback calls
	closed  bool
}

// inConn is the server-side state of an accepted connection.
type inConn struct {
	ep      *Endpoint
	key     inKey
	hs      *secure.ServerHandshake
	hsFinal []byte // saved final handshake message, resent on duplicate proofs
	box     *secure.Box
	user    string
	nextSeq uint32
	pending map[uint32]*sim.Future[outcome]
	serve   *replyCache // dedupes inbound calls
}

// NewEndpoint attaches an endpoint to node and registers its receive sink.
func NewEndpoint(net *netsim.Network, node *netsim.Node, cfg EndpointConfig) *Endpoint {
	if cfg.CallTimeout == 0 {
		cfg.CallTimeout = 60 * time.Second
	}
	if cfg.CallbackTimeout == 0 {
		cfg.CallbackTimeout = cfg.CallTimeout / 4
	}
	ep := &Endpoint{
		k:          net.Kernel(),
		net:        net,
		node:       node,
		cfg:        cfg,
		outbound:   make(map[uint64]*SimConn),
		inbound:    make(map[inKey]*inConn),
		callCounts: make(map[Op]int64),
		rng:        rand.New(rand.NewSource(cfg.Retry.Seed ^ int64(node.ID)*0x5851f42d4c957f2d)),
	}
	if cfg.Metrics != nil && cfg.Keys != nil {
		// Only authenticating (server) endpoints gauge their worker queue:
		// a thousand workstations' callback endpoints would pollute the
		// registry with idle series.
		ep.mInflight = cfg.Metrics.Gauge(trace.RPCInflightGauge(node.Name))
	}
	ep.mShard = trace.ShardKey(node.Name)
	ep.mRetries = cfg.Metrics.Striped(trace.MetricRPCRetries)
	ep.mTimeouts = cfg.Metrics.Striped(trace.MetricRPCCallTimeouts)
	ep.mReplays = cfg.Metrics.Striped(trace.MetricRPCReplyCacheReplays)
	ep.mDupSup = cfg.Metrics.Striped(trace.MetricRPCDupSuppressed)
	ep.mServeLat = cfg.Metrics.Histogram(trace.MetricRPCServeLatency)
	ep.mCallLat = cfg.Metrics.Histogram(trace.MetricRPCCallLatency)
	node.SetSink(ep.deliver)
	return ep
}

// Crash power-fails the endpoint: every connection (inbound and outbound)
// and all at-most-once reply state is lost, and until Restart the endpoint
// neither sends nor receives. In-flight callers see their calls time out.
func (ep *Endpoint) Crash() {
	ep.down = true
	ep.outbound = make(map[uint64]*SimConn)
	ep.inbound = make(map[inKey]*inConn)
}

// Restart brings a crashed endpoint back up with empty connection state.
// Peers must redial: their old connections are gone on this side and their
// calls on them will time out.
func (ep *Endpoint) Restart() { ep.down = false }

// Retries returns the number of call/handshake retransmissions sent.
func (ep *Endpoint) Retries() int64 { return ep.retries }

// DupSuppressed returns inbound calls recognized as duplicates by the
// at-most-once reply cache (answered from the cache or ignored while the
// original is still executing).
func (ep *Endpoint) DupSuppressed() int64 { return ep.dupSuppressed }

// backoff returns the delay before retry attempt a (a >= 1): exponential in
// the attempt number with deterministic jitter.
func (ep *Endpoint) backoff(a int) time.Duration {
	d := ep.cfg.Retry.Backoff
	if d <= 0 {
		d = time.Second
	}
	for i := 1; i < a; i++ {
		d *= 2
		if cap := ep.cfg.Retry.MaxBackoff; cap > 0 && d >= cap {
			break
		}
	}
	if cap := ep.cfg.Retry.MaxBackoff; cap > 0 && d > cap {
		d = cap
	}
	if j := ep.cfg.Retry.Jitter; j > 0 {
		d = time.Duration(float64(d) * (1 + j*(2*ep.rng.Float64()-1)))
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Node returns the network node the endpoint is bound to.
func (ep *Endpoint) Node() *netsim.Node { return ep.node }

// CallCounts returns a copy of the per-op histogram of calls served. This is
// the raw data behind the paper's "histogram of calls received by servers".
func (ep *Endpoint) CallCounts() map[Op]int64 {
	out := make(map[Op]int64, len(ep.callCounts))
	for op, n := range ep.callCounts {
		out[op] = n
	}
	return out
}

// CallsTotal returns the total number of calls served.
func (ep *Endpoint) CallsTotal() int64 { return ep.callsTotal }

func (ep *Endpoint) send(to netsim.NodeID, p *pkt) {
	if ep.down {
		return // a crashed host transmits nothing
	}
	p.From = ep.node.ID
	ep.net.Send(ep.node.ID, to, p.size(), p)
}

// deliver is the endpoint's receive path, registered as the node's frame
// sink: it runs in kernel event context, one scheduling hop after final
// propagation — exactly where the old dispatcher process resumed from its
// inbox park, minus the park/resume round trip per frame. It never blocks;
// all potentially-blocking work runs in per-call worker processes, which is
// exactly the single-process/many-LWPs server structure of the revised
// implementation (§3.5.2).
func (ep *Endpoint) deliver(msg netsim.Message) {
	pk, ok := msg.Payload.(*pkt)
	if !ok {
		return
	}
	if ep.down {
		return // a crashed host hears nothing
	}
	switch pk.Kind {
	case kindHello, kindProof:
		ep.handleHandshake(pk)
	case kindChallenge, kindSession:
		if c := ep.outbound[pk.Conn]; c != nil && c.remote == pk.From && c.hsReply != nil {
			f := c.hsReply
			c.hsReply = nil
			f.Set(pk.Data)
		}
	case kindCall:
		ep.handleCall(pk)
	case kindReply:
		ep.handleReply(pk)
	case kindClose:
		delete(ep.inbound, inKey{pk.From, pk.Conn})
	}
}

// workerNames caches per-op worker process names: a server spawns one worker
// per inbound call, and formatting the name fresh each time was a measurable
// allocation site at tens of thousands of clients.
var workerNames sync.Map // Op -> string

func workerName(op Op) string {
	if n, ok := workerNames.Load(op); ok {
		return n.(string)
	}
	n := fmt.Sprintf("rpc-worker-op%d", op)
	workerNames.Store(op, n)
	return n
}

// handleHandshake serves handshake messages 1 and 3 in a worker process,
// charging the configured authentication cost.
func (ep *Endpoint) handleHandshake(pk *pkt) {
	if ep.cfg.Keys == nil {
		return // not accepting connections; silence, like a dark host
	}
	key := inKey{pk.From, pk.Conn}
	ep.k.Spawn("rpc-auth", func(p *sim.Proc) {
		ep.cfg.Meters.charge(p, ep.cfg.AuthCost)
		switch pk.Kind {
		case kindHello:
			if ic := ep.inbound[key]; ic != nil && ic.box != nil {
				return // duplicate hello on an established connection
			}
			hs := secure.NewServerHandshake(ep.cfg.Keys)
			challenge, err := hs.Challenge(pk.Data)
			if err != nil {
				return // authentication failure: no reply, client times out
			}
			ep.inbound[key] = &inConn{
				ep:      ep,
				key:     key,
				hs:      hs,
				pending: make(map[uint32]*sim.Future[outcome]),
				serve:   newReplyCache(),
			}
			ep.send(pk.From, &pkt{Conn: pk.Conn, Kind: kindChallenge, Data: challenge})
		case kindProof:
			ic := ep.inbound[key]
			if ic == nil {
				return
			}
			if ic.hs == nil {
				// Retransmitted proof for a handshake that already finished
				// (our final message was lost or duplicated in flight):
				// resend it so the client can complete.
				if ic.box != nil && ic.hsFinal != nil {
					ep.send(pk.From, &pkt{Conn: pk.Conn, Kind: kindSession, Data: append([]byte(nil), ic.hsFinal...)})
				}
				return
			}
			final, session, err := ic.hs.Complete(pk.Data)
			if err != nil {
				delete(ep.inbound, key)
				return
			}
			ic.user = ic.hs.User()
			ic.box = secure.NewBox(session)
			ic.hs = nil
			ic.hsFinal = append([]byte(nil), final...)
			ep.send(pk.From, &pkt{Conn: pk.Conn, Kind: kindSession, Data: final})
		}
	})
}

// handleCall decrypts, dispatches and answers one inbound call in a worker
// process. Calls arrive on inbound connections (a client calling the
// server) or on outbound ones (the server breaking a callback to us).
func (ep *Endpoint) handleCall(pk *pkt) {
	var box *secure.Box
	var user string
	var back Backchannel
	var serve *replyCache
	if ic := ep.inbound[inKey{pk.From, pk.Conn}]; ic != nil && ic.box != nil {
		box, user, back, serve = ic.box, ic.user, ic, ic.serve
	} else if c := ep.outbound[pk.Conn]; c != nil && c.remote == pk.From && c.box != nil {
		box, user, back, serve = c.box, "", c, c.serve
	} else {
		return // unknown or unauthenticated connection
	}
	plain, err := box.Open(pk.Data)
	if err != nil {
		return // tampered or replayed under the wrong key
	}
	seq, tc, req, err := decodeCall(plain)
	if err != nil {
		return
	}
	if ep.cfg.Server == nil {
		return
	}
	// At-most-once: a retransmitted or duplicated call must not execute
	// again. Answer finished calls from the reply cache; stay silent while
	// the original is still executing (its reply will cover both frames).
	// The cached sealed reply carries the original execution's service
	// time, so replays attribute latency truthfully.
	if sealed, ok := serve.done[seq]; ok {
		ep.dupSuppressed++
		ep.mReplays.Inc(ep.mShard)
		ep.send(pk.From, &pkt{Conn: pk.Conn, Kind: kindReply, Data: sealed})
		return
	}
	if serve.inflight[seq] {
		ep.dupSuppressed++
		ep.mDupSup.Inc(ep.mShard)
		return
	}
	serve.inflight[seq] = true
	ep.callCounts[req.Op]++
	ep.callsTotal++
	ep.mInflight.Add(1)
	ep.k.Spawn(workerName(req.Op), func(p *sim.Proc) {
		defer ep.mInflight.Add(-1)
		started := p.Now()
		sp := ep.cfg.Tracer.BeginRemote(p, tc, trace.SpanRPCServe, ep.node.Name)
		sp.SetInt(trace.AttrOp, int64(req.Op))
		ctx := Ctx{User: user, Peer: ep.net.Node(pk.From).Name, Back: back, Proc: p, Span: sp}
		resp := ep.cfg.Server.Dispatch(ctx, req)
		if ep.cfg.Model != nil {
			ep.cfg.Meters.charge(p, ep.cfg.Model(ctx, req, resp))
		}
		// Service time spans dispatch plus cost charges: the whole interval
		// this server held the call, which the reply echoes to the client.
		svc := p.Now().Sub(started)
		if ep.cfg.Observe != nil {
			ep.cfg.Observe(ctx, req, resp, svc)
		}
		ep.mServeLat.Observe(svc)
		sp.End()
		sealed := sealReply(box, seq, svc, resp)
		serve.finish(seq, sealed)
		ep.send(pk.From, &pkt{Conn: pk.Conn, Kind: kindReply, Data: sealed})
	})
}

// handleReply resolves the pending future for a reply to a call this
// endpoint originated — on an outbound connection, or a callback on an
// inbound one.
func (ep *Endpoint) handleReply(pk *pkt) {
	if c := ep.outbound[pk.Conn]; c != nil && c.remote == pk.From {
		c.resolve(pk)
		return
	}
	if ic := ep.inbound[inKey{pk.From, pk.Conn}]; ic != nil && ic.box != nil {
		ic.resolve(pk)
	}
}

func (c *SimConn) resolve(pk *pkt) {
	plain, err := c.box.Open(pk.Data)
	if err != nil {
		return
	}
	seq, svc, resp, err := decodeReply(plain)
	if err != nil {
		return
	}
	if f := c.pending[seq]; f != nil {
		delete(c.pending, seq)
		f.TrySet(outcome{resp: resp, svc: svc, pkt: pk})
	}
}

func (ic *inConn) resolve(pk *pkt) {
	plain, err := ic.box.Open(pk.Data)
	if err != nil {
		return
	}
	seq, svc, resp, err := decodeReply(plain)
	if err != nil {
		return
	}
	if f := ic.pending[seq]; f != nil {
		delete(ic.pending, seq)
		f.TrySet(outcome{resp: resp, svc: svc, pkt: pk})
	}
}

// Dial establishes an authenticated connection to the endpoint on the
// remote node, performing the full four-message handshake in virtual time.
// It must be called from a simulated process.
func (ep *Endpoint) Dial(p *sim.Proc, remote netsim.NodeID, user string, key secure.Key) (*SimConn, error) {
	ep.nextConn++
	c := &SimConn{
		ep:      ep,
		remote:  remote,
		id:      ep.nextConn,
		user:    user,
		pending: make(map[uint32]*sim.Future[outcome]),
		serve:   newReplyCache(),
	}
	ep.outbound[c.id] = c
	hs := secure.NewClientHandshake(user, key)

	challenge, err := c.handshakeStep(p, kindHello, hs.Hello())
	if err != nil {
		delete(ep.outbound, c.id)
		return nil, err
	}
	proof, err := hs.Proof(challenge)
	if err != nil {
		delete(ep.outbound, c.id)
		return nil, err
	}
	final, err := c.handshakeStep(p, kindProof, proof)
	if err != nil {
		delete(ep.outbound, c.id)
		return nil, err
	}
	session, err := hs.Session(final)
	if err != nil {
		delete(ep.outbound, c.id)
		return nil, err
	}
	c.box = secure.NewBox(session)
	return c, nil
}

// handshakeStep sends one handshake message and waits for its reply,
// retransmitting with backoff under the endpoint's retry policy. Each
// attempt sends a fresh copy of the message so an in-flight corruption
// fault cannot poison later retransmissions.
func (c *SimConn) handshakeStep(p *sim.Proc, kind uint8, data []byte) ([]byte, error) {
	attempts := c.ep.cfg.Retry.Attempts
	if attempts < 1 {
		attempts = 1
	}
	for a := 0; a < attempts; a++ {
		if a > 0 {
			c.ep.retries++
			c.ep.mRetries.Inc(c.ep.mShard)
			if fl := c.ep.cfg.Flight; fl != nil {
				fl.Log(trace.EventRPCRetry, c.ep.node.Name,
					fmt.Sprintf("handshake kind %d attempt %d to node %d", kind, a+1, c.remote))
			}
			p.Sleep(c.ep.backoff(a))
		}
		f := sim.NewFuture[[]byte](c.ep.k)
		c.hsReply = f
		c.ep.send(c.remote, &pkt{Conn: c.id, Kind: kind, Data: append([]byte(nil), data...)})
		c.ep.k.After(c.ep.cfg.CallTimeout, func() {
			if f.TrySet(nil) && c.hsReply == f {
				c.hsReply = nil
			}
		})
		if reply := f.Wait(p); reply != nil {
			return reply, nil
		}
	}
	return nil, fmt.Errorf("%w: handshake timeout to node %d", ErrUnreachable, c.remote)
}

// User returns the identity the connection authenticated as.
func (c *SimConn) User() string { return c.user }

// Remote returns the node at the far end.
func (c *SimConn) Remote() netsim.NodeID { return c.remote }

// Call performs one RPC and waits (in virtual time) for the reply. Under a
// retry policy, unanswered attempts are retransmitted with exponential
// backoff and jitter; every attempt reuses the same sequence number, so the
// server's at-most-once cache executes the operation exactly once no matter
// how often frames are lost or duplicated in flight.
func (c *SimConn) Call(p *sim.Proc, req Request) (Response, error) {
	if c.closed {
		return Response{}, ErrClosed
	}
	sp := c.ep.cfg.Tracer.Begin(p, trace.SpanRPCCall, c.ep.node.Name)
	sp.SetInt(trace.AttrOp, int64(req.Op))
	started := p.Now()
	c.nextSeq++
	seq := c.nextSeq
	tc := sp.Context()
	attempts := c.ep.cfg.Retry.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			c.ep.retries++
			c.ep.mRetries.Inc(c.ep.mShard)
			if fl := c.ep.cfg.Flight; fl != nil {
				fl.Log(trace.EventRPCRetry, c.ep.node.Name,
					fmt.Sprintf("op %d attempt %d to node %d", req.Op, a+1, c.remote))
			}
			p.Sleep(c.ep.backoff(a))
			if c.closed {
				sp.End()
				return Response{}, lastErr
			}
		}
		f := sim.NewFuture[outcome](c.ep.k)
		c.pending[seq] = f
		// Re-encoding on retry is cheaper than keeping the plaintext alive
		// across the call; each attempt seals fresh (new nonce) regardless.
		reqPkt := &pkt{Conn: c.id, Kind: kindCall, Data: sealCall(c.box, seq, tc, req)}
		c.ep.send(c.remote, reqPkt)
		c.ep.k.After(c.ep.cfg.CallTimeout, func() {
			if f.Done() {
				return // answered; don't build the timeout error
			}
			f.Set(outcome{err: fmt.Errorf("%w: op %d to node %d", ErrTimeout, req.Op, c.remote)})
			if c.pending[seq] == f {
				delete(c.pending, seq)
			}
		})
		out := f.Wait(p)
		if out.err == nil {
			c.ep.finishCall(sp, p, started, reqPkt, out)
			return out.resp, nil
		}
		c.ep.mTimeouts.Inc(c.ep.mShard)
		lastErr = out.err
	}
	sp.End()
	return Response{}, lastErr
}

// finishCall stamps network and server accounting on a completed call span
// and records client-observed latency. Attribution reads the delays netsim
// accumulated on the request packet of the answered attempt and on the reply
// packet, plus the service time the server echoed in the reply. On a
// fault-free network every call is one attempt and the components sum
// exactly to the span's duration; under retries the reply may answer an
// earlier attempt, so attribution is approximate.
func (ep *Endpoint) finishCall(sp *trace.Span, p *sim.Proc, started sim.Time, reqPkt *pkt, out outcome) {
	q, s, pr := reqPkt.queueDelay, reqPkt.serialDelay, reqPkt.propDelay
	if rp := out.pkt; rp != nil {
		q += rp.queueDelay
		s += rp.serialDelay
		pr += rp.propDelay
	}
	sp.SetInt(trace.AttrNetQueueNs, int64(q))
	sp.SetInt(trace.AttrNetSerialNs, int64(s))
	sp.SetInt(trace.AttrNetPropNs, int64(pr))
	sp.SetInt(trace.AttrServerNs, int64(out.svc))
	sp.End()
	ep.mCallLat.Observe(p.Now().Sub(started))
}

// Close tears down the connection; the server forgets its state.
func (c *SimConn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.ep.send(c.remote, &pkt{Conn: c.id, Kind: kindClose})
	delete(c.ep.outbound, c.id)
}

// CallBack places a call from the server back to the client on an accepted
// connection (callback breaking). It implements Backchannel.
func (ic *inConn) CallBack(p *sim.Proc, req Request) (Response, error) {
	if ic.box == nil {
		return Response{}, ErrClosed
	}
	// The callback rides the worker's ambient serve span, so the break
	// appears in the same distributed trace as the mutation that caused it.
	sp := ic.ep.cfg.Tracer.Begin(p, trace.SpanRPCCall, ic.ep.node.Name)
	sp.SetInt(trace.AttrOp, int64(req.Op))
	started := p.Now()
	ic.nextSeq++
	seq := ic.nextSeq
	f := sim.NewFuture[outcome](ic.ep.k)
	ic.pending[seq] = f
	reqPkt := &pkt{Conn: ic.key.conn, Kind: kindCall, Data: sealCall(ic.box, seq, sp.Context(), req)}
	ic.ep.send(ic.key.from, reqPkt)
	ic.ep.k.After(ic.ep.cfg.CallbackTimeout, func() {
		if f.Done() {
			return // answered; don't build the timeout error
		}
		f.Set(outcome{err: fmt.Errorf("%w: callback op %d", ErrTimeout, req.Op)})
		delete(ic.pending, seq)
	})
	out := f.Wait(p)
	if out.err != nil {
		ic.ep.mTimeouts.Inc(ic.ep.mShard)
		sp.End()
		return out.resp, out.err
	}
	ic.ep.finishCall(sp, p, started, reqPkt, out)
	return out.resp, out.err
}

// BackUser returns the authenticated user of the connection.
func (ic *inConn) BackUser() string { return ic.user }

// CallBack on an outbound connection is an ordinary call: the client side of
// a connection reaches the server the same way in both roles. It implements
// Backchannel so callback handlers can answer the server symmetrically.
func (c *SimConn) CallBack(p *sim.Proc, req Request) (Response, error) { return c.Call(p, req) }

// BackUser returns the identity this connection authenticated as.
func (c *SimConn) BackUser() string { return c.user }
