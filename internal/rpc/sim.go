package rpc

import (
	"fmt"
	"time"

	"itcfs/internal/netsim"
	"itcfs/internal/secure"
	"itcfs/internal/sim"
)

// pkt is the unit carried through the simulated network. Data is real
// encrypted bytes — the simulation does not fake the cryptography, only the
// passage of time.
type pkt struct {
	Conn uint64
	Kind uint8
	Data []byte
	From netsim.NodeID
}

func (p *pkt) size() int { return packetOverhead + len(p.Data) }

// Backchannel lets a server place calls back to a connected client (the
// callback path of the revised design). The proc argument is the calling
// simulated process; real transports accept nil.
type Backchannel interface {
	CallBack(p *sim.Proc, req Request) (Response, error)
	BackUser() string
}

// EndpointConfig configures an Endpoint.
type EndpointConfig struct {
	// Keys authenticates inbound connections; nil endpoints refuse them.
	Keys secure.KeyLookup
	// Server handles inbound calls; nil endpoints refuse them.
	Server *Server
	// Model computes per-call resource charges (may be nil).
	Model CostModel
	// Meters are the devices charges apply to (fields may be nil).
	Meters Meters
	// AuthCost is charged per handshake message served.
	AuthCost Cost
	// CallTimeout bounds Dial and Call waits; 0 means 60 simulated seconds.
	CallTimeout time.Duration
}

// Endpoint binds RPC to one node of the simulated network. It serves
// inbound connections (if configured with keys and a server) and originates
// outbound ones. Create it before running the kernel, or from kernel
// context: it spawns its dispatcher process at construction.
type Endpoint struct {
	k    *sim.Kernel
	net  *netsim.Network
	node *netsim.Node
	cfg  EndpointConfig

	nextConn uint64
	outbound map[uint64]*SimConn
	inbound  map[inKey]*inConn

	callCounts map[Op]int64
	callsTotal int64
}

type inKey struct {
	from netsim.NodeID
	conn uint64
}

type callKey struct {
	conn uint64
	seq  uint32
}

type outcome struct {
	resp Response
	err  error
}

// SimConn is an authenticated outbound connection.
type SimConn struct {
	ep      *Endpoint
	remote  netsim.NodeID
	id      uint64
	user    string
	box     *secure.Box
	nextSeq uint32
	pending map[uint32]*sim.Future[outcome]
	hsReply *sim.Future[[]byte] // in-flight handshake step
	closed  bool
}

// inConn is the server-side state of an accepted connection.
type inConn struct {
	ep      *Endpoint
	key     inKey
	hs      *secure.ServerHandshake
	box     *secure.Box
	user    string
	nextSeq uint32
	pending map[uint32]*sim.Future[outcome]
}

// NewEndpoint attaches an endpoint to node and starts its dispatcher.
func NewEndpoint(net *netsim.Network, node *netsim.Node, cfg EndpointConfig) *Endpoint {
	if cfg.CallTimeout == 0 {
		cfg.CallTimeout = 60 * time.Second
	}
	ep := &Endpoint{
		k:          net.Kernel(),
		net:        net,
		node:       node,
		cfg:        cfg,
		outbound:   make(map[uint64]*SimConn),
		inbound:    make(map[inKey]*inConn),
		callCounts: make(map[Op]int64),
	}
	ep.k.Spawn("rpc-dispatch:"+node.Name, ep.dispatch)
	return ep
}

// Node returns the network node the endpoint is bound to.
func (ep *Endpoint) Node() *netsim.Node { return ep.node }

// CallCounts returns a copy of the per-op histogram of calls served. This is
// the raw data behind the paper's "histogram of calls received by servers".
func (ep *Endpoint) CallCounts() map[Op]int64 {
	out := make(map[Op]int64, len(ep.callCounts))
	for op, n := range ep.callCounts {
		out[op] = n
	}
	return out
}

// CallsTotal returns the total number of calls served.
func (ep *Endpoint) CallsTotal() int64 { return ep.callsTotal }

func (ep *Endpoint) send(to netsim.NodeID, p *pkt) {
	p.From = ep.node.ID
	ep.net.Send(ep.node.ID, to, p.size(), p)
}

// dispatch is the endpoint's receive loop. It never parks on anything but
// the inbox; all potentially-blocking work runs in per-call worker
// processes, which is exactly the single-process/many-LWPs server structure
// of the revised implementation (§3.5.2).
func (ep *Endpoint) dispatch(p *sim.Proc) {
	for {
		msg := ep.node.Recv(p)
		pk, ok := msg.Payload.(*pkt)
		if !ok {
			continue
		}
		switch pk.Kind {
		case kindHello, kindProof:
			ep.handleHandshake(pk)
		case kindChallenge, kindSession:
			if c := ep.outbound[pk.Conn]; c != nil && c.remote == pk.From && c.hsReply != nil {
				f := c.hsReply
				c.hsReply = nil
				f.Set(pk.Data)
			}
		case kindCall:
			ep.handleCall(pk)
		case kindReply:
			ep.handleReply(pk)
		case kindClose:
			delete(ep.inbound, inKey{pk.From, pk.Conn})
		}
	}
}

// handleHandshake serves handshake messages 1 and 3 in a worker process,
// charging the configured authentication cost.
func (ep *Endpoint) handleHandshake(pk *pkt) {
	if ep.cfg.Keys == nil {
		return // not accepting connections; silence, like a dark host
	}
	key := inKey{pk.From, pk.Conn}
	ep.k.Spawn("rpc-auth", func(p *sim.Proc) {
		ep.cfg.Meters.charge(p, ep.cfg.AuthCost)
		switch pk.Kind {
		case kindHello:
			hs := secure.NewServerHandshake(ep.cfg.Keys)
			challenge, err := hs.Challenge(pk.Data)
			if err != nil {
				return // authentication failure: no reply, client times out
			}
			ep.inbound[key] = &inConn{
				ep:      ep,
				key:     key,
				hs:      hs,
				pending: make(map[uint32]*sim.Future[outcome]),
			}
			ep.send(pk.From, &pkt{Conn: pk.Conn, Kind: kindChallenge, Data: challenge})
		case kindProof:
			ic := ep.inbound[key]
			if ic == nil || ic.hs == nil {
				return
			}
			final, session, err := ic.hs.Complete(pk.Data)
			if err != nil {
				delete(ep.inbound, key)
				return
			}
			ic.user = ic.hs.User()
			ic.box = secure.NewBox(session)
			ic.hs = nil
			ep.send(pk.From, &pkt{Conn: pk.Conn, Kind: kindSession, Data: final})
		}
	})
}

// handleCall decrypts, dispatches and answers one inbound call in a worker
// process. Calls arrive on inbound connections (a client calling the
// server) or on outbound ones (the server breaking a callback to us).
func (ep *Endpoint) handleCall(pk *pkt) {
	var box *secure.Box
	var user string
	var back Backchannel
	if ic := ep.inbound[inKey{pk.From, pk.Conn}]; ic != nil && ic.box != nil {
		box, user, back = ic.box, ic.user, ic
	} else if c := ep.outbound[pk.Conn]; c != nil && c.remote == pk.From && c.box != nil {
		box, user, back = c.box, "", c
	} else {
		return // unknown or unauthenticated connection
	}
	plain, err := box.Open(pk.Data)
	if err != nil {
		return // tampered or replayed under the wrong key
	}
	seq, req, err := decodeCall(plain)
	if err != nil {
		return
	}
	if ep.cfg.Server == nil {
		return
	}
	ep.callCounts[req.Op]++
	ep.callsTotal++
	ep.k.Spawn(fmt.Sprintf("rpc-worker-op%d", req.Op), func(p *sim.Proc) {
		ctx := Ctx{User: user, Peer: ep.net.Node(pk.From).Name, Back: back, Proc: p}
		resp := ep.cfg.Server.Dispatch(ctx, req)
		if ep.cfg.Model != nil {
			ep.cfg.Meters.charge(p, ep.cfg.Model(ctx, req, resp))
		}
		ep.send(pk.From, &pkt{Conn: pk.Conn, Kind: kindReply, Data: box.Seal(encodeReply(seq, resp))})
	})
}

// handleReply resolves the pending future for a reply to a call this
// endpoint originated — on an outbound connection, or a callback on an
// inbound one.
func (ep *Endpoint) handleReply(pk *pkt) {
	if c := ep.outbound[pk.Conn]; c != nil && c.remote == pk.From {
		c.resolve(pk)
		return
	}
	if ic := ep.inbound[inKey{pk.From, pk.Conn}]; ic != nil && ic.box != nil {
		ic.resolve(pk)
	}
}

func (c *SimConn) resolve(pk *pkt) {
	plain, err := c.box.Open(pk.Data)
	if err != nil {
		return
	}
	seq, resp, err := decodeReply(plain)
	if err != nil {
		return
	}
	if f := c.pending[seq]; f != nil {
		delete(c.pending, seq)
		f.TrySet(outcome{resp: resp})
	}
}

func (ic *inConn) resolve(pk *pkt) {
	plain, err := ic.box.Open(pk.Data)
	if err != nil {
		return
	}
	seq, resp, err := decodeReply(plain)
	if err != nil {
		return
	}
	if f := ic.pending[seq]; f != nil {
		delete(ic.pending, seq)
		f.TrySet(outcome{resp: resp})
	}
}

// Dial establishes an authenticated connection to the endpoint on the
// remote node, performing the full four-message handshake in virtual time.
// It must be called from a simulated process.
func (ep *Endpoint) Dial(p *sim.Proc, remote netsim.NodeID, user string, key secure.Key) (*SimConn, error) {
	ep.nextConn++
	c := &SimConn{
		ep:      ep,
		remote:  remote,
		id:      ep.nextConn,
		user:    user,
		pending: make(map[uint32]*sim.Future[outcome]),
	}
	ep.outbound[c.id] = c
	hs := secure.NewClientHandshake(user, key)

	challenge, err := c.handshakeStep(p, kindHello, hs.Hello())
	if err != nil {
		delete(ep.outbound, c.id)
		return nil, err
	}
	proof, err := hs.Proof(challenge)
	if err != nil {
		delete(ep.outbound, c.id)
		return nil, err
	}
	final, err := c.handshakeStep(p, kindProof, proof)
	if err != nil {
		delete(ep.outbound, c.id)
		return nil, err
	}
	session, err := hs.Session(final)
	if err != nil {
		delete(ep.outbound, c.id)
		return nil, err
	}
	c.box = secure.NewBox(session)
	return c, nil
}

// handshakeStep sends one handshake message and waits for its reply or a
// timeout.
func (c *SimConn) handshakeStep(p *sim.Proc, kind uint8, data []byte) ([]byte, error) {
	f := sim.NewFuture[[]byte](c.ep.k)
	c.hsReply = f
	c.ep.send(c.remote, &pkt{Conn: c.id, Kind: kind, Data: data})
	c.ep.k.After(c.ep.cfg.CallTimeout, func() {
		if f.TrySet(nil) {
			c.hsReply = nil
		}
	})
	reply := f.Wait(p)
	if reply == nil {
		return nil, fmt.Errorf("%w: handshake timeout to node %d", ErrUnreachable, c.remote)
	}
	return reply, nil
}

// User returns the identity the connection authenticated as.
func (c *SimConn) User() string { return c.user }

// Remote returns the node at the far end.
func (c *SimConn) Remote() netsim.NodeID { return c.remote }

// Call performs one RPC and waits (in virtual time) for the reply.
func (c *SimConn) Call(p *sim.Proc, req Request) (Response, error) {
	if c.closed {
		return Response{}, ErrClosed
	}
	c.nextSeq++
	seq := c.nextSeq
	f := sim.NewFuture[outcome](c.ep.k)
	c.pending[seq] = f
	c.ep.send(c.remote, &pkt{Conn: c.id, Kind: kindCall, Data: c.box.Seal(encodeCall(seq, req))})
	c.ep.k.After(c.ep.cfg.CallTimeout, func() {
		if f.TrySet(outcome{err: fmt.Errorf("%w: call op %d timed out", ErrUnreachable, req.Op)}) {
			delete(c.pending, seq)
		}
	})
	out := f.Wait(p)
	return out.resp, out.err
}

// Close tears down the connection; the server forgets its state.
func (c *SimConn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.ep.send(c.remote, &pkt{Conn: c.id, Kind: kindClose})
	delete(c.ep.outbound, c.id)
}

// CallBack places a call from the server back to the client on an accepted
// connection (callback breaking). It implements Backchannel.
func (ic *inConn) CallBack(p *sim.Proc, req Request) (Response, error) {
	if ic.box == nil {
		return Response{}, ErrClosed
	}
	ic.nextSeq++
	seq := ic.nextSeq
	f := sim.NewFuture[outcome](ic.ep.k)
	ic.pending[seq] = f
	ic.ep.send(ic.key.from, &pkt{Conn: ic.key.conn, Kind: kindCall, Data: ic.box.Seal(encodeCall(seq, req))})
	ic.ep.k.After(ic.ep.cfg.CallTimeout, func() {
		if f.TrySet(outcome{err: fmt.Errorf("%w: callback op %d timed out", ErrUnreachable, req.Op)}) {
			delete(ic.pending, seq)
		}
	})
	out := f.Wait(p)
	return out.resp, out.err
}

// BackUser returns the authenticated user of the connection.
func (ic *inConn) BackUser() string { return ic.user }

// CallBack on an outbound connection is an ordinary call: the client side of
// a connection reaches the server the same way in both roles. It implements
// Backchannel so callback handlers can answer the server symmetrically.
func (c *SimConn) CallBack(p *sim.Proc, req Request) (Response, error) { return c.Call(p, req) }

// BackUser returns the identity this connection authenticated as.
func (c *SimConn) BackUser() string { return c.user }
