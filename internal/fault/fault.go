// Package fault is the deterministic fault plane of the simulation: a
// seed-driven injector that drops, duplicates, delays and corrupts
// individual frames as they pass through netsim, plus the bookkeeping that
// lets a chaos harness replay the exact same fault schedule from a seed and
// compare invariant reports byte-for-byte across runs.
//
// The injector is consulted synchronously from netsim.Send, inside the
// single-threaded simulation, so it needs no locking; it must not be shared
// with real (TCP) transports.
package fault

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"itcfs/internal/netsim"
	"itcfs/internal/sim"
)

// Config sets the per-frame fault probabilities. Probabilities are
// independent: one frame can be both delayed and corrupted. The zero value
// injects nothing.
type Config struct {
	Seed        int64
	DropProb    float64       // lose the frame
	DupProb     float64       // deliver the frame twice
	CorruptProb float64       // flip bits in the wire payload
	DelayProb   float64       // hold the frame up to MaxDelay
	MaxDelay    time.Duration // upper bound for injected delay
}

// Injector implements netsim.FaultInjector with a seeded PRNG. The same
// seed against the same deterministic workload yields a byte-identical
// fault schedule (see Report).
type Injector struct {
	cfg    Config
	rng    *rand.Rand
	active bool

	drops    int64
	dups     int64
	corrupts int64
	delays   int64
	decided  int64

	trace strings.Builder
}

// New returns an inactive injector; call SetActive(true) to start injecting.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// SetActive turns fault injection on or off. While inactive, Decide returns
// the zero action without consuming randomness, so activation windows do not
// perturb the schedule generated inside them.
func (i *Injector) SetActive(active bool) { i.active = active }

// Active reports whether the injector is currently injecting faults.
func (i *Injector) Active() bool { return i.active }

// Decide implements netsim.FaultInjector.
func (i *Injector) Decide(now sim.Time, src, dst netsim.NodeID, size int) netsim.FaultAction {
	if !i.active {
		return netsim.FaultAction{}
	}
	i.decided++
	var act netsim.FaultAction
	var what []string
	if i.cfg.DropProb > 0 && i.rng.Float64() < i.cfg.DropProb {
		act.Drop = true
		i.drops++
		what = append(what, "drop")
	}
	if i.cfg.DupProb > 0 && i.rng.Float64() < i.cfg.DupProb {
		act.Duplicate = true
		i.dups++
		what = append(what, "dup")
	}
	if i.cfg.CorruptProb > 0 && i.rng.Float64() < i.cfg.CorruptProb {
		act.Corrupt = true
		i.corrupts++
		what = append(what, "corrupt")
	}
	if i.cfg.DelayProb > 0 && i.cfg.MaxDelay > 0 && i.rng.Float64() < i.cfg.DelayProb {
		act.Delay = time.Duration(i.rng.Int63n(int64(i.cfg.MaxDelay))) + 1
		i.delays++
		what = append(what, fmt.Sprintf("delay=%v", act.Delay))
	}
	if len(what) > 0 {
		fmt.Fprintf(&i.trace, "%12v %d->%d %dB %s\n", time.Duration(now), src, dst, size, strings.Join(what, "+"))
	}
	return act
}

// Corrupt implements netsim.FaultInjector: it flips one to three bits at
// seeded positions, simulating in-flight damage that the receiver's MAC (or
// frame checksum) must catch.
func (i *Injector) Corrupt(wire []byte) {
	if len(wire) == 0 {
		return
	}
	for n := 1 + i.rng.Intn(3); n > 0; n-- {
		pos := i.rng.Intn(len(wire))
		wire[pos] ^= 1 << uint(i.rng.Intn(8))
	}
}

// Counts returns how many frames were dropped, duplicated, corrupted and
// delayed, plus the number of frames examined.
func (i *Injector) Counts() (drops, dups, corrupts, delays, decided int64) {
	return i.drops, i.dups, i.corrupts, i.delays, i.decided
}

// Report returns the full fault schedule, one line per injected fault, plus
// a summary. Two runs with the same seed and workload produce identical
// reports; the chaos harness asserts exactly that.
func (i *Injector) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault schedule (seed=%d)\n", i.cfg.Seed)
	b.WriteString(i.trace.String())
	fmt.Fprintf(&b, "summary: examined=%d drops=%d dups=%d corrupts=%d delays=%d\n",
		i.decided, i.drops, i.dups, i.corrupts, i.delays)
	return b.String()
}
