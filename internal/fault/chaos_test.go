package fault_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"itcfs"
	"itcfs/internal/fault"
	"itcfs/internal/rpc"
	"itcfs/internal/sim"
	"itcfs/internal/workload"
)

// The chaos harness: run the Andrew workload over a cell whose network
// drops, duplicates, delays and corrupts frames from a seeded schedule,
// and whose only server crashes (losing its in-memory callback and lock
// tables) and restarts mid-run. After every fault heals, the stack must
// show: no acknowledged write lost, no stale read survives a broken
// callback, every frame accounted for, and all caches converged.

// chaosRetry is sized so a 30 s crash window sits well inside one call's
// total retry budget (6 attempts × 10 s timeouts + backoffs ≈ 110 s).
func chaosConfig(mode itcfs.Mode, seed int64) itcfs.CellConfig {
	return itcfs.CellConfig{
		Mode:     mode,
		Clusters: 1,
		// Free server CPU/disk: chaos stresses the transport and the
		// recovery paths, not the 1985 hardware model.
		Costs:       &itcfs.CostConfig{},
		CallTimeout: 10 * time.Second,
		Retry: rpc.RetryPolicy{
			Attempts:   6,
			Backoff:    2 * time.Second,
			MaxBackoff: 20 * time.Second,
			Jitter:     0.3,
			Seed:       seed,
		},
		CallbackTTL:      2 * time.Minute,
		ReconnectRetries: 3,
	}
}

func chaosInjector(seed int64) *fault.Injector {
	return fault.New(fault.Config{
		Seed:        seed,
		DropProb:    0.05,
		DupProb:     0.05,
		CorruptProb: 0.03,
		DelayProb:   0.10,
		MaxDelay:    2 * time.Second,
	})
}

// andrewChaos is small enough to finish quickly yet wide enough that every
// fault mode fires during the copy/scan/compile phases.
func andrewChaos(seed int64) workload.AndrewConfig {
	return workload.AndrewConfig{Seed: seed, Files: 10, Dirs: 2, MeanFileBytes: 512}
}

// runChaos executes one full seeded chaos run and returns the injector's
// fault schedule plus the invariant report. Any invariant violation fails t.
func runChaos(t *testing.T, mode itcfs.Mode, seed int64) (schedule, invariants string) {
	t.Helper()
	cell := itcfs.NewCell(chaosConfig(mode, seed))

	// Provision on a healthy network so setup noise never enters the
	// fault schedule.
	var err error
	cell.Run(func(p *sim.Proc) {
		admin, aerr := cell.Admin(p, 0)
		if aerr != nil {
			err = aerr
			return
		}
		err = admin.NewUser(p, "satya", "pw", 0)
	})
	if err != nil {
		t.Fatalf("provision: %v", err)
	}
	ws1 := cell.AddWorkstation(0, "ws-a")
	ws2 := cell.AddWorkstation(0, "ws-b")
	wcfg := andrewChaos(seed)
	var srcFiles []string
	cell.Run(func(p *sim.Proc) {
		if err = ws1.Login(p, "satya", "pw"); err != nil {
			return
		}
		if err = ws2.Login(p, "satya", "pw"); err != nil {
			return
		}
		srcFiles, err = workload.GenerateTree(p, ws1.FS, "/src", wcfg)
	})
	if err != nil {
		t.Fatalf("setup: %v", err)
	}

	inj := chaosInjector(seed)
	cell.Net.SetFaultInjector(inj)
	inj.SetActive(true)

	// Two crash/restart cycles while the Andrew workload runs: each
	// 30-second outage wipes the server's callback and lock tables but
	// stays inside the clients' retry budget.
	cell.Kernel.Spawn("chaos-crashes", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			p.Sleep(45 * time.Second)
			cell.CrashServer(0)
			p.Sleep(30 * time.Second)
			cell.RestartServer(0)
		}
	})
	const dst = "/vice/usr/satya/andrew"
	var runErr error
	cell.Run(func(p *sim.Proc) {
		_, runErr = workload.RunAndrew(p, ws1.FS, "/src", dst, wcfg)
	})
	// Invariant: with retries the workload completes despite drops,
	// duplicates, corruption, delays and two full server outages.
	if runErr != nil {
		t.Fatalf("andrew workload under faults: %v", runErr)
	}

	// Heal: stop injecting and let every delayed frame drain (cell.Run
	// above returns only when the event queue is empty, so it already has).
	inj.SetActive(false)

	// Invariant: no lost acknowledged writes. RunAndrew returned success,
	// so every store it issued was acknowledged; after the heal each copied
	// file must read back byte-identical to its source.
	dstOf := func(src string) string { return dst + strings.TrimPrefix(src, "/src") }
	cell.Run(func(p *sim.Proc) {
		for _, src := range srcFiles {
			want, rerr := ws1.FS.ReadFile(p, src)
			if rerr != nil {
				err = fmt.Errorf("read source %s: %w", src, rerr)
				return
			}
			got, rerr := ws1.FS.ReadFile(p, dstOf(src))
			if rerr != nil {
				err = fmt.Errorf("read copy %s: %w", dstOf(src), rerr)
				return
			}
			if string(got) != string(want) {
				err = fmt.Errorf("acknowledged write lost: %s differs from %s", dstOf(src), src)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	// Invariant: no stale read after a callback break is lost to a crash.
	// ws2 caches a file and earns a callback promise; the server crashes
	// (forgetting the promise), restarts, and ws1 updates the file — so no
	// break ever reaches ws2. Once ws2's trust in the promise expires it
	// must revalidate and see the new bytes.
	probe := dstOf(srcFiles[0])
	cell.Run(func(p *sim.Proc) {
		_, err = ws2.FS.ReadFile(p, probe)
	})
	if err != nil {
		t.Fatalf("probe read: %v", err)
	}
	cell.CrashServer(0)
	cell.RunFor(5 * time.Second)
	cell.RestartServer(0)
	cell.RunFor(5 * time.Second)
	updated := []byte("updated after the callback table died")
	cell.Run(func(p *sim.Proc) {
		err = ws1.FS.WriteFile(p, probe, updated)
	})
	if err != nil {
		t.Fatalf("update after restart: %v", err)
	}
	cell.RunFor(3 * time.Minute) // outlive CallbackTTL
	var got []byte
	cell.Run(func(p *sim.Proc) {
		got, err = ws2.FS.ReadFile(p, probe)
	})
	if err != nil {
		t.Fatalf("re-read after heal: %v", err)
	}
	if string(got) != string(updated) {
		t.Fatalf("stale read after heal: got %q, want %q", got, updated)
	}

	// Invariant: cache convergence. Every workstation — the writer, the
	// revalidated reader, and a cold one — sees identical bytes.
	ws3 := cell.AddWorkstation(0, "ws-cold")
	sample := append([]string{probe}, dstOf(srcFiles[len(srcFiles)-1]))
	cell.Run(func(p *sim.Proc) {
		if err = ws3.Login(p, "satya", "pw"); err != nil {
			return
		}
		for _, path := range sample {
			var a, b, c []byte
			if a, err = ws1.FS.ReadFile(p, path); err != nil {
				return
			}
			if b, err = ws2.FS.ReadFile(p, path); err != nil {
				return
			}
			if c, err = ws3.FS.ReadFile(p, path); err != nil {
				return
			}
			if string(a) != string(b) || string(b) != string(c) {
				err = fmt.Errorf("caches diverge on %s: %q / %q / %q", path, a, b, c)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	// Invariant: frame conservation. Every frame offered to the network is
	// delivered or accounted to exactly one loss bucket.
	net := cell.Net
	if net.Offered() != net.Delivered()+net.Drops()+net.FaultDrops()+net.DownDrops() {
		t.Fatalf("frames leaked: offered=%d delivered=%d partition=%d fault=%d down=%d",
			net.Offered(), net.Delivered(), net.Drops(), net.FaultDrops(), net.DownDrops())
	}

	// Invariant: the run actually exercised the fault modes it claims.
	drops, dups, corrupts, delays, decided := inj.Counts()
	if drops == 0 || dups == 0 || corrupts == 0 || delays == 0 {
		t.Fatalf("fault modes missed: drops=%d dups=%d corrupts=%d delays=%d (examined %d)",
			drops, dups, corrupts, delays, decided)
	}
	if cell.Servers[0].Vice.Restarts() < 3 {
		t.Fatalf("server restarts = %d, want >= 3", cell.Servers[0].Vice.Restarts())
	}
	var retries, dupSuppressed int64
	retries += cell.Servers[0].Endpoint.Retries()
	dupSuppressed += cell.Servers[0].Endpoint.DupSuppressed()
	for _, ws := range cell.Workstations() {
		retries += ws.Endpoint.Retries()
		dupSuppressed += ws.Endpoint.DupSuppressed()
	}
	if retries == 0 {
		t.Fatal("no retransmissions despite dropped frames")
	}
	if dupSuppressed == 0 {
		t.Fatal("no duplicate calls suppressed despite duplicated frames")
	}

	var wsStats []string
	for _, ws := range cell.Workstations() {
		s := ws.Venus.Stats()
		wsStats = append(wsStats, fmt.Sprintf(
			"  %s: opens=%d hits=%d misses=%d fetches=%d stores=%d degraded=%d reconnects=%d",
			ws.Name, s.Opens, s.Hits, s.Misses, s.Fetches, s.Stores, s.DegradedReads, s.Reconnects))
	}
	sort.Strings(wsStats)
	invariants = fmt.Sprintf(
		"chaos invariants (mode=%v seed=%d)\n"+
			"frames: offered=%d delivered=%d partition=%d fault=%d down=%d dup=%d corrupt=%d delay=%d\n"+
			"rpc: retries=%d dup-suppressed=%d server-restarts=%d\n%s\n",
		cell.Mode, seed,
		net.Offered(), net.Delivered(), net.Drops(), net.FaultDrops(), net.DownDrops(),
		net.FaultDups(), net.FaultCorrupts(), net.FaultDelays(),
		retries, dupSuppressed, cell.Servers[0].Vice.Restarts(),
		strings.Join(wsStats, "\n"))
	return inj.Report(), invariants
}

// TestChaosAndrewWorkload drives the full harness in both implementation
// modes: the prototype (check-on-open) and the revised design (callbacks).
func TestChaosAndrewWorkload(t *testing.T) {
	for _, mode := range []itcfs.Mode{itcfs.Prototype, itcfs.Revised} {
		t.Run(mode.String(), func(t *testing.T) {
			schedule, invariants := runChaos(t, mode, 1985)
			if testing.Verbose() {
				t.Logf("%s\n%s", schedule, invariants)
			}
		})
	}
}

// TestChaosDeterministic replays the same seed through two fresh cells and
// requires a byte-identical fault schedule and invariant report — the
// property that makes chaos failures debuggable.
func TestChaosDeterministic(t *testing.T) {
	s1, i1 := runChaos(t, itcfs.Revised, 7)
	s2, i2 := runChaos(t, itcfs.Revised, 7)
	if s1 != s2 {
		t.Errorf("fault schedule not reproducible:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", s1, s2)
	}
	if i1 != i2 {
		t.Errorf("invariant report not reproducible:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", i1, i2)
	}
}

// TestChaosSeedChangesSchedule guards against the injector ignoring its
// seed: different seeds must produce different schedules.
func TestChaosSeedChangesSchedule(t *testing.T) {
	s1, _ := runChaos(t, itcfs.Revised, 7)
	s2, _ := runChaos(t, itcfs.Revised, 8)
	if s1 == s2 {
		t.Error("different seeds produced identical fault schedules")
	}
}
