package monitor

import (
	"fmt"

	"itcfs"
	"itcfs/internal/sim"
	"itcfs/internal/trace"
	"itcfs/internal/vice"
)

// Windowed overload detection. The Advisor's Recommend is spatial — it finds
// volumes whose traffic comes from the wrong cluster — but §5.2's saturation
// story is temporal: a server drifts over its CPU ceiling as stat/fetch
// traffic ramps, and the operator needs to know when it started and which
// volume is driving it. DetectOverload answers both from the sampled
// telemetry: per-server CPU utilization series locate sustained overload and
// its onset, and per-volume call-rate series attribute the load to the
// hottest volume, yielding a concrete move recommendation.

// OverloadConfig tunes the detector.
type OverloadConfig struct {
	// UtilThreshold is the per-window CPU utilization (0..1) a server must
	// exceed to count as overloaded in that window.
	UtilThreshold float64
	// MinWindows is how many consecutive windows must exceed the threshold
	// before the detector fires — debounce against one-window spikes.
	MinWindows int
}

// DefaultOverloadConfig returns thresholds matching the paper's saturation
// observations ("sometimes peaking at 98% server CPU utilization"): sustained
// operation above 80% over three windows.
func DefaultOverloadConfig() OverloadConfig {
	return OverloadConfig{UtilThreshold: 0.80, MinWindows: 3}
}

// HotVolume is one detector finding: a server in sustained overload, the
// volume driving it, and the recommended destination.
type HotVolume struct {
	Server string   // the overloaded server
	Onset  sim.Time // end of the first window of the sustained overload
	// Windows is how many sampled windows the overload spanned (to the end
	// of the series).
	Windows  int
	PeakUtil float64 // highest per-window utilization during the overload
	MeanUtil float64 // mean per-window utilization during the overload
	// Volume is the hottest volume hosted by the server over the overload
	// interval, by sampled per-window operation rate; VolumeOps is its total
	// operations in that interval.
	Volume    uint32
	VolumeOps int64
	// To is the least-loaded other server over the same interval — the
	// recommended destination for Admin.MoveVolume. Empty in a single-server
	// cell.
	To     string
	Reason string
}

// DetectOverload scans the sampler's per-server CPU series (installed by
// Cell.StartSampling) for sustained overload and attributes each finding to
// the hottest volume on the affected server. Results are ordered by server
// creation order; everything is computed from deterministic series, so the
// findings replay byte-identically under one seed.
func (a *Advisor) DetectOverload(s *trace.Sampler, cfg OverloadConfig) []HotVolume {
	if s == nil || s.Every() <= 0 {
		return nil
	}
	if cfg.UtilThreshold <= 0 {
		cfg = DefaultOverloadConfig()
	}
	if cfg.MinWindows < 1 {
		cfg.MinWindows = 1
	}
	window := float64(s.Every())
	var out []HotVolume
	for _, srv := range a.cell.Servers {
		name := srv.Vice.Name()
		pts := s.Points(itcfs.ServerCPUSeries(name))
		run := overloadRun(pts, window, cfg)
		if run < 0 {
			continue
		}
		hv := HotVolume{Server: name, Onset: pts[run].At, Windows: len(pts) - run}
		var sum float64
		for _, p := range pts[run:] {
			u := float64(p.V) / window
			sum += u
			if u > hv.PeakUtil {
				hv.PeakUtil = u
			}
		}
		hv.MeanUtil = sum / float64(hv.Windows)
		from, to := pts[run].At, pts[len(pts)-1].At
		hv.Volume, hv.VolumeOps = a.hottestVolume(s, srv.Vice, from, to)
		hv.To = a.coolestOther(s, name, from, to, window)
		hv.Reason = fmt.Sprintf(
			"CPU above %.0f%% for %d consecutive windows since %v (peak %.0f%%, mean %.0f%%); volume %d served %d ops in the interval",
			100*cfg.UtilThreshold, hv.Windows, hv.Onset, 100*hv.PeakUtil, 100*hv.MeanUtil,
			hv.Volume, hv.VolumeOps)
		if class, burn, ok := a.slo.WorstBurn(); ok && burn > 0 {
			hv.Reason += fmt.Sprintf("; slo burn %s=%.1fx", class, burn)
		}
		out = append(out, hv)
	}
	return out
}

// overloadRun returns the index of the first window opening a run of at
// least cfg.MinWindows consecutive over-threshold windows that extends to
// the end of the series, or -1. Requiring the run to still be live at the
// end keeps the detector from re-reporting overloads that already subsided.
func overloadRun(pts []trace.Point, window float64, cfg OverloadConfig) int {
	if len(pts) < cfg.MinWindows {
		return -1
	}
	start := -1
	for i, p := range pts {
		if float64(p.V)/window > cfg.UtilThreshold {
			if start < 0 {
				start = i
			}
		} else {
			start = -1
		}
	}
	if start < 0 || len(pts)-start < cfg.MinWindows {
		return -1
	}
	return start
}

// hottestVolume sums each locally hosted volume's sampled per-window call
// rates over [from, to] and returns the busiest (ties break to the lower
// volume ID; zero if the server hosts none or no registry is attached).
func (a *Advisor) hottestVolume(s *trace.Sampler, srv *vice.Server, from, to sim.Time) (uint32, int64) {
	var best uint32
	var bestOps int64 = -1
	for _, vol := range srv.VolumeIDs() {
		ops := sumWindow(s.Points(vice.VolOpsMetric(vol)), from, to)
		if ops > bestOps {
			best, bestOps = vol, ops
		}
	}
	if bestOps < 0 {
		return 0, 0
	}
	return best, bestOps
}

// coolestOther returns the other server with the lowest mean utilization
// over [from, to] (ties break to creation order; empty if there is none).
func (a *Advisor) coolestOther(s *trace.Sampler, overloaded string, from, to sim.Time, window float64) string {
	best := ""
	bestUtil := 0.0
	for _, srv := range a.cell.Servers {
		name := srv.Vice.Name()
		if name == overloaded {
			continue
		}
		busy := sumWindow(s.Points(itcfs.ServerCPUSeries(name)), from, to)
		span := float64(to-from) + window // windows are (prev, At] intervals
		util := float64(busy) / span
		if best == "" || util < bestUtil {
			best, bestUtil = name, util
		}
	}
	return best
}

// sumWindow totals the points whose timestamps fall in [from, to].
func sumWindow(pts []trace.Point, from, to sim.Time) int64 {
	var sum int64
	for _, p := range pts {
		if p.At >= from && p.At <= to {
			sum += p.V
		}
	}
	return sum
}

// MeanUtilSince reports a server's mean sampled CPU utilization over the
// windows ending after since — the balance check an operator runs after
// applying a recommended move.
func (a *Advisor) MeanUtilSince(s *trace.Sampler, server string, since sim.Time) float64 {
	if s == nil || s.Every() <= 0 {
		return 0
	}
	pts := s.Points(itcfs.ServerCPUSeries(server))
	var sum float64
	n := 0
	for _, p := range pts {
		if p.At > since {
			sum += float64(p.V) / float64(s.Every())
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
