// Package monitor implements the monitoring tools the paper calls for in
// §3.6: "recognize long-term changes in user access patterns and help
// reassign users to cluster servers so as to balance server loads and
// reduce cross-cluster traffic."
//
// Vice servers already count hot-path operations per volume per requesting
// node (vice.Server.AccessStats). The Advisor aggregates those counts by
// cluster and recommends volume reassignments: a volume whose traffic comes
// predominantly from another cluster should move to that cluster's server.
// Per the paper, recommendations are advisory — "a human operator will
// initiate the actual reassignment" — so the Advisor only reports; applying
// a recommendation is an explicit Admin.MoveVolume.
package monitor

import (
	"fmt"
	"sort"
	"time"

	"itcfs"
	"itcfs/internal/vice"
)

// Recommendation proposes moving one volume to a new custodian.
type Recommendation struct {
	Volume      uint32
	From        string // current custodian
	To          string // recommended custodian
	TotalOps    int64
	RemoteShare float64 // fraction of ops from the winning remote cluster
	// P90 is the observed 90th-percentile service time for the volume,
	// zero when the cell runs without a metrics registry.
	P90    time.Duration
	Reason string
}

// Config tunes the advisor.
type Config struct {
	// MinOps ignores volumes with fewer observed operations: reassignment
	// is expensive and must not chase noise (§3.1: such changes are rare
	// and human-initiated).
	MinOps int64
	// MinRemoteShare is the fraction of a volume's traffic that must come
	// from one foreign cluster before a move is recommended.
	MinRemoteShare float64
}

// DefaultConfig returns conservative thresholds.
func DefaultConfig() Config {
	return Config{MinOps: 50, MinRemoteShare: 0.6}
}

// Advisor analyzes a cell's access patterns.
type Advisor struct {
	cfg  Config
	cell *itcfs.Cell
	slo  *SLOMonitor // optional — lets overload findings cite burn rates
}

// New creates an advisor over a cell.
func New(cell *itcfs.Cell, cfg Config) *Advisor {
	return &Advisor{cfg: cfg, cell: cell}
}

// UseSLO gives the advisor an SLO monitor to consult: subsequent
// DetectOverload findings cite the worst current burn rate, turning "the
// server is busy" into "and clients are paying for it".
func (a *Advisor) UseSLO(m *SLOMonitor) { a.slo = m }

// clusterOf maps a node name to its cluster index (-1 if unknown).
func (a *Advisor) clusterOf(nodeName string) int {
	for _, ws := range a.cell.Workstations() {
		if ws.Name == nodeName {
			return ws.Cluster.ID
		}
	}
	for _, s := range a.cell.Servers {
		if s.Node.Name == nodeName {
			return s.Cluster.ID
		}
	}
	return -1
}

// serverOfCluster returns the cluster's server name.
func (a *Advisor) serverOfCluster(id int) string {
	for _, s := range a.cell.Servers {
		if s.Cluster.ID == id {
			return s.Vice.Name()
		}
	}
	return ""
}

// VolumeTraffic is one volume's observed per-cluster operation counts.
type VolumeTraffic struct {
	Volume    uint32
	Custodian string
	ByCluster map[int]int64
	Total     int64
}

// Collect aggregates every server's access counters by cluster.
func (a *Advisor) Collect() []VolumeTraffic {
	var out []VolumeTraffic
	for _, s := range a.cell.Servers {
		for vol, byNode := range s.Vice.AccessStats() {
			vt := VolumeTraffic{Volume: vol, Custodian: s.Vice.Name(), ByCluster: make(map[int]int64)}
			for node, n := range byNode {
				cl := a.clusterOf(node)
				vt.ByCluster[cl] += n
				vt.Total += n
			}
			out = append(out, vt)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Volume < out[j].Volume })
	return out
}

// Recommend returns the volume moves that would localize traffic, sorted
// by descending benefit.
func (a *Advisor) Recommend() []Recommendation {
	var recs []Recommendation
	for _, vt := range a.Collect() {
		if vt.Total < a.cfg.MinOps {
			continue
		}
		custodianCluster := a.clusterOfServer(vt.Custodian)
		// Find the cluster generating the most traffic.
		bestCluster, bestOps := -1, int64(0)
		for cl, n := range vt.ByCluster {
			if cl >= 0 && n > bestOps {
				bestCluster, bestOps = cl, n
			}
		}
		if bestCluster < 0 || bestCluster == custodianCluster {
			continue
		}
		share := float64(bestOps) / float64(vt.Total)
		if share < a.cfg.MinRemoteShare {
			continue
		}
		to := a.serverOfCluster(bestCluster)
		if to == "" || to == vt.Custodian {
			continue
		}
		reason := fmt.Sprintf("%.0f%% of %d ops come from cluster %d",
			100*share, vt.Total, bestCluster)
		p90 := a.volumeP90(vt.Volume)
		if p90 > 0 {
			// With a metrics registry attached, the recommendation cites the
			// latency users of this volume actually observe — evidence the
			// cross-cluster hops are costing something.
			reason += fmt.Sprintf("; observed p90 service time %v", p90)
		}
		recs = append(recs, Recommendation{
			Volume:      vt.Volume,
			From:        vt.Custodian,
			To:          to,
			TotalOps:    vt.Total,
			RemoteShare: share,
			P90:         p90,
			Reason:      reason,
		})
	}
	sort.Slice(recs, func(i, j int) bool {
		return float64(recs[i].TotalOps)*recs[i].RemoteShare >
			float64(recs[j].TotalOps)*recs[j].RemoteShare
	})
	return recs
}

// volumeP90 looks up the volume's observed service-time histogram in the
// cell's metrics registry (zero without one, or before any observation).
func (a *Advisor) volumeP90(vol uint32) time.Duration {
	h := a.cell.Metrics.FindHistogram(vice.VolLatencyMetric(vol))
	if h == nil || h.Count() == 0 {
		return 0
	}
	return h.Quantile(0.90)
}

func (a *Advisor) clusterOfServer(name string) int {
	for _, s := range a.cell.Servers {
		if s.Vice.Name() == name {
			return s.Cluster.ID
		}
	}
	return -1
}

// Reset clears every server's access counters, starting a new observation
// window.
func (a *Advisor) Reset() {
	for _, s := range a.cell.Servers {
		s.Vice.ResetAccessStats()
	}
}

// CrossClusterFrames re-exports the backbone counter for before/after
// comparisons around an applied recommendation.
func (a *Advisor) CrossClusterFrames() int64 {
	return a.cell.Net.CrossClusterFrames()
}
