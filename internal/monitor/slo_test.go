package monitor

import (
	"strings"
	"testing"
	"time"

	"itcfs/internal/sim"
	"itcfs/internal/trace"
)

// sloHarness wires an SLO monitor over a bare observability plane — no cell
// needed: the monitor only reads histograms, exemplars and the sampler
// cadence.
type sloHarness struct {
	clock   sim.Time
	reg     *trace.Registry
	tr      *trace.Tracer
	flight  *trace.Recorder
	sampler *trace.Sampler
	mon     *SLOMonitor
}

func newSLOHarness(t *testing.T, cfg SLOConfig) *sloHarness {
	t.Helper()
	h := &sloHarness{reg: trace.NewRegistry()}
	now := func() sim.Time { return h.clock }
	h.tr = trace.New(now)
	h.flight = trace.NewRecorder(64, now)
	h.sampler = trace.NewSampler(h.reg, time.Second, 0)
	h.sampler.AttachExemplars(h.tr.TakeExemplars)
	h.mon = AttachSLO(h.sampler, h.reg, h.tr, h.flight, cfg)
	if h.mon == nil {
		t.Fatal("AttachSLO returned nil with a live sampler and registry")
	}
	return h
}

// round observes n operations of the class at the given latency, then takes
// one sampling round.
func (h *sloHarness) round(class string, n int, lat time.Duration) {
	for i := 0; i < n; i++ {
		h.reg.Histogram(class + ".latency").Observe(lat)
	}
	h.clock = h.clock.Add(time.Second)
	h.sampler.Sample(h.clock)
}

func eventsOfKind(r *trace.Recorder, kind string) []trace.Event {
	var out []trace.Event
	for _, e := range r.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

func TestSLOBurnLifecycle(t *testing.T) {
	cfg := SLOConfig{
		Objectives: []SLOObjective{{Class: trace.SpanVenusOpen, Latency: 250 * time.Millisecond, Target: 0.95}},
		Window:     2,
		BreachBurn: 2.0,
	}
	h := newSLOHarness(t, cfg)

	// Round 1: all fast — burn 0, no breach.
	h.round(trace.SpanVenusOpen, 10, time.Millisecond)
	if b := h.mon.Burn(trace.SpanVenusOpen); b != 0 {
		t.Fatalf("healthy burn = %v, want 0", b)
	}

	// Round 2: all slow — window is 10 good + 10 bad, burn = 0.5/0.05 = 10.
	h.round(trace.SpanVenusOpen, 10, time.Second)
	if b := h.mon.Burn(trace.SpanVenusOpen); b < 9.9 || b > 10.1 {
		t.Fatalf("saturated burn = %v, want ~10", b)
	}
	if !h.mon.Breaching(trace.SpanVenusOpen) {
		t.Fatal("monitor not breaching at 5x the breach burn")
	}
	breaches := eventsOfKind(h.flight, trace.EventSLOBreach)
	if len(breaches) != 1 {
		t.Fatalf("breach events = %d, want 1", len(breaches))
	}
	for _, want := range []string{"class=" + trace.SpanVenusOpen, "burn=10000m", "window_ops=20", "bad=10", "objective=250ms"} {
		if !strings.Contains(breaches[0].Detail, want) {
			t.Errorf("breach detail %q missing %q", breaches[0].Detail, want)
		}
	}

	// Round 3: still inside the episode (the slow round is still in the
	// window) — no duplicate breach event.
	h.round(trace.SpanVenusOpen, 10, time.Millisecond)
	if got := len(eventsOfKind(h.flight, trace.EventSLOBreach)); got != 1 {
		t.Fatalf("breach events after continuation = %d, want 1", got)
	}

	// Round 4: the slow round ages out — burn drops, the episode closes.
	h.round(trace.SpanVenusOpen, 10, time.Millisecond)
	if h.mon.Breaching(trace.SpanVenusOpen) {
		t.Fatal("still breaching after the window recovered")
	}
	recovers := eventsOfKind(h.flight, trace.EventSLORecover)
	if len(recovers) != 1 || !strings.Contains(recovers[0].Detail, "class="+trace.SpanVenusOpen) {
		t.Fatalf("recover events = %+v, want 1 for the class", recovers)
	}

	// The burn series rode the sampling cadence: one point per round, in
	// milli-burns.
	pts := h.sampler.Points(trace.SLOBurnSeries(trace.SpanVenusOpen))
	if len(pts) != 4 {
		t.Fatalf("burn series has %d points, want 4", len(pts))
	}
	if pts[0].V != 0 || pts[1].V != 10000 {
		t.Errorf("burn series = %+v, want 0 then 10000", pts[:2])
	}

	// WorstBurn reports the single objective.
	if class, _, ok := h.mon.WorstBurn(); !ok || class != trace.SpanVenusOpen {
		t.Errorf("WorstBurn = %q ok=%v", class, ok)
	}
}

func TestSLOBreachAttributionNamesHotServer(t *testing.T) {
	cfg := SLOConfig{
		Objectives: []SLOObjective{{Class: trace.SpanVenusOpen, Latency: 100 * time.Millisecond, Target: 0.95}},
		Window:     1,
		BreachBurn: 2.0,
	}
	h := newSLOHarness(t, cfg)

	// One sampled operation: venus.open on ws0 spends most of its time in an
	// rpc.serve span on server1 — the span the breach should blame.
	root := h.tr.Begin(nil, trace.SpanVenusOpen, "ws0")
	call := h.tr.BeginRemote(nil, root.Context(), trace.SpanRPCCall, "ws0")
	serve := h.tr.BeginRemote(nil, call.Context(), trace.SpanRPCServe, "server1")
	h.clock = h.clock.Add(800 * time.Millisecond)
	serve.End()
	h.clock = h.clock.Add(50 * time.Millisecond)
	call.SetInt(trace.AttrServerNs, int64(800*time.Millisecond))
	call.End()
	root.End()

	h.round(trace.SpanVenusOpen, 5, time.Second)
	breaches := eventsOfKind(h.flight, trace.EventSLOBreach)
	if len(breaches) != 1 {
		t.Fatalf("breach events = %d, want 1", len(breaches))
	}
	ev := breaches[0]
	if ev.Node != "server1" {
		t.Errorf("breach attributed to %q, want server1", ev.Node)
	}
	for _, want := range []string{"exemplar_trace=", "path[client=", "hot=server1", "serve=800ms"} {
		if !strings.Contains(ev.Detail, want) {
			t.Errorf("breach detail %q missing %q", ev.Detail, want)
		}
	}

	// Recovery echoes the blamed node.
	h.round(trace.SpanVenusOpen, 20, time.Millisecond)
	recovers := eventsOfKind(h.flight, trace.EventSLORecover)
	if len(recovers) != 1 || recovers[0].Node != "server1" {
		t.Fatalf("recover events = %+v, want 1 on server1", recovers)
	}
}

func TestSLODisabledAndNilSafety(t *testing.T) {
	if m := AttachSLO(nil, trace.NewRegistry(), nil, nil, SLOConfig{}); m != nil {
		t.Error("AttachSLO with nil sampler returned a monitor")
	}
	if m := AttachSLO(trace.NewSampler(nil, time.Second, 0), nil, nil, nil, SLOConfig{}); m != nil {
		t.Error("AttachSLO with nil registry returned a monitor")
	}
	var m *SLOMonitor
	if m.Burn("x") != 0 || m.Breaching("x") {
		t.Error("nil monitor reported state")
	}
	if _, _, ok := m.WorstBurn(); ok {
		t.Error("nil monitor reported a worst burn")
	}
	// An advisor without an SLO monitor must not cite burn rates.
	var a Advisor
	a.UseSLO(nil)
}

func TestSLODefaultsClampConfig(t *testing.T) {
	h := newSLOHarness(t, SLOConfig{
		Objectives: []SLOObjective{{Class: trace.SpanVenusOpen, Latency: 250 * time.Millisecond, Target: 2.5}},
	})
	// The invalid target clamps to 0.95: 1 bad of 20 is exactly burn 1.0.
	h.round(trace.SpanVenusOpen, 19, time.Millisecond)
	for i := 0; i < 1; i++ {
		h.reg.Histogram(trace.SpanVenusOpen + ".latency").Observe(time.Second)
	}
	h.clock = h.clock.Add(time.Second)
	h.sampler.Sample(h.clock)
	if b := h.mon.Burn(trace.SpanVenusOpen); b < 0.99 || b > 1.01 {
		t.Fatalf("burn with clamped target = %v, want ~1.0", b)
	}
	if h.mon.Breaching(trace.SpanVenusOpen) {
		t.Fatal("breaching at burn 1.0 with default breach threshold 2.0")
	}
}
