package monitor

import (
	"fmt"
	"strings"
	"time"

	"itcfs/internal/sim"
	"itcfs/internal/trace"
)

// The SLO layer: per-op-class virtual-time latency objectives evaluated on
// the sampling cadence, with windowed burn rates in the style of
// error-budget alerting. Where DetectOverload reads resource utilization —
// the server's view — the SLO monitor reads what clients experienced: the
// fraction of operations in the recent window that missed their class
// objective, scaled by the class's error budget. A burn rate of 1.0 spends
// the budget exactly as fast as the target allows; sustained operation above
// BreachBurn opens a breach episode, logged to the flight recorder as a
// "slo.breach" event whose detail embeds the critical-path decomposition of
// the window's worst sampled exemplar span — so the audit trail names the
// saturated server, not just the symptom. Everything derives from
// deterministic histogram windows and sampled exemplars, so breach episodes
// replay byte-identically under one seed.

// SLOObjective is one class's latency objective: at least Target of the
// class's operations should complete within Latency of virtual time.
type SLOObjective struct {
	Class   string        // root span class, e.g. trace.SpanVenusOpen
	Latency time.Duration // per-operation objective
	Target  float64       // fraction that must meet it, e.g. 0.99
}

// SLOConfig tunes the monitor.
type SLOConfig struct {
	Objectives []SLOObjective
	// Window is how many sampling rounds the rolling burn-rate window spans
	// (minimum 1; default 4).
	Window int
	// BreachBurn is the burn rate that opens a breach episode (default 2.0 —
	// spending error budget at twice the sustainable rate).
	BreachBurn float64
}

// DefaultSLOConfig returns objectives for the interactive classes the paper's
// usage-profile clients exercise, with budgets loose enough for a healthy
// cell and tight enough that a saturated server burns through them.
func DefaultSLOConfig() SLOConfig {
	return SLOConfig{
		Objectives: []SLOObjective{
			{Class: trace.SpanVenusOpen, Latency: 250 * time.Millisecond, Target: 0.95},
			{Class: trace.SpanVenusStore, Latency: 500 * time.Millisecond, Target: 0.95},
		},
		Window:     4,
		BreachBurn: 2.0,
	}
}

// sloRound is one sampling window's operation and violation counts.
type sloRound struct{ n, bad int64 }

// sloState is the monitor's per-class rolling state.
type sloState struct {
	obj      SLOObjective
	metric   string           // obj.Class + ".latency"
	hist     *trace.Histogram // lazily resolved from the registry
	last     trace.HistSnapshot
	ring     []sloRound
	burn     float64
	inBreach bool
	hot      string // node blamed at breach time, echoed on recovery
}

// SLOMonitor evaluates objectives each sampling round. Create with AttachSLO;
// like the rest of the monitor package it runs inside the single-threaded
// simulation and is not safe for concurrent use.
type SLOMonitor struct {
	cfg     SLOConfig
	reg     *trace.Registry
	tr      *trace.Tracer
	flight  *trace.Recorder
	sampler *trace.Sampler
	classes []*sloState // objective order — deterministic iteration
}

// AttachSLO builds a monitor over the cell's observability plane and hooks it
// onto the sampler's cadence: each round it windows every objective's latency
// histogram, records the burn-rate series (trace.SLOBurnSeries), and logs
// breach/recovery transitions to the flight recorder. Returns nil when the
// sampler or registry is nil (observability disabled).
func AttachSLO(s *trace.Sampler, reg *trace.Registry, tr *trace.Tracer, flight *trace.Recorder, cfg SLOConfig) *SLOMonitor {
	if s == nil || reg == nil {
		return nil
	}
	if len(cfg.Objectives) == 0 {
		cfg = DefaultSLOConfig()
	}
	if cfg.Window < 1 {
		cfg.Window = 4
	}
	if cfg.BreachBurn <= 0 {
		cfg.BreachBurn = 2.0
	}
	m := &SLOMonitor{cfg: cfg, reg: reg, tr: tr, flight: flight, sampler: s}
	for _, obj := range cfg.Objectives {
		if obj.Target <= 0 || obj.Target >= 1 {
			obj.Target = 0.95
		}
		m.classes = append(m.classes, &sloState{obj: obj, metric: obj.Class + ".latency"})
	}
	s.OnSample(m.evaluate)
	return m
}

// evaluate runs once per sampling round, after the Sampler released its lock.
func (m *SLOMonitor) evaluate(now sim.Time) {
	for _, st := range m.classes {
		if st.hist == nil {
			// Histograms appear on first observation; until then the class
			// has had no operations and burns nothing.
			st.hist = m.reg.FindHistogram(st.metric)
		}
		var n, bad int64
		if st.hist != nil {
			snap := st.hist.State(st.metric)
			for b := range snap.Buckets {
				d := snap.Buckets[b] - st.last.Buckets[b]
				if d != 0 && bucketViolates(b, st.obj.Latency) {
					bad += d
				}
			}
			n = snap.Count - st.last.Count
			st.last = snap
		}
		st.ring = append(st.ring, sloRound{n: n, bad: bad})
		if len(st.ring) > m.cfg.Window {
			st.ring = st.ring[len(st.ring)-m.cfg.Window:]
		}
		var wn, wbad int64
		for _, r := range st.ring {
			wn += r.n
			wbad += r.bad
		}
		burn := 0.0
		if wn > 0 {
			burn = float64(wbad) / float64(wn) / (1 - st.obj.Target)
		}
		st.burn = burn
		milli := int64(burn*1000 + 0.5)
		m.sampler.Record(trace.SLOBurnSeries(st.obj.Class), trace.Point{At: now, V: milli})
		breaching := wn > 0 && burn >= m.cfg.BreachBurn
		switch {
		case breaching && !st.inBreach:
			st.inBreach = true
			st.hot = m.logBreach(st, wn, wbad, milli)
		case !breaching && st.inBreach:
			st.inBreach = false
			m.flight.Log(trace.EventSLORecover, st.hot,
				fmt.Sprintf("class=%s burn=%dm window_ops=%d", st.obj.Class, milli, wn))
			st.hot = ""
		}
	}
}

// bucketViolates reports whether every observation in histogram bucket b
// exceeds the objective. Bucket b >= 1 holds microsecond counts of bit
// length b, so its lower bound is 2^(b-1) µs; comparing that bound keeps the
// violation count a deterministic (slightly conservative) function of the
// bucketed distribution.
func bucketViolates(b int, objective time.Duration) bool {
	if b == 0 {
		return false
	}
	return time.Duration(1)<<(b-1)*time.Microsecond >= objective
}

// logBreach emits the slo.breach flight event, embedding the critical-path
// decomposition of the class's worst sampled exemplar, and returns the node
// the episode is attributed to — the server behind the exemplar's slowest
// rpc.serve span, or the class name when no exemplar was sampled.
func (m *SLOMonitor) logBreach(st *sloState, wn, wbad, milli int64) string {
	hot := st.obj.Class
	var detail strings.Builder
	fmt.Fprintf(&detail, "class=%s burn=%dm window_ops=%d bad=%d objective=%v target=%.2f",
		st.obj.Class, milli, wn, wbad, st.obj.Latency, st.obj.Target)
	if ex, ok := m.sampler.WorstExemplar(st.obj.Class); ok && m.tr != nil {
		spans := m.tr.TraceSpans(ex.Trace)
		fmt.Fprintf(&detail, " exemplar_trace=%d dur=%v", ex.Trace, time.Duration(ex.Dur))
		for _, b := range trace.Analyze(spans) {
			if b.Name != st.obj.Class {
				continue
			}
			fmt.Fprintf(&detail, " path[client=%v server=%v net_queue=%v net_serial=%v net_prop=%v]",
				b.Client, b.Server, b.NetQueue, b.NetSerial, b.NetProp)
		}
		var worstServe *trace.Span
		for _, sp := range spans {
			if sp.Name() != trace.SpanRPCServe {
				continue
			}
			if worstServe == nil || sp.Duration() > worstServe.Duration() {
				worstServe = sp
			}
		}
		if worstServe != nil {
			hot = worstServe.Node()
			fmt.Fprintf(&detail, " hot=%s serve=%v", hot, time.Duration(worstServe.Duration()))
		}
	}
	m.flight.Log(trace.EventSLOBreach, hot, detail.String())
	return hot
}

// Burn returns the class's burn rate as of the last sampling round.
func (m *SLOMonitor) Burn(class string) float64 {
	if m == nil {
		return 0
	}
	for _, st := range m.classes {
		if st.obj.Class == class {
			return st.burn
		}
	}
	return 0
}

// WorstBurn returns the objective burning fastest as of the last round (ties
// keep objective order); ok is false with no objectives evaluated yet.
func (m *SLOMonitor) WorstBurn() (class string, burn float64, ok bool) {
	if m == nil {
		return "", 0, false
	}
	for _, st := range m.classes {
		if len(st.ring) == 0 {
			continue
		}
		if !ok || st.burn > burn {
			class, burn, ok = st.obj.Class, st.burn, true
		}
	}
	return class, burn, ok
}

// Breaching reports whether the class is inside a breach episode.
func (m *SLOMonitor) Breaching(class string) bool {
	if m == nil {
		return false
	}
	for _, st := range m.classes {
		if st.obj.Class == class {
			return st.inBreach
		}
	}
	return false
}
