package monitor

import (
	"testing"
	"time"

	"itcfs"
	"itcfs/internal/sim"
	"itcfs/internal/trace"
	"itcfs/internal/vice"
)

// overloadRig wires a two-server cell to a hand-driven sampler: the test
// chooses each window's utilization and per-volume ops directly, so the
// detector's window math is exercised without running a workload.
type overloadRig struct {
	cell       *itcfs.Cell
	adv        *Advisor
	s          *trace.Sampler
	volA, volB uint32
	cpu        [2]int64
	ops        map[uint32]*int64
	at         sim.Time
}

const rigCadence = 30 * time.Second

func newOverloadRig(t *testing.T) *overloadRig {
	t.Helper()
	cell := itcfs.NewCell(itcfs.CellConfig{Clusters: 2})
	rig := &overloadRig{cell: cell, adv: New(cell, DefaultConfig()), ops: map[uint32]*int64{}}
	var err error
	cell.Run(func(p *sim.Proc) {
		admin, aerr := cell.Admin(p, 0)
		if aerr != nil {
			err = aerr
			return
		}
		// Two user volumes, both hosted on server0.
		if rig.volA, err = admin.NewUserAt(p, "ua", "pw", 0, ""); err != nil {
			return
		}
		rig.volB, err = admin.NewUserAt(p, "ub", "pw", 0, "")
	})
	if err != nil {
		t.Fatalf("rig: %v", err)
	}
	rig.s = trace.NewSampler(nil, rigCadence, 0)
	for i, srv := range cell.Servers {
		i, name := i, srv.Vice.Name()
		rig.s.AddCumulative(itcfs.ServerCPUSeries(name), func() int64 { return rig.cpu[i] })
	}
	for _, vol := range []uint32{rig.volA, rig.volB} {
		n := new(int64)
		rig.ops[vol] = n
		rig.s.AddCumulative(vice.VolOpsMetric(vol), func() int64 { return *n })
	}
	rig.at = cell.Now()
	return rig
}

// window feeds one sampling round: per-server utilizations (0..1) and ops on
// the two server0 volumes.
func (r *overloadRig) window(u0, u1 float64, opsA, opsB int64) {
	r.cpu[0] += int64(u0 * float64(rigCadence))
	r.cpu[1] += int64(u1 * float64(rigCadence))
	*r.ops[r.volA] += opsA
	*r.ops[r.volB] += opsB
	r.at = r.at.Add(rigCadence)
	r.s.Sample(r.at)
}

func TestDetectOverloadSustained(t *testing.T) {
	rig := newOverloadRig(t)
	start := rig.at
	// Three calm windows, then five saturated ones running to the end.
	for i := 0; i < 3; i++ {
		rig.window(0.30, 0.10, 10, 10)
	}
	for i := 0; i < 5; i++ {
		rig.window(0.95, 0.15, 200, 40)
	}
	findings := rig.adv.DetectOverload(rig.s, DefaultOverloadConfig())
	if len(findings) != 1 {
		t.Fatalf("findings = %+v, want exactly one", findings)
	}
	hv := findings[0]
	if hv.Server != "server0" {
		t.Errorf("Server = %s", hv.Server)
	}
	if wantOnset := start.Add(4 * rigCadence); hv.Onset != wantOnset {
		t.Errorf("Onset = %v, want %v (end of the first saturated window)", hv.Onset, wantOnset)
	}
	if hv.Windows != 5 {
		t.Errorf("Windows = %d, want 5", hv.Windows)
	}
	if hv.PeakUtil < 0.90 || hv.MeanUtil < 0.90 {
		t.Errorf("PeakUtil = %.2f MeanUtil = %.2f, want ≈0.95", hv.PeakUtil, hv.MeanUtil)
	}
	if hv.Volume != rig.volA || hv.VolumeOps != 1000 {
		t.Errorf("Volume = %d ops %d, want %d ops 1000", hv.Volume, hv.VolumeOps, rig.volA)
	}
	if hv.To != "server1" {
		t.Errorf("To = %s, want server1", hv.To)
	}
	if hv.Reason == "" {
		t.Error("empty Reason")
	}
}

// TestDetectOverloadSubsided: an overload that already ended must not
// re-fire — the run has to extend to the end of the series.
func TestDetectOverloadSubsided(t *testing.T) {
	rig := newOverloadRig(t)
	for i := 0; i < 2; i++ {
		rig.window(0.30, 0.10, 10, 10)
	}
	for i := 0; i < 5; i++ {
		rig.window(0.95, 0.15, 200, 40)
	}
	for i := 0; i < 3; i++ {
		rig.window(0.40, 0.10, 10, 10)
	}
	if findings := rig.adv.DetectOverload(rig.s, DefaultOverloadConfig()); len(findings) != 0 {
		t.Errorf("subsided overload still reported: %+v", findings)
	}
}

// TestDetectOverloadDebounce: fewer than MinWindows hot windows is a spike,
// not an overload.
func TestDetectOverloadDebounce(t *testing.T) {
	rig := newOverloadRig(t)
	for i := 0; i < 6; i++ {
		rig.window(0.30, 0.10, 10, 10)
	}
	rig.window(0.95, 0.10, 100, 10)
	rig.window(0.95, 0.10, 100, 10)
	if findings := rig.adv.DetectOverload(rig.s, DefaultOverloadConfig()); len(findings) != 0 {
		t.Errorf("two-window spike reported with MinWindows=3: %+v", findings)
	}
	// One more hot window crosses the debounce threshold.
	rig.window(0.95, 0.10, 100, 10)
	if findings := rig.adv.DetectOverload(rig.s, DefaultOverloadConfig()); len(findings) != 1 {
		t.Errorf("three-window overload not reported: %+v", findings)
	}
}

// TestDetectOverloadTieBreak: equal sampled ops attribute to the lower
// volume ID, deterministically.
func TestDetectOverloadTieBreak(t *testing.T) {
	rig := newOverloadRig(t)
	for i := 0; i < 4; i++ {
		rig.window(0.95, 0.10, 50, 50)
	}
	findings := rig.adv.DetectOverload(rig.s, DefaultOverloadConfig())
	if len(findings) != 1 {
		t.Fatalf("findings = %+v", findings)
	}
	wantVol := rig.volA
	if rig.volB < wantVol {
		wantVol = rig.volB
	}
	if findings[0].Volume != wantVol {
		t.Errorf("tie broke to volume %d, want lowest ID %d", findings[0].Volume, wantVol)
	}
}

func TestMeanUtilSince(t *testing.T) {
	rig := newOverloadRig(t)
	for i := 0; i < 4; i++ {
		rig.window(0.90, 0.10, 10, 10)
	}
	cut := rig.at
	for i := 0; i < 4; i++ {
		rig.window(0.50, 0.10, 10, 10)
	}
	got := rig.adv.MeanUtilSince(rig.s, "server0", cut)
	if got < 0.49 || got > 0.51 {
		t.Errorf("MeanUtilSince = %.3f, want ≈0.50", got)
	}
	if all := rig.adv.MeanUtilSince(rig.s, "server0", 0); all < 0.69 || all > 0.71 {
		t.Errorf("MeanUtilSince(0) = %.3f, want ≈0.70", all)
	}
}

// TestDetectOverloadNilSampler: detection without telemetry yields nothing.
func TestDetectOverloadNilSampler(t *testing.T) {
	cell := itcfs.NewCell(itcfs.CellConfig{Clusters: 1})
	adv := New(cell, DefaultConfig())
	if findings := adv.DetectOverload(nil, DefaultOverloadConfig()); findings != nil {
		t.Errorf("nil sampler produced findings: %+v", findings)
	}
	if u := adv.MeanUtilSince(nil, "server0", 0); u != 0 {
		t.Errorf("MeanUtilSince on nil sampler = %v", u)
	}
}
