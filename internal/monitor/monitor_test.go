package monitor

import (
	"fmt"
	"strings"
	"testing"

	"itcfs"
	"itcfs/internal/sim"
	"itcfs/internal/trace"
)

// buildMisplaced provisions a cell where a user's volume lives on cluster
// 0's server but the user works in cluster 1 — the situation the paper's
// monitoring tools exist to detect (§3.6).
func buildMisplaced(t *testing.T, metrics *trace.Registry) (*itcfs.Cell, *itcfs.Workstation, uint32) {
	t.Helper()
	cell := itcfs.NewCell(itcfs.CellConfig{Mode: itcfs.Prototype, Clusters: 2, Metrics: metrics})
	var vid uint32
	var err error
	cell.Run(func(p *sim.Proc) {
		admin, aerr := cell.Admin(p, 0)
		if aerr != nil {
			err = aerr
			return
		}
		// Volume created (and left) on server0.
		vid, err = admin.NewUserAt(p, "mover", "pw", 0, "")
	})
	if err != nil {
		t.Fatal(err)
	}
	ws := cell.AddWorkstation(1, "dorm-ws") // but the user works in cluster 1
	cell.Run(func(p *sim.Proc) {
		if lerr := ws.Login(p, "mover", "pw"); lerr != nil {
			err = lerr
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return cell, ws, vid
}

func drive(t *testing.T, cell *itcfs.Cell, ws *itcfs.Workstation, ops int) {
	t.Helper()
	var err error
	cell.Run(func(p *sim.Proc) {
		for i := 0; i < ops; i++ {
			path := fmt.Sprintf("/vice/usr/mover/f%d", i%5)
			if i < 5 {
				if err = ws.FS.WriteFile(p, path, []byte("contents")); err != nil {
					return
				}
			}
			if _, err = ws.FS.ReadFile(p, path); err != nil {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAdvisorDetectsMisplacedVolume(t *testing.T) {
	cell, ws, vid := buildMisplaced(t, nil)
	adv := New(cell, DefaultConfig())
	adv.Reset()
	drive(t, cell, ws, 80)

	recs := adv.Recommend()
	var found *Recommendation
	for i := range recs {
		if recs[i].Volume == vid {
			found = &recs[i]
		}
	}
	if found == nil {
		t.Fatalf("no recommendation for volume %d: %+v", vid, recs)
	}
	if found.From != "server0" || found.To != "server1" {
		t.Fatalf("recommendation = %+v, want server0 -> server1", found)
	}
	if found.RemoteShare < 0.9 {
		t.Fatalf("remote share = %v, want ≈1.0 (all traffic is remote)", found.RemoteShare)
	}
}

func TestAppliedRecommendationLocalizesTraffic(t *testing.T) {
	cell, ws, vid := buildMisplaced(t, nil)
	adv := New(cell, DefaultConfig())
	adv.Reset()
	drive(t, cell, ws, 80)
	recs := adv.Recommend()
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}

	// Measure cross-cluster traffic per access burst before the move.
	before0 := cell.Net.CrossClusterFrames()
	drive(t, cell, ws, 40)
	crossBefore := cell.Net.CrossClusterFrames() - before0

	// A human operator applies the top recommendation (§3.1: reassignment
	// is human-initiated).
	var err error
	cell.Run(func(p *sim.Proc) {
		admin, aerr := cell.Admin(p, 0)
		if aerr != nil {
			err = aerr
			return
		}
		err = admin.MoveVolume(p, recs[0].Volume, recs[0].To)
	})
	if err != nil {
		t.Fatal(err)
	}

	after0 := cell.Net.CrossClusterFrames()
	drive(t, cell, ws, 40)
	crossAfter := cell.Net.CrossClusterFrames() - after0
	if crossAfter >= crossBefore {
		t.Fatalf("cross-cluster frames per burst: %d before, %d after move", crossBefore, crossAfter)
	}

	// A new observation window shows the volume well placed: no further
	// recommendation for it.
	adv.Reset()
	drive(t, cell, ws, 80)
	for _, r := range adv.Recommend() {
		if r.Volume == vid {
			t.Fatalf("volume still recommended for a move after relocation: %+v", r)
		}
	}
}

func TestAdvisorIgnoresQuietAndLocalVolumes(t *testing.T) {
	cell, ws, _ := buildMisplaced(t, nil)
	adv := New(cell, DefaultConfig())
	adv.Reset()
	// Too few operations to justify a move.
	drive(t, cell, ws, 3)
	if recs := adv.Recommend(); len(recs) != 0 {
		t.Fatalf("advisor recommended on %d ops: %+v", 3, recs)
	}

	// A well-placed volume (custodian in the user's own cluster) is never
	// recommended regardless of volume of traffic.
	var err error
	cell.Run(func(p *sim.Proc) {
		admin, aerr := cell.Admin(p, 0)
		if aerr != nil {
			err = aerr
			return
		}
		_, err = admin.NewUserAt(p, "localuser", "pw", 0, "server0")
	})
	if err != nil {
		t.Fatal(err)
	}
	local := cell.AddWorkstation(0, "office-ws")
	cell.Run(func(p *sim.Proc) {
		if lerr := local.Login(p, "localuser", "pw"); lerr != nil {
			err = lerr
			return
		}
		for i := 0; i < 100; i++ {
			path := "/vice/usr/localuser/f"
			if i == 0 {
				if err = local.FS.WriteFile(p, path, []byte("x")); err != nil {
					return
				}
			}
			if _, err = local.FS.ReadFile(p, path); err != nil {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	adv.Reset()
	cell.Run(func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			if _, err = local.FS.ReadFile(p, "/vice/usr/localuser/f"); err != nil {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range adv.Recommend() {
		if r.From == "server0" && r.To == "server0" {
			t.Fatalf("degenerate recommendation: %+v", r)
		}
		if r.Reason == "" {
			t.Fatalf("recommendation without reason: %+v", r)
		}
	}
}

func TestAdvisorCitesObservedLatency(t *testing.T) {
	cell, ws, vid := buildMisplaced(t, trace.NewRegistry())
	adv := New(cell, DefaultConfig())
	adv.Reset()
	drive(t, cell, ws, 80)

	var found *Recommendation
	recs := adv.Recommend()
	for i := range recs {
		if recs[i].Volume == vid {
			found = &recs[i]
		}
	}
	if found == nil {
		t.Fatalf("no recommendation for volume %d: %+v", vid, recs)
	}
	if found.P90 <= 0 {
		t.Fatalf("P90 = %v, want observed latency from the metrics registry", found.P90)
	}
	if !strings.Contains(found.Reason, "p90") {
		t.Fatalf("reason %q does not cite the observed p90", found.Reason)
	}
}
