package secure

import (
	"crypto/rand"
	"crypto/subtle"
	"errors"
	"fmt"

	"itcfs/internal/wire"
)

// The authentication handshake of Section 3.4. Vice and Virtue start as
// mutually suspicious parties sharing the user's authentication key; neither
// trusts the other's claimed identity until the challenge exchange
// completes. Four messages:
//
//	1. C -> S  user (clear) || Seal_K(Nc)
//	2. S -> C  Seal_K(Nc+1 || Ns)            server proves knowledge of K
//	3. C -> S  Seal_K(Ns+1)                  client proves knowledge of K
//	4. S -> C  Seal_K(session key)           fresh per-session key
//
// All further traffic is sealed under the session key, limiting exposure of
// the long-term key (per-session encryption keys, §3.4).

// ErrAuthFailed is returned when a handshake step fails verification: an
// unknown user, a wrong key, a replayed or tampered message.
var ErrAuthFailed = errors.New("secure: authentication failed")

const nonceLen = 16

type nonce [nonceLen]byte

func newNonce() nonce {
	var n nonce
	if _, err := rand.Read(n[:]); err != nil {
		panic(fmt.Sprintf("secure: nonce: %v", err))
	}
	return n
}

// incremented returns the nonce interpreted as a big-endian integer plus one.
func (n nonce) incremented() nonce {
	out := n
	for i := nonceLen - 1; i >= 0; i-- {
		out[i]++
		if out[i] != 0 {
			break
		}
	}
	return out
}

// ClientHandshake drives the workstation side of the handshake.
type ClientHandshake struct {
	user string
	box  *Box
	nc   nonce
	ns   nonce
}

// NewClientHandshake prepares a handshake for user, whose long-term key is
// key (typically DeriveKey(user, password)).
func NewClientHandshake(user string, key Key) *ClientHandshake {
	return &ClientHandshake{user: user, box: NewBox(key), nc: newNonce()}
}

// Hello produces message 1.
func (c *ClientHandshake) Hello() []byte {
	var e wire.Encoder
	e.String(c.user)
	e.Bytes(c.box.Seal(c.nc[:]))
	return append([]byte(nil), e.Buf()...)
}

// Proof consumes message 2 and produces message 3. A non-nil error means the
// server failed to prove knowledge of the shared key.
func (c *ClientHandshake) Proof(challenge []byte) ([]byte, error) {
	plain, err := c.box.Open(challenge)
	if err != nil || len(plain) != 2*nonceLen {
		return nil, ErrAuthFailed
	}
	wantNc := c.nc.incremented()
	if subtle.ConstantTimeCompare(plain[:nonceLen], wantNc[:]) != 1 {
		return nil, ErrAuthFailed
	}
	copy(c.ns[:], plain[nonceLen:])
	nsPlus := c.ns.incremented()
	return c.box.Seal(nsPlus[:]), nil
}

// Session consumes message 4 and returns the session key.
func (c *ClientHandshake) Session(final []byte) (Key, error) {
	plain, err := c.box.Open(final)
	if err != nil || len(plain) != KeySize {
		return Key{}, ErrAuthFailed
	}
	var k Key
	copy(k[:], plain)
	return k, nil
}

// KeyLookup resolves a user name to its long-term authentication key. It is
// how the server side consults the (replicated) authentication database.
type KeyLookup func(user string) (Key, bool)

// ServerHandshake drives the Vice side of the handshake for one connection.
type ServerHandshake struct {
	lookup KeyLookup
	user   string
	box    *Box
	ns     nonce
}

// NewServerHandshake prepares the server side with the given key database.
func NewServerHandshake(lookup KeyLookup) *ServerHandshake {
	return &ServerHandshake{lookup: lookup}
}

// User returns the identity claimed in Hello. It is authenticated only after
// Complete succeeds.
func (s *ServerHandshake) User() string { return s.user }

// Challenge consumes message 1 and produces message 2. Unknown users and
// undecipherable hellos are both reported as ErrAuthFailed so an attacker
// cannot probe for valid user names.
func (s *ServerHandshake) Challenge(hello []byte) ([]byte, error) {
	d := wire.NewDecoder(hello)
	user := d.String()
	sealed := d.Bytes()
	if d.Close() != nil {
		return nil, ErrAuthFailed
	}
	key, ok := s.lookup(user)
	if !ok {
		// Proceed with a random key: the reply will be garbage, indistinguishable
		// from a wrong password.
		key, _ = NewSessionKey()
	}
	s.user = user
	s.box = NewBox(key)
	plainNc, err := s.box.Open(sealed)
	if err != nil || len(plainNc) != nonceLen {
		return nil, ErrAuthFailed
	}
	var nc nonce
	copy(nc[:], plainNc)
	ncPlus := nc.incremented()
	s.ns = newNonce()
	return s.box.Seal(append(ncPlus[:], s.ns[:]...)), nil
}

// Complete consumes message 3 and produces message 4 plus the session key.
func (s *ServerHandshake) Complete(proof []byte) ([]byte, Key, error) {
	if s.box == nil {
		return nil, Key{}, ErrAuthFailed
	}
	plain, err := s.box.Open(proof)
	if err != nil || len(plain) != nonceLen {
		return nil, Key{}, ErrAuthFailed
	}
	wantNs := s.ns.incremented()
	if subtle.ConstantTimeCompare(plain, wantNs[:]) != 1 {
		return nil, Key{}, ErrAuthFailed
	}
	session, err := NewSessionKey()
	if err != nil {
		return nil, Key{}, err
	}
	return s.box.Seal(session[:]), session, nil
}

// HandshakeMessages is the number of messages exchanged before the session
// key is established; transports use it to size cost accounting.
const HandshakeMessages = 4
