// Package secure implements the security machinery of Section 3.4: key
// derivation from user-supplied passwords (the password itself never crosses
// the wire), an encryption-based mutual authentication handshake between
// mutually suspicious parties sharing a key, per-session key generation, and
// sealed (encrypted and integrity-protected) records for all subsequent
// communication on a connection.
//
// The paper assumed cheap DES hardware; here records are sealed with
// AES-256-CTR and authenticated with HMAC-SHA256 (encrypt-then-MAC). The
// semantics — mutual suspicion, per-session keys limiting exposure of the
// long-term authentication key, an untrusted network — are exactly the
// paper's.
package secure

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
)

// KeySize is the byte length of all keys in this package.
const KeySize = 32

// Key is long-term or session key material.
type Key [KeySize]byte

// deriveIters is the password-stretching iteration count. Modest by modern
// standards but this is a closed simulation, not a password vault.
const deriveIters = 4096

// DeriveKey stretches a user password into an authentication key. The user
// name salts the derivation so equal passwords yield distinct keys.
func DeriveKey(user, password string) Key {
	h := sha256.Sum256([]byte("itcfs-v1|" + user + "|" + password))
	for i := 0; i < deriveIters; i++ {
		mix := sha256.New()
		mix.Write(h[:])
		var ctr [4]byte
		binary.LittleEndian.PutUint32(ctr[:], uint32(i))
		mix.Write(ctr[:])
		mix.Sum(h[:0])
	}
	return Key(h)
}

// NewSessionKey returns a fresh random key.
func NewSessionKey() (Key, error) {
	var k Key
	if _, err := rand.Read(k[:]); err != nil {
		return Key{}, fmt.Errorf("secure: session key: %w", err)
	}
	return k, nil
}

// subkey derives a purpose-specific key from k.
func subkey(k Key, purpose string) []byte {
	m := hmac.New(sha256.New, k[:])
	m.Write([]byte(purpose))
	return m.Sum(nil)
}

// Sealed-record layout: nonce (16) || ciphertext (len(plain)) || tag (32).
const (
	nonceSize = aes.BlockSize
	tagSize   = sha256.Size
	// Overhead is the fixed byte cost Seal adds to a plaintext.
	Overhead = nonceSize + tagSize
)

// ErrBadSeal is returned when a sealed record fails authentication or is
// malformed. Callers must treat it as evidence of tampering or a wrong key.
var ErrBadSeal = errors.New("secure: record failed authentication")

// Box seals and opens records under one key. A Box is safe for concurrent
// use.
type Box struct {
	block  cipher.Block
	macKey []byte
}

// NewBox returns a Box keyed by k.
func NewBox(k Key) *Box {
	block, err := aes.NewCipher(subkey(k, "encrypt"))
	if err != nil {
		panic(err) // key length is fixed; cannot happen
	}
	return &Box{block: block, macKey: subkey(k, "mac")}
}

// Seal encrypts and authenticates plain, returning nonce||ct||tag.
func (b *Box) Seal(plain []byte) []byte {
	out := make([]byte, nonceSize+len(plain)+tagSize)
	nonce := out[:nonceSize]
	if _, err := rand.Read(nonce); err != nil {
		panic(fmt.Sprintf("secure: nonce: %v", err))
	}
	ct := out[nonceSize : nonceSize+len(plain)]
	cipher.NewCTR(b.block, nonce).XORKeyStream(ct, plain)
	mac := hmac.New(sha256.New, b.macKey)
	mac.Write(out[:nonceSize+len(plain)])
	mac.Sum(out[:nonceSize+len(plain)])
	return out
}

// Open authenticates and decrypts a record produced by Seal.
func (b *Box) Open(sealed []byte) ([]byte, error) {
	if len(sealed) < Overhead {
		return nil, ErrBadSeal
	}
	body := sealed[:len(sealed)-tagSize]
	tag := sealed[len(sealed)-tagSize:]
	mac := hmac.New(sha256.New, b.macKey)
	mac.Write(body)
	if subtle.ConstantTimeCompare(mac.Sum(nil), tag) != 1 {
		return nil, ErrBadSeal
	}
	nonce := body[:nonceSize]
	ct := body[nonceSize:]
	plain := make([]byte, len(ct))
	cipher.NewCTR(b.block, nonce).XORKeyStream(plain, ct)
	return plain, nil
}
