// Package secure implements the security machinery of Section 3.4: key
// derivation from user-supplied passwords (the password itself never crosses
// the wire), an encryption-based mutual authentication handshake between
// mutually suspicious parties sharing a key, per-session key generation, and
// sealed (encrypted and integrity-protected) records for all subsequent
// communication on a connection.
//
// The paper assumed cheap DES hardware; here records are sealed with
// AES-256-CTR and authenticated with HMAC-SHA256 (encrypt-then-MAC). The
// semantics — mutual suspicion, per-session keys limiting exposure of the
// long-term authentication key, an untrusted network — are exactly the
// paper's.
package secure

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"sync"
	"sync/atomic"
)

// KeySize is the byte length of all keys in this package.
const KeySize = 32

// Key is long-term or session key material.
type Key [KeySize]byte

// deriveIters is the password-stretching iteration count. Modest by modern
// standards but this is a closed simulation, not a password vault.
const deriveIters = 4096

// derivedKeys memoizes DeriveKey. The derivation is a pure function of
// (user, password) and deliberately expensive; a simulation logging in tens
// of thousands of workstation users with a handful of distinct credentials
// would otherwise spend a measurable fraction of its CPU re-stretching the
// same passwords.
var derivedKeys sync.Map // string(user\x00password) -> Key

// DeriveKey stretches a user password into an authentication key. The user
// name salts the derivation so equal passwords yield distinct keys.
func DeriveKey(user, password string) Key {
	memoKey := user + "\x00" + password
	if k, ok := derivedKeys.Load(memoKey); ok {
		return k.(Key)
	}
	h := sha256.Sum256([]byte("itcfs-v1|" + user + "|" + password))
	mix := sha256.New()
	for i := 0; i < deriveIters; i++ {
		mix.Reset()
		mix.Write(h[:])
		var ctr [4]byte
		binary.LittleEndian.PutUint32(ctr[:], uint32(i))
		mix.Write(ctr[:])
		mix.Sum(h[:0])
	}
	derivedKeys.Store(memoKey, Key(h))
	return Key(h)
}

// NewSessionKey returns a fresh random key.
func NewSessionKey() (Key, error) {
	var k Key
	if _, err := rand.Read(k[:]); err != nil {
		return Key{}, fmt.Errorf("secure: session key: %w", err)
	}
	return k, nil
}

// subkey derives a purpose-specific key from k.
func subkey(k Key, purpose string) []byte {
	m := hmac.New(sha256.New, k[:])
	m.Write([]byte(purpose))
	return m.Sum(nil)
}

// Sealed-record layout: nonce (16) || ciphertext (len(plain)) || tag (32).
const (
	nonceSize = aes.BlockSize
	tagSize   = sha256.Size
	// Overhead is the fixed byte cost Seal adds to a plaintext.
	Overhead = nonceSize + tagSize
)

// ErrBadSeal is returned when a sealed record fails authentication or is
// malformed. Callers must treat it as evidence of tampering or a wrong key.
var ErrBadSeal = errors.New("secure: record failed authentication")

// Box seals and opens records under one key. A Box is safe for concurrent
// use.
//
// Nonces are structured rather than random, saving a system-entropy read per
// record: 8 random bytes fixed at Box creation (so two Boxes sealing under
// the same key cannot collide), a 32-bit record counter, and 4 zero bytes
// left for CTR's own block counter — records up to 2^32 AES blocks (64 GiB)
// cannot run into the next record's keystream. HMAC states are pooled and
// reset rather than re-keyed per record — at tens of thousands of simulated
// clients, per-message hmac.New was the single largest allocation site in
// the whole system.
type Box struct {
	block       cipher.Block
	macKey      []byte
	noncePrefix [8]byte
	nonceCtr    atomic.Uint64
	macs        sync.Pool // *hash.Hash (HMAC-SHA256 keyed by macKey)
}

// NewBox returns a Box keyed by k.
func NewBox(k Key) *Box {
	block, err := aes.NewCipher(subkey(k, "encrypt"))
	if err != nil {
		panic(err) // key length is fixed; cannot happen
	}
	b := &Box{block: block, macKey: subkey(k, "mac")}
	if _, err := rand.Read(b.noncePrefix[:]); err != nil {
		panic(fmt.Sprintf("secure: nonce prefix: %v", err))
	}
	b.macs.New = func() any {
		m := hmac.New(sha256.New, b.macKey)
		return &m
	}
	return b
}

// ctrXOR encrypts (or decrypts — CTR is symmetric) src into dst under
// nonce. The stream state is one short-lived allocation per record; a
// hand-rolled stack-counter loop was tried and lost badly, because it forces
// one cipher.Block.Encrypt interface call per 16-byte block where the
// stdlib stream runs eight blocks per assembly dispatch.
func (b *Box) ctrXOR(nonce, dst, src []byte) {
	cipher.NewCTR(b.block, nonce).XORKeyStream(dst, src)
}

// mac computes HMAC(macKey, body) into out (which must have tagSize spare
// capacity) using a pooled state.
func (b *Box) mac(body, out []byte) []byte {
	mp := b.macs.Get().(*hash.Hash)
	m := *mp
	m.Reset()
	m.Write(body)
	out = m.Sum(out)
	b.macs.Put(mp)
	return out
}

// Seal encrypts and authenticates plain, returning nonce||ct||tag.
func (b *Box) Seal(plain []byte) []byte {
	out := make([]byte, nonceSize+len(plain), nonceSize+len(plain)+tagSize)
	nonce := out[:nonceSize]
	copy(nonce, b.noncePrefix[:])
	ctr := b.nonceCtr.Add(1)
	if ctr>>32 != 0 {
		panic("secure: nonce counter exhausted")
	}
	binary.BigEndian.PutUint32(nonce[8:12], uint32(ctr))
	ct := out[nonceSize:]
	b.ctrXOR(nonce, ct, plain)
	return b.mac(out, out)
}

// Open authenticates and decrypts a record produced by Seal.
func (b *Box) Open(sealed []byte) ([]byte, error) {
	if len(sealed) < Overhead {
		return nil, ErrBadSeal
	}
	body := sealed[:len(sealed)-tagSize]
	tag := sealed[len(sealed)-tagSize:]
	var sum [tagSize]byte
	if subtle.ConstantTimeCompare(b.mac(body, sum[:0]), tag) != 1 {
		return nil, ErrBadSeal
	}
	nonce := body[:nonceSize]
	ct := body[nonceSize:]
	plain := make([]byte, len(ct))
	b.ctrXOR(nonce, plain, ct)
	return plain, nil
}
