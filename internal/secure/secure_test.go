package secure

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestDeriveKeyDeterministic(t *testing.T) {
	a := DeriveKey("satya", "hunter2")
	b := DeriveKey("satya", "hunter2")
	if a != b {
		t.Fatal("same user/password derived different keys")
	}
}

func TestDeriveKeySaltsByUser(t *testing.T) {
	a := DeriveKey("satya", "hunter2")
	b := DeriveKey("howard", "hunter2")
	if a == b {
		t.Fatal("different users with same password derived equal keys")
	}
}

func TestDeriveKeyPasswordSensitive(t *testing.T) {
	a := DeriveKey("satya", "hunter2")
	b := DeriveKey("satya", "hunter3")
	if a == b {
		t.Fatal("different passwords derived equal keys")
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	k, err := NewSessionKey()
	if err != nil {
		t.Fatal(err)
	}
	box := NewBox(k)
	for _, plain := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("vice"), 1000)} {
		sealed := box.Seal(plain)
		if len(sealed) != len(plain)+Overhead {
			t.Fatalf("sealed length %d, want %d", len(sealed), len(plain)+Overhead)
		}
		got, err := box.Open(sealed)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		if !bytes.Equal(got, plain) {
			t.Fatalf("round trip mismatch: %q != %q", got, plain)
		}
	}
}

func TestSealNoncesDiffer(t *testing.T) {
	box := NewBox(DeriveKey("u", "p"))
	a := box.Seal([]byte("same plaintext"))
	b := box.Seal([]byte("same plaintext"))
	if bytes.Equal(a, b) {
		t.Fatal("two seals of the same plaintext produced identical records")
	}
}

func TestOpenDetectsTampering(t *testing.T) {
	box := NewBox(DeriveKey("u", "p"))
	sealed := box.Seal([]byte("the store request"))
	for _, i := range []int{0, nonceSize + 3, len(sealed) - 1} {
		mutated := append([]byte(nil), sealed...)
		mutated[i] ^= 0x01
		if _, err := box.Open(mutated); err != ErrBadSeal {
			t.Errorf("flip at %d: err = %v, want ErrBadSeal", i, err)
		}
	}
}

func TestOpenRejectsWrongKey(t *testing.T) {
	sealed := NewBox(DeriveKey("u", "right")).Seal([]byte("secret"))
	if _, err := NewBox(DeriveKey("u", "wrong")).Open(sealed); err != ErrBadSeal {
		t.Fatalf("err = %v, want ErrBadSeal", err)
	}
}

func TestOpenRejectsShortRecord(t *testing.T) {
	box := NewBox(DeriveKey("u", "p"))
	for _, n := range []int{0, 1, Overhead - 1} {
		if _, err := box.Open(make([]byte, n)); err != ErrBadSeal {
			t.Errorf("len %d: err = %v, want ErrBadSeal", n, err)
		}
	}
}

func TestNonceIncrement(t *testing.T) {
	var n nonce
	n[nonceLen-1] = 0xFF
	inc := n.incremented()
	if inc[nonceLen-1] != 0 || inc[nonceLen-2] != 1 {
		t.Fatalf("carry failed: %v", inc)
	}
	var all nonce
	for i := range all {
		all[i] = 0xFF
	}
	wrapped := all.incremented()
	for i := range wrapped {
		if wrapped[i] != 0 {
			t.Fatalf("wraparound failed: %v", wrapped)
		}
	}
}

func lookupDB(db map[string]Key) KeyLookup {
	return func(u string) (Key, bool) {
		k, ok := db[u]
		return k, ok
	}
}

func TestHandshakeSuccess(t *testing.T) {
	key := DeriveKey("satya", "pw")
	client := NewClientHandshake("satya", key)
	server := NewServerHandshake(lookupDB(map[string]Key{"satya": key}))

	challenge, err := server.Challenge(client.Hello())
	if err != nil {
		t.Fatalf("Challenge: %v", err)
	}
	proof, err := client.Proof(challenge)
	if err != nil {
		t.Fatalf("Proof: %v", err)
	}
	final, serverKey, err := server.Complete(proof)
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}
	clientKey, err := client.Session(final)
	if err != nil {
		t.Fatalf("Session: %v", err)
	}
	if clientKey != serverKey {
		t.Fatal("session keys disagree")
	}
	if server.User() != "satya" {
		t.Fatalf("User = %q", server.User())
	}
	// The session key actually works for record sealing both ways.
	cb, sb := NewBox(clientKey), NewBox(serverKey)
	msg, err := sb.Open(cb.Seal([]byte("fetch /vice/usr/satya/paper.mss")))
	if err != nil || string(msg) != "fetch /vice/usr/satya/paper.mss" {
		t.Fatalf("session channel broken: %v %q", err, msg)
	}
}

func TestHandshakeWrongPassword(t *testing.T) {
	server := NewServerHandshake(lookupDB(map[string]Key{"satya": DeriveKey("satya", "right")}))
	client := NewClientHandshake("satya", DeriveKey("satya", "wrong"))
	if _, err := server.Challenge(client.Hello()); err != ErrAuthFailed {
		t.Fatalf("Challenge err = %v, want ErrAuthFailed", err)
	}
}

func TestHandshakeUnknownUser(t *testing.T) {
	server := NewServerHandshake(lookupDB(map[string]Key{}))
	client := NewClientHandshake("ghost", DeriveKey("ghost", "pw"))
	if _, err := server.Challenge(client.Hello()); err != ErrAuthFailed {
		t.Fatalf("Challenge err = %v, want ErrAuthFailed", err)
	}
}

// An impostor server (no knowledge of the key) cannot convince the client:
// the client rejects a challenge built with the wrong key.
func TestHandshakeImpostorServer(t *testing.T) {
	realKey := DeriveKey("satya", "pw")
	client := NewClientHandshake("satya", realKey)
	impostorKey := DeriveKey("satya", "guess")
	impostor := NewServerHandshake(lookupDB(map[string]Key{"satya": impostorKey}))
	challenge, err := impostor.Challenge(client.Hello())
	if err == nil {
		// The impostor can only produce a challenge if Open happened to pass,
		// which it cannot with a different key.
		if _, err := client.Proof(challenge); err != ErrAuthFailed {
			t.Fatalf("client accepted impostor challenge: %v", err)
		}
	}
}

func TestHandshakeTamperedChallenge(t *testing.T) {
	key := DeriveKey("u", "p")
	client := NewClientHandshake("u", key)
	server := NewServerHandshake(lookupDB(map[string]Key{"u": key}))
	challenge, err := server.Challenge(client.Hello())
	if err != nil {
		t.Fatal(err)
	}
	challenge[5] ^= 0xFF
	if _, err := client.Proof(challenge); err != ErrAuthFailed {
		t.Fatalf("Proof err = %v, want ErrAuthFailed", err)
	}
}

func TestHandshakeReplayedProofFails(t *testing.T) {
	key := DeriveKey("u", "p")
	// First, a full legitimate handshake; capture the proof.
	c1 := NewClientHandshake("u", key)
	s1 := NewServerHandshake(lookupDB(map[string]Key{"u": key}))
	ch1, _ := s1.Challenge(c1.Hello())
	proof1, _ := c1.Proof(ch1)
	if _, _, err := s1.Complete(proof1); err != nil {
		t.Fatal(err)
	}
	// Replay the captured proof against a new server handshake (fresh Ns):
	// it must fail because the server nonce differs.
	c2 := NewClientHandshake("u", key)
	s2 := NewServerHandshake(lookupDB(map[string]Key{"u": key}))
	if _, err := s2.Challenge(c2.Hello()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s2.Complete(proof1); err != ErrAuthFailed {
		t.Fatalf("replayed proof accepted: %v", err)
	}
}

func TestHandshakeGarbageHello(t *testing.T) {
	server := NewServerHandshake(lookupDB(map[string]Key{}))
	if _, err := server.Challenge([]byte{1, 2, 3}); err != ErrAuthFailed {
		t.Fatalf("err = %v, want ErrAuthFailed", err)
	}
}

func TestCompleteBeforeChallenge(t *testing.T) {
	server := NewServerHandshake(lookupDB(map[string]Key{}))
	if _, _, err := server.Complete([]byte("x")); err != ErrAuthFailed {
		t.Fatalf("err = %v, want ErrAuthFailed", err)
	}
}

// Property: sealed records round-trip for arbitrary plaintexts and never
// authenticate under a different key.
func TestQuickSealOpen(t *testing.T) {
	boxA := NewBox(DeriveKey("a", "a"))
	boxB := NewBox(DeriveKey("b", "b"))
	f := func(plain []byte) bool {
		sealed := boxA.Seal(plain)
		got, err := boxA.Open(sealed)
		if err != nil || !bytes.Equal(got, plain) {
			return false
		}
		_, err = boxB.Open(sealed)
		return err == ErrBadSeal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
