package proto

// Round-trip, lying-count, truncation and fuzz coverage for the
// replica-carrying location messages. The replica lists ride the
// server-to-server LocInstall broadcast and the GetCustodian reply, so a
// corrupt or hostile count must fail fast instead of silently shortening a
// replica set — Venus would then never fail over to the missing sites.

import (
	"bytes"
	"reflect"
	"testing"

	"itcfs/internal/wire"
)

func TestLocEntryReplicasRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		le   LocEntry
	}{
		{"no replicas", LocEntry{Prefix: "/vice/bin", Volume: 7, Custodian: "server0"}},
		{"one replica", LocEntry{Prefix: "/vice/bin", Volume: 7, Custodian: "server0",
			Replicas: []string{"server1"}}},
		{"replica set", LocEntry{Prefix: "/vice/unix/bin-ro", Volume: 31, Custodian: "cluster2",
			Replicas: []string{"cluster0", "cluster1", "cluster3"}}},
		{"empty names", LocEntry{Prefix: "/", Volume: 1, Custodian: "",
			Replicas: []string{"", "x"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body := Marshal(tc.le)
			got, err := Unmarshal(body, DecodeLocEntry)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(got, tc.le) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tc.le)
			}
			if !bytes.Equal(Marshal(got), body) {
				t.Fatal("re-encoding decoded entry is not byte-identical")
			}
		})
	}
}

// TestLocMessagesRejectLyingCounts feeds each replica-list decoder a count
// far beyond the bytes present: every one must error instead of allocating
// or looping.
func TestLocMessagesRejectLyingCounts(t *testing.T) {
	// LocEntry: valid prefix, volume, custodian, then a lying replica count.
	var e wire.Encoder
	e.String("/vice/bin")
	e.U32(7)
	e.String("server0")
	e.U32(1 << 30)
	if _, err := Unmarshal(e.Buf(), DecodeLocEntry); err == nil {
		t.Error("LocEntry accepted a lying replica count")
	}

	e.Reset()
	e.String("/vice/bin")
	e.U32(7)
	e.String("server0")
	e.U32(1 << 30)
	if _, err := Unmarshal(e.Buf(), DecodeCustodianReply); err == nil {
		t.Error("CustodianReply accepted a lying replica count")
	}

	e.Reset()
	e.U32(7)
	e.String("/vice/bin")
	e.U32(1 << 30)
	if _, err := Unmarshal(e.Buf(), DecodeVolCloneArgs); err == nil {
		t.Error("VolCloneArgs accepted a lying replica count")
	}

	// LocInstallArgs: lying entry count, then lying remove count after a
	// valid empty entry list.
	e.Reset()
	e.U32(1 << 30)
	if _, err := Unmarshal(e.Buf(), DecodeLocInstallArgs); err == nil {
		t.Error("LocInstallArgs accepted a lying entry count")
	}
	e.Reset()
	e.U32(0)
	e.U32(1 << 30)
	if _, err := Unmarshal(e.Buf(), DecodeLocInstallArgs); err == nil {
		t.Error("LocInstallArgs accepted a lying remove count")
	}
}

// TestLocEntryTruncations decodes every strict prefix of a valid encoding:
// none may panic, none may succeed.
func TestLocEntryTruncations(t *testing.T) {
	le := LocEntry{Prefix: "/vice/unix/bin-ro", Volume: 31, Custodian: "cluster2",
		Replicas: []string{"cluster0", "cluster1"}}
	body := Marshal(le)
	for n := 0; n < len(body); n++ {
		if _, err := Unmarshal(body[:n], DecodeLocEntry); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded without error", n, len(body))
		}
	}
	args := LocInstallArgs{Entries: []LocEntry{le}, Remove: []string{"/old"}}
	body = Marshal(args)
	for n := 0; n < len(body); n++ {
		if _, err := Unmarshal(body[:n], DecodeLocInstallArgs); err == nil {
			t.Fatalf("LocInstallArgs truncation to %d/%d bytes decoded without error", n, len(body))
		}
	}
}

// FuzzLocEntry hammers the location-entry decoders with arbitrary bodies.
// Any input may be rejected, but a decode that succeeds must re-encode
// byte-identically — the canonical-encoding property the deterministic
// broadcasts rely on.
func FuzzLocEntry(f *testing.F) {
	f.Add([]byte{})
	f.Add(Marshal(LocEntry{Prefix: "/vice/bin", Volume: 7, Custodian: "server0",
		Replicas: []string{"server1", "server2"}}))
	f.Add(Marshal(LocInstallArgs{
		Entries: []LocEntry{{Prefix: "/a", Volume: 1, Custodian: "s0", Replicas: []string{"s1"}}},
		Remove:  []string{"/b"},
	}))
	f.Fuzz(func(t *testing.T, body []byte) {
		if le, err := Unmarshal(body, DecodeLocEntry); err == nil {
			if !bytes.Equal(Marshal(le), body) {
				t.Fatal("LocEntry decode/encode not canonical")
			}
		}
		if args, err := Unmarshal(body, DecodeLocInstallArgs); err == nil {
			if !bytes.Equal(Marshal(args), body) {
				t.Fatal("LocInstallArgs decode/encode not canonical")
			}
		}
		if cr, err := Unmarshal(body, DecodeCustodianReply); err == nil {
			if !bytes.Equal(Marshal(cr), body) {
				t.Fatal("CustodianReply decode/encode not canonical")
			}
		}
	})
}
