package proto

import (
	"errors"
	"testing"
	"testing/quick"

	"itcfs/internal/prot"
	"itcfs/internal/wire"
)

func TestFIDRoundTripAndString(t *testing.T) {
	f := FID{Volume: 7, Vnode: 42, Uniq: 3}
	var e wire.Encoder
	f.Encode(&e)
	d := wire.NewDecoder(e.Buf())
	if got := DecodeFID(d); got != f {
		t.Fatalf("round trip: %v != %v", got, f)
	}
	if f.String() != "7.42.3" {
		t.Fatalf("String = %q", f.String())
	}
	if f.IsZero() || (FID{}).IsZero() != true {
		t.Fatal("IsZero wrong")
	}
}

func TestRefModes(t *testing.T) {
	byPath := Ref{Path: "/usr/satya/f"}
	if byPath.ByFID() {
		t.Fatal("path ref claims FID")
	}
	byFID := Ref{FID: FID{1, 2, 3}}
	if !byFID.ByFID() {
		t.Fatal("FID ref not recognized")
	}
	if byPath.String() != "/usr/satya/f" || byFID.String() != "1.2.3" {
		t.Fatal("String forms wrong")
	}
}

func TestStatusRoundTrip(t *testing.T) {
	s := Status{
		FID:     FID{1, 2, 3},
		Type:    TypeSymlink,
		Size:    12345,
		Version: 99,
		Mtime:   -7,
		Owner:   "satya",
		Mode:    0o644,
		Links:   2,
		Target:  "/vice/bin",
	}
	var e wire.Encoder
	s.Encode(&e)
	d := wire.NewDecoder(e.Buf())
	got := DecodeStatus(d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("round trip: %+v != %+v", got, s)
	}
}

func TestDirEntriesRoundTrip(t *testing.T) {
	entries := []DirEntry{
		{Name: "paper.mss", FID: FID{1, 5, 1}, Type: TypeFile},
		{Name: "src", FID: FID{1, 6, 1}, Type: TypeDir},
		{Name: "bin", FID: FID{1, 7, 2}, Type: TypeSymlink},
	}
	data := EncodeDirEntries(entries)
	got, err := DecodeDirEntries(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range entries {
		if got[i] != entries[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got[i], entries[i])
		}
	}
	if _, err := DecodeDirEntries([]byte("junk")); err == nil {
		t.Fatal("garbage directory accepted")
	}
	empty, err := DecodeDirEntries(EncodeDirEntries(nil))
	if err != nil || len(empty) != 0 {
		t.Fatal("empty listing round trip failed")
	}
}

func TestErrorCodeMapping(t *testing.T) {
	for code, sentinel := range map[uint16]error{
		CodeNoEnt:    ErrNoEnt,
		CodeAccess:   ErrAccess,
		CodeQuota:    ErrQuota,
		CodeOffline:  ErrOffline,
		CodeReadOnly: ErrReadOnly,
		CodeLocked:   ErrLocked,
		CodeStale:    ErrStale,
	} {
		if got := ErrToCode(sentinel); got != code {
			t.Errorf("ErrToCode(%v) = %d, want %d", sentinel, got, code)
		}
		if err := CodeToErr(code, "detail"); !errors.Is(err, sentinel) {
			t.Errorf("CodeToErr(%d) = %v, not %v", code, err, sentinel)
		}
	}
	if CodeToErr(CodeOK, "") != nil {
		t.Error("CodeOK should map to nil")
	}
	if ErrToCode(nil) != CodeOK {
		t.Error("nil should map to CodeOK")
	}
	if ErrToCode(errors.New("mystery")) != CodeInternal {
		t.Error("unknown error should map to CodeInternal")
	}
	// Wrapped errors map through.
	wrapped := CodeToErr(CodeNoEnt, "missing file")
	if ErrToCode(wrapped) != CodeNoEnt {
		t.Error("wrapped sentinel lost its code")
	}
}

func TestWrongServerCarriesCustodian(t *testing.T) {
	err := &WrongServer{Custodian: "server3"}
	if !errors.Is(err, ErrWrongServer) {
		t.Fatal("WrongServer does not unwrap to ErrWrongServer")
	}
	if ErrToCode(err) != CodeWrongServer {
		t.Fatal("WrongServer code mapping wrong")
	}
	var ws *WrongServer
	if !errors.As(error(err), &ws) || ws.Custodian != "server3" {
		t.Fatal("custodian hint lost")
	}
}

func TestACLBodyRoundTrip(t *testing.T) {
	a := prot.NewACL()
	a.Grant("satya", prot.RightsAll)
	a.Deny("mallory", prot.RightWrite)
	got, err := ACLDecode(ACLEncode(a))
	if err != nil {
		t.Fatal(err)
	}
	if got.Positive["satya"] != prot.RightsAll || got.Negative["mallory"] != prot.RightWrite {
		t.Fatalf("ACL round trip: %+v", got)
	}
	if _, err := ACLDecode([]byte{1, 2}); err == nil {
		t.Fatal("garbage ACL accepted")
	}
}

func TestMessageRoundTrips(t *testing.T) {
	// Every message type round-trips through its encode/decode pair.
	ref := Ref{Path: "/usr/f", FID: FID{1, 2, 3}}

	fa, err := Unmarshal(Marshal(FetchArgs{Ref: ref}), DecodeFetchArgs)
	if err != nil || fa.Ref != ref {
		t.Fatalf("FetchArgs: %+v %v", fa, err)
	}
	sa, err := Unmarshal(Marshal(StoreArgs{Ref: ref, Mode: 0o600}), DecodeStoreArgs)
	if err != nil || sa.Mode != 0o600 {
		t.Fatalf("StoreArgs: %+v %v", sa, err)
	}
	tv, err := Unmarshal(Marshal(TestValidArgs{Ref: ref, Version: 9}), DecodeTestValidArgs)
	if err != nil || tv.Version != 9 {
		t.Fatalf("TestValidArgs: %+v %v", tv, err)
	}
	tvr, err := Unmarshal(Marshal(TestValidReply{Valid: true, Version: 12}), DecodeTestValidReply)
	if err != nil || !tvr.Valid || tvr.Version != 12 {
		t.Fatalf("TestValidReply: %+v %v", tvr, err)
	}
	na, err := Unmarshal(Marshal(NameArgs{Dir: ref, Name: "child", Mode: 0o755}), DecodeNameArgs)
	if err != nil || na.Name != "child" {
		t.Fatalf("NameArgs: %+v %v", na, err)
	}
	ra, err := Unmarshal(Marshal(RenameArgs{FromDir: ref, FromName: "a", ToDir: ref, ToName: "b"}), DecodeRenameArgs)
	if err != nil || ra.FromName != "a" || ra.ToName != "b" {
		t.Fatalf("RenameArgs: %+v %v", ra, err)
	}
	sy, err := Unmarshal(Marshal(SymlinkArgs{Dir: ref, Name: "l", Target: "/t"}), DecodeSymlinkArgs)
	if err != nil || sy.Target != "/t" {
		t.Fatalf("SymlinkArgs: %+v %v", sy, err)
	}
	la, err := Unmarshal(Marshal(LinkArgs{Dir: ref, Name: "l", Target: ref}), DecodeLinkArgs)
	if err != nil || la.Target != ref {
		t.Fatalf("LinkArgs: %+v %v", la, err)
	}
	ca, err := Unmarshal(Marshal(CustodianArgs{Path: "/usr"}), DecodeCustodianArgs)
	if err != nil || ca.Path != "/usr" {
		t.Fatalf("CustodianArgs: %+v %v", ca, err)
	}
	cr, err := Unmarshal(Marshal(CustodianReply{
		Prefix: "/usr", Volume: 4, Custodian: "s1", Replicas: []string{"s2", "s3"},
	}), DecodeCustodianReply)
	if err != nil || cr.Custodian != "s1" || len(cr.Replicas) != 2 {
		t.Fatalf("CustodianReply: %+v %v", cr, err)
	}
	cb, err := Unmarshal(Marshal(CallbackBreakArgs{FID: FID{1, 2, 3}, Path: "/f"}), DecodeCallbackBreakArgs)
	if err != nil || cb.FID != (FID{1, 2, 3}) {
		t.Fatalf("CallbackBreakArgs: %+v %v", cb, err)
	}
	vc, err := Unmarshal(Marshal(VolCreateArgs{Name: "user.satya", Path: "/usr/satya", Quota: 1 << 20, Owner: "satya"}), DecodeVolCreateArgs)
	if err != nil || vc.Quota != 1<<20 {
		t.Fatalf("VolCreateArgs: %+v %v", vc, err)
	}
	vcl, err := Unmarshal(Marshal(VolCloneArgs{Volume: 3, Path: "/bin", Replicas: []string{"s2"}}), DecodeVolCloneArgs)
	if err != nil || vcl.Volume != 3 || len(vcl.Replicas) != 1 {
		t.Fatalf("VolCloneArgs: %+v %v", vcl, err)
	}
	vs, err := Unmarshal(Marshal(VolStatusReply{Volume: 3, Name: "n", Quota: 5, Used: 4, Online: true, ReadOnly: true, Server: "s"}), DecodeVolStatusReply)
	if err != nil || !vs.ReadOnly || vs.Used != 4 {
		t.Fatalf("VolStatusReply: %+v %v", vs, err)
	}
	li, err := Unmarshal(Marshal(LocInstallArgs{
		Entries: []LocEntry{{Prefix: "/usr/satya", Volume: 4, Custodian: "s1", Replicas: []string{"s2"}}},
		Remove:  []string{"/old"},
	}), DecodeLocInstallArgs)
	if err != nil || len(li.Entries) != 1 || li.Entries[0].Volume != 4 || len(li.Remove) != 1 {
		t.Fatalf("LocInstallArgs: %+v %v", li, err)
	}
	ss, err := Unmarshal(Marshal(SetStatusArgs{Ref: ref, SetMode: true, Mode: 0o600, SetOwner: true, Owner: "o"}), DecodeSetStatusArgs)
	if err != nil || !ss.SetMode || ss.Owner != "o" {
		t.Fatalf("SetStatusArgs: %+v %v", ss, err)
	}
	lk, err := Unmarshal(Marshal(LockArgs{Ref: ref, Exclusive: true}), DecodeLockArgs)
	if err != nil || !lk.Exclusive {
		t.Fatalf("LockArgs: %+v %v", lk, err)
	}
	vi, err := Unmarshal(Marshal(VolInstallArgs{Volume: 8, Name: "ro", ReadOnly: true}), DecodeVolInstallArgs)
	if err != nil || vi.Volume != 8 || !vi.ReadOnly {
		t.Fatalf("VolInstallArgs: %+v %v", vi, err)
	}
}

func TestUnmarshalRejectsTrailingGarbage(t *testing.T) {
	body := append(Marshal(CustodianArgs{Path: "/x"}), 0xFF)
	if _, err := Unmarshal(body, DecodeCustodianArgs); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("err = %v, want ErrBadRequest", err)
	}
}

// Property: directory listings of arbitrary names round-trip.
func TestQuickDirEntries(t *testing.T) {
	f := func(names []string, vols []uint32) bool {
		var entries []DirEntry
		for i, n := range names {
			var v uint32
			if len(vols) > 0 {
				v = vols[i%len(vols)]
			}
			entries = append(entries, DirEntry{Name: n, FID: FID{Volume: v, Vnode: uint32(i)}, Type: TypeFile})
		}
		got, err := DecodeDirEntries(EncodeDirEntries(entries))
		if err != nil || len(got) != len(entries) {
			return false
		}
		for i := range entries {
			if got[i] != entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
