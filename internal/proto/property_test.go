package proto

import (
	"math/rand"
	"reflect"
	"testing"

	"itcfs/internal/wire"
)

// Table-driven property tests over every protocol message type: randomized
// values round-trip exactly, every truncation of a valid encoding is
// rejected with an error, and corrupted bodies never panic the decoder.
// These are the same frames the chaos harness damages in flight, so the
// decoders are the last line of defense behind the transport's MAC.

func randName(r *rand.Rand) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789._-"
	n := r.Intn(12)
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[r.Intn(len(alphabet))]
	}
	return string(b)
}

func randPath(r *rand.Rand) string {
	path := ""
	for i := r.Intn(4); i >= 0; i-- {
		path += "/" + randName(r)
	}
	return path
}

func randFID(r *rand.Rand) FID {
	return FID{Volume: r.Uint32(), Vnode: r.Uint32(), Uniq: r.Uint32()}
}

func randRef(r *rand.Rand) Ref {
	ref := Ref{}
	if r.Intn(2) == 0 {
		ref.Path = randPath(r)
	} else {
		ref.FID = randFID(r)
	}
	return ref
}

// randStrings returns nil for an empty list, matching what the decoders
// produce, so reflect.DeepEqual compares structurally.
func randStrings(r *rand.Rand) []string {
	n := r.Intn(4)
	if n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = randName(r)
	}
	return out
}

func randBytes(r *rand.Rand) []byte {
	n := r.Intn(24)
	if n == 0 {
		return nil
	}
	b := make([]byte, n)
	r.Read(b)
	return b
}

func randStatus(r *rand.Rand) Status {
	return Status{
		FID:     randFID(r),
		Type:    FileType(r.Intn(3)),
		Size:    r.Int63(),
		Version: r.Uint64(),
		Mtime:   r.Int63(),
		Owner:   randName(r),
		Mode:    uint16(r.Uint32()),
		Links:   r.Intn(100),
		Target:  randPath(r),
	}
}

func randLocEntry(r *rand.Rand) LocEntry {
	return LocEntry{
		Prefix:    randPath(r),
		Volume:    r.Uint32(),
		Custodian: randName(r),
		Replicas:  randStrings(r),
	}
}

// dec adapts a typed decode function to a uniform signature.
func dec[T any](f func(*wire.Decoder) T) func([]byte) (any, error) {
	return func(body []byte) (any, error) { return Unmarshal(body, f) }
}

// messageCases generates one randomized instance of every message type plus
// its matching decoder.
func messageCases(r *rand.Rand) []struct {
	name   string
	msg    wire.Message
	decode func([]byte) (any, error)
} {
	return []struct {
		name   string
		msg    wire.Message
		decode func([]byte) (any, error)
	}{
		{"Ref", randRef(r), dec(DecodeRef)},
		{"Status", randStatus(r), dec(DecodeStatus)},
		{"FetchArgs", FetchArgs{Ref: randRef(r)}, dec(DecodeFetchArgs)},
		{"StoreArgs", StoreArgs{Ref: randRef(r), Mode: uint16(r.Uint32())}, dec(DecodeStoreArgs)},
		{"StatusArgs", StatusArgs{Ref: randRef(r)}, dec(DecodeStatusArgs)},
		{"SetStatusArgs", SetStatusArgs{
			Ref: randRef(r), SetMode: r.Intn(2) == 0, Mode: uint16(r.Uint32()),
			SetOwner: r.Intn(2) == 0, Owner: randName(r),
		}, dec(DecodeSetStatusArgs)},
		{"TestValidArgs", TestValidArgs{Ref: randRef(r), Version: r.Uint64()}, dec(DecodeTestValidArgs)},
		{"TestValidReply", TestValidReply{Valid: r.Intn(2) == 0, Version: r.Uint64()}, dec(DecodeTestValidReply)},
		{"NameArgs", NameArgs{Dir: randRef(r), Name: randName(r), Mode: uint16(r.Uint32())}, dec(DecodeNameArgs)},
		{"RenameArgs", RenameArgs{
			FromDir: randRef(r), FromName: randName(r), ToDir: randRef(r), ToName: randName(r),
		}, dec(DecodeRenameArgs)},
		{"SymlinkArgs", SymlinkArgs{Dir: randRef(r), Name: randName(r), Target: randPath(r)}, dec(DecodeSymlinkArgs)},
		{"LinkArgs", LinkArgs{Dir: randRef(r), Name: randName(r), Target: randRef(r)}, dec(DecodeLinkArgs)},
		{"ACLArgs", ACLArgs{Dir: randRef(r), ACL: randBytes(r)}, dec(DecodeACLArgs)},
		{"LockArgs", LockArgs{Ref: randRef(r), Exclusive: r.Intn(2) == 0}, dec(DecodeLockArgs)},
		{"CustodianArgs", CustodianArgs{Path: randPath(r)}, dec(DecodeCustodianArgs)},
		{"CustodianReply", CustodianReply{
			Prefix: randPath(r), Volume: r.Uint32(), Custodian: randName(r), Replicas: randStrings(r),
		}, dec(DecodeCustodianReply)},
		{"CallbackBreakArgs", CallbackBreakArgs{FID: randFID(r), Path: randPath(r)}, dec(DecodeCallbackBreakArgs)},
		{"VolCreateArgs", VolCreateArgs{
			Name: randName(r), Path: randPath(r), Quota: r.Int63(), Owner: randName(r),
		}, dec(DecodeVolCreateArgs)},
		{"VolCloneArgs", VolCloneArgs{
			Volume: r.Uint32(), Path: randPath(r), Replicas: randStrings(r),
		}, dec(DecodeVolCloneArgs)},
		{"VolStatusArgs", VolStatusArgs{Volume: r.Uint32()}, dec(DecodeVolStatusArgs)},
		{"VolStatusReply", VolStatusReply{
			Volume: r.Uint32(), Name: randName(r), Quota: r.Int63(), Used: r.Int63(),
			Online: r.Intn(2) == 0, ReadOnly: r.Intn(2) == 0, Server: randName(r),
		}, dec(DecodeVolStatusReply)},
		{"VolSetQuotaArgs", VolSetQuotaArgs{Volume: r.Uint32(), Quota: r.Int63()}, dec(DecodeVolSetQuotaArgs)},
		{"VolMoveArgs", VolMoveArgs{Volume: r.Uint32(), Target: randName(r)}, dec(DecodeVolMoveArgs)},
		{"LocEntry", randLocEntry(r), dec(DecodeLocEntry)},
		{"LocInstallArgs", func() wire.Message {
			a := LocInstallArgs{Remove: randStrings(r)}
			for i := r.Intn(3); i > 0; i-- {
				a.Entries = append(a.Entries, randLocEntry(r))
			}
			return a
		}(), dec(DecodeLocInstallArgs)},
		{"VolInstallArgs", VolInstallArgs{
			Volume: r.Uint32(), Name: randName(r), ReadOnly: r.Intn(2) == 0,
		}, dec(DecodeVolInstallArgs)},
	}
}

// Property: every message type round-trips randomized values exactly.
func TestQuickMessageRoundTrips(t *testing.T) {
	r := rand.New(rand.NewSource(1985))
	for iter := 0; iter < 100; iter++ {
		for _, tc := range messageCases(r) {
			got, err := tc.decode(Marshal(tc.msg))
			if err != nil {
				t.Fatalf("%s: decode: %v (msg %+v)", tc.name, err, tc.msg)
			}
			if !reflect.DeepEqual(got, tc.msg) {
				t.Fatalf("%s: round-trip mismatch:\n got %+v\nwant %+v", tc.name, got, tc.msg)
			}
		}
	}
}

// Property: no strict prefix of a valid encoding decodes cleanly — a frame
// cut short in flight is always an error, never a silently wrong message.
func TestQuickTruncatedMessagesRejected(t *testing.T) {
	r := rand.New(rand.NewSource(823))
	for iter := 0; iter < 20; iter++ {
		for _, tc := range messageCases(r) {
			enc := Marshal(tc.msg)
			for cut := 0; cut < len(enc); cut++ {
				if _, err := tc.decode(enc[:cut]); err == nil {
					t.Fatalf("%s: truncation to %d of %d bytes decoded cleanly (msg %+v)",
						tc.name, cut, len(enc), tc.msg)
				}
			}
		}
	}
}

// Property: decoding corrupted bodies returns — an error or a different
// message — but never panics and never over-reads. Bit flips model the
// in-flight damage the fault injector inflicts.
func TestQuickCorruptedMessagesNeverPanic(t *testing.T) {
	r := rand.New(rand.NewSource(511))
	for iter := 0; iter < 50; iter++ {
		for _, tc := range messageCases(r) {
			enc := Marshal(tc.msg)
			if len(enc) == 0 {
				continue
			}
			corrupt := append([]byte(nil), enc...)
			for n := 1 + r.Intn(4); n > 0; n-- {
				corrupt[r.Intn(len(corrupt))] ^= byte(1 << uint(r.Intn(8)))
			}
			tc.decode(corrupt) // must not panic; any result is acceptable
		}
	}
	// Pure garbage of arbitrary length against every decoder.
	for iter := 0; iter < 50; iter++ {
		garbage := make([]byte, r.Intn(64))
		r.Read(garbage)
		for _, tc := range messageCases(r) {
			tc.decode(garbage)
		}
	}
}
