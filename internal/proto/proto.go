// Package proto defines the Vice-Virtue file system interface (§2.3): the
// operation codes, identifiers, status records and message formats that
// cross the boundary of trustworthiness between workstations and Vice. The
// interface is deliberately narrow and stable — supporting a new kind of
// workstation means implementing exactly this protocol.
//
// Two addressing modes coexist, matching the paper's two implementations:
// the prototype presents entire pathnames to Vice and the server walks them;
// the revised implementation names files by fixed-length unique file
// identifiers (FIDs), with workstations doing pathname traversal themselves
// against cached directories (§5.3). A Ref carries either form.
package proto

import (
	"errors"
	"fmt"

	"itcfs/internal/prot"
	"itcfs/internal/wire"
)

// Op codes of the Vice interface.
const (
	// File and directory operations.
	OpFetch       rpcOp = 10 // whole-file fetch (data as bulk side effect)
	OpStore       rpcOp = 11 // whole-file store on close
	OpFetchStatus rpcOp = 12 // status only ("GetFileStat" in §5.2)
	OpSetStatus   rpcOp = 13
	OpTestValid   rpcOp = 14 // cache validity check (§5.2's dominant call)
	OpCreate      rpcOp = 15
	OpMakeDir     rpcOp = 16
	OpRemove      rpcOp = 17
	OpRemoveDir   rpcOp = 18
	OpRename      rpcOp = 19
	OpSymlink     rpcOp = 20
	OpLink        rpcOp = 21
	OpSetACL      rpcOp = 22
	OpGetACL      rpcOp = 23

	// OpBulkTestValid validates a batch of cached (Ref, version) pairs in
	// one round trip: the revalidation storm after reconnection or a TTL
	// sweep collapses from one call per entry to one call per custodian.
	OpBulkTestValid rpcOp = 24

	// Locking (§3.6).
	OpSetLock     rpcOp = 30
	OpReleaseLock rpcOp = 31

	// Location (§3.1).
	OpGetCustodian rpcOp = 40

	// Callbacks, server -> workstation (§3.2 revised validation).
	OpCallbackBreak rpcOp = 50
	// OpBulkBreak invalidates a batch of promises held by one workstation in
	// a single callback RPC, coalescing the per-promise break storm.
	OpBulkBreak rpcOp = 51

	// Volume administration (§5.3).
	OpVolCreate   rpcOp = 60
	OpVolClone    rpcOp = 61
	OpVolStatus   rpcOp = 62
	OpVolSetQuota rpcOp = 63
	OpVolOffline  rpcOp = 64
	OpVolOnline   rpcOp = 65
	OpVolMove     rpcOp = 66
	OpVolSalvage  rpcOp = 67 // crash recovery: check and repair volume invariants

	// Protection server (§3.4).
	OpProtMutate   rpcOp = 70
	OpProtSnapshot rpcOp = 71

	// Server-to-server.
	OpLocInstall  rpcOp = 80 // push a location-database update
	OpVolInstall  rpcOp = 81 // receive a moved or replicated volume image
	OpProtInstall rpcOp = 82 // push a protection-database mutation to a replica
)

// rpcOp aliases the transport's op type without importing it, keeping proto
// dependency-free of rpc. The values above fit any uint16-compatible op.
type rpcOp = uint16

// FID is the fixed-length unique file identifier of the revised
// implementation. It is invariant across renames, which is what makes
// renaming arbitrary subtrees possible (§5.3).
type FID struct {
	Volume uint32 // the volume containing the file
	Vnode  uint32 // index within the volume
	Uniq   uint32 // generation number, so deleted vnodes are not confused
}

// IsZero reports whether the FID is unset.
func (f FID) IsZero() bool { return f == FID{} }

func (f FID) String() string {
	return fmt.Sprintf("%d.%d.%d", f.Volume, f.Vnode, f.Uniq)
}

// Encode marshals the FID.
func (f FID) Encode(e *wire.Encoder) {
	e.U32(f.Volume)
	e.U32(f.Vnode)
	e.U32(f.Uniq)
}

// DecodeFID unmarshals a FID.
func DecodeFID(d *wire.Decoder) FID {
	return FID{Volume: d.U32(), Vnode: d.U32(), Uniq: d.U32()}
}

// Ref names a file in either addressing mode: a whole pathname relative to
// the Vice root (prototype), or a FID (revised).
type Ref struct {
	Path string
	FID  FID
}

// ByFID reports whether the reference carries a FID.
func (r Ref) ByFID() bool { return !r.FID.IsZero() }

func (r Ref) String() string {
	if r.ByFID() {
		return r.FID.String()
	}
	return r.Path
}

// Encode marshals the reference.
func (r Ref) Encode(e *wire.Encoder) {
	e.String(r.Path)
	r.FID.Encode(e)
}

// DecodeRef unmarshals a reference.
func DecodeRef(d *wire.Decoder) Ref {
	return Ref{Path: d.String(), FID: DecodeFID(d)}
}

// FileType discriminates Vice file kinds.
type FileType uint8

// Vice file kinds.
const (
	TypeFile FileType = iota
	TypeDir
	TypeSymlink
)

// Status is the Vice status record of a file — the contents of the .admin
// file in the prototype's storage representation (§3.5.2).
type Status struct {
	FID     FID
	Type    FileType
	Size    int64
	Version uint64 // data version; cache validation compares this
	Mtime   int64
	Owner   string
	Mode    uint16 // per-file protection bits (revised implementation, §5.1)
	Links   int
	Target  string // symlink target
}

// Encode marshals the status record.
func (s Status) Encode(e *wire.Encoder) {
	s.FID.Encode(e)
	e.U8(uint8(s.Type))
	e.I64(s.Size)
	e.U64(s.Version)
	e.I64(s.Mtime)
	e.String(s.Owner)
	e.U16(s.Mode)
	e.Int(s.Links)
	e.String(s.Target)
}

// DecodeStatus unmarshals a status record.
func DecodeStatus(d *wire.Decoder) Status {
	return Status{
		FID:     DecodeFID(d),
		Type:    FileType(d.U8()),
		Size:    d.I64(),
		Version: d.U64(),
		Mtime:   d.I64(),
		Owner:   d.String(),
		Mode:    d.U16(),
		Links:   d.Int(),
		Target:  d.String(),
	}
}

// DirEntry is one entry in a Vice directory. Directories are fetched as
// ordinary files whose contents are an encoded list of these; the revised
// Venus walks them client-side.
type DirEntry struct {
	Name string
	FID  FID
	Type FileType
}

// EncodeDirEntries marshals a directory listing into file contents.
func EncodeDirEntries(entries []DirEntry) []byte {
	e := wire.GetEncoder()
	e.U32(uint32(len(entries)))
	for _, de := range entries {
		e.String(de.Name)
		de.FID.Encode(e)
		e.U8(uint8(de.Type))
	}
	out := append([]byte(nil), e.Buf()...)
	wire.PutEncoder(e)
	return out
}

// DecodeDirEntries unmarshals directory file contents.
func DecodeDirEntries(data []byte) ([]DirEntry, error) {
	d := wire.NewDecoder(data)
	n := d.U32()
	// Cap the preallocation: n is untrusted and a corrupt count must not
	// exhaust memory before the per-entry decode detects truncation.
	capHint := n
	if capHint > 4096 {
		capHint = 4096
	}
	entries := make([]DirEntry, 0, capHint)
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		entries = append(entries, DirEntry{
			Name: d.String(),
			FID:  DecodeFID(d),
			Type: FileType(d.U8()),
		})
	}
	if err := d.Close(); err != nil {
		return nil, fmt.Errorf("proto: corrupt directory: %w", err)
	}
	return entries, nil
}

// Service-level error codes carried in rpc.Response.Code.
const (
	CodeOK          uint16 = 0
	CodeNoEnt       uint16 = 1
	CodeExist       uint16 = 2
	CodeAccess      uint16 = 3
	CodeNotDir      uint16 = 4
	CodeIsDir       uint16 = 5
	CodeNotEmpty    uint16 = 6
	CodeQuota       uint16 = 7
	CodeOffline     uint16 = 8
	CodeWrongServer uint16 = 9 // body carries the custodian's name
	CodeLocked      uint16 = 10
	CodeStale       uint16 = 11
	CodeReadOnly    uint16 = 12
	CodeBadRequest  uint16 = 13
	CodeNotAllowed  uint16 = 14
	CodeInternal    uint16 = 15
	CodeLoop        uint16 = 16
)

// Sentinel errors corresponding to the codes above.
var (
	ErrNoEnt       = errors.New("vice: no such file or directory")
	ErrExist       = errors.New("vice: file exists")
	ErrAccess      = errors.New("vice: permission denied")
	ErrNotDir      = errors.New("vice: not a directory")
	ErrIsDir       = errors.New("vice: is a directory")
	ErrNotEmpty    = errors.New("vice: directory not empty")
	ErrQuota       = errors.New("vice: volume quota exceeded")
	ErrOffline     = errors.New("vice: volume offline")
	ErrWrongServer = errors.New("vice: not the custodian")
	ErrLocked      = errors.New("vice: file is locked")
	ErrStale       = errors.New("vice: stale identifier")
	ErrReadOnly    = errors.New("vice: read-only volume")
	ErrBadRequest  = errors.New("vice: malformed request")
	ErrNotAllowed  = errors.New("vice: operation not permitted")
	ErrInternal    = errors.New("vice: internal error")
	ErrLoop        = errors.New("vice: too many levels of symbolic links")
)

var codeToErr = map[uint16]error{
	CodeNoEnt:       ErrNoEnt,
	CodeExist:       ErrExist,
	CodeAccess:      ErrAccess,
	CodeNotDir:      ErrNotDir,
	CodeIsDir:       ErrIsDir,
	CodeNotEmpty:    ErrNotEmpty,
	CodeQuota:       ErrQuota,
	CodeOffline:     ErrOffline,
	CodeWrongServer: ErrWrongServer,
	CodeLocked:      ErrLocked,
	CodeStale:       ErrStale,
	CodeReadOnly:    ErrReadOnly,
	CodeBadRequest:  ErrBadRequest,
	CodeNotAllowed:  ErrNotAllowed,
	CodeInternal:    ErrInternal,
	CodeLoop:        ErrLoop,
}

var errToCode = func() map[error]uint16 {
	m := make(map[error]uint16, len(codeToErr))
	for c, e := range codeToErr {
		m[e] = c
	}
	return m
}()

// CodeToErr converts a service code to its sentinel error (nil for CodeOK).
// The detail string, if any, is attached via wrapping.
func CodeToErr(code uint16, detail string) error {
	if code == CodeOK {
		return nil
	}
	base, ok := codeToErr[code]
	if !ok {
		base = ErrInternal
	}
	if detail == "" {
		return base
	}
	return fmt.Errorf("%w: %s", base, detail)
}

// ErrToCode converts an error to its service code. Unrecognized errors map
// to CodeInternal.
func ErrToCode(err error) uint16 {
	if err == nil {
		return CodeOK
	}
	for base, code := range errToCode {
		if errors.Is(err, base) {
			return code
		}
	}
	return CodeInternal
}

// WrongServer wraps ErrWrongServer with the custodian hint the server
// returned ("if a server receives a request for a file for which it is not
// the custodian, it will respond with the identity of the appropriate
// custodian", §3.1).
type WrongServer struct {
	Custodian string
}

func (w *WrongServer) Error() string {
	return fmt.Sprintf("vice: not the custodian (try %s)", w.Custodian)
}

// Unwrap makes errors.Is(err, ErrWrongServer) hold.
func (w *WrongServer) Unwrap() error { return ErrWrongServer }

// ACLEncode marshals an access list for GetACL/SetACL bodies.
func ACLEncode(a prot.ACL) []byte {
	var e wire.Encoder
	a.Encode(&e)
	return append([]byte(nil), e.Buf()...)
}

// ACLDecode unmarshals an access list.
func ACLDecode(data []byte) (prot.ACL, error) {
	d := wire.NewDecoder(data)
	a := prot.DecodeACL(d)
	if err := d.Close(); err != nil {
		return prot.ACL{}, fmt.Errorf("proto: corrupt ACL: %w", err)
	}
	return a, nil
}
