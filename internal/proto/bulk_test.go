package proto

import (
	"reflect"
	"testing"

	"itcfs/internal/wire"
)

func TestBulkTestValidArgsRoundTrip(t *testing.T) {
	a := BulkTestValidArgs{Items: []TestValidArgs{
		{Ref: Ref{FID: FID{Volume: 1, Vnode: 2, Uniq: 3}}, Version: 9},
		{Ref: Ref{Path: "/usr/satya/paper.tex"}, Version: 0},
	}}
	var e wire.Encoder
	a.Encode(&e)
	d := wire.NewDecoder(e.Buf())
	got := DecodeBulkTestValidArgs(d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, a) {
		t.Fatalf("round trip: %+v != %+v", got, a)
	}
}

func TestBulkTestValidReplyRoundTrip(t *testing.T) {
	r := BulkTestValidReply{Items: []TestValidReply{
		{Valid: true, Version: 12},
		{Valid: false, Version: 0},
	}}
	var e wire.Encoder
	r.Encode(&e)
	d := wire.NewDecoder(e.Buf())
	got := DecodeBulkTestValidReply(d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("round trip: %+v != %+v", got, r)
	}
}

func TestBulkBreakArgsRoundTrip(t *testing.T) {
	a := BulkBreakArgs{Items: []CallbackBreakArgs{
		{FID: FID{Volume: 4, Vnode: 5, Uniq: 6}},
		{FID: FID{Volume: 4, Vnode: 7, Uniq: 1}, Path: "/usr/satya"},
	}}
	var e wire.Encoder
	a.Encode(&e)
	d := wire.NewDecoder(e.Buf())
	got := DecodeBulkBreakArgs(d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, a) {
		t.Fatalf("round trip: %+v != %+v", got, a)
	}
}

// Truncated bulk payloads must fail cleanly, not over-allocate: ListLen
// bounds the claimed count by the bytes actually present.
func TestBulkDecodeTruncated(t *testing.T) {
	a := BulkTestValidArgs{Items: []TestValidArgs{
		{Ref: Ref{FID: FID{Volume: 1, Vnode: 2, Uniq: 3}}, Version: 9},
		{Ref: Ref{FID: FID{Volume: 1, Vnode: 4, Uniq: 5}}, Version: 10},
	}}
	var e wire.Encoder
	a.Encode(&e)
	buf := e.Buf()
	d := wire.NewDecoder(buf[:len(buf)-3])
	DecodeBulkTestValidArgs(d)
	if d.Close() == nil {
		t.Fatal("truncated bulk payload decoded without error")
	}
}
