package proto

import (
	"fmt"

	"itcfs/internal/wire"
)

// This file defines the argument and reply messages for every Vice
// operation. Each type encodes explicitly; Unmarshal helpers wrap decoding
// with error handling so server handlers can reject malformed requests with
// CodeBadRequest.

// Unmarshal decodes body into any message with a decode function.
func Unmarshal[T any](body []byte, decode func(*wire.Decoder) T) (T, error) {
	d := wire.NewDecoder(body)
	v := decode(d)
	if err := d.Close(); err != nil {
		var zero T
		return zero, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return v, nil
}

// Marshal encodes any message.
func Marshal(m wire.Message) []byte { return wire.Marshal(m) }

// FetchArgs requests a whole file (data returned as the bulk side effect)
// along with its status. In revised mode a successful fetch also records a
// callback promise for the connection.
type FetchArgs struct {
	Ref Ref
}

func (a FetchArgs) Encode(e *wire.Encoder) { a.Ref.Encode(e) }

// DecodeFetchArgs unmarshals FetchArgs.
func DecodeFetchArgs(d *wire.Decoder) FetchArgs { return FetchArgs{Ref: DecodeRef(d)} }

// StoreArgs stores a whole file (data in the bulk side effect), creating it
// if absent in prototype (path) mode.
type StoreArgs struct {
	Ref  Ref
	Mode uint16
}

func (a StoreArgs) Encode(e *wire.Encoder) {
	a.Ref.Encode(e)
	e.U16(a.Mode)
}

// DecodeStoreArgs unmarshals StoreArgs.
func DecodeStoreArgs(d *wire.Decoder) StoreArgs {
	return StoreArgs{Ref: DecodeRef(d), Mode: d.U16()}
}

// StatusArgs requests the status record of a file ("GetFileStat").
type StatusArgs struct {
	Ref Ref
}

func (a StatusArgs) Encode(e *wire.Encoder) { a.Ref.Encode(e) }

// DecodeStatusArgs unmarshals StatusArgs.
func DecodeStatusArgs(d *wire.Decoder) StatusArgs { return StatusArgs{Ref: DecodeRef(d)} }

// SetStatusArgs updates mutable status fields.
type SetStatusArgs struct {
	Ref      Ref
	SetMode  bool
	Mode     uint16
	SetOwner bool
	Owner    string
}

func (a SetStatusArgs) Encode(e *wire.Encoder) {
	a.Ref.Encode(e)
	e.Bool(a.SetMode)
	e.U16(a.Mode)
	e.Bool(a.SetOwner)
	e.String(a.Owner)
}

// DecodeSetStatusArgs unmarshals SetStatusArgs.
func DecodeSetStatusArgs(d *wire.Decoder) SetStatusArgs {
	return SetStatusArgs{
		Ref:      DecodeRef(d),
		SetMode:  d.Bool(),
		Mode:     d.U16(),
		SetOwner: d.Bool(),
		Owner:    d.String(),
	}
}

// TestValidArgs asks whether a cached copy at Version is still current.
type TestValidArgs struct {
	Ref     Ref
	Version uint64
}

func (a TestValidArgs) Encode(e *wire.Encoder) {
	a.Ref.Encode(e)
	e.U64(a.Version)
}

// DecodeTestValidArgs unmarshals TestValidArgs.
func DecodeTestValidArgs(d *wire.Decoder) TestValidArgs {
	return TestValidArgs{Ref: DecodeRef(d), Version: d.U64()}
}

// TestValidReply answers a validity check.
type TestValidReply struct {
	Valid   bool
	Version uint64 // the current version at the custodian
}

func (r TestValidReply) Encode(e *wire.Encoder) {
	e.Bool(r.Valid)
	e.U64(r.Version)
}

// DecodeTestValidReply unmarshals TestValidReply.
func DecodeTestValidReply(d *wire.Decoder) TestValidReply {
	return TestValidReply{Valid: d.Bool(), Version: d.U64()}
}

// MaxBulkItems caps the batch size of BulkTestValid and BulkBreak. Senders
// chunk above it; the server rejects oversized decoded batches with
// CodeBadRequest. Decoders stay safe regardless: wire.Decoder.ListLen bounds
// the count by the bytes actually present.
const MaxBulkItems = 1024

// BulkTestValidArgs validates many cached (Ref, version) pairs against one
// custodian in a single round trip.
type BulkTestValidArgs struct {
	Items []TestValidArgs
}

func (a BulkTestValidArgs) Encode(e *wire.Encoder) {
	e.ListLen(len(a.Items))
	for _, it := range a.Items {
		it.Encode(e)
	}
}

// DecodeBulkTestValidArgs unmarshals BulkTestValidArgs.
func DecodeBulkTestValidArgs(d *wire.Decoder) BulkTestValidArgs {
	// Each item is at least a Ref (u32 path length + FID) plus a version.
	n := d.ListLen(4 + 12 + 8)
	var a BulkTestValidArgs
	for i := 0; i < n && d.Err() == nil; i++ {
		a.Items = append(a.Items, DecodeTestValidArgs(d))
	}
	return a
}

// BulkTestValidReply answers a batched validity check. Items correspond
// one-to-one, in order, with the request's items.
type BulkTestValidReply struct {
	Items []TestValidReply
}

func (r BulkTestValidReply) Encode(e *wire.Encoder) {
	e.ListLen(len(r.Items))
	for _, it := range r.Items {
		it.Encode(e)
	}
}

// DecodeBulkTestValidReply unmarshals BulkTestValidReply.
func DecodeBulkTestValidReply(d *wire.Decoder) BulkTestValidReply {
	n := d.ListLen(1 + 8) // bool + version
	var r BulkTestValidReply
	for i := 0; i < n && d.Err() == nil; i++ {
		r.Items = append(r.Items, DecodeTestValidReply(d))
	}
	return r
}

// NameArgs addresses an entry Name within directory Dir: Create, MakeDir,
// Remove, RemoveDir.
type NameArgs struct {
	Dir  Ref
	Name string
	Mode uint16 // for Create/MakeDir
}

func (a NameArgs) Encode(e *wire.Encoder) {
	a.Dir.Encode(e)
	e.String(a.Name)
	e.U16(a.Mode)
}

// DecodeNameArgs unmarshals NameArgs.
func DecodeNameArgs(d *wire.Decoder) NameArgs {
	return NameArgs{Dir: DecodeRef(d), Name: d.String(), Mode: d.U16()}
}

// RenameArgs moves FromName in FromDir to ToName in ToDir.
type RenameArgs struct {
	FromDir  Ref
	FromName string
	ToDir    Ref
	ToName   string
}

func (a RenameArgs) Encode(e *wire.Encoder) {
	a.FromDir.Encode(e)
	e.String(a.FromName)
	a.ToDir.Encode(e)
	e.String(a.ToName)
}

// DecodeRenameArgs unmarshals RenameArgs.
func DecodeRenameArgs(d *wire.Decoder) RenameArgs {
	return RenameArgs{
		FromDir:  DecodeRef(d),
		FromName: d.String(),
		ToDir:    DecodeRef(d),
		ToName:   d.String(),
	}
}

// SymlinkArgs creates a symbolic link Name in Dir pointing at Target.
type SymlinkArgs struct {
	Dir    Ref
	Name   string
	Target string
}

func (a SymlinkArgs) Encode(e *wire.Encoder) {
	a.Dir.Encode(e)
	e.String(a.Name)
	e.String(a.Target)
}

// DecodeSymlinkArgs unmarshals SymlinkArgs.
func DecodeSymlinkArgs(d *wire.Decoder) SymlinkArgs {
	return SymlinkArgs{Dir: DecodeRef(d), Name: d.String(), Target: d.String()}
}

// LinkArgs creates a hard link Name in Dir to the existing file Target.
type LinkArgs struct {
	Dir    Ref
	Name   string
	Target Ref
}

func (a LinkArgs) Encode(e *wire.Encoder) {
	a.Dir.Encode(e)
	e.String(a.Name)
	a.Target.Encode(e)
}

// DecodeLinkArgs unmarshals LinkArgs.
func DecodeLinkArgs(d *wire.Decoder) LinkArgs {
	return LinkArgs{Dir: DecodeRef(d), Name: d.String(), Target: DecodeRef(d)}
}

// ACLArgs addresses a directory's access list. For SetACL the new list
// rides in the body after the args; use with ACLEncode/ACLDecode.
type ACLArgs struct {
	Dir Ref
	ACL []byte // encoded prot.ACL for SetACL; empty for GetACL
}

func (a ACLArgs) Encode(e *wire.Encoder) {
	a.Dir.Encode(e)
	e.Bytes(a.ACL)
}

// DecodeACLArgs unmarshals ACLArgs.
func DecodeACLArgs(d *wire.Decoder) ACLArgs {
	return ACLArgs{Dir: DecodeRef(d), ACL: append([]byte(nil), d.Bytes()...)}
}

// LockArgs sets or releases an advisory lock (§3.6).
type LockArgs struct {
	Ref       Ref
	Exclusive bool
}

func (a LockArgs) Encode(e *wire.Encoder) {
	a.Ref.Encode(e)
	e.Bool(a.Exclusive)
}

// DecodeLockArgs unmarshals LockArgs.
func DecodeLockArgs(d *wire.Decoder) LockArgs {
	return LockArgs{Ref: DecodeRef(d), Exclusive: d.Bool()}
}

// CustodianArgs asks which server is the custodian for a path.
type CustodianArgs struct {
	Path string
}

func (a CustodianArgs) Encode(e *wire.Encoder) { e.String(a.Path) }

// DecodeCustodianArgs unmarshals CustodianArgs.
func DecodeCustodianArgs(d *wire.Decoder) CustodianArgs {
	return CustodianArgs{Path: d.String()}
}

// CustodianReply answers a location query: the matched subtree prefix, the
// volume mounted there, its custodian, and any read-only replica sites.
type CustodianReply struct {
	Prefix    string
	Volume    uint32
	Custodian string
	Replicas  []string
}

func (r CustodianReply) Encode(e *wire.Encoder) {
	e.String(r.Prefix)
	e.U32(r.Volume)
	e.String(r.Custodian)
	e.ListLen(len(r.Replicas))
	for _, rep := range r.Replicas {
		e.String(rep)
	}
}

// DecodeCustodianReply unmarshals CustodianReply.
func DecodeCustodianReply(d *wire.Decoder) CustodianReply {
	r := CustodianReply{Prefix: d.String(), Volume: d.U32(), Custodian: d.String()}
	n := d.ListLen(4) // each replica name is at least a u32 length prefix
	for i := 0; i < n && d.Err() == nil; i++ {
		r.Replicas = append(r.Replicas, d.String())
	}
	return r
}

// CallbackBreakArgs tells a workstation its cached copy is no longer valid.
type CallbackBreakArgs struct {
	FID  FID
	Path string // set in path mode so prototype-style clients can match
}

func (a CallbackBreakArgs) Encode(e *wire.Encoder) {
	a.FID.Encode(e)
	e.String(a.Path)
}

// DecodeCallbackBreakArgs unmarshals CallbackBreakArgs.
func DecodeCallbackBreakArgs(d *wire.Decoder) CallbackBreakArgs {
	return CallbackBreakArgs{FID: DecodeFID(d), Path: d.String()}
}

// BulkBreakArgs invalidates many promises held by one workstation in a
// single callback RPC. Items arrive in the server's deterministic break
// order (promise registration order within each update, updates in the
// order the server coalesced them).
type BulkBreakArgs struct {
	Items []CallbackBreakArgs
}

func (a BulkBreakArgs) Encode(e *wire.Encoder) {
	e.ListLen(len(a.Items))
	for _, it := range a.Items {
		it.Encode(e)
	}
}

// DecodeBulkBreakArgs unmarshals BulkBreakArgs.
func DecodeBulkBreakArgs(d *wire.Decoder) BulkBreakArgs {
	n := d.ListLen(12 + 4) // FID + u32 path length
	var a BulkBreakArgs
	for i := 0; i < n && d.Err() == nil; i++ {
		a.Items = append(a.Items, DecodeCallbackBreakArgs(d))
	}
	return a
}

// VolCreateArgs creates a volume and mounts it at Path in the shared name
// space.
type VolCreateArgs struct {
	Name  string
	Path  string
	Quota int64
	Owner string
}

func (a VolCreateArgs) Encode(e *wire.Encoder) {
	e.String(a.Name)
	e.String(a.Path)
	e.I64(a.Quota)
	e.String(a.Owner)
}

// DecodeVolCreateArgs unmarshals VolCreateArgs.
func DecodeVolCreateArgs(d *wire.Decoder) VolCreateArgs {
	return VolCreateArgs{Name: d.String(), Path: d.String(), Quota: d.I64(), Owner: d.String()}
}

// VolCloneArgs clones a volume into a read-only snapshot, optionally
// replicating it to other servers and mounting it at Path.
type VolCloneArgs struct {
	Volume   uint32
	Path     string   // mount point for the clone ("" = do not mount)
	Replicas []string // additional servers to install the clone on
}

func (a VolCloneArgs) Encode(e *wire.Encoder) {
	e.U32(a.Volume)
	e.String(a.Path)
	e.ListLen(len(a.Replicas))
	for _, r := range a.Replicas {
		e.String(r)
	}
}

// DecodeVolCloneArgs unmarshals VolCloneArgs.
func DecodeVolCloneArgs(d *wire.Decoder) VolCloneArgs {
	a := VolCloneArgs{Volume: d.U32(), Path: d.String()}
	n := d.ListLen(4) // each replica name is at least a u32 length prefix
	for i := 0; i < n && d.Err() == nil; i++ {
		a.Replicas = append(a.Replicas, d.String())
	}
	return a
}

// VolStatusArgs asks about one volume.
type VolStatusArgs struct {
	Volume uint32
}

func (a VolStatusArgs) Encode(e *wire.Encoder) { e.U32(a.Volume) }

// DecodeVolStatusArgs unmarshals VolStatusArgs.
func DecodeVolStatusArgs(d *wire.Decoder) VolStatusArgs { return VolStatusArgs{Volume: d.U32()} }

// VolStatusReply describes one volume.
type VolStatusReply struct {
	Volume   uint32
	Name     string
	Quota    int64
	Used     int64
	Online   bool
	ReadOnly bool
	Server   string
}

func (r VolStatusReply) Encode(e *wire.Encoder) {
	e.U32(r.Volume)
	e.String(r.Name)
	e.I64(r.Quota)
	e.I64(r.Used)
	e.Bool(r.Online)
	e.Bool(r.ReadOnly)
	e.String(r.Server)
}

// DecodeVolStatusReply unmarshals VolStatusReply.
func DecodeVolStatusReply(d *wire.Decoder) VolStatusReply {
	return VolStatusReply{
		Volume:   d.U32(),
		Name:     d.String(),
		Quota:    d.I64(),
		Used:     d.I64(),
		Online:   d.Bool(),
		ReadOnly: d.Bool(),
		Server:   d.String(),
	}
}

// VolSetQuotaArgs changes a volume's quota.
type VolSetQuotaArgs struct {
	Volume uint32
	Quota  int64
}

func (a VolSetQuotaArgs) Encode(e *wire.Encoder) {
	e.U32(a.Volume)
	e.I64(a.Quota)
}

// DecodeVolSetQuotaArgs unmarshals VolSetQuotaArgs.
func DecodeVolSetQuotaArgs(d *wire.Decoder) VolSetQuotaArgs {
	return VolSetQuotaArgs{Volume: d.U32(), Quota: d.I64()}
}

// VolMoveArgs reassigns a volume to another custodian.
type VolMoveArgs struct {
	Volume uint32
	Target string // destination server name
}

func (a VolMoveArgs) Encode(e *wire.Encoder) {
	e.U32(a.Volume)
	e.String(a.Target)
}

// DecodeVolMoveArgs unmarshals VolMoveArgs.
func DecodeVolMoveArgs(d *wire.Decoder) VolMoveArgs {
	return VolMoveArgs{Volume: d.U32(), Target: d.String()}
}

// LocEntry is one row of the replicated location database: the volume
// mounted at Prefix, its custodian and read-only replica sites (§3.1).
type LocEntry struct {
	Prefix    string
	Volume    uint32
	Custodian string
	Replicas  []string
}

func (le LocEntry) Encode(e *wire.Encoder) {
	e.String(le.Prefix)
	e.U32(le.Volume)
	e.String(le.Custodian)
	e.ListLen(len(le.Replicas))
	for _, r := range le.Replicas {
		e.String(r)
	}
}

// DecodeLocEntry unmarshals a LocEntry. The replica list is length-validated
// against the bytes present: a lying count fails fast instead of driving a
// huge preallocation or a silent short list.
func DecodeLocEntry(d *wire.Decoder) LocEntry {
	le := LocEntry{Prefix: d.String(), Volume: d.U32(), Custodian: d.String()}
	n := d.ListLen(4) // each replica name is at least a u32 length prefix
	for i := 0; i < n && d.Err() == nil; i++ {
		le.Replicas = append(le.Replicas, d.String())
	}
	return le
}

// LocInstallArgs pushes location-database rows to a replica. Remove lists
// prefixes to delete.
type LocInstallArgs struct {
	Entries []LocEntry
	Remove  []string
}

func (a LocInstallArgs) Encode(e *wire.Encoder) {
	e.ListLen(len(a.Entries))
	for _, le := range a.Entries {
		le.Encode(e)
	}
	e.ListLen(len(a.Remove))
	for _, p := range a.Remove {
		e.String(p)
	}
}

// DecodeLocInstallArgs unmarshals LocInstallArgs.
func DecodeLocInstallArgs(d *wire.Decoder) LocInstallArgs {
	var a LocInstallArgs
	// Each entry is at least two u32 string lengths, a volume id and a
	// replica count.
	n := d.ListLen(4 + 4 + 4 + 4)
	for i := 0; i < n && d.Err() == nil; i++ {
		a.Entries = append(a.Entries, DecodeLocEntry(d))
	}
	m := d.ListLen(4)
	for i := 0; i < m && d.Err() == nil; i++ {
		a.Remove = append(a.Remove, d.String())
	}
	return a
}

// VolInstallArgs carries a serialized volume image (in the bulk payload) to
// install on the receiving server, for moves and read-only replication.
type VolInstallArgs struct {
	Volume   uint32
	Name     string
	ReadOnly bool
}

func (a VolInstallArgs) Encode(e *wire.Encoder) {
	e.U32(a.Volume)
	e.String(a.Name)
	e.Bool(a.ReadOnly)
}

// DecodeVolInstallArgs unmarshals VolInstallArgs.
func DecodeVolInstallArgs(d *wire.Decoder) VolInstallArgs {
	return VolInstallArgs{Volume: d.U32(), Name: d.String(), ReadOnly: d.Bool()}
}
