// Package unixfs is an in-memory hierarchical file system with 4.2BSD-style
// semantics: inodes, directories, hard links, symbolic links, mode bits,
// whole-file and positional I/O, and rename. It plays the role the Unix file
// system played in the paper: Virtue's local ("root") file system, the cache
// directory Venus manages, and the storage substrate on each Vice cluster
// server (where every Vice file is represented as a data file plus a .admin
// file, §3.5.2).
//
// unixfs stores mode bits and ownership but does not enforce them: in the
// system under study, protection policy is Vice's job (access lists) and the
// local disk belongs entirely to the workstation's owner. Timestamps come
// from an injectable clock so simulated runs are deterministic.
//
// All methods are safe for concurrent use. No method ever blocks on anything
// but the internal lock, so callers inside the simulator never park while a
// lock is held.
package unixfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Errors mirror the Unix errno values the paper's interfaces surface.
var (
	ErrNotExist = errors.New("unixfs: no such file or directory")
	ErrExist    = errors.New("unixfs: file exists")
	ErrNotDir   = errors.New("unixfs: not a directory")
	ErrIsDir    = errors.New("unixfs: is a directory")
	ErrNotEmpty = errors.New("unixfs: directory not empty")
	ErrInvalid  = errors.New("unixfs: invalid argument")
	ErrLoop     = errors.New("unixfs: too many levels of symbolic links")
)

// Ino identifies an inode within one FS.
type Ino uint64

// FileType discriminates inode kinds.
type FileType uint8

// Inode kinds.
const (
	TypeRegular FileType = iota
	TypeDir
	TypeSymlink
)

func (t FileType) String() string {
	switch t {
	case TypeRegular:
		return "file"
	case TypeDir:
		return "dir"
	case TypeSymlink:
		return "symlink"
	default:
		return fmt.Sprintf("FileType(%d)", uint8(t))
	}
}

// maxSymlinks bounds symlink resolution depth, as in Unix.
const maxSymlinks = 16

// Stat describes one inode.
type Stat struct {
	Ino     Ino
	Type    FileType
	Mode    uint16 // Unix permission bits (metadata only; not enforced)
	Nlink   int
	Size    int64
	Mtime   int64  // nanoseconds on the owning clock
	Version uint64 // increments on every data or entry modification
	Owner   string
	Target  string // symlink target, if Type == TypeSymlink
}

// DirEntry is one name in a directory listing.
type DirEntry struct {
	Name string
	Ino  Ino
	Type FileType
}

type inode struct {
	ino     Ino
	typ     FileType
	mode    uint16
	nlink   int
	data    []byte
	entries map[string]Ino
	target  string
	mtime   int64
	version uint64
	owner   string
}

// Clock supplies timestamps. Simulated runs inject virtual time.
type Clock func() int64

// FS is one in-memory file system.
type FS struct {
	mu     sync.RWMutex
	inodes map[Ino]*inode // guarded by mu
	next   Ino            // guarded by mu
	root   Ino            // set at construction, immutable afterwards
	clock  Clock          // set at construction, immutable afterwards
	// total regular-file bytes, for disk accounting
	// guarded by mu
	used int64
}

// New returns an empty file system containing only a root directory. A nil
// clock yields all-zero timestamps.
func New(clock Clock) *FS {
	if clock == nil {
		clock = func() int64 { return 0 }
	}
	fs := &FS{inodes: make(map[Ino]*inode), next: 1, clock: clock}
	root := &inode{ino: 1, typ: TypeDir, mode: 0o755, nlink: 2, entries: make(map[string]Ino)}
	fs.inodes[1] = root
	fs.root = 1
	fs.next = 2
	return fs
}

// Root returns the root directory's inode number.
func (fs *FS) Root() Ino { return fs.root }

// UsedBytes returns the total size of all regular files.
func (fs *FS) UsedBytes() int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.used
}

// isClean reports whether path is already in canonical form: absolute, no
// empty, "." or ".." components, no trailing slash (except the root itself).
// Nearly every path the system handles is, so the path helpers take
// allocation-free fast paths over such strings.
func isClean(path string) bool {
	if path == "" || path[0] != '/' {
		return false
	}
	if path == "/" {
		return true
	}
	start := 1
	for i := 1; i <= len(path); i++ {
		if i == len(path) || path[i] == '/' {
			switch path[start:i] {
			case "", ".", "..":
				return false
			}
			start = i + 1
		}
	}
	return true
}

// cleanElem reports whether a path element can be appended to a clean path
// with a single slash and keep it clean: one non-empty component.
func cleanElem(e string) bool {
	return e != "" && e != "." && e != ".." && strings.IndexByte(e, '/') < 0
}

// split normalizes an absolute path into components. "/" yields nil. The
// components of an already-clean path are subslices of it; splitting such a
// path allocates only the component slice.
func split(path string) ([]string, error) {
	if path == "" || path[0] != '/' {
		return nil, fmt.Errorf("%w: path %q must be absolute", ErrInvalid, path)
	}
	if isClean(path) {
		if path == "/" {
			return nil, nil
		}
		n := 0
		for i := 0; i < len(path); i++ {
			if path[i] == '/' {
				n++
			}
		}
		parts := make([]string, 0, n)
		start := 1
		for i := 1; i <= len(path); i++ {
			if i == len(path) || path[i] == '/' {
				parts = append(parts, path[start:i])
				start = i + 1
			}
		}
		return parts, nil
	}
	var parts []string
	for _, c := range strings.Split(path, "/") {
		switch c {
		case "", ".":
		case "..":
			if len(parts) > 0 {
				parts = parts[:len(parts)-1]
			}
		default:
			parts = append(parts, c)
		}
	}
	return parts, nil
}

// splitInto is split appending into a caller-provided buffer, letting hot
// callers keep the parts slice on the stack for clean paths of ordinary
// depth. Unclean paths fall back to split and allocate.
func splitInto(path string, buf []string) ([]string, error) {
	if path == "" || path[0] != '/' {
		return nil, fmt.Errorf("%w: path %q must be absolute", ErrInvalid, path)
	}
	if !isClean(path) {
		return split(path)
	}
	if path == "/" {
		return buf, nil
	}
	start := 1
	for i := 1; i <= len(path); i++ {
		if i == len(path) || path[i] == '/' {
			buf = append(buf, path[start:i])
			start = i + 1
		}
	}
	return buf, nil
}

// Clean normalizes a path the way split does, returning the canonical form.
// A path already in canonical form is returned as-is, with no allocation.
func Clean(path string) string {
	if isClean(path) {
		return path
	}
	parts, err := split(path)
	if err != nil || len(parts) == 0 {
		return "/"
	}
	return "/" + strings.Join(parts, "/")
}

// Join concatenates path elements with slashes and cleans the result.
func Join(elems ...string) string {
	// Fast path: a clean absolute head followed by single clean components
	// concatenates directly.
	if len(elems) > 0 && isClean(elems[0]) {
		n := len(elems[0])
		ok := true
		for _, e := range elems[1:] {
			if !cleanElem(e) {
				ok = false
				break
			}
			n += 1 + len(e)
		}
		if ok {
			if len(elems) == 1 {
				return elems[0]
			}
			var b strings.Builder
			b.Grow(n)
			if elems[0] != "/" {
				b.WriteString(elems[0])
			}
			for _, e := range elems[1:] {
				b.WriteByte('/')
				b.WriteString(e)
			}
			return b.String()
		}
	}
	return Clean("/" + strings.Join(elems, "/"))
}

// Base returns the final element of path ("/" for the root).
func Base(path string) string {
	if isClean(path) {
		if path == "/" {
			return "/"
		}
		return path[strings.LastIndexByte(path, '/')+1:]
	}
	parts, err := split(path)
	if err != nil || len(parts) == 0 {
		return "/"
	}
	return parts[len(parts)-1]
}

// Dir returns the parent of path ("/" for the root).
func Dir(path string) string {
	if isClean(path) {
		if i := strings.LastIndexByte(path, '/'); i > 0 {
			return path[:i]
		}
		return "/"
	}
	parts, err := split(path)
	if err != nil || len(parts) <= 1 {
		return "/"
	}
	return "/" + strings.Join(parts[:len(parts)-1], "/")
}

// walk resolves path to an inode, following symlinks in interior components
// always, and in the final component when followLast is true. Returns the
// resolved inode and, for the benefit of mutators, the parent directory and
// leaf name (post symlink resolution of the parent chain).
//
//itcvet:holds mu(read)
func (fs *FS) walk(path string, followLast bool, depth int) (parent *inode, name string, node *inode, err error) {
	if depth > maxSymlinks {
		return nil, "", nil, fmt.Errorf("%w: %s", ErrLoop, path)
	}
	var partsBuf [8]string
	parts, err := splitInto(path, partsBuf[:0])
	if err != nil {
		return nil, "", nil, err
	}
	cur := fs.inodes[fs.root]
	if len(parts) == 0 {
		return nil, "", cur, nil
	}
	for i, comp := range parts {
		if cur.typ != TypeDir {
			return nil, "", nil, fmt.Errorf("%w: %s", ErrNotDir, path)
		}
		last := i == len(parts)-1
		childIno, ok := cur.entries[comp]
		if !ok {
			if last {
				return cur, comp, nil, nil // parent exists, leaf missing
			}
			return nil, "", nil, fmt.Errorf("%w: %s", ErrNotExist, path)
		}
		child := fs.inodes[childIno]
		if child.typ == TypeSymlink && (!last || followLast) {
			// Re-resolve: target relative to the directory containing the link.
			target := child.target
			if !strings.HasPrefix(target, "/") {
				prefix := "/" + strings.Join(parts[:i], "/")
				target = prefix + "/" + target
			}
			rest := strings.Join(parts[i+1:], "/")
			full := target
			if rest != "" {
				full = target + "/" + rest
			}
			return fs.walk(full, followLast, depth+1)
		}
		if last {
			return cur, comp, child, nil
		}
		cur = child
	}
	panic("unreachable")
}

// lookup resolves path to an existing inode or ErrNotExist.
func (fs *FS) lookup(path string, followLast bool) (*inode, error) {
	_, _, node, err := fs.walk(path, followLast, 0)
	if err != nil {
		return nil, err
	}
	if node == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	return node, nil
}

func (fs *FS) statOf(n *inode) Stat {
	st := Stat{
		Ino:     n.ino,
		Type:    n.typ,
		Mode:    n.mode,
		Nlink:   n.nlink,
		Mtime:   n.mtime,
		Version: n.version,
		Owner:   n.owner,
		Target:  n.target,
	}
	switch n.typ {
	case TypeRegular:
		st.Size = int64(len(n.data))
	case TypeDir:
		st.Size = int64(len(n.entries))
	case TypeSymlink:
		st.Size = int64(len(n.target))
	}
	return st
}

// Stat resolves path (following symlinks) and describes the inode.
func (fs *FS) Stat(path string) (Stat, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.lookup(path, true)
	if err != nil {
		return Stat{}, err
	}
	return fs.statOf(n), nil
}

// Lstat is Stat without following a final symlink component.
func (fs *FS) Lstat(path string) (Stat, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.lookup(path, false)
	if err != nil {
		return Stat{}, err
	}
	return fs.statOf(n), nil
}

// Exists reports whether path resolves to an inode.
func (fs *FS) Exists(path string) bool {
	_, err := fs.Stat(path)
	return err == nil
}

// create inserts a new inode under parent. Caller holds the write lock.
//
//itcvet:holds mu
func (fs *FS) create(parent *inode, name string, typ FileType, mode uint16, owner string) *inode {
	n := &inode{ino: fs.next, typ: typ, mode: mode, nlink: 1, mtime: fs.clock(), owner: owner}
	fs.next++
	if typ == TypeDir {
		n.entries = make(map[string]Ino)
		n.nlink = 2
		parent.nlink++
	}
	fs.inodes[n.ino] = n
	parent.entries[name] = n.ino
	parent.mtime = n.mtime
	parent.version++
	return n
}

// WriteFile creates or replaces the regular file at path with data, like the
// whole-file store operation Venus performs on close.
func (fs *FS) WriteFile(path string, data []byte, mode uint16, owner string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, name, node, err := fs.walk(path, true, 0)
	if err != nil {
		return err
	}
	if node == nil {
		if parent == nil || name == "" {
			return fmt.Errorf("%w: %s", ErrInvalid, path)
		}
		node = fs.create(parent, name, TypeRegular, mode, owner)
	} else if node.typ == TypeDir {
		return fmt.Errorf("%w: %s", ErrIsDir, path)
	} else if node.typ == TypeSymlink {
		return fmt.Errorf("%w: unresolved symlink %s", ErrInvalid, path)
	}
	fs.used += int64(len(data)) - int64(len(node.data))
	node.data = append(node.data[:0], data...)
	node.mtime = fs.clock()
	node.version++
	return nil
}

// ReadFile returns a copy of the regular file at path.
func (fs *FS) ReadFile(path string) ([]byte, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.lookup(path, true)
	if err != nil {
		return nil, err
	}
	if n.typ == TypeDir {
		return nil, fmt.Errorf("%w: %s", ErrIsDir, path)
	}
	return append([]byte(nil), n.data...), nil
}

// ReadAt copies file bytes at offset into buf, returning the count. Reads at
// or beyond EOF return 0.
func (fs *FS) ReadAt(path string, buf []byte, off int64) (int, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.lookup(path, true)
	if err != nil {
		return 0, err
	}
	if n.typ != TypeRegular {
		return 0, fmt.Errorf("%w: %s", ErrIsDir, path)
	}
	if off < 0 {
		return 0, ErrInvalid
	}
	if off >= int64(len(n.data)) {
		return 0, nil
	}
	return copy(buf, n.data[off:]), nil
}

// WriteAt writes buf into the file at offset, extending it with zeros if the
// offset is past EOF.
func (fs *FS) WriteAt(path string, buf []byte, off int64) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.lookup(path, true)
	if err != nil {
		return 0, err
	}
	if n.typ != TypeRegular {
		return 0, fmt.Errorf("%w: %s", ErrIsDir, path)
	}
	if off < 0 {
		return 0, ErrInvalid
	}
	end := off + int64(len(buf))
	if end > int64(len(n.data)) {
		grown := make([]byte, end)
		copy(grown, n.data)
		fs.used += end - int64(len(n.data))
		n.data = grown
	}
	copy(n.data[off:], buf)
	n.mtime = fs.clock()
	n.version++
	return len(buf), nil
}

// Truncate sets the file's length, extending with zeros or discarding.
func (fs *FS) Truncate(path string, size int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.lookup(path, true)
	if err != nil {
		return err
	}
	if n.typ != TypeRegular {
		return fmt.Errorf("%w: %s", ErrIsDir, path)
	}
	if size < 0 {
		return ErrInvalid
	}
	old := int64(len(n.data))
	switch {
	case size < old:
		n.data = n.data[:size]
	case size > old:
		grown := make([]byte, size)
		copy(grown, n.data)
		n.data = grown
	}
	fs.used += size - old
	n.mtime = fs.clock()
	n.version++
	return nil
}

// Mkdir creates a directory at path. The parent must exist.
func (fs *FS) Mkdir(path string, mode uint16, owner string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, name, node, err := fs.walk(path, true, 0)
	if err != nil {
		return err
	}
	if node != nil {
		return fmt.Errorf("%w: %s", ErrExist, path)
	}
	if parent == nil || name == "" {
		return fmt.Errorf("%w: %s", ErrInvalid, path)
	}
	fs.create(parent, name, TypeDir, mode, owner)
	return nil
}

// MkdirAll creates path and any missing parents.
func (fs *FS) MkdirAll(path string, mode uint16, owner string) error {
	parts, err := split(path)
	if err != nil {
		return err
	}
	cur := ""
	for _, p := range parts {
		cur += "/" + p
		if err := fs.Mkdir(cur, mode, owner); err != nil && !errors.Is(err, ErrExist) {
			return err
		}
	}
	return nil
}

// Symlink creates a symbolic link at path pointing at target.
func (fs *FS) Symlink(target, path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, name, node, err := fs.walk(path, false, 0)
	if err != nil {
		return err
	}
	if node != nil {
		return fmt.Errorf("%w: %s", ErrExist, path)
	}
	if parent == nil || name == "" {
		return fmt.Errorf("%w: %s", ErrInvalid, path)
	}
	n := fs.create(parent, name, TypeSymlink, 0o777, "")
	n.target = target
	return nil
}

// Readlink returns the target of the symlink at path.
func (fs *FS) Readlink(path string) (string, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.lookup(path, false)
	if err != nil {
		return "", err
	}
	if n.typ != TypeSymlink {
		return "", fmt.Errorf("%w: %s is not a symlink", ErrInvalid, path)
	}
	return n.target, nil
}

// Link creates a hard link newpath referring to the file at oldpath.
func (fs *FS) Link(oldpath, newpath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	oldNode, err := fs.lookup(oldpath, true)
	if err != nil {
		return err
	}
	if oldNode.typ == TypeDir {
		return fmt.Errorf("%w: hard link to directory", ErrIsDir)
	}
	parent, name, node, err := fs.walk(newpath, false, 0)
	if err != nil {
		return err
	}
	if node != nil {
		return fmt.Errorf("%w: %s", ErrExist, newpath)
	}
	if parent == nil || name == "" {
		return fmt.Errorf("%w: %s", ErrInvalid, newpath)
	}
	parent.entries[name] = oldNode.ino
	parent.version++
	parent.mtime = fs.clock()
	oldNode.nlink++
	return nil
}

// Remove unlinks the file or symlink at path. Directories need RemoveDir.
func (fs *FS) Remove(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, name, node, err := fs.walk(path, false, 0)
	if err != nil {
		return err
	}
	if node == nil {
		return fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	if node.typ == TypeDir {
		return fmt.Errorf("%w: %s", ErrIsDir, path)
	}
	fs.unlink(parent, name, node)
	return nil
}

// unlink detaches node from parent, freeing it at zero links. Caller holds
// the write lock.
//
//itcvet:holds mu
func (fs *FS) unlink(parent *inode, name string, node *inode) {
	delete(parent.entries, name)
	parent.version++
	parent.mtime = fs.clock()
	node.nlink--
	if node.nlink <= 0 {
		if node.typ == TypeRegular {
			fs.used -= int64(len(node.data))
		}
		delete(fs.inodes, node.ino)
	}
}

// RemoveDir removes the empty directory at path.
func (fs *FS) RemoveDir(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, name, node, err := fs.walk(path, false, 0)
	if err != nil {
		return err
	}
	if node == nil {
		return fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	if node.typ != TypeDir {
		return fmt.Errorf("%w: %s", ErrNotDir, path)
	}
	if node.ino == fs.root {
		return fmt.Errorf("%w: cannot remove root", ErrInvalid)
	}
	if len(node.entries) != 0 {
		return fmt.Errorf("%w: %s", ErrNotEmpty, path)
	}
	delete(parent.entries, name)
	parent.nlink--
	parent.version++
	parent.mtime = fs.clock()
	delete(fs.inodes, node.ino)
	return nil
}

// RemoveAll removes path and all its children. Missing paths are not errors.
func (fs *FS) RemoveAll(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, name, node, err := fs.walk(path, false, 0)
	if err != nil {
		return err
	}
	if node == nil {
		return nil
	}
	if node.ino == fs.root {
		return fmt.Errorf("%w: cannot remove root", ErrInvalid)
	}
	fs.removeTree(node)
	delete(parent.entries, name)
	if node.typ == TypeDir {
		parent.nlink--
	}
	parent.version++
	parent.mtime = fs.clock()
	return nil
}

// removeTree frees node and, for directories, everything beneath it.
// Caller holds the write lock.
//
//itcvet:holds mu
func (fs *FS) removeTree(node *inode) {
	if node.typ == TypeDir {
		for _, childIno := range node.entries {
			if child, ok := fs.inodes[childIno]; ok {
				fs.removeTree(child)
			}
		}
	}
	node.nlink = 0
	if node.typ == TypeRegular {
		fs.used -= int64(len(node.data))
	}
	delete(fs.inodes, node.ino)
}

// Rename moves oldpath to newpath, replacing a non-directory target. It
// works for files, symlinks and whole directory subtrees (the prototype's
// inability to rename Vice directories was an implementation artifact this
// substrate does not share, §5.1).
func (fs *FS) Rename(oldpath, newpath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	oldParent, oldName, node, err := fs.walk(oldpath, false, 0)
	if err != nil {
		return err
	}
	if node == nil {
		return fmt.Errorf("%w: %s", ErrNotExist, oldpath)
	}
	if node.ino == fs.root {
		return fmt.Errorf("%w: cannot rename root", ErrInvalid)
	}
	newParent, newName, target, err := fs.walk(newpath, false, 0)
	if err != nil {
		return err
	}
	if newParent == nil || newName == "" {
		return fmt.Errorf("%w: %s", ErrInvalid, newpath)
	}
	// Renaming a directory under itself would orphan the subtree.
	if node.typ == TypeDir && fs.isAncestor(node, newParent) {
		return fmt.Errorf("%w: cannot move directory under itself", ErrInvalid)
	}
	if target != nil {
		if target.ino == node.ino {
			return nil
		}
		if target.typ == TypeDir {
			if len(target.entries) != 0 {
				return fmt.Errorf("%w: %s", ErrNotEmpty, newpath)
			}
			if node.typ != TypeDir {
				return fmt.Errorf("%w: %s", ErrIsDir, newpath)
			}
			newParent.nlink--
			delete(fs.inodes, target.ino)
		} else {
			fs.unlink(newParent, newName, target)
		}
	}
	delete(oldParent.entries, oldName)
	newParent.entries[newName] = node.ino
	if node.typ == TypeDir && oldParent != newParent {
		oldParent.nlink--
		newParent.nlink++
	}
	now := fs.clock()
	oldParent.version++
	oldParent.mtime = now
	newParent.version++
	newParent.mtime = now
	return nil
}

// isAncestor reports whether dir appears on the path from root to node
// (inclusive). Caller holds the lock.
// isAncestor reports whether node lies in the subtree rooted at dir.
// Caller holds the lock (read suffices).
//
//itcvet:holds mu(read)
func (fs *FS) isAncestor(dir, node *inode) bool {
	if dir == node {
		return true
	}
	if dir.typ != TypeDir {
		return false
	}
	for _, childIno := range dir.entries {
		child, ok := fs.inodes[childIno]
		if !ok {
			continue
		}
		if child.typ == TypeDir && fs.isAncestor(child, node) {
			return true
		}
	}
	return false
}

// ReadDir lists the directory at path in name order.
func (fs *FS) ReadDir(path string) ([]DirEntry, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.lookup(path, true)
	if err != nil {
		return nil, err
	}
	if n.typ != TypeDir {
		return nil, fmt.Errorf("%w: %s", ErrNotDir, path)
	}
	out := make([]DirEntry, 0, len(n.entries))
	for name, ino := range n.entries {
		out = append(out, DirEntry{Name: name, Ino: ino, Type: fs.inodes[ino].typ})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Chmod replaces the permission bits on path.
func (fs *FS) Chmod(path string, mode uint16) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.lookup(path, true)
	if err != nil {
		return err
	}
	n.mode = mode
	n.version++
	return nil
}

// Chown replaces the owner on path.
func (fs *FS) Chown(path, owner string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.lookup(path, true)
	if err != nil {
		return err
	}
	n.owner = owner
	return nil
}

// Walk visits every path under root in depth-first name order, calling fn
// with the path and stat of each inode (including root itself). If fn
// returns an error the walk stops and returns it.
func (fs *FS) Walk(root string, fn func(path string, st Stat) error) error {
	st, err := fs.Lstat(root)
	if err != nil {
		return err
	}
	if err := fn(Clean(root), st); err != nil {
		return err
	}
	if st.Type != TypeDir {
		return nil
	}
	entries, err := fs.ReadDir(root)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if err := fs.Walk(Join(root, e.Name), fn); err != nil {
			return err
		}
	}
	return nil
}

// TreeSize returns the total regular-file bytes under root.
func (fs *FS) TreeSize(root string) (int64, error) {
	var total int64
	err := fs.Walk(root, func(_ string, st Stat) error {
		if st.Type == TypeRegular {
			total += st.Size
		}
		return nil
	})
	return total, err
}

// CopyTree deep-copies the subtree at src (in this FS) to dst in the
// destination FS. dst must not exist; parents of dst must.
func CopyTree(srcFS *FS, src string, dstFS *FS, dst string) error {
	st, err := srcFS.Lstat(src)
	if err != nil {
		return err
	}
	switch st.Type {
	case TypeDir:
		if err := dstFS.Mkdir(dst, st.Mode, st.Owner); err != nil {
			return err
		}
		entries, err := srcFS.ReadDir(src)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if err := CopyTree(srcFS, Join(src, e.Name), dstFS, Join(dst, e.Name)); err != nil {
				return err
			}
		}
		return nil
	case TypeSymlink:
		target, err := srcFS.Readlink(src)
		if err != nil {
			return err
		}
		return dstFS.Symlink(target, dst)
	default:
		data, err := srcFS.ReadFile(src)
		if err != nil {
			return err
		}
		return dstFS.WriteFile(dst, data, st.Mode, st.Owner)
	}
}
