package unixfs

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func newFS() *FS {
	var t int64
	return New(func() int64 { t++; return t })
}

func TestPathHelpers(t *testing.T) {
	cases := []struct{ in, clean, base, dir string }{
		{"/", "/", "/", "/"},
		{"/a", "/a", "a", "/"},
		{"/a/b/c", "/a/b/c", "c", "/a/b"},
		{"/a//b/./c/", "/a/b/c", "c", "/a/b"},
		{"/a/b/../c", "/a/c", "c", "/a"},
		{"/../a", "/a", "a", "/"},
	}
	for _, c := range cases {
		if got := Clean(c.in); got != c.clean {
			t.Errorf("Clean(%q) = %q, want %q", c.in, got, c.clean)
		}
		if got := Base(c.in); got != c.base {
			t.Errorf("Base(%q) = %q, want %q", c.in, got, c.base)
		}
		if got := Dir(c.in); got != c.dir {
			t.Errorf("Dir(%q) = %q, want %q", c.in, got, c.dir)
		}
	}
	if got := Join("a", "b/c", "d"); got != "/a/b/c/d" {
		t.Errorf("Join = %q", got)
	}
}

func TestWriteReadFile(t *testing.T) {
	fs := newFS()
	data := []byte("hello vice")
	if err := fs.WriteFile("/f", data, 0o644, "satya"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
	st, err := fs.Stat("/f")
	if err != nil {
		t.Fatal(err)
	}
	if st.Type != TypeRegular || st.Size != int64(len(data)) || st.Owner != "satya" || st.Mode != 0o644 {
		t.Fatalf("stat = %+v", st)
	}
}

func TestOverwriteBumpsVersion(t *testing.T) {
	fs := newFS()
	fs.WriteFile("/f", []byte("v1"), 0o644, "")
	st1, _ := fs.Stat("/f")
	fs.WriteFile("/f", []byte("v2"), 0o644, "")
	st2, _ := fs.Stat("/f")
	if st2.Version <= st1.Version {
		t.Fatalf("version did not advance: %d -> %d", st1.Version, st2.Version)
	}
	if st2.Mtime <= st1.Mtime {
		t.Fatalf("mtime did not advance: %d -> %d", st1.Mtime, st2.Mtime)
	}
	if st2.Ino != st1.Ino {
		t.Fatal("overwrite allocated a new inode")
	}
}

func TestReadMissing(t *testing.T) {
	fs := newFS()
	if _, err := fs.ReadFile("/nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
	if _, err := fs.ReadFile("/no/such/dir/file"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteIntoMissingDirFails(t *testing.T) {
	fs := newFS()
	if err := fs.WriteFile("/a/b", nil, 0o644, ""); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
}

func TestRelativePathRejected(t *testing.T) {
	fs := newFS()
	if err := fs.WriteFile("rel", nil, 0o644, ""); !errors.Is(err, ErrInvalid) {
		t.Fatalf("err = %v, want ErrInvalid", err)
	}
}

func TestMkdirAndReadDir(t *testing.T) {
	fs := newFS()
	if err := fs.MkdirAll("/usr/satya/src", 0o755, "satya"); err != nil {
		t.Fatal(err)
	}
	fs.WriteFile("/usr/satya/a.c", []byte("int main(){}"), 0o644, "satya")
	fs.WriteFile("/usr/satya/b.c", nil, 0o644, "satya")
	entries, err := fs.ReadDir("/usr/satya")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name)
	}
	if strings.Join(names, ",") != "a.c,b.c,src" {
		t.Fatalf("entries = %v", names)
	}
	if entries[2].Type != TypeDir {
		t.Fatal("src not a dir")
	}
}

func TestMkdirExisting(t *testing.T) {
	fs := newFS()
	fs.Mkdir("/d", 0o755, "")
	if err := fs.Mkdir("/d", 0o755, ""); !errors.Is(err, ErrExist) {
		t.Fatalf("err = %v, want ErrExist", err)
	}
	if err := fs.MkdirAll("/d", 0o755, ""); err != nil {
		t.Fatalf("MkdirAll on existing: %v", err)
	}
}

func TestReadDirOnFile(t *testing.T) {
	fs := newFS()
	fs.WriteFile("/f", nil, 0o644, "")
	if _, err := fs.ReadDir("/f"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("err = %v, want ErrNotDir", err)
	}
}

func TestRemove(t *testing.T) {
	fs := newFS()
	fs.WriteFile("/f", []byte("data"), 0o644, "")
	if err := fs.Remove("/f"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/f") {
		t.Fatal("file survived Remove")
	}
	if err := fs.Remove("/f"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
	if got := fs.UsedBytes(); got != 0 {
		t.Fatalf("UsedBytes = %d after remove", got)
	}
}

func TestRemoveDirSemantics(t *testing.T) {
	fs := newFS()
	fs.Mkdir("/d", 0o755, "")
	fs.WriteFile("/d/f", nil, 0o644, "")
	if err := fs.RemoveDir("/d"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("err = %v, want ErrNotEmpty", err)
	}
	if err := fs.Remove("/d"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("err = %v, want ErrIsDir", err)
	}
	fs.Remove("/d/f")
	if err := fs.RemoveDir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.RemoveDir("/"); !errors.Is(err, ErrInvalid) {
		t.Fatalf("removing root: %v", err)
	}
}

func TestRemoveAll(t *testing.T) {
	fs := newFS()
	fs.MkdirAll("/a/b/c", 0o755, "")
	fs.WriteFile("/a/b/f1", bytes.Repeat([]byte("x"), 100), 0o644, "")
	fs.WriteFile("/a/b/c/f2", bytes.Repeat([]byte("y"), 50), 0o644, "")
	if err := fs.RemoveAll("/a"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/a") {
		t.Fatal("tree survived RemoveAll")
	}
	if got := fs.UsedBytes(); got != 0 {
		t.Fatalf("UsedBytes = %d", got)
	}
	if err := fs.RemoveAll("/a"); err != nil {
		t.Fatalf("RemoveAll on missing path: %v", err)
	}
}

func TestRenameFile(t *testing.T) {
	fs := newFS()
	fs.WriteFile("/old", []byte("data"), 0o644, "")
	st1, _ := fs.Stat("/old")
	if err := fs.Rename("/old", "/new"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/old") {
		t.Fatal("old name survived")
	}
	st2, err := fs.Stat("/new")
	if err != nil {
		t.Fatal(err)
	}
	if st2.Ino != st1.Ino {
		t.Fatal("rename changed the inode")
	}
}

func TestRenameReplacesFile(t *testing.T) {
	fs := newFS()
	fs.WriteFile("/a", []byte("a"), 0o644, "")
	fs.WriteFile("/b", []byte("b"), 0o644, "")
	if err := fs.Rename("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("/b")
	if string(got) != "a" {
		t.Fatalf("b = %q", got)
	}
}

func TestRenameDirectorySubtree(t *testing.T) {
	fs := newFS()
	fs.MkdirAll("/src/pkg", 0o755, "")
	fs.WriteFile("/src/pkg/f.c", []byte("c"), 0o644, "")
	fs.Mkdir("/dst", 0o755, "")
	if err := fs.Rename("/src", "/dst/moved"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/dst/moved/pkg/f.c")
	if err != nil || string(got) != "c" {
		t.Fatalf("subtree content after rename: %v %q", err, got)
	}
}

func TestRenameDirUnderItselfFails(t *testing.T) {
	fs := newFS()
	fs.MkdirAll("/a/b", 0o755, "")
	if err := fs.Rename("/a", "/a/b/a"); !errors.Is(err, ErrInvalid) {
		t.Fatalf("err = %v, want ErrInvalid", err)
	}
}

func TestRenameOntoNonEmptyDirFails(t *testing.T) {
	fs := newFS()
	fs.Mkdir("/a", 0o755, "")
	fs.MkdirAll("/b/x", 0o755, "")
	if err := fs.Rename("/a", "/b"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("err = %v, want ErrNotEmpty", err)
	}
}

func TestSymlinkResolution(t *testing.T) {
	fs := newFS()
	fs.MkdirAll("/vice/unix/sun/bin", 0o755, "")
	fs.WriteFile("/vice/unix/sun/bin/cc", []byte("ELF"), 0o755, "")
	// The paper's Figure 3-2: local /bin is a symlink into /vice.
	if err := fs.Symlink("/vice/unix/sun/bin", "/bin"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/bin/cc")
	if err != nil || string(got) != "ELF" {
		t.Fatalf("through-symlink read: %v %q", err, got)
	}
	st, err := fs.Lstat("/bin")
	if err != nil || st.Type != TypeSymlink {
		t.Fatalf("Lstat = %+v, %v", st, err)
	}
	if target, _ := fs.Readlink("/bin"); target != "/vice/unix/sun/bin" {
		t.Fatalf("Readlink = %q", target)
	}
	st, err = fs.Stat("/bin")
	if err != nil || st.Type != TypeDir {
		t.Fatalf("Stat follows: %+v, %v", st, err)
	}
}

func TestRelativeSymlink(t *testing.T) {
	fs := newFS()
	fs.MkdirAll("/d/sub", 0o755, "")
	fs.WriteFile("/d/sub/real", []byte("r"), 0o644, "")
	if err := fs.Symlink("sub/real", "/d/alias"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/d/alias")
	if err != nil || string(got) != "r" {
		t.Fatalf("relative symlink: %v %q", err, got)
	}
}

func TestSymlinkLoopDetected(t *testing.T) {
	fs := newFS()
	fs.Symlink("/b", "/a")
	fs.Symlink("/a", "/b")
	if _, err := fs.ReadFile("/a"); !errors.Is(err, ErrLoop) {
		t.Fatalf("err = %v, want ErrLoop", err)
	}
}

func TestHardLink(t *testing.T) {
	fs := newFS()
	fs.WriteFile("/f", []byte("shared"), 0o644, "")
	if err := fs.Link("/f", "/g"); err != nil {
		t.Fatal(err)
	}
	stf, _ := fs.Stat("/f")
	stg, _ := fs.Stat("/g")
	if stf.Ino != stg.Ino || stf.Nlink != 2 {
		t.Fatalf("f=%+v g=%+v", stf, stg)
	}
	fs.Remove("/f")
	got, err := fs.ReadFile("/g")
	if err != nil || string(got) != "shared" {
		t.Fatalf("data lost after unlinking one name: %v %q", err, got)
	}
	st, _ := fs.Stat("/g")
	if st.Nlink != 1 {
		t.Fatalf("Nlink = %d", st.Nlink)
	}
}

func TestHardLinkToDirFails(t *testing.T) {
	fs := newFS()
	fs.Mkdir("/d", 0o755, "")
	if err := fs.Link("/d", "/e"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadWriteAt(t *testing.T) {
	fs := newFS()
	fs.WriteFile("/f", []byte("0123456789"), 0o644, "")
	buf := make([]byte, 4)
	n, err := fs.ReadAt("/f", buf, 3)
	if err != nil || n != 4 || string(buf) != "3456" {
		t.Fatalf("ReadAt = %d %q %v", n, buf, err)
	}
	// Read at EOF returns 0.
	if n, err := fs.ReadAt("/f", buf, 10); err != nil || n != 0 {
		t.Fatalf("ReadAt EOF = %d %v", n, err)
	}
	// Overwrite in the middle.
	if _, err := fs.WriteAt("/f", []byte("XY"), 4); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("/f")
	if string(got) != "0123XY6789" {
		t.Fatalf("after WriteAt: %q", got)
	}
	// Extend past EOF zero-fills.
	if _, err := fs.WriteAt("/f", []byte("Z"), 12); err != nil {
		t.Fatal(err)
	}
	got, _ = fs.ReadFile("/f")
	if string(got) != "0123XY6789\x00\x00Z" {
		t.Fatalf("after extend: %q", got)
	}
}

func TestTruncate(t *testing.T) {
	fs := newFS()
	fs.WriteFile("/f", []byte("0123456789"), 0o644, "")
	if err := fs.Truncate("/f", 4); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("/f")
	if string(got) != "0123" {
		t.Fatalf("after shrink: %q", got)
	}
	if err := fs.Truncate("/f", 6); err != nil {
		t.Fatal(err)
	}
	got, _ = fs.ReadFile("/f")
	if string(got) != "0123\x00\x00" {
		t.Fatalf("after grow: %q", got)
	}
	if got := fs.UsedBytes(); got != 6 {
		t.Fatalf("UsedBytes = %d", got)
	}
	if err := fs.Truncate("/f", -1); !errors.Is(err, ErrInvalid) {
		t.Fatalf("negative truncate: %v", err)
	}
}

func TestUsedBytesAccounting(t *testing.T) {
	fs := newFS()
	fs.WriteFile("/a", make([]byte, 100), 0o644, "")
	fs.WriteFile("/b", make([]byte, 50), 0o644, "")
	if got := fs.UsedBytes(); got != 150 {
		t.Fatalf("UsedBytes = %d, want 150", got)
	}
	fs.WriteFile("/a", make([]byte, 10), 0o644, "")
	if got := fs.UsedBytes(); got != 60 {
		t.Fatalf("UsedBytes = %d, want 60", got)
	}
}

func TestChmodChown(t *testing.T) {
	fs := newFS()
	fs.WriteFile("/f", nil, 0o644, "satya")
	fs.Chmod("/f", 0o600)
	fs.Chown("/f", "howard")
	st, _ := fs.Stat("/f")
	if st.Mode != 0o600 || st.Owner != "howard" {
		t.Fatalf("stat = %+v", st)
	}
}

func TestWalkAndTreeSize(t *testing.T) {
	fs := newFS()
	fs.MkdirAll("/a/b", 0o755, "")
	fs.WriteFile("/a/f1", make([]byte, 10), 0o644, "")
	fs.WriteFile("/a/b/f2", make([]byte, 20), 0o644, "")
	var paths []string
	err := fs.Walk("/a", func(p string, _ Stat) error {
		paths = append(paths, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"/a", "/a/b", "/a/b/f2", "/a/f1"}
	if fmt.Sprint(paths) != fmt.Sprint(want) {
		t.Fatalf("paths = %v, want %v", paths, want)
	}
	size, err := fs.TreeSize("/a")
	if err != nil || size != 30 {
		t.Fatalf("TreeSize = %d, %v", size, err)
	}
}

func TestCopyTree(t *testing.T) {
	src := newFS()
	src.MkdirAll("/tree/sub", 0o755, "u")
	src.WriteFile("/tree/f", []byte("data"), 0o640, "u")
	src.WriteFile("/tree/sub/g", []byte("more"), 0o644, "u")
	src.Symlink("/tree/f", "/tree/link")

	dst := newFS()
	if err := CopyTree(src, "/tree", dst, "/copy"); err != nil {
		t.Fatal(err)
	}
	got, err := dst.ReadFile("/copy/sub/g")
	if err != nil || string(got) != "more" {
		t.Fatalf("copy content: %v %q", err, got)
	}
	st, _ := dst.Stat("/copy/f")
	if st.Mode != 0o640 || st.Owner != "u" {
		t.Fatalf("copied stat = %+v", st)
	}
	if target, _ := dst.Readlink("/copy/link"); target != "/tree/f" {
		t.Fatalf("copied symlink = %q", target)
	}
}

func TestVersionMonotonicUnderMutation(t *testing.T) {
	fs := newFS()
	fs.Mkdir("/d", 0o755, "")
	var last uint64
	for i := 0; i < 5; i++ {
		fs.WriteFile(fmt.Sprintf("/d/f%d", i), nil, 0o644, "")
		st, _ := fs.Stat("/d")
		if st.Version <= last {
			t.Fatalf("directory version not monotone: %d then %d", last, st.Version)
		}
		last = st.Version
	}
}

// Property: WriteFile then ReadFile round-trips arbitrary contents at
// arbitrary (cleaned) names.
func TestQuickWriteReadRoundTrip(t *testing.T) {
	fs := newFS()
	f := func(name string, data []byte) bool {
		if name == "" || strings.ContainsAny(name, "/\x00") {
			return true // skip names that are not single components
		}
		path := "/" + name
		if name == "." || name == ".." {
			return true
		}
		if err := fs.WriteFile(path, data, 0o644, ""); err != nil {
			return false
		}
		got, err := fs.ReadFile(path)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: UsedBytes always equals the sum of file sizes reachable from
// the root, under a random sequence of writes and removes.
func TestQuickUsedBytesConsistent(t *testing.T) {
	fs := newFS()
	f := func(ops []struct {
		N    uint8
		Size uint16
		Del  bool
	}) bool {
		for _, op := range ops {
			path := fmt.Sprintf("/f%d", op.N%16)
			if op.Del {
				fs.Remove(path)
			} else {
				fs.WriteFile(path, make([]byte, op.Size), 0o644, "")
			}
		}
		sum, err := fs.TreeSize("/")
		return err == nil && sum == fs.UsedBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
