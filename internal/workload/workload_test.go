package workload

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"itcfs/internal/prot"
	"itcfs/internal/proto"
	"itcfs/internal/rpc"
	"itcfs/internal/secure"
	"itcfs/internal/sim"
	"itcfs/internal/unixfs"
	"itcfs/internal/venus"
	"itcfs/internal/vice"
	"itcfs/internal/virtue"
	"itcfs/internal/volume"
)

// rig is a minimal direct-dispatch workstation (no simulated network), so
// driver logic is testable without kernel plumbing; virtual-time behaviour
// is covered by the harness tests.
func rig(t *testing.T) *virtue.FS {
	t.Helper()
	var clock int64
	clk := func() int64 { clock++; return clock }
	db := prot.NewDB()
	for _, m := range []prot.Mutation{
		{Kind: prot.MutAddUser, Name: "u1", Key: secure.DeriveKey("u1", "pw")},
		{Kind: prot.MutAddGroup, Name: vice.AdminGroup},
	} {
		if err := db.Apply(m); err != nil {
			t.Fatal(err)
		}
	}
	next := uint32(1)
	srv := vice.New(vice.Config{
		Name: "s0", Mode: vice.Prototype, DB: db, Clock: clk,
		AllocVolID: func() uint32 { next++; return next },
	})
	acl := prot.NewACL()
	acl.Grant(prot.AnyUser, prot.RightsAll)
	root := volume.New(1, "root", acl, 0, "u1", clk)
	srv.AddVolume(root)
	srv.Loc().Install([]proto.LocEntry{{Prefix: "/", Volume: 1, Custodian: "s0"}}, nil)

	local := unixfs.New(clk)
	var v *venus.Venus
	v = venus.New(venus.Config{
		Mode: vice.Prototype, Local: local, HomeServer: "s0",
		Connect: func(_ *sim.Proc, server string) (venus.Conn, error) {
			return directConn{srv: srv, user: v.User}, nil
		},
	})
	v.Login("u1")
	return virtue.New(local, v)
}

type directConn struct {
	srv  *vice.Server
	user func() string
}

func (c directConn) Call(p *sim.Proc, req rpc.Request) (rpc.Response, error) {
	return c.srv.Dispatcher().Dispatch(rpc.Ctx{User: c.user(), Proc: p}, req), nil
}

// mk prepares the directories the driver expects.
func mk(t *testing.T, fs *virtue.FS, dirs ...string) {
	t.Helper()
	for _, d := range dirs {
		cur := ""
		for _, part := range strings.Split(strings.TrimPrefix(d, "/"), "/") {
			cur += "/" + part
			if err := fs.Mkdir(nil, cur, 0o755); err != nil && !strings.Contains(err.Error(), "exists") {
				t.Fatalf("mkdir %s: %v", cur, err)
			}
		}
	}
}

func TestDriverRunsCleanly(t *testing.T) {
	fs := rig(t)
	mk(t, fs, "/vice/usr/u1", "/vice/unix/bin")
	cfg := DefaultConfig(7)
	cfg.Think = 0      // no kernel in this rig
	cfg.BurstEvery = 0 // one op per step, so the count below is exact
	cfg.UserFiles = 10
	cfg.SysFiles = 8
	u := NewUser("u1", "/usr/u1", cfg)
	if err := PopulateSystem(nil, fs, cfg, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	if err := u.PopulateHome(nil, fs); err != nil {
		t.Fatal(err)
	}
	if err := u.Run(nil, fs, 200); err != nil {
		t.Fatalf("driver: %v", err)
	}
	if u.Ops() != 200 {
		t.Fatalf("ops = %d", u.Ops())
	}
	// The workload really hit the cache and the server.
	st := fs.Venus().Stats()
	if st.Opens == 0 || st.Validations == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDriverDeterministic(t *testing.T) {
	run := func() venus.Stats {
		fs := rig(t)
		mk(t, fs, "/vice/usr/u1", "/vice/unix/bin")
		cfg := DefaultConfig(99)
		cfg.Think = 0
		cfg.UserFiles = 10
		cfg.SysFiles = 8
		u := NewUser("u1", "/usr/u1", cfg)
		if err := PopulateSystem(nil, fs, cfg, rand.New(rand.NewSource(1))); err != nil {
			t.Fatal(err)
		}
		if err := u.PopulateHome(nil, fs); err != nil {
			t.Fatal(err)
		}
		if err := u.Run(nil, fs, 100); err != nil {
			t.Fatal(err)
		}
		return fs.Venus().Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identical runs diverged: %+v vs %+v", a, b)
	}
}

func TestMixWeightsRespected(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	m := Mix{ReadUser: 1} // only reads
	for i := 0; i < 50; i++ {
		if k := m.pick(r); k != OpReadUser {
			t.Fatalf("pick = %v with read-only mix", k)
		}
	}
	m = Mix{Temp: 5}
	for i := 0; i < 50; i++ {
		if k := m.pick(r); k != OpTempFile {
			t.Fatalf("pick = %v with temp-only mix", k)
		}
	}
}

func TestGenerateTreeShape(t *testing.T) {
	fs := rig(t)
	cfg := DefaultAndrew()
	cfg.Files = 20
	cfg.Dirs = 3
	files, err := GenerateTree(nil, fs, "/src", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 20 {
		t.Fatalf("generated %d files", len(files))
	}
	for _, f := range files {
		st, err := fs.Stat(nil, f)
		if err != nil || st.Size == 0 {
			t.Fatalf("file %s: %+v %v", f, st, err)
		}
	}
	entries, err := fs.ReadDir(nil, "/src")
	if err != nil {
		t.Fatal(err)
	}
	dirs := 0
	for _, e := range entries {
		if e.IsDir {
			dirs++
		}
	}
	if dirs != 3 {
		t.Fatalf("dirs = %d", dirs)
	}
}

func TestAndrewPhasesProduceTarget(t *testing.T) {
	fs := rig(t)
	cfg := DefaultAndrew()
	cfg.Files = 12
	cfg.Dirs = 2
	// Shrink workstation costs: this rig has no virtual clock, so Sleep
	// must not be called — run with a kernel instead.
	k := sim.NewKernel()
	var pt PhaseTimes
	var runErr error
	k.Spawn("bench", func(p *sim.Proc) {
		if _, err := GenerateTree(p, fs, "/src", cfg); err != nil {
			runErr = err
			return
		}
		pt, runErr = RunAndrew(p, fs, "/src", "/dst", cfg)
	})
	k.Run()
	if runErr != nil {
		t.Fatal(runErr)
	}
	// All phases took time; Make dominates (compilation).
	if pt.MakeDir <= 0 || pt.Copy <= 0 || pt.ScanDir <= 0 || pt.ReadAll <= 0 || pt.Make <= 0 {
		t.Fatalf("phases: %+v", pt)
	}
	if pt.Make < pt.Copy {
		t.Fatalf("Make (%v) should dominate Copy (%v)", pt.Make, pt.Copy)
	}
	// The copy really happened (file 000 lands in the source root, file 001
	// in sub0).
	got, err := fs.ReadFile(nil, "/dst/src000.c")
	if err != nil || len(got) == 0 {
		t.Fatalf("target copy: %d bytes, %v", len(got), err)
	}
	got, err = fs.ReadFile(nil, "/dst/sub0/src001.c")
	if err != nil || len(got) == 0 {
		t.Fatalf("target subdir copy: %d bytes, %v", len(got), err)
	}
	// The link output exists.
	if st, err := fs.Stat(nil, "/dst/a.out"); err != nil || st.Size == 0 {
		t.Fatalf("a.out: %+v %v", st, err)
	}
}

func TestAndrewCalibrationLocal(t *testing.T) {
	// The calibrated configuration lands the local run near the paper's
	// ≈1000 seconds (within a generous band; the *ratio* remote/local is
	// what the experiments must reproduce).
	fs := rig(t)
	cfg := DefaultAndrew()
	k := sim.NewKernel()
	var pt PhaseTimes
	var runErr error
	k.Spawn("bench", func(p *sim.Proc) {
		if _, err := GenerateTree(p, fs, "/src", cfg); err != nil {
			runErr = err
			return
		}
		pt, runErr = RunAndrew(p, fs, "/src", "/dst", cfg)
	})
	k.Run()
	if runErr != nil {
		t.Fatal(runErr)
	}
	total := pt.Total()
	if total < 600*time.Second || total > 1500*time.Second {
		t.Fatalf("local Andrew total = %v, want ≈1000s", total)
	}
}
