// Package workload generates file system load: the synthetic file-reference
// driver the paper's methodology builds on (Satyanarayanan, "A Synthetic
// Driver for File System Simulation", 1984 — reference [13]), and the
// five-phase source-tree benchmark of §5.2.
//
// The driver models the class-specific file properties of §4: system
// binaries are read by everyone and essentially never written; user files
// are read-mostly and written by their owner; temporary files live in the
// workstation's local space and never touch Vice. Popularity within a class
// follows a Zipf-like distribution, which is what produces realistic cache
// behaviour (a small working set absorbing most opens).
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"itcfs/internal/sim"
	"itcfs/internal/virtue"
)

// OpKind enumerates driver operations.
type OpKind int

// Driver operations.
const (
	OpReadUser  OpKind = iota // open-read-close a user file
	OpWriteUser               // open-write-close a user file
	OpStatUser                // stat a user file
	OpListDir                 // list the user's directory
	OpReadSys                 // open-read-close a system binary
	OpStatSys                 // stat a system binary
	OpTempFile                // create-write-read-delete a local temp file
	opKinds
)

// Mix sets the relative weight of each operation. Zero-value weights drop
// the operation.
type Mix struct {
	ReadUser, WriteUser, StatUser, ListDir, ReadSys, StatSys, Temp int
}

// DefaultMix approximates the measured usage profile behind §5.2's call
// histogram: opens dominate and are mostly reads, status inquiries are
// frequent (directory browsing), writes are rare.
func DefaultMix() Mix {
	return Mix{
		ReadUser:  38,
		WriteUser: 3,
		StatUser:  20,
		ListDir:   6,
		ReadSys:   24,
		StatSys:   6,
		Temp:      3,
	}
}

func (m Mix) weights() [opKinds]int {
	return [opKinds]int{m.ReadUser, m.WriteUser, m.StatUser, m.ListDir, m.ReadSys, m.StatSys, m.Temp}
}

// pick selects an operation according to the weights.
func (m Mix) pick(r *rand.Rand) OpKind {
	w := m.weights()
	total := 0
	for _, v := range w {
		total += v
	}
	if total == 0 {
		return OpReadUser
	}
	n := r.Intn(total)
	for k, v := range w {
		if n < v {
			return OpKind(k)
		}
		n -= v
	}
	return OpReadUser
}

// Config shapes a user's synthetic activity.
type Config struct {
	Seed      int64
	Mix       Mix
	UserFiles int    // files in the user's home volume
	SysFiles  int    // shared system binaries
	SysRoot   string // Vice directory of system binaries (e.g. "/unix/bin")
	// Zipf skew: higher = more concentrated working set. s>1 required.
	Zipf float64
	// MeanKB controls the file size distribution (paper: >99% of files are
	// small; sizes here are a few KB with a long tail).
	MeanKB int
	// Think is the mean pause between operations (exponential).
	Think time.Duration
	// Bursts: with probability 1/BurstEvery per step, the user fires
	// BurstOps operations back to back (a compile, a directory sweep) —
	// the "intense file system activity by a few users" that produced the
	// paper's short-term 98% CPU peaks (§5.2). Zero disables bursts.
	BurstEvery int
	BurstOps   int
}

// DefaultConfig returns the standard driver shape.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:       seed,
		Mix:        DefaultMix(),
		UserFiles:  150,
		SysFiles:   60,
		SysRoot:    "/unix/bin",
		Zipf:       1.4,
		MeanKB:     4,
		Think:      14 * time.Second,
		BurstEvery: 350,
		BurstOps:   120,
	}
}

// User is one simulated person generating file references at a workstation.
type User struct {
	Name string
	Home string // Vice path of the home directory (e.g. "/usr/satya")
	cfg  Config
	r    *rand.Rand
	uz   *rand.Zipf // user-file popularity
	sz   *rand.Zipf // system-file popularity
	ops  int64
}

// NewUser creates a driver for one user.
func NewUser(name, home string, cfg Config) *User {
	r := rand.New(rand.NewSource(cfg.Seed))
	return &User{
		Name: name,
		Home: home,
		cfg:  cfg,
		r:    r,
		uz:   rand.NewZipf(r, cfg.Zipf, 1, uint64(cfg.UserFiles-1)),
		sz:   rand.NewZipf(r, cfg.Zipf, 1, uint64(cfg.SysFiles-1)),
	}
}

// Ops returns the number of operations performed.
func (u *User) Ops() int64 { return u.ops }

// FileSize draws a file size: mostly a few KB, occasionally much larger
// (the long tail of the 1981 file-size study the paper cites [12]).
func (u *User) FileSize() int {
	kb := u.cfg.MeanKB
	base := u.r.Intn(2*kb*1024) + 256
	if u.r.Intn(100) < 2 {
		base *= 20 // the rare big file
	}
	return base
}

func (u *User) userFile(i int) string { return fmt.Sprintf("%s/f%03d", u.Home, i) }
func (u *User) sysFile(i int) string  { return fmt.Sprintf("%s/bin%03d", u.cfg.SysRoot, i) }

// PopulateHome creates the user's files (run once before the measured
// interval). fs paths are workstation paths; the home directory must be
// mounted under /vice already.
func (u *User) PopulateHome(p *sim.Proc, fs *virtue.FS) error {
	for i := 0; i < u.cfg.UserFiles; i++ {
		data := randBytes(u.r, u.FileSize())
		if err := fs.WriteFile(p, "/vice"+u.userFile(i), data); err != nil {
			return fmt.Errorf("populate %s: %w", u.userFile(i), err)
		}
	}
	return nil
}

// PopulateSystem installs the shared binaries (run once per cell, by the
// operator).
func PopulateSystem(p *sim.Proc, fs *virtue.FS, cfg Config, r *rand.Rand) error {
	for i := 0; i < cfg.SysFiles; i++ {
		data := randBytes(r, 8*1024+r.Intn(32*1024))
		path := fmt.Sprintf("/vice%s/bin%03d", cfg.SysRoot, i)
		if err := fs.WriteFile(p, path, data); err != nil {
			return fmt.Errorf("populate %s: %w", path, err)
		}
	}
	return nil
}

// Step performs one operation, including the think-time pause. It may
// expand into a burst.
func (u *User) Step(p *sim.Proc, fs *virtue.FS) error {
	if u.cfg.Think > 0 {
		pause := time.Duration(u.r.ExpFloat64() * float64(u.cfg.Think))
		p.Sleep(pause)
	}
	if u.cfg.BurstEvery > 0 && u.r.Intn(u.cfg.BurstEvery) == 0 {
		for i := 0; i < u.cfg.BurstOps; i++ {
			if err := u.one(p, fs); err != nil {
				return err
			}
		}
		return nil
	}
	return u.one(p, fs)
}

// one performs a single operation with no pause.
func (u *User) one(p *sim.Proc, fs *virtue.FS) error {
	u.ops++
	switch u.cfg.Mix.pick(u.r) {
	case OpReadUser:
		return u.readFile(p, fs, "/vice"+u.userFile(int(u.uz.Uint64())))
	case OpWriteUser:
		data := randBytes(u.r, u.FileSize())
		return fs.WriteFile(p, "/vice"+u.userFile(int(u.uz.Uint64())), data)
	case OpStatUser:
		// Status inquiries browse uniformly ("ls -l" touches cold files
		// too); reads concentrate on the Zipf working set. This split is
		// what makes GetFileStat a major call class in the prototype
		// histogram while the hit ratio stays high (§5.2).
		_, err := fs.Stat(p, "/vice"+u.userFile(u.r.Intn(u.cfg.UserFiles)))
		return err
	case OpListDir:
		_, err := fs.ReadDir(p, "/vice"+u.Home)
		return err
	case OpReadSys:
		return u.readFile(p, fs, "/vice"+u.sysFile(int(u.sz.Uint64())))
	case OpStatSys:
		_, err := fs.Stat(p, "/vice"+u.sysFile(u.r.Intn(u.cfg.SysFiles)))
		return err
	case OpTempFile:
		return u.tempFile(p, fs)
	}
	return nil
}

// Run performs n operations, stopping early on error.
func (u *User) Run(p *sim.Proc, fs *virtue.FS, n int) error {
	for i := 0; i < n; i++ {
		if err := u.Step(p, fs); err != nil {
			return fmt.Errorf("op %d: %w", i, err)
		}
	}
	return nil
}

// RunUntil keeps generating operations until the virtual deadline.
func (u *User) RunUntil(p *sim.Proc, fs *virtue.FS, deadline sim.Time) error {
	for p.Now() < deadline {
		if err := u.Step(p, fs); err != nil {
			return err
		}
	}
	return nil
}

func (u *User) readFile(p *sim.Proc, fs *virtue.FS, path string) error {
	f, err := fs.Open(p, path, virtue.FlagRead)
	if err != nil {
		return err
	}
	defer f.Close(p)
	buf := make([]byte, 8192)
	off := int64(0)
	for {
		n, err := f.ReadAt(buf, off)
		if err != nil {
			return err
		}
		if n == 0 {
			return nil
		}
		off += int64(n)
	}
}

// tempFile exercises the local name space: intermediate compiler output
// belongs on the workstation, never in Vice (§3.1 class 2).
func (u *User) tempFile(p *sim.Proc, fs *virtue.FS) error {
	if err := fs.Local().MkdirAll("/tmp", 0o777, u.Name); err != nil {
		return err
	}
	path := fmt.Sprintf("/tmp/%s-%d", u.Name, u.ops)
	if err := fs.WriteFile(p, path, randBytes(u.r, 2048)); err != nil {
		return err
	}
	if _, err := fs.ReadFile(p, path); err != nil {
		return err
	}
	return fs.Remove(p, path)
}

func randBytes(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	// Cheap deterministic filler; contents are irrelevant, sizes matter.
	for i := 0; i < n; i += 7 {
		b[i] = byte(r.Intn(256))
	}
	return b
}
