package workload

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"itcfs/internal/sim"
	"itcfs/internal/virtue"
)

// The five-phase benchmark of §5.2: it "operates on about 70 files
// corresponding to the source code of an actual Unix application" in five
// phases — making a target subtree identical in structure to the source,
// copying the files, examining the status of every file, scanning every
// byte, and finally compiling and linking. On a Sun with a local disk it
// took about 1000 seconds; fully remote against an unloaded server it took
// about 80% longer.

// AndrewConfig shapes the benchmark tree and the workstation cost model.
type AndrewConfig struct {
	Seed  int64
	Files int // source files (the paper's ~70)
	Dirs  int // subdirectories of the source root
	// MeanFileBytes controls source sizes; total ≈ Files*MeanFileBytes.
	MeanFileBytes int
	// Workstation costs. A mid-1980s workstation compiled C slowly —
	// CompilePerKB dominates the benchmark, as it did in the paper.
	CompilePerKB   time.Duration
	CompilePerFile time.Duration
	LinkPerKB      time.Duration
	LocalDiskOp    time.Duration // per local-file operation
	LocalDiskPerKB time.Duration
	StatCPU        time.Duration // per status examination
	ScanPerKB      time.Duration // byte-scan CPU
}

// DefaultAndrew returns the calibrated configuration: the local run lands
// near the paper's ≈1000 s.
func DefaultAndrew() AndrewConfig {
	return AndrewConfig{
		Seed:           42,
		Files:          70,
		Dirs:           4,
		MeanFileBytes:  3 * 1024,
		CompilePerKB:   3200 * time.Millisecond,
		CompilePerFile: 2 * time.Second,
		LinkPerKB:      220 * time.Millisecond,
		LocalDiskOp:    30 * time.Millisecond,
		LocalDiskPerKB: 1 * time.Millisecond,
		StatCPU:        25 * time.Millisecond,
		ScanPerKB:      8 * time.Millisecond,
	}
}

// PhaseTimes carries the virtual-time duration of each phase.
type PhaseTimes struct {
	MakeDir time.Duration
	Copy    time.Duration
	ScanDir time.Duration
	ReadAll time.Duration
	Make    time.Duration
}

// Total sums the phases.
func (pt PhaseTimes) Total() time.Duration {
	return pt.MakeDir + pt.Copy + pt.ScanDir + pt.ReadAll + pt.Make
}

// Phases lists (name, duration) pairs in order, for table printing.
func (pt PhaseTimes) Phases() []struct {
	Name string
	D    time.Duration
} {
	return []struct {
		Name string
		D    time.Duration
	}{
		{"MakeDir", pt.MakeDir},
		{"Copy", pt.Copy},
		{"ScanDir", pt.ScanDir},
		{"ReadAll", pt.ReadAll},
		{"Make", pt.Make},
	}
}

// GenerateTree writes the benchmark source tree under root (which may be in
// either name space). It returns the file paths created.
func GenerateTree(p *sim.Proc, fs *virtue.FS, root string, cfg AndrewConfig) ([]string, error) {
	r := rand.New(rand.NewSource(cfg.Seed))
	if err := fs.Mkdir(p, root, 0o755); err != nil {
		return nil, err
	}
	dirs := []string{root}
	for i := 0; i < cfg.Dirs; i++ {
		d := fmt.Sprintf("%s/sub%d", root, i)
		if err := fs.Mkdir(p, d, 0o755); err != nil {
			return nil, err
		}
		dirs = append(dirs, d)
	}
	var files []string
	for i := 0; i < cfg.Files; i++ {
		dir := dirs[i%len(dirs)]
		name := fmt.Sprintf("%s/src%03d.c", dir, i)
		size := cfg.MeanFileBytes/2 + r.Intn(cfg.MeanFileBytes)
		if err := fs.WriteFile(p, name, sourceBytes(r, size)); err != nil {
			return nil, err
		}
		files = append(files, name)
	}
	return files, nil
}

// sourceBytes produces filler that looks vaguely like C source.
func sourceBytes(r *rand.Rand, n int) []byte {
	var b strings.Builder
	for b.Len() < n {
		fmt.Fprintf(&b, "int fn%d(int x) { return x * %d; }\n", r.Intn(10000), r.Intn(97))
	}
	return []byte(b.String()[:n])
}

// RunAndrew executes the five phases, copying the tree at srcRoot into
// dstRoot, and returns per-phase virtual durations. Both roots may be local
// or shared paths, which is how the local-vs-remote comparison is run.
func RunAndrew(p *sim.Proc, fs *virtue.FS, srcRoot, dstRoot string, cfg AndrewConfig) (PhaseTimes, error) {
	var pt PhaseTimes
	phase := func(d *time.Duration, fn func() error) error {
		start := p.Now()
		err := fn()
		*d = p.Now().Sub(start)
		return err
	}

	// Discover the source structure once (not charged to a phase).
	type node struct {
		path  string
		isDir bool
	}
	var tree []node
	var walk func(dir string) error
	walk = func(dir string) error {
		entries, err := fs.ReadDir(p, dir)
		if err != nil {
			return err
		}
		for _, e := range entries {
			child := dir + "/" + e.Name
			tree = append(tree, node{child, e.IsDir})
			if e.IsDir {
				if err := walk(child); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(srcRoot); err != nil {
		return pt, fmt.Errorf("andrew: scan source: %w", err)
	}
	rel := func(path string) string { return dstRoot + path[len(srcRoot):] }

	// Phase 1: MakeDir — replicate the directory skeleton.
	err := phase(&pt.MakeDir, func() error {
		if err := fs.Mkdir(p, dstRoot, 0o755); err != nil {
			return err
		}
		p.Sleep(cfg.LocalDiskOp)
		for _, n := range tree {
			if n.isDir {
				if err := fs.Mkdir(p, rel(n.path), 0o755); err != nil {
					return err
				}
				p.Sleep(cfg.LocalDiskOp)
			}
		}
		return nil
	})
	if err != nil {
		return pt, fmt.Errorf("andrew: makedir: %w", err)
	}

	// Phase 2: Copy — every file, whole.
	err = phase(&pt.Copy, func() error {
		for _, n := range tree {
			if n.isDir {
				continue
			}
			data, err := fs.ReadFile(p, n.path)
			if err != nil {
				return err
			}
			if err := fs.WriteFile(p, rel(n.path), data); err != nil {
				return err
			}
			p.Sleep(cfg.LocalDiskOp + time.Duration(len(data)/1024)*cfg.LocalDiskPerKB)
		}
		return nil
	})
	if err != nil {
		return pt, fmt.Errorf("andrew: copy: %w", err)
	}

	// Phase 3: ScanDir — examine the status of every file.
	err = phase(&pt.ScanDir, func() error {
		for _, n := range tree {
			if _, err := fs.Stat(p, rel(n.path)); err != nil {
				return err
			}
			p.Sleep(cfg.StatCPU)
		}
		return nil
	})
	if err != nil {
		return pt, fmt.Errorf("andrew: scandir: %w", err)
	}

	// Phase 4: ReadAll — scan every byte of every file.
	err = phase(&pt.ReadAll, func() error {
		for _, n := range tree {
			if n.isDir {
				continue
			}
			data, err := fs.ReadFile(p, rel(n.path))
			if err != nil {
				return err
			}
			p.Sleep(time.Duration(len(data)/1024+1) * cfg.ScanPerKB)
		}
		return nil
	})
	if err != nil {
		return pt, fmt.Errorf("andrew: readall: %w", err)
	}

	// Phase 5: Make — compile every source and link the result, all within
	// the target subtree (as the paper's benchmark did: objects and the
	// binary are build products of the target, not temporaries).
	err = phase(&pt.Make, func() error {
		var objTotal int
		for _, n := range tree {
			if n.isDir || !strings.HasSuffix(n.path, ".c") {
				continue
			}
			data, err := fs.ReadFile(p, rel(n.path))
			if err != nil {
				return err
			}
			// The compiler burns workstation CPU proportional to source size.
			p.Sleep(cfg.CompilePerFile + time.Duration(len(data)/1024+1)*cfg.CompilePerKB)
			obj := make([]byte, len(data)*4/5)
			objPath := strings.TrimSuffix(rel(n.path), ".c") + ".o"
			if err := fs.WriteFile(p, objPath, obj); err != nil {
				return err
			}
			p.Sleep(cfg.LocalDiskOp + time.Duration(len(obj)/1024)*cfg.LocalDiskPerKB)
			objTotal += len(obj)
		}
		// Link: read every object, write the binary into the target tree.
		p.Sleep(time.Duration(objTotal/1024+1) * cfg.LinkPerKB)
		return fs.WriteFile(p, rel(srcRoot+"/a.out"), make([]byte, objTotal/2))
	})
	if err != nil {
		return pt, fmt.Errorf("andrew: make: %w", err)
	}
	return pt, nil
}
