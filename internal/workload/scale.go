package workload

// Scalability workload (E14): many workstations hammering one shared pool
// of hot files. Reads follow a Zipf popularity curve, a small fraction of
// operations rewrite the file they picked — which makes the server break
// callbacks to every interested client — and each client periodically runs
// a TTL revalidation sweep. This is the mix where callback fan-out and
// revalidation round trips dominate server load, i.e. exactly what the
// batched BulkBreak/BulkTestValid plane is supposed to collapse.

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"itcfs/internal/sim"
	"itcfs/internal/venus"
	"itcfs/internal/virtue"
)

// ScaleConfig shapes one client of the scalability mix.
type ScaleConfig struct {
	Seed        int64
	Root        string        // Vice directory holding the shared pool
	SharedFiles int           // files in the pool
	Zipf        float64       // popularity skew (s > 1)
	Writers     int           // the first k clients are publishers (0 = none)
	BurstEvery  int           // a publisher installs a burst every k main ops
	BurstFiles  int           // files rewritten per install burst
	MeanKB      int           // mean rewrite size (exponential)
	Stagger     time.Duration // clients start uniformly inside this ramp
	Browse      int           // pool files each client reads once at start
	BrowseThink time.Duration // mean pause between browse reads
	Think       time.Duration // mean pause between main ops (exponential)
	Ops         int           // main operations per client
	SweepEvery  int           // ops between TTL revalidation sweeps (0 = never)
}

// DefaultScale returns the standard E14 client configuration: a large
// read-mostly population against a shared pool. Each client browses the
// head of the tree once — building a wide cache footprint whose callback
// promises the periodic sweeps keep alive cheaply — then settles into
// re-reading a few hot files. A fixed pair of publishers periodically
// installs a batch of updated files (the "new system release" event), which
// breaks every cached copy at once: the publisher count deliberately does
// not scale with the population, so break fan-out grows linearly with
// clients while the update rate stays constant — the regime the paper
// worries about.
func DefaultScale(seed int64) ScaleConfig {
	return ScaleConfig{
		Seed:        seed,
		Root:        "/vice/usr/load/shared",
		SharedFiles: 120,
		Zipf:        1.5,
		Writers:     1,
		BurstEvery:  10,
		BurstFiles:  30,
		MeanKB:      4,
		Stagger:     10 * time.Hour,
		Browse:      12,
		BrowseThink: 2 * time.Minute,
		Think:       20 * time.Minute,
		Ops:         30,
		SweepEvery:  10,
	}
}

// sharedNames caches the pool's name table per root. The popularity loop
// names a pool file on every operation, and at tens of thousands of clients
// formatting the path per op was a top allocation site. Tables only grow;
// concurrent rebuilds are harmless (entries are identical, last store wins).
var sharedNames sync.Map // string root -> []string

func sharedNameTable(root string, n int) []string {
	if v, ok := sharedNames.Load(root); ok {
		if t := v.([]string); len(t) >= n {
			return t
		}
	}
	t := make([]string, n)
	for i := range t {
		t[i] = fmt.Sprintf("%s/s%03d", root, i)
	}
	sharedNames.Store(root, t)
	return t
}

// SharedFile names pool file i under root.
func SharedFile(root string, i int) string {
	if v, ok := sharedNames.Load(root); ok {
		if t := v.([]string); i < len(t) {
			return t[i]
		}
	}
	return fmt.Sprintf("%s/s%03d", root, i)
}

// PopulateShared creates the pool. Call it from a single workstation before
// starting the clients.
func PopulateShared(p *sim.Proc, fs *virtue.FS, cfg ScaleConfig, r *rand.Rand) error {
	if err := fs.Mkdir(p, cfg.Root, 0o755); err != nil {
		return fmt.Errorf("populate %s: %w", cfg.Root, err)
	}
	for i := 0; i < cfg.SharedFiles; i++ {
		n := 1 + int(r.ExpFloat64()*float64(cfg.MeanKB)*1024)
		if err := fs.WriteFile(p, SharedFile(cfg.Root, i), randBytes(r, n)); err != nil {
			return err
		}
	}
	return nil
}

// ScaleUser is one client of the scalability mix. Each client owns a rand
// stream derived from (Seed, index), so a run's schedule depends only on
// the configuration.
type ScaleUser struct {
	cfg    ScaleConfig
	r      *rand.Rand
	zipf   *rand.Zipf
	names  []string // shared pool name table (see sharedNames)
	writer bool
	ops    int64
}

// NewScaleUser creates client number index.
func NewScaleUser(index int, cfg ScaleConfig) *ScaleUser {
	r := rand.New(rand.NewSource(cfg.Seed + 7919*int64(index+1)))
	return &ScaleUser{
		cfg:    cfg,
		r:      r,
		zipf:   rand.NewZipf(r, cfg.Zipf, 1, uint64(cfg.SharedFiles-1)),
		names:  sharedNameTable(cfg.Root, cfg.SharedFiles),
		writer: index < cfg.Writers,
	}
}

// Ops reports operations performed so far (browse reads included).
func (u *ScaleUser) Ops() int64 { return u.ops }

// Run performs the client's full schedule: a staggered start, one browse
// pass over the head of the pool, then cfg.Ops popularity-driven ops.
func (u *ScaleUser) Run(p *sim.Proc, fs *virtue.FS, v *venus.Venus) error {
	if u.cfg.Stagger > 0 {
		p.Sleep(time.Duration(u.r.Int63n(int64(u.cfg.Stagger))))
	}
	for i := 0; i < u.cfg.Browse && i < u.cfg.SharedFiles; i++ {
		if u.cfg.BrowseThink > 0 {
			p.Sleep(time.Duration(u.r.ExpFloat64() * float64(u.cfg.BrowseThink)))
		}
		if _, err := fs.ReadFile(p, u.names[i]); err != nil {
			return fmt.Errorf("scale browse %d: %w", i, err)
		}
		u.maybeSweep(p, v)
	}
	for i := 1; i <= u.cfg.Ops; i++ {
		if err := u.Step(p, fs, v, i); err != nil {
			return err
		}
	}
	return nil
}

// Step performs main operation number i (1-based): think, then read a pool
// file picked by popularity — or, for a publisher on its burst schedule,
// install a burst of updated files (each store breaks callbacks to every
// client caching that file, so a burst is a callback storm).
func (u *ScaleUser) Step(p *sim.Proc, fs *virtue.FS, v *venus.Venus, i int) error {
	if u.cfg.Think > 0 {
		p.Sleep(time.Duration(u.r.ExpFloat64() * float64(u.cfg.Think)))
	}
	var err error
	if u.writer && u.cfg.BurstEvery > 0 && i%u.cfg.BurstEvery == 0 {
		// A release lands at the head of the pool — the same region every
		// client browsed and the popularity curve concentrates on, so the
		// storm hits nearly every cache.
		err = u.installBurst(p, fs, 0)
	} else {
		_, err = fs.ReadFile(p, u.names[int(u.zipf.Uint64())])
	}
	if err != nil {
		return fmt.Errorf("scale op %d: %w", i, err)
	}
	u.maybeSweep(p, v)
	return nil
}

// maybeSweep counts the operation and runs a TTL revalidation sweep every
// SweepEvery ops — the batched replacement for the per-open check-on-open
// traffic the prototype suffered, and what keeps a long-idle cache's
// promises alive.
func (u *ScaleUser) maybeSweep(p *sim.Proc, v *venus.Venus) {
	u.ops++
	if u.cfg.SweepEvery > 0 && u.ops%int64(u.cfg.SweepEvery) == 0 {
		// Force: refresh every promise before its TTL lapses, so opens never
		// stall on a one-off validation. Best effort: a sweep that races a
		// crash just leaves entries to the per-open validation paths.
		_, _, _ = v.Revalidate(p, true)
	}
}

// installBurst rewrites BurstFiles consecutive pool files concurrently, the
// way Venus flushes a batch of closed files when a publisher installs a new
// release. The stores overlap at the server, so the callback storms they
// trigger overlap too — the case the coalescing break path exists for.
func (u *ScaleUser) installBurst(p *sim.Proc, fs *virtue.FS, first int) error {
	burst := u.cfg.BurstFiles
	if burst < 1 {
		burst = 1
	}
	k := p.Kernel()
	done := make([]*sim.Future[error], burst)
	for j := 0; j < burst; j++ {
		// Draw sizes and payloads on the client proc so the rand stream is
		// consumed in a fixed order regardless of store completion order.
		n := 1 + int(u.r.ExpFloat64()*float64(u.cfg.MeanKB)*1024)
		data := randBytes(u.r, n)
		path := u.names[(first+j)%u.cfg.SharedFiles]
		f := sim.NewFuture[error](k)
		done[j] = f
		k.Spawn("install", func(wp *sim.Proc) {
			f.Set(fs.WriteFile(wp, path, data))
		})
	}
	var err error
	for _, f := range done {
		if werr := f.Wait(p); werr != nil && err == nil {
			err = werr
		}
	}
	return err
}
