package netsim

import (
	"testing"
	"time"

	"itcfs/internal/sim"
)

func testConfig() Config {
	return Config{
		ClusterBandwidth:  10_000_000,
		BackboneBandwidth: 10_000_000,
		Propagation:       time.Millisecond,
		BridgeDelay:       2 * time.Millisecond,
		FrameOverhead:     0, // exact arithmetic in tests
		LocalDelay:        100 * time.Microsecond,
	}
}

// build makes two clusters with two nodes each: a0, a1 on cluster A and
// b0 on cluster B.
func build(t *testing.T) (*sim.Kernel, *Network, *Node, *Node, *Node) {
	t.Helper()
	k := sim.NewKernel()
	n := New(k, testConfig())
	ca := n.AddCluster("A")
	cb := n.AddCluster("B")
	a0 := n.AddNode("a0", ca)
	a1 := n.AddNode("a1", ca)
	b0 := n.AddNode("b0", cb)
	return k, n, a0, a1, b0
}

func TestIntraClusterDelivery(t *testing.T) {
	k, n, a0, a1, _ := build(t)
	var at sim.Time
	var got Message
	k.Spawn("rx", func(p *sim.Proc) {
		got = a1.Recv(p)
		at = p.Now()
	})
	// 12500 bytes at 10 Mbit/s = 10ms serialization, +1ms propagation.
	n.Send(a0.ID, a1.ID, 12500, "hi")
	k.Run()
	if got.Payload != "hi" || got.From != a0.ID || got.Size != 12500 {
		t.Fatalf("got %+v", got)
	}
	want := sim.Time(11 * time.Millisecond)
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
	if n.CrossClusterFrames() != 0 {
		t.Errorf("intra-cluster send counted as cross-cluster")
	}
}

func TestCrossClusterDelivery(t *testing.T) {
	k, n, a0, _, b0 := build(t)
	var at sim.Time
	k.Spawn("rx", func(p *sim.Proc) {
		b0.Recv(p)
		at = p.Now()
	})
	// 12500 bytes: 10ms on LAN A + 1ms prop + 2ms bridge + 10ms backbone
	// + 1ms prop + 2ms bridge + 10ms on LAN B + 1ms prop = 37ms.
	n.Send(a0.ID, b0.ID, 12500, nil)
	k.Run()
	want := sim.Time(37 * time.Millisecond)
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
	if n.CrossClusterFrames() != 1 {
		t.Errorf("CrossClusterFrames = %d, want 1", n.CrossClusterFrames())
	}
	if n.Backbone.Frames() != 1 {
		t.Errorf("backbone frames = %d, want 1", n.Backbone.Frames())
	}
}

func TestLoopbackDelivery(t *testing.T) {
	k, n, a0, _, _ := build(t)
	var at sim.Time
	k.Spawn("rx", func(p *sim.Proc) {
		a0.Recv(p)
		at = p.Now()
	})
	n.Send(a0.ID, a0.ID, 1000, nil)
	k.Run()
	if at != sim.Time(100*time.Microsecond) {
		t.Fatalf("loopback at %v, want 100µs", at)
	}
	if got := a0.Cluster.LAN.Frames(); got != 0 {
		t.Errorf("loopback used the LAN: %d frames", got)
	}
}

func TestLANContentionSerializes(t *testing.T) {
	k, n, a0, a1, _ := build(t)
	var arrivals []sim.Time
	k.Spawn("rx", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			a1.Recv(p)
			arrivals = append(arrivals, p.Now())
		}
	})
	// Two 12500-byte frames sent at once share the medium: the second
	// serializes only after the first (10ms each).
	n.Send(a0.ID, a1.ID, 12500, 1)
	n.Send(a0.ID, a1.ID, 12500, 2)
	k.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if arrivals[0] != sim.Time(11*time.Millisecond) || arrivals[1] != sim.Time(21*time.Millisecond) {
		t.Fatalf("arrivals = %v, want [11ms 21ms]", arrivals)
	}
	if bt := a0.Cluster.LAN.BusyTime(); bt != 20*time.Millisecond {
		t.Errorf("LAN busy %v, want 20ms", bt)
	}
}

func TestLinkUtilizationAndBytes(t *testing.T) {
	k, n, a0, a1, _ := build(t)
	k.Spawn("rx", func(p *sim.Proc) { a1.Recv(p) })
	n.Send(a0.ID, a1.ID, 12500, nil)
	k.Run() // ends at 11ms
	lan := a0.Cluster.LAN
	if lan.Bytes() != 12500 {
		t.Errorf("Bytes = %d, want 12500", lan.Bytes())
	}
	u := lan.Utilization(0)
	if u < 0.90 || u > 0.92 { // 10ms busy / 11ms elapsed
		t.Errorf("Utilization = %v, want ~0.909", u)
	}
}

func TestFrameOverheadCharged(t *testing.T) {
	k := sim.NewKernel()
	cfg := testConfig()
	cfg.FrameOverhead = 64
	n := New(k, cfg)
	c := n.AddCluster("A")
	a := n.AddNode("a", c)
	b := n.AddNode("b", c)
	k.Spawn("rx", func(p *sim.Proc) { b.Recv(p) })
	n.Send(a.ID, b.ID, 1000, nil)
	k.Run()
	if got := c.LAN.Bytes(); got != 1064 {
		t.Fatalf("LAN bytes = %d, want 1064", got)
	}
}

func TestPartitionDropsCrossClusterOnly(t *testing.T) {
	k, n, a0, a1, b0 := build(t)
	var intra, inter int
	k.Spawn("rxA", func(p *sim.Proc) {
		a1.Recv(p)
		intra++
	})
	k.Spawn("rxB", func(p *sim.Proc) {
		b0.Recv(p)
		inter++
	})
	n.Partition(b0.Cluster)
	n.Send(a0.ID, b0.ID, 100, nil) // dropped
	n.Send(a0.ID, a1.ID, 100, nil) // delivered: LAN A unaffected
	k.Run()
	if inter != 0 {
		t.Error("cross-cluster frame delivered through partition")
	}
	if intra != 1 {
		t.Error("intra-cluster frame lost during unrelated partition")
	}
	if n.Drops() != 1 {
		t.Errorf("Drops = %d, want 1", n.Drops())
	}
	// Healing restores connectivity.
	n.Heal(b0.Cluster)
	n.Send(a0.ID, b0.ID, 100, nil)
	k.Run()
	if inter != 1 {
		t.Error("frame not delivered after Heal")
	}
}

func TestManyNodesManyClusters(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, testConfig())
	var nodes []*Node
	for c := 0; c < 5; c++ {
		cl := n.AddCluster("c")
		for w := 0; w < 10; w++ {
			nodes = append(nodes, n.AddNode("w", cl))
		}
	}
	received := 0
	for _, nd := range nodes {
		nd := nd
		k.Spawn("rx", func(p *sim.Proc) {
			nd.Recv(p)
			received++
		})
	}
	// Node 0 broadcasts to everyone else; everyone gets one frame.
	for _, nd := range nodes[1:] {
		n.Send(nodes[0].ID, nd.ID, 500, nil)
	}
	n.Send(nodes[0].ID, nodes[0].ID, 500, nil)
	k.Run()
	if received != 50 {
		t.Fatalf("received = %d, want 50", received)
	}
	if n.CrossClusterFrames() != 40 {
		t.Errorf("CrossClusterFrames = %d, want 40", n.CrossClusterFrames())
	}
}
