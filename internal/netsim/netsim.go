// Package netsim models the ITC network topology of the paper's Figure 2-2:
// semi-autonomous clusters, each a LAN segment of workstations plus a
// cluster server, joined by bridges to a backbone LAN. Bridges are
// store-and-forward routers; the detailed topology is invisible to nodes,
// which see one uniform address space (as the paper requires).
//
// Each LAN segment is a shared medium: frames serialize over it at the
// configured bandwidth and contend FIFO, so utilization and queueing delays
// emerge naturally. The package accounts per-link busy time, frames and
// bytes, and counts cross-cluster traffic, which the evaluation harness uses
// to reproduce the paper's locality arguments.
package netsim

import (
	"fmt"
	"time"

	"itcfs/internal/sim"
	"itcfs/internal/trace"
)

// NodeID identifies a network node. IDs are dense, assigned in AddNode order.
type NodeID int

// Message is a delivered network frame.
type Message struct {
	From    NodeID
	To      NodeID
	Size    int // payload bytes, excluding frame overhead
	Payload interface{}
}

// Config holds the physical parameters of the network. ITCDefaults matches
// the paper's era: 10 Mbit/s Ethernets.
type Config struct {
	ClusterBandwidth  int64         // bits per second on cluster LANs
	BackboneBandwidth int64         // bits per second on the backbone
	Propagation       time.Duration // per-segment propagation delay
	BridgeDelay       time.Duration // store-and-forward delay per bridge crossing
	FrameOverhead     int           // header bytes added to every frame
	LocalDelay        time.Duration // loopback delivery delay (same node)
}

// ITCDefaults returns parameters for a mid-1980s campus network: 10 Mbit/s
// Ethernet segments, millisecond-scale bridge forwarding.
func ITCDefaults() Config {
	return Config{
		ClusterBandwidth:  10_000_000,
		BackboneBandwidth: 10_000_000,
		Propagation:       200 * time.Microsecond,
		BridgeDelay:       2 * time.Millisecond,
		FrameOverhead:     64,
		LocalDelay:        50 * time.Microsecond,
	}
}

// Link is a shared-medium LAN segment. Frames transmit one at a time in
// arrival order.
//
// A Link is its own serialization-complete event (Fire): at most one frame
// is clocking onto the medium at a time, so the in-flight frame lives in cur
// and completion schedules without allocating. Waiting frames queue in a
// head-indexed ring.
type Link struct {
	k         *sim.Kernel
	name      string
	bandwidth int64

	busy      bool
	busySince sim.Time
	busyTime  time.Duration
	cur       *frame   // frame on the medium, while busy
	queue     []*frame // head-indexed ring of waiting frames
	qhead     int

	frames int64
	bytes  int64

	// Optional per-link instruments, installed by Network.SetMetrics.
	mFrames *trace.Counter
	mBytes  *trace.Counter
	mQueue  *trace.Histogram
	mBusyNs *trace.Gauge
}

func newLink(k *sim.Kernel, name string, bandwidth int64) *Link {
	if bandwidth <= 0 {
		panic("netsim: non-positive bandwidth")
	}
	return &Link{k: k, name: name, bandwidth: bandwidth}
}

// Name returns the link's name.
func (l *Link) Name() string { return l.name }

// Frames returns the number of frames transmitted or in transmission.
func (l *Link) Frames() int64 { return l.frames }

// Bytes returns the total bytes (including frame overhead) carried.
func (l *Link) Bytes() int64 { return l.bytes }

// BusyTime returns cumulative transmission time on the segment.
func (l *Link) BusyTime() time.Duration {
	bt := l.busyTime
	if l.busy {
		bt += l.k.Now().Sub(l.busySince)
	}
	return bt
}

// Utilization returns BusyTime over the interval since the reference time.
func (l *Link) Utilization(since sim.Time) float64 {
	elapsed := l.k.Now().Sub(since)
	if elapsed <= 0 {
		return 0
	}
	return float64(l.BusyTime()) / float64(elapsed)
}

// serialization returns the time to clock size bytes onto the medium.
func (l *Link) serialization(size int) time.Duration {
	bits := int64(size) * 8
	return time.Duration(bits * int64(time.Second) / l.bandwidth)
}

// transmit queues frame f on the segment; f.txDone runs (in kernel context)
// when it has fully left. If the payload accounts its own delays
// (DelaySink), the time spent waiting for the medium and the time clocking
// onto it are credited to it as queueing and serialization.
func (l *Link) transmit(f *frame) {
	if l.busy {
		f.enq = l.k.Now()
		if l.qhead == len(l.queue) {
			l.queue = l.queue[:0]
			l.qhead = 0
		}
		l.queue = append(l.queue, f)
		return
	}
	l.begin(f, 0)
}

func (l *Link) begin(f *frame, queued time.Duration) {
	l.busy = true
	l.busySince = l.k.Now()
	l.cur = f
	l.frames++
	l.bytes += int64(f.wire)
	l.mFrames.Inc()
	l.mBytes.Add(int64(f.wire))
	l.mQueue.Observe(queued)
	serial := l.serialization(f.wire)
	if f.sink != nil {
		f.sink.AddNetDelay(queued, serial, 0)
	}
	l.k.AfterFire(serial, l)
}

// Fire completes the current transmission: the frame has left the segment,
// the next queued frame (if any) begins clocking on at this instant, and the
// completed frame advances to its next hop.
func (l *Link) Fire() {
	f := l.cur
	l.cur = nil
	l.busyTime += l.k.Now().Sub(l.busySince)
	l.busy = false
	l.mBusyNs.Set(int64(l.busyTime))
	if l.qhead < len(l.queue) {
		next := l.queue[l.qhead]
		l.queue[l.qhead] = nil
		l.qhead++
		if l.qhead == len(l.queue) {
			l.queue = l.queue[:0]
			l.qhead = 0
		}
		l.begin(next, l.k.Now().Sub(next.enq))
	}
	f.txDone()
}

// Cluster is one LAN segment bridged to the backbone.
type Cluster struct {
	ID   int
	Name string
	LAN  *Link
}

// Node is an addressable endpoint on some cluster LAN.
type Node struct {
	ID      NodeID
	Name    string
	Cluster *Cluster
	Inbox   *sim.Mailbox[Message]
	// sink, when set, receives delivered messages in kernel event context
	// instead of the Inbox. See SetSink.
	sink func(Message)
}

// SetSink routes this node's deliveries to fn instead of the Inbox mailbox.
// fn runs in kernel event context — one scheduling hop after final
// propagation, exactly where the mailbox wake-up would have run — so it must
// not park; anything that blocks must be handed to a spawned process. A
// receive loop that only demultiplexes (the RPC endpoint's dispatcher) saves
// a full park/resume round trip per frame this way, which at tens of
// thousands of clients is a measurable slice of wall-clock time.
func (n *Node) SetSink(fn func(Message)) { n.sink = fn }

// FaultAction tells the network what to do with one frame. The zero value
// delivers the frame normally.
type FaultAction struct {
	Drop      bool          // lose the frame silently
	Duplicate bool          // deliver the frame twice
	Corrupt   bool          // flip bits in the wire payload before delivery
	Delay     time.Duration // hold the frame this long before routing it
}

// FaultInjector decides, per frame, whether the network misbehaves. Decide
// is consulted once for every frame offered to Send; Corrupt mutates wire
// bytes in place when Decide asked for corruption. Implementations must be
// deterministic for the simulation to stay replayable.
type FaultInjector interface {
	Decide(now sim.Time, src, dst NodeID, size int) FaultAction
	Corrupt(wire []byte)
}

// Corruptible payloads expose their mutable wire bytes so the corruption
// fault can damage them in flight. Payloads without wire bytes are immune.
type Corruptible interface {
	WirePayload() []byte
}

// DelaySink payloads account the network delays they experience in flight,
// split into queueing (waiting for a busy medium), serialization (clocking
// onto it) and propagation (signal travel plus bridge store-and-forward).
// The RPC layer's packets implement it, which is how the critical-path
// analyzer attributes call latency to the network. Payloads that don't care
// are simply not consulted.
type DelaySink interface {
	AddNetDelay(queue, serial, prop time.Duration)
}

// frame is one in-flight transmission, pooled on the Network so the
// steady-state send path allocates nothing. Its Fire method advances it
// through the fixed stages of its route — the staged replacement for the
// closure chain a frame's hops used to capture — and txDone is the
// link-transmission-complete continuation.
type frame struct {
	n     *Network
	msg   Message
	wire  int // msg.Size plus frame overhead
	sink  DelaySink
	stage uint8
	enq   sim.Time // when the frame joined a busy link's queue
	free  *frame   // pool linkage
}

// Frame stages. "hop" stages fire after a propagation (and bridge) delay;
// "tx" stages are set while the frame is on a medium and steer txDone.
const (
	stageDelayedRoute uint8 = iota // fault-injector delay elapsed: route now
	stageStartSame                 // begin transmit on the source LAN (same cluster)
	stageStartCross                // begin transmit on the source LAN (cross cluster)
	stageTxSrcSame                 // on source LAN, destination in same cluster
	stageTxSrcCross                // on source LAN, headed for the backbone
	stageHopBackbone               // reached the backbone bridge: transmit there
	stageTxBackbone                // on the backbone
	stageHopDst                    // reached the destination bridge: transmit on its LAN
	stageTxDst                     // on the destination LAN
	stageDeliver                   // final propagation done: deliver to the inbox
	stageSinkDeliver               // sink hand-off: run the destination's sink
)

// Network is the campus internetwork: a backbone plus bridged clusters.
type Network struct {
	k        *sim.Kernel
	cfg      Config
	Backbone *Link
	clusters []*Cluster
	nodes    []*Node

	crossClusterFrames int64
	drops              int64
	partitioned        map[int]bool // clusters cut off from the backbone

	fault    FaultInjector
	nodeDown map[NodeID]bool

	freeFrames *frame // pool of recycled frames

	offered       int64
	delivered     int64
	faultDrops    int64
	faultDups     int64
	faultCorrupts int64
	faultDelays   int64
	downDrops     int64
}

// New creates an empty network with the given physical parameters.
func New(k *sim.Kernel, cfg Config) *Network {
	return &Network{
		k:           k,
		cfg:         cfg,
		Backbone:    newLink(k, "backbone", cfg.BackboneBandwidth),
		partitioned: make(map[int]bool),
		nodeDown:    make(map[NodeID]bool),
	}
}

// Kernel returns the simulation kernel the network runs on.
func (n *Network) Kernel() *sim.Kernel { return n.k }

// AddCluster creates a new cluster LAN bridged to the backbone.
func (n *Network) AddCluster(name string) *Cluster {
	c := &Cluster{
		ID:   len(n.clusters),
		Name: name,
		LAN:  newLink(n.k, fmt.Sprintf("lan-%s", name), n.cfg.ClusterBandwidth),
	}
	n.clusters = append(n.clusters, c)
	return c
}

// AddNode attaches a new node to a cluster LAN and returns it.
func (n *Network) AddNode(name string, c *Cluster) *Node {
	node := &Node{
		ID:      NodeID(len(n.nodes)),
		Name:    name,
		Cluster: c,
		Inbox:   sim.NewMailbox[Message](n.k),
	}
	n.nodes = append(n.nodes, node)
	return node
}

// Node returns the node with the given ID.
func (n *Network) Node(id NodeID) *Node { return n.nodes[id] }

// Clusters returns all clusters in creation order.
func (n *Network) Clusters() []*Cluster { return n.clusters }

// CrossClusterFrames returns the number of frames that crossed the backbone.
func (n *Network) CrossClusterFrames() int64 { return n.crossClusterFrames }

// Drops returns the number of frames lost to partitions.
func (n *Network) Drops() int64 { return n.drops }

// Partition detaches a cluster's bridge from the backbone: frames between
// that cluster and any other cluster are silently dropped (single point
// failures must not affect the whole community — §2.2 Availability).
func (n *Network) Partition(c *Cluster) { n.partitioned[c.ID] = true }

// Heal reattaches a partitioned cluster.
func (n *Network) Heal(c *Cluster) { delete(n.partitioned, c.ID) }

// Partitioned reports whether the cluster's bridge is detached.
func (n *Network) Partitioned(c *Cluster) bool { return n.partitioned[c.ID] }

// SetFaultInjector installs (or, with nil, removes) the fault plane. Every
// subsequent frame is offered to the injector before routing.
func (n *Network) SetFaultInjector(fi FaultInjector) { n.fault = fi }

// SetMetrics instruments every link that exists at the call — the backbone
// and each cluster LAN — with per-link frame and byte counters, a queueing
// histogram, and a cumulative busy-time gauge in the registry. Call after
// the topology is built; a nil registry uninstruments.
func (n *Network) SetMetrics(r *trace.Registry) {
	links := []*Link{n.Backbone}
	for _, c := range n.clusters {
		links = append(links, c.LAN)
	}
	for _, l := range links {
		if r == nil {
			l.mFrames, l.mBytes, l.mQueue, l.mBusyNs = nil, nil, nil, nil
			continue
		}
		l.mFrames = r.Counter(trace.LinkFramesMetric(l.name))
		l.mBytes = r.Counter(trace.LinkBytesMetric(l.name))
		l.mQueue = r.Histogram(trace.LinkQueueMetric(l.name))
		l.mBusyNs = r.Gauge(trace.LinkBusyGauge(l.name))
	}
}

// Links returns every link in deterministic order — the backbone first,
// then each cluster LAN in creation order. Telemetry samplers walk it to
// probe per-link utilization.
func (n *Network) Links() []*Link {
	links := []*Link{n.Backbone}
	for _, c := range n.clusters {
		links = append(links, c.LAN)
	}
	return links
}

// SetNodeDown powers a node on or off. Frames from or to a down node are
// dropped: at send time, and again at delivery time for frames already in
// flight when the node went down.
func (n *Network) SetNodeDown(id NodeID, down bool) {
	if down {
		n.nodeDown[id] = true
	} else {
		delete(n.nodeDown, id)
	}
}

// NodeDown reports whether the node is powered off.
func (n *Network) NodeDown(id NodeID) bool { return n.nodeDown[id] }

// Offered returns the number of frames presented to Send (fault duplicates
// count as extra offered frames, so conservation holds: Offered ==
// Delivered + Drops + FaultDrops + DownDrops once the network drains).
func (n *Network) Offered() int64 { return n.offered }

// Delivered returns the number of frames placed in a destination inbox.
func (n *Network) Delivered() int64 { return n.delivered }

// FaultDrops returns frames lost to the fault injector.
func (n *Network) FaultDrops() int64 { return n.faultDrops }

// FaultDups returns frames duplicated by the fault injector.
func (n *Network) FaultDups() int64 { return n.faultDups }

// FaultCorrupts returns frames whose wire bytes were damaged in flight.
func (n *Network) FaultCorrupts() int64 { return n.faultCorrupts }

// FaultDelays returns frames held back by the fault injector.
func (n *Network) FaultDelays() int64 { return n.faultDelays }

// DownDrops returns frames lost because an endpoint node was powered off.
func (n *Network) DownDrops() int64 { return n.downDrops }

// Send routes a frame from src to dst. Delivery is asynchronous: the payload
// appears in the destination node's Inbox after the frame traverses every
// segment on the path. Send never blocks the caller. An installed fault
// injector may drop, duplicate, delay or corrupt the frame first, and frames
// touching a powered-off node are lost.
func (n *Network) Send(src, dst NodeID, size int, payload interface{}) {
	n.offered++
	if n.nodeDown[src] || n.nodeDown[dst] {
		n.downDrops++
		return
	}
	var act FaultAction
	if n.fault != nil {
		act = n.fault.Decide(n.k.Now(), src, dst, size)
	}
	if act.Drop {
		n.faultDrops++
		return
	}
	if act.Corrupt {
		if c, ok := payload.(Corruptible); ok {
			n.fault.Corrupt(c.WirePayload())
			n.faultCorrupts++
		}
	}
	if act.Delay > 0 {
		n.faultDelays++
		f := n.newFrame(src, dst, size, payload)
		f.stage = stageDelayedRoute
		n.k.AfterFire(act.Delay, f)
	} else {
		n.route(src, dst, size, payload)
	}
	if act.Duplicate {
		n.offered++
		n.faultDups++
		n.route(src, dst, size, payload)
	}
}

// newFrame takes a frame from the pool (or allocates one) and initializes it
// for a src->dst transmission.
func (n *Network) newFrame(src, dst NodeID, size int, payload interface{}) *frame {
	f := n.freeFrames
	if f == nil {
		f = &frame{n: n}
	} else {
		n.freeFrames = f.free
		f.free = nil
	}
	f.msg = Message{From: src, To: dst, Size: size, Payload: payload}
	f.wire = size + n.cfg.FrameOverhead
	f.sink, _ = payload.(DelaySink)
	return f
}

// release returns a finished frame to the pool.
func (n *Network) release(f *frame) {
	f.msg = Message{}
	f.sink = nil
	f.free = n.freeFrames
	n.freeFrames = f
}

// route carries one frame across the topology and delivers it. A DelaySink
// payload is credited the path's fixed propagation budget up front (it is
// known from the topology) and its queueing and serialization delays by each
// link as they happen. A frame dropped en route keeps its credited delays;
// only delivered frames are ever read back, so that is harmless.
func (n *Network) route(src, dst NodeID, size int, payload interface{}) {
	n.routeFrame(n.newFrame(src, dst, size, payload))
}

func (n *Network) routeFrame(f *frame) {
	s, d := n.nodes[f.msg.From], n.nodes[f.msg.To]
	switch {
	case s == d:
		if f.sink != nil {
			f.sink.AddNetDelay(0, 0, n.cfg.LocalDelay)
		}
		f.stage = stageDeliver
		n.k.AfterFire(n.cfg.LocalDelay, f)
	case s.Cluster == d.Cluster:
		// One hop on the shared cluster LAN.
		if f.sink != nil {
			f.sink.AddNetDelay(0, 0, n.cfg.Propagation)
		}
		f.stage = stageStartSame
		n.k.AfterFire(0, f)
	default:
		if n.partitioned[s.Cluster.ID] || n.partitioned[d.Cluster.ID] {
			n.drops++
			n.release(f)
			return
		}
		// Cluster LAN -> bridge -> backbone -> bridge -> cluster LAN.
		// Bridge store-and-forward time counts as propagation: it is a
		// fixed per-path cost, not contention.
		if f.sink != nil {
			f.sink.AddNetDelay(0, 0, 3*n.cfg.Propagation+2*n.cfg.BridgeDelay)
		}
		n.crossClusterFrames++
		f.stage = stageStartCross
		n.k.AfterFire(0, f)
	}
}

// Fire advances the frame to its next stage after a scheduled delay — the
// fault-injector hold, the start-of-route yield, a bridge crossing, or the
// final propagation leg.
func (f *frame) Fire() {
	n := f.n
	switch f.stage {
	case stageDelayedRoute:
		n.routeFrame(f)
	case stageStartSame:
		f.stage = stageTxSrcSame
		n.nodes[f.msg.From].Cluster.LAN.transmit(f)
	case stageStartCross:
		f.stage = stageTxSrcCross
		n.nodes[f.msg.From].Cluster.LAN.transmit(f)
	case stageHopBackbone:
		if n.partitioned[n.nodes[f.msg.From].Cluster.ID] || n.partitioned[n.nodes[f.msg.To].Cluster.ID] {
			n.drops++
			n.release(f)
			return
		}
		f.stage = stageTxBackbone
		n.Backbone.transmit(f)
	case stageHopDst:
		f.stage = stageTxDst
		n.nodes[f.msg.To].Cluster.LAN.transmit(f)
	case stageDeliver:
		if n.nodeDown[f.msg.To] {
			n.downDrops++
			n.release(f)
			return
		}
		n.delivered++
		nd := n.nodes[f.msg.To]
		if nd.sink != nil {
			// Mirror the mailbox wake-up: run the sink one same-instant
			// scheduling hop later, exactly where a receiver parked on the
			// inbox would have resumed. Without the hop, the sink would run
			// ahead of events already queued at this instant.
			f.stage = stageSinkDeliver
			n.k.AtFire(n.k.Now(), f)
			return
		}
		nd.Inbox.Put(f.msg)
		n.release(f)
	case stageSinkDeliver:
		sink := n.nodes[f.msg.To].sink
		msg := f.msg
		n.release(f)
		sink(msg)
	}
}

// txDone is the link's continuation: the frame has fully left a segment and
// begins its next propagation (plus bridge store-and-forward) leg.
func (f *frame) txDone() {
	n := f.n
	switch f.stage {
	case stageTxSrcSame, stageTxDst:
		f.stage = stageDeliver
		n.k.AfterFire(n.cfg.Propagation, f)
	case stageTxSrcCross:
		f.stage = stageHopBackbone
		n.k.AfterFire(n.cfg.Propagation+n.cfg.BridgeDelay, f)
	case stageTxBackbone:
		f.stage = stageHopDst
		n.k.AfterFire(n.cfg.Propagation+n.cfg.BridgeDelay, f)
	}
}

// Recv blocks the calling process until a frame arrives at the node.
func (nd *Node) Recv(p *sim.Proc) Message { return nd.Inbox.Get(p) }
