package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"itcfs/internal/sim"
)

// Property: every frame sent is either delivered to exactly its addressee
// or counted as a partition drop — the network never duplicates, misroutes
// or silently loses traffic.
func TestQuickFrameConservation(t *testing.T) {
	f := func(seed int64, nMsg uint8) bool {
		r := rand.New(rand.NewSource(seed))
		k := sim.NewKernel()
		n := New(k, testConfig())
		var nodes []*Node
		for c := 0; c < 3; c++ {
			cl := n.AddCluster("c")
			for w := 0; w < 3; w++ {
				nodes = append(nodes, n.AddNode("n", cl))
			}
		}
		received := make([]int, len(nodes))
		wrongDest := false
		for _, nd := range nodes {
			nd := nd
			k.Spawn("rx", func(p *sim.Proc) {
				for {
					msg := nd.Recv(p)
					if msg.To != nd.ID {
						wrongDest = true
					}
					received[nd.ID]++
				}
			})
		}
		total := int(nMsg)
		expected := make([]int, len(nodes))
		partitioned := r.Intn(4) == 0
		if partitioned {
			n.Partition(n.Clusters()[r.Intn(3)])
		}
		dropsExpected := 0
		for i := 0; i < total; i++ {
			src := nodes[r.Intn(len(nodes))]
			dst := nodes[r.Intn(len(nodes))]
			srcCut := n.Partitioned(src.Cluster)
			dstCut := n.Partitioned(dst.Cluster)
			crossing := src.Cluster != dst.Cluster
			if crossing && (srcCut || dstCut) {
				dropsExpected++
			} else {
				expected[dst.ID]++
			}
			n.Send(src.ID, dst.ID, 100+r.Intn(2000), i)
		}
		k.Run()
		if wrongDest {
			return false
		}
		if n.Drops() != int64(dropsExpected) {
			return false
		}
		for i := range nodes {
			if received[i] != expected[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: link byte counters equal the sum of frame sizes (plus overhead)
// placed on them; utilization never exceeds 1.
func TestQuickLinkAccounting(t *testing.T) {
	f := func(sizes []uint16) bool {
		k := sim.NewKernel()
		cfg := testConfig()
		cfg.FrameOverhead = 64
		n := New(k, cfg)
		cl := n.AddCluster("A")
		a := n.AddNode("a", cl)
		b := n.AddNode("b", cl)
		k.Spawn("rx", func(p *sim.Proc) {
			for {
				b.Recv(p)
			}
		})
		var want int64
		for _, s := range sizes {
			size := int(s%8192) + 1
			want += int64(size + 64)
			n.Send(a.ID, b.ID, size, nil)
		}
		k.Run()
		if cl.LAN.Bytes() != want {
			return false
		}
		u := cl.LAN.Utilization(0)
		return u >= 0 && u <= 1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
