package vice

import (
	"fmt"

	"itcfs/internal/prot"
	"itcfs/internal/proto"
	"itcfs/internal/rpc"
	"itcfs/internal/trace"
	"itcfs/internal/unixfs"
	"itcfs/internal/volume"
)

// registerHandlers wires every Vice operation into the dispatcher. Handlers
// hold s.mu only across in-memory state transitions and never across
// callback breaks or peer calls, so a handler worker never parks while
// holding a lock.
func (s *Server) registerHandlers() {
	h := s.disp.Handle
	h(rpc.Op(proto.OpFetch), s.handleFetch)
	h(rpc.Op(proto.OpStore), s.handleStore)
	h(rpc.Op(proto.OpFetchStatus), s.handleFetchStatus)
	h(rpc.Op(proto.OpSetStatus), s.handleSetStatus)
	h(rpc.Op(proto.OpTestValid), s.handleTestValid)
	h(rpc.Op(proto.OpBulkTestValid), s.handleBulkTestValid)
	h(rpc.Op(proto.OpCreate), s.handleCreate)
	h(rpc.Op(proto.OpMakeDir), s.handleMakeDir)
	h(rpc.Op(proto.OpRemove), s.handleRemove)
	h(rpc.Op(proto.OpRemoveDir), s.handleRemoveDir)
	h(rpc.Op(proto.OpRename), s.handleRename)
	h(rpc.Op(proto.OpSymlink), s.handleSymlink)
	h(rpc.Op(proto.OpLink), s.handleLink)
	h(rpc.Op(proto.OpSetACL), s.handleSetACL)
	h(rpc.Op(proto.OpGetACL), s.handleGetACL)
	h(rpc.Op(proto.OpSetLock), s.handleSetLock)
	h(rpc.Op(proto.OpReleaseLock), s.handleReleaseLock)
	h(rpc.Op(proto.OpGetCustodian), s.handleGetCustodian)
	h(rpc.Op(proto.OpVolCreate), s.handleVolCreate)
	h(rpc.Op(proto.OpVolClone), s.handleVolClone)
	h(rpc.Op(proto.OpVolStatus), s.handleVolStatus)
	h(rpc.Op(proto.OpVolSetQuota), s.handleVolSetQuota)
	h(rpc.Op(proto.OpVolOffline), s.handleVolOnlineOffline(false))
	h(rpc.Op(proto.OpVolOnline), s.handleVolOnlineOffline(true))
	h(rpc.Op(proto.OpVolMove), s.handleVolMove)
	h(rpc.Op(proto.OpVolSalvage), s.handleVolSalvage)
	h(rpc.Op(proto.OpProtMutate), s.handleProtMutate)
	h(rpc.Op(proto.OpProtSnapshot), s.handleProtSnapshot)
	h(rpc.Op(proto.OpLocInstall), s.handleLocInstall)
	h(rpc.Op(proto.OpVolInstall), s.handleVolInstall)
	h(rpc.Op(proto.OpProtInstall), s.handleProtInstall)
}

// handleFetch serves a whole-file (or directory-listing) fetch. In revised
// mode a successful fetch leaves a callback promise for the connection.
func (s *Server) handleFetch(ctx rpc.Ctx, req rpc.Request) rpc.Response {
	args, err := proto.Unmarshal(req.Body, proto.DecodeFetchArgs)
	if err != nil {
		return respErr(err)
	}
	v, fid, err := s.resolveRef(args.Ref, true)
	if err != nil {
		return respErr(err)
	}
	s.noteAccess(ctx, v.ID())
	acl, err := v.GoverningACL(fid)
	if err != nil {
		return respErr(err)
	}
	data, vn, err := v.ReadData(fid)
	if err != nil {
		return respErr(err)
	}
	need := prot.RightRead
	if vn.Status.Type == proto.TypeDir {
		need = prot.RightLookup
	}
	if err := s.checkRights(ctx.User, acl, need); err != nil {
		return respErr(err)
	}
	s.mu.Lock()
	s.fetchBytes += int64(len(data))
	s.mu.Unlock()
	if s.cfg.Mode == Revised && !v.ReadOnly() {
		// Read-only clones can never be invalid, so no promise is needed
		// (caching from read-only subtrees is simplified, §3.2).
		s.callbacks.Promise(fid, ctx.Back)
	}
	return rpc.Response{Body: proto.Marshal(vn.Status), Bulk: data}
}

// handleStore accepts a whole-file store on close. It breaks callbacks to
// every other workstation caching the file before the reply, so "changes by
// one user are immediately visible to all other users" (§3.2).
func (s *Server) handleStore(ctx rpc.Ctx, req rpc.Request) rpc.Response {
	args, err := proto.Unmarshal(req.Body, proto.DecodeStoreArgs)
	if err != nil {
		return respErr(err)
	}
	v, fid, err := s.resolveRef(args.Ref, true)
	if err != nil {
		return respErr(err)
	}
	s.noteAccess(ctx, v.ID())
	acl, err := v.GoverningACL(fid)
	if err != nil {
		return respErr(err)
	}
	if err := s.checkRights(ctx.User, acl, prot.RightWrite); err != nil {
		return respErr(err)
	}
	vn, err := v.Get(fid)
	if err != nil {
		return respErr(err)
	}
	if s.cfg.Mode == Revised && ctx.User != ServerUser && vn.Status.Mode&0o222 == 0 {
		// Per-file protection bits (§5.1): a file with no write bits cannot
		// be overwritten even by holders of directory write rights.
		return respErr(fmt.Errorf("%w: file mode %04o forbids writing", proto.ErrAccess, vn.Status.Mode))
	}
	err = s.mutate(v, func() error {
		vn, err = v.WriteData(fid, req.Bulk)
		return err
	})
	if err != nil {
		return respErr(err)
	}
	st := vn.Status // reply with the version this store produced
	s.mu.Lock()
	s.storeBytes += int64(len(req.Bulk))
	s.mu.Unlock()
	if s.cfg.Mode == Revised {
		s.callbacks.Break(ctx.Proc, fid, args.Ref.Path, ctx.Back)
		// The updater's cached copy is the current version — unless another
		// store slipped in while we were breaking callbacks (Break parks
		// this worker). Promise only if our version still stands; otherwise
		// break the updater too, so no client is left believing a stale
		// copy valid.
		if cur, gerr := v.Get(fid); gerr == nil && cur.Status.Version == st.Version {
			s.callbacks.Promise(fid, ctx.Back)
		} else if ctx.Back != nil {
			_, _ = ctx.Back.CallBack(ctx.Proc, rpc.Request{
				Op:   rpc.Op(proto.OpCallbackBreak),
				Body: proto.Marshal(proto.CallbackBreakArgs{FID: fid, Path: args.Ref.Path}),
			})
		}
	}
	return respStatus(st)
}

func (s *Server) handleFetchStatus(ctx rpc.Ctx, req rpc.Request) rpc.Response {
	args, err := proto.Unmarshal(req.Body, proto.DecodeStatusArgs)
	if err != nil {
		return respErr(err)
	}
	v, fid, err := s.resolveRef(args.Ref, false)
	if err != nil {
		return respErr(err)
	}
	s.noteAccess(ctx, v.ID())
	acl, err := v.GoverningACL(fid)
	if err != nil {
		return respErr(err)
	}
	if err := s.checkRights(ctx.User, acl, prot.RightLookup); err != nil {
		return respErr(err)
	}
	vn, err := v.Get(fid)
	if err != nil {
		return respErr(err)
	}
	return respStatus(vn.Status)
}

func (s *Server) handleSetStatus(ctx rpc.Ctx, req rpc.Request) rpc.Response {
	args, err := proto.Unmarshal(req.Body, proto.DecodeSetStatusArgs)
	if err != nil {
		return respErr(err)
	}
	v, fid, err := s.resolveRef(args.Ref, true)
	if err != nil {
		return respErr(err)
	}
	acl, err := v.GoverningACL(fid)
	if err != nil {
		return respErr(err)
	}
	if err := s.checkRights(ctx.User, acl, prot.RightWrite); err != nil {
		return respErr(err)
	}
	if args.SetOwner && !s.isAdmin(ctx.User) {
		return respErr(fmt.Errorf("%w: only operations staff may change owners", proto.ErrNotAllowed))
	}
	err = s.mutate(v, func() error {
		if args.SetMode {
			if err := v.SetMode(fid, args.Mode); err != nil {
				return err
			}
		}
		if args.SetOwner {
			if err := v.SetOwner(fid, args.Owner); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return respErr(err)
	}
	vn, err := v.Get(fid)
	if err != nil {
		return respErr(err)
	}
	if s.cfg.Mode == Revised {
		s.callbacks.Break(ctx.Proc, fid, args.Ref.Path, ctx.Back)
	}
	return respStatus(vn.Status)
}

// handleTestValid is the prototype's cache-validity check: the call that
// dominated the prototype server's workload (65% of all calls, §5.2).
func (s *Server) handleTestValid(ctx rpc.Ctx, req rpc.Request) rpc.Response {
	args, err := proto.Unmarshal(req.Body, proto.DecodeTestValidArgs)
	if err != nil {
		return respErr(err)
	}
	v, fid, err := s.resolveRef(args.Ref, true)
	if err != nil {
		return respErr(err)
	}
	s.noteAccess(ctx, v.ID())
	vn, err := v.Get(fid)
	if err != nil {
		return respErr(err)
	}
	// Validation is the gate to a cached copy, so it enforces the same
	// rights a fetch would: otherwise revocation (negative rights) would
	// never catch up with workstations holding cached data.
	acl, err := v.GoverningACL(fid)
	if err != nil {
		return respErr(err)
	}
	need := prot.RightRead
	if vn.Status.Type == proto.TypeDir {
		need = prot.RightLookup
	}
	if err := s.checkRights(ctx.User, acl, need); err != nil {
		return respErr(err)
	}
	reply := proto.TestValidReply{
		Valid:   vn.Status.Version == args.Version,
		Version: vn.Status.Version,
	}
	if reply.Valid && s.cfg.Mode == Revised && !v.ReadOnly() {
		// A revised-mode client revalidating an expired promise gets a new
		// one: this is how the callback table is rebuilt after a server
		// restart wipes it (§3.3 recovery).
		s.callbacks.Promise(fid, ctx.Back)
	}
	return rpc.Response{Body: proto.Marshal(reply)}
}

// handleBulkTestValid validates a batch of cached copies in one round trip:
// the reconnection and TTL-sweep revalidation storms collapse from one call
// per cached entry to one call per custodian. The reply's items correspond
// one-to-one with the request's; any per-item failure (stale, moved,
// missing, access revoked) reads as Valid=false, sending the client back
// through the normal fetch path, which knows how to chase redirects.
func (s *Server) handleBulkTestValid(ctx rpc.Ctx, req rpc.Request) rpc.Response {
	args, err := proto.Unmarshal(req.Body, proto.DecodeBulkTestValidArgs)
	if err != nil {
		return respErr(err)
	}
	if len(args.Items) > proto.MaxBulkItems {
		return respErr(fmt.Errorf("%w: bulk batch of %d exceeds %d",
			proto.ErrBadRequest, len(args.Items), proto.MaxBulkItems))
	}
	reply := proto.BulkTestValidReply{Items: make([]proto.TestValidReply, 0, len(args.Items))}
	for _, it := range args.Items {
		reply.Items = append(reply.Items, s.testValidOne(ctx, it))
	}
	return rpc.Response{Body: proto.Marshal(reply)}
}

// testValidOne validates a single cached copy for the bulk path, reducing
// every failure to Valid=false.
func (s *Server) testValidOne(ctx rpc.Ctx, args proto.TestValidArgs) proto.TestValidReply {
	v, fid, err := s.resolveRef(args.Ref, true)
	if err != nil {
		return proto.TestValidReply{}
	}
	s.noteAccess(ctx, v.ID())
	vn, err := v.Get(fid)
	if err != nil {
		return proto.TestValidReply{}
	}
	acl, err := v.GoverningACL(fid)
	if err != nil {
		return proto.TestValidReply{}
	}
	need := prot.RightRead
	if vn.Status.Type == proto.TypeDir {
		need = prot.RightLookup
	}
	if err := s.checkRights(ctx.User, acl, need); err != nil {
		return proto.TestValidReply{}
	}
	reply := proto.TestValidReply{
		Valid:   vn.Status.Version == args.Version,
		Version: vn.Status.Version,
	}
	if reply.Valid && s.cfg.Mode == Revised && !v.ReadOnly() {
		s.callbacks.Promise(fid, ctx.Back)
	}
	return reply
}

func (s *Server) handleCreate(ctx rpc.Ctx, req rpc.Request) rpc.Response {
	args, err := proto.Unmarshal(req.Body, proto.DecodeNameArgs)
	if err != nil {
		return respErr(err)
	}
	v, dir, err := s.resolveRef(args.Dir, true)
	if err != nil {
		return respErr(err)
	}
	acl, err := v.GetACL(dir)
	if err != nil {
		return respErr(err)
	}
	if err := s.checkRights(ctx.User, acl, prot.RightInsert); err != nil {
		return respErr(err)
	}
	var vn *volume.Vnode
	err = s.mutate(v, func() error {
		vn, err = v.Create(dir, args.Name, args.Mode, ctx.User)
		return err
	})
	if err != nil {
		return respErr(err)
	}
	if s.cfg.Mode == Revised {
		s.callbacks.Break(ctx.Proc, dir, args.Dir.Path, ctx.Back)
		s.callbacks.Promise(vn.Status.FID, ctx.Back)
	}
	return respStatus(vn.Status)
}

func (s *Server) handleMakeDir(ctx rpc.Ctx, req rpc.Request) rpc.Response {
	args, err := proto.Unmarshal(req.Body, proto.DecodeNameArgs)
	if err != nil {
		return respErr(err)
	}
	v, dir, err := s.resolveRef(args.Dir, true)
	if err != nil {
		return respErr(err)
	}
	acl, err := v.GetACL(dir)
	if err != nil {
		return respErr(err)
	}
	if err := s.checkRights(ctx.User, acl, prot.RightInsert); err != nil {
		return respErr(err)
	}
	var vn *volume.Vnode
	err = s.mutate(v, func() error {
		vn, err = v.MakeDir(dir, args.Name, args.Mode, ctx.User)
		return err
	})
	if err != nil {
		return respErr(err)
	}
	if s.cfg.Mode == Revised {
		s.callbacks.Break(ctx.Proc, dir, args.Dir.Path, ctx.Back)
	}
	return respStatus(vn.Status)
}

func (s *Server) handleRemove(ctx rpc.Ctx, req rpc.Request) rpc.Response {
	return s.removeCommon(ctx, req, false)
}

func (s *Server) handleRemoveDir(ctx rpc.Ctx, req rpc.Request) rpc.Response {
	return s.removeCommon(ctx, req, true)
}

func (s *Server) removeCommon(ctx rpc.Ctx, req rpc.Request, isDir bool) rpc.Response {
	args, err := proto.Unmarshal(req.Body, proto.DecodeNameArgs)
	if err != nil {
		return respErr(err)
	}
	v, dir, err := s.resolveRef(args.Dir, true)
	if err != nil {
		return respErr(err)
	}
	acl, err := v.GetACL(dir)
	if err != nil {
		return respErr(err)
	}
	if err := s.checkRights(ctx.User, acl, prot.RightDelete); err != nil {
		return respErr(err)
	}
	victim, lookupErr := v.Lookup(dir, args.Name)
	err = s.mutate(v, func() error {
		if isDir {
			return v.RemoveDir(dir, args.Name)
		}
		return v.Remove(dir, args.Name)
	})
	if err != nil {
		return respErr(err)
	}
	if s.cfg.Mode == Revised {
		targets := []BreakTarget{{FID: dir, Path: args.Dir.Path}}
		if lookupErr == nil {
			targets = append(targets, BreakTarget{FID: victim.FID})
		}
		s.callbacks.BreakBatch(ctx.Proc, targets, ctx.Back)
	}
	return rpc.Response{}
}

func (s *Server) handleRename(ctx rpc.Ctx, req rpc.Request) rpc.Response {
	args, err := proto.Unmarshal(req.Body, proto.DecodeRenameArgs)
	if err != nil {
		return respErr(err)
	}
	v, from, err := s.resolveRef(args.FromDir, true)
	if err != nil {
		return respErr(err)
	}
	v2, to, err := s.resolveRef(args.ToDir, true)
	if err != nil {
		return respErr(err)
	}
	if v != v2 {
		return respErr(fmt.Errorf("%w: rename across volumes", proto.ErrBadRequest))
	}
	fromACL, err := v.GetACL(from)
	if err != nil {
		return respErr(err)
	}
	toACL, err := v.GetACL(to)
	if err != nil {
		return respErr(err)
	}
	if err := s.checkRights(ctx.User, fromACL, prot.RightDelete); err != nil {
		return respErr(err)
	}
	if err := s.checkRights(ctx.User, toACL, prot.RightInsert); err != nil {
		return respErr(err)
	}
	if err := s.mutate(v, func() error {
		return v.Rename(from, args.FromName, to, args.ToName)
	}); err != nil {
		return respErr(err)
	}
	if s.cfg.Mode == Revised {
		targets := []BreakTarget{{FID: from, Path: args.FromDir.Path}}
		if from != to {
			targets = append(targets, BreakTarget{FID: to, Path: args.ToDir.Path})
		}
		s.callbacks.BreakBatch(ctx.Proc, targets, ctx.Back)
	}
	return rpc.Response{}
}

func (s *Server) handleSymlink(ctx rpc.Ctx, req rpc.Request) rpc.Response {
	args, err := proto.Unmarshal(req.Body, proto.DecodeSymlinkArgs)
	if err != nil {
		return respErr(err)
	}
	v, dir, err := s.resolveRef(args.Dir, true)
	if err != nil {
		return respErr(err)
	}
	acl, err := v.GetACL(dir)
	if err != nil {
		return respErr(err)
	}
	if err := s.checkRights(ctx.User, acl, prot.RightInsert); err != nil {
		return respErr(err)
	}
	var vn *volume.Vnode
	err = s.mutate(v, func() error {
		vn, err = v.Symlink(dir, args.Name, args.Target)
		return err
	})
	if err != nil {
		return respErr(err)
	}
	if s.cfg.Mode == Revised {
		s.callbacks.Break(ctx.Proc, dir, args.Dir.Path, ctx.Back)
	}
	return respStatus(vn.Status)
}

func (s *Server) handleLink(ctx rpc.Ctx, req rpc.Request) rpc.Response {
	args, err := proto.Unmarshal(req.Body, proto.DecodeLinkArgs)
	if err != nil {
		return respErr(err)
	}
	v, dir, err := s.resolveRef(args.Dir, true)
	if err != nil {
		return respErr(err)
	}
	vt, target, err := s.resolveRef(args.Target, true)
	if err != nil {
		return respErr(err)
	}
	if v != vt {
		return respErr(fmt.Errorf("%w: hard link across volumes", proto.ErrBadRequest))
	}
	acl, err := v.GetACL(dir)
	if err != nil {
		return respErr(err)
	}
	if err := s.checkRights(ctx.User, acl, prot.RightInsert); err != nil {
		return respErr(err)
	}
	if err := s.mutate(v, func() error {
		return v.Link(dir, args.Name, target)
	}); err != nil {
		return respErr(err)
	}
	if s.cfg.Mode == Revised {
		s.callbacks.Break(ctx.Proc, dir, args.Dir.Path, ctx.Back)
	}
	return rpc.Response{}
}

func (s *Server) handleSetACL(ctx rpc.Ctx, req rpc.Request) rpc.Response {
	args, err := proto.Unmarshal(req.Body, proto.DecodeACLArgs)
	if err != nil {
		return respErr(err)
	}
	newACL, err := proto.ACLDecode(args.ACL)
	if err != nil {
		return respErr(err)
	}
	v, dir, err := s.resolveRef(args.Dir, true)
	if err != nil {
		return respErr(err)
	}
	acl, err := v.GetACL(dir)
	if err != nil {
		return respErr(err)
	}
	if err := s.checkRights(ctx.User, acl, prot.RightAdmin); err != nil {
		return respErr(err)
	}
	if err := s.mutate(v, func() error {
		return v.SetACL(dir, newACL)
	}); err != nil {
		return respErr(err)
	}
	if s.cfg.Mode == Revised {
		s.callbacks.Break(ctx.Proc, dir, args.Dir.Path, ctx.Back)
	}
	return rpc.Response{}
}

func (s *Server) handleGetACL(ctx rpc.Ctx, req rpc.Request) rpc.Response {
	args, err := proto.Unmarshal(req.Body, proto.DecodeACLArgs)
	if err != nil {
		return respErr(err)
	}
	v, dir, err := s.resolveRef(args.Dir, true)
	if err != nil {
		return respErr(err)
	}
	acl, err := v.GetACL(dir)
	if err != nil {
		return respErr(err)
	}
	if err := s.checkRights(ctx.User, acl, prot.RightLookup); err != nil {
		return respErr(err)
	}
	return rpc.Response{Body: proto.ACLEncode(acl)}
}

func (s *Server) handleSetLock(ctx rpc.Ctx, req rpc.Request) rpc.Response {
	args, err := proto.Unmarshal(req.Body, proto.DecodeLockArgs)
	if err != nil {
		return respErr(err)
	}
	v, fid, err := s.resolveRef(args.Ref, true)
	if err != nil {
		return respErr(err)
	}
	acl, err := v.GoverningACL(fid)
	if err != nil {
		return respErr(err)
	}
	if err := s.checkRights(ctx.User, acl, prot.RightLock); err != nil {
		return respErr(err)
	}
	if err := s.locks.Lock(fid, ctx.User, args.Exclusive); err != nil {
		// Advisory locks never block (§3.4): a busy lock is refused, so the
		// observable contention signal is the conflict count, not a wait time.
		s.cfg.Metrics.Counter(trace.MetricViceLockConflicts).Inc()
		return respErr(err)
	}
	return rpc.Response{}
}

func (s *Server) handleReleaseLock(ctx rpc.Ctx, req rpc.Request) rpc.Response {
	args, err := proto.Unmarshal(req.Body, proto.DecodeLockArgs)
	if err != nil {
		return respErr(err)
	}
	_, fid, err := s.resolveRef(args.Ref, true)
	if err != nil {
		return respErr(err)
	}
	if err := s.locks.Unlock(fid, ctx.User); err != nil {
		return respErr(err)
	}
	return rpc.Response{}
}

// handleGetCustodian answers location queries from workstations. Any server
// can answer any query: the location database is replicated everywhere.
func (s *Server) handleGetCustodian(ctx rpc.Ctx, req rpc.Request) rpc.Response {
	args, err := proto.Unmarshal(req.Body, proto.DecodeCustodianArgs)
	if err != nil {
		return respErr(err)
	}
	le, ok := s.cfg.Loc.Resolve(args.Path)
	if !ok {
		return respErr(fmt.Errorf("%w: no volume covers %s", proto.ErrNoEnt, args.Path))
	}
	reply := proto.CustodianReply{
		Prefix:    le.Prefix,
		Volume:    le.Volume,
		Custodian: le.Custodian,
		Replicas:  le.Replicas,
	}
	return rpc.Response{Body: proto.Marshal(reply)}
}

// dirOfPath returns the parent path and leaf name for mount placement.
func dirOfPath(path string) (string, string) {
	return unixfs.Dir(path), unixfs.Base(path)
}

// ensure volume import is used even if handlers evolve.
var _ = volume.RootVnode
