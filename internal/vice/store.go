package vice

// Durable storage. When Config.Store is set, every volume mutation, every
// location-database change and every protection-database mutation is
// journalled through the store before the operation is acknowledged; at
// startup RecoverStore loads back what survived a crash and reports what
// salvage repaired. When Config.Store is nil — the deterministic simulator's
// default — every hook here is an inert nil check and the server behaves
// exactly as before.
//
// Locking: applyMu serializes mutation+journal pairs so the log order
// matches the apply order. It is acquired before s.mu (CheckpointStore holds
// both); nothing acquires applyMu while holding s.mu. Sync runs outside
// applyMu so slow fsyncs don't serialize independent operations — the store
// coalesces concurrent Syncs into one fsync (group commit).

import (
	"fmt"
	"sort"

	"itcfs/internal/prot"
	"itcfs/internal/proto"
	"itcfs/internal/store"
	"itcfs/internal/trace"
	"itcfs/internal/volume"
)

// storeErr converts a store failure into the internal-error code clients
// see. The store latches its first failure, so once this happens every
// subsequent mutation fails the same way — the server is effectively
// read-only until restarted.
func storeErr(err error) error {
	return fmt.Errorf("%w: store: %v", proto.ErrInternal, err)
}

// mutate runs fn, which mutates v, and journals what it dirtied. The
// operation is durable (synced) before mutate returns nil. With no store
// configured this is exactly fn().
func (s *Server) mutate(v *volume.Volume, fn func() error) error {
	st := s.cfg.Store
	if st == nil {
		return fn()
	}
	s.applyMu.Lock()
	err := fn()
	c := store.CommitOf(v)
	committed := err == nil || len(c.Deletes)+len(c.Meta)+len(c.Data) > 0
	var werr error
	if committed {
		//itcvet:allowblocking Commit is a buffered append, not an fsync (Sync runs outside applyMu); log order must match apply order
		werr = st.Commit(c)
	}
	s.applyMu.Unlock()
	if werr == nil && committed {
		werr = st.Sync()
	}
	if err != nil {
		return err // the operation itself failed; any partial effect is journalled
	}
	if werr != nil {
		return storeErr(werr)
	}
	return nil
}

// attachVolume registers v locally, journalling its full image first so the
// volume exists durably before any mutation of it can be logged. The journal
// append and the s.vols insert happen under one applyMu hold: a checkpoint
// interleaving between them would snapshot without the volume yet truncate
// the log past its BeginVolume record, losing the acked create and orphaning
// every later commit for it.
func (s *Server) attachVolume(v *volume.Volume) error {
	st := s.cfg.Store
	if st == nil {
		s.mu.Lock()
		s.vols[v.ID()] = v
		s.mu.Unlock()
		return nil
	}
	v.EnableDirtyTracking()
	s.applyMu.Lock()
	err := st.BeginVolume(v.ID(), v.Serialize())
	if err == nil {
		s.mu.Lock()
		s.vols[v.ID()] = v
		s.mu.Unlock()
	}
	s.applyMu.Unlock()
	if err == nil {
		err = st.Sync()
	}
	if err != nil {
		// Not durable, so not acked: the volume must not be visible either.
		s.mu.Lock()
		delete(s.vols, v.ID())
		s.mu.Unlock()
		return storeErr(err)
	}
	return nil
}

// detachVolume removes a volume locally and from the store (volume moves,
// and undo of a failed create). As in attachVolume, the local removal and
// the journal append share one applyMu hold so a checkpoint sees either
// both or neither.
func (s *Server) detachVolume(id uint32) error {
	st := s.cfg.Store
	if st == nil {
		s.mu.Lock()
		delete(s.vols, id)
		s.mu.Unlock()
		return nil
	}
	s.applyMu.Lock()
	s.mu.Lock()
	delete(s.vols, id)
	s.mu.Unlock()
	err := st.DropVolume(id)
	s.applyMu.Unlock()
	if err == nil {
		err = st.Sync()
	}
	if err != nil {
		return storeErr(err)
	}
	return nil
}

// InstallLoc applies a location-database update locally and journals it.
// Apply and journal happen under one applyMu hold (as mutate does for volume
// commits): Loc.Install is last-writer-wins per prefix, so two concurrent
// installs applied in order A,B but journalled B,A would replay after a
// crash to state the pre-crash server never acknowledged.
func (s *Server) InstallLoc(entries []proto.LocEntry, remove []string) error {
	st := s.cfg.Store
	if st == nil {
		s.cfg.Loc.Install(entries, remove)
		return nil
	}
	s.applyMu.Lock()
	s.cfg.Loc.Install(entries, remove)
	err := st.PutLoc(entries, remove)
	s.applyMu.Unlock()
	if err == nil {
		err = st.Sync()
	}
	if err != nil {
		return storeErr(err)
	}
	return nil
}

// applyProt applies a protection-database mutation locally and journals it,
// under one applyMu hold so the log order matches the apply order (prot
// mutations are order-sensitive). A mutation the database rejects is never
// journalled.
func (s *Server) applyProt(m prot.Mutation) error {
	st := s.cfg.Store
	if st == nil {
		if err := s.cfg.DB.Apply(m); err != nil {
			return fmt.Errorf("%w: %v", proto.ErrBadRequest, err)
		}
		return nil
	}
	s.applyMu.Lock()
	err := s.cfg.DB.Apply(m)
	var werr error
	if err == nil {
		werr = st.PutProt(m)
	}
	s.applyMu.Unlock()
	if err != nil {
		return fmt.Errorf("%w: %v", proto.ErrBadRequest, err)
	}
	if werr == nil {
		werr = st.Sync()
	}
	if werr != nil {
		return storeErr(werr)
	}
	return nil
}

// RecoverStore loads the store's surviving state into the server: the
// protection database, the location database, and every volume (already
// salvaged by the engine, here fitted with the server's clock and dirty
// tracking). The recovery report goes to the flight recorder as
// vice.salvage events and to the metrics registry, and the store is
// checkpointed immediately so the replayed log is compacted away. Call once,
// before serving.
func (s *Server) RecoverStore() (*store.Report, error) {
	st := s.cfg.Store
	if st == nil {
		return nil, nil
	}
	rec, err := st.Recover()
	if err != nil {
		return nil, err
	}
	rep := &rec.Report
	if rec.ProtSnapshot != nil {
		if err := s.cfg.DB.LoadSnapshot(rec.ProtSnapshot); err != nil {
			rep.Notes = append(rep.Notes, fmt.Sprintf("protection snapshot rejected: %v", err))
		}
	}
	for _, m := range rec.ProtMutations {
		if err := s.cfg.DB.Apply(m); err != nil {
			// Replay of an already-applied or stale mutation; the database
			// stays self-consistent, so note it and continue.
			rep.Notes = append(rep.Notes, fmt.Sprintf("protection mutation replay: %v", err))
		}
	}
	for _, op := range rec.LocOps {
		s.cfg.Loc.Install(op.Entries, op.Remove)
	}
	s.mu.Lock()
	for _, v := range rec.Volumes {
		v.SetClock(s.cfg.Clock)
		v.EnableDirtyTracking()
		if ix := s.cfg.Blocks; ix != nil {
			// Recovery materialized each volume's content from the journal;
			// re-intern it so replicas and clones share blocks again.
			v.InternData(ix.Intern)
		}
		s.vols[v.ID()] = v
	}
	s.mu.Unlock()
	if fl := s.cfg.Flight; fl != nil {
		for _, line := range rep.Lines() {
			fl.Log(trace.EventViceSalvage, s.cfg.Name, line)
		}
	}
	if m := s.cfg.Metrics; m != nil {
		m.Counter(trace.MetricViceSalvageReplayed).Add(int64(rep.Replayed))
		m.Counter(trace.MetricViceSalvageDiscardedRecords).Add(int64(rep.DiscardedRecords))
		m.Counter(trace.MetricViceSalvageDiscardedBytes).Add(rep.DiscardedBytes)
		for _, vr := range rep.Volumes {
			m.Counter(trace.MetricViceSalvageOrphansRemoved).Add(int64(vr.Salvage.OrphansRemoved))
			m.Counter(trace.MetricViceSalvageDanglingEntries).Add(int64(vr.Salvage.DanglingEntries))
			m.Counter(trace.MetricViceSalvageLinksFixed).Add(int64(vr.Salvage.LinksFixed))
		}
	}
	if err := s.CheckpointStore(); err != nil {
		return rep, err
	}
	return rep, nil
}

// CheckpointStore writes a full snapshot of server state to the store and
// truncates its log. Mutations are quiesced (applyMu) for the duration, so
// the snapshot is a consistent cut.
func (s *Server) CheckpointStore() error {
	st := s.cfg.Store
	if st == nil {
		return nil
	}
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	cp := store.Checkpoint{
		Prot: s.cfg.DB.Snapshot(),
		Loc:  s.cfg.Loc.Entries(),
	}
	s.mu.Lock()
	ids := make([]uint32, 0, len(s.vols))
	for id := range s.vols {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		cp.Volumes = append(cp.Volumes, store.VolumeImage{ID: id, Image: s.vols[id].Serialize()})
	}
	s.mu.Unlock()
	//itcvet:allowblocking checkpoint quiesces mutations by design so the snapshot is a consistent cut
	return st.Checkpoint(cp)
}
