package vice

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"itcfs/internal/prot"
	"itcfs/internal/proto"
	"itcfs/internal/replica"
	"itcfs/internal/rpc"
	"itcfs/internal/sim"
	"itcfs/internal/store"
	"itcfs/internal/trace"
	"itcfs/internal/unixfs"
	"itcfs/internal/volume"
)

// Mode selects which of the paper's two implementations the server (and the
// Venus clients talking to it) behaves as.
type Mode int

// Modes.
const (
	// Prototype: workstations present entire pathnames and validate cached
	// copies on every open; servers walk paths and keep no callback state.
	Prototype Mode = iota
	// Revised: fixed-length FIDs, client-side pathname traversal against
	// cached directories, and callback-based cache invalidation.
	Revised
)

func (m Mode) String() string {
	if m == Prototype {
		return "prototype"
	}
	return "revised"
}

// ServerUser is the identity servers use with each other. It is inside the
// boundary of trustworthiness: requests authenticated as ServerUser bypass
// access lists.
const ServerUser = "System:Server"

// AdminGroup is the operations-staff group; members may administer volumes
// and the protection database.
const AdminGroup = "System:Administrators"

// Caller abstracts an outbound authenticated connection to a peer server
// (both rpc.SimConn and rpc.Peer satisfy it).
type Caller interface {
	Call(p *sim.Proc, req rpc.Request) (rpc.Response, error)
}

// Config assembles a server's dependencies.
type Config struct {
	Name  string
	Mode  Mode
	DB    *prot.DB // this server's replica of the protection database
	Loc   *LocDB   // this server's replica of the location database
	Clock volume.Clock
	// ProtAuthority marks the server hosting the protection server role;
	// only it accepts OpProtMutate, pushing the mutation to every replica.
	ProtAuthority bool
	// AllocVolID issues cell-wide unique volume IDs.
	AllocVolID func() uint32
	// MaxWalkDepth bounds symlink-following during server-side walks.
	MaxWalkDepth int
	// Metrics, when set, receives server-side counters and per-volume
	// service-time histograms (lock conflicts, callback fan-out,
	// vice.vol.<id>.latency, vice.vol.<id>.ops). Nil disables all of it.
	Metrics *trace.Registry
	// Flight, when set, receives operational events — salvages and callback
	// break storms — for the flight recorder. Nil disables.
	Flight *trace.Recorder
	// UnbatchedBreaks forces one callback RPC per broken promise (the
	// pre-batching break path) for ablation experiments such as E14.
	UnbatchedBreaks bool
	// BreakWindow widens the callback coalescing window beyond
	// DefaultBreakWindow: each update's reply waits up to this long extra so
	// concurrent updates' breaks for the same workstation share one RPC.
	// Zero keeps the default.
	BreakWindow time.Duration
	// Store, when set, journals every volume, location and protection
	// mutation durably before it is acknowledged; RecoverStore loads the
	// surviving state back after a restart. Nil keeps volumes volatile (the
	// simulator's default).
	Store store.Store
	// Blocks, when set, is the content-addressed block index: volume images
	// arriving by clone, install or recovery have their file content
	// interned so identical blocks across clones, releases and replicas are
	// stored once. Share one index across a cell's servers to measure
	// cell-wide dedup. Nil disables interning.
	Blocks *replica.Index
}

// Server is one Vice cluster server.
type Server struct {
	cfg Config

	mu    sync.Mutex
	vols  map[uint32]*volume.Volume // guarded by mu
	peers map[string]Caller         // guarded by mu

	// applyMu serializes mutation+journal pairs when a store is configured
	// (see store.go). Acquired before mu; never while holding mu.
	applyMu sync.Mutex

	locks     *LockTable
	callbacks *CallbackTable
	disp      *rpc.Server
	release   *replica.Controller
	restarts  int64 // guarded by mu

	// Traffic counters for the evaluation harness.
	fetchBytes int64 // guarded by mu
	storeBytes int64 // guarded by mu
	// pathname components walked server-side (prototype cost)
	// guarded by mu
	walkComponents int64
	// volAccess counts hot-path operations per volume per requesting node,
	// the raw data for the monitoring tools of §3.6 (recognizing long-term
	// access patterns and recommending custodian reassignment).
	// guarded by mu
	volAccess map[uint32]map[string]int64
	// volOps and volLat cache the per-volume metric handles: both are
	// touched on every served hot-path call, and resolving the Sprintf'd
	// name through the registry each time is measurable at scale.
	// guarded by mu
	volOps map[uint32]*trace.Counter
	volLat map[uint32]*trace.Histogram
	// pendingVol remembers, per serving worker process, which volume the
	// in-flight call touched, so ObserveCall can attribute the call's
	// service time to that volume's latency histogram.
	// guarded by mu
	pendingVol map[*sim.Proc]uint32
}

// New creates a server. Register its Dispatcher with an rpc transport to
// serve clients.
func New(cfg Config) *Server {
	if cfg.Clock == nil {
		cfg.Clock = func() int64 { return 0 }
	}
	if cfg.MaxWalkDepth == 0 {
		cfg.MaxWalkDepth = 16
	}
	if cfg.Loc == nil {
		cfg.Loc = NewLocDB()
	}
	if cfg.DB == nil {
		cfg.DB = prot.NewDB()
	}
	s := &Server{
		cfg:        cfg,
		vols:       make(map[uint32]*volume.Volume),
		peers:      make(map[string]Caller),
		locks:      NewLockTable(),
		callbacks:  NewCallbackTable(),
		disp:       rpc.NewServer(),
		volAccess:  make(map[uint32]map[string]int64),
		volOps:     make(map[uint32]*trace.Counter),
		volLat:     make(map[uint32]*trace.Histogram),
		pendingVol: make(map[*sim.Proc]uint32),
	}
	s.release = replica.NewController(cfg.Name, cfg.Metrics, cfg.Flight)
	s.callbacks.SetMetrics(cfg.Metrics)
	s.callbacks.SetFlight(cfg.Flight, cfg.Name)
	s.callbacks.SetUnbatched(cfg.UnbatchedBreaks)
	s.callbacks.SetWindow(cfg.BreakWindow)
	s.registerHandlers()
	return s
}

// Name returns the server's name.
func (s *Server) Name() string { return s.cfg.Name }

// Mode returns the implementation mode.
func (s *Server) Mode() Mode { return s.cfg.Mode }

// DB returns the protection-database replica (it doubles as the key lookup
// for the authentication handshake).
func (s *Server) DB() *prot.DB { return s.cfg.DB }

// Loc returns the location-database replica.
func (s *Server) Loc() *LocDB { return s.cfg.Loc }

// Locks returns the advisory lock table.
func (s *Server) Locks() *LockTable { return s.locks }

// Callbacks returns the callback table (revised mode).
func (s *Server) Callbacks() *CallbackTable { return s.callbacks }

// Dispatcher returns the rpc handler set to attach to a transport.
func (s *Server) Dispatcher() *rpc.Server { return s.disp }

// AddPeer registers an authenticated connection to another server.
func (s *Server) AddPeer(name string, c Caller) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.peers[name] = c
}

// AddVolume installs a volume on this server (bootstrap and tests),
// journalling its image when a store is configured.
func (s *Server) AddVolume(v *volume.Volume) error {
	return s.attachVolume(v)
}

// Volume returns a locally stored volume.
func (s *Server) Volume(id uint32) (*volume.Volume, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.vols[id]
	return v, ok
}

// VolumeIDs lists the volumes stored here.
func (s *Server) VolumeIDs() []uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint32, 0, len(s.vols))
	for id := range s.vols {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TrafficStats reports bytes served and stored, and pathname components
// walked server-side.
func (s *Server) TrafficStats() (fetchBytes, storeBytes, walked int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fetchBytes, s.storeBytes, s.walkComponents
}

// noteAccess records one hot-path operation on vol by the calling peer node,
// and marks the serving process so ObserveCall can attribute the call's
// service time to the volume.
func (s *Server) noteAccess(ctx rpc.Ctx, vol uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.volAccess[vol]
	if m == nil {
		m = make(map[string]int64)
		s.volAccess[vol] = m
	}
	m[ctx.Peer]++
	if s.cfg.Metrics != nil {
		// Per-volume call-mix counter: sampled into per-window rates, it is
		// how the overload detector attributes a hot server's load to the
		// volume driving it. (Registry locks nest under s.mu here; the
		// registry never calls back into vice.)
		c := s.volOps[vol]
		if c == nil {
			c = s.cfg.Metrics.Counter(VolOpsMetric(vol))
			s.volOps[vol] = c
		}
		c.Inc()
		if ctx.Proc != nil {
			s.pendingVol[ctx.Proc] = vol
		}
	}
}

// VolLatencyMetric names the per-volume service-time histogram; monitoring
// tools look latencies up under the same name. Delegates to the canonical
// table in trace.
func VolLatencyMetric(vol uint32) string { return trace.VolLatencyMetric(vol) }

// VolOpsMetric names the per-volume hot-path operation counter; the overload
// detector reads its per-window rate to find the volume behind a hot server.
func VolOpsMetric(vol uint32) string { return trace.VolOpsMetric(vol) }

// ObserveCall is the rpc Observe hook: after each served call it records the
// measured service time against the volume the call touched (if any). svc is
// virtual time, so the resulting histograms are seed-deterministic.
func (s *Server) ObserveCall(ctx rpc.Ctx, req rpc.Request, resp rpc.Response, svc time.Duration) {
	if s.cfg.Metrics == nil || ctx.Proc == nil {
		return
	}
	s.mu.Lock()
	vol, ok := s.pendingVol[ctx.Proc]
	var h *trace.Histogram
	if ok {
		delete(s.pendingVol, ctx.Proc)
		h = s.volLat[vol]
		if h == nil {
			h = s.cfg.Metrics.Histogram(VolLatencyMetric(vol))
			s.volLat[vol] = h
		}
	}
	s.mu.Unlock()
	if ok {
		h.Observe(svc)
	}
}

// AccessStats returns a copy of the per-volume, per-node operation counts.
func (s *Server) AccessStats() map[uint32]map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[uint32]map[string]int64, len(s.volAccess))
	for vol, m := range s.volAccess {
		cp := make(map[string]int64, len(m))
		for peer, n := range m {
			cp[peer] = n
		}
		out[vol] = cp
	}
	return out
}

// ResetAccessStats clears the per-volume counters (between observation
// windows).
func (s *Server) ResetAccessStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.volAccess = make(map[uint32]map[string]int64)
}

// Crash models a server process dying: all volatile state — callback
// promises and the advisory lock table — is lost, while volumes (on "disk")
// survive. Clients holding callback promises are now at risk of staleness;
// they recover by revalidating on reconnect or when their promise TTL
// expires, and the server re-promises on the next fetch (§3.3 recovery).
func (s *Server) Crash() {
	s.callbacks.Reset()
	s.locks.Reset()
	s.mu.Lock()
	s.restarts++
	s.mu.Unlock()
}

// Restarts returns how many times the server has crashed and restarted.
func (s *Server) Restarts() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restarts
}

// SalvageAll runs crash recovery on every local volume, journalling any
// repairs. Volumes are collected under mu and salvaged outside it: salvage
// mutates, and mutations must take applyMu first (lock order, see store.go).
func (s *Server) SalvageAll() map[uint32]volume.SalvageReport {
	s.mu.Lock()
	vols := make([]*volume.Volume, 0, len(s.vols))
	for _, v := range s.vols {
		vols = append(vols, v)
	}
	s.mu.Unlock()
	sort.Slice(vols, func(i, j int) bool { return vols[i].ID() < vols[j].ID() })
	out := make(map[uint32]volume.SalvageReport, len(vols))
	for _, v := range vols {
		var rep volume.SalvageReport
		_ = s.mutate(v, func() error { rep = v.Salvage(); return nil }) // repairs applied in memory regardless
		out[v.ID()] = rep
	}
	return out
}

// cps computes the caller's protection subdomain.
func (s *Server) cps(user string) []string { return s.cfg.DB.CPS(user) }

// isAdmin reports whether the caller may administer volumes and protection.
func (s *Server) isAdmin(user string) bool {
	if user == ServerUser {
		return true
	}
	for _, n := range s.cps(user) {
		if n == AdminGroup {
			return true
		}
	}
	return false
}

// checkRights enforces an access list. Peer servers and operations staff
// (the AdminGroup) hold implicit rights on every object, as the
// administrators who physically control Vice necessarily do.
func (s *Server) checkRights(user string, acl prot.ACL, want prot.Right) error {
	if user == ServerUser {
		return nil
	}
	cps := s.cps(user)
	if acl.Check(cps, want) {
		return nil
	}
	for _, n := range cps {
		if n == AdminGroup {
			return nil
		}
	}
	return fmt.Errorf("%w: need %v", proto.ErrAccess, want)
}

// resolveFID locates the volume for a FID, returning WrongServer with the
// custodian hint when the volume lives elsewhere.
func (s *Server) resolveFID(fid proto.FID) (*volume.Volume, error) {
	s.mu.Lock()
	v, ok := s.vols[fid.Volume]
	s.mu.Unlock()
	if ok {
		return v, nil
	}
	if le, ok := s.cfg.Loc.ResolveVolume(fid.Volume); ok {
		return nil, &proto.WrongServer{Custodian: le.Custodian}
	}
	return nil, fmt.Errorf("%w: volume %d", proto.ErrStale, fid.Volume)
}

// resolvePath walks an entire pathname server-side (prototype mode, §3.5).
// It resolves the longest location-database prefix, walks the remaining
// components inside that volume, follows symlinks (restarting resolution,
// since a link may lead anywhere in the shared space), and returns the
// volume and FID reached. followLast selects whether a final symlink is
// followed.
func (s *Server) resolvePath(path string, followLast bool) (*volume.Volume, proto.FID, error) {
	return s.walkPath(path, followLast, 0)
}

func (s *Server) walkPath(path string, followLast bool, depth int) (*volume.Volume, proto.FID, error) {
	if depth > s.cfg.MaxWalkDepth {
		return nil, proto.FID{}, fmt.Errorf("%w: %s", proto.ErrLoop, path)
	}
	if path == "" || path[0] != '/' {
		// Clean would coerce a malformed path to "/"; a hostile client
		// must not reach the root that way.
		return nil, proto.FID{}, fmt.Errorf("%w: path %q not absolute", proto.ErrBadRequest, path)
	}
	path = unixfs.Clean(path)
	le, ok := s.cfg.Loc.Resolve(path)
	if !ok {
		return nil, proto.FID{}, fmt.Errorf("%w: no volume covers %s", proto.ErrNoEnt, path)
	}
	s.mu.Lock()
	v, local := s.vols[le.Volume]
	s.mu.Unlock()
	if !local {
		return nil, proto.FID{}, &proto.WrongServer{Custodian: le.Custodian}
	}
	cur := v.Root()
	components := PathWithin(le, path)
	prefix := le.Prefix
	for i, comp := range components {
		s.mu.Lock()
		s.walkComponents++
		s.mu.Unlock()
		de, err := v.Lookup(cur, comp)
		if err != nil {
			return nil, proto.FID{}, fmt.Errorf("%s: %w", path, err)
		}
		last := i == len(components)-1
		if de.FID.Volume != v.ID() {
			// A mount point: the remainder lives in another volume, whose
			// prefix the location database already covers. Restart there.
			return s.walkPath(path, followLast, depth+1)
		}
		vn, err := v.Get(de.FID)
		if err != nil {
			return nil, proto.FID{}, err
		}
		if vn.Status.Type == proto.TypeSymlink && (!last || followLast) {
			target := vn.Status.Target
			if len(target) == 0 || target[0] != '/' {
				target = unixfs.Join(prefix, join(components[:i]), target)
			}
			rest := join(components[i+1:])
			return s.walkPath(unixfs.Join(target, rest), followLast, depth+1)
		}
		cur = de.FID
	}
	return v, cur, nil
}

func join(parts []string) string {
	out := ""
	for _, p := range parts {
		out += "/" + p
	}
	return out
}

// resolveRef resolves either addressing mode. Prototype-mode requests carry
// paths; revised-mode requests carry FIDs (after Venus has walked cached
// directories itself).
func (s *Server) resolveRef(ref proto.Ref, followLast bool) (*volume.Volume, proto.FID, error) {
	if ref.ByFID() {
		v, err := s.resolveFID(ref.FID)
		if err != nil {
			return nil, proto.FID{}, err
		}
		return v, ref.FID, nil
	}
	if ref.Path == "" {
		return nil, proto.FID{}, fmt.Errorf("%w: empty ref", proto.ErrBadRequest)
	}
	return s.resolvePath(ref.Path, followLast)
}

// respErr converts an error to an rpc.Response, attaching the custodian
// hint for WrongServer.
func respErr(err error) rpc.Response {
	var ws *proto.WrongServer
	if errors.As(err, &ws) {
		return rpc.Response{Code: proto.CodeWrongServer, Body: []byte(ws.Custodian)}
	}
	return rpc.Response{Code: proto.ErrToCode(err), Body: []byte(err.Error())}
}

func respStatus(st proto.Status) rpc.Response {
	return rpc.Response{Body: proto.Marshal(st)}
}
