package vice

import (
	"testing"

	"itcfs/internal/leakcheck"
)

// TestMain fails the package if any test leaves a goroutine running —
// a server or release controller that outlives its Close.
func TestMain(m *testing.M) { leakcheck.Main(m) }
