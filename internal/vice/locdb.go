// Package vice implements the Vice cluster server (§2.3): the trusted file
// server that stores the shared name space in volumes, answers the Vice
// protocol, enforces access lists, maintains the replicated location
// database, serves advisory locks, breaks callbacks in revised mode, and
// coordinates volume and protection administration across servers.
package vice

import (
	"sort"
	"strings"
	"sync"

	"itcfs/internal/proto"
	"itcfs/internal/unixfs"
)

// LocDB is one replica of the location database (§3.1): the map from shared
// name space subtrees to the volumes mounted there and their custodians.
// Custodianship is on a subtree basis, so the database stays small: one
// entry per volume, not per file. Every cluster server holds a complete
// copy; changing it is expensive because it means updating every server,
// which is why the design keeps such changes rare.
type LocDB struct {
	mu sync.RWMutex
	// keyed by prefix
	// guarded by mu
	entries map[string]proto.LocEntry
	byVol   map[uint32]proto.LocEntry // guarded by mu
	version uint64                    // guarded by mu
}

// NewLocDB returns an empty location database.
func NewLocDB() *LocDB {
	return &LocDB{
		entries: make(map[string]proto.LocEntry),
		byVol:   make(map[uint32]proto.LocEntry),
	}
}

// Version counts applied updates; replicas with equal versions that saw the
// same stream are identical.
func (l *LocDB) Version() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.version
}

// Install applies an update: upserting entries and removing prefixes.
func (l *LocDB) Install(entries []proto.LocEntry, remove []string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, p := range remove {
		delete(l.entries, unixfs.Clean(p))
	}
	for _, le := range entries {
		le.Prefix = unixfs.Clean(le.Prefix)
		l.entries[le.Prefix] = le
	}
	// Rebuild the volume index from scratch. Removing a prefix must not
	// orphan a volume still mounted at another prefix, and upserting a
	// prefix under a new volume must not leave the old volume pointing at
	// it. When one volume is mounted at several prefixes, the
	// lexicographically smallest prefix wins, deterministically.
	l.byVol = make(map[uint32]proto.LocEntry, len(l.entries))
	for prefix, le := range l.entries {
		if cur, ok := l.byVol[le.Volume]; !ok || prefix < cur.Prefix {
			l.byVol[le.Volume] = le
		}
	}
	l.version++
}

// Resolve finds the entry whose prefix is the longest one covering path.
// This is how a server (prototype) or Venus (revised) locates a custodian.
func (l *LocDB) Resolve(path string) (proto.LocEntry, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	path = unixfs.Clean(path)
	for {
		if le, ok := l.entries[path]; ok {
			return le, true
		}
		if path == "/" {
			return proto.LocEntry{}, false
		}
		path = unixfs.Dir(path)
	}
}

// ResolveVolume finds the entry for a volume ID.
func (l *LocDB) ResolveVolume(id uint32) (proto.LocEntry, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	le, ok := l.byVol[id]
	return le, ok
}

// Entries returns all rows sorted by prefix (for snapshots and tests).
func (l *LocDB) Entries() []proto.LocEntry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]proto.LocEntry, 0, len(l.entries))
	for _, le := range l.entries {
		out = append(out, le)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix < out[j].Prefix })
	return out
}

// MountsUnder lists entries whose prefix is strictly below dir, one path
// component deeper (used to surface mount points in directory listings of
// the prototype walker).
func (l *LocDB) MountsUnder(dir string) []proto.LocEntry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	dir = unixfs.Clean(dir)
	var out []proto.LocEntry
	for prefix, le := range l.entries {
		if unixfs.Dir(prefix) == dir && prefix != dir {
			out = append(out, le)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix < out[j].Prefix })
	return out
}

// PathWithin returns the remainder of path below the entry's prefix, as a
// component list. It assumes Resolve matched.
func PathWithin(le proto.LocEntry, path string) []string {
	path = unixfs.Clean(path)
	if le.Prefix == "/" {
		if path == "/" {
			return nil
		}
		return strings.Split(strings.TrimPrefix(path, "/"), "/")
	}
	rest := strings.TrimPrefix(path, le.Prefix)
	rest = strings.TrimPrefix(rest, "/")
	if rest == "" {
		return nil
	}
	return strings.Split(rest, "/")
}
