package vice

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"

	"itcfs/internal/prot"
	"itcfs/internal/proto"
	"itcfs/internal/rpc"
	"itcfs/internal/secure"
	"itcfs/internal/sim"
	"itcfs/internal/store"
	"itcfs/internal/store/walstore"
	"itcfs/internal/trace"
	"itcfs/internal/volume"
)

// durableServer is one server with a store attached, the shape itcfsd runs:
// recover first, bootstrap the root volume only when nothing was recovered.
type durableServer struct {
	srv     *Server
	flight  *trace.Recorder
	metrics *trace.Registry
	report  *store.Report
}

func newDurableServer(t *testing.T, st store.Store) *durableServer {
	t.Helper()
	db := prot.NewDB()
	for _, m := range []prot.Mutation{
		{Kind: prot.MutAddUser, Name: "satya", Key: secure.DeriveKey("satya", "pw")},
		{Kind: prot.MutAddUser, Name: "operator", Key: secure.DeriveKey("operator", "pw")},
		{Kind: prot.MutAddGroup, Name: AdminGroup, Owner: "operator"},
		{Kind: prot.MutAddMember, Name: AdminGroup, Member: "operator"},
	} {
		if err := db.Apply(m); err != nil {
			t.Fatal(err)
		}
	}
	var clock int64
	var vclock sim.Time
	d := &durableServer{
		metrics: trace.NewRegistry(),
		flight:  trace.NewRecorder(256, func() sim.Time { vclock++; return vclock }),
	}
	d.srv = New(Config{
		Name:          "server0",
		Mode:          Revised,
		DB:            db,
		Loc:           NewLocDB(),
		Clock:         func() int64 { clock++; return clock },
		ProtAuthority: true,
		AllocVolID:    func() uint32 { return 99 },
		Metrics:       d.metrics,
		Flight:        d.flight,
		Store:         st,
	})
	rep, err := d.srv.RecoverStore()
	if err != nil {
		t.Fatalf("RecoverStore: %v", err)
	}
	d.report = rep
	if _, ok := d.srv.Volume(1); !ok {
		rootACL := prot.NewACL()
		rootACL.Grant(prot.AnyUser, prot.RightLookup|prot.RightRead)
		rootACL.Grant(AdminGroup, prot.RightsAll)
		root := volume.New(1, "root", rootACL, 0, "operator", func() int64 { clock++; return clock })
		if err := d.srv.AddVolume(root); err != nil {
			t.Fatalf("AddVolume: %v", err)
		}
		if err := d.srv.InstallLoc([]proto.LocEntry{{Prefix: "/", Volume: 1, Custodian: "server0"}}, nil); err != nil {
			t.Fatalf("InstallLoc: %v", err)
		}
	}
	return d
}

func (d *durableServer) call(t *testing.T, user string, op uint16, body, bulk []byte) []byte {
	t.Helper()
	resp := d.srv.Dispatcher().Dispatch(rpc.Ctx{User: user},
		rpc.Request{Op: rpc.Op(op), Body: body, Bulk: bulk})
	if !resp.OK() {
		t.Fatalf("op %d failed: code %d: %s", op, resp.Code, resp.Body)
	}
	return resp.Bulk
}

// TestStorePersistAcrossServerRestart is the vice-level crash test: run a
// workload against one server, abandon it without any clean shutdown (its
// checkpoint never runs), and bring up a second server over the same disk
// bytes. Everything acknowledged — files, directories, the location entry,
// a protection mutation — must be there, and the salvage report must reach
// the flight recorder and the metrics registry.
func TestStorePersistAcrossServerRestart(t *testing.T) {
	fsys := store.NewMemFS()
	ws, err := walstore.Open(fsys)
	if err != nil {
		t.Fatal(err)
	}
	d1 := newDurableServer(t, ws)

	d1.call(t, "operator", proto.OpMakeDir,
		proto.Marshal(proto.NameArgs{Dir: pathRef("/"), Name: "d", Mode: 0o755}), nil)
	d1.call(t, "operator", proto.OpCreate,
		proto.Marshal(proto.NameArgs{Dir: pathRef("/d"), Name: "f", Mode: 0o644}), nil)
	d1.call(t, "operator", proto.OpStore,
		proto.Marshal(proto.StoreArgs{Ref: pathRef("/d/f")}), []byte("durable bytes"))
	d1.call(t, "operator", proto.OpProtMutate,
		proto.Marshal(prot.Mutation{Kind: prot.MutAddUser, Name: "bovik"}), nil)

	// No checkpoint, no close: the second open replays the log.
	ws2, err := walstore.Open(fsys)
	if err != nil {
		t.Fatal(err)
	}
	d2 := newDurableServer(t, ws2)
	if d2.report == nil || d2.report.Replayed == 0 {
		t.Fatalf("nothing replayed: %+v", d2.report)
	}

	got := d2.call(t, "operator", proto.OpFetch,
		proto.Marshal(proto.FetchArgs{Ref: pathRef("/d/f")}), nil)
	if string(got) != "durable bytes" {
		t.Fatalf("fetched %q", got)
	}
	if !d2.srv.cfg.DB.HasUser("bovik") {
		t.Fatal("protection mutation lost")
	}
	if _, ok := d2.srv.Loc().Resolve("/d/f"); !ok {
		t.Fatal("location entry lost")
	}

	var fl bytes.Buffer
	d2.flight.WriteText(&fl)
	if !strings.Contains(fl.String(), "vice.salvage") {
		t.Fatalf("no vice.salvage flight event:\n%s", fl.String())
	}
	var mt bytes.Buffer
	d2.metrics.WriteText(&mt)
	if !strings.Contains(mt.String(), "vice.salvage.replayed") {
		t.Fatalf("no vice.salvage.replayed metric:\n%s", mt.String())
	}

	// RecoverStore checkpointed: the log is compacted back to its header.
	wal, err := fsys.ReadFile("wal.log")
	if err != nil || len(wal) != 8 {
		t.Fatalf("log not compacted after recovery: %d bytes, %v", len(wal), err)
	}
}

// hookStore wraps a store so a test can interleave work at the exact point
// attachVolume calls Sync — outside applyMu, where the periodic checkpointer
// can preempt a volume create.
type hookStore struct {
	store.Store
	onSync func()
}

func (h *hookStore) Sync() error {
	if fn := h.onSync; fn != nil {
		h.onSync = nil
		fn()
	}
	return h.Store.Sync()
}

// TestAttachVolumeVsCheckpoint pins the attach/checkpoint interleaving: a
// checkpoint running between a volume's BeginVolume journal append and its
// Sync must still include the volume. If it snapshots without it, the
// checkpoint truncates the log past the BeginVolume record and the acked
// create silently vanishes on restart.
func TestAttachVolumeVsCheckpoint(t *testing.T) {
	fsys := store.NewMemFS()
	ws, err := walstore.Open(fsys)
	if err != nil {
		t.Fatal(err)
	}
	hs := &hookStore{Store: ws}
	d := newDurableServer(t, hs)

	hs.onSync = func() {
		if err := d.srv.CheckpointStore(); err != nil {
			t.Errorf("checkpoint during attach: %v", err)
		}
	}
	acl := prot.NewACL()
	acl.Grant("operator", prot.RightsAll)
	var clock int64
	v := volume.New(7, "vol7", acl, 0, "operator", func() int64 { clock++; return clock })
	if err := d.srv.AddVolume(v); err != nil {
		t.Fatalf("AddVolume: %v", err)
	}

	// Abandon without clean shutdown: the acked create must survive the
	// checkpoint that ran mid-attach.
	ws2, err := walstore.Open(fsys)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := ws2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	for _, rv := range rec.Volumes {
		if rv.ID() == 7 {
			return
		}
	}
	t.Fatalf("acked volume create lost: recovered %d volumes, none with ID 7", len(rec.Volumes))
}

// TestStoreFailureSurfacesAndUnackedWriteStaysVolatile: once the disk dies,
// mutations fail with an internal error, and a restart from what stable
// storage holds serves only the acknowledged history — the failed write
// never becomes durable.
func TestStoreFailureSurfacesAndUnackedWriteStaysVolatile(t *testing.T) {
	f := store.NewFaultFS(1, 0)
	f.Strict = true
	ws, err := walstore.Open(f)
	if err != nil {
		t.Fatal(err)
	}
	d := newDurableServer(t, ws)
	d.call(t, "operator", proto.OpCreate,
		proto.Marshal(proto.NameArgs{Dir: pathRef("/"), Name: "f", Mode: 0o644}), nil)
	d.call(t, "operator", proto.OpStore,
		proto.Marshal(proto.StoreArgs{Ref: pathRef("/f")}), []byte("before"))

	// Kill the disk out from under the store.
	f.CrashNow()

	resp := d.srv.Dispatcher().Dispatch(rpc.Ctx{User: "operator"},
		rpc.Request{Op: rpc.Op(proto.OpStore),
			Body: proto.Marshal(proto.StoreArgs{Ref: pathRef("/f")}), Bulk: []byte("after")})
	if resp.OK() || resp.Code != proto.CodeInternal {
		t.Fatalf("store mutation with dead disk: code %d", resp.Code)
	}

	// Restart from the survivors: the error'd write must not have made it.
	ws2, err := walstore.Open(f.Survivors())
	if err != nil {
		t.Fatal(err)
	}
	d2 := newDurableServer(t, ws2)
	got := d2.call(t, "operator", proto.OpFetch,
		proto.Marshal(proto.FetchArgs{Ref: pathRef("/f")}), nil)
	if string(got) != "before" {
		t.Fatalf("recovered contents = %q, want the acked %q", got, "before")
	}
}

// syncFailFS delegates to an in-memory FS but, once armed, fails every fsync
// on the log. Appends keep succeeding — the record reaches the OS buffer,
// the flush dies — which is exactly the ordering where a positive ack would
// be a lie.
type syncFailFS struct {
	store.FS
	mu    sync.Mutex
	armed bool // guarded by mu
}

var errInjectedFsync = errors.New("injected fsync failure")

func (s *syncFailFS) arm(on bool) {
	s.mu.Lock()
	s.armed = on
	s.mu.Unlock()
}

func (s *syncFailFS) Open(name string) (store.File, error) {
	f, err := s.FS.Open(name)
	if err != nil {
		return nil, err
	}
	return &syncFailFile{File: f, fs: s}, nil
}

type syncFailFile struct {
	store.File
	fs *syncFailFS
}

func (f *syncFailFile) Sync() error {
	f.fs.mu.Lock()
	armed := f.fs.armed
	f.fs.mu.Unlock()
	if armed {
		return errInjectedFsync
	}
	return f.File.Sync()
}

// TestSyncFailureLatchesAcrossMutatePaths pins walstore's latch discipline as
// seen through the vice mutate paths: the mutation whose fsync failed is
// refused (a failed Sync is never followed by a positive ack), and the latch
// makes every later mutation — volume writes, creates, location installs,
// protection changes — keep failing even after the disk "recovers", because
// the store cannot know how much of its buffered tail actually survived.
// Reads keep working: the server degrades to read-only, not to dead.
func TestSyncFailureLatchesAcrossMutatePaths(t *testing.T) {
	fsys := &syncFailFS{FS: store.NewMemFS()}
	ws, err := walstore.Open(fsys)
	if err != nil {
		t.Fatal(err)
	}
	d := newDurableServer(t, ws)
	d.call(t, "operator", proto.OpCreate,
		proto.Marshal(proto.NameArgs{Dir: pathRef("/"), Name: "f", Mode: 0o644}), nil)
	d.call(t, "operator", proto.OpStore,
		proto.Marshal(proto.StoreArgs{Ref: pathRef("/f")}), []byte("before"))
	d.call(t, "operator", proto.OpCreate,
		proto.Marshal(proto.NameArgs{Dir: pathRef("/"), Name: "r", Mode: 0o644}), nil)
	d.call(t, "operator", proto.OpStore,
		proto.Marshal(proto.StoreArgs{Ref: pathRef("/r")}), []byte("stable"))

	// The append succeeds, the fsync fails: no ack.
	fsys.arm(true)
	resp := d.srv.Dispatcher().Dispatch(rpc.Ctx{User: "operator"},
		rpc.Request{Op: rpc.Op(proto.OpStore),
			Body: proto.Marshal(proto.StoreArgs{Ref: pathRef("/f")}), Bulk: []byte("after")})
	if resp.OK() || resp.Code != proto.CodeInternal {
		t.Fatalf("store with failing fsync: code %d, want internal error", resp.Code)
	}

	// The disk comes back, but the store has latched: it cannot tell which of
	// its buffered records reached the platter, so nothing after the failure
	// may be acknowledged either.
	fsys.arm(false)
	mutations := []struct {
		name string
		op   uint16
		body []byte
		bulk []byte
	}{
		{"store", proto.OpStore, proto.Marshal(proto.StoreArgs{Ref: pathRef("/f")}), []byte("later")},
		{"create", proto.OpCreate, proto.Marshal(proto.NameArgs{Dir: pathRef("/"), Name: "g", Mode: 0o644}), nil},
	}
	for _, m := range mutations {
		resp := d.srv.Dispatcher().Dispatch(rpc.Ctx{User: "operator"},
			rpc.Request{Op: rpc.Op(m.op), Body: m.body, Bulk: m.bulk})
		if resp.OK() || resp.Code != proto.CodeInternal {
			t.Fatalf("%s after latched fsync failure: code %d, want internal error", m.name, resp.Code)
		}
	}
	if err := d.srv.InstallLoc([]proto.LocEntry{{Prefix: "/x", Volume: 2, Custodian: "server0"}}, nil); err == nil {
		t.Fatal("InstallLoc after latched fsync failure succeeded")
	}

	// Read-only service continues: a file no failed write touched still
	// serves its acked contents. (Files the refused writes did touch may show
	// the in-memory effect — the server is read-only until restarted, and a
	// restart replays only what stable storage holds.)
	got := d.call(t, "operator", proto.OpFetch,
		proto.Marshal(proto.FetchArgs{Ref: pathRef("/r")}), nil)
	if string(got) != "stable" {
		t.Fatalf("read after latch = %q, want the acked %q", got, "stable")
	}
}
