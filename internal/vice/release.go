package vice

// The server half of the read-only replication plane (§3.2): handleVolClone
// registers each release with the replica.Controller and pushes the clone
// image through pushRelease; after a crash, ResumeReleases re-derives the
// release set from the recovered location database and finishes any install
// the crash interrupted. The receiving side (handleVolInstall) is
// idempotent for read-only volumes, so resuming never double-installs.

import (
	"fmt"

	"itcfs/internal/proto"
	"itcfs/internal/replica"
	"itcfs/internal/rpc"
	"itcfs/internal/sim"
	"itcfs/internal/trace"
	"itcfs/internal/volume"
)

// Releases snapshots the release controller's state (for the debug
// endpoints and tests).
func (s *Server) Releases() []replica.Release {
	return s.release.Releases()
}

// pushRelease returns the install function Propagate drives: it ships vol's
// serialized image to one replica server and returns nil once that server
// acknowledged (its attachVolume journals the image durably when a store is
// configured, so an acknowledged install survives the replica's own crash).
func (s *Server) pushRelease(p *sim.Proc, vol *volume.Volume) func(server string) error {
	image := vol.Serialize()
	body := proto.Marshal(proto.VolInstallArgs{Volume: vol.ID(), Name: vol.Name(), ReadOnly: true})
	return func(server string) error {
		s.mu.Lock()
		peer, ok := s.peers[server]
		s.mu.Unlock()
		if !ok {
			return fmt.Errorf("%w: unknown replica server %s", proto.ErrBadRequest, server)
		}
		resp, err := peer.Call(p, rpc.Request{
			Op:   rpc.Op(proto.OpVolInstall),
			Body: body,
			Bulk: image,
		})
		if err != nil {
			return err
		}
		if !resp.OK() {
			return proto.CodeToErr(resp.Code, string(resp.Body))
		}
		return nil
	}
}

// ResumeReleases rebuilds the release controller from the location database
// and re-propagates every release this server custodians. Call it after
// RecoverStore: a crash between a release's installs leaves the location
// entry (journalled before the clone's reply) naming replicas that may
// never have received the image. Because installs are idempotent, the
// simplest correct resume is to push every release to its whole replica
// set again — replicas that already hold the volume acknowledge without
// work. Returns the volumes resumed and the first push error (remaining
// releases are still attempted).
func (s *Server) ResumeReleases(p *sim.Proc) (resumed []uint32, err error) {
	for _, le := range s.cfg.Loc.Entries() {
		if le.Custodian != s.cfg.Name || len(le.Replicas) == 0 {
			continue
		}
		s.mu.Lock()
		vol, ok := s.vols[le.Volume]
		s.mu.Unlock()
		if !ok || !vol.ReadOnly() {
			continue
		}
		s.release.Begin(le.Volume, vol.Name(), le.Prefix, le.Replicas)
		if perr := s.release.Propagate(le.Volume, s.pushRelease(p, vol)); perr != nil {
			if err == nil {
				err = perr
			}
			continue
		}
		resumed = append(resumed, le.Volume)
	}
	if fl := s.cfg.Flight; fl != nil && len(resumed) > 0 {
		fl.Log(trace.EventReplicaRelease, s.cfg.Name,
			fmt.Sprintf("resumed %d releases after recovery", len(resumed)))
	}
	return resumed, err
}
