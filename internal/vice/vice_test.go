package vice

import (
	"errors"
	"fmt"
	"testing"

	"itcfs/internal/prot"
	"itcfs/internal/proto"
	"itcfs/internal/replica"
	"itcfs/internal/rpc"
	"itcfs/internal/secure"
	"itcfs/internal/sim"
	"itcfs/internal/volume"
)

// directCaller wires servers to each other in-process: Call dispatches
// straight into the peer's handler set, as an authenticated peer server.
type directCaller struct{ srv *Server }

func (c directCaller) Call(p *sim.Proc, req rpc.Request) (rpc.Response, error) {
	return c.srv.Dispatcher().Dispatch(rpc.Ctx{User: ServerUser, Proc: p}, req), nil
}

// cell is a small test cell: servers with replicated databases, a root
// volume on servers[0], all peers wired. Every server shares one
// content-addressed block index, as a production cell measuring dedup
// would, so the whole suite exercises interning.
type cell struct {
	servers []*Server
	blocks  *replica.Index
	nextVol uint32
}

func newCell(t testing.TB, mode Mode, n int) *cell {
	t.Helper()
	c := &cell{nextVol: 1, blocks: replica.NewIndex(nil)}
	alloc := func() uint32 { c.nextVol++; return c.nextVol }
	var clock int64
	clk := func() int64 { clock++; return clock }

	db := prot.NewDB()
	for _, m := range []prot.Mutation{
		{Kind: prot.MutAddUser, Name: "satya", Key: secure.DeriveKey("satya", "pw")},
		{Kind: prot.MutAddUser, Name: "howard", Key: secure.DeriveKey("howard", "pw")},
		{Kind: prot.MutAddUser, Name: "mallory", Key: secure.DeriveKey("mallory", "pw")},
		{Kind: prot.MutAddUser, Name: "operator", Key: secure.DeriveKey("operator", "pw")},
		{Kind: prot.MutAddGroup, Name: AdminGroup, Owner: "operator"},
		{Kind: prot.MutAddMember, Name: AdminGroup, Member: "operator"},
	} {
		if err := db.Apply(m); err != nil {
			t.Fatal(err)
		}
	}

	for i := 0; i < n; i++ {
		// Each server holds its own replica of the protection database.
		dbCopy := prot.NewDB()
		if err := dbCopy.LoadSnapshot(db.Snapshot()); err != nil {
			t.Fatal(err)
		}
		s := New(Config{
			Name:          fmt.Sprintf("server%d", i),
			Mode:          mode,
			DB:            dbCopy,
			Loc:           NewLocDB(),
			Clock:         clk,
			ProtAuthority: i == 0,
			AllocVolID:    alloc,
			Blocks:        c.blocks,
		})
		c.servers = append(c.servers, s)
	}
	for i, s := range c.servers {
		for j, other := range c.servers {
			if i != j {
				s.AddPeer(other.Name(), directCaller{other})
			}
		}
	}

	// Root volume on server0, mounted at "/".
	rootACL := prot.NewACL()
	rootACL.Grant(prot.AnyUser, prot.RightLookup|prot.RightRead)
	rootACL.Grant(AdminGroup, prot.RightsAll)
	root := volume.New(1, "root", rootACL, 0, "operator", clk)
	c.servers[0].AddVolume(root)
	le := proto.LocEntry{Prefix: "/", Volume: 1, Custodian: c.servers[0].Name()}
	for _, s := range c.servers {
		s.Loc().Install([]proto.LocEntry{le}, nil)
	}
	return c
}

func (c *cell) call(user string, srv int, op uint16, body, bulk []byte) rpc.Response {
	return c.servers[srv].Dispatcher().Dispatch(
		rpc.Ctx{User: user},
		rpc.Request{Op: rpc.Op(op), Body: body, Bulk: bulk},
	)
}

// mustOK fails the test unless the response succeeded.
func mustOK(t testing.TB, resp rpc.Response) rpc.Response {
	t.Helper()
	if !resp.OK() {
		t.Fatalf("call failed: code %d: %s", resp.Code, resp.Body)
	}
	return resp
}

func wantCode(t *testing.T, resp rpc.Response, code uint16) {
	t.Helper()
	if resp.Code != code {
		t.Fatalf("code = %d (%s), want %d", resp.Code, resp.Body, code)
	}
}

// mkdirAll creates every ancestor of path in the shared space as operator.
func (c *cell) mkdirAll(t testing.TB, path string) {
	t.Helper()
	parts := []string{}
	for _, p := range splitPath(path) {
		parts = append(parts, p)
		dir := "/" + joinPath(parts[:len(parts)-1])
		resp := c.call("operator", 0, proto.OpMakeDir,
			proto.Marshal(proto.NameArgs{Dir: pathRef(dir), Name: p, Mode: 0o755}), nil)
		if !resp.OK() && resp.Code != proto.CodeExist {
			t.Fatalf("MakeDir %s/%s: code %d: %s", dir, p, resp.Code, resp.Body)
		}
	}
}

func splitPath(p string) []string {
	var out []string
	cur := ""
	for i := 1; i <= len(p); i++ {
		if i == len(p) || p[i] == '/' {
			if cur != "" {
				out = append(out, cur)
			}
			cur = ""
		} else {
			cur += string(p[i])
		}
	}
	return out
}

func joinPath(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += "/"
		}
		out += p
	}
	return out
}

// mkVolume creates a user volume mounted at path via the admin op,
// creating missing ancestor directories first.
func (c *cell) mkVolume(t testing.TB, name, path, owner string, quota int64) uint32 {
	t.Helper()
	c.mkdirAll(t, dirOf(path))
	resp := c.call("operator", 0, proto.OpVolCreate,
		proto.Marshal(proto.VolCreateArgs{Name: name, Path: path, Quota: quota, Owner: owner}), nil)
	if !resp.OK() {
		t.Fatalf("VolCreate: code %d: %s", resp.Code, resp.Body)
	}
	vs, err := proto.Unmarshal(resp.Body, proto.DecodeVolStatusReply)
	if err != nil {
		t.Fatal(err)
	}
	return vs.Volume
}

func pathRef(p string) proto.Ref { return proto.Ref{Path: p} }

func (c *cell) store(t testing.TB, user, path string, data []byte) proto.Status {
	t.Helper()
	// Create if missing, then store.
	resp := c.call(user, 0, proto.OpCreate,
		proto.Marshal(proto.NameArgs{Dir: pathRef(dirOf(path)), Name: baseOf(path), Mode: 0o644}), nil)
	if !resp.OK() && resp.Code != proto.CodeExist {
		t.Fatalf("Create %s: code %d: %s", path, resp.Code, resp.Body)
	}
	resp = mustOK(t, c.call(user, 0, proto.OpStore,
		proto.Marshal(proto.StoreArgs{Ref: pathRef(path)}), data))
	st, err := proto.Unmarshal(resp.Body, proto.DecodeStatus)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func (c *cell) fetch(t *testing.T, user, path string) ([]byte, proto.Status) {
	t.Helper()
	resp := mustOK(t, c.call(user, 0, proto.OpFetch,
		proto.Marshal(proto.FetchArgs{Ref: pathRef(path)}), nil))
	st, err := proto.Unmarshal(resp.Body, proto.DecodeStatus)
	if err != nil {
		t.Fatal(err)
	}
	return resp.Bulk, st
}

func dirOf(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			if i == 0 {
				return "/"
			}
			return p[:i]
		}
	}
	return "/"
}

func baseOf(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[i+1:]
		}
	}
	return p
}

func TestStoreAndFetchByPath(t *testing.T) {
	c := newCell(t, Prototype, 1)
	c.mkVolume(t, "user.satya", "/usr/satya", "satya", 0)
	want := []byte("the ITC distributed file system")
	st := c.store(t, "satya", "/usr/satya/paper.mss", want)
	if st.Size != int64(len(want)) {
		t.Fatalf("status = %+v", st)
	}
	got, st2 := c.fetch(t, "satya", "/usr/satya/paper.mss")
	if string(got) != string(want) {
		t.Fatalf("fetched %q", got)
	}
	if st2.Version != st.Version {
		t.Fatalf("version changed on fetch")
	}
}

func TestMkVolumeMountsInParent(t *testing.T) {
	c := newCell(t, Prototype, 1)
	vid := c.mkVolume(t, "user.satya", "/usr/satya", "satya", 0)
	if vid == 1 {
		t.Fatal("volume id not allocated")
	}
	// The mount point appears as a directory entry of /usr whose FID lives
	// in the new volume.
	data, _ := c.fetch(t, "satya", "/usr")
	entries, err := proto.DecodeDirEntries(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name != "satya" || entries[0].FID.Volume != vid {
		t.Fatalf("usr entries = %+v, want satya in volume %d", entries, vid)
	}
	if entries[0].Type != proto.TypeDir {
		t.Fatal("mount point not a directory entry")
	}
}

func TestFetchMissingFile(t *testing.T) {
	c := newCell(t, Prototype, 1)
	resp := c.call("satya", 0, proto.OpFetch, proto.Marshal(proto.FetchArgs{Ref: pathRef("/nope")}), nil)
	wantCode(t, resp, proto.CodeNoEnt)
}

func TestACLEnforcement(t *testing.T) {
	c := newCell(t, Prototype, 1)
	c.mkVolume(t, "user.satya", "/usr/satya", "satya", 0)
	c.store(t, "satya", "/usr/satya/private", []byte("secret"))

	// Default volume ACL gives AnyUser lookup+read, owner everything.
	if _, st := c.fetch(t, "mallory", "/usr/satya/private"); st.Size == 0 {
		t.Fatal("fetch by other user failed unexpectedly")
	}
	// mallory cannot store.
	resp := c.call("mallory", 0, proto.OpStore,
		proto.Marshal(proto.StoreArgs{Ref: pathRef("/usr/satya/private")}), []byte("tamper"))
	wantCode(t, resp, proto.CodeAccess)

	// satya tightens the ACL: remove AnyUser read.
	acl := prot.NewACL()
	acl.Grant("satya", prot.RightsAll)
	resp = mustOK(t, c.call("satya", 0, proto.OpSetACL,
		proto.Marshal(proto.ACLArgs{Dir: pathRef("/usr/satya"), ACL: proto.ACLEncode(acl)}), nil))
	resp = c.call("mallory", 0, proto.OpFetch,
		proto.Marshal(proto.FetchArgs{Ref: pathRef("/usr/satya/private")}), nil)
	wantCode(t, resp, proto.CodeAccess)
}

func TestNegativeRightsBlockDespiteGroup(t *testing.T) {
	c := newCell(t, Prototype, 1)
	c.mkVolume(t, "proj", "/proj", "satya", 0)
	db := c.servers[0].DB()
	if err := db.Apply(prot.Mutation{Kind: prot.MutAddGroup, Name: "team", Owner: "satya"}); err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"satya", "howard", "mallory"} {
		if err := db.Apply(prot.Mutation{Kind: prot.MutAddMember, Name: "team", Member: u}); err != nil {
			t.Fatal(err)
		}
	}
	acl := prot.NewACL()
	acl.Grant("team", prot.RightsAll)
	acl.Deny("mallory", prot.RightWrite|prot.RightInsert|prot.RightDelete)
	mustOK(t, c.call("satya", 0, proto.OpSetACL,
		proto.Marshal(proto.ACLArgs{Dir: pathRef("/proj"), ACL: proto.ACLEncode(acl)}), nil))

	c.store(t, "howard", "/proj/shared", []byte("team data"))
	// mallory can still read (team grant), but not write (negative right).
	if got, _ := c.fetch(t, "mallory", "/proj/shared"); string(got) != "team data" {
		t.Fatalf("read failed: %q", got)
	}
	resp := c.call("mallory", 0, proto.OpStore,
		proto.Marshal(proto.StoreArgs{Ref: pathRef("/proj/shared")}), []byte("evil"))
	wantCode(t, resp, proto.CodeAccess)
}

func TestTestValidReportsStaleness(t *testing.T) {
	c := newCell(t, Prototype, 1)
	c.mkVolume(t, "u", "/u", "satya", 0)
	st := c.store(t, "satya", "/u/f", []byte("v1"))

	resp := mustOK(t, c.call("satya", 0, proto.OpTestValid,
		proto.Marshal(proto.TestValidArgs{Ref: pathRef("/u/f"), Version: st.Version}), nil))
	tv, _ := proto.Unmarshal(resp.Body, proto.DecodeTestValidReply)
	if !tv.Valid {
		t.Fatal("fresh copy reported invalid")
	}
	c.store(t, "satya", "/u/f", []byte("v2"))
	resp = mustOK(t, c.call("satya", 0, proto.OpTestValid,
		proto.Marshal(proto.TestValidArgs{Ref: pathRef("/u/f"), Version: st.Version}), nil))
	tv, _ = proto.Unmarshal(resp.Body, proto.DecodeTestValidReply)
	if tv.Valid {
		t.Fatal("stale copy reported valid")
	}
	if tv.Version <= st.Version {
		t.Fatal("server did not report newer version")
	}
}

func TestSymlinkWalkOnServer(t *testing.T) {
	c := newCell(t, Prototype, 1)
	c.mkVolume(t, "sys", "/sys", "operator", 0)
	c.store(t, "operator", "/sys/real", []byte("target data"))
	mustOK(t, c.call("operator", 0, proto.OpSymlink,
		proto.Marshal(proto.SymlinkArgs{Dir: pathRef("/sys"), Name: "alias", Target: "/sys/real"}), nil))
	got, _ := c.fetch(t, "satya", "/sys/alias")
	if string(got) != "target data" {
		t.Fatalf("through-symlink fetch = %q", got)
	}
	// Relative symlink too.
	mustOK(t, c.call("operator", 0, proto.OpSymlink,
		proto.Marshal(proto.SymlinkArgs{Dir: pathRef("/sys"), Name: "rel", Target: "real"}), nil))
	got, _ = c.fetch(t, "satya", "/sys/rel")
	if string(got) != "target data" {
		t.Fatalf("relative symlink fetch = %q", got)
	}
}

func TestSymlinkLoopDetected(t *testing.T) {
	c := newCell(t, Prototype, 1)
	c.mkVolume(t, "sys", "/sys", "operator", 0)
	mustOK(t, c.call("operator", 0, proto.OpSymlink,
		proto.Marshal(proto.SymlinkArgs{Dir: pathRef("/sys"), Name: "a", Target: "/sys/b"}), nil))
	mustOK(t, c.call("operator", 0, proto.OpSymlink,
		proto.Marshal(proto.SymlinkArgs{Dir: pathRef("/sys"), Name: "b", Target: "/sys/a"}), nil))
	resp := c.call("satya", 0, proto.OpFetch, proto.Marshal(proto.FetchArgs{Ref: pathRef("/sys/a")}), nil)
	wantCode(t, resp, proto.CodeLoop)
}

func TestWrongServerHint(t *testing.T) {
	c := newCell(t, Prototype, 2)
	// Volume /usr/satya lives on server0; ask server1.
	c.mkVolume(t, "u", "/u", "satya", 0)
	resp := c.call("satya", 1, proto.OpFetch, proto.Marshal(proto.FetchArgs{Ref: pathRef("/u")}), nil)
	wantCode(t, resp, proto.CodeWrongServer)
	if string(resp.Body) != "server0" {
		t.Fatalf("custodian hint = %q, want server0", resp.Body)
	}
}

func TestQuotaEnforcedThroughStore(t *testing.T) {
	c := newCell(t, Prototype, 1)
	c.mkVolume(t, "u", "/u", "satya", 100)
	c.store(t, "satya", "/u/f", make([]byte, 90))
	resp := c.call("satya", 0, proto.OpCreate,
		proto.Marshal(proto.NameArgs{Dir: pathRef("/u"), Name: "g", Mode: 0o644}), nil)
	mustOK(t, resp)
	resp = c.call("satya", 0, proto.OpStore,
		proto.Marshal(proto.StoreArgs{Ref: pathRef("/u/g")}), make([]byte, 20))
	wantCode(t, resp, proto.CodeQuota)
}

func TestPerFileModeBitsRevised(t *testing.T) {
	c := newCell(t, Revised, 1)
	c.mkVolume(t, "u", "/u", "satya", 0)
	c.store(t, "satya", "/u/f", []byte("locked down"))
	// chmod 0444: no write bits.
	mustOK(t, c.call("satya", 0, proto.OpSetStatus,
		proto.Marshal(proto.SetStatusArgs{Ref: pathRef("/u/f"), SetMode: true, Mode: 0o444}), nil))
	resp := c.call("satya", 0, proto.OpStore,
		proto.Marshal(proto.StoreArgs{Ref: pathRef("/u/f")}), []byte("overwrite"))
	wantCode(t, resp, proto.CodeAccess)
	// In prototype mode the same sequence would succeed (per-dir ACL only).
	c2 := newCell(t, Prototype, 1)
	c2.mkVolume(t, "u", "/u", "satya", 0)
	c2.store(t, "satya", "/u/f", []byte("x"))
	mustOK(t, c2.call("satya", 0, proto.OpSetStatus,
		proto.Marshal(proto.SetStatusArgs{Ref: pathRef("/u/f"), SetMode: true, Mode: 0o444}), nil))
	mustOK(t, c2.call("satya", 0, proto.OpStore,
		proto.Marshal(proto.StoreArgs{Ref: pathRef("/u/f")}), []byte("y")))
}

func TestAdvisoryLocks(t *testing.T) {
	c := newCell(t, Prototype, 1)
	c.mkVolume(t, "u", "/u", "satya", 0)
	// Grant howard lock rights via AnyUser.
	acl := prot.NewACL()
	acl.Grant("satya", prot.RightsAll)
	acl.Grant(prot.AnyUser, prot.RightLookup|prot.RightRead|prot.RightLock)
	mustOK(t, c.call("satya", 0, proto.OpSetACL,
		proto.Marshal(proto.ACLArgs{Dir: pathRef("/u"), ACL: proto.ACLEncode(acl)}), nil))
	c.store(t, "satya", "/u/f", []byte("x"))

	lock := func(user string, excl bool) rpc.Response {
		return c.call(user, 0, proto.OpSetLock,
			proto.Marshal(proto.LockArgs{Ref: pathRef("/u/f"), Exclusive: excl}), nil)
	}
	unlock := func(user string) rpc.Response {
		return c.call(user, 0, proto.OpReleaseLock,
			proto.Marshal(proto.LockArgs{Ref: pathRef("/u/f")}), nil)
	}
	mustOK(t, lock("satya", false))
	mustOK(t, lock("howard", false)) // multi-reader
	wantCode(t, lock("howard", true), proto.CodeLocked)
	mustOK(t, unlock("satya"))
	mustOK(t, lock("howard", true))                     // sole reader may upgrade
	wantCode(t, lock("satya", false), proto.CodeLocked) // writer excludes readers
	mustOK(t, unlock("howard"))
	mustOK(t, lock("satya", false))
	mustOK(t, unlock("satya"))
}

func TestRenameDirectorySubtreeByPath(t *testing.T) {
	c := newCell(t, Prototype, 1)
	c.mkVolume(t, "u", "/u", "satya", 0)
	mustOK(t, c.call("satya", 0, proto.OpMakeDir,
		proto.Marshal(proto.NameArgs{Dir: pathRef("/u"), Name: "src", Mode: 0o755}), nil))
	c.store(t, "satya", "/u/src/main.c", []byte("int main;"))
	mustOK(t, c.call("satya", 0, proto.OpRename,
		proto.Marshal(proto.RenameArgs{
			FromDir: pathRef("/u"), FromName: "src",
			ToDir: pathRef("/u"), ToName: "源",
		}), nil))
	got, _ := c.fetch(t, "satya", "/u/源/main.c")
	if string(got) != "int main;" {
		t.Fatalf("after rename: %q", got)
	}
}

func TestVolCloneServesOldVersionAfterUpdate(t *testing.T) {
	c := newCell(t, Prototype, 1)
	vid := c.mkVolume(t, "sys.bin", "/bin", "operator", 0)
	c.store(t, "operator", "/bin/cc", []byte("cc-v1"))

	resp := mustOK(t, c.call("operator", 0, proto.OpVolClone,
		proto.Marshal(proto.VolCloneArgs{Volume: vid, Path: "/bin-v1"}), nil))
	vs, _ := proto.Unmarshal(resp.Body, proto.DecodeVolStatusReply)
	if !vs.ReadOnly {
		t.Fatal("clone not read-only")
	}
	// Update the RW volume; the clone stays frozen.
	c.store(t, "operator", "/bin/cc", []byte("cc-v2"))
	got, _ := c.fetch(t, "satya", "/bin-v1/cc")
	if string(got) != "cc-v1" {
		t.Fatalf("clone serves %q, want cc-v1", got)
	}
	got, _ = c.fetch(t, "satya", "/bin/cc")
	if string(got) != "cc-v2" {
		t.Fatalf("rw serves %q, want cc-v2", got)
	}
	// Stores into the clone are refused.
	resp = c.call("operator", 0, proto.OpStore,
		proto.Marshal(proto.StoreArgs{Ref: pathRef("/bin-v1/cc")}), []byte("z"))
	wantCode(t, resp, proto.CodeReadOnly)
}

func TestVolCloneReplicatesToPeers(t *testing.T) {
	c := newCell(t, Prototype, 2)
	vid := c.mkVolume(t, "sys.bin", "/bin", "operator", 0)
	c.store(t, "operator", "/bin/ls", []byte("ls-bin"))
	resp := mustOK(t, c.call("operator", 0, proto.OpVolClone,
		proto.Marshal(proto.VolCloneArgs{Volume: vid, Path: "/bin-ro", Replicas: []string{"server1"}}), nil))
	vs, _ := proto.Unmarshal(resp.Body, proto.DecodeVolStatusReply)
	// server1 now stores a copy of the clone and can serve it directly.
	if _, ok := c.servers[1].Volume(vs.Volume); !ok {
		t.Fatal("replica not installed on server1")
	}
	resp = mustOK(t, c.call("satya", 1, proto.OpFetch,
		proto.Marshal(proto.FetchArgs{Ref: proto.Ref{FID: proto.FID{Volume: vs.Volume, Vnode: volume.RootVnode, Uniq: 1}}}), nil))
	entries, err := proto.DecodeDirEntries(resp.Bulk)
	if err != nil || len(entries) != 1 || entries[0].Name != "ls" {
		t.Fatalf("replica listing: %+v %v", entries, err)
	}
	// The location database on both servers lists the replica.
	le, ok := c.servers[1].Loc().Resolve("/bin-ro")
	if !ok || len(le.Replicas) != 1 || le.Replicas[0] != "server1" {
		t.Fatalf("loc entry = %+v", le)
	}
}

func TestVolMoveChangesCustodianEverywhere(t *testing.T) {
	c := newCell(t, Prototype, 2)
	vid := c.mkVolume(t, "u", "/u", "satya", 0)
	c.store(t, "satya", "/u/f", []byte("data"))
	mustOK(t, c.call("operator", 0, proto.OpVolMove,
		proto.Marshal(proto.VolMoveArgs{Volume: vid, Target: "server1"}), nil))
	// Volume is gone from server0 and present on server1.
	if _, ok := c.servers[0].Volume(vid); ok {
		t.Fatal("volume still on source")
	}
	if _, ok := c.servers[1].Volume(vid); !ok {
		t.Fatal("volume not on target")
	}
	// Both replicas of the location database point at server1.
	for i, s := range c.servers {
		le, ok := s.Loc().Resolve("/u/f")
		if !ok || le.Custodian != "server1" {
			t.Fatalf("server%d loc = %+v", i, le)
		}
	}
	// server0 redirects; server1 serves.
	resp := c.call("satya", 0, proto.OpFetch, proto.Marshal(proto.FetchArgs{Ref: pathRef("/u/f")}), nil)
	wantCode(t, resp, proto.CodeWrongServer)
	resp = mustOK(t, c.call("satya", 1, proto.OpFetch, proto.Marshal(proto.FetchArgs{Ref: pathRef("/u/f")}), nil))
	if string(resp.Bulk) != "data" {
		t.Fatalf("after move: %q", resp.Bulk)
	}
}

func TestVolMoveNonAdminRefused(t *testing.T) {
	c := newCell(t, Prototype, 2)
	vid := c.mkVolume(t, "u", "/u", "satya", 0)
	resp := c.call("mallory", 0, proto.OpVolMove,
		proto.Marshal(proto.VolMoveArgs{Volume: vid, Target: "server1"}), nil)
	wantCode(t, resp, proto.CodeNotAllowed)
}

func TestProtMutateRequiresAuthority(t *testing.T) {
	c := newCell(t, Prototype, 2)
	m := prot.Mutation{Kind: prot.MutAddUser, Name: "newbie", Key: secure.DeriveKey("newbie", "pw")}
	// server1 is not the protection server.
	resp := c.call("operator", 1, proto.OpProtMutate, proto.Marshal(m), nil)
	wantCode(t, resp, proto.CodeNotAllowed)
	// server0 is.
	mustOK(t, c.call("operator", 0, proto.OpProtMutate, proto.Marshal(m), nil))
	if !c.servers[0].DB().HasUser("newbie") {
		t.Fatal("user not added")
	}
}

func TestServerToServerOpsRejectClients(t *testing.T) {
	c := newCell(t, Prototype, 1)
	resp := c.call("mallory", 0, proto.OpLocInstall,
		proto.Marshal(proto.LocInstallArgs{Entries: []proto.LocEntry{{Prefix: "/evil", Volume: 99, Custodian: "x"}}}), nil)
	wantCode(t, resp, proto.CodeNotAllowed)
	resp = c.call("mallory", 0, proto.OpVolInstall,
		proto.Marshal(proto.VolInstallArgs{Volume: 99}), nil)
	wantCode(t, resp, proto.CodeNotAllowed)
	resp = c.call("mallory", 0, proto.OpProtInstall,
		proto.Marshal(prot.Mutation{Kind: prot.MutAddUser, Name: "evil"}), nil)
	wantCode(t, resp, proto.CodeNotAllowed)
}

func TestFetchByFIDAndStaleFID(t *testing.T) {
	c := newCell(t, Revised, 1)
	c.mkVolume(t, "u", "/u", "satya", 0)
	st := c.store(t, "satya", "/u/f", []byte("by fid"))
	resp := mustOK(t, c.call("satya", 0, proto.OpFetch,
		proto.Marshal(proto.FetchArgs{Ref: proto.Ref{FID: st.FID}}), nil))
	if string(resp.Bulk) != "by fid" {
		t.Fatalf("fetch by FID: %q", resp.Bulk)
	}
	// Remove it; the FID goes stale.
	mustOK(t, c.call("satya", 0, proto.OpRemove,
		proto.Marshal(proto.NameArgs{Dir: pathRef("/u"), Name: "f"}), nil))
	resp = c.call("satya", 0, proto.OpFetch,
		proto.Marshal(proto.FetchArgs{Ref: proto.Ref{FID: st.FID}}), nil)
	wantCode(t, resp, proto.CodeStale)
}

// recordingBack captures callback breaks.
type recordingBack struct {
	user   string
	breaks []proto.FID
}

func (r *recordingBack) CallBack(_ *sim.Proc, req rpc.Request) (rpc.Response, error) {
	args, err := proto.Unmarshal(req.Body, proto.DecodeCallbackBreakArgs)
	if err != nil {
		return rpc.Response{Code: proto.CodeBadRequest}, nil
	}
	r.breaks = append(r.breaks, args.FID)
	return rpc.Response{}, nil
}

func (r *recordingBack) BackUser() string { return r.user }

func TestCallbackPromiseAndBreak(t *testing.T) {
	c := newCell(t, Revised, 1)
	c.mkVolume(t, "u", "/u", "satya", 0)
	// Writable by howard too.
	acl := prot.NewACL()
	acl.Grant("satya", prot.RightsAll)
	acl.Grant("howard", prot.RightsAll)
	mustOK(t, c.call("satya", 0, proto.OpSetACL,
		proto.Marshal(proto.ACLArgs{Dir: pathRef("/u"), ACL: proto.ACLEncode(acl)}), nil))
	st := c.store(t, "satya", "/u/f", []byte("v1"))

	reader := &recordingBack{user: "howard"}
	// howard fetches with a backchannel: the server records a promise.
	resp := c.servers[0].Dispatcher().Dispatch(
		rpc.Ctx{User: "howard", Back: reader},
		rpc.Request{Op: rpc.Op(proto.OpFetch), Body: proto.Marshal(proto.FetchArgs{Ref: pathRef("/u/f")})})
	mustOK(t, resp)
	if c.servers[0].Callbacks().Outstanding() == 0 {
		t.Fatal("no promise recorded")
	}
	// satya stores a new version; howard's callback must break.
	writer := &recordingBack{user: "satya"}
	resp = c.servers[0].Dispatcher().Dispatch(
		rpc.Ctx{User: "satya", Back: writer},
		rpc.Request{Op: rpc.Op(proto.OpStore), Body: proto.Marshal(proto.StoreArgs{Ref: pathRef("/u/f")}), Bulk: []byte("v2")})
	mustOK(t, resp)
	if len(reader.breaks) != 1 || reader.breaks[0] != st.FID {
		t.Fatalf("reader breaks = %v, want [%v]", reader.breaks, st.FID)
	}
	if len(writer.breaks) != 0 {
		t.Fatal("writer's own callback broken")
	}
	promised, breaks := c.servers[0].Callbacks().Stats()
	if promised == 0 || breaks != 1 {
		t.Fatalf("stats = %d promised, %d breaks", promised, breaks)
	}
}

func TestCallbacksNotUsedInPrototype(t *testing.T) {
	c := newCell(t, Prototype, 1)
	c.mkVolume(t, "u", "/u", "satya", 0)
	reader := &recordingBack{user: "satya"}
	resp := c.servers[0].Dispatcher().Dispatch(
		rpc.Ctx{User: "satya", Back: reader},
		rpc.Request{Op: rpc.Op(proto.OpFetch), Body: proto.Marshal(proto.FetchArgs{Ref: pathRef("/u")})})
	mustOK(t, resp)
	if c.servers[0].Callbacks().Outstanding() != 0 {
		t.Fatal("prototype recorded callback promises")
	}
}

func TestActionConsistencyOldOrNewNeverMixed(t *testing.T) {
	// "A workstation which fetches a file at the same time that another
	// workstation is storing it will either receive the old version or the
	// new one, but never a partially modified version" (§3.6). With
	// whole-slice replacement this holds structurally; verify fetch returns
	// exactly one of the two versions byte-for-byte.
	c := newCell(t, Prototype, 1)
	c.mkVolume(t, "u", "/u", "satya", 0)
	old := []byte("old old old")
	new_ := []byte("NEW NEW NEW NEW")
	c.store(t, "satya", "/u/f", old)
	got1, _ := c.fetch(t, "satya", "/u/f")
	c.store(t, "satya", "/u/f", new_)
	got2, _ := c.fetch(t, "satya", "/u/f")
	if string(got1) != string(old) || string(got2) != string(new_) {
		t.Fatalf("versions mixed: %q %q", got1, got2)
	}
	// The fetched copy of the old version is immune to the later store
	// (no aliasing of returned slices with live vnode data).
	if &got1[0] == &got2[0] {
		t.Fatal("fetch returned aliased buffers")
	}
}

func TestSalvageAllAfterCrash(t *testing.T) {
	c := newCell(t, Prototype, 1)
	vid := c.mkVolume(t, "u", "/u", "satya", 0)
	c.store(t, "satya", "/u/f", []byte("x"))
	v, _ := c.servers[0].Volume(vid)
	v.CorruptForTest()
	reports := c.servers[0].SalvageAll()
	if reports[vid].OrphansRemoved == 0 {
		t.Fatalf("salvage found nothing: %+v", reports[vid])
	}
	// Files still readable afterwards.
	got, _ := c.fetch(t, "satya", "/u/f")
	if string(got) != "x" {
		t.Fatalf("post-salvage read: %q", got)
	}
}

func TestLocDBLongestPrefix(t *testing.T) {
	l := NewLocDB()
	l.Install([]proto.LocEntry{
		{Prefix: "/", Volume: 1, Custodian: "s0"},
		{Prefix: "/usr", Volume: 2, Custodian: "s0"},
		{Prefix: "/usr/satya", Volume: 3, Custodian: "s1"},
	}, nil)
	cases := []struct {
		path string
		vol  uint32
	}{
		{"/", 1},
		{"/tmp/x", 1},
		{"/usr", 2},
		{"/usr/howard/f", 2},
		{"/usr/satya", 3},
		{"/usr/satya/deep/file", 3},
	}
	for _, tc := range cases {
		le, ok := l.Resolve(tc.path)
		if !ok || le.Volume != tc.vol {
			t.Errorf("Resolve(%s) = %+v, want vol %d", tc.path, le, tc.vol)
		}
	}
	if got := l.Entries(); len(got) != 3 {
		t.Fatalf("Entries = %d", len(got))
	}
	l.Install(nil, []string{"/usr/satya"})
	if le, _ := l.Resolve("/usr/satya/f"); le.Volume != 2 {
		t.Fatalf("after removal: %+v", le)
	}
}

func TestLockTableReleaseAll(t *testing.T) {
	lt := NewLockTable()
	fid := proto.FID{Volume: 1, Vnode: 2, Uniq: 3}
	if err := lt.Lock(fid, "u1", true); err != nil {
		t.Fatal(err)
	}
	lt.ReleaseAllFor("u1")
	if err := lt.Lock(fid, "u2", true); err != nil {
		t.Fatalf("lock after ReleaseAllFor: %v", err)
	}
}

func TestUnlockWithoutHold(t *testing.T) {
	lt := NewLockTable()
	fid := proto.FID{Volume: 1, Vnode: 2, Uniq: 3}
	if err := lt.Unlock(fid, "u"); !errors.Is(err, proto.ErrBadRequest) {
		t.Fatalf("err = %v", err)
	}
}
