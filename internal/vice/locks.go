package vice

import (
	"fmt"
	"sync"

	"itcfs/internal/proto"
)

// LockTable provides the single-writer/multi-reader advisory locks of §3.6.
// Locks are advisory: Vice guarantees fetch/store action consistency even
// without them, but cooperating applications can serialize through them.
// The prototype implemented this as a dedicated lock-server process with
// lock tables in its virtual memory; the revised single-process server
// keeps the table as shared global data, which is what this is.
type LockTable struct {
	mu    sync.Mutex
	locks map[proto.FID]*lockState // guarded by mu
}

type lockState struct {
	readers map[string]int // user -> hold count
	writer  string         // exclusive holder, or ""
}

// NewLockTable returns an empty table.
func NewLockTable() *LockTable {
	return &LockTable{locks: make(map[proto.FID]*lockState)}
}

// Lock acquires a shared or exclusive advisory lock on fid for user. It
// does not block: a conflicting request fails with ErrLocked, leaving retry
// policy to the application, as in the prototype.
func (t *LockTable) Lock(fid proto.FID, user string, exclusive bool) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.locks[fid]
	if st == nil {
		st = &lockState{readers: make(map[string]int)}
		t.locks[fid] = st
	}
	if exclusive {
		if st.writer != "" && st.writer != user {
			return fmt.Errorf("%w: write-locked by %s", proto.ErrLocked, st.writer)
		}
		if len(st.readers) > 1 || (len(st.readers) == 1 && st.readers[user] == 0) {
			return fmt.Errorf("%w: read-locked", proto.ErrLocked)
		}
		st.writer = user
		return nil
	}
	if st.writer != "" && st.writer != user {
		return fmt.Errorf("%w: write-locked by %s", proto.ErrLocked, st.writer)
	}
	st.readers[user]++
	return nil
}

// Unlock releases user's locks on fid (both shared and exclusive holds).
func (t *LockTable) Unlock(fid proto.FID, user string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.locks[fid]
	if st == nil {
		return fmt.Errorf("%w: not locked", proto.ErrBadRequest)
	}
	held := false
	if st.writer == user {
		st.writer = ""
		held = true
	}
	if st.readers[user] > 0 {
		delete(st.readers, user)
		held = true
	}
	if !held {
		return fmt.Errorf("%w: %s holds no lock", proto.ErrBadRequest, user)
	}
	if st.writer == "" && len(st.readers) == 0 {
		delete(t.locks, fid)
	}
	return nil
}

// Reset drops every lock: the server process died and its in-memory lock
// table died with it (the prototype kept locks in the lock server's virtual
// memory — a crash loses them all).
func (t *LockTable) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.locks = make(map[proto.FID]*lockState)
}

// ReleaseAllFor drops every lock held by user (connection teardown).
func (t *LockTable) ReleaseAllFor(user string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for fid, st := range t.locks {
		if st.writer == user {
			st.writer = ""
		}
		delete(st.readers, user)
		if st.writer == "" && len(st.readers) == 0 {
			delete(t.locks, fid)
		}
	}
}

// Held reports the lock state of fid: number of readers and the writer.
func (t *LockTable) Held(fid proto.FID) (readers int, writer string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.locks[fid]
	if st == nil {
		return 0, ""
	}
	return len(st.readers), st.writer
}
