package vice

import (
	"sort"
	"sync"

	"itcfs/internal/proto"
	"itcfs/internal/rpc"
	"itcfs/internal/sim"
	"itcfs/internal/trace"
)

// CallbackTable records callback promises: when a workstation fetches a
// file in revised mode, the server promises to notify it before the file
// changes. This inverts the prototype's check-on-open validation — the 65%
// of server calls that were cache-validity checks (§5.2) disappear, at the
// cost of server state and an invalidation message on each update (§3.2).
type CallbackTable struct {
	mu sync.Mutex
	// -> registration order
	// guarded by mu
	promises map[proto.FID]map[rpc.Backchannel]int64
	regSeq   int64           // guarded by mu
	breaks   int64           // guarded by mu
	promised int64           // guarded by mu
	metrics  *trace.Registry // guarded by mu
}

// NewCallbackTable returns an empty table.
func NewCallbackTable() *CallbackTable {
	return &CallbackTable{promises: make(map[proto.FID]map[rpc.Backchannel]int64)}
}

// Promise records that the connection holds a valid copy of fid. Promises
// remember their registration order so breaks fire deterministically (map
// iteration order must never leak into the event schedule).
func (t *CallbackTable) Promise(fid proto.FID, back rpc.Backchannel) {
	if back == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	set := t.promises[fid]
	if set == nil {
		set = make(map[rpc.Backchannel]int64)
		t.promises[fid] = set
	}
	if _, ok := set[back]; !ok {
		t.regSeq++
		set[back] = t.regSeq
		t.promised++
	}
}

// Reset wipes every promise without notification: the server crashed and
// its volatile callback state is gone. Clients discover this through TTL
// revalidation or reconnection; cumulative counters survive the restart.
func (t *CallbackTable) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.promises = make(map[proto.FID]map[rpc.Backchannel]int64)
}

// Drop forgets all promises for one connection (teardown) without breaking.
func (t *CallbackTable) Drop(back rpc.Backchannel) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for fid, set := range t.promises {
		delete(set, back)
		if len(set) == 0 {
			delete(t.promises, fid)
		}
	}
}

// take removes and returns the backchannels holding promises on fid,
// excluding skip (the connection performing the update — its own cache
// entry is being replaced by the store itself).
func (t *CallbackTable) take(fid proto.FID, skip rpc.Backchannel) []rpc.Backchannel {
	t.mu.Lock()
	defer t.mu.Unlock()
	set := t.promises[fid]
	if len(set) == 0 {
		return nil
	}
	type reg struct {
		back rpc.Backchannel
		seq  int64
	}
	var regs []reg
	for back, seq := range set {
		if back == skip {
			continue
		}
		regs = append(regs, reg{back, seq})
		delete(set, back)
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].seq < regs[j].seq })
	out := make([]rpc.Backchannel, 0, len(regs))
	for _, r := range regs {
		out = append(out, r.back)
	}
	if skip != nil {
		if _, ok := set[skip]; ok {
			// The updater keeps its promise: its cache copy is the new version.
			return out
		}
	}
	if len(set) == 0 {
		delete(t.promises, fid)
	}
	return out
}

// SetMetrics attaches a metrics registry recording break counts and the
// fan-out distribution of each break. Nil detaches.
func (t *CallbackTable) SetMetrics(r *trace.Registry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.metrics = r
}

// Break notifies every workstation holding a promise on fid, except the
// updater's own connection, that its copy is invalid. It must be called
// without server locks held: callback calls park the worker process.
func (t *CallbackTable) Break(p *sim.Proc, fid proto.FID, path string, skip rpc.Backchannel) {
	targets := t.take(fid, skip)
	t.mu.Lock()
	t.breaks += int64(len(targets))
	m := t.metrics
	t.mu.Unlock()
	if m != nil {
		// Fan-out: how many workstations one update invalidates — the
		// server-load term callbacks add per mutation (§3.2).
		m.Counter("vice.callback.breaks").Add(int64(len(targets)))
		m.Histogram("vice.callback.fanout").ObserveN(int64(len(targets)))
	}
	for _, back := range targets {
		args := proto.CallbackBreakArgs{FID: fid, Path: path}
		// A dead workstation just times out; the promise is already gone.
		_, _ = back.CallBack(p, rpc.Request{Op: rpc.Op(proto.OpCallbackBreak), Body: proto.Marshal(args)})
	}
}

// Stats reports cumulative promises granted and callbacks broken.
func (t *CallbackTable) Stats() (promised, breaks int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.promised, t.breaks
}

// Outstanding reports the number of live promises (server state size).
func (t *CallbackTable) Outstanding() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, set := range t.promises {
		n += len(set)
	}
	return n
}
