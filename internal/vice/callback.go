package vice

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"itcfs/internal/proto"
	"itcfs/internal/rpc"
	"itcfs/internal/sim"
	"itcfs/internal/trace"
)

// CallbackTable records callback promises: when a workstation fetches a
// file in revised mode, the server promises to notify it before the file
// changes. This inverts the prototype's check-on-open validation — the 65%
// of server calls that were cache-validity checks (§5.2) disappear, at the
// cost of server state and an invalidation message on each update (§3.2).
//
// Promises are sharded by volume so concurrent workers touching different
// volumes do not contend on one lock, and the break path coalesces all
// pending invalidations for one workstation into a single BulkBreak RPC:
// with a thousand clients a hot-file update costs one RPC per interested
// client, and overlapping updates share those RPCs instead of each paying
// full fan-out.
type CallbackTable struct {
	mu sync.Mutex
	// shards holds per-volume promise state; entries are created on first
	// promise and survive until Reset. Keyed by FID.Volume.
	// guarded by mu
	shards map[uint32]*cbShard
	// queues holds, per workstation connection, the breaks accepted but not
	// yet delivered. A queue exists exactly while its flusher process runs.
	// guarded by mu
	queues    map[rpc.Backchannel]*clientQueue
	breaks    int64           // guarded by mu
	breakRPCs int64           // guarded by mu
	unbatched bool            // guarded by mu
	window    time.Duration   // guarded by mu — flusher linger before each drain
	metrics   *trace.Registry // guarded by mu
	flight    *trace.Recorder // guarded by mu — break-storm events
	server    string          // guarded by mu — owning server, for event attribution
	// promisedBase carries cumulative promise counts across Reset, which
	// discards the shards (and their live counters) wholesale.
	promisedBase int64 // guarded by mu
}

// cbShard is one volume's slice of the promise table. Shards have their own
// locks; the table lock is only used to find a shard (and for the delivery
// queues), never wrapped around long work.
type cbShard struct {
	mu sync.Mutex
	// -> registration order
	// guarded by mu
	promises map[proto.FID]map[rpc.Backchannel]int64
	regSeq   int64 // guarded by mu
	promised int64 // guarded by mu
}

// breakItem is one pending invalidation plus the future its originating
// update waits on: an update's reply must not race ahead of its
// invalidations (§3.2 visibility), so Break resolves only after delivery.
type breakItem struct {
	args proto.CallbackBreakArgs
	done *sim.Future[struct{}]
}

// clientQueue accumulates breaks for one workstation while a BulkBreak RPC
// to it is in flight; the flusher drains it in deterministic arrival order.
type clientQueue struct {
	pending []breakItem
}

// BreakTarget names one file an update invalidates.
type BreakTarget struct {
	FID  proto.FID
	Path string
}

// DefaultBreakWindow is how long a flusher lingers before draining its
// queue: the coalescing window in which concurrent updates' breaks for the
// same workstation pile onto one BulkBreak RPC. Every update already pays a
// store's worth of latency before its breaks start, so a few milliseconds
// more buys an RPC-count collapse under load while staying far below
// human-visible delay. Deliveries still complete before the update replies,
// so widening the window (Config.BreakWindow) trades update latency for
// fewer RPCs — E14 sweeps that trade-off — without weakening visibility.
const DefaultBreakWindow = 10 * time.Millisecond

// NewCallbackTable returns an empty table.
func NewCallbackTable() *CallbackTable {
	return &CallbackTable{
		shards: make(map[uint32]*cbShard),
		queues: make(map[rpc.Backchannel]*clientQueue),
		window: DefaultBreakWindow,
	}
}

// shard returns the shard owning fid's volume, creating it on first use.
func (t *CallbackTable) shard(vol uint32) *cbShard {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.shards[vol]
	if s == nil {
		s = &cbShard{promises: make(map[proto.FID]map[rpc.Backchannel]int64)}
		t.shards[vol] = s
	}
	return s
}

// Promise records that the connection holds a valid copy of fid. Promises
// remember their registration order so breaks fire deterministically (map
// iteration order must never leak into the event schedule).
func (t *CallbackTable) Promise(fid proto.FID, back rpc.Backchannel) {
	if back == nil {
		return
	}
	s := t.shard(fid.Volume)
	s.mu.Lock()
	defer s.mu.Unlock()
	set := s.promises[fid]
	if set == nil {
		set = make(map[rpc.Backchannel]int64)
		s.promises[fid] = set
	}
	if _, ok := set[back]; !ok {
		s.regSeq++
		set[back] = s.regSeq
		s.promised++
	}
}

// Reset wipes every promise without notification: the server crashed and
// its volatile callback state is gone. Clients discover this through TTL
// revalidation or reconnection; cumulative counters survive the restart.
// In-flight delivery queues are left to their flushers, which drain against
// the dead transport and release any waiting updates.
func (t *CallbackTable) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.shards {
		t.promisedBase += s.promisedCount()
	}
	t.shards = make(map[uint32]*cbShard)
}

// Drop forgets all promises for one connection (teardown) without breaking.
func (t *CallbackTable) Drop(back rpc.Backchannel) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.shards {
		s.dropConn(back)
	}
}

// dropConn removes every promise held by back from the shard.
func (s *cbShard) dropConn(back rpc.Backchannel) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for fid, set := range s.promises {
		delete(set, back)
		if len(set) == 0 {
			delete(s.promises, fid)
		}
	}
}

// take removes and returns the backchannels holding promises on fid,
// excluding skip (the connection performing the update — its own cache
// entry is being replaced by the store itself).
func (t *CallbackTable) take(fid proto.FID, skip rpc.Backchannel) []rpc.Backchannel {
	s := t.shard(fid.Volume)
	s.mu.Lock()
	defer s.mu.Unlock()
	set := s.promises[fid]
	if len(set) == 0 {
		return nil
	}
	type reg struct {
		back rpc.Backchannel
		seq  int64
	}
	var regs []reg
	for back, seq := range set {
		if back == skip {
			continue
		}
		regs = append(regs, reg{back, seq})
		delete(set, back)
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].seq < regs[j].seq })
	out := make([]rpc.Backchannel, 0, len(regs))
	for _, r := range regs {
		out = append(out, r.back)
	}
	if skip != nil {
		if _, ok := set[skip]; ok {
			// The updater keeps its promise: its cache copy is the new version.
			return out
		}
	}
	if len(set) == 0 {
		delete(s.promises, fid)
	}
	return out
}

// SetMetrics attaches a metrics registry recording break counts and the
// fan-out distribution of each break. Nil detaches.
func (t *CallbackTable) SetMetrics(r *trace.Registry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.metrics = r
}

// stormFanout is the fan-out at which a single break counts as a storm and
// earns a flight-recorder event: one update invalidating this many
// workstations is the load pattern §3.2 warns callbacks add per mutation.
const stormFanout = 8

// SetFlight attaches a flight recorder (and the owning server's name, for
// attribution) that receives an event whenever one break fans out to
// stormFanout or more workstations. Nil detaches.
func (t *CallbackTable) SetFlight(fl *trace.Recorder, server string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.flight = fl
	t.server = server
}

// SetUnbatched forces the legacy one-RPC-per-promise break path (the
// pre-batching design, kept for ablation experiments).
func (t *CallbackTable) SetUnbatched(v bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.unbatched = v
}

// SetWindow sets the coalescing window (d <= 0 restores the default). The
// window bounds how long a broken promise waits for companions, and hence
// how much extra latency an update accepts in exchange for fewer RPCs.
func (t *CallbackTable) SetWindow(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if d <= 0 {
		d = DefaultBreakWindow
	}
	t.window = d
}

// Break notifies every workstation holding a promise on fid, except the
// updater's own connection, that its copy is invalid. It must be called
// without server locks held: callback calls park the worker process.
func (t *CallbackTable) Break(p *sim.Proc, fid proto.FID, path string, skip rpc.Backchannel) {
	t.BreakBatch(p, []BreakTarget{{FID: fid, Path: path}}, skip)
}

// BreakBatch breaks promises on several files from one update (a rename
// touches two directories; a remove touches the directory and the victim).
// All invalidations are delivered before BreakBatch returns, but deliveries
// to one workstation coalesce with any other breaks pending for it — its
// own or a concurrent update's — into a single BulkBreak RPC, and
// deliveries to distinct workstations proceed in parallel flusher
// processes. Must be called without server locks held.
func (t *CallbackTable) BreakBatch(p *sim.Proc, targets []BreakTarget, skip rpc.Backchannel) {
	type delivery struct {
		back rpc.Backchannel
		args proto.CallbackBreakArgs
	}
	var deliveries []delivery
	t.mu.Lock()
	m := t.metrics
	fl := t.flight
	server := t.server
	unbatched := t.unbatched
	t.mu.Unlock()
	for _, tg := range targets {
		backs := t.take(tg.FID, skip)
		if m != nil {
			// Fan-out: how many workstations one update invalidates — the
			// server-load term callbacks add per mutation (§3.2).
			m.Counter(trace.MetricViceCallbackBreaks).Add(int64(len(backs)))
			m.Histogram(trace.MetricViceCallbackFanout).ObserveN(int64(len(backs)))
		}
		if fl != nil && len(backs) >= stormFanout {
			fl.Log(trace.EventViceCallbackStorm, server,
				fmt.Sprintf("break of %s fans out to %d workstations", tg.Path, len(backs)))
		}
		for _, back := range backs {
			deliveries = append(deliveries,
				delivery{back, proto.CallbackBreakArgs{FID: tg.FID, Path: tg.Path}})
		}
	}
	t.mu.Lock()
	t.breaks += int64(len(deliveries))
	t.mu.Unlock()
	if len(deliveries) == 0 {
		return
	}

	if unbatched || p == nil {
		// Legacy path: one RPC per broken promise, strictly sequential.
		// Real transports (p == nil) also take it — coalescing needs the
		// simulation kernel's futures.
		for _, dv := range deliveries {
			t.countRPC(m, 1)
			// A dead workstation just times out; the promise is already gone.
			_, _ = dv.back.CallBack(p, rpc.Request{
				Op:   rpc.Op(proto.OpCallbackBreak),
				Body: proto.Marshal(dv.args),
			})
		}
		return
	}

	k := p.Kernel()
	waits := make([]*sim.Future[struct{}], 0, len(deliveries))
	t.mu.Lock()
	for _, dv := range deliveries {
		f := sim.NewFuture[struct{}](k)
		waits = append(waits, f)
		q := t.queues[dv.back]
		if q == nil {
			// No flusher running for this workstation: start one. While it
			// is busy delivering, later breaks pile onto q.pending and ride
			// the next RPC.
			q = &clientQueue{}
			t.queues[dv.back] = q
			back := dv.back
			k.Spawn("cb-flush", func(fp *sim.Proc) { t.flush(fp, back) })
		}
		q.pending = append(q.pending, breakItem{args: dv.args, done: f})
	}
	t.mu.Unlock()
	for _, f := range waits {
		f.Wait(p)
	}
}

// countRPC bumps the delivered-RPC counters for one break RPC carrying n
// invalidations.
func (t *CallbackTable) countRPC(m *trace.Registry, n int) {
	t.mu.Lock()
	t.breakRPCs++
	t.mu.Unlock()
	if m != nil {
		m.Counter(trace.MetricViceCallbackBreakRPCs).Add(1)
		m.Histogram(trace.MetricViceCallbackBatch).ObserveN(int64(n))
	}
}

// flush drains one workstation's pending breaks, one bulk RPC per drain,
// until the queue stays empty. It runs as its own kernel process so
// deliveries to distinct workstations overlap.
func (t *CallbackTable) flush(fp *sim.Proc, back rpc.Backchannel) {
	for {
		t.mu.Lock()
		q := t.queues[back]
		if len(q.pending) == 0 {
			delete(t.queues, back)
			t.mu.Unlock()
			return
		}
		window := t.window
		t.mu.Unlock()
		// Linger briefly: breaks from updates completing in this window
		// ride the same RPC instead of their own.
		fp.Sleep(window)
		t.mu.Lock()
		items := q.pending
		q.pending = nil
		m := t.metrics
		t.mu.Unlock()
		for len(items) > 0 {
			chunk := items
			if len(chunk) > proto.MaxBulkItems {
				chunk = chunk[:proto.MaxBulkItems]
			}
			items = items[len(chunk):]
			var req rpc.Request
			if len(chunk) == 1 {
				// A lone break uses the original message so single-update
				// traffic is byte-identical to the unbatched protocol.
				req = rpc.Request{
					Op:   rpc.Op(proto.OpCallbackBreak),
					Body: proto.Marshal(chunk[0].args),
				}
			} else {
				args := proto.BulkBreakArgs{Items: make([]proto.CallbackBreakArgs, 0, len(chunk))}
				for _, it := range chunk {
					args.Items = append(args.Items, it.args)
				}
				req = rpc.Request{Op: rpc.Op(proto.OpBulkBreak), Body: proto.Marshal(args)}
			}
			t.countRPC(m, len(chunk))
			// A dead workstation just times out; the promise is already gone.
			_, _ = back.CallBack(fp, req)
			for _, it := range chunk {
				it.done.Set(struct{}{})
			}
		}
	}
}

// Stats reports cumulative promises granted and callbacks broken.
func (t *CallbackTable) Stats() (promised, breaks int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	promised = t.promisedBase
	for _, s := range t.shards {
		promised += s.promisedCount()
	}
	return promised, t.breaks
}

// promisedCount reports the shard's cumulative promises granted.
func (s *cbShard) promisedCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.promised
}

// BreakRPCs reports cumulative callback RPCs sent (each may carry many
// broken promises; Stats' breaks count divided by this is the coalescing
// ratio E14 measures).
func (t *CallbackTable) BreakRPCs() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.breakRPCs
}

// Outstanding reports the number of live promises (server state size).
func (t *CallbackTable) Outstanding() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, s := range t.shards {
		n += s.outstanding()
	}
	return n
}

// outstanding reports the shard's live promise count.
func (s *cbShard) outstanding() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, set := range s.promises {
		n += len(set)
	}
	return n
}
