package vice

import (
	"sync"

	"itcfs/internal/proto"
	"itcfs/internal/rpc"
	"itcfs/internal/sim"
)

// CallbackTable records callback promises: when a workstation fetches a
// file in revised mode, the server promises to notify it before the file
// changes. This inverts the prototype's check-on-open validation — the 65%
// of server calls that were cache-validity checks (§5.2) disappear, at the
// cost of server state and an invalidation message on each update (§3.2).
type CallbackTable struct {
	mu       sync.Mutex
	promises map[proto.FID]map[rpc.Backchannel]bool
	breaks   int64
	promised int64
}

// NewCallbackTable returns an empty table.
func NewCallbackTable() *CallbackTable {
	return &CallbackTable{promises: make(map[proto.FID]map[rpc.Backchannel]bool)}
}

// Promise records that the connection holds a valid copy of fid.
func (t *CallbackTable) Promise(fid proto.FID, back rpc.Backchannel) {
	if back == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	set := t.promises[fid]
	if set == nil {
		set = make(map[rpc.Backchannel]bool)
		t.promises[fid] = set
	}
	if !set[back] {
		set[back] = true
		t.promised++
	}
}

// Drop forgets all promises for one connection (teardown) without breaking.
func (t *CallbackTable) Drop(back rpc.Backchannel) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for fid, set := range t.promises {
		delete(set, back)
		if len(set) == 0 {
			delete(t.promises, fid)
		}
	}
}

// take removes and returns the backchannels holding promises on fid,
// excluding skip (the connection performing the update — its own cache
// entry is being replaced by the store itself).
func (t *CallbackTable) take(fid proto.FID, skip rpc.Backchannel) []rpc.Backchannel {
	t.mu.Lock()
	defer t.mu.Unlock()
	set := t.promises[fid]
	if len(set) == 0 {
		return nil
	}
	var out []rpc.Backchannel
	for back := range set {
		if back == skip {
			continue
		}
		out = append(out, back)
		delete(set, back)
	}
	if skip != nil && set[skip] {
		// The updater keeps its promise: its cache copy is the new version.
		return out
	}
	if len(set) == 0 {
		delete(t.promises, fid)
	}
	return out
}

// Break notifies every workstation holding a promise on fid, except the
// updater's own connection, that its copy is invalid. It must be called
// without server locks held: callback calls park the worker process.
func (t *CallbackTable) Break(p *sim.Proc, fid proto.FID, path string, skip rpc.Backchannel) {
	targets := t.take(fid, skip)
	for _, back := range targets {
		t.breaks++
		args := proto.CallbackBreakArgs{FID: fid, Path: path}
		// A dead workstation just times out; the promise is already gone.
		_, _ = back.CallBack(p, rpc.Request{Op: rpc.Op(proto.OpCallbackBreak), Body: proto.Marshal(args)})
	}
}

// Stats reports cumulative promises granted and callbacks broken.
func (t *CallbackTable) Stats() (promised, breaks int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.promised, t.breaks
}

// Outstanding reports the number of live promises (server state size).
func (t *CallbackTable) Outstanding() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, set := range t.promises {
		n += len(set)
	}
	return n
}
