package vice

import (
	"math/rand"
	"testing"
	"testing/quick"

	"itcfs/internal/proto"
	"itcfs/internal/rpc"
)

// Vice serves mutually suspicious workstations: whatever bytes arrive in a
// request body, the server must answer with an error code — never panic,
// never hang, never corrupt state.

var allOps = []uint16{
	proto.OpFetch, proto.OpStore, proto.OpFetchStatus, proto.OpSetStatus,
	proto.OpTestValid, proto.OpCreate, proto.OpMakeDir, proto.OpRemove,
	proto.OpRemoveDir, proto.OpRename, proto.OpSymlink, proto.OpLink,
	proto.OpSetACL, proto.OpGetACL, proto.OpSetLock, proto.OpReleaseLock,
	proto.OpGetCustodian, proto.OpVolCreate, proto.OpVolClone,
	proto.OpVolStatus, proto.OpVolSetQuota, proto.OpVolOffline,
	proto.OpVolOnline, proto.OpVolMove, proto.OpVolSalvage,
	proto.OpProtMutate, proto.OpProtSnapshot, proto.OpLocInstall,
	proto.OpVolInstall, proto.OpProtInstall, proto.OpCallbackBreak, 9999,
}

func TestHandlersSurviveGarbage(t *testing.T) {
	c := newCell(t, Revised, 1)
	c.mkVolume(t, "u", "/u", "satya", 0)
	c.store(t, "satya", "/u/f", []byte("seed data"))

	f := func(seed int64, body, bulk []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		op := allOps[r.Intn(len(allOps))]
		for _, user := range []string{"mallory", "operator", ServerUser} {
			resp := c.servers[0].Dispatcher().Dispatch(
				rpc.Ctx{User: user},
				rpc.Request{Op: rpc.Op(op), Body: body, Bulk: bulk},
			)
			_ = resp
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
	// The server still works after the bombardment.
	resp := c.call("satya", 0, proto.OpFetch, proto.Marshal(proto.FetchArgs{Ref: pathRef("/u/f")}), nil)
	if !resp.OK() || string(resp.Bulk) != "seed data" {
		t.Fatalf("server damaged by garbage: code %d %q", resp.Code, resp.Bulk)
	}
}

// Well-formed requests against nonsense references must come back with
// clean service errors.
func TestHandlersRejectNonsenseRefs(t *testing.T) {
	c := newCell(t, Revised, 1)
	bogus := []proto.Ref{
		{},                                       // empty
		{Path: "not-absolute"},                   // relative path
		{FID: proto.FID{Volume: 9999, Vnode: 1}}, // unknown volume
		{FID: proto.FID{Volume: 1, Vnode: 9999, Uniq: 3}}, // unknown vnode
	}
	for _, ref := range bogus {
		resp := c.call("satya", 0, proto.OpFetch, proto.Marshal(proto.FetchArgs{Ref: ref}), nil)
		if resp.OK() {
			t.Errorf("fetch of %v succeeded", ref)
		}
		if resp.Code == rpc.CodeUnknownOp {
			t.Errorf("fetch of %v fell through dispatch", ref)
		}
	}
}

func TestAtomicReRelease(t *testing.T) {
	// Releasing v2 at the same path atomically replaces v1; both clones
	// coexist as volumes (§3.2's multiple coexisting versions).
	c := newCell(t, Prototype, 1)
	vid := c.mkVolume(t, "sys", "/sys", "operator", 0)
	c.store(t, "operator", "/sys/tool", []byte("tool-v1"))
	resp := mustOK(t, c.call("operator", 0, proto.OpVolClone,
		proto.Marshal(proto.VolCloneArgs{Volume: vid, Path: "/sys-release"}), nil))
	v1, _ := proto.Unmarshal(resp.Body, proto.DecodeVolStatusReply)

	c.store(t, "operator", "/sys/tool", []byte("tool-v2"))
	resp = mustOK(t, c.call("operator", 0, proto.OpVolClone,
		proto.Marshal(proto.VolCloneArgs{Volume: vid, Path: "/sys-release"}), nil))
	v2, _ := proto.Unmarshal(resp.Body, proto.DecodeVolStatusReply)
	if v1.Volume == v2.Volume {
		t.Fatal("re-release reused the volume id")
	}

	// The release path now serves v2.
	got, _ := c.fetch(t, "satya", "/sys-release/tool")
	if string(got) != "tool-v2" {
		t.Fatalf("release path serves %q", got)
	}
	// The old clone volume still exists and still holds v1.
	if _, ok := c.servers[0].Volume(v1.Volume); !ok {
		t.Fatal("old release volume destroyed")
	}
	resp = mustOK(t, c.call("satya", 0, proto.OpFetch, proto.Marshal(proto.FetchArgs{
		Ref: proto.Ref{FID: proto.FID{Volume: v1.Volume, Vnode: 2, Uniq: 2}},
	}), nil))
}
