package vice

import (
	"math/rand"
	"testing"
	"testing/quick"

	"itcfs/internal/fault"
	"itcfs/internal/proto"
	"itcfs/internal/rpc"
)

// Vice serves mutually suspicious workstations: whatever bytes arrive in a
// request body, the server must answer with an error code — never panic,
// never hang, never corrupt state.

var allOps = []uint16{
	proto.OpFetch, proto.OpStore, proto.OpFetchStatus, proto.OpSetStatus,
	proto.OpTestValid, proto.OpBulkTestValid, proto.OpCreate, proto.OpMakeDir, proto.OpRemove,
	proto.OpRemoveDir, proto.OpRename, proto.OpSymlink, proto.OpLink,
	proto.OpSetACL, proto.OpGetACL, proto.OpSetLock, proto.OpReleaseLock,
	proto.OpGetCustodian, proto.OpVolCreate, proto.OpVolClone,
	proto.OpVolStatus, proto.OpVolSetQuota, proto.OpVolOffline,
	proto.OpVolOnline, proto.OpVolMove, proto.OpVolSalvage,
	proto.OpProtMutate, proto.OpProtSnapshot, proto.OpLocInstall,
	proto.OpVolInstall, proto.OpProtInstall, proto.OpCallbackBreak, 9999,
}

func TestHandlersSurviveGarbage(t *testing.T) {
	c := newCell(t, Revised, 1)
	c.mkVolume(t, "u", "/u", "satya", 0)
	c.store(t, "satya", "/u/f", []byte("seed data"))

	f := func(seed int64, body, bulk []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		op := allOps[r.Intn(len(allOps))]
		for _, user := range []string{"mallory", "operator", ServerUser} {
			resp := c.servers[0].Dispatcher().Dispatch(
				rpc.Ctx{User: user},
				rpc.Request{Op: rpc.Op(op), Body: body, Bulk: bulk},
			)
			_ = resp
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
	// The server still works after the bombardment.
	resp := c.call("satya", 0, proto.OpFetch, proto.Marshal(proto.FetchArgs{Ref: pathRef("/u/f")}), nil)
	if !resp.OK() || string(resp.Bulk) != "seed data" {
		t.Fatalf("server damaged by garbage: code %d %q", resp.Code, resp.Bulk)
	}
}

// Well-formed requests against nonsense references must come back with
// clean service errors.
func TestHandlersRejectNonsenseRefs(t *testing.T) {
	c := newCell(t, Revised, 1)
	bogus := []proto.Ref{
		{},                                       // empty
		{Path: "not-absolute"},                   // relative path
		{FID: proto.FID{Volume: 9999, Vnode: 1}}, // unknown volume
		{FID: proto.FID{Volume: 1, Vnode: 9999, Uniq: 3}}, // unknown vnode
	}
	for _, ref := range bogus {
		resp := c.call("satya", 0, proto.OpFetch, proto.Marshal(proto.FetchArgs{Ref: ref}), nil)
		if resp.OK() {
			t.Errorf("fetch of %v succeeded", ref)
		}
		if resp.Code == rpc.CodeUnknownOp {
			t.Errorf("fetch of %v fell through dispatch", ref)
		}
	}
}

// chaosBodies returns request bodies for the operations the chaos harness
// issues, plus fault-injector-corrupted copies — the corpus starts from the
// frames that actually cross the wire under fault injection rather than
// from empty bytes.
func chaosBodies() [][]byte {
	ref := proto.Ref{Path: "/u/f"}
	fidRef := proto.Ref{FID: proto.FID{Volume: 2, Vnode: 2, Uniq: 2}}
	bodies := [][]byte{
		proto.Marshal(proto.FetchArgs{Ref: ref}),
		proto.Marshal(proto.StoreArgs{Ref: fidRef, Mode: 0o644}),
		proto.Marshal(proto.TestValidArgs{Ref: fidRef, Version: 1}),
		proto.Marshal(proto.NameArgs{Dir: proto.Ref{Path: "/u"}, Name: "sub0", Mode: 0o755}),
		proto.Marshal(proto.RenameArgs{FromDir: ref, FromName: "a", ToDir: ref, ToName: "b"}),
		proto.Marshal(proto.CustodianArgs{Path: "/u"}),
	}
	inj := fault.New(fault.Config{Seed: 1985})
	for _, b := range bodies[:len(bodies):len(bodies)] {
		damaged := append([]byte(nil), b...)
		inj.Corrupt(damaged)
		bodies = append(bodies, damaged)
	}
	return bodies
}

// FuzzResolvePath hammers the server-side pathname walk (the prototype's
// hot path) with arbitrary paths: any outcome is fine except a panic.
func FuzzResolvePath(f *testing.F) {
	c := newCell(f, Prototype, 1)
	c.mkVolume(f, "u", "/u", "satya", 0)
	c.mkdirAll(f, "/u/d1/d2")
	c.store(f, "satya", "/u/d1/link-target", []byte("x"))
	mustOK(f, c.call("satya", 0, proto.OpSymlink,
		proto.Marshal(proto.SymlinkArgs{Dir: proto.Ref{Path: "/u/d1"}, Name: "l", Target: "/u/d1/link-target"}), nil))
	for _, seed := range []string{
		"", "/", "/u", "/u/d1/d2", "/u/d1/l", "/u/./d1/../d1/l", "not-absolute",
		"/u//d1", "/u/d1/d2/missing", "/u/\x00/f", "/u/d1/l/through-symlink",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, path string) {
		for _, follow := range []bool{true, false} {
			if _, _, err := c.servers[0].resolvePath(path, follow); err != nil {
				continue // rejection is the common, correct outcome
			}
		}
	})
}

// FuzzDispatch feeds arbitrary (op, body, bulk) triples straight into the
// dispatcher as several identities. The server must answer every one —
// error codes are fine, panics and hangs are not — and stay undamaged.
func FuzzDispatch(f *testing.F) {
	c := newCell(f, Revised, 1)
	c.mkVolume(f, "u", "/u", "satya", 0)
	c.store(f, "satya", "/u/f", []byte("seed data"))
	for i, body := range chaosBodies() {
		f.Add(allOps[i%len(allOps)], body, []byte(nil))
	}
	f.Add(uint16(9999), []byte(nil), []byte("bulk with no body"))
	f.Fuzz(func(t *testing.T, op uint16, body, bulk []byte) {
		for _, user := range []string{"mallory", "satya", "operator", ServerUser} {
			c.servers[0].Dispatcher().Dispatch(
				rpc.Ctx{User: user},
				rpc.Request{Op: rpc.Op(op), Body: body, Bulk: bulk},
			)
		}
		// The server must still answer well-formed requests afterwards.
		// (A fuzzed input may itself be a legal mutation — even a Remove
		// of the probe file — so only the response's coherence is checked,
		// not the file's survival.)
		resp := c.call("satya", 0, proto.OpFetch,
			proto.Marshal(proto.FetchArgs{Ref: proto.Ref{Path: "/u/f"}}), nil)
		if resp.OK() && resp.Body == nil {
			t.Fatalf("fetch OK but carried no status: %+v", resp)
		}
	})
}

func TestAtomicReRelease(t *testing.T) {
	// Releasing v2 at the same path atomically replaces v1; both clones
	// coexist as volumes (§3.2's multiple coexisting versions).
	c := newCell(t, Prototype, 1)
	vid := c.mkVolume(t, "sys", "/sys", "operator", 0)
	c.store(t, "operator", "/sys/tool", []byte("tool-v1"))
	resp := mustOK(t, c.call("operator", 0, proto.OpVolClone,
		proto.Marshal(proto.VolCloneArgs{Volume: vid, Path: "/sys-release"}), nil))
	v1, _ := proto.Unmarshal(resp.Body, proto.DecodeVolStatusReply)

	c.store(t, "operator", "/sys/tool", []byte("tool-v2"))
	resp = mustOK(t, c.call("operator", 0, proto.OpVolClone,
		proto.Marshal(proto.VolCloneArgs{Volume: vid, Path: "/sys-release"}), nil))
	v2, _ := proto.Unmarshal(resp.Body, proto.DecodeVolStatusReply)
	if v1.Volume == v2.Volume {
		t.Fatal("re-release reused the volume id")
	}

	// The release path now serves v2.
	got, _ := c.fetch(t, "satya", "/sys-release/tool")
	if string(got) != "tool-v2" {
		t.Fatalf("release path serves %q", got)
	}
	// The old clone volume still exists and still holds v1.
	if _, ok := c.servers[0].Volume(v1.Volume); !ok {
		t.Fatal("old release volume destroyed")
	}
	resp = mustOK(t, c.call("satya", 0, proto.OpFetch, proto.Marshal(proto.FetchArgs{
		Ref: proto.Ref{FID: proto.FID{Volume: v1.Volume, Vnode: 2, Uniq: 2}},
	}), nil))
}
