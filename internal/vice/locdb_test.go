package vice

import (
	"fmt"
	"sync"
	"testing"

	"itcfs/internal/proto"
)

func le(prefix string, vol uint32, custodian string) proto.LocEntry {
	return proto.LocEntry{Prefix: prefix, Volume: vol, Custodian: custodian}
}

func TestLocDBOverlappingPrefixes(t *testing.T) {
	l := NewLocDB()
	l.Install([]proto.LocEntry{
		le("/", 1, "s1"),
		le("/usr", 2, "s1"),
		le("/usr/alice", 3, "s2"),
	}, nil)

	cases := []struct {
		path string
		vol  uint32
	}{
		{"/", 1},
		{"/etc/passwd", 1},
		{"/usr", 2},
		{"/usr/bin/cc", 2},
		{"/usr/alice", 3},
		{"/usr/alice/notes.txt", 3},
		{"/usr/alicelike/file", 1}, // "alicelike" is not under "/usr/alice"... but IS under "/usr"
	}
	for _, c := range cases {
		got, ok := l.Resolve(c.path)
		if !ok {
			t.Fatalf("Resolve(%q): no entry", c.path)
		}
		want := c.vol
		if c.path == "/usr/alicelike/file" {
			want = 2 // longest covering prefix is /usr
		}
		if got.Volume != want {
			t.Errorf("Resolve(%q) = vol %d, want %d", c.path, got.Volume, want)
		}
	}
}

func TestLocDBRemoveRemapsByVol(t *testing.T) {
	// One volume mounted at two prefixes: removing one mount point must not
	// orphan the volume in the byVol index.
	l := NewLocDB()
	l.Install([]proto.LocEntry{
		le("/a", 7, "s1"),
		le("/b", 7, "s1"),
	}, nil)

	l.Install(nil, []string{"/a"})
	got, ok := l.ResolveVolume(7)
	if !ok {
		t.Fatal("ResolveVolume(7) lost the volume though /b still maps it")
	}
	if got.Prefix != "/b" {
		t.Fatalf("ResolveVolume(7).Prefix = %q, want /b", got.Prefix)
	}

	// Deterministic choice: with several surviving prefixes the smallest wins.
	l.Install([]proto.LocEntry{le("/a", 7, "s1"), le("/c", 7, "s1")}, nil)
	got, _ = l.ResolveVolume(7)
	if got.Prefix != "/a" {
		t.Fatalf("ResolveVolume(7).Prefix = %q, want lexicographically smallest /a", got.Prefix)
	}

	// Re-pointing a prefix at a new volume must clear the old volume's index
	// entry when that prefix was its only mount.
	l2 := NewLocDB()
	l2.Install([]proto.LocEntry{le("/x", 1, "s1")}, nil)
	l2.Install([]proto.LocEntry{le("/x", 2, "s1")}, nil)
	if _, ok := l2.ResolveVolume(1); ok {
		t.Fatal("ResolveVolume(1) still resolves after /x moved to volume 2")
	}
	if got, _ := l2.ResolveVolume(2); got.Prefix != "/x" {
		t.Fatalf("ResolveVolume(2).Prefix = %q, want /x", got.Prefix)
	}
}

func TestLocDBVersionMonotonicUnderConcurrentInstalls(t *testing.T) {
	l := NewLocDB()
	const workers = 8
	const installs = 50

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			prev := uint64(0)
			for i := 0; i < installs; i++ {
				l.Install([]proto.LocEntry{
					le(fmt.Sprintf("/w%d/i%d", w, i), uint32(w*1000+i), "s1"),
				}, nil)
				v := l.Version()
				if v <= prev {
					t.Errorf("version went from %d to %d (not strictly increasing after own install)", prev, v)
					return
				}
				prev = v
			}
		}(w)
	}
	wg.Wait()

	if got := l.Version(); got != workers*installs {
		t.Fatalf("final version = %d, want %d", got, workers*installs)
	}
	if got := len(l.Entries()); got != workers*installs {
		t.Fatalf("entries = %d, want %d", got, workers*installs)
	}
}
