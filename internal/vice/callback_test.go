package vice

import (
	"sync"
	"testing"

	"itcfs/internal/proto"
	"itcfs/internal/rpc"
	"itcfs/internal/sim"
)

// Unit coverage for the sharded, coalescing CallbackTable: registration
// order, the updater's kept promise, per-volume sharding, coalesced and
// chunked delivery, the unbatched ablation path, and counter carry across
// Reset.

// cbRecBack is a Backchannel that logs every callback RPC it receives.
type cbRecBack struct {
	name string
	mu   sync.Mutex
	reqs []rpc.Request // guarded by mu
}

func (b *cbRecBack) CallBack(_ *sim.Proc, req rpc.Request) (rpc.Response, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.reqs = append(b.reqs, req)
	return rpc.Response{}, nil
}

func (b *cbRecBack) BackUser() string { return b.name }

func (b *cbRecBack) requests() []rpc.Request {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]rpc.Request(nil), b.reqs...)
}

func cbFID(vol, vn uint32) proto.FID { return proto.FID{Volume: vol, Vnode: vn, Uniq: 1} }

func TestCallbackTakeOrderAndSkipKeepsPromise(t *testing.T) {
	tb := NewCallbackTable()
	a := &cbRecBack{name: "a"}
	b := &cbRecBack{name: "b"}
	c := &cbRecBack{name: "c"}
	fid := cbFID(2, 1)
	tb.Promise(fid, a)
	tb.Promise(fid, b)
	tb.Promise(fid, c)

	got := tb.take(fid, b)
	if len(got) != 2 || got[0] != rpc.Backchannel(a) || got[1] != rpc.Backchannel(c) {
		t.Fatalf("take returned %d backchannels, want [a c] in registration order", len(got))
	}
	// The updater's own promise survives: its cache holds the new version.
	if n := tb.Outstanding(); n != 1 {
		t.Fatalf("after skip-take, %d promises outstanding, want 1 (the updater's)", n)
	}
	got = tb.take(fid, nil)
	if len(got) != 1 || got[0] != rpc.Backchannel(b) {
		t.Fatalf("second take should return just b, got %d entries", len(got))
	}
	if n := tb.Outstanding(); n != 0 {
		t.Fatalf("%d promises outstanding after both takes, want 0", n)
	}
}

func TestCallbackShardingAndDrop(t *testing.T) {
	tb := NewCallbackTable()
	w := &cbRecBack{name: "w"}
	tb.Promise(cbFID(1, 1), w)
	tb.Promise(cbFID(2, 1), w)
	tb.mu.Lock()
	shards := len(tb.shards)
	tb.mu.Unlock()
	if shards != 2 {
		t.Fatalf("promises in 2 volumes built %d shards, want 2", shards)
	}
	if n := tb.Outstanding(); n != 2 {
		t.Fatalf("Outstanding = %d, want 2", n)
	}
	tb.Drop(w)
	if n := tb.Outstanding(); n != 0 {
		t.Fatalf("Outstanding after Drop = %d, want 0", n)
	}
}

func TestCallbackCoalescesConcurrentBreaks(t *testing.T) {
	tb := NewCallbackTable()
	w := &cbRecBack{name: "w"}
	fid1, fid2 := cbFID(2, 1), cbFID(3, 7)
	tb.Promise(fid1, w)
	tb.Promise(fid2, w)

	k := sim.NewKernel()
	k.Spawn("upd1", func(p *sim.Proc) { tb.Break(p, fid1, "/f1", nil) })
	k.Spawn("upd2", func(p *sim.Proc) { tb.Break(p, fid2, "/f2", nil) })
	k.Run()

	reqs := w.requests()
	if len(reqs) != 1 {
		t.Fatalf("workstation received %d callback RPCs, want 1 coalesced", len(reqs))
	}
	if reqs[0].Op != rpc.Op(proto.OpBulkBreak) {
		t.Fatalf("coalesced delivery used op %d, want OpBulkBreak", reqs[0].Op)
	}
	args, err := proto.Unmarshal(reqs[0].Body, proto.DecodeBulkBreakArgs)
	if err != nil {
		t.Fatalf("decode BulkBreak body: %v", err)
	}
	if len(args.Items) != 2 || args.Items[0].FID != fid1 || args.Items[1].FID != fid2 {
		t.Fatalf("bulk break carried %+v, want fid1 then fid2 in arrival order", args.Items)
	}
	if n := tb.BreakRPCs(); n != 1 {
		t.Fatalf("BreakRPCs = %d, want 1", n)
	}
	if _, breaks := tb.Stats(); breaks != 2 {
		t.Fatalf("Stats breaks = %d, want 2", breaks)
	}
}

func TestCallbackSingleBreakUsesLegacyMessage(t *testing.T) {
	tb := NewCallbackTable()
	w := &cbRecBack{name: "w"}
	fid := cbFID(2, 1)
	tb.Promise(fid, w)

	k := sim.NewKernel()
	k.Spawn("upd", func(p *sim.Proc) { tb.Break(p, fid, "/f", nil) })
	k.Run()

	reqs := w.requests()
	if len(reqs) != 1 {
		t.Fatalf("got %d RPCs, want 1", len(reqs))
	}
	// A lone break stays byte-compatible with the unbatched protocol.
	if reqs[0].Op != rpc.Op(proto.OpCallbackBreak) {
		t.Fatalf("single break used op %d, want OpCallbackBreak", reqs[0].Op)
	}
	args, err := proto.Unmarshal(reqs[0].Body, proto.DecodeCallbackBreakArgs)
	if err != nil || args.FID != fid || args.Path != "/f" {
		t.Fatalf("decoded %+v (err %v), want the broken fid and path", args, err)
	}
}

func TestCallbackUnbatchedPathSendsOneRPCPerPromise(t *testing.T) {
	tb := NewCallbackTable()
	tb.SetUnbatched(true)
	w := &cbRecBack{name: "w"}
	fid1, fid2 := cbFID(2, 1), cbFID(2, 2)
	tb.Promise(fid1, w)
	tb.Promise(fid2, w)

	k := sim.NewKernel()
	k.Spawn("upd", func(p *sim.Proc) {
		tb.BreakBatch(p, []BreakTarget{{FID: fid1, Path: "/f1"}, {FID: fid2, Path: "/f2"}}, nil)
	})
	k.Run()

	reqs := w.requests()
	if len(reqs) != 2 {
		t.Fatalf("unbatched path sent %d RPCs, want 2", len(reqs))
	}
	for i, r := range reqs {
		if r.Op != rpc.Op(proto.OpCallbackBreak) {
			t.Fatalf("rpc %d used op %d, want OpCallbackBreak", i, r.Op)
		}
	}
	if n := tb.BreakRPCs(); n != 2 {
		t.Fatalf("BreakRPCs = %d, want 2", n)
	}
}

func TestCallbackBulkDeliveryChunksAtMaxItems(t *testing.T) {
	tb := NewCallbackTable()
	w := &cbRecBack{name: "w"}
	n := proto.MaxBulkItems + 5
	targets := make([]BreakTarget, n)
	for i := 0; i < n; i++ {
		fid := cbFID(2, uint32(i+1))
		tb.Promise(fid, w)
		targets[i] = BreakTarget{FID: fid}
	}

	k := sim.NewKernel()
	k.Spawn("upd", func(p *sim.Proc) { tb.BreakBatch(p, targets, nil) })
	k.Run()

	reqs := w.requests()
	if len(reqs) != 2 {
		t.Fatalf("%d invalidations arrived in %d RPCs, want 2 chunks", n, len(reqs))
	}
	total := 0
	for i, r := range reqs {
		if r.Op != rpc.Op(proto.OpBulkBreak) {
			t.Fatalf("rpc %d used op %d, want OpBulkBreak", i, r.Op)
		}
		args, err := proto.Unmarshal(r.Body, proto.DecodeBulkBreakArgs)
		if err != nil {
			t.Fatalf("decode chunk %d: %v", i, err)
		}
		if len(args.Items) > proto.MaxBulkItems {
			t.Fatalf("chunk %d carries %d items, limit %d", i, len(args.Items), proto.MaxBulkItems)
		}
		total += len(args.Items)
	}
	if total != n {
		t.Fatalf("chunks delivered %d invalidations, want %d", total, n)
	}
}

func TestCallbackResetCarriesCumulativeCounters(t *testing.T) {
	tb := NewCallbackTable()
	w := &cbRecBack{name: "w"}
	for i := 0; i < 3; i++ {
		tb.Promise(cbFID(2, uint32(i+1)), w)
	}
	if promised, _ := tb.Stats(); promised != 3 {
		t.Fatalf("promised = %d, want 3", promised)
	}
	tb.Reset()
	if n := tb.Outstanding(); n != 0 {
		t.Fatalf("Outstanding after Reset = %d, want 0", n)
	}
	tb.Promise(cbFID(4, 9), w)
	tb.Promise(cbFID(4, 10), w)
	if promised, _ := tb.Stats(); promised != 5 {
		t.Fatalf("cumulative promised after Reset = %d, want 5", promised)
	}
	if n := tb.Outstanding(); n != 2 {
		t.Fatalf("Outstanding = %d, want 2", n)
	}
}
