package vice

import (
	"fmt"
	"sort"

	"itcfs/internal/prot"
	"itcfs/internal/proto"
	"itcfs/internal/rpc"
	"itcfs/internal/sim"
	"itcfs/internal/trace"
	"itcfs/internal/volume"
	"itcfs/internal/wire"
)

// Volume and protection administration. These operations are rare,
// human-initiated, and deliberately expensive when they touch the
// replicated databases: "changing the location database is relatively
// expensive because it involves updating all the cluster servers in the
// system" (§3.1). That cost is exactly what experiment E10 measures against
// negative-rights revocation.

// broadcast sends a request to every peer server, returning the first
// error. The caller must not hold s.mu (peer calls park).
func (s *Server) broadcast(p *sim.Proc, req rpc.Request) error {
	s.mu.Lock()
	names := make([]string, 0, len(s.peers))
	for name := range s.peers {
		names = append(names, name)
	}
	sort.Strings(names)
	peers := make([]Caller, len(names))
	for i, name := range names {
		peers[i] = s.peers[name]
	}
	s.mu.Unlock()
	for i, c := range peers {
		resp, err := c.Call(p, req)
		if err != nil {
			return fmt.Errorf("vice: broadcast to %s: %w", names[i], err)
		}
		if !resp.OK() {
			return fmt.Errorf("vice: broadcast to %s: %w", names[i], proto.CodeToErr(resp.Code, string(resp.Body)))
		}
	}
	return nil
}

// installLoc applies a location update locally and on every peer.
func (s *Server) installLoc(p *sim.Proc, entries []proto.LocEntry, remove []string) error {
	if err := s.InstallLoc(entries, remove); err != nil {
		return err
	}
	return s.broadcast(p, rpc.Request{
		Op:   rpc.Op(proto.OpLocInstall),
		Body: proto.Marshal(proto.LocInstallArgs{Entries: entries, Remove: remove}),
	})
}

// handleVolCreate creates a volume on this server and mounts it at the
// requested path. The parent directory's volume must be local: the mount
// entry lives there. The new location row is pushed to every server.
func (s *Server) handleVolCreate(ctx rpc.Ctx, req rpc.Request) rpc.Response {
	if !s.isAdmin(ctx.User) {
		return respErr(fmt.Errorf("%w: volume creation is operations-staff only", proto.ErrNotAllowed))
	}
	args, err := proto.Unmarshal(req.Body, proto.DecodeVolCreateArgs)
	if err != nil {
		return respErr(err)
	}
	if args.Path == "" || args.Name == "" {
		return respErr(fmt.Errorf("%w: name and path required", proto.ErrBadRequest))
	}
	parentPath, leaf := dirOfPath(args.Path)
	pv, pdir, err := s.resolvePath(parentPath, true)
	if err != nil {
		return respErr(err)
	}
	acl := prot.NewACL()
	acl.Grant(args.Owner, prot.RightsAll)
	acl.Grant(prot.AnyUser, prot.RightLookup|prot.RightRead)
	id := s.cfg.AllocVolID()
	vol := volume.New(id, args.Name, acl, args.Quota, args.Owner, s.cfg.Clock)
	// Journal the volume's existence before the mount entry referring to it.
	if err := s.attachVolume(vol); err != nil {
		return respErr(err)
	}
	if err := s.mutate(pv, func() error { return pv.Mount(pdir, leaf, vol.Root()) }); err != nil {
		_ = s.detachVolume(id)
		return respErr(err)
	}
	le := proto.LocEntry{Prefix: args.Path, Volume: id, Custodian: s.cfg.Name}
	if err := s.installLoc(ctx.Proc, []proto.LocEntry{le}, nil); err != nil {
		return respErr(err)
	}
	if s.cfg.Mode == Revised {
		s.callbacks.Break(ctx.Proc, pdir, parentPath, nil)
	}
	return rpc.Response{Body: proto.Marshal(s.volStatusLocked(vol))}
}

// handleVolClone freezes a read-only snapshot of a volume, optionally
// installs it on replica servers, and optionally mounts it. This is the
// orderly-release mechanism for system software (§3.2).
func (s *Server) handleVolClone(ctx rpc.Ctx, req rpc.Request) rpc.Response {
	if !s.isAdmin(ctx.User) {
		return respErr(fmt.Errorf("%w: cloning is operations-staff only", proto.ErrNotAllowed))
	}
	args, err := proto.Unmarshal(req.Body, proto.DecodeVolCloneArgs)
	if err != nil {
		return respErr(err)
	}
	s.mu.Lock()
	src, ok := s.vols[args.Volume]
	s.mu.Unlock()
	if !ok {
		if le, found := s.cfg.Loc.ResolveVolume(args.Volume); found {
			return respErr(&proto.WrongServer{Custodian: le.Custodian})
		}
		return respErr(fmt.Errorf("%w: volume %d", proto.ErrStale, args.Volume))
	}
	// Validate the replica set before any visible effect: an unknown server
	// name must fail the whole release, not leave a mounted release with a
	// replica that can never confirm.
	for _, rep := range args.Replicas {
		s.mu.Lock()
		_, havePeer := s.peers[rep]
		s.mu.Unlock()
		if !havePeer {
			return respErr(fmt.Errorf("%w: unknown replica server %s", proto.ErrBadRequest, rep))
		}
	}
	id := s.cfg.AllocVolID()
	clone := src.Clone(id, src.Name()+".readonly")
	if err := s.attachVolume(clone); err != nil {
		return respErr(err)
	}
	if ix := s.cfg.Blocks; ix != nil {
		clone.InternData(ix.Intern)
	}
	if len(args.Replicas) > 0 {
		s.release.Begin(id, clone.Name(), args.Path, args.Replicas)
	}

	if args.Path != "" {
		parentPath, leaf := dirOfPath(args.Path)
		pv, pdir, err := s.resolvePath(parentPath, true)
		if err != nil {
			return respErr(err)
		}
		// "The creation of a read-only subtree is an atomic operation,
		// thus providing a convenient mechanism to support the orderly
		// release of new system software" (§3.2): if the mount point is
		// already occupied by an earlier release, the new clone replaces
		// it in one step. The old clone volume stays installed (multiple
		// coexisting versions), merely unmounted from this name.
		err = s.mutate(pv, func() error {
			if old, lookErr := pv.Lookup(pdir, leaf); lookErr == nil && old.FID.Volume != pv.ID() {
				if err := pv.Unmount(pdir, leaf); err != nil {
					return err
				}
			}
			return pv.Mount(pdir, leaf, clone.Root())
		})
		if err != nil {
			return respErr(err)
		}
		le := proto.LocEntry{Prefix: args.Path, Volume: id, Custodian: s.cfg.Name, Replicas: args.Replicas}
		if err := s.installLoc(ctx.Proc, []proto.LocEntry{le}, nil); err != nil {
			return respErr(err)
		}
		if s.cfg.Mode == Revised {
			s.callbacks.Break(ctx.Proc, pdir, parentPath, nil)
		}
	}

	// Push the image to each replica, after the location entry naming the
	// replica set is journalled and broadcast: a crash mid-propagation
	// leaves a durable record of which release was in flight, and
	// ResumeReleases finishes the missing installs after recovery. Until a
	// replica confirms, clients asking it for the volume are redirected to
	// the custodian (WrongServer), so the window is visible only as an
	// extra hop.
	if len(args.Replicas) > 0 {
		if err := s.release.Propagate(id, s.pushRelease(ctx.Proc, clone)); err != nil {
			return respErr(err)
		}
	}
	return rpc.Response{Body: proto.Marshal(s.volStatusLocked(clone))}
}

func (s *Server) volStatusLocked(v *volume.Volume) proto.VolStatusReply {
	return proto.VolStatusReply{
		Volume:   v.ID(),
		Name:     v.Name(),
		Quota:    v.Quota(),
		Used:     v.Used(),
		Online:   v.Online(),
		ReadOnly: v.ReadOnly(),
		Server:   s.cfg.Name,
	}
}

func (s *Server) handleVolStatus(ctx rpc.Ctx, req rpc.Request) rpc.Response {
	args, err := proto.Unmarshal(req.Body, proto.DecodeVolStatusArgs)
	if err != nil {
		return respErr(err)
	}
	s.mu.Lock()
	v, ok := s.vols[args.Volume]
	s.mu.Unlock()
	if !ok {
		if le, found := s.cfg.Loc.ResolveVolume(args.Volume); found {
			return respErr(&proto.WrongServer{Custodian: le.Custodian})
		}
		return respErr(fmt.Errorf("%w: volume %d", proto.ErrStale, args.Volume))
	}
	return rpc.Response{Body: proto.Marshal(s.volStatusLocked(v))}
}

func (s *Server) handleVolSetQuota(ctx rpc.Ctx, req rpc.Request) rpc.Response {
	if !s.isAdmin(ctx.User) {
		return respErr(fmt.Errorf("%w: quota changes are operations-staff only", proto.ErrNotAllowed))
	}
	args, err := proto.Unmarshal(req.Body, proto.DecodeVolSetQuotaArgs)
	if err != nil {
		return respErr(err)
	}
	s.mu.Lock()
	v, ok := s.vols[args.Volume]
	s.mu.Unlock()
	if !ok {
		return respErr(fmt.Errorf("%w: volume %d", proto.ErrStale, args.Volume))
	}
	if err := s.mutate(v, func() error { v.SetQuota(args.Quota); return nil }); err != nil {
		return respErr(err)
	}
	return rpc.Response{}
}

func (s *Server) handleVolOnlineOffline(online bool) rpc.HandlerFunc {
	return func(ctx rpc.Ctx, req rpc.Request) rpc.Response {
		if !s.isAdmin(ctx.User) {
			return respErr(fmt.Errorf("%w: operations-staff only", proto.ErrNotAllowed))
		}
		args, err := proto.Unmarshal(req.Body, proto.DecodeVolStatusArgs)
		if err != nil {
			return respErr(err)
		}
		s.mu.Lock()
		v, ok := s.vols[args.Volume]
		s.mu.Unlock()
		if !ok {
			return respErr(fmt.Errorf("%w: volume %d", proto.ErrStale, args.Volume))
		}
		if err := s.mutate(v, func() error { v.SetOnline(online); return nil }); err != nil {
			return respErr(err)
		}
		return rpc.Response{}
	}
}

// handleVolMove reassigns a volume to another custodian: serialize, ship,
// delete locally, and update the location database everywhere. The files
// are unavailable during the change (§3.1).
func (s *Server) handleVolMove(ctx rpc.Ctx, req rpc.Request) rpc.Response {
	if !s.isAdmin(ctx.User) {
		return respErr(fmt.Errorf("%w: volume moves are operations-staff only", proto.ErrNotAllowed))
	}
	args, err := proto.Unmarshal(req.Body, proto.DecodeVolMoveArgs)
	if err != nil {
		return respErr(err)
	}
	s.mu.Lock()
	v, ok := s.vols[args.Volume]
	peer, havePeer := s.peers[args.Target]
	s.mu.Unlock()
	if !ok {
		if le, found := s.cfg.Loc.ResolveVolume(args.Volume); found {
			return respErr(&proto.WrongServer{Custodian: le.Custodian})
		}
		return respErr(fmt.Errorf("%w: volume %d", proto.ErrStale, args.Volume))
	}
	if !havePeer {
		return respErr(fmt.Errorf("%w: unknown server %s", proto.ErrBadRequest, args.Target))
	}
	le, found := s.cfg.Loc.ResolveVolume(args.Volume)
	if !found {
		return respErr(fmt.Errorf("%w: volume %d not in location database", proto.ErrStale, args.Volume))
	}

	if err := s.mutate(v, func() error { v.SetOnline(false); return nil }); err != nil { // unavailable during the change
		return respErr(err)
	}
	image := v.Serialize()
	resp, err := peer.Call(ctx.Proc, rpc.Request{
		Op:   rpc.Op(proto.OpVolInstall),
		Body: proto.Marshal(proto.VolInstallArgs{Volume: v.ID(), Name: v.Name(), ReadOnly: v.ReadOnly()}),
		Bulk: image,
	})
	if err != nil || !resp.OK() {
		_ = s.mutate(v, func() error { v.SetOnline(true); return nil }) // move failed; restore service
		if err == nil {
			err = proto.CodeToErr(resp.Code, string(resp.Body))
		}
		return respErr(err)
	}
	if err := s.detachVolume(args.Volume); err != nil {
		return respErr(err)
	}
	le.Custodian = args.Target
	if err := s.installLoc(ctx.Proc, []proto.LocEntry{le}, nil); err != nil {
		return respErr(err)
	}
	if fl := s.cfg.Flight; fl != nil {
		fl.Log(trace.EventViceVolumeMove, s.cfg.Name,
			fmt.Sprintf("volume %d (%s) handed to %s", args.Volume, v.Name(), args.Target))
	}
	return rpc.Response{}
}

// handleVolSalvage runs crash recovery on one volume (or, with volume 0,
// every local volume): "each volume may be … salvaged after a system
// crash" (§5.3). The reply body carries the aggregate repair counts:
// orphans removed, dangling entries dropped, link counts fixed.
func (s *Server) handleVolSalvage(ctx rpc.Ctx, req rpc.Request) rpc.Response {
	if !s.isAdmin(ctx.User) {
		return respErr(fmt.Errorf("%w: salvage is operations-staff only", proto.ErrNotAllowed))
	}
	args, err := proto.Unmarshal(req.Body, proto.DecodeVolStatusArgs)
	if err != nil {
		return respErr(err)
	}
	var reports []volume.SalvageReport
	if args.Volume == 0 {
		all := s.SalvageAll()
		ids := make([]uint32, 0, len(all))
		for id := range all {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			reports = append(reports, all[id])
		}
	} else {
		s.mu.Lock()
		v, ok := s.vols[args.Volume]
		s.mu.Unlock()
		if !ok {
			return respErr(fmt.Errorf("%w: volume %d", proto.ErrStale, args.Volume))
		}
		var rep volume.SalvageReport
		_ = s.mutate(v, func() error { rep = v.Salvage(); return nil }) // repairs applied in memory regardless
		reports = append(reports, rep)
	}
	var orphans, dangling, links int
	for _, rep := range reports {
		orphans += rep.OrphansRemoved
		dangling += rep.DanglingEntries
		links += rep.LinksFixed
	}
	if fl := s.cfg.Flight; fl != nil {
		fl.Log(trace.EventViceSalvage, s.cfg.Name,
			fmt.Sprintf("volume %d: %d volumes scanned, %d orphans removed, %d dangling entries, %d links fixed",
				args.Volume, len(reports), orphans, dangling, links))
	}
	var e wire.Encoder
	e.Int(orphans)
	e.Int(dangling)
	e.Int(links)
	return rpc.Response{Body: append([]byte(nil), e.Buf()...)}
}

// handleProtMutate is the protection server (§3.4): it validates the
// mutation, applies it authoritatively, and pushes it to every replica.
func (s *Server) handleProtMutate(ctx rpc.Ctx, req rpc.Request) rpc.Response {
	if !s.cfg.ProtAuthority {
		return respErr(fmt.Errorf("%w: not the protection server", proto.ErrNotAllowed))
	}
	if !s.isAdmin(ctx.User) {
		return respErr(fmt.Errorf("%w: protection changes are operations-staff only", proto.ErrNotAllowed))
	}
	m, err := proto.Unmarshal(req.Body, prot.DecodeMutation)
	if err != nil {
		return respErr(err)
	}
	if err := s.applyProt(m); err != nil {
		return respErr(err)
	}
	if err := s.broadcast(ctx.Proc, rpc.Request{Op: rpc.Op(proto.OpProtInstall), Body: req.Body}); err != nil {
		return respErr(err)
	}
	var e wire.Encoder
	e.U64(s.cfg.DB.Version())
	return rpc.Response{Body: append([]byte(nil), e.Buf()...)}
}

func (s *Server) handleProtSnapshot(ctx rpc.Ctx, req rpc.Request) rpc.Response {
	if !s.isAdmin(ctx.User) {
		return respErr(fmt.Errorf("%w: operations-staff only", proto.ErrNotAllowed))
	}
	return rpc.Response{Bulk: s.cfg.DB.Snapshot()}
}

// Server-to-server installs. Only peers inside the trust boundary may call
// these.

func (s *Server) handleLocInstall(ctx rpc.Ctx, req rpc.Request) rpc.Response {
	if ctx.User != ServerUser {
		return respErr(fmt.Errorf("%w: server-to-server only", proto.ErrNotAllowed))
	}
	args, err := proto.Unmarshal(req.Body, proto.DecodeLocInstallArgs)
	if err != nil {
		return respErr(err)
	}
	if err := s.InstallLoc(args.Entries, args.Remove); err != nil {
		return respErr(err)
	}
	return rpc.Response{}
}

func (s *Server) handleVolInstall(ctx rpc.Ctx, req rpc.Request) rpc.Response {
	if ctx.User != ServerUser {
		return respErr(fmt.Errorf("%w: server-to-server only", proto.ErrNotAllowed))
	}
	args, err := proto.Unmarshal(req.Body, proto.DecodeVolInstallArgs)
	if err != nil {
		return respErr(err)
	}
	// Read-only installs are idempotent: a release's image for a volume ID
	// is immutable, so a retry (an interrupted release being resumed after
	// the custodian's WAL recovery) that finds the volume already attached
	// has nothing left to do. Without this, every resume would fail on the
	// replicas that DID confirm before the crash.
	if args.ReadOnly {
		s.mu.Lock()
		_, have := s.vols[args.Volume]
		s.mu.Unlock()
		if have {
			return rpc.Response{}
		}
	}
	vol, err := volume.Deserialize(req.Bulk, s.cfg.Clock)
	if err != nil {
		return respErr(fmt.Errorf("%w: %v", proto.ErrBadRequest, err))
	}
	if ix := s.cfg.Blocks; ix != nil {
		vol.InternData(ix.Intern)
	}
	vol.SetOnline(true)
	if err := s.attachVolume(vol); err != nil {
		return respErr(err)
	}
	return rpc.Response{}
}

func (s *Server) handleProtInstall(ctx rpc.Ctx, req rpc.Request) rpc.Response {
	if ctx.User != ServerUser {
		return respErr(fmt.Errorf("%w: server-to-server only", proto.ErrNotAllowed))
	}
	m, err := proto.Unmarshal(req.Body, prot.DecodeMutation)
	if err != nil {
		return respErr(err)
	}
	if err := s.applyProt(m); err != nil {
		return respErr(err)
	}
	return rpc.Response{}
}
