package vice

// Release-controller behavior at the server level: idempotent installs,
// resuming an interrupted release (both in-memory and across a real WAL
// crash/recover cycle), the replace-mount race against an in-flight fetch,
// and content dedup across clone + replica.

import (
	"fmt"
	"testing"

	"itcfs/internal/prot"
	"itcfs/internal/proto"
	"itcfs/internal/rpc"
	"itcfs/internal/secure"
	"itcfs/internal/sim"
	"itcfs/internal/store"
	"itcfs/internal/store/walstore"
	"itcfs/internal/volume"
)

// dropInstalls wraps a peer connection, failing OpVolInstall calls while
// tripped — a replica that is up (location broadcasts reach it) but whose
// bulk-transfer path is down, the classic mid-release failure.
type dropInstalls struct {
	inner   Caller
	tripped *bool
}

func (d dropInstalls) Call(p *sim.Proc, req rpc.Request) (rpc.Response, error) {
	if *d.tripped && req.Op == rpc.Op(proto.OpVolInstall) {
		return rpc.Response{}, rpc.ErrUnreachable
	}
	return d.inner.Call(p, req)
}

// replicaHasListing fails the test unless srv serves the clone volume's
// root directory listing with exactly the given names.
func replicaHasListing(t *testing.T, srv *Server, vol uint32, names ...string) {
	t.Helper()
	resp := srv.Dispatcher().Dispatch(rpc.Ctx{User: "satya"}, rpc.Request{
		Op: rpc.Op(proto.OpFetch),
		Body: proto.Marshal(proto.FetchArgs{
			Ref: proto.Ref{FID: proto.FID{Volume: vol, Vnode: volume.RootVnode, Uniq: 1}},
		}),
	})
	if !resp.OK() {
		t.Fatalf("fetch from replica: code %d: %s", resp.Code, resp.Body)
	}
	entries, err := proto.DecodeDirEntries(resp.Bulk)
	if err != nil || len(entries) != len(names) {
		t.Fatalf("replica listing: %+v %v, want %v", entries, err, names)
	}
	for i, want := range names {
		if entries[i].Name != want {
			t.Fatalf("replica listing[%d] = %q, want %q", i, entries[i].Name, want)
		}
	}
}

// TestVolInstallIdempotent: re-delivering a read-only release image —
// exactly what a resumed release does for replicas that confirmed before a
// crash — is a no-op, not an error.
func TestVolInstallIdempotent(t *testing.T) {
	c := newCell(t, Prototype, 2)
	vid := c.mkVolume(t, "sys.bin", "/bin", "operator", 0)
	c.store(t, "operator", "/bin/ls", []byte("ls-bin"))
	resp := mustOK(t, c.call("operator", 0, proto.OpVolClone,
		proto.Marshal(proto.VolCloneArgs{Volume: vid, Path: "/bin-ro", Replicas: []string{"server1"}}), nil))
	vs, err := proto.Unmarshal(resp.Body, proto.DecodeVolStatusReply)
	if err != nil {
		t.Fatal(err)
	}
	clone, ok := c.servers[0].Volume(vs.Volume)
	if !ok {
		t.Fatal("clone missing on custodian")
	}
	// Deliver the same image to server1 twice more, as server-to-server
	// traffic. Both must succeed and the replica must keep serving.
	for i := 0; i < 2; i++ {
		resp := c.servers[1].Dispatcher().Dispatch(rpc.Ctx{User: ServerUser}, rpc.Request{
			Op:   rpc.Op(proto.OpVolInstall),
			Body: proto.Marshal(proto.VolInstallArgs{Volume: vs.Volume, Name: clone.Name(), ReadOnly: true}),
			Bulk: clone.Serialize(),
		})
		if !resp.OK() {
			t.Fatalf("re-install %d: code %d: %s", i, resp.Code, resp.Body)
		}
	}
	replicaHasListing(t, c.servers[1], vs.Volume, "ls")
}

// TestReleaseResumesAfterFailedPush: a release whose replica push fails
// leaves a durable location entry and a pending replica; once the replica
// is reachable again, ResumeReleases finishes exactly the missing install.
func TestReleaseResumesAfterFailedPush(t *testing.T) {
	c := newCell(t, Prototype, 2)
	vid := c.mkVolume(t, "sys.bin", "/bin", "operator", 0)
	c.store(t, "operator", "/bin/ls", []byte("ls-bin"))

	tripped := true
	c.servers[0].AddPeer("server1", dropInstalls{inner: directCaller{c.servers[1]}, tripped: &tripped})
	resp := c.call("operator", 0, proto.OpVolClone,
		proto.Marshal(proto.VolCloneArgs{Volume: vid, Path: "/bin-ro", Replicas: []string{"server1"}}), nil)
	if resp.OK() {
		t.Fatal("clone succeeded with the replica's install path down")
	}

	// The location entry (and its replica set) was installed before the
	// push, so the in-flight release is discoverable.
	le, ok := c.servers[0].Loc().Resolve("/bin-ro")
	if !ok || len(le.Replicas) != 1 || le.Replicas[0] != "server1" {
		t.Fatalf("loc entry = %+v, %v", le, ok)
	}
	if p := c.servers[0].Releases(); len(p) != 1 || len(p[0].Pending) != 1 {
		t.Fatalf("releases = %+v", p)
	}
	if _, ok := c.servers[1].Volume(le.Volume); ok {
		t.Fatal("replica has the volume despite the failed push")
	}

	tripped = false
	resumed, err := c.servers[0].ResumeReleases(nil)
	if err != nil {
		t.Fatalf("ResumeReleases: %v", err)
	}
	if len(resumed) != 1 || resumed[0] != le.Volume {
		t.Fatalf("resumed = %v, want [%d]", resumed, le.Volume)
	}
	if p := c.servers[0].Releases(); len(p) != 1 || len(p[0].Pending) != 0 {
		t.Fatalf("releases after resume = %+v", p)
	}
	replicaHasListing(t, c.servers[1], le.Volume, "ls")

	// Resuming again re-pushes to the full set; the idempotent receiver
	// makes that a no-op rather than a failure.
	if _, err := c.servers[0].ResumeReleases(nil); err != nil {
		t.Fatalf("second ResumeReleases: %v", err)
	}
}

// TestReleaseResumesAfterCrashRecovery is the end-to-end durability story:
// the custodian journals the release's location entry, crashes before the
// replica receives the image, and a recovered server finishes the release
// from its WAL-recovered state alone.
func TestReleaseResumesAfterCrashRecovery(t *testing.T) {
	db := prot.NewDB()
	for _, m := range []prot.Mutation{
		{Kind: prot.MutAddUser, Name: "satya", Key: secure.DeriveKey("satya", "pw")},
		{Kind: prot.MutAddUser, Name: "operator", Key: secure.DeriveKey("operator", "pw")},
		{Kind: prot.MutAddGroup, Name: AdminGroup, Owner: "operator"},
		{Kind: prot.MutAddMember, Name: AdminGroup, Member: "operator"},
	} {
		if err := db.Apply(m); err != nil {
			t.Fatal(err)
		}
	}
	var clock int64
	clk := func() int64 { clock++; return clock }
	nextVol := uint32(1)
	alloc := func() uint32 { nextVol++; return nextVol }
	custodianCfg := func(st store.Store) Config {
		dbCopy := prot.NewDB()
		if err := dbCopy.LoadSnapshot(db.Snapshot()); err != nil {
			t.Fatal(err)
		}
		return Config{
			Name: "server0", Mode: Prototype, DB: dbCopy, Loc: NewLocDB(),
			Clock: clk, ProtAuthority: true, AllocVolID: alloc, Store: st,
		}
	}

	fsys := store.NewMemFS()
	ws, err := walstore.Open(fsys)
	if err != nil {
		t.Fatal(err)
	}
	s0 := New(custodianCfg(ws))
	if _, err := s0.RecoverStore(); err != nil {
		t.Fatal(err)
	}
	replicaDB := prot.NewDB()
	if err := replicaDB.LoadSnapshot(db.Snapshot()); err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Name: "server1", Mode: Prototype, DB: replicaDB, Loc: NewLocDB(),
		Clock: clk, AllocVolID: alloc})
	tripped := true
	s0.AddPeer("server1", dropInstalls{inner: directCaller{s1}, tripped: &tripped})
	s1.AddPeer("server0", directCaller{s0})

	rootACL := prot.NewACL()
	rootACL.Grant(prot.AnyUser, prot.RightLookup|prot.RightRead)
	rootACL.Grant(AdminGroup, prot.RightsAll)
	if err := s0.AddVolume(volume.New(1, "root", rootACL, 0, "operator", clk)); err != nil {
		t.Fatal(err)
	}
	if err := s0.InstallLoc([]proto.LocEntry{{Prefix: "/", Volume: 1, Custodian: "server0"}}, nil); err != nil {
		t.Fatal(err)
	}
	dispatch := func(user string, op uint16, body, bulk []byte) rpc.Response {
		return s0.Dispatcher().Dispatch(rpc.Ctx{User: user},
			rpc.Request{Op: rpc.Op(op), Body: body, Bulk: bulk})
	}
	resp := dispatch("operator", proto.OpVolCreate,
		proto.Marshal(proto.VolCreateArgs{Name: "sys.bin", Path: "/bin", Owner: "operator"}), nil)
	if !resp.OK() {
		t.Fatalf("VolCreate: %s", resp.Body)
	}
	vs, _ := proto.Unmarshal(resp.Body, proto.DecodeVolStatusReply)
	if r := dispatch("operator", proto.OpCreate,
		proto.Marshal(proto.NameArgs{Dir: pathRef("/bin"), Name: "ls", Mode: 0o644}), nil); !r.OK() {
		t.Fatalf("Create: %s", r.Body)
	}
	if r := dispatch("operator", proto.OpStore,
		proto.Marshal(proto.StoreArgs{Ref: pathRef("/bin/ls")}), []byte("ls-bin")); !r.OK() {
		t.Fatalf("Store: %s", r.Body)
	}

	// The release fails mid-flight: location entry journalled, replica
	// never got the image. Then the custodian "crashes" (we abandon it).
	if r := dispatch("operator", proto.OpVolClone,
		proto.Marshal(proto.VolCloneArgs{Volume: vs.Volume, Path: "/bin-ro", Replicas: []string{"server1"}}), nil); r.OK() {
		t.Fatal("clone succeeded with the replica's install path down")
	}

	ws2, err := walstore.Open(fsys)
	if err != nil {
		t.Fatal(err)
	}
	s0b := New(custodianCfg(ws2))
	if _, err := s0b.RecoverStore(); err != nil {
		t.Fatal(err)
	}
	tripped = false
	s0b.AddPeer("server1", directCaller{s1})

	le, ok := s0b.Loc().Resolve("/bin-ro")
	if !ok {
		t.Fatal("recovered server lost the release's location entry")
	}
	resumed, err := s0b.ResumeReleases(nil)
	if err != nil {
		t.Fatalf("ResumeReleases: %v", err)
	}
	if len(resumed) != 1 || resumed[0] != le.Volume {
		t.Fatalf("resumed = %v, want [%d]", resumed, le.Volume)
	}
	replicaHasListing(t, s1, le.Volume, "ls")
}

// TestVolCloneReplaceMountDuringFetch pins the replace-mount guarantee: a
// client that resolved a file in the old release before a new release
// replaced the mount can still complete its fetch by FID — the old clone
// stays attached, merely unmounted — while path lookups serve the new one.
func TestVolCloneReplaceMountDuringFetch(t *testing.T) {
	c := newCell(t, Prototype, 1)
	vid := c.mkVolume(t, "sys.bin", "/bin", "operator", 0)
	c.store(t, "operator", "/bin/cc", []byte("cc-v1"))
	mustOK(t, c.call("operator", 0, proto.OpVolClone,
		proto.Marshal(proto.VolCloneArgs{Volume: vid, Path: "/bin-ro"}), nil))

	// The in-flight fetch: the client resolves the old release's file...
	_, st := c.fetch(t, "satya", "/bin-ro/cc")

	// ...a new release replaces the mount underneath it...
	c.store(t, "operator", "/bin/cc", []byte("cc-v2"))
	mustOK(t, c.call("operator", 0, proto.OpVolClone,
		proto.Marshal(proto.VolCloneArgs{Volume: vid, Path: "/bin-ro"}), nil))

	// ...and the fetch completes against the old clone's FID.
	resp := mustOK(t, c.call("satya", 0, proto.OpFetch,
		proto.Marshal(proto.FetchArgs{Ref: proto.Ref{FID: st.FID}}), nil))
	if string(resp.Bulk) != "cc-v1" {
		t.Fatalf("old-clone fetch = %q, want cc-v1", resp.Bulk)
	}
	// A fresh path lookup sees the new release.
	got, st2 := c.fetch(t, "satya", "/bin-ro/cc")
	if string(got) != "cc-v2" {
		t.Fatalf("new-release fetch = %q, want cc-v2", got)
	}
	if st2.FID.Volume == st.FID.Volume {
		t.Fatal("path lookup still resolves into the old clone volume")
	}
}

// TestReleaseDedupSharesBlocks: a replicated release stores each distinct
// block once in the cell's content index — the clone interns the originals,
// the replica's deserialized copies intern to the same blocks.
func TestReleaseDedupSharesBlocks(t *testing.T) {
	c := newCell(t, Prototype, 2)
	vid := c.mkVolume(t, "sys.bin", "/bin", "operator", 0)
	for i := 0; i < 4; i++ {
		c.store(t, "operator", fmt.Sprintf("/bin/tool%d", i),
			[]byte(fmt.Sprintf("binary payload for tool %d", i)))
	}
	mustOK(t, c.call("operator", 0, proto.OpVolClone,
		proto.Marshal(proto.VolCloneArgs{Volume: vid, Path: "/bin-ro", Replicas: []string{"server1"}}), nil))
	logical, physical, blocks := c.blocks.Stats()
	if blocks == 0 || physical == 0 {
		t.Fatalf("index empty: %d/%d/%d", logical, physical, blocks)
	}
	if r := c.blocks.Ratio(); r < 1.5 {
		t.Fatalf("dedup ratio = %.2f (logical %d, physical %d), want >= 1.5", r, logical, physical)
	}
}
