package sim

import (
	"testing"

	"itcfs/internal/leakcheck"
)

// TestMain fails the package if any test leaves a goroutine running. Every
// simulated process is a goroutine parked on a channel, so a test that ends
// its simulation with procs still parked (or spawns procs that never exit)
// leaks; the kernel's own tests must demonstrate the clean-exit discipline
// the rest of the tree relies on.
func TestMain(m *testing.M) { leakcheck.Main(m) }
