package sim

import (
	"testing"
)

// countFirer is a pre-allocated event body; Fire just counts.
type countFirer struct{ n int }

func (f *countFirer) Fire() { f.n++ }

// BenchmarkParkResume measures one Sleep round trip: schedule a future
// wake-up, park the process, switch to the kernel, advance the clock,
// dispatch back. This is the unit cost of every blocking operation in the
// simulator, so it bounds how many client operations a wall-clock second can
// carry.
func BenchmarkParkResume(b *testing.B) {
	k := NewKernel()
	k.Spawn("bench", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}

// BenchmarkMailboxSendRecv measures a request/reply round trip between two
// processes over two mailboxes: two Puts, two Gets, and the two park/resume
// switches between them — the shape of every simulated RPC hop.
func BenchmarkMailboxSendRecv(b *testing.B) {
	k := NewKernel()
	req := NewMailbox[int](k)
	rep := NewMailbox[int](k)
	k.Spawn("echo", func(p *Proc) {
		for {
			v := req.Get(p)
			if v < 0 {
				return
			}
			rep.Put(v)
		}
	})
	k.Spawn("driver", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			req.Put(i)
			rep.Get(p)
		}
		req.Put(-1)
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}

// BenchmarkScheduleDrain measures the bucketed timetable: bursts of events
// scheduled at one future instant, then drained. A burst pays one heap
// operation for the instant, not one per event, and recycled bucket slices
// keep steady-state scheduling allocation-free.
func BenchmarkScheduleDrain(b *testing.B) {
	const burst = 64
	k := NewKernel()
	f := &countFirer{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += burst {
		t := k.Now().Add(1)
		for j := 0; j < burst; j++ {
			k.AtFire(t, f)
		}
		k.Run()
	}
}

// TestMailboxPutGetZeroAlloc pins the mailbox hot path: once the ring is
// warm, Put and Get recycle the same backing array and allocate nothing.
func TestMailboxPutGetZeroAlloc(t *testing.T) {
	k := NewKernel()
	m := NewMailbox[int](k)
	m.Put(0)
	m.TryGet() // warm the ring
	if a := testing.AllocsPerRun(100, func() {
		m.Put(7)
		m.TryGet()
	}); a != 0 {
		t.Fatalf("mailbox put/get allocates %v per op; want 0", a)
	}
}

// TestScheduleDrainZeroAlloc pins the timetable's steady state end to end:
// scheduling a burst at a fresh future instant and draining it reuses the
// recycled bucket slice and the times heap's backing array, allocating
// nothing per round.
func TestScheduleDrainZeroAlloc(t *testing.T) {
	const burst = 64
	k := NewKernel()
	f := &countFirer{}
	round := func() {
		at := k.Now().Add(1)
		for j := 0; j < burst; j++ {
			k.AtFire(at, f)
		}
		k.Run()
	}
	round() // warm: grow the bucket slice, heap and free pool
	round()
	if a := testing.AllocsPerRun(50, round); a != 0 {
		t.Fatalf("schedule+drain round allocates %v; want 0", a)
	}
	if f.n == 0 {
		t.Fatal("no events fired")
	}
}

// TestAtFireSameInstantZeroAlloc pins the same-instant fast path: an event
// scheduled for the current instant appends straight to the live run queue —
// no heap push, no bucket lookup, no allocation. The run queue is pre-grown
// first so amortized slice growth (a capacity cost, not a per-event one)
// doesn't obscure the gate.
func TestAtFireSameInstantZeroAlloc(t *testing.T) {
	k := NewKernel()
	f := &countFirer{}
	var allocs float64
	k.At(1, func() {
		const runs = 100
		if need := len(k.curr) + runs + 2; cap(k.curr) < need {
			grown := make([]event, len(k.curr), 2*need)
			copy(grown, k.curr)
			k.curr = grown
		}
		allocs = testing.AllocsPerRun(runs, func() { k.AtFire(k.Now(), f) })
	})
	k.Run()
	if allocs != 0 {
		t.Fatalf("same-instant AtFire allocates %v; want 0", allocs)
	}
	if f.n != 101 {
		t.Fatalf("fired %d events; want 101", f.n)
	}
}

// TestProcExitStress spawns a large population of short-lived processes —
// the simulator's per-call worker pattern at scale — and requires every one
// to exit and unregister. Run under -race in CI, it also exercises the
// kernel/proc channel handoff for data races at high churn.
func TestProcExitStress(t *testing.T) {
	const procs = 5000
	k := NewKernel()
	m := NewMailbox[int](k)
	var got int
	for i := 0; i < procs; i++ {
		i := i
		k.SpawnAt(Time(i%17), "stress", func(p *Proc) {
			p.Sleep(Duration(i % 5))
			m.Put(i)
			p.Yield()
		})
	}
	k.Spawn("drain", func(p *Proc) {
		for j := 0; j < procs; j++ {
			m.Get(p)
			got++
		}
	})
	k.Run()
	if got != procs {
		t.Fatalf("drained %d messages; want %d", got, procs)
	}
	if n := k.Procs(); n != 0 {
		t.Fatalf("%d processes still live after Run; want 0", n)
	}
}
