package sim

import (
	"testing"
	"time"
)

const (
	ms = time.Millisecond
	s  = time.Second
)

func TestClockAdvances(t *testing.T) {
	k := NewKernel()
	var fired []Time
	k.After(5*ms, func() { fired = append(fired, k.Now()) })
	k.After(2*ms, func() { fired = append(fired, k.Now()) })
	k.After(9*ms, func() { fired = append(fired, k.Now()) })
	end := k.Run()
	if end != Time(9*ms) {
		t.Fatalf("end = %v, want 9ms", end)
	}
	want := []Time{Time(2 * ms), Time(5 * ms), Time(9 * ms)}
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Errorf("event %d at %v, want %v", i, fired[i], want[i])
		}
	}
}

func TestSameTimeEventsFireInScheduleOrder(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.After(ms, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := NewKernel()
	k.After(10*ms, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(Time(5*ms), func() {})
	})
	k.Run()
}

func TestProcSleep(t *testing.T) {
	k := NewKernel()
	var wake []Time
	k.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10 * ms)
			wake = append(wake, p.Now())
		}
	})
	k.Run()
	want := []Time{Time(10 * ms), Time(20 * ms), Time(30 * ms)}
	if len(wake) != 3 {
		t.Fatalf("woke %d times, want 3", len(wake))
	}
	for i := range want {
		if wake[i] != want[i] {
			t.Errorf("wake %d at %v, want %v", i, wake[i], want[i])
		}
	}
	if k.Procs() != 0 {
		t.Errorf("Procs = %d after run, want 0", k.Procs())
	}
}

func TestSpawnAtStartsLater(t *testing.T) {
	k := NewKernel()
	var started Time
	k.SpawnAt(Time(42*ms), "late", func(p *Proc) { started = p.Now() })
	k.Run()
	if started != Time(42*ms) {
		t.Fatalf("started at %v, want 42ms", started)
	}
}

func TestMailboxFIFO(t *testing.T) {
	k := NewKernel()
	mb := NewMailbox[int](k)
	var got []int
	k.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			mb.Put(i)
			p.Sleep(ms)
		}
	})
	k.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, mb.Get(p))
		}
	})
	k.Run()
	if len(got) != 5 {
		t.Fatalf("got %d values, want 5", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got = %v, want 0..4 in order", got)
		}
	}
}

func TestMailboxBlocksUntilPut(t *testing.T) {
	k := NewKernel()
	mb := NewMailbox[string](k)
	var at Time
	k.Spawn("consumer", func(p *Proc) {
		mb.Get(p)
		at = p.Now()
	})
	k.After(30*ms, func() { mb.Put("hello") })
	k.Run()
	if at != Time(30*ms) {
		t.Fatalf("consumer resumed at %v, want 30ms", at)
	}
}

func TestMailboxMultipleWaiters(t *testing.T) {
	k := NewKernel()
	mb := NewMailbox[int](k)
	got := map[string]int{}
	for _, name := range []string{"a", "b", "c"} {
		name := name
		k.Spawn(name, func(p *Proc) { got[name] = mb.Get(p) })
	}
	k.After(ms, func() { mb.Put(1); mb.Put(2); mb.Put(3) })
	k.Run()
	if len(got) != 3 {
		t.Fatalf("got %d receivers, want 3", len(got))
	}
	// Waiters are served in park order: a, b, c.
	if got["a"] != 1 || got["b"] != 2 || got["c"] != 3 {
		t.Errorf("got = %v, want a=1 b=2 c=3", got)
	}
}

func TestFutureWaitBeforeSet(t *testing.T) {
	k := NewKernel()
	f := NewFuture[int](k)
	var v int
	var at Time
	k.Spawn("waiter", func(p *Proc) {
		v = f.Wait(p)
		at = p.Now()
	})
	k.After(7*ms, func() { f.Set(99) })
	k.Run()
	if v != 99 || at != Time(7*ms) {
		t.Fatalf("v=%d at %v, want 99 at 7ms", v, at)
	}
}

func TestFutureWaitAfterSet(t *testing.T) {
	k := NewKernel()
	f := NewFuture[int](k)
	f.Set(7)
	var v int
	k.Spawn("waiter", func(p *Proc) { v = f.Wait(p) })
	k.Run()
	if v != 7 {
		t.Fatalf("v = %d, want 7", v)
	}
	defer func() {
		if recover() == nil {
			t.Error("double Set did not panic")
		}
	}()
	f.Set(8)
}

func TestFutureTrySet(t *testing.T) {
	k := NewKernel()
	f := NewFuture[int](k)
	if !f.TrySet(1) {
		t.Fatal("first TrySet refused")
	}
	if f.TrySet(2) {
		t.Fatal("second TrySet succeeded")
	}
	var got int
	k.Spawn("w", func(p *Proc) { got = f.Wait(p) })
	k.Run()
	if got != 1 {
		t.Fatalf("got %d, want the first value", got)
	}
}

func TestResourceSerializes(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "cpu")
	var finish []Time
	for i := 0; i < 3; i++ {
		k.Spawn("user", func(p *Proc) {
			r.Use(p, 10*ms)
			finish = append(finish, p.Now())
		})
	}
	k.Run()
	want := []Time{Time(10 * ms), Time(20 * ms), Time(30 * ms)}
	if len(finish) != 3 {
		t.Fatalf("finished %d, want 3", len(finish))
	}
	for i := range want {
		if finish[i] != want[i] {
			t.Errorf("finish %d at %v, want %v", i, finish[i], want[i])
		}
	}
	if got := r.BusyTime(); got != 30*ms {
		t.Errorf("BusyTime = %v, want 30ms", got)
	}
	if r.Uses() != 3 {
		t.Errorf("Uses = %d, want 3", r.Uses())
	}
	if r.MaxQueueLen() != 2 {
		t.Errorf("MaxQueueLen = %d, want 2", r.MaxQueueLen())
	}
}

func TestResourceUtilization(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "disk")
	k.Spawn("user", func(p *Proc) {
		r.Use(p, 25*ms)
		p.Sleep(75 * ms)
	})
	k.Run()
	if u := r.Utilization(0); u < 0.249 || u > 0.251 {
		t.Fatalf("Utilization = %v, want 0.25", u)
	}
}

func TestGaugePeakAndMean(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "cpu")
	g := NewGauge(k, r, 10*ms, Time(30*ms))
	k.Spawn("bursty", func(p *Proc) {
		r.Use(p, 10*ms)  // window 1: 100% busy
		p.Sleep(10 * ms) // window 2: idle
		r.Use(p, 5*ms)   // window 3: 50% busy
		p.Sleep(5 * ms)
	})
	k.RunUntil(Time(30 * ms))
	if p := g.Peak(); p < 0.99 {
		t.Errorf("Peak = %v, want ~1.0", p)
	}
	if m := g.Mean(); m < 0.49 || m > 0.51 {
		t.Errorf("Mean = %v, want 0.5", m)
	}
}

func TestRunUntilStopsClock(t *testing.T) {
	k := NewKernel()
	fired := false
	k.After(100*ms, func() { fired = true })
	end := k.RunUntil(Time(50 * ms))
	if fired {
		t.Error("event beyond horizon fired")
	}
	if end != Time(50*ms) {
		t.Errorf("clock = %v, want 50ms", end)
	}
	k.Run()
	if !fired {
		t.Error("event not fired by later Run")
	}
}

func TestStopInterruptsRun(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 1; i <= 10; i++ {
		k.After(Duration(i)*ms, func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	k.Run()
	if count != 3 {
		t.Fatalf("count = %d after Stop, want 3", count)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []Time {
		k := NewKernel()
		r := NewResource(k, "cpu")
		mb := NewMailbox[int](k)
		var trace []Time
		for i := 0; i < 4; i++ {
			i := i
			k.Spawn("w", func(p *Proc) {
				p.Sleep(Duration(i) * ms)
				r.Use(p, 3*ms)
				mb.Put(i)
				trace = append(trace, p.Now())
			})
		}
		k.Spawn("drain", func(p *Proc) {
			for i := 0; i < 4; i++ {
				mb.Get(p)
				trace = append(trace, p.Now())
			}
		})
		k.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
