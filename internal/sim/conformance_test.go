package sim

// Kernel conformance suite. These tests pin the scheduling semantics every
// experiment and determinism test depends on, written against the kernel
// BEFORE the scale refactor so the refactored kernel diffs green against
// them. Everything here is observable behavior — ordering, virtual
// timestamps, wake order — never internals, so the suite survives any
// re-implementation of the event queue.

import (
	"fmt"
	"testing"
	"time"
)

// TestConformanceSameInstantFIFO: events scheduled for the same virtual
// instant fire in scheduling order, even when scheduled from different
// contexts (kernel callbacks and processes) and interleaved with events at
// other instants.
func TestConformanceSameInstantFIFO(t *testing.T) {
	k := NewKernel()
	var order []string
	note := func(s string) func() {
		return func() { order = append(order, fmt.Sprintf("%s@%v", s, k.Now())) }
	}
	k.After(2*ms, note("c"))
	k.After(ms, note("a1"))
	k.After(ms, note("a2"))
	k.After(2*ms, note("d"))
	k.After(ms, note("a3"))
	k.Run()
	want := []string{"a1@1ms", "a2@1ms", "a3@1ms", "c@2ms", "d@2ms"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

// TestConformanceNowScheduledRunsAfterQueued: an event scheduled at the
// current instant from inside a firing event runs after every event already
// queued at that instant (later schedule = later sequence), but before any
// event at a later time.
func TestConformanceNowScheduledRunsAfterQueued(t *testing.T) {
	k := NewKernel()
	var order []string
	k.After(ms, func() {
		order = append(order, "first")
		// Scheduled mid-drain at the same instant: must follow "second".
		k.After(0, func() { order = append(order, "injected") })
	})
	k.After(ms, func() { order = append(order, "second") })
	k.After(ms+1, func() { order = append(order, "later") })
	k.Run()
	want := "[first second injected later]"
	if fmt.Sprint(order) != want {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

// TestConformanceNestedSameInstantChain: a chain of After(0) events all
// fire at one virtual instant, in creation order, to arbitrary depth.
func TestConformanceNestedSameInstantChain(t *testing.T) {
	k := NewKernel()
	var n int
	var chain func()
	chain = func() {
		n++
		if n < 100 {
			k.After(0, chain)
		}
	}
	k.After(5*ms, chain)
	end := k.Run()
	if n != 100 {
		t.Fatalf("chain fired %d times, want 100", n)
	}
	if end != Time(5*ms) {
		t.Fatalf("clock = %v, want 5ms (After(0) must not advance time)", end)
	}
}

// TestConformanceSleepZeroYields: Sleep(0) (Yield) reschedules the process
// after all events already queued at the present instant.
func TestConformanceSleepZeroYields(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Spawn("yielder", func(p *Proc) {
		order = append(order, "before-yield")
		p.Yield()
		order = append(order, "after-yield")
	})
	k.Spawn("other", func(p *Proc) {
		order = append(order, "other")
	})
	k.Run()
	want := "[before-yield other after-yield]"
	if fmt.Sprint(order) != want {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

// TestConformanceSpawnOrdering: Spawn schedules the process body like any
// other event at the current instant — processes start in spawn order,
// interleaved FIFO with plain events scheduled around them.
func TestConformanceSpawnOrdering(t *testing.T) {
	k := NewKernel()
	var order []string
	k.After(0, func() { order = append(order, "e1") })
	k.Spawn("p1", func(p *Proc) { order = append(order, "p1") })
	k.After(0, func() { order = append(order, "e2") })
	k.Spawn("p2", func(p *Proc) { order = append(order, "p2") })
	k.Run()
	want := "[e1 p1 e2 p2]"
	if fmt.Sprint(order) != want {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

// TestConformanceMailboxFIFOPerSender: values from one producer arrive in
// put order; with two producers alternating at distinct instants, the
// merged stream preserves each sender's order and global time order.
func TestConformanceMailboxFIFOPerSender(t *testing.T) {
	k := NewKernel()
	mb := NewMailbox[string](k)
	var got []string
	k.Spawn("a", func(p *Proc) {
		for i := 0; i < 3; i++ {
			mb.Put(fmt.Sprintf("a%d", i))
			p.Sleep(2 * ms)
		}
	})
	k.Spawn("b", func(p *Proc) {
		p.Sleep(ms)
		for i := 0; i < 3; i++ {
			mb.Put(fmt.Sprintf("b%d", i))
			p.Sleep(2 * ms)
		}
	})
	k.Spawn("rx", func(p *Proc) {
		for i := 0; i < 6; i++ {
			got = append(got, mb.Get(p))
		}
	})
	k.Run()
	want := "[a0 b0 a1 b1 a2 b2]"
	if fmt.Sprint(got) != want {
		t.Fatalf("got = %v, want %v", got, want)
	}
}

// TestConformanceMailboxWaitersWakeInParkOrder: multiple blocked receivers
// are served strictly in the order they parked.
func TestConformanceMailboxWaitersWakeInParkOrder(t *testing.T) {
	k := NewKernel()
	mb := NewMailbox[int](k)
	var order []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		k.Spawn(name, func(p *Proc) {
			v := mb.Get(p)
			order = append(order, fmt.Sprintf("%s=%d", name, v))
		})
	}
	k.After(ms, func() { mb.Put(10); mb.Put(20); mb.Put(30) })
	k.Run()
	want := "[w1=10 w2=20 w3=30]"
	if fmt.Sprint(order) != want {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

// TestConformanceMailboxTryGetNeverWakes: TryGet drains without parking and
// never consumes a queued wake belonging to a parked receiver.
func TestConformanceMailboxTryGetNeverWakes(t *testing.T) {
	k := NewKernel()
	mb := NewMailbox[int](k)
	if _, ok := mb.TryGet(); ok {
		t.Fatal("TryGet on empty mailbox returned a value")
	}
	mb.Put(1)
	if v, ok := mb.TryGet(); !ok || v != 1 {
		t.Fatalf("TryGet = %d,%v; want 1,true", v, ok)
	}
	if mb.Len() != 0 {
		t.Fatalf("Len = %d after drain, want 0", mb.Len())
	}
}

// TestConformanceResourceGrantOrder: contending processes acquire a
// resource in arrival order, each hold starting the instant the previous
// one ends, with exact busy accounting.
func TestConformanceResourceGrantOrder(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "cpu")
	var order []string
	for i := 0; i < 4; i++ {
		i := i
		k.Spawn(fmt.Sprintf("u%d", i), func(p *Proc) {
			p.Sleep(Duration(i) * time.Microsecond) // arrival order = spawn order
			r.Use(p, 5*ms)
			order = append(order, fmt.Sprintf("u%d@%v", i, p.Now()))
		})
	}
	k.Run()
	// Arrivals all precede the first completion, so holds run back to back:
	// each waiter wakes exactly when its predecessor's hold ends.
	want := fmt.Sprint([]string{"u0@5ms", "u1@10ms", "u2@15ms", "u3@20ms"})
	if fmt.Sprint(order) != want {
		t.Fatalf("order = %v, want %v", order, want)
	}
	if bt := r.BusyTime(); bt != 20*ms {
		t.Fatalf("BusyTime = %v, want 20ms", bt)
	}
}

// TestConformanceResourceZeroHold: a zero-duration Use still queues behind
// earlier holders and completes at the predecessor's finish instant.
func TestConformanceResourceZeroHold(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "cpu")
	var at Time
	k.Spawn("long", func(p *Proc) { r.Use(p, 10*ms) })
	k.Spawn("zero", func(p *Proc) {
		p.Sleep(ms) // arrive second
		r.Use(p, 0)
		at = p.Now()
	})
	k.Run()
	if at != Time(10*ms) {
		t.Fatalf("zero-hold completed at %v, want 10ms (after the long hold)", at)
	}
}

// TestConformanceStopWhileParked: Stop interrupts Run with processes still
// parked; their state is preserved and a later Run resumes them exactly
// where they would have woken.
func TestConformanceStopWhileParked(t *testing.T) {
	k := NewKernel()
	var woke []Time
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(10 * ms)
		woke = append(woke, p.Now())
		p.Sleep(10 * ms)
		woke = append(woke, p.Now())
	})
	k.After(ms, func() { k.Stop() })
	k.Run()
	if len(woke) != 0 {
		t.Fatalf("woke %d times under Stop, want 0", len(woke))
	}
	if k.Procs() != 1 {
		t.Fatalf("Procs = %d while parked, want 1", k.Procs())
	}
	k.Run()
	if fmt.Sprint(woke) != fmt.Sprint([]Time{Time(10 * ms), Time(20 * ms)}) {
		t.Fatalf("woke = %v, want [10ms 20ms]", woke)
	}
	if k.Procs() != 0 {
		t.Fatalf("Procs = %d after drain, want 0", k.Procs())
	}
}

// TestConformanceStopLeavesSameInstantEventsQueued: Stop takes effect after
// the current event; remaining events at the same instant stay queued, in
// order, for the next Run.
func TestConformanceStopLeavesSameInstantEventsQueued(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		k.After(ms, func() {
			order = append(order, i)
			if i == 1 {
				k.Stop()
			}
		})
	}
	k.Run()
	if fmt.Sprint(order) != "[0 1]" {
		t.Fatalf("order after Stop = %v, want [0 1]", order)
	}
	k.Run()
	if fmt.Sprint(order) != "[0 1 2 3 4]" {
		t.Fatalf("order after resume = %v, want [0 1 2 3 4]", order)
	}
}

// TestConformanceRunUntilBoundaryInclusive: RunUntil(t) fires events at
// exactly t, leaves events after t queued, and parks the clock at t even
// when the queue still holds later work.
func TestConformanceRunUntilBoundaryInclusive(t *testing.T) {
	k := NewKernel()
	var fired []string
	k.After(5*ms, func() { fired = append(fired, "at5") })
	k.After(5*ms+1, func() { fired = append(fired, "past") })
	end := k.RunUntil(Time(5 * ms))
	if fmt.Sprint(fired) != "[at5]" {
		t.Fatalf("fired = %v, want [at5]", fired)
	}
	if end != Time(5*ms) {
		t.Fatalf("clock = %v, want 5ms", end)
	}
	if k.Idle() {
		t.Fatal("Idle with a pending event past the horizon")
	}
	k.Run()
	if fmt.Sprint(fired) != "[at5 past]" {
		t.Fatalf("fired = %v after drain, want [at5 past]", fired)
	}
}

// TestConformanceRunUntilAdvancesIdleClock: RunUntil moves the clock to the
// horizon even with nothing scheduled, and never backward.
func TestConformanceRunUntilAdvancesIdleClock(t *testing.T) {
	k := NewKernel()
	if end := k.RunUntil(Time(time.Hour)); end != Time(time.Hour) {
		t.Fatalf("clock = %v, want 1h", end)
	}
	if end := k.RunUntil(Time(time.Minute)); end != Time(time.Hour) {
		t.Fatalf("clock = %v after past horizon, want to stay at 1h", end)
	}
}

// TestConformanceFutureWakesAllWaitersInOrder: Set wakes every waiter, in
// park order, at the set instant.
func TestConformanceFutureWakesAllWaitersInOrder(t *testing.T) {
	k := NewKernel()
	f := NewFuture[int](k)
	var order []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		k.Spawn(name, func(p *Proc) {
			v := f.Wait(p)
			order = append(order, fmt.Sprintf("%s=%d@%v", name, v, p.Now()))
		})
	}
	k.After(3*ms, func() { f.Set(7) })
	k.Run()
	want := "[w1=7@3ms w2=7@3ms w3=7@3ms]"
	if fmt.Sprint(order) != want {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

// TestConformanceInterleavedTimersAndProcs: a dense braid of timers,
// process sleeps, mailbox handoffs and resource holds replays to an
// identical event trace — the fingerprint-level property the experiment
// suite depends on, in miniature.
func TestConformanceInterleavedTimersAndProcs(t *testing.T) {
	run := func() string {
		k := NewKernel()
		r := NewResource(k, "dev")
		mb := NewMailbox[string](k)
		var log []string
		note := func(tag string) { log = append(log, fmt.Sprintf("%s@%v", tag, k.Now())) }
		for i := 0; i < 3; i++ {
			i := i
			k.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
				p.Sleep(Duration(i) * ms)
				r.Use(p, 2*ms)
				note(fmt.Sprintf("used%d", i))
				mb.Put(fmt.Sprintf("m%d", i))
			})
		}
		k.Spawn("rx", func(p *Proc) {
			for i := 0; i < 3; i++ {
				note("got:" + mb.Get(p))
			}
		})
		for i := 1; i <= 4; i++ {
			i := i
			k.After(Duration(i)*ms, func() { note(fmt.Sprintf("t%d", i)) })
		}
		k.Run()
		return fmt.Sprint(log)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("replay diverged:\n%s\n%s", a, b)
	}
	// Pinned from the pre-refactor kernel: plain timers scheduled before the
	// run carry lower sequence numbers than the resource-completion and
	// mailbox wake events created while running, so at a shared instant
	// (2ms, 4ms) the timer fires first.
	want := "[t1@1ms t2@2ms used0@2ms got:m0@2ms t3@3ms t4@4ms used1@4ms got:m1@4ms used2@6ms got:m2@6ms]"
	if a != want {
		t.Fatalf("trace = %s\nwant    %s", a, want)
	}
}
