package sim

// Mailbox is an unbounded FIFO queue connecting simulated processes. Put may
// be called from kernel context (an event callback) or from a running
// process; Get may only be called from a process and parks until a value is
// available.
//
// The queue and waiter list are head-indexed rings: Get consumes from the
// head without re-slicing the backing array away, so a steady-state
// producer/consumer pair recycles one allocation instead of growing and
// re-copying forever. Waking a receiver schedules the parked Proc directly
// (no closure), so Put is allocation-free once the ring is warm.
type Mailbox[T any] struct {
	k       *Kernel
	queue   []T
	qhead   int
	waiters []*Proc
	whead   int
}

// NewMailbox returns an empty mailbox on kernel k.
func NewMailbox[T any](k *Kernel) *Mailbox[T] {
	return &Mailbox[T]{k: k}
}

// Len reports the number of queued values.
func (m *Mailbox[T]) Len() int { return len(m.queue) - m.qhead }

// Put enqueues v. If a process is waiting, it is scheduled to wake at the
// current virtual time.
func (m *Mailbox[T]) Put(v T) {
	if m.qhead == len(m.queue) {
		// Empty: rewind to reuse the ring's capacity.
		m.queue = m.queue[:0]
		m.qhead = 0
	}
	m.queue = append(m.queue, v)
	if m.whead < len(m.waiters) {
		p := m.waiters[m.whead]
		m.waiters[m.whead] = nil
		m.whead++
		if m.whead == len(m.waiters) {
			m.waiters = m.waiters[:0]
			m.whead = 0
		}
		m.k.wakeAt(m.k.now, p)
	}
}

// Get dequeues the oldest value, parking the calling process until one is
// available.
func (m *Mailbox[T]) Get(p *Proc) T {
	for m.qhead == len(m.queue) {
		m.waiters = append(m.waiters, p)
		p.park()
	}
	var zero T
	v := m.queue[m.qhead]
	m.queue[m.qhead] = zero
	m.qhead++
	return v
}

// TryGet dequeues a value if one is present without parking.
func (m *Mailbox[T]) TryGet() (T, bool) {
	var zero T
	if m.qhead == len(m.queue) {
		return zero, false
	}
	v := m.queue[m.qhead]
	m.queue[m.qhead] = zero
	m.qhead++
	return v, true
}

// Future is a write-once value that processes can wait on. It is the reply
// slot for simulated RPCs.
type Future[T any] struct {
	k    *Kernel
	done bool
	v    T
	// The single-waiter case is nearly universal (one caller per reply
	// slot), so the first waiter is held inline; only a second concurrent
	// waiter allocates the overflow slice.
	w       *Proc
	waiters []*Proc
}

// NewFuture returns an unresolved future on kernel k.
func NewFuture[T any](k *Kernel) *Future[T] {
	return &Future[T]{k: k}
}

// Done reports whether the future has been resolved.
func (f *Future[T]) Done() bool { return f.done }

// TrySet resolves the future if it is still unresolved, reporting whether it
// did. Use it when several events race to resolve the same future (a reply
// racing a timeout).
func (f *Future[T]) TrySet(v T) bool {
	if f.done {
		return false
	}
	f.Set(v)
	return true
}

// Set resolves the future and wakes all waiters. Setting twice panics.
func (f *Future[T]) Set(v T) {
	if f.done {
		panic("sim: future set twice")
	}
	f.done = true
	f.v = v
	if f.w != nil {
		f.k.wakeAt(f.k.now, f.w)
		f.w = nil
	}
	for _, p := range f.waiters {
		f.k.wakeAt(f.k.now, p)
	}
	f.waiters = nil
}

// Wait parks the calling process until the future resolves, then returns the
// value.
func (f *Future[T]) Wait(p *Proc) T {
	for !f.done {
		if f.w == nil || f.w == p {
			f.w = p
		} else {
			f.waiters = append(f.waiters, p)
		}
		p.park()
	}
	return f.v
}
