package sim

// Mailbox is an unbounded FIFO queue connecting simulated processes. Put may
// be called from kernel context (an event callback) or from a running
// process; Get may only be called from a process and parks until a value is
// available.
type Mailbox[T any] struct {
	k       *Kernel
	queue   []T
	waiters []*Proc
}

// NewMailbox returns an empty mailbox on kernel k.
func NewMailbox[T any](k *Kernel) *Mailbox[T] {
	return &Mailbox[T]{k: k}
}

// Len reports the number of queued values.
func (m *Mailbox[T]) Len() int { return len(m.queue) }

// Put enqueues v. If a process is waiting, it is scheduled to wake at the
// current virtual time.
func (m *Mailbox[T]) Put(v T) {
	m.queue = append(m.queue, v)
	if len(m.waiters) > 0 {
		p := m.waiters[0]
		m.waiters = m.waiters[1:]
		m.k.After(0, func() { m.k.dispatch(p) })
	}
}

// Get dequeues the oldest value, parking the calling process until one is
// available.
func (m *Mailbox[T]) Get(p *Proc) T {
	for len(m.queue) == 0 {
		m.waiters = append(m.waiters, p)
		p.park()
	}
	v := m.queue[0]
	m.queue = m.queue[1:]
	return v
}

// TryGet dequeues a value if one is present without parking.
func (m *Mailbox[T]) TryGet() (T, bool) {
	var zero T
	if len(m.queue) == 0 {
		return zero, false
	}
	v := m.queue[0]
	m.queue = m.queue[1:]
	return v, true
}

// Future is a write-once value that processes can wait on. It is the reply
// slot for simulated RPCs.
type Future[T any] struct {
	k       *Kernel
	done    bool
	v       T
	waiters []*Proc
}

// NewFuture returns an unresolved future on kernel k.
func NewFuture[T any](k *Kernel) *Future[T] {
	return &Future[T]{k: k}
}

// Done reports whether the future has been resolved.
func (f *Future[T]) Done() bool { return f.done }

// TrySet resolves the future if it is still unresolved, reporting whether it
// did. Use it when several events race to resolve the same future (a reply
// racing a timeout).
func (f *Future[T]) TrySet(v T) bool {
	if f.done {
		return false
	}
	f.Set(v)
	return true
}

// Set resolves the future and wakes all waiters. Setting twice panics.
func (f *Future[T]) Set(v T) {
	if f.done {
		panic("sim: future set twice")
	}
	f.done = true
	f.v = v
	for _, p := range f.waiters {
		p := p
		f.k.After(0, func() { f.k.dispatch(p) })
	}
	f.waiters = nil
}

// Wait parks the calling process until the future resolves, then returns the
// value.
func (f *Future[T]) Wait(p *Proc) T {
	for !f.done {
		f.waiters = append(f.waiters, p)
		p.park()
	}
	return f.v
}
