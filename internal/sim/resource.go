package sim

// Resource models a serially-shared device (a server CPU, a disk arm, a
// network link) with a FIFO queue. Use acquires the resource, holds it for a
// virtual duration, and releases it; contending processes queue in arrival
// order. The resource accounts its cumulative busy time so callers can
// compute utilization over any observation interval.
type Resource struct {
	k    *Kernel
	name string

	busy    bool
	queue   []grant // head-indexed ring of waiters, in arrival order
	qhead   int
	serving grant // valid while busy

	busyTime  Duration // cumulative time spent busy
	busySince Time     // valid when busy
	uses      int64
	queuedMax int
}

// grant is one process's claim on the resource. Grants are values, queued in
// place: acquiring a contended resource allocates nothing once the ring is
// warm, and the hold-completion event is the Resource itself (via Fire), not
// a closure.
type grant struct {
	p    *Proc
	hold Duration
}

// NewResource returns an idle resource on kernel k.
func NewResource(k *Kernel, name string) *Resource {
	return &Resource{k: k, name: name}
}

// Name returns the name given at creation.
func (r *Resource) Name() string { return r.name }

// Kernel returns the owning kernel.
func (r *Resource) Kernel() *Kernel { return r.k }

// Use blocks the calling process until the resource is free, holds it for d,
// then releases it. A zero d acquires and releases immediately (still
// queueing behind earlier holders).
func (r *Resource) Use(p *Proc, d Duration) {
	if d < 0 {
		panic("sim: negative hold time")
	}
	if r.busy {
		if r.qhead == len(r.queue) {
			r.queue = r.queue[:0]
			r.qhead = 0
		}
		r.queue = append(r.queue, grant{p: p, hold: d})
		if n := len(r.queue) - r.qhead; n > r.queuedMax {
			r.queuedMax = n
		}
		p.park() // woken by release when it is our turn
	}
	r.start(grant{p: p, hold: d})
	p.park() // woken when the hold completes
}

// start begins serving g. The caller (Use, or Fire) has established that
// the resource is free.
func (r *Resource) start(g grant) {
	r.busy = true
	r.serving = g
	r.busySince = r.k.now
	r.uses++
	r.k.AfterFire(g.hold, r)
}

// Fire completes the current hold: account busy time, hand the resource to
// the next queued waiter (whose service begins at this instant), then wake
// the finished holder. It implements Firer so a hold completion schedules
// without allocating.
func (r *Resource) Fire() {
	r.busyTime += Duration(r.k.now - r.busySince)
	r.busy = false
	done := r.serving.p
	r.serving = grant{}
	if r.qhead < len(r.queue) {
		next := r.queue[r.qhead]
		r.queue[r.qhead] = grant{}
		r.qhead++
		if r.qhead == len(r.queue) {
			r.queue = r.queue[:0]
			r.qhead = 0
		}
		// Wake the next holder first so its service begins at this
		// instant; it calls start from its own goroutine via Use.
		r.k.dispatch(next.p)
	}
	r.k.dispatch(done)
}

// BusyTime returns the cumulative virtual time the resource has been busy,
// including the in-progress portion of a current hold.
func (r *Resource) BusyTime() Duration {
	bt := r.busyTime
	if r.busy {
		bt += Duration(r.k.now - r.busySince)
	}
	return bt
}

// Uses returns the number of completed or in-progress holds.
func (r *Resource) Uses() int64 { return r.uses }

// QueueLen returns the number of processes currently waiting.
func (r *Resource) QueueLen() int { return len(r.queue) - r.qhead }

// MaxQueueLen returns the high-water mark of the wait queue.
func (r *Resource) MaxQueueLen() int { return r.queuedMax }

// Utilization returns BusyTime divided by the elapsed interval since a
// reference time (typically the start of an observation window).
func (r *Resource) Utilization(since Time) float64 {
	elapsed := Duration(r.k.now - since)
	if elapsed <= 0 {
		return 0
	}
	return float64(r.BusyTime()) / float64(elapsed)
}

// Gauge samples a Resource's busy time over fixed windows so short-term
// peaks (the paper's "sometimes peaking at 98% server CPU utilization") can
// be reported alongside long-run averages.
type Gauge struct {
	res     *Resource
	window  Duration
	samples []float64
	lastBT  Duration
}

// NewGauge starts sampling res every window of virtual time until the
// horizon. A bounded horizon keeps the event queue finite, so Kernel.Run
// still terminates when real work drains.
func NewGauge(k *Kernel, res *Resource, window Duration, until Time) *Gauge {
	g := &Gauge{res: res, window: window, lastBT: res.BusyTime()}
	var tick func()
	tick = func() {
		bt := res.BusyTime()
		g.samples = append(g.samples, float64(bt-g.lastBT)/float64(window))
		g.lastBT = bt
		if k.Now().Add(window) <= until {
			k.After(window, tick)
		}
	}
	if k.Now().Add(window) <= until {
		k.After(window, tick)
	}
	return g
}

// Samples returns the per-window utilization series.
func (g *Gauge) Samples() []float64 { return g.samples }

// Peak returns the maximum per-window utilization observed (0 if no samples).
func (g *Gauge) Peak() float64 {
	var max float64
	for _, s := range g.samples {
		if s > max {
			max = s
		}
	}
	return max
}

// Mean returns the average per-window utilization (0 if no samples).
func (g *Gauge) Mean() float64 {
	if len(g.samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range g.samples {
		sum += s
	}
	return sum / float64(len(g.samples))
}
