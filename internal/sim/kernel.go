// Package sim provides a deterministic, process-oriented discrete-event
// simulation kernel.
//
// A Kernel advances a virtual clock over a timetable of events. Processes
// are ordinary goroutines that run one at a time under kernel control: a
// process runs until it parks (Sleep, mailbox receive, resource acquisition,
// future wait), at which point control returns to the kernel, which fires the
// next event. Events at equal times fire in scheduling order, so every run of
// a simulation is exactly reproducible.
//
// The one-runnable-at-a-time discipline means simulation state shared
// between processes needs no locking, provided a process never parks in the
// middle of a critical section. Code that is also used outside the simulator
// (for example the Vice server logic, which serves real TCP clients too)
// keeps its ordinary mutexes; the rule there is only that a lock is never
// held across a park point.
//
// # Scheduling internals
//
// The kernel is sized for tens of thousands of simulated processes, so the
// event queue is organized to make the common operations allocation-free:
//
//   - Events at the same virtual instant live in one bucket slice and are
//     drained in FIFO order by a cursor, with no per-event heap traffic; the
//     binary heap orders only the *distinct* pending instants. A burst of N
//     same-instant callbacks costs one heap operation, not N.
//   - An event is a 4-word value, not a pointer: scheduling appends to a
//     recycled bucket slice and allocates nothing in steady state.
//   - Process wake-ups (Sleep, mailbox, future, resource) are stored as the
//     *Proc itself rather than a closure; pooled consumer objects (netsim
//     frames, resource grants) schedule themselves via the Firer interface.
//     Only ad-hoc At/After callbacks pay for a closure.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, measured as an offset from the start of
// the simulation.
type Time time.Duration

// Duration re-exports time.Duration for virtual intervals.
type Duration = time.Duration

// String formats the virtual time as a duration offset.
func (t Time) String() string { return time.Duration(t).String() }

// Seconds reports the virtual time in seconds.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the interval t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Firer is an event body that schedules without allocating: anything with a
// Fire method can be passed to AtFire/AfterFire, so pooled objects (netsim
// frames, resource grants) carry their own callback state instead of a
// fresh closure per event.
type Firer interface{ Fire() }

// event is one scheduled callback. Exactly one of p, ps, fr, fn is set; they
// are checked in that order (process wake-ups dominate at scale). Events
// carry no timestamp: an event's instant is the bucket it lives in.
type event struct {
	p  *Proc  // wake this parked process
	ps *Proc  // start this not-yet-running process (its fn field holds the body)
	fr Firer  // pre-allocated event body
	fn func() // ad-hoc callback
}

// Kernel is a discrete-event simulation executive. The zero value is not
// usable; create one with NewKernel.
type Kernel struct {
	now Time

	// curr holds the events of the instant currently being drained (always
	// at virtual time now); curr[cursor:] are still to fire. Scheduling at
	// the current instant appends here, which preserves the global
	// schedule-order FIFO among same-instant events. times is a min-heap of
	// the distinct future instants, and buckets holds their event slices;
	// free recycles drained bucket slices.
	curr    []event
	cursor  int
	times   []Time
	buckets map[Time][]event
	free    [][]event

	parked  chan struct{} // signalled by a proc when it parks or exits
	stopped bool
	nprocs  int // live (spawned, not yet exited) processes
	current *Proc
}

// maxFreeBuckets bounds the recycled-slice pool; beyond it, drained bucket
// slices are dropped for the GC. The pool only needs to cover the working
// set of distinct pending instants.
const maxFreeBuckets = 64

// NewKernel returns a kernel with an empty event queue and the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{
		parked:  make(chan struct{}),
		buckets: make(map[Time][]event),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// At schedules fn to run in kernel context at virtual time t. Scheduling in
// the past (t < Now) panics: it would silently reorder causality.
func (k *Kernel) At(t Time, fn func()) { k.schedule(t, event{fn: fn}) }

// After schedules fn to run d from now.
func (k *Kernel) After(d Duration, fn func()) { k.schedule(k.now.Add(d), event{fn: fn}) }

// AtFire schedules f.Fire to run in kernel context at virtual time t,
// without allocating: f carries its own state.
func (k *Kernel) AtFire(t Time, f Firer) { k.schedule(t, event{fr: f}) }

// AfterFire schedules f.Fire to run d from now.
func (k *Kernel) AfterFire(d Duration, f Firer) { k.schedule(k.now.Add(d), event{fr: f}) }

// wakeAt schedules parked process p to resume at virtual time t.
func (k *Kernel) wakeAt(t Time, p *Proc) { k.schedule(t, event{p: p}) }

// schedule enqueues e at instant t, preserving the invariant that events at
// one instant fire in scheduling order: the current instant's events append
// to the live run queue, future instants append to their bucket.
func (k *Kernel) schedule(t Time, e event) {
	if t <= k.now {
		if t == k.now {
			k.curr = append(k.curr, e)
			return
		}
		panic(fmt.Sprintf("sim: event scheduled at %v before now %v", t, k.now))
	}
	b, ok := k.buckets[t]
	if !ok {
		k.pushTime(t)
		if n := len(k.free); n > 0 {
			b = k.free[n-1]
			k.free[n-1] = nil
			k.free = k.free[:n-1]
		}
	}
	k.buckets[t] = append(b, e)
}

// pushTime adds a distinct instant to the time heap (sift-up; hand-rolled to
// keep Time values out of interface boxes).
func (k *Kernel) pushTime(t Time) {
	h := append(k.times, t)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent] <= h[i] {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	k.times = h
}

// popTime removes and returns the earliest pending instant (sift-down).
func (k *Kernel) popTime() Time {
	h := k.times
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && h[r] < h[l] {
			min = r
		}
		if h[i] <= h[min] {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	k.times = h
	return top
}

// fire runs one event body.
func (k *Kernel) fire(e event) {
	switch {
	case e.p != nil:
		k.dispatch(e.p)
	case e.ps != nil:
		go e.ps.run()
		k.dispatch(e.ps)
	case e.fr != nil:
		e.fr.Fire()
	default:
		e.fn()
	}
}

// drained recycles the exhausted run queue. Every fired slot was already
// zeroed, so the slice can be reused without pinning dead closures.
func (k *Kernel) drained() {
	if cap(k.curr) > 0 && len(k.free) < maxFreeBuckets {
		k.free = append(k.free, k.curr[:0])
	}
	k.curr = nil
	k.cursor = 0
}

// advance installs the earliest pending bucket as the run queue and moves
// the clock to its instant. The caller has drained curr.
func (k *Kernel) advance() {
	t := k.popTime()
	k.now = t
	k.curr = k.buckets[t]
	k.cursor = 0
	delete(k.buckets, t)
}

// Stop makes Run return after the current event completes. Pending events
// remain queued; Run may be called again to continue.
func (k *Kernel) Stop() { k.stopped = true }

// Run fires events in time order until the queue is empty or Stop is called.
// It returns the virtual time at which it stopped.
func (k *Kernel) Run() Time {
	k.stopped = false
	for !k.stopped {
		if k.cursor < len(k.curr) {
			e := k.curr[k.cursor]
			k.curr[k.cursor] = event{}
			k.cursor++
			k.fire(e)
			continue
		}
		k.drained()
		if len(k.times) == 0 {
			break
		}
		k.advance()
	}
	return k.now
}

// RunUntil fires events until virtual time t (inclusive of events at t),
// the queue empties, or Stop is called. The clock is left at t if the run
// reached it.
func (k *Kernel) RunUntil(t Time) Time {
	k.stopped = false
	for !k.stopped && k.now <= t {
		if k.cursor < len(k.curr) {
			e := k.curr[k.cursor]
			k.curr[k.cursor] = event{}
			k.cursor++
			k.fire(e)
			continue
		}
		k.drained()
		if len(k.times) == 0 || k.times[0] > t {
			break
		}
		k.advance()
	}
	if !k.stopped && k.now < t {
		k.now = t
	}
	return k.now
}

// Idle reports whether no events are pending.
func (k *Kernel) Idle() bool { return k.cursor >= len(k.curr) && len(k.times) == 0 }

// Procs returns the number of live processes.
func (k *Kernel) Procs() int { return k.nprocs }

// Proc is a simulated process: a goroutine scheduled by the kernel. All Proc
// methods must be called from the process's own goroutine.
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{}
	fn     func(p *Proc) // body, until the process starts
	exited bool

	// Trace is proc-local storage for the ambient trace span of whatever
	// operation the process is currently executing (see internal/trace).
	// The kernel itself never reads or writes it. It is safe without
	// locking because only the owning process touches it, and processes
	// run one at a time.
	Trace any
}

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Spawn creates a process running fn, starting at the current virtual time
// (after already-queued events at that time).
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	return k.SpawnAt(k.now, name, fn)
}

// SpawnAt creates a process running fn, starting at virtual time t.
func (k *Kernel) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan struct{}), fn: fn}
	k.nprocs++
	k.schedule(t, event{ps: p})
	return p
}

// run is the body of a process goroutine: wait for the first dispatch, run
// the spawned function, then exit, returning control to the kernel.
func (p *Proc) run() {
	<-p.resume
	fn := p.fn
	p.fn = nil
	fn(p)
	p.exited = true
	p.k.nprocs--
	p.k.parked <- struct{}{}
}

// dispatch hands the CPU to p and waits for it to park or exit. Must be
// called from kernel context.
func (k *Kernel) dispatch(p *Proc) {
	prev := k.current
	k.current = p
	p.resume <- struct{}{}
	<-k.parked
	k.current = prev
}

// park suspends the calling process and returns control to the kernel. The
// process resumes when some event calls k.dispatch(p).
func (p *Proc) park() {
	p.k.parked <- struct{}{}
	<-p.resume
}

// Sleep suspends the process for virtual duration d.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	p.k.wakeAt(p.k.now.Add(d), p)
	p.park()
}

// Yield reschedules the process after all currently-queued events at the
// present instant.
func (p *Proc) Yield() { p.Sleep(0) }
