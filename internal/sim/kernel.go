// Package sim provides a deterministic, process-oriented discrete-event
// simulation kernel.
//
// A Kernel advances a virtual clock over a heap of timed events. Processes
// are ordinary goroutines that run one at a time under kernel control: a
// process runs until it parks (Sleep, mailbox receive, resource acquisition,
// future wait), at which point control returns to the kernel, which fires the
// next event. Events at equal times fire in scheduling order, so every run of
// a simulation is exactly reproducible.
//
// The one-runnable-at-a-time discipline means simulation state shared
// between processes needs no locking, provided a process never parks in the
// middle of a critical section. Code that is also used outside the simulator
// (for example the Vice server logic, which serves real TCP clients too)
// keeps its ordinary mutexes; the rule there is only that a lock is never
// held across a park point.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a point in virtual time, measured as an offset from the start of
// the simulation.
type Time time.Duration

// Duration re-exports time.Duration for virtual intervals.
type Duration = time.Duration

// String formats the virtual time as a duration offset.
func (t Time) String() string { return time.Duration(t).String() }

// Seconds reports the virtual time in seconds.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the interval t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulation executive. The zero value is not
// usable; create one with NewKernel.
type Kernel struct {
	now     Time
	seq     uint64
	events  eventHeap
	parked  chan struct{} // signalled by a proc when it parks or exits
	stopped bool
	nprocs  int // live (spawned, not yet exited) processes
	current *Proc
}

// NewKernel returns a kernel with an empty event queue and the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{parked: make(chan struct{})}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// At schedules fn to run in kernel context at virtual time t. Scheduling in
// the past (t < Now) panics: it would silently reorder causality.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: event scheduled at %v before now %v", t, k.now))
	}
	k.seq++
	heap.Push(&k.events, &event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d from now.
func (k *Kernel) After(d Duration, fn func()) { k.At(k.now.Add(d), fn) }

// Stop makes Run return after the current event completes. Pending events
// remain queued; Run may be called again to continue.
func (k *Kernel) Stop() { k.stopped = true }

// Run fires events in time order until the queue is empty or Stop is called.
// It returns the virtual time at which it stopped.
func (k *Kernel) Run() Time {
	k.stopped = false
	for len(k.events) > 0 && !k.stopped {
		e := heap.Pop(&k.events).(*event)
		k.now = e.at
		e.fn()
	}
	return k.now
}

// RunUntil fires events until virtual time t (inclusive of events at t),
// the queue empties, or Stop is called. The clock is left at t if the run
// reached it.
func (k *Kernel) RunUntil(t Time) Time {
	k.stopped = false
	for len(k.events) > 0 && !k.stopped && k.events[0].at <= t {
		e := heap.Pop(&k.events).(*event)
		k.now = e.at
		e.fn()
	}
	if !k.stopped && k.now < t {
		k.now = t
	}
	return k.now
}

// Idle reports whether no events are pending.
func (k *Kernel) Idle() bool { return len(k.events) == 0 }

// Procs returns the number of live processes.
func (k *Kernel) Procs() int { return k.nprocs }

// Proc is a simulated process: a goroutine scheduled by the kernel. All Proc
// methods must be called from the process's own goroutine.
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{}
	exited bool

	// Trace is proc-local storage for the ambient trace span of whatever
	// operation the process is currently executing (see internal/trace).
	// The kernel itself never reads or writes it. It is safe without
	// locking because only the owning process touches it, and processes
	// run one at a time.
	Trace any
}

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Spawn creates a process running fn, starting at the current virtual time
// (after already-queued events at that time).
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	return k.SpawnAt(k.now, name, fn)
}

// SpawnAt creates a process running fn, starting at virtual time t.
func (k *Kernel) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan struct{})}
	k.nprocs++
	k.At(t, func() {
		go func() {
			<-p.resume
			fn(p)
			p.exited = true
			k.nprocs--
			k.parked <- struct{}{}
		}()
		k.dispatch(p)
	})
	return p
}

// dispatch hands the CPU to p and waits for it to park or exit. Must be
// called from kernel context.
func (k *Kernel) dispatch(p *Proc) {
	prev := k.current
	k.current = p
	p.resume <- struct{}{}
	<-k.parked
	k.current = prev
}

// park suspends the calling process and returns control to the kernel. The
// process resumes when some event calls k.dispatch(p).
func (p *Proc) park() {
	p.k.parked <- struct{}{}
	<-p.resume
}

// Sleep suspends the process for virtual duration d.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	k := p.k
	k.After(d, func() { k.dispatch(p) })
	p.park()
}

// Yield reschedules the process after all currently-queued events at the
// present instant.
func (p *Proc) Yield() { p.Sleep(0) }
