// Package baseline implements the design alternative the paper argues
// against: a remote-open, page-at-a-time file service in the style of Locus
// or a diskless workstation's disk server (§2.3, §6.3). Every read and
// write of an open remote file is an RPC to the server that stores it;
// nothing is cached on the workstation.
//
// The evaluation uses it as the comparator for whole-file transfer
// (experiment E8): page access pays per-operation protocol overhead on
// every read and keeps the server in the loop between open and close, while
// whole-file caching contacts custodians only at opens and closes. The
// honest flip side also falls out: for a small read out of a very large
// file, paging wins — which is exactly why the paper limits its design to
// files "up to a few megabytes" (§2.2).
package baseline

import (
	"sync"
	"time"

	"itcfs/internal/proto"
	"itcfs/internal/rpc"
	"itcfs/internal/sim"
	"itcfs/internal/unixfs"
	"itcfs/internal/wire"
)

// PageSize is the transfer unit, a 4 KB page.
const PageSize = 4096

// Ops of the page protocol (distinct from the Vice range).
const (
	OpOpen  = 100
	OpRead  = 101
	OpWrite = 102
	OpClose = 103
	OpStat  = 104
)

// Server is a page server over an in-memory Unix file system.
type Server struct {
	mu     sync.Mutex
	fs     *unixfs.FS
	disp   *rpc.Server
	nextFD uint64 // guarded by mu
	// guarded by mu
	open map[uint64]string // fd -> path

	reads, writes, opens int64 // guarded by mu
}

// NewServer builds a page server around fs.
func NewServer(fs *unixfs.FS) *Server {
	s := &Server{fs: fs, disp: rpc.NewServer(), open: make(map[uint64]string)}
	s.disp.Handle(OpOpen, s.handleOpen)
	s.disp.Handle(OpRead, s.handleRead)
	s.disp.Handle(OpWrite, s.handleWrite)
	s.disp.Handle(OpClose, s.handleClose)
	s.disp.Handle(OpStat, s.handleStat)
	return s
}

// FS returns the backing file system (for populating test data).
func (s *Server) FS() *unixfs.FS { return s.fs }

// Dispatcher returns the handler set to bind to a transport.
func (s *Server) Dispatcher() *rpc.Server { return s.disp }

// OpCounts reports opens, page reads and page writes served.
func (s *Server) OpCounts() (opens, reads, writes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.opens, s.reads, s.writes
}

func (s *Server) handleOpen(_ rpc.Ctx, req rpc.Request) rpc.Response {
	d := wire.NewDecoder(req.Body)
	path := d.String()
	create := d.Bool()
	if d.Close() != nil {
		return rpc.Response{Code: proto.CodeBadRequest}
	}
	if !s.fs.Exists(path) {
		if !create {
			return rpc.Response{Code: proto.CodeNoEnt, Body: []byte(path)}
		}
		if err := s.fs.WriteFile(path, nil, 0o644, ""); err != nil {
			return rpc.Response{Code: proto.ErrToCode(err), Body: []byte(err.Error())}
		}
	}
	st, err := s.fs.Stat(path)
	if err != nil {
		return rpc.Response{Code: proto.ErrToCode(err), Body: []byte(err.Error())}
	}
	s.mu.Lock()
	s.nextFD++
	fd := s.nextFD
	s.open[fd] = path
	s.opens++
	s.mu.Unlock()
	var e wire.Encoder
	e.U64(fd)
	e.I64(st.Size)
	return rpc.Response{Body: append([]byte(nil), e.Buf()...)}
}

func (s *Server) path(fd uint64) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.open[fd]
	return p, ok
}

func (s *Server) handleRead(_ rpc.Ctx, req rpc.Request) rpc.Response {
	d := wire.NewDecoder(req.Body)
	fd := d.U64()
	off := d.I64()
	n := d.Int()
	if d.Close() != nil || n <= 0 || n > PageSize {
		return rpc.Response{Code: proto.CodeBadRequest}
	}
	path, ok := s.path(fd)
	if !ok {
		return rpc.Response{Code: proto.CodeStale}
	}
	buf := make([]byte, n)
	got, err := s.fs.ReadAt(path, buf, off)
	if err != nil {
		return rpc.Response{Code: proto.ErrToCode(err), Body: []byte(err.Error())}
	}
	s.mu.Lock()
	s.reads++
	s.mu.Unlock()
	return rpc.Response{Bulk: buf[:got]}
}

func (s *Server) handleWrite(_ rpc.Ctx, req rpc.Request) rpc.Response {
	d := wire.NewDecoder(req.Body)
	fd := d.U64()
	off := d.I64()
	if d.Close() != nil || len(req.Bulk) > PageSize {
		return rpc.Response{Code: proto.CodeBadRequest}
	}
	path, ok := s.path(fd)
	if !ok {
		return rpc.Response{Code: proto.CodeStale}
	}
	if _, err := s.fs.WriteAt(path, req.Bulk, off); err != nil {
		return rpc.Response{Code: proto.ErrToCode(err), Body: []byte(err.Error())}
	}
	s.mu.Lock()
	s.writes++
	s.mu.Unlock()
	return rpc.Response{}
}

func (s *Server) handleClose(_ rpc.Ctx, req rpc.Request) rpc.Response {
	d := wire.NewDecoder(req.Body)
	fd := d.U64()
	if d.Close() != nil {
		return rpc.Response{Code: proto.CodeBadRequest}
	}
	s.mu.Lock()
	delete(s.open, fd)
	s.mu.Unlock()
	return rpc.Response{}
}

func (s *Server) handleStat(_ rpc.Ctx, req rpc.Request) rpc.Response {
	d := wire.NewDecoder(req.Body)
	path := d.String()
	if d.Close() != nil {
		return rpc.Response{Code: proto.CodeBadRequest}
	}
	st, err := s.fs.Stat(path)
	if err != nil {
		return rpc.Response{Code: proto.ErrToCode(err), Body: []byte(err.Error())}
	}
	var e wire.Encoder
	e.I64(st.Size)
	e.U64(st.Version)
	return rpc.Response{Body: append([]byte(nil), e.Buf()...)}
}

// Conn abstracts the transport, as in venus.
type Conn interface {
	Call(p *sim.Proc, req rpc.Request) (rpc.Response, error)
}

// Client accesses remote files page by page with no local cache.
type Client struct {
	conn Conn
}

// NewClient wraps a connection to a page server.
func NewClient(conn Conn) *Client {
	return &Client{conn: conn}
}

// File is an open remote file.
type File struct {
	c    *Client
	fd   uint64
	size int64
}

func respErr(resp rpc.Response, err error) error {
	if err != nil {
		return err
	}
	if !resp.OK() {
		return proto.CodeToErr(resp.Code, string(resp.Body))
	}
	return nil
}

// Open opens (optionally creating) a remote file.
func (c *Client) Open(p *sim.Proc, path string, create bool) (*File, error) {
	var e wire.Encoder
	e.String(path)
	e.Bool(create)
	resp, err := c.conn.Call(p, rpc.Request{Op: OpOpen, Body: append([]byte(nil), e.Buf()...)})
	if err := respErr(resp, err); err != nil {
		return nil, err
	}
	d := wire.NewDecoder(resp.Body)
	f := &File{c: c, fd: d.U64(), size: d.I64()}
	if err := d.Close(); err != nil {
		return nil, err
	}
	return f, nil
}

// Size returns the size reported at open.
func (f *File) Size() int64 { return f.size }

// ReadAt fetches up to len(buf) bytes at off, one page per RPC.
func (f *File) ReadAt(p *sim.Proc, buf []byte, off int64) (int, error) {
	total := 0
	for total < len(buf) {
		want := len(buf) - total
		if want > PageSize {
			want = PageSize
		}
		var e wire.Encoder
		e.U64(f.fd)
		e.I64(off + int64(total))
		e.Int(want)
		resp, err := f.c.conn.Call(p, rpc.Request{Op: OpRead, Body: append([]byte(nil), e.Buf()...)})
		if err := respErr(resp, err); err != nil {
			return total, err
		}
		n := copy(buf[total:], resp.Bulk)
		total += n
		if len(resp.Bulk) < want {
			return total, nil // EOF
		}
	}
	return total, nil
}

// WriteAt writes buf at off, one page per RPC.
func (f *File) WriteAt(p *sim.Proc, buf []byte, off int64) (int, error) {
	total := 0
	for total < len(buf) {
		n := len(buf) - total
		if n > PageSize {
			n = PageSize
		}
		var e wire.Encoder
		e.U64(f.fd)
		e.I64(off + int64(total))
		resp, err := f.c.conn.Call(p, rpc.Request{
			Op:   OpWrite,
			Body: append([]byte(nil), e.Buf()...),
			Bulk: buf[total : total+n],
		})
		if err := respErr(resp, err); err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// Close releases the remote descriptor.
func (f *File) Close(p *sim.Proc) error {
	var e wire.Encoder
	e.U64(f.fd)
	resp, err := f.c.conn.Call(p, rpc.Request{Op: OpClose, Body: append([]byte(nil), e.Buf()...)})
	return respErr(resp, err)
}

// ReadFile reads a whole remote file page by page.
func (c *Client) ReadFile(p *sim.Proc, path string) ([]byte, error) {
	f, err := c.Open(p, path, false)
	if err != nil {
		return nil, err
	}
	defer f.Close(p)
	out := make([]byte, f.size)
	n, err := f.ReadAt(p, out, 0)
	return out[:n], err
}

// WriteFile writes a whole remote file page by page.
func (c *Client) WriteFile(p *sim.Proc, path string, data []byte) error {
	f, err := c.Open(p, path, true)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(p, data, 0); err != nil {
		f.Close(p)
		return err
	}
	return f.Close(p)
}

// Costs builds the server cost model for the page protocol, using the same
// per-call and per-byte charges as the Vice model so the comparison is
// fair: the difference measured in E8 is protocol structure, not hardware.
func Costs(baseCPU, perKBCPU, diskOp, perKBDisk time.Duration) rpc.CostModel {
	return func(_ rpc.Ctx, req rpc.Request, resp rpc.Response) rpc.Cost {
		cost := rpc.Cost{CPU: baseCPU}
		kb := time.Duration((len(req.Bulk) + len(resp.Bulk) + 1023) / 1024)
		cost.CPU += kb * perKBCPU
		switch req.Op {
		case OpRead, OpWrite:
			cost.Disk = diskOp + kb*perKBDisk
		}
		return cost
	}
}
