package baseline

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"itcfs/internal/netsim"
	"itcfs/internal/proto"
	"itcfs/internal/rpc"
	"itcfs/internal/secure"
	"itcfs/internal/sim"
	"itcfs/internal/unixfs"
)

// directConn dispatches straight into the server for logic tests.
type directConn struct{ srv *Server }

func (c directConn) Call(p *sim.Proc, req rpc.Request) (rpc.Response, error) {
	return c.srv.Dispatcher().Dispatch(rpc.Ctx{User: "u"}, req), nil
}

func newPair(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv := NewServer(unixfs.New(nil))
	return srv, NewClient(directConn{srv})
}

func TestReadWriteRoundTrip(t *testing.T) {
	srv, c := newPair(t)
	data := bytes.Repeat([]byte("0123456789abcdef"), 1000) // 16000 bytes, ~4 pages
	if err := c.WriteFile(nil, "/f", data); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadFile(nil, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %d bytes, want %d", len(got), len(data))
	}
	opens, reads, writes := srv.OpCounts()
	if opens != 2 {
		t.Errorf("opens = %d", opens)
	}
	// 16000 bytes / 4096 page = 4 page ops each way.
	if reads != 4 || writes != 4 {
		t.Errorf("reads = %d writes = %d, want 4 each", reads, writes)
	}
}

func TestPartialReadTouchesOnePage(t *testing.T) {
	srv, c := newPair(t)
	big := make([]byte, 1<<20)
	if err := srv.FS().WriteFile("/big", big, 0o644, ""); err != nil {
		t.Fatal(err)
	}
	f, err := c.Open(nil, "/big", false)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close(nil)
	buf := make([]byte, 100)
	if _, err := f.ReadAt(nil, buf, 4096*17); err != nil {
		t.Fatal(err)
	}
	_, reads, _ := srv.OpCounts()
	if reads != 1 {
		t.Fatalf("reads = %d, want 1 — partial access is paging's strength", reads)
	}
}

func TestMissingFile(t *testing.T) {
	_, c := newPair(t)
	if _, err := c.Open(nil, "/ghost", false); !errors.Is(err, proto.ErrNoEnt) {
		t.Fatalf("err = %v", err)
	}
}

func TestStaleFDRejected(t *testing.T) {
	_, c := newPair(t)
	if err := c.WriteFile(nil, "/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	f, err := c.Open(nil, "/f", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(nil); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := f.ReadAt(nil, buf, 0); !errors.Is(err, proto.ErrStale) {
		t.Fatalf("err = %v", err)
	}
}

func TestEveryReadIsAnRPCOverTheNetwork(t *testing.T) {
	// Over the simulated network, a sequential scan of a 64 KB file costs
	// one round trip per page — the protocol overhead whole-file transfer
	// avoids (§3.2).
	k := sim.NewKernel()
	net := netsim.New(k, netsim.ITCDefaults())
	cl := net.AddCluster("c0")
	sn := net.AddNode("server", cl)
	cn := net.AddNode("client", cl)
	srv := NewServer(unixfs.New(nil))
	key := secure.DeriveKey("u", "pw")
	keys := func(user string) (secure.Key, bool) { return key, user == "u" }
	cpu := sim.NewResource(k, "cpu")
	rpc.NewEndpoint(net, sn, rpc.EndpointConfig{
		Keys:   keys,
		Server: srv.Dispatcher(),
		Meters: rpc.Meters{CPU: cpu},
		Model:  Costs(4*time.Millisecond, 400*time.Microsecond, 30*time.Millisecond, 700*time.Microsecond),
	})
	clientEP := rpc.NewEndpoint(net, cn, rpc.EndpointConfig{})

	data := make([]byte, 64<<10)
	if err := srv.FS().WriteFile("/big", data, 0o644, ""); err != nil {
		t.Fatal(err)
	}
	var elapsed time.Duration
	var readErr error
	k.Spawn("client", func(p *sim.Proc) {
		conn, err := clientEP.Dial(p, sn.ID, "u", key)
		if err != nil {
			readErr = err
			return
		}
		c := NewClient(conn)
		start := p.Now()
		got, err := c.ReadFile(p, "/big")
		if err != nil || len(got) != 64<<10 {
			readErr = err
			return
		}
		elapsed = p.Now().Sub(start)
	})
	k.Run()
	if readErr != nil {
		t.Fatal(readErr)
	}
	_, reads, _ := srv.OpCounts()
	if reads != 16 {
		t.Fatalf("reads = %d, want 16 pages", reads)
	}
	if elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if cpu.BusyTime() == 0 {
		t.Fatal("server CPU uncharged")
	}
}
