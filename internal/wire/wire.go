// Package wire provides hand-written binary marshalling for the Vice-Virtue
// protocol. Encoding is explicit and reflection-free: every protocol message
// implements Encode/Decode against the Encoder and Decoder here, so the byte
// count of every call is exact — the simulator charges network time from
// these sizes, and the TCP transport writes the same bytes.
//
// All integers are little-endian. Variable-length fields (strings, byte
// slices) carry a u32 length prefix.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// ErrTruncated is returned when a decoder runs out of bytes.
var ErrTruncated = errors.New("wire: truncated message")

// ErrTooLong is returned when a length prefix exceeds the decoder's sanity
// limit. It guards servers against hostile or corrupt frames.
var ErrTooLong = errors.New("wire: declared length too long")

// MaxField caps any single variable-length field.
const MaxField = 64 << 20

// Encoder accumulates a binary message. The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// Buf returns the encoded message. The slice aliases the encoder's buffer.
func (e *Encoder) Buf() []byte { return e.buf }

// Len returns the number of encoded bytes.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards the buffer contents, retaining capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// U8 appends a byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U16 appends a little-endian uint16.
func (e *Encoder) U16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends a little-endian int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as an int64.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Bytes appends a u32 length prefix and the raw bytes.
func (e *Encoder) Bytes(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a u32 length prefix and the string bytes.
func (e *Encoder) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Raw appends bytes with no length prefix.
func (e *Encoder) Raw(b []byte) { e.buf = append(e.buf, b...) }

// ListLen appends a u32 element count for a variable-length list. The
// matching Decoder.ListLen validates the count against the bytes actually
// present, so list encodings should always pair these two.
func (e *Encoder) ListLen(n int) { e.U32(uint32(n)) }

// Decoder consumes a binary message. Errors are sticky: after the first
// failure every accessor returns a zero value and Err reports the cause.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over buf. The decoder does not copy buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Reset re-points d at buf, clearing position and error state. It lets hot
// paths run a stack-allocated Decoder instead of a fresh heap one per
// message.
func (d *Decoder) Reset(buf []byte) { *d = Decoder{buf: buf} }

// Err returns the first decoding error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unconsumed bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Close verifies the decoder consumed the whole message without error.
func (d *Decoder) Close() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("wire: %d trailing bytes", len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) || n < 0 {
		d.err = ErrTruncated
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 consumes a byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 consumes a little-endian uint16.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 consumes a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 consumes a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 consumes a little-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int consumes an int encoded as int64.
func (d *Decoder) Int() int { return int(d.I64()) }

// Bool consumes a one-byte boolean.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// Bytes consumes a u32 length prefix and that many bytes. The returned slice
// aliases the decoder's buffer.
func (d *Decoder) Bytes() []byte {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	if n > MaxField {
		d.err = ErrTooLong
		return nil
	}
	return d.take(int(n))
}

// String consumes a u32 length prefix and that many bytes as a string.
func (d *Decoder) String() string { return string(d.Bytes()) }

// ListLen consumes a u32 element count and validates it against the bytes
// remaining: each element occupies at least minElemSize bytes, so a hostile
// count that could not possibly be satisfied fails immediately instead of
// driving a huge preallocation in the caller. minElemSize must be ≥ 1.
func (d *Decoder) ListLen(minElemSize int) int {
	n := d.U32()
	if d.err != nil {
		return 0
	}
	if minElemSize < 1 {
		minElemSize = 1
	}
	if int64(n)*int64(minElemSize) > int64(d.Remaining()) {
		d.err = ErrTruncated
		return 0
	}
	return int(n)
}

// TraceHeader carries distributed-tracing context across an RPC boundary:
// the trace the call belongs to and the span that originated it. The zero
// value means "untraced" and is what untraced or sampled-out callers send.
// The header is a fixed 16 bytes and is always present in call packets, so
// enabling tracing never changes packet sizes or, with it, simulated time.
type TraceHeader struct {
	Trace uint64
	Span  uint64
}

// Encode appends the header's fixed 16-byte form.
func (h TraceHeader) Encode(e *Encoder) {
	e.U64(h.Trace)
	e.U64(h.Span)
}

// DecodeTraceHeader consumes a TraceHeader.
func DecodeTraceHeader(d *Decoder) TraceHeader {
	return TraceHeader{Trace: d.U64(), Span: d.U64()}
}

// Message is anything that can marshal itself onto an Encoder.
type Message interface {
	Encode(e *Encoder)
}

// encoders pools Marshal scratch buffers. Messages are encoded by appending
// piecewise, so a fresh Encoder pays a chain of growth reallocations per
// message; reusing warmed buffers leaves exactly one exact-size allocation
// per Marshal (the returned copy).
var encoders = sync.Pool{New: func() any { return new(Encoder) }}

// GetEncoder returns an empty Encoder from an internal pool. Hand it back
// with PutEncoder after copying the bytes out.
func GetEncoder() *Encoder {
	e := encoders.Get().(*Encoder)
	e.Reset()
	return e
}

// PutEncoder returns e to the pool. The caller must not retain e.Buf().
func PutEncoder(e *Encoder) { encoders.Put(e) }

// Marshal encodes m into a fresh byte slice.
func Marshal(m Message) []byte {
	e := GetEncoder()
	m.Encode(e)
	out := make([]byte, len(e.buf))
	copy(out, e.buf)
	PutEncoder(e)
	return out
}

// Frame I/O: a frame is a u32 length followed by that many payload bytes.
// The TCP transport uses frames; the simulated transport carries the same
// payloads in netsim messages, so byte counts agree across transports.

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame, enforcing the MaxField limit.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxField {
		return nil, ErrTooLong
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
