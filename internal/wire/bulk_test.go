package wire_test

// Round-trip and fuzz coverage for the bulk (list-carrying) protocol
// messages. These live in an external test package so they can exercise the
// real proto encoders on top of the wire layer without an import cycle.

import (
	"bytes"
	"reflect"
	"testing"

	"itcfs/internal/proto"
	"itcfs/internal/wire"
)

func bulkFID(i uint32) proto.FID {
	return proto.FID{Volume: 7 + i, Vnode: 100 + i, Uniq: 3 * i}
}

func TestBulkTestValidArgsRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		args proto.BulkTestValidArgs
	}{
		{"empty", proto.BulkTestValidArgs{}},
		{"one", proto.BulkTestValidArgs{Items: []proto.TestValidArgs{
			{Ref: proto.Ref{FID: bulkFID(1)}, Version: 9},
		}}},
		{"mixed refs", proto.BulkTestValidArgs{Items: []proto.TestValidArgs{
			{Ref: proto.Ref{Path: "/vice/usr/satya/paper.mss"}, Version: 1},
			{Ref: proto.Ref{FID: bulkFID(2), Path: "/hint"}, Version: 1 << 40},
			{Ref: proto.Ref{FID: bulkFID(3)}, Version: 0},
		}}},
		{"max batch", proto.BulkTestValidArgs{Items: func() []proto.TestValidArgs {
			items := make([]proto.TestValidArgs, proto.MaxBulkItems)
			for i := range items {
				items[i] = proto.TestValidArgs{Ref: proto.Ref{FID: bulkFID(uint32(i))}, Version: uint64(i)}
			}
			return items
		}()}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body := proto.Marshal(tc.args)
			got, err := proto.Unmarshal(body, proto.DecodeBulkTestValidArgs)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if len(got.Items) != len(tc.args.Items) {
				t.Fatalf("decoded %d items, want %d", len(got.Items), len(tc.args.Items))
			}
			if !reflect.DeepEqual(normTestValid(got.Items), normTestValid(tc.args.Items)) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got.Items, tc.args.Items)
			}
			if !bytes.Equal(proto.Marshal(got), body) {
				t.Fatal("re-encoding decoded args is not byte-identical")
			}
		})
	}
}

// normTestValid maps a nil slice to an empty one so DeepEqual compares
// contents, not allocation history.
func normTestValid(items []proto.TestValidArgs) []proto.TestValidArgs {
	if items == nil {
		return []proto.TestValidArgs{}
	}
	return items
}

func TestBulkTestValidReplyRoundTrip(t *testing.T) {
	reply := proto.BulkTestValidReply{Items: []proto.TestValidReply{
		{Valid: true, Version: 4},
		{Valid: false, Version: 0},
		{Valid: true, Version: 1 << 50},
	}}
	body := proto.Marshal(reply)
	got, err := proto.Unmarshal(body, proto.DecodeBulkTestValidReply)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, reply) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, reply)
	}
	if !bytes.Equal(proto.Marshal(got), body) {
		t.Fatal("re-encoding decoded reply is not byte-identical")
	}
}

func TestBulkBreakArgsRoundTrip(t *testing.T) {
	args := proto.BulkBreakArgs{Items: []proto.CallbackBreakArgs{
		{FID: bulkFID(1), Path: "/vice/usr/load/shared/s001"},
		{FID: bulkFID(2), Path: ""},
		{FID: proto.FID{}, Path: "/just/a/path"},
	}}
	body := proto.Marshal(args)
	got, err := proto.Unmarshal(body, proto.DecodeBulkBreakArgs)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, args) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, args)
	}
	if !bytes.Equal(proto.Marshal(got), body) {
		t.Fatal("re-encoding decoded args is not byte-identical")
	}
}

// TestBulkDecodeRejectsLyingCounts feeds bodies whose leading list length
// promises more items than the bytes can hold: the decoder must error, not
// allocate or loop.
func TestBulkDecodeRejectsLyingCounts(t *testing.T) {
	var e wire.Encoder
	e.U32(1 << 30) // count far beyond the remaining bytes
	e.U32(0)
	body := e.Buf()
	if _, err := proto.Unmarshal(body, proto.DecodeBulkTestValidArgs); err == nil {
		t.Error("BulkTestValidArgs accepted a lying count")
	}
	if _, err := proto.Unmarshal(body, proto.DecodeBulkTestValidReply); err == nil {
		t.Error("BulkTestValidReply accepted a lying count")
	}
	if _, err := proto.Unmarshal(body, proto.DecodeBulkBreakArgs); err == nil {
		t.Error("BulkBreakArgs accepted a lying count")
	}
}

// TestBulkDecodeTruncations decodes every prefix of a valid body: none may
// panic, and only the full body may succeed.
func TestBulkDecodeTruncations(t *testing.T) {
	args := proto.BulkTestValidArgs{Items: []proto.TestValidArgs{
		{Ref: proto.Ref{FID: bulkFID(1), Path: "/a"}, Version: 1},
		{Ref: proto.Ref{FID: bulkFID(2)}, Version: 2},
	}}
	body := proto.Marshal(args)
	for n := 0; n < len(body); n++ {
		if _, err := proto.Unmarshal(body[:n], proto.DecodeBulkTestValidArgs); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded without error", n, len(body))
		}
	}
	if _, err := proto.Unmarshal(body, proto.DecodeBulkTestValidArgs); err != nil {
		t.Fatalf("full body failed: %v", err)
	}
}

// FuzzDecodeBulkTestValid hammers the batched-validation decoders with
// arbitrary bodies. Any input may be rejected, but a decode that succeeds
// must re-encode byte-identically (the canonical-encoding property every
// deterministic export relies on).
func FuzzDecodeBulkTestValid(f *testing.F) {
	f.Add([]byte{})
	f.Add(proto.Marshal(proto.BulkTestValidArgs{Items: []proto.TestValidArgs{
		{Ref: proto.Ref{FID: bulkFID(1), Path: "/x"}, Version: 5},
	}}))
	f.Add(proto.Marshal(proto.BulkTestValidReply{Items: []proto.TestValidReply{
		{Valid: true, Version: 5},
	}}))
	f.Fuzz(func(t *testing.T, body []byte) {
		if args, err := proto.Unmarshal(body, proto.DecodeBulkTestValidArgs); err == nil {
			if !bytes.Equal(proto.Marshal(args), body) {
				t.Fatal("BulkTestValidArgs decode/encode not canonical")
			}
		}
		if reply, err := proto.Unmarshal(body, proto.DecodeBulkTestValidReply); err == nil {
			// Bool fields accept any nonzero byte, so the first decode may
			// normalize; after one re-encode the form must be stable.
			norm := proto.Marshal(reply)
			again, err := proto.Unmarshal(norm, proto.DecodeBulkTestValidReply)
			if err != nil {
				t.Fatalf("re-decoding a re-encoded reply failed: %v", err)
			}
			if !bytes.Equal(proto.Marshal(again), norm) {
				t.Fatal("BulkTestValidReply encode/decode does not stabilize")
			}
		}
	})
}

// FuzzDecodeBulkBreak does the same for the batched invalidation message.
func FuzzDecodeBulkBreak(f *testing.F) {
	f.Add([]byte{})
	f.Add(proto.Marshal(proto.BulkBreakArgs{Items: []proto.CallbackBreakArgs{
		{FID: bulkFID(1), Path: "/x"},
	}}))
	f.Fuzz(func(t *testing.T, body []byte) {
		if args, err := proto.Unmarshal(body, proto.DecodeBulkBreakArgs); err == nil {
			if !bytes.Equal(proto.Marshal(args), body) {
				t.Fatal("BulkBreakArgs decode/encode not canonical")
			}
		}
	})
}
