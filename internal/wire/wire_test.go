package wire

import (
	"bytes"
	"io"
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTripScalars(t *testing.T) {
	var e Encoder
	e.U8(0xAB)
	e.U16(0xBEEF)
	e.U32(0xDEADBEEF)
	e.U64(math.MaxUint64 - 7)
	e.I64(-42)
	e.Int(123456)
	e.Bool(true)
	e.Bool(false)

	d := NewDecoder(e.Buf())
	if v := d.U8(); v != 0xAB {
		t.Errorf("U8 = %#x", v)
	}
	if v := d.U16(); v != 0xBEEF {
		t.Errorf("U16 = %#x", v)
	}
	if v := d.U32(); v != 0xDEADBEEF {
		t.Errorf("U32 = %#x", v)
	}
	if v := d.U64(); v != math.MaxUint64-7 {
		t.Errorf("U64 = %#x", v)
	}
	if v := d.I64(); v != -42 {
		t.Errorf("I64 = %d", v)
	}
	if v := d.Int(); v != 123456 {
		t.Errorf("Int = %d", v)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round-trip failed")
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestRoundTripStringsAndBytes(t *testing.T) {
	var e Encoder
	e.String("hello, vice")
	e.String("")
	e.Bytes([]byte{1, 2, 3})
	e.Bytes(nil)
	d := NewDecoder(e.Buf())
	if v := d.String(); v != "hello, vice" {
		t.Errorf("String = %q", v)
	}
	if v := d.String(); v != "" {
		t.Errorf("empty String = %q", v)
	}
	if v := d.Bytes(); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", v)
	}
	if v := d.Bytes(); len(v) != 0 {
		t.Errorf("nil Bytes = %v", v)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestTruncatedDecodeIsSticky(t *testing.T) {
	var e Encoder
	e.U32(7)
	d := NewDecoder(e.Buf())
	d.U64() // needs 8 bytes, only 4 available
	if d.Err() != ErrTruncated {
		t.Fatalf("Err = %v, want ErrTruncated", d.Err())
	}
	// Subsequent reads return zero values without panicking.
	if d.U32() != 0 || d.String() != "" || d.Bool() {
		t.Error("post-error reads returned non-zero values")
	}
	if d.Close() != ErrTruncated {
		t.Error("Close lost the sticky error")
	}
}

func TestBogusLengthPrefixRejected(t *testing.T) {
	var e Encoder
	e.U32(MaxField + 1)
	d := NewDecoder(e.Buf())
	if d.Bytes() != nil || d.Err() != ErrTooLong {
		t.Fatalf("Err = %v, want ErrTooLong", d.Err())
	}
}

func TestTrailingBytesDetected(t *testing.T) {
	var e Encoder
	e.U8(1)
	e.U8(2)
	d := NewDecoder(e.Buf())
	d.U8()
	if err := d.Close(); err == nil {
		t.Fatal("Close ignored trailing bytes")
	}
}

func TestEncoderReset(t *testing.T) {
	var e Encoder
	e.String("abc")
	e.Reset()
	if e.Len() != 0 {
		t.Fatalf("Len after Reset = %d", e.Len())
	}
	e.U8(9)
	if e.Len() != 1 || e.Buf()[0] != 9 {
		t.Fatal("encoder unusable after Reset")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("first"), {}, []byte("third frame with more data")}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for i, want := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d = %q, want %q", i, got, want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("read past end: %v, want EOF", err)
	}
}

func TestFrameRejectsHugeLength(t *testing.T) {
	var e Encoder
	e.U32(MaxField + 1)
	if _, err := ReadFrame(bytes.NewReader(e.Buf())); err != ErrTooLong {
		t.Fatalf("err = %v, want ErrTooLong", err)
	}
}

func TestFrameShortBody(t *testing.T) {
	var e Encoder
	e.U32(100)
	e.Raw([]byte("only ten b"))
	if _, err := ReadFrame(bytes.NewReader(e.Buf())); err == nil {
		t.Fatal("short frame body not detected")
	}
}

// Property: any sequence of (u64, string, bytes, bool) triples round-trips.
func TestQuickRoundTrip(t *testing.T) {
	f := func(nums []uint64, strs []string, blob []byte, flag bool) bool {
		var e Encoder
		e.Int(len(nums))
		for _, n := range nums {
			e.U64(n)
		}
		e.Int(len(strs))
		for _, s := range strs {
			e.String(s)
		}
		e.Bytes(blob)
		e.Bool(flag)

		d := NewDecoder(e.Buf())
		if got := d.Int(); got != len(nums) {
			return false
		}
		for _, n := range nums {
			if d.U64() != n {
				return false
			}
		}
		if got := d.Int(); got != len(strs) {
			return false
		}
		for _, s := range strs {
			if d.String() != s {
				return false
			}
		}
		if !bytes.Equal(d.Bytes(), blob) {
			return false
		}
		if d.Bool() != flag {
			return false
		}
		return d.Close() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoding arbitrary garbage never panics and never reads past the
// buffer.
func TestQuickDecodeGarbageSafe(t *testing.T) {
	f := func(garbage []byte) bool {
		d := NewDecoder(garbage)
		d.U8()
		d.U16()
		_ = d.String()
		d.U64()
		d.Bytes()
		d.Bool()
		return d.Remaining() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceHeaderRoundTrip(t *testing.T) {
	for _, h := range []TraceHeader{
		{},
		{Trace: 0xdeadbeefcafef00d, Span: 1},
	} {
		var e Encoder
		h.Encode(&e)
		if len(e.Buf()) != 16 {
			t.Fatalf("TraceHeader encoded to %d bytes, want fixed 16", len(e.Buf()))
		}
		d := NewDecoder(e.Buf())
		got := DecodeTraceHeader(d)
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		if got != h {
			t.Fatalf("round trip: %+v != %+v", got, h)
		}
	}
}
