package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"itcfs/internal/sim"
)

// jsonStr renders s as a JSON string literal.
func jsonStr(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// usec renders a virtual time offset or duration in microseconds with fixed
// three-decimal precision, the unit Chrome trace events use. Fixed formatting
// keeps exports byte-identical across runs.
func usec(ns int64) string { return fmt.Sprintf("%d.%03d", ns/1000, ns%1000) }

// ExportChrome writes the tracer's finished spans as Chrome trace-event JSON
// ("traceEvents" array of complete "X" events), loadable in Perfetto or
// chrome://tracing. Machines become processes (pid, named via process_name
// metadata), traces become threads (tid), and attributes become args. The
// output is deterministic: spans are emitted in (start, span ID) order, pids
// in first-appearance order, and attributes in the order they were set.
func (t *Tracer) ExportChrome(w io.Writer) error {
	spans := t.Spans()
	pids := make(map[string]int)
	var order []string
	for _, s := range spans {
		if _, ok := pids[s.node]; !ok {
			pids[s.node] = len(pids)
			order = append(order, s.node)
		}
	}
	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(line string) error {
		if !first {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := io.WriteString(w, line)
		return err
	}
	for _, node := range order {
		line := fmt.Sprintf(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":%s}}`,
			pids[node], jsonStr(node))
		if err := emit(line); err != nil {
			return err
		}
	}
	for _, s := range spans {
		cat := s.name
		for i := 0; i < len(cat); i++ {
			if cat[i] == '.' {
				cat = cat[:i]
				break
			}
		}
		line := fmt.Sprintf(`{"ph":"X","name":%s,"cat":%s,"pid":%d,"tid":%d,"ts":%s,"dur":%s,"args":{"span":%d,"parent":%d`,
			jsonStr(s.name), jsonStr(cat), pids[s.node], s.ctx.Trace,
			usec(int64(sim.Duration(s.start))), usec(int64(s.Duration())),
			s.ctx.Span, s.parent)
		for _, a := range s.attrs {
			if a.IsStr {
				line += fmt.Sprintf(",%s:%s", jsonStr(a.Key), jsonStr(a.Str))
			} else {
				line += fmt.Sprintf(",%s:%d", jsonStr(a.Key), a.Int)
			}
		}
		line += "}}"
		if err := emit(line); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}

// WriteReport writes a human-readable tree of the tracer's finished spans,
// one trace at a time, children indented under parents in start order.
func (t *Tracer) WriteReport(w io.Writer) {
	spans := t.Spans()
	children := make(map[uint64][]*Span) // parent span ID -> children (span IDs are globally unique)
	byID := make(map[uint64]*Span)
	for _, s := range spans {
		byID[s.ctx.Span] = s
	}
	var roots []*Span
	for _, s := range spans {
		if s.parent != 0 && byID[s.parent] != nil {
			children[s.parent] = append(children[s.parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	var dump func(s *Span, depth int)
	dump = func(s *Span, depth int) {
		fmt.Fprintf(w, "%*s%-20s %-12s at=%-12v dur=%v", depth*2, "", s.name, s.node,
			time.Duration(s.start), s.Duration())
		for _, a := range s.attrs {
			if a.IsStr {
				fmt.Fprintf(w, " %s=%s", a.Key, a.Str)
			} else {
				fmt.Fprintf(w, " %s=%d", a.Key, a.Int)
			}
		}
		fmt.Fprintln(w)
		for _, c := range children[s.ctx.Span] {
			dump(c, depth+1)
		}
	}
	for _, r := range roots {
		fmt.Fprintf(w, "trace %d:\n", r.ctx.Trace)
		dump(r, 1)
	}
}
