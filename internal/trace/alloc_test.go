package trace

import (
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"itcfs/internal/sim"
)

// TestDisabledPathsAllocFree asserts the observability-off contract: with a
// nil registry, tracer, sampler or recorder, the instrumented hot paths must
// not allocate at all — a cell built without CellConfig.Metrics/Trace/
// FlightEvents pays nothing.
func TestDisabledPathsAllocFree(t *testing.T) {
	var reg *Registry
	var tr *Tracer
	var s *Sampler
	var r *Recorder
	cases := []struct {
		name string
		fn   func()
	}{
		{"counter", func() { reg.Counter("venus.cache.hits").Inc() }},
		{"gauge", func() { reg.Gauge("rpc.server0.inflight").Add(1) }},
		{"histogram", func() { reg.Histogram("rpc.serve.latency").Observe(time.Millisecond) }},
		{"find-histogram", func() { reg.FindHistogram("x").Observe(time.Millisecond) }},
		{"span", func() { tr.Begin(nil, "venus.open", "ws1").End() }},
		{"sample", func() { s.Sample(sim.Time(time.Second)) }},
		{"flight", func() { r.Log("rpc.retry", "ws1", "detail") }},
	}
	for _, c := range cases {
		if allocs := testing.AllocsPerRun(200, c.fn); allocs != 0 {
			t.Errorf("%s: %v allocs per run on the disabled path, want 0", c.name, allocs)
		}
	}
}

// TestSampledOutPathAllocFree asserts the scaled-tracing contract: with a
// live tracer whose policy samples an operation out, Begin/End must recycle
// pooled suppressed spans and never allocate — the cost of tracing at 30k
// clients is paid only by the kept fraction. AllocsPerRun's warm-up call
// primes the pool before measurement.
func TestSampledOutPathAllocFree(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.now)
	tr.SetPolicy(SamplePolicy{Default: ClassPolicy{Rate: 1 << 30, SlowKeep: time.Hour}})
	tr.Begin(nil, "venus.open", "ws0").End() // burn the phase-0 kept root
	cases := []struct {
		name string
		fn   func()
	}{
		{"suppressed-root", func() { tr.Begin(nil, "venus.open", "ws0").End() }},
		{"suppressed-nest", func() {
			root := tr.Begin(nil, "venus.open", "ws0")
			tr.BeginRemote(nil, root.Context(), "rpc.serve", "srv").End()
			root.End()
		}},
	}
	for _, c := range cases {
		if allocs := testing.AllocsPerRun(200, c.fn); allocs != 0 {
			t.Errorf("%s: %v allocs per run on the sampled-out path, want 0", c.name, allocs)
		}
	}
}

// TestStripedCounterAllocFree asserts the sharded hot path: Inc on a cached
// striped-counter handle must not allocate.
func TestStripedCounterAllocFree(t *testing.T) {
	reg := NewRegistry()
	sc := reg.Striped(MetricRPCRetries)
	key := ShardKey("ws7")
	if allocs := testing.AllocsPerRun(200, func() { sc.Inc(key); sc.Add(key+1, 2) }); allocs != 0 {
		t.Errorf("striped Inc/Add: %v allocs per run, want 0", allocs)
	}
}

// TestRegistryConcurrentStress hammers one registry from many goroutines —
// observations, lookups, snapshots and exports all racing — so `go test
// -race` proves the locking. The simulator never needs this (one runnable
// process at a time), but itcfsd shares a registry across real goroutines.
func TestRegistryConcurrentStress(t *testing.T) {
	reg := NewRegistry()
	sampler := NewSampler(reg, time.Second, 8)
	rec := NewRecorder(64, func() sim.Time { return 0 })
	const workers = 8
	const iters = 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				reg.Counter("shared.ops").Inc()
				reg.Counter(fmt.Sprintf("worker.%d.ops", w)).Add(2)
				reg.Gauge("shared.depth").Add(1)
				reg.Gauge("shared.depth").Add(-1)
				reg.Histogram("shared.lat").Observe(time.Duration(i) * time.Microsecond)
				reg.FindHistogram("shared.lat").Observe(time.Millisecond)
				rec.Log("stress", "node", "event")
				if i%50 == 0 {
					sampler.Sample(sim.Time(i) * sim.Time(time.Millisecond))
					if err := reg.WriteJSON(io.Discard); err != nil {
						t.Errorf("WriteJSON: %v", err)
					}
					reg.WriteText(io.Discard)
					_ = sampler.Points("shared.ops")
					_ = rec.Events()
				}
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("shared.ops").Value(); got != workers*iters {
		t.Errorf("shared.ops = %d, want %d", got, workers*iters)
	}
	if got := reg.Gauge("shared.depth").Value(); got != 0 {
		t.Errorf("shared.depth = %d, want 0", got)
	}
	if got := reg.Histogram("shared.lat").Count(); got != 2*workers*iters {
		t.Errorf("shared.lat count = %d, want %d", got, 2*workers*iters)
	}
	if rec.Total() != workers*iters {
		t.Errorf("flight total = %d, want %d", rec.Total(), workers*iters)
	}
}
