package trace

import (
	"strings"
	"testing"
	"time"

	"itcfs/internal/sim"
)

// TestCollapseTopKAndOther: only the K busiest family members keep their own
// series each window, and the "other" series equals the sum of the collapsed
// members' deltas.
func TestCollapseTopKAndOther(t *testing.T) {
	reg := NewRegistry()
	s := NewSampler(reg, time.Second, 0)
	s.Collapse("vice.vol.", ".ops", 2)

	reg.Counter(VolOpsMetric(1)).Add(50)
	reg.Counter(VolOpsMetric(2)).Add(40)
	reg.Counter(VolOpsMetric(3)).Add(7)
	reg.Counter(VolOpsMetric(4)).Add(3)
	reg.Counter("venus.cache.hits").Add(99) // outside the family: untouched
	s.Sample(sim.Time(1e9))

	for name, want := range map[string]int64{
		VolOpsMetric(1):      50,
		VolOpsMetric(2):      40,
		"vice.vol.other.ops": 10,
		"venus.cache.hits":   99,
	} {
		pts := s.Points(name)
		if len(pts) != 1 || pts[0].V != want {
			t.Errorf("%s = %+v, want one point of %d", name, pts, want)
		}
	}
	for _, name := range []string{VolOpsMetric(3), VolOpsMetric(4)} {
		if pts := s.Points(name); len(pts) != 0 {
			t.Errorf("collapsed member %s still has its own series: %+v", name, pts)
		}
	}

	// Next window the ranking flips: volume 3 becomes hot, volume 2 idle.
	reg.Counter(VolOpsMetric(3)).Add(100)
	reg.Counter(VolOpsMetric(1)).Add(20)
	reg.Counter(VolOpsMetric(4)).Add(1)
	s.Sample(sim.Time(2e9))
	if pts := s.Points(VolOpsMetric(3)); len(pts) != 1 || pts[0].V != 100 {
		t.Errorf("vol 3 after flip = %+v", s.Points(VolOpsMetric(3)))
	}
	// other = vol 2 delta (0) + vol 4 delta (1).
	pts := s.Points("vice.vol.other.ops")
	if len(pts) != 2 || pts[1].V != 1 {
		t.Errorf("other after flip = %+v, want second point of 1", pts)
	}
}

// TestCollapseTieBreaking: equal window deltas rank by name ascending, so the
// winner set is deterministic.
func TestCollapseTieBreaking(t *testing.T) {
	run := func() []string {
		reg := NewRegistry()
		s := NewSampler(reg, time.Second, 0)
		s.Collapse("vice.vol.", ".ops", 2)
		for _, vol := range []uint32{10, 2, 7, 30} {
			reg.Counter(VolOpsMetric(vol)).Add(5) // all tied
		}
		s.Sample(sim.Time(1e9))
		var kept []string
		for _, n := range s.SeriesNames() {
			if strings.HasPrefix(n, "vice.vol.") && n != "vice.vol.other.ops" {
				kept = append(kept, n)
			}
		}
		return kept
	}
	a, b := run(), run()
	// Name order: "vice.vol.10.ops" < "vice.vol.2.ops" < "vice.vol.30.ops" <
	// "vice.vol.7.ops" (string comparison).
	if len(a) != 2 || a[0] != VolOpsMetric(10) || a[1] != VolOpsMetric(2) {
		t.Errorf("tied winners = %v, want [%s %s]", a, VolOpsMetric(10), VolOpsMetric(2))
	}
	if len(b) != len(a) || b[0] != a[0] || b[1] != a[1] {
		t.Errorf("tie-breaking not deterministic: %v vs %v", a, b)
	}
}

// TestCollapseHistograms: histogram families rank by window count; the
// "other" quantiles come from the merged bucket diffs of the losers.
func TestCollapseHistograms(t *testing.T) {
	reg := NewRegistry()
	s := NewSampler(reg, time.Second, 0)
	s.Collapse("vice.vol.", ".latency", 1)

	reg.Histogram(VolLatencyMetric(1)).Observe(time.Millisecond)
	reg.Histogram(VolLatencyMetric(1)).Observe(time.Millisecond)
	reg.Histogram(VolLatencyMetric(1)).Observe(time.Millisecond)
	reg.Histogram(VolLatencyMetric(2)).Observe(10 * time.Millisecond)
	reg.Histogram(VolLatencyMetric(3)).Observe(40 * time.Millisecond)
	reg.Histogram(VolLatencyMetric(3)).Observe(40 * time.Millisecond)
	reg.Histogram(VolLatencyMetric(3)).Observe(40 * time.Millisecond)
	s.Sample(sim.Time(1e9))

	// vol 3 ties the winner at n=3; the name tie-break keeps vol 1.
	if pts := s.Points(VolLatencyMetric(1) + ".n"); len(pts) != 1 || pts[0].V != 3 {
		t.Errorf("winner .n = %+v", pts)
	}
	pts := s.Points("vice.vol.other.latency.n")
	if len(pts) != 1 || pts[0].V != 4 {
		t.Fatalf("other .n = %+v, want one point of 4", pts)
	}
	p99 := s.Points("vice.vol.other.latency.p99")
	if len(p99) != 1 || p99[0].V <= 0 {
		t.Fatalf("other .p99 = %+v", p99)
	}
	// The merged p99 must reflect the slow member (40ms lands in the
	// 32.8–65.5ms bucket; its midpoint is ~49ms).
	if got := time.Duration(p99[0].V); got < 20*time.Millisecond || got > 80*time.Millisecond {
		t.Errorf("other p99 = %v, want within 2x of 40ms", got)
	}
	if pts := s.Points(VolLatencyMetric(2) + ".n"); len(pts) != 0 {
		t.Errorf("collapsed histogram kept its own series: %+v", pts)
	}
}

// TestCollapseRingWraparound: bounded rings keep working under collapse —
// membership churn just leaves gaps, and the ring retains the newest points.
func TestCollapseRingWraparound(t *testing.T) {
	reg := NewRegistry()
	s := NewSampler(reg, time.Second, 4) // tiny rings
	s.Collapse("vice.vol.", ".ops", 1)
	c1 := reg.Counter(VolOpsMetric(1))
	c2 := reg.Counter(VolOpsMetric(2))
	for i := 1; i <= 10; i++ {
		// Volume 1 always wins; volume 2 always collapses into other.
		c1.Add(100)
		c2.Add(int64(i))
		s.Sample(sim.Time(int64(i) * 1e9))
	}
	pts := s.Points(VolOpsMetric(1))
	if len(pts) != 4 {
		t.Fatalf("winner ring holds %d points, want 4", len(pts))
	}
	for i, p := range pts {
		if want := sim.Time(int64(7+i) * 1e9); p.At != want || p.V != 100 {
			t.Errorf("winner pts[%d] = {%v, %d}", i, p.At, p.V)
		}
	}
	other := s.Points("vice.vol.other.ops")
	if len(other) != 4 {
		t.Fatalf("other ring holds %d points, want 4", len(other))
	}
	for i, p := range other {
		if want := int64(7 + i); p.V != want {
			t.Errorf("other pts[%d].V = %d, want %d", i, p.V, want)
		}
	}
}

// TestStripedCounterFoldsIntoSnapshots: striped totals appear in Snapshot and
// WriteText next to plain counters, under one sorted namespace.
func TestStripedCounterFoldsIntoSnapshots(t *testing.T) {
	reg := NewRegistry()
	sc := reg.Striped(MetricRPCRetries)
	for i := 0; i < 100; i++ {
		sc.Inc(uint64(i)) // spread over every shard
	}
	sc.Add(ShardKey("ws7"), 5)
	reg.Counter("venus.cache.hits").Add(3)
	if sc.Value() != 105 {
		t.Fatalf("striped value = %d, want 105", sc.Value())
	}
	if again := reg.Striped(MetricRPCRetries); again != sc {
		t.Fatalf("Striped did not return the same instrument")
	}
	snap := reg.Snapshot()
	found := false
	for _, c := range snap.Counters {
		if c.Name == MetricRPCRetries {
			found = true
			if c.Value != 105 {
				t.Errorf("snapshot value = %d, want 105", c.Value)
			}
		}
	}
	if !found {
		t.Fatalf("striped counter missing from snapshot: %+v", snap.Counters)
	}
	// Nil striped counters are inert like the other instruments.
	var nilReg *Registry
	nilReg.Striped("x").Inc(1)
	nilReg.Striped("x").Add(2, 3)
	if nilReg.Striped("x").Value() != 0 {
		t.Fatalf("nil striped counter has a value")
	}
}

// TestSamplerExemplarsAndHooks: exemplars harvest on the cadence into bounded
// per-class rings, Record feeds derived series, and OnSample hooks run after
// each round.
func TestSamplerExemplarsAndHooks(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.now)
	reg := NewRegistry()
	s := NewSampler(reg, time.Second, 0)
	s.AttachExemplars(tr.TakeExemplars)
	var hookTimes []sim.Time
	s.OnSample(func(now sim.Time) {
		hookTimes = append(hookTimes, now)
		s.Record("derived.burn", Point{At: now, V: 42})
	})

	root := tr.Begin(nil, "venus.open", "ws0")
	clk.advance(30 * time.Millisecond)
	root.End()
	s.Sample(sim.Time(1e9))

	if len(hookTimes) != 1 || hookTimes[0] != sim.Time(1e9) {
		t.Fatalf("hook times = %v", hookTimes)
	}
	if pts := s.Points("derived.burn"); len(pts) != 1 || pts[0].V != 42 {
		t.Fatalf("derived series = %+v", pts)
	}
	ex, ok := s.WorstExemplar("venus.open")
	if !ok || ex.Dur != sim.Duration(30*time.Millisecond) {
		t.Fatalf("worst exemplar = %+v ok=%v", ex, ok)
	}
	// The ring is bounded: flood more exemplar windows than the cap.
	for i := 0; i < 2*exemplarCap; i++ {
		r := tr.Begin(nil, "venus.open", "ws0")
		clk.advance(time.Millisecond)
		r.End()
		s.Sample(sim.Time(int64(i+2) * 1e9))
	}
	if got := len(s.Exemplars("venus.open")); got != exemplarCap {
		t.Fatalf("exemplar ring holds %d, want %d", got, exemplarCap)
	}
}
