package trace

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// OpBreakdown decomposes the end-to-end latency of one kind of root
// operation into where the virtual time went — the §5.2-style attribution
// of cost to client, network and server. The five components sum exactly to
// Total: Client is computed as the residual after network and server time,
// which is correct because between RPCs the issuing process is by definition
// doing client-side work (cache management, local disk, CPU charges).
type OpBreakdown struct {
	Name      string
	Count     int
	Total     time.Duration // sum of root span durations
	Client    time.Duration // residual: client CPU, cache and local disk
	Server    time.Duration // server service time (dispatch + cost charges)
	NetQueue  time.Duration // frames waiting for busy links
	NetSerial time.Duration // frames clocking onto links
	NetProp   time.Duration // propagation + bridge store-and-forward
}

// Net returns the total network component.
func (b OpBreakdown) Net() time.Duration { return b.NetQueue + b.NetSerial + b.NetProp }

// Analyze groups root spans by name and attributes their latency using the
// accounting attributes the RPC layer stamps on every SpanRPCCall span. The
// walk descends through intermediate client-side spans (venus.open over
// venus.fetch, say) but stops at each SpanRPCCall: everything beneath it ran
// on the far side of the wire and is already covered by the call span's
// network and server attributes. (Callback breaks a server issues while
// holding a call are therefore accounted as server time, which is how the
// paper's server-centric view counts them too.) Results are sorted by name.
func Analyze(spans []*Span) []OpBreakdown {
	type key struct{ trace, span uint64 }
	index := make(map[key]*Span, len(spans))
	children := make(map[key][]*Span)
	for _, s := range spans {
		index[key{s.ctx.Trace, s.ctx.Span}] = s
	}
	for _, s := range spans {
		if s.parent != 0 && index[key{s.ctx.Trace, s.parent}] != nil {
			k := key{s.ctx.Trace, s.parent}
			children[k] = append(children[k], s)
		}
	}
	agg := make(map[string]*OpBreakdown)
	for _, s := range spans {
		if s.parent != 0 && index[key{s.ctx.Trace, s.parent}] != nil {
			continue // not a root
		}
		b := agg[s.name]
		if b == nil {
			b = &OpBreakdown{Name: s.name}
			agg[s.name] = b
		}
		var q, ser, prop, srv time.Duration
		var walk func(sp *Span)
		walk = func(sp *Span) {
			if sp.name == SpanRPCCall {
				q += time.Duration(sp.IntAttr(AttrNetQueueNs))
				ser += time.Duration(sp.IntAttr(AttrNetSerialNs))
				prop += time.Duration(sp.IntAttr(AttrNetPropNs))
				srv += time.Duration(sp.IntAttr(AttrServerNs))
				return
			}
			for _, c := range children[key{sp.ctx.Trace, sp.ctx.Span}] {
				walk(c)
			}
		}
		walk(s)
		total := time.Duration(s.Duration())
		b.Count++
		b.Total += total
		b.NetQueue += q
		b.NetSerial += ser
		b.NetProp += prop
		b.Server += srv
		b.Client += total - q - ser - prop - srv
	}
	out := make([]OpBreakdown, 0, len(agg))
	for _, b := range agg {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteBreakdown prints breakdowns as a fixed-width table with per-operation
// means and component percentages.
func WriteBreakdown(w io.Writer, rows []OpBreakdown) {
	fmt.Fprintf(w, "%-16s %6s %12s %12s %12s %12s %12s %12s\n",
		"op", "n", "mean", "client", "server", "net-queue", "net-serial", "net-prop")
	for _, b := range rows {
		if b.Count == 0 {
			continue
		}
		n := time.Duration(b.Count)
		fmt.Fprintf(w, "%-16s %6d %12v %12v %12v %12v %12v %12v\n",
			b.Name, b.Count, b.Total/n, b.Client/n, b.Server/n,
			b.NetQueue/n, b.NetSerial/n, b.NetProp/n)
	}
}
