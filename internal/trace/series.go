package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"itcfs/internal/sim"
)

// Time-series telemetry. A Sampler is a virtual-time process that snapshots
// every registry instrument on a fixed cadence and folds each into a bounded
// ring of per-window points: counters become per-window deltas (rates),
// gauges become values-at-sample, and histograms become per-window count and
// p50/p90/p99 series computed by diffing bucket snapshots. External probes
// (server CPU busy time, link busy time, RPC queue depth) plug into the same
// cadence. Sampling only reads state, so a run with sampling off is
// byte-identical — in every workload-visible outcome — to one with sampling
// on, and identical seeds yield identical series.
//
// Two scale features bound the plane's own footprint. Collapse rules cap the
// series cardinality of per-entity families (per-volume ops, per-volume
// latency): each window only the top-K members by activity keep their own
// ring, the rest fold into an "other" series — the delta/snapshot maps still
// track every instrument (cheap), only rings are budgeted. AttachExemplars
// harvests each window's worst sampled spans per class, so the series plane
// carries trace IDs that explain its own tails; OnSample hooks and Record
// let derived layers (SLO burn rates) ride the same cadence.

// Point is one sample: the window-end instant and the windowed value.
type Point struct {
	At sim.Time
	V  int64
}

// Series is a bounded ring of points for one metric. Rings belong to a
// Sampler, which serializes all access under its own lock.
type Series struct {
	name  string
	pts   []Point // ring storage, len == capacity once full
	head  int     // index of the oldest point when the ring is full
	total uint64  // points ever appended, including overwritten ones
}

// DefaultSeriesCap bounds each series when the Sampler is created with a
// non-positive capacity: at a 30-second cadence it holds a 4-hour window.
const DefaultSeriesCap = 480

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// append adds one point, overwriting the oldest once the ring is full.
func (s *Series) append(capacity int, p Point) {
	if len(s.pts) < capacity {
		s.pts = append(s.pts, p)
	} else {
		s.pts[s.head] = p
		s.head = (s.head + 1) % len(s.pts)
	}
	s.total++
}

// points returns the ring's contents in chronological order.
func (s *Series) points() []Point {
	out := make([]Point, 0, len(s.pts))
	out = append(out, s.pts[s.head:]...)
	out = append(out, s.pts[:s.head]...)
	return out
}

// Dropped returns how many points the ring has overwritten.
func (s *Series) Dropped() uint64 { return s.total - uint64(len(s.pts)) }

// collapseRule bounds the cardinality of one per-entity metric family: of
// the counters (or histograms) named prefix+<entity>+suffix, only the top K
// by per-window activity get their own series each round; the rest fold into
// a single prefix+"other"+suffix series. Rankings re-run every window from
// window deltas, with ties broken by name, so the series set is a
// deterministic function of the workload — and the Sampler's ring memory
// stops growing linearly with cell size.
type collapseRule struct {
	prefix, suffix string
	k              int
}

// DefaultSeriesTopK is the per-family series budget a collapse rule gets
// when registered with a non-positive K.
const DefaultSeriesTopK = 16

// exemplarCap bounds the per-class exemplar ring: enough recent windows to
// attribute a burn-rate episode without retaining the whole run.
const exemplarCap = 16

// probe is one external instrument sampled on the cadence.
type probe struct {
	name       string
	fn         func() int64
	cumulative bool  // true: emit per-window deltas of a monotonic total
	last       int64 // previous reading, for cumulative probes
}

// Sampler snapshots a registry and a set of probes on a fixed virtual-time
// cadence. Create one with NewSampler, register probes, then Start it on the
// kernel (or call Sample directly from tests). A nil *Sampler is valid and
// disables sampling: every method is a no-op.
type Sampler struct {
	// reg, every and cap are set at construction, immutable afterwards.
	reg   *Registry
	every time.Duration
	cap   int

	mu     sync.Mutex
	series map[string]*Series // guarded by mu
	probes []*probe           // guarded by mu
	lastC  map[string]int64   // guarded by mu — previous counter readings
	// previous histogram snapshots, for bucket diffs
	// guarded by mu
	lastH   map[string]HistSnapshot
	samples int64 // guarded by mu — completed sampling rounds

	rules  []collapseRule        // guarded by mu — cardinality bounds
	hooks  []func(now sim.Time)  // guarded by mu — run after each round, unlocked
	takeEx func() []Exemplar     // guarded by mu — exemplar harvest source
	exRing map[string][]Exemplar // guarded by mu — recent exemplars per class
}

// NewSampler creates a sampler over reg (which may be nil: probes still
// sample). every is the cadence; capacity bounds each series' ring
// (non-positive = DefaultSeriesCap).
func NewSampler(reg *Registry, every time.Duration, capacity int) *Sampler {
	if every <= 0 {
		every = 30 * time.Second
	}
	if capacity <= 0 {
		capacity = DefaultSeriesCap
	}
	return &Sampler{
		reg:    reg,
		every:  every,
		cap:    capacity,
		series: make(map[string]*Series),
		lastC:  make(map[string]int64),
		lastH:  make(map[string]HistSnapshot),
	}
}

// Every returns the sampling cadence.
func (s *Sampler) Every() time.Duration {
	if s == nil {
		return 0
	}
	return s.every
}

// AddCumulative registers a probe whose reading is a monotonic total (a
// Resource's busy time, a link's byte count); the series records per-window
// deltas. No-op on a nil sampler.
func (s *Sampler) AddCumulative(name string, fn func() int64) {
	s.addProbe(name, fn, true)
}

// AddInstant registers a probe whose reading is an instantaneous level (a
// queue length); the series records the value at each sample. No-op on a
// nil sampler.
func (s *Sampler) AddInstant(name string, fn func() int64) {
	s.addProbe(name, fn, false)
}

func (s *Sampler) addProbe(name string, fn func() int64, cumulative bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p := &probe{name: name, fn: fn, cumulative: cumulative}
	if cumulative {
		p.last = fn()
	}
	s.probes = append(s.probes, p)
}

// Collapse registers a cardinality bound for the metric family named
// prefix+<entity>+suffix: each round, only the top k members by window delta
// (histograms: by window count) keep their own series; the rest merge into
// prefix+"other"+suffix. k <= 0 means DefaultSeriesTopK. No-op on a nil
// sampler. Register before sampling starts.
func (s *Sampler) Collapse(prefix, suffix string, k int) {
	if s == nil {
		return
	}
	if k <= 0 {
		k = DefaultSeriesTopK
	}
	s.mu.Lock()
	s.rules = append(s.rules, collapseRule{prefix: prefix, suffix: suffix, k: k})
	s.mu.Unlock()
}

// Record appends one point to the named series directly — the hook for
// derived series (the SLO layer's burn rates) that have no registry
// instrument behind them. No-op on a nil sampler.
func (s *Sampler) Record(name string, p Point) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.appendLocked(name, p)
	s.mu.Unlock()
}

// OnSample registers fn to run after every sampling round, outside the
// sampler's lock, with the round's timestamp — how the SLO layer evaluates
// burn rates on the sampling cadence. No-op on a nil sampler.
func (s *Sampler) OnSample(fn func(now sim.Time)) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.hooks = append(s.hooks, fn)
	s.mu.Unlock()
}

// AttachExemplars wires an exemplar source — typically Tracer.TakeExemplars —
// harvested once per round before instruments are read, so every metric
// window carries the trace IDs of its worst sampled spans. No-op on a nil
// sampler.
func (s *Sampler) AttachExemplars(take func() []Exemplar) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.takeEx = take
	if s.exRing == nil {
		s.exRing = make(map[string][]Exemplar)
	}
	s.mu.Unlock()
}

// Exemplars returns the retained exemplars of one class, oldest first.
func (s *Sampler) Exemplars(class string) []Exemplar {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Exemplar, len(s.exRing[class]))
	copy(out, s.exRing[class])
	return out
}

// WorstExemplar returns the slowest retained exemplar of the class; ok is
// false when none have been harvested. Ties keep the earlier exemplar.
func (s *Sampler) WorstExemplar(class string) (Exemplar, bool) {
	var worst Exemplar
	ok := false
	for _, e := range s.Exemplars(class) {
		if !ok || e.Dur > worst.Dur {
			worst, ok = e, true
		}
	}
	return worst, ok
}

// ExemplarClasses returns every class with retained exemplars, sorted.
func (s *Sampler) ExemplarClasses() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.exRing))
	for n := range s.exRing {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Start schedules sampling ticks on the kernel every cadence until the
// horizon. The horizon bounds the self-renewing tick events so Kernel.Run
// still terminates once real work drains (the sim.Gauge convention). Reads
// only — the ticks shift event sequence numbers but never any workload
// outcome.
func (s *Sampler) Start(k *sim.Kernel, horizon time.Duration) {
	if s == nil {
		return
	}
	until := k.Now().Add(horizon)
	var tick func()
	tick = func() {
		s.Sample(k.Now())
		if k.Now().Add(s.every) <= until {
			k.After(s.every, tick)
		}
	}
	if k.Now().Add(s.every) <= until {
		k.After(s.every, tick)
	}
}

// Sample takes one sampling round at virtual time now: counters append their
// delta since the previous round, gauges their current value, histograms a
// window count and p50/p90/p99 (suffixes .n, .p50, .p90, .p99; quantiles in
// nanoseconds) computed from bucket diffs, and probes per their kind. No-op
// on a nil sampler.
func (s *Sampler) Sample(now sim.Time) {
	if s == nil {
		return
	}
	snap := s.reg.Snapshot()
	s.mu.Lock()
	take := s.takeEx
	s.mu.Unlock()
	var exs []Exemplar
	if take != nil {
		exs = take() // harvest outside s.mu: the source holds its own lock
	}
	s.mu.Lock()
	type winC struct {
		name string
		v    int64
	}
	type winH struct {
		name string
		diff [histBuckets]int64
		n    int64
	}
	collC := make([][]winC, len(s.rules))
	collH := make([][]winH, len(s.rules))
	for _, c := range snap.Counters {
		d := c.Value - s.lastC[c.Name]
		s.lastC[c.Name] = c.Value
		if ri := s.ruleForLocked(c.Name); ri >= 0 {
			collC[ri] = append(collC[ri], winC{name: c.Name, v: d})
		} else {
			s.appendLocked(c.Name, Point{At: now, V: d})
		}
	}
	for _, g := range snap.Gauges {
		s.appendLocked(g.Name, Point{At: now, V: g.Value})
	}
	for i := range snap.Hists {
		h := &snap.Hists[i]
		prev := s.lastH[h.Name]
		var diff [histBuckets]int64
		for b := range diff {
			diff[b] = h.Buckets[b] - prev.Buckets[b]
		}
		n := h.Count - prev.Count
		s.lastH[h.Name] = *h
		if ri := s.ruleForLocked(h.Name); ri >= 0 {
			collH[ri] = append(collH[ri], winH{name: h.Name, diff: diff, n: n})
			continue
		}
		s.appendHistLocked(h.Name, now, &diff, n)
	}
	for ri, r := range s.rules {
		cs := collC[ri]
		sort.Slice(cs, func(i, j int) bool {
			if cs[i].v != cs[j].v {
				return cs[i].v > cs[j].v
			}
			return cs[i].name < cs[j].name
		})
		for i, c := range cs {
			if i < r.k {
				s.appendLocked(c.name, Point{At: now, V: c.v})
			}
		}
		if len(cs) > r.k {
			var other int64
			for _, c := range cs[r.k:] {
				other += c.v
			}
			s.appendLocked(r.prefix+"other"+r.suffix, Point{At: now, V: other})
		}
		hs := collH[ri]
		sort.Slice(hs, func(i, j int) bool {
			if hs[i].n != hs[j].n {
				return hs[i].n > hs[j].n
			}
			return hs[i].name < hs[j].name
		})
		for i := range hs {
			if i < r.k {
				s.appendHistLocked(hs[i].name, now, &hs[i].diff, hs[i].n)
			}
		}
		if len(hs) > r.k {
			var merged winH
			for i := r.k; i < len(hs); i++ {
				merged.n += hs[i].n
				for b := range merged.diff {
					merged.diff[b] += hs[i].diff[b]
				}
			}
			s.appendHistLocked(r.prefix+"other"+r.suffix, now, &merged.diff, merged.n)
		}
	}
	for _, p := range s.probes {
		v := p.fn()
		if p.cumulative {
			s.appendLocked(p.name, Point{At: now, V: v - p.last})
			p.last = v
		} else {
			s.appendLocked(p.name, Point{At: now, V: v})
		}
	}
	for _, e := range exs {
		ring := append(s.exRing[e.Class], e)
		if len(ring) > exemplarCap {
			ring = ring[len(ring)-exemplarCap:]
		}
		s.exRing[e.Class] = ring
	}
	s.samples++
	hooks := s.hooks
	s.mu.Unlock()
	for _, fn := range hooks {
		fn(now)
	}
}

// ruleForLocked returns the index of the first collapse rule matching name,
// or -1. A match needs a non-empty entity between prefix and suffix, so the
// family's own "other" series never re-collapses.
//
//itcvet:holds mu
func (s *Sampler) ruleForLocked(name string) int {
	for i, r := range s.rules {
		if len(name) > len(r.prefix)+len(r.suffix) &&
			strings.HasPrefix(name, r.prefix) && strings.HasSuffix(name, r.suffix) {
			return i
		}
	}
	return -1
}

// appendHistLocked emits one histogram's four per-window series from its
// bucket diff.
//
//itcvet:holds mu
func (s *Sampler) appendHistLocked(name string, now sim.Time, diff *[histBuckets]int64, n int64) {
	s.appendLocked(name+".n", Point{At: now, V: n})
	s.appendLocked(name+".p50", Point{At: now, V: int64(bucketQuantile(diff, n, 0.50))})
	s.appendLocked(name+".p90", Point{At: now, V: int64(bucketQuantile(diff, n, 0.90))})
	s.appendLocked(name+".p99", Point{At: now, V: int64(bucketQuantile(diff, n, 0.99))})
}

//itcvet:holds mu
func (s *Sampler) appendLocked(name string, p Point) {
	sr := s.series[name]
	if sr == nil {
		sr = &Series{name: name}
		s.series[name] = sr
	}
	sr.append(s.cap, p)
}

// Samples returns how many sampling rounds have completed.
func (s *Sampler) Samples() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.samples
}

// Points returns the named series' points in chronological order (nil if the
// series does not exist or on a nil sampler).
func (s *Sampler) Points(name string) []Point {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sr := s.series[name]
	if sr == nil {
		return nil
	}
	return sr.points()
}

// SeriesNames returns every series name, sorted.
func (s *Sampler) SeriesNames() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.series))
	for n := range s.series {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteCSV writes every series in long form — series,at_ns,value — sorted by
// series name then time. Deterministic: same seed, same bytes.
func (s *Sampler) WriteCSV(w io.Writer) error {
	if s == nil {
		return nil
	}
	if _, err := io.WriteString(w, "series,at_ns,value\n"); err != nil {
		return err
	}
	for _, name := range s.SeriesNames() {
		for _, p := range s.Points(name) {
			if _, err := fmt.Fprintf(w, "%s,%d,%d\n", name, int64(p.At), p.V); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON writes the full telemetry state as one deterministic JSON
// document: the sampling cadence, every series (sorted, as [at_ns, value]
// pairs), and — when a registry is attached — its final snapshot via
// Registry.WriteJSON, so consumers get cumulative totals next to windows.
func (s *Sampler) WriteJSON(w io.Writer) error {
	if s == nil {
		return nil
	}
	if _, err := fmt.Fprintf(w, "{\n\"every_ns\": %d,\n\"series\": {", int64(s.every)); err != nil {
		return err
	}
	for i, name := range s.SeriesNames() {
		comma := ","
		if i == 0 {
			comma = ""
		}
		if _, err := fmt.Fprintf(w, "%s\n %s: [", comma, jsonStr(name)); err != nil {
			return err
		}
		for j, p := range s.Points(name) {
			sep := ", "
			if j == 0 {
				sep = ""
			}
			if _, err := fmt.Fprintf(w, "%s[%d, %d]", sep, int64(p.At), p.V); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "]"); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n},\n\"exemplars\": {"); err != nil {
		return err
	}
	for i, class := range s.ExemplarClasses() {
		comma := ","
		if i == 0 {
			comma = ""
		}
		if _, err := fmt.Fprintf(w, "%s\n %s: [", comma, jsonStr(class)); err != nil {
			return err
		}
		for j, e := range s.Exemplars(class) {
			sep := ", "
			if j == 0 {
				sep = ""
			}
			if _, err := fmt.Fprintf(w, "%s{\"trace\": %d, \"span\": %d, \"dur_ns\": %d, \"at_ns\": %d}",
				sep, e.Trace, e.Span, int64(e.Dur), int64(e.At)); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "]"); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n},\n\"registry\": "); err != nil {
		return err
	}
	if err := s.reg.WriteJSON(w); err != nil {
		return err
	}
	_, err := io.WriteString(w, "}\n")
	return err
}

// sparkLevels maps a window value to a glyph; ASCII so the dashboard renders
// anywhere a report table does.
const sparkLevels = " .:-=+*#%@"

// WriteDashboard renders every series as one line — name, point count,
// min/max/last values, and an ASCII sparkline of the most recent windows —
// in sorted name order. Purely integer bucketing, so the text is
// deterministic.
func (s *Sampler) WriteDashboard(w io.Writer) {
	if s == nil {
		return
	}
	const sparkWidth = 60
	fmt.Fprintf(w, "timeline: cadence %v, %d series (spark = last %d windows, scaled per series)\n",
		s.every, len(s.SeriesNames()), sparkWidth)
	for _, name := range s.SeriesNames() {
		pts := s.Points(name)
		if len(pts) == 0 {
			continue
		}
		lo, hi := pts[0].V, pts[0].V
		for _, p := range pts {
			if p.V < lo {
				lo = p.V
			}
			if p.V > hi {
				hi = p.V
			}
		}
		tail := pts
		if len(tail) > sparkWidth {
			tail = tail[len(tail)-sparkWidth:]
		}
		spark := make([]byte, len(tail))
		for i, p := range tail {
			lvl := 0
			if hi > lo {
				lvl = int((p.V - lo) * int64(len(sparkLevels)-1) / (hi - lo))
			} else if p.V != 0 {
				lvl = len(sparkLevels) - 1
			}
			spark[i] = sparkLevels[lvl]
		}
		fmt.Fprintf(w, "%-44s n=%-4d min=%-12d max=%-12d last=%-12d |%s|\n",
			name, len(pts), lo, hi, pts[len(pts)-1].V, spark)
	}
}
