package trace

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named counters, gauges and latency histograms. A nil
// *Registry is valid and disables metrics: every accessor returns a nil
// instrument whose methods are no-ops, so instrumentation sites never branch
// on configuration.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter        // guarded by mu
	striped  map[string]*StripedCounter // guarded by mu
	gauges   map[string]*Gauge          // guarded by mu
	hists    map[string]*Histogram      // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		striped:  make(map[string]*StripedCounter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Striped returns the named striped counter, creating it on first use.
// Striped and plain counters share one namespace — snapshots and exports fold
// a striped counter's total under its name next to the plain ones — so a name
// must be registered as one kind or the other, never both.
func (r *Registry) Striped(name string) *StripedCounter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.striped[name]
	if c == nil {
		c = &StripedCounter{}
		r.striped[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// FindHistogram returns the named histogram without creating it, or nil.
// Consumers that only read (the volume Advisor) use it so a registry is
// never polluted by lookups.
func (r *Registry) FindHistogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hists[name]
}

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count; 0 on a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// stripedShards is the shard count of a StripedCounter — enough to spread a
// cell-wide hot counter (every client's RPC retries land on one name) across
// cores without bloating reads, which sum a fixed eight cells.
const stripedShards = 8

// StripedCounter is a monotonically increasing count spread over
// cache-line-padded shards. Writers pick a shard from any stable per-writer
// key (a node-name hash); readers sum. Same nil-receiver contract as Counter.
type StripedCounter struct {
	shards [stripedShards]struct {
		v atomic.Int64
		_ [56]byte // pad to a 64-byte cache line to stop false sharing
	}
}

// Inc adds one on the shard selected by key.
func (c *StripedCounter) Inc(key uint64) { c.Add(key, 1) }

// Add adds n on the shard selected by key. No-op on a nil counter.
func (c *StripedCounter) Add(key uint64, n int64) {
	if c == nil {
		return
	}
	c.shards[key%stripedShards].v.Add(n)
}

// Value sums the shards; 0 on a nil counter.
func (c *StripedCounter) Value() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// ShardKey hashes an arbitrary string (typically a node name) to a stable
// shard-selection key, so each machine's increments stay on one shard.
func ShardKey(s string) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// Gauge is a value that goes up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value. No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add shifts the value by n. No-op on a nil gauge.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value; 0 on a nil gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is one bucket per possible bit length of a microsecond count:
// bucket i holds observations with bits.Len64(µs) == i, i.e. logarithmic
// bucket boundaries at successive powers of two from 1µs to ~584000 years.
const histBuckets = 65

// Histogram records a latency distribution in logarithmic buckets, plus
// exact count, sum, min and max. Quantiles are read from the buckets, so
// they are approximate within one power of two but fully deterministic.
type Histogram struct {
	mu      sync.Mutex
	buckets [histBuckets]int64 // guarded by mu
	count   int64              // guarded by mu
	sum     time.Duration      // guarded by mu
	min     time.Duration      // guarded by mu
	max     time.Duration      // guarded by mu
}

// ObserveN records a dimensionless value (a count, e.g. callback fan-out)
// on the same logarithmic buckets, scaling one unit to one microsecond, so
// quantiles read back in the original unit.
func (h *Histogram) ObserveN(n int64) { h.Observe(time.Duration(n) * time.Microsecond) }

// Observe records one latency. Negative values clamp to zero. No-op on a
// nil histogram.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	i := bits.Len64(uint64(d / time.Microsecond))
	h.mu.Lock()
	h.buckets[i]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the average observation, or 0 with no observations.
func (h *Histogram) Mean() time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min returns the smallest observation.
func (h *Histogram) Min() time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns the q-quantile (0 < q <= 1) as the midpoint of the bucket
// containing that rank, clamped to the observed min and max. 0 with no
// observations or on a nil histogram.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := int64(q * float64(h.count))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum int64
	for i, n := range h.buckets {
		cum += n
		if cum >= rank {
			v := bucketMid(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// bucketMid returns the midpoint of bucket i's value range.
func bucketMid(i int) time.Duration {
	if i == 0 {
		return 0
	}
	lo := uint64(1) << (i - 1)      // smallest µs with bit length i
	hi := (uint64(1) << i) - 1      // largest µs with bit length i
	mid := time.Duration(lo+hi) / 2 // µs
	return mid * time.Microsecond
}

// WriteText writes every instrument in name order — a deterministic,
// human-readable report.
func (r *Registry) WriteText(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	counts := make(map[string]int64, len(r.counters)+len(r.striped))
	for n, c := range r.counters {
		counts[n] = c.Value()
	}
	for n, c := range r.striped {
		counts[n] = c.Value()
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "counter %-48s %d\n", n, counts[n])
	}
	names = names[:0]
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "gauge   %-48s %d\n", n, r.gauges[n].Value())
	}
	names = names[:0]
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := r.hists[n]
		fmt.Fprintf(w, "hist    %-48s n=%d mean=%v p50=%v p90=%v p99=%v p999=%v min=%v max=%v\n",
			n, h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.90),
			h.Quantile(0.99), h.Quantile(0.999), h.Min(), h.Max())
	}
}
