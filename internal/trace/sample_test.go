package trace

import (
	"fmt"
	"testing"
	"time"

	"itcfs/internal/sim"
)

// beginRoots starts and immediately ends n roots of one class, returning how
// many were recorded.
func beginRoots(tr *Tracer, class string, n int) int {
	before := len(tr.Spans())
	for i := 0; i < n; i++ {
		tr.Begin(nil, class, "ws0").End()
	}
	return len(tr.Spans()) - before
}

func TestPerClassRates(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.now)
	tr.SetPolicy(SamplePolicy{
		Default: ClassPolicy{Rate: 1},
		Classes: map[string]ClassPolicy{"venus.open": {Rate: 4}},
	})
	if got := beginRoots(tr, "venus.open", 8); got != 2 {
		t.Errorf("rate-4 class kept %d of 8 roots, want 2", got)
	}
	if got := beginRoots(tr, "vice.volume.move", 3); got != 3 {
		t.Errorf("default-rate class kept %d of 3 roots, want 3", got)
	}
}

func TestSeedZeroKeepsFirstRoot(t *testing.T) {
	// Seed 0 pins every class's phase to 0 — the legacy SetSample behaviour
	// of keeping roots 0, n, 2n, ...
	clk := &fakeClock{}
	tr := New(clk.now)
	tr.SetPolicy(SamplePolicy{Default: ClassPolicy{Rate: 3}})
	var kept []int
	for i := 0; i < 7; i++ {
		s := tr.Begin(nil, "op", "ws0")
		if s.Context() != (SpanContext{}) {
			kept = append(kept, i)
		}
		s.End()
	}
	if len(kept) != 3 || kept[0] != 0 || kept[1] != 3 || kept[2] != 6 {
		t.Fatalf("kept roots %v, want [0 3 6]", kept)
	}
}

func TestSeededOffsetsAreDeterministicAndRotate(t *testing.T) {
	keptWith := func(seed int64) []int {
		clk := &fakeClock{}
		tr := New(clk.now)
		tr.SetPolicy(SamplePolicy{Seed: seed, Default: ClassPolicy{Rate: 8}})
		var kept []int
		for i := 0; i < 16; i++ {
			s := tr.Begin(nil, "venus.open", "ws0")
			if s.Context() != (SpanContext{}) {
				kept = append(kept, i)
			}
			s.End()
		}
		return kept
	}
	a, b := keptWith(42), keptWith(42)
	if len(a) != 2 || len(b) != 2 || a[0] != b[0] || a[1] != b[1] {
		t.Fatalf("same seed kept different roots: %v vs %v", a, b)
	}
	// Some seed in a small range must shift the phase away from 0 — the
	// point of seeding; exhaustive equality would overfit the hash.
	rotated := false
	for seed := int64(1); seed <= 16 && !rotated; seed++ {
		if k := keptWith(seed); k[0] != 0 {
			rotated = true
		}
	}
	if !rotated {
		t.Fatalf("no seed in 1..16 rotated the keep phase of rate 8")
	}
	// Different classes should not all share one phase under one seed.
	off1 := seededOffset(7, "venus.open", 64)
	off2 := seededOffset(7, "venus.store", 64)
	off3 := seededOffset(7, "venus.open", 64)
	if off1 != off3 {
		t.Fatalf("seededOffset not deterministic: %d vs %d", off1, off3)
	}
	if off1 == off2 {
		t.Logf("classes collided at offset %d (allowed, but surprising)", off1)
	}
}

func TestSlowKeepRecordsTailOperations(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.now)
	tr.SetPolicy(SamplePolicy{Default: ClassPolicy{Rate: 1000, SlowKeep: 100 * time.Millisecond}})
	// Root 0 is kept by phase; make it fast and uninteresting.
	tr.Begin(nil, "venus.open", "ws0").End()

	// A fast sampled-out root: nothing recorded.
	s := tr.Begin(nil, "venus.open", "ws0")
	clk.advance(time.Millisecond)
	s.End()
	if n := len(tr.Spans()); n != 1 {
		t.Fatalf("fast sampled-out root recorded a span (have %d)", n)
	}

	// A slow sampled-out root: promoted to a synthetic kept span.
	s = tr.Begin(nil, "venus.open", "ws1")
	clk.advance(250 * time.Millisecond)
	s.End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("slow sampled-out root not promoted: %d spans", len(spans))
	}
	kept := spans[1]
	if kept.Name() != "venus.open" || kept.Node() != "ws1" {
		t.Errorf("promoted span = %s on %s", kept.Name(), kept.Node())
	}
	if kept.Duration() != 250*time.Millisecond {
		t.Errorf("promoted span duration = %v, want 250ms", kept.Duration())
	}
	if kept.IntAttr(AttrSlowKept) != 1 {
		t.Errorf("promoted span missing %s attribute", AttrSlowKept)
	}
}

func TestExemplarsTrackWorstRootPerClass(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.now)
	k := sim.NewKernel()
	k.Spawn("p", func(p *sim.Proc) {
		for i, d := range []time.Duration{3 * time.Millisecond, 9 * time.Millisecond, 5 * time.Millisecond} {
			_ = i
			s := tr.Begin(p, "venus.open", "ws0")
			clk.advance(d)
			s.End()
		}
		s := tr.Begin(p, "venus.store", "ws0")
		clk.advance(time.Millisecond)
		s.End()
	})
	k.Run()
	exs := tr.TakeExemplars()
	if len(exs) != 2 {
		t.Fatalf("got %d exemplars, want 2: %+v", len(exs), exs)
	}
	if exs[0].Class != "venus.open" || exs[1].Class != "venus.store" {
		t.Fatalf("exemplar order: %s, %s", exs[0].Class, exs[1].Class)
	}
	if exs[0].Dur != sim.Duration(9*time.Millisecond) {
		t.Errorf("venus.open exemplar dur = %v, want 9ms", time.Duration(exs[0].Dur))
	}
	if got := tr.TraceSpans(exs[0].Trace); len(got) != 1 || got[0].Duration() != 9*time.Millisecond {
		t.Errorf("TraceSpans(%d) = %d spans", exs[0].Trace, len(got))
	}
	// Harvest resets the table.
	if again := tr.TakeExemplars(); len(again) != 0 {
		t.Errorf("second harvest returned %d exemplars", len(again))
	}
}

func TestSamplingDecisionsMatchAcrossRuns(t *testing.T) {
	run := func() []uint64 {
		clk := &fakeClock{}
		tr := New(clk.now)
		tr.SetPolicy(SamplePolicy{
			Seed:    17,
			Default: ClassPolicy{Rate: 4},
			Classes: map[string]ClassPolicy{"venus.store": {Rate: 2}},
		})
		classes := []string{"venus.open", "venus.store", "venus.open", "venus.store",
			"venus.open", "venus.fetch", "venus.store", "venus.open"}
		var traces []uint64
		for i, cl := range classes {
			s := tr.Begin(nil, cl, "ws0")
			clk.advance(time.Duration(i) * time.Millisecond)
			if ctx := s.Context(); ctx != (SpanContext{}) {
				traces = append(traces, ctx.Trace)
			}
			s.End()
		}
		return traces
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs kept different counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("kept trace IDs diverge at %d: %v vs %v", i, a, b)
		}
	}
}

func TestExemplarsPreferDecomposableRoots(t *testing.T) {
	// A synthetic slow-keep promotion has no child spans, so it cannot
	// explain a latency tail; the exemplar table must prefer fully-traced
	// roots over synthetics regardless of duration.
	clk := &fakeClock{}
	tr := New(clk.now)
	tr.SetPolicy(SamplePolicy{Default: ClassPolicy{Rate: 3, SlowKeep: 100 * time.Millisecond}})

	// Root 0: kept by phase, fast. Root 1: suppressed but slow — promoted to
	// a synthetic span, yet it must not displace the decomposable root 0.
	s := tr.Begin(nil, "venus.open", "ws0")
	clk.advance(10 * time.Millisecond)
	s.End()
	s = tr.Begin(nil, "venus.open", "ws1")
	clk.advance(300 * time.Millisecond)
	s.End()
	exs := tr.TakeExemplars()
	if len(exs) != 1 || exs[0].SlowKept || exs[0].Dur != sim.Duration(10*time.Millisecond) {
		t.Fatalf("exemplar = %+v, want the 10ms fully-traced root", exs)
	}

	// With the table empty, a synthetic fills it (tail visibility beats
	// nothing) — but the next kept root displaces it even though it is faster.
	s = tr.Begin(nil, "venus.open", "ws1") // root 2: suppressed, slow
	clk.advance(300 * time.Millisecond)
	s.End()
	if exs = tr.TakeExemplars(); len(exs) != 1 || !exs[0].SlowKept {
		t.Fatalf("exemplar = %+v, want the synthetic slow-keep", exs)
	}
	tr.Begin(nil, "venus.open", "ws0").End() // root 3: kept by phase, 0ms
	tr.TakeExemplars()                       // discard it
	s = tr.Begin(nil, "venus.open", "ws1")   // root 4: suppressed, slow again
	clk.advance(300 * time.Millisecond)
	s.End()
	s = tr.Begin(nil, "venus.open", "ws0") // root 5: suppressed, fast
	s.End()
	s = tr.Begin(nil, "venus.open", "ws0") // root 6: kept by phase, 5ms
	clk.advance(5 * time.Millisecond)
	s.End()
	exs = tr.TakeExemplars()
	if len(exs) != 1 || exs[0].SlowKept || exs[0].Dur != sim.Duration(5*time.Millisecond) {
		t.Fatalf("exemplar = %+v, want the 5ms fully-traced root displacing the synthetic", exs)
	}
}

func TestSuppressedSpanNestingAfterPooling(t *testing.T) {
	// A suppressed root's descendants are suppressed too, the ambient stack
	// survives, and pooled spans do not leak state between operations.
	clk := &fakeClock{}
	tr := New(clk.now)
	tr.SetPolicy(SamplePolicy{Default: ClassPolicy{Rate: 1 << 30, SlowKeep: time.Hour}})
	// Root 0 of the class is kept by phase; burn it so the loop below sees
	// only suppressed operations.
	tr.Begin(nil, "venus.open", "ws0").End()
	tr.Reset()
	k := sim.NewKernel()
	// t.Fatalf inside a proc would Goexit the goroutine and strand the
	// kernel, so collect the first failure and report it after Run.
	var fail string
	k.Spawn("p", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			root := tr.Begin(p, "venus.open", "ws0")
			child := tr.Begin(p, "rpc.call", "ws0")
			grand := tr.BeginRemote(p, child.Context(), "rpc.serve", "srv")
			if grand.Context() != (SpanContext{}) {
				fail = fmt.Sprintf("suppressed context leaked: %+v", grand.Context())
				return
			}
			grand.End()
			child.End()
			if Current(p) != root {
				fail = fmt.Sprintf("ambient stack broken at %d", i)
				return
			}
			root.End()
			if Current(p) != nil {
				fail = fmt.Sprintf("ambient not cleared at %d", i)
				return
			}
		}
	})
	k.Run()
	if fail != "" {
		t.Fatal(fail)
	}
	if n := len(tr.Spans()); n != 0 {
		t.Fatalf("suppressed fast operations recorded %d spans", n)
	}
}
