package trace

import (
	"sort"
	"time"

	"itcfs/internal/sim"
)

// Deterministic head-based sampling. The decision to trace is made once, at
// the root of each operation, from nothing but (class, per-class arrival
// index, seed) — so two same-seed runs keep exactly the same operations, and
// a kept operation is always complete across machines. Three refinements
// over the flat every-nth policy the plane launched with:
//
//   - Per-class rates. One-in-1024 is right for 30k clients' opens and wrong
//     for the dozen volume moves a day an operator wants every one of.
//   - Seeded phase offsets. Flat modulo keeps root 0, n, 2n, ... of every
//     class — always the cold-start operations. The seed rotates each
//     class's phase so repeated runs under different seeds cover different
//     slices of the workload while any one run stays byte-deterministic.
//   - A slow always-keep path. A sampled-out root still reads the clock at
//     Begin and End; if its closed latency reaches the class threshold, a
//     synthetic root span (attribute slow_kept=1) is recorded after the
//     fact. Children are gone — the decision not to record them was made at
//     Begin — but the tail operation itself, its class, node and extent,
//     lands in the trace and the exemplar table instead of vanishing into a
//     histogram bucket.
//
// Suppressed spans are pooled (Tracer.pool): the sampled-off path allocates
// nothing, which is what lets tracing stay on at 30k clients. The pool makes
// End a hard boundary — a *Span must not be touched after its End returns.

// AttrSlowKept marks a synthetic root span recorded by the slow always-keep
// path; such spans have no children.
const AttrSlowKept = "slow_kept"

// ClassPolicy is the sampling policy for one root span class.
type ClassPolicy struct {
	// Rate keeps one of every Rate roots of the class (<= 1 keeps all).
	Rate int
	// SlowKeep, when positive, records a synthetic span for any sampled-out
	// root whose closed latency is at least this long.
	SlowKeep time.Duration
}

// SamplePolicy is a tracer's full sampling configuration.
type SamplePolicy struct {
	// Seed rotates each class's keep phase (see seededOffset). Zero keeps
	// phase 0 for every class — the legacy SetSample behaviour.
	Seed int64
	// Default applies to classes without an explicit entry in Classes.
	Default ClassPolicy
	// Classes overrides the default per root span class.
	Classes map[string]ClassPolicy
}

// classState is the per-class sampling counter; rate, slow and offset are
// fixed at first use, n counts root arrivals.
type classState struct {
	rate   int
	slow   time.Duration
	offset uint64
	n      uint64
}

// SetPolicy installs a sampling policy, resetting per-class counters. Nil
// receiver is a no-op. Call before traffic flows: mid-run changes restart
// every class's arrival count.
func (t *Tracer) SetPolicy(p SamplePolicy) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.def = p.Default
	if t.def.Rate < 1 {
		t.def.Rate = 1
	}
	t.seed = p.Seed
	t.overrides = make(map[string]ClassPolicy, len(p.Classes))
	for k, v := range p.Classes {
		t.overrides[k] = v
	}
	t.classes = make(map[string]*classState)
	t.mu.Unlock()
}

// classLocked resolves (creating on first use) the class's sampling state.
//
//itcvet:holds mu
func (t *Tracer) classLocked(name string) *classState {
	cs := t.classes[name]
	if cs == nil {
		pol, ok := t.overrides[name]
		if !ok {
			pol = t.def
		}
		if pol.Rate < 1 {
			pol.Rate = 1
		}
		cs = &classState{rate: pol.Rate, slow: pol.SlowKeep,
			offset: seededOffset(t.seed, name, pol.Rate)}
		t.classes[name] = cs
	}
	return cs
}

// seededOffset is the class's keep phase: FNV-1a over (seed, class) reduced
// mod rate. Zero seed (or a keep-all rate) pins phase 0, preserving the
// pre-policy behaviour of keeping the very first root.
func seededOffset(seed int64, class string, rate int) uint64 {
	if seed == 0 || rate <= 1 {
		return 0
	}
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(uint64(seed) >> (8 * i)))
		h *= fnvPrime
	}
	for i := 0; i < len(class); i++ {
		h ^= uint64(class[i])
		h *= fnvPrime
	}
	return h % uint64(rate)
}

// getSuppressed returns a pooled suppressed span owned by this tracer. The
// span returns to the pool at End.
func (t *Tracer) getSuppressed() *Span {
	s, _ := t.pool.Get().(*Span)
	if s == nil {
		s = &Span{}
	}
	s.owner = t
	return s
}

// finishSuppressed runs the slow always-keep check and recycles the span.
// Only suppressed roots carry a slow threshold; suppressed descendants skip
// straight to the pool.
func (t *Tracer) finishSuppressed(s *Span) {
	if s.slow > 0 {
		end := t.now()
		if d := end.Sub(s.start); d >= s.slow {
			t.mu.Lock()
			t.nextTrace++
			t.nextSpan++
			kept := &Span{
				tr:    t,
				name:  s.name,
				node:  s.node,
				ctx:   SpanContext{Trace: t.nextTrace, Span: t.nextSpan},
				start: s.start,
				end:   end,
				attrs: []Attr{{Key: AttrSlowKept, Int: 1}},
				ended: true,
			}
			t.spans = append(t.spans, kept)
			t.noteRootEndLocked(kept)
			t.mu.Unlock()
		}
	}
	*s = Span{}
	t.pool.Put(s)
}

// Exemplar links the metrics plane back to the trace plane: the worst
// recorded root of one class over some interval, by ID. The Sampler harvests
// these each window (TakeExemplars), so every metric window can cite the
// trace that best explains its tail.
type Exemplar struct {
	Class string
	Trace uint64
	Span  uint64
	Dur   sim.Duration
	At    sim.Time // when the span closed
	// SlowKept marks a synthetic slow-keep promotion: the root's duration
	// survived but its descendants were suppressed, so the trace has no
	// critical-path decomposition.
	SlowKept bool
}

// noteRootEndLocked updates the per-class worst-since-harvest table with a
// finished recorded root. A fully-traced root is preferred over a synthetic
// slow-keep promotion regardless of duration — the exemplar's job is to
// explain the tail, and only a decomposable trace can; among roots of equal
// kind, worst duration wins and ties keep the earlier span — deterministic.
//
//itcvet:holds mu
func (t *Tracer) noteRootEndLocked(s *Span) {
	d := s.end.Sub(s.start)
	slow := s.IntAttr(AttrSlowKept) == 1
	w, ok := t.worst[s.name]
	if ok && slow && !w.SlowKept {
		return // never displace a decomposable exemplar with a synthetic one
	}
	if !ok || (!slow && w.SlowKept) || d > w.Dur {
		t.worst[s.name] = Exemplar{
			Class:    s.name,
			Trace:    s.ctx.Trace,
			Span:     s.ctx.Span,
			Dur:      d,
			At:       s.end,
			SlowKept: slow,
		}
	}
}

// TakeExemplars returns the worst recorded root per class since the last
// call (sorted by class) and resets the table. Nil receiver returns nil.
func (t *Tracer) TakeExemplars() []Exemplar {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Exemplar, 0, len(t.worst))
	for _, e := range t.worst {
		out = append(out, e)
	}
	for k := range t.worst {
		delete(t.worst, k)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// TraceSpans returns the finished spans of one trace in (start, span ID)
// order — the input WriteBreakdown and the SLO layer's critical-path
// embedding want for a single exemplar.
func (t *Tracer) TraceSpans(trace uint64) []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	var out []*Span
	for _, s := range t.spans {
		if s.ended && s.ctx.Trace == trace {
			out = append(out, s)
		}
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].start != out[j].start {
			return out[i].start < out[j].start
		}
		return out[i].ctx.Span < out[j].ctx.Span
	})
	return out
}
