package trace

import (
	"fmt"
	"io"
	"sync"

	"itcfs/internal/sim"
)

// Flight recorder: a bounded ring of structured operational events —
// callback break storms, RPC retries, degraded-mode entry and exit,
// salvages, reconnect sweeps — each stamped with the clock the recorder was
// built over (virtual time in the simulator, a wall-clock offset in itcfsd).
// Where the metrics plane answers "how much", the flight recorder answers
// "what happened, and when": it is the audit trail an operator reads after
// an incident. A nil *Recorder is valid and disables recording; hot call
// sites gate their fmt.Sprintf detail behind a nil check so the disabled
// path costs nothing.

// Event is one recorded operational event.
type Event struct {
	Seq    uint64   // global arrival order, never reused
	At     sim.Time // recorder-clock timestamp
	Kind   string   // dotted event class, e.g. "venus.degraded.enter"
	Node   string   // machine the event happened on
	Detail string   // free-form context
}

// Recorder is the bounded event ring.
type Recorder struct {
	// now is set at construction, immutable afterwards.
	now func() sim.Time

	mu     sync.Mutex
	events []Event  // guarded by mu — ring storage
	head   int      // guarded by mu — oldest event once full
	cap    int      // guarded by mu — ring capacity
	seq    uint64   // guarded by mu — events ever logged
	drops  *Counter // guarded by mu — MetricFlightDropped, when attached
}

// AttachMetrics makes ring evictions visible in the metrics plane: every
// event overwritten by wrap increments MetricFlightDropped, so a lossy audit
// trail announces itself instead of silently forgetting. No-op on a nil
// recorder or registry.
func (r *Recorder) AttachMetrics(reg *Registry) {
	if r == nil || reg == nil {
		return
	}
	c := reg.Counter(MetricFlightDropped)
	r.mu.Lock()
	r.drops = c
	r.mu.Unlock()
}

// NewRecorder returns a recorder holding the most recent capacity events
// (non-positive = 1024), timestamping each with now.
func NewRecorder(capacity int, now func() sim.Time) *Recorder {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Recorder{now: now, cap: capacity}
}

// Log appends one event, evicting the oldest when full. No-op on a nil
// recorder; callers building an expensive detail string should gate it with
// their own nil check.
func (r *Recorder) Log(kind, node, detail string) {
	if r == nil {
		return
	}
	at := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	e := Event{Seq: r.seq, At: at, Kind: kind, Node: node, Detail: detail}
	if len(r.events) < r.cap {
		r.events = append(r.events, e)
	} else {
		r.events[r.head] = e
		r.head = (r.head + 1) % len(r.events)
		r.drops.Inc()
	}
}

// Dropped returns how many events the ring has evicted.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq - uint64(len(r.events))
}

// Events returns the retained events in arrival order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.head:]...)
	out = append(out, r.events[:r.head]...)
	return out
}

// Total returns how many events were ever logged (retained or evicted).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// WriteText dumps the ring deterministically: a header with retained and
// evicted counts, then one line per event in arrival order.
func (r *Recorder) WriteText(w io.Writer) {
	if r == nil {
		return
	}
	evs := r.Events()
	total := r.Total()
	fmt.Fprintf(w, "flight recorder: %d events retained, %d dropped (counted in %s)\n",
		len(evs), total-uint64(len(evs)), MetricFlightDropped)
	for _, e := range evs {
		fmt.Fprintf(w, "[%6d] %-14v %-28s %-12s %s\n", e.Seq, e.At, e.Kind, e.Node, e.Detail)
	}
}
