package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry with a fixed set of observations. forward
// controls instrument creation order, which must not affect the export.
func goldenRegistry(forward bool) *Registry {
	reg := NewRegistry()
	fill := func() {
		reg.Counter("venus.cache.hits").Add(42)
		reg.Counter("venus.cache.misses").Add(7)
		reg.Counter("rpc.retries").Inc()
		reg.Gauge("rpc.server0.inflight").Set(3)
		reg.Gauge("server0.cpu.queue").Set(11)
		h := reg.Histogram("rpc.serve.latency")
		for _, d := range []time.Duration{
			90 * time.Microsecond,
			150 * time.Microsecond,
			time.Millisecond,
			3 * time.Millisecond,
			3500 * time.Microsecond,
			40 * time.Millisecond,
			1200 * time.Millisecond,
		} {
			h.Observe(d)
		}
		reg.Histogram("venus.open.latency").Observe(250 * time.Microsecond)
		reg.Histogram("vice.vol.2.latency") // registered, never observed
	}
	if forward {
		fill()
		return reg
	}
	// Reverse creation order: touch the instruments backwards first so the
	// registry maps are built in a different order, then apply the same
	// observations.
	reg.Histogram("vice.vol.2.latency")
	reg.Histogram("venus.open.latency")
	reg.Histogram("rpc.serve.latency")
	reg.Gauge("server0.cpu.queue")
	reg.Gauge("rpc.server0.inflight")
	reg.Counter("rpc.retries")
	reg.Counter("venus.cache.misses")
	reg.Counter("venus.cache.hits")
	fill()
	return reg
}

// TestWriteJSONGolden pins the export format: sections in fixed order, names
// sorted, buckets as ascending [index, count] pairs. Run with -update to
// regenerate after a deliberate format change.
func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry(true).WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	path := filepath.Join("testdata", "registry.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("WriteJSON drifted from golden file\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestWriteJSONValid checks the hand-built document parses as JSON and holds
// the values that went in.
func TestWriteJSONValid(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry(true).WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc struct {
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]int64 `json:"gauges"`
		Hists    map[string]struct {
			Count   int64      `json:"count"`
			SumNS   int64      `json:"sum_ns"`
			P50NS   int64      `json:"p50_ns"`
			Buckets [][2]int64 `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if doc.Counters["venus.cache.hits"] != 42 || doc.Counters["rpc.retries"] != 1 {
		t.Errorf("counters: %v", doc.Counters)
	}
	if doc.Gauges["rpc.server0.inflight"] != 3 {
		t.Errorf("gauges: %v", doc.Gauges)
	}
	h := doc.Hists["rpc.serve.latency"]
	if h.Count != 7 {
		t.Errorf("rpc.serve.latency count = %d, want 7", h.Count)
	}
	var bucketSum int64
	for _, b := range h.Buckets {
		bucketSum += b[1]
	}
	if bucketSum != h.Count {
		t.Errorf("bucket counts sum to %d, count is %d", bucketSum, h.Count)
	}
	if empty := doc.Hists["vice.vol.2.latency"]; empty.Count != 0 || len(empty.Buckets) != 0 {
		t.Errorf("never-observed histogram not empty: %+v", empty)
	}
}

// TestWriteJSONDeterministic: instrument creation order and repeated export
// must not change a byte.
func TestWriteJSONDeterministic(t *testing.T) {
	var a, b, c bytes.Buffer
	fwd := goldenRegistry(true)
	if err := fwd.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := fwd.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if err := goldenRegistry(false).WriteJSON(&c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two exports of one registry differ")
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Error("instrument creation order changed the export")
	}
}

// TestWriteJSONNil: a nil registry writes a valid, empty document.
func TestWriteJSONNil(t *testing.T) {
	var reg *Registry
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON on nil registry: %v", err)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil-registry export is not valid JSON: %v\n%s", err, buf.Bytes())
	}
}
