package trace

import (
	"bytes"
	"math/bits"
	"math/rand"
	"sort"
	"testing"
	"time"

	"itcfs/internal/sim"
)

// TestBucketQuantileVsBruteForce checks the sampler's window quantiles —
// computed from histogram bucket diffs — against a brute-force quantile over
// the same window's observations, bucketized the same way.
func TestBucketQuantileVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewRegistry().Histogram("lat")

	// First window: background observations that must not leak into the
	// second window's quantiles.
	before := h.snapshot("lat")
	for i := 0; i < 500; i++ {
		h.Observe(time.Duration(rng.Int63n(int64(5 * time.Second))))
	}
	mid := h.snapshot("lat")

	var window []time.Duration
	for i := 0; i < 300; i++ {
		d := time.Duration(rng.Int63n(int64(200 * time.Millisecond)))
		window = append(window, d)
		h.Observe(d)
	}
	after := h.snapshot("lat")

	diff := func(a, b HistSnapshot) ([histBuckets]int64, int64) {
		var d [histBuckets]int64
		for i := range d {
			d[i] = b.Buckets[i] - a.Buckets[i]
		}
		return d, b.Count - a.Count
	}

	// Brute force: map each window observation to its bucket midpoint (the
	// resolution the histogram retains), sort, take the same rank.
	mids := make([]time.Duration, len(window))
	for i, d := range window {
		mids[i] = bucketMid(bits.Len64(uint64(d / time.Microsecond)))
	}
	sort.Slice(mids, func(i, j int) bool { return mids[i] < mids[j] })
	for _, q := range []float64{0.01, 0.25, 0.50, 0.90, 0.99, 1.0} {
		buckets, n := diff(mid, after)
		got := bucketQuantile(&buckets, n, q)
		rank := int64(q * float64(len(mids)))
		if rank < 1 {
			rank = 1
		}
		want := mids[rank-1]
		if got != want {
			t.Errorf("q=%.2f: bucket-diff quantile %v, brute force %v", q, got, want)
		}
	}

	// The first window's diff must reflect only its own 500 observations.
	if buckets, n := diff(before, mid); n != 500 {
		t.Errorf("first window count = %d, want 500", n)
	} else if q := bucketQuantile(&buckets, n, 0.5); q <= 0 {
		t.Errorf("first window p50 = %v", q)
	}
}

// TestBucketQuantileEmpty: an empty window yields zero, not a stale value.
func TestBucketQuantileEmpty(t *testing.T) {
	var buckets [histBuckets]int64
	if got := bucketQuantile(&buckets, 0, 0.5); got != 0 {
		t.Errorf("empty window p50 = %v, want 0", got)
	}
}

// TestSeriesRingWraparound: the ring keeps the newest points in
// chronological order and counts what it dropped.
func TestSeriesRingWraparound(t *testing.T) {
	s := &Series{name: "x"}
	const capacity = 4
	for i := 1; i <= 10; i++ {
		s.append(capacity, Point{At: sim.Time(i), V: int64(i * 100)})
	}
	pts := s.points()
	if len(pts) != capacity {
		t.Fatalf("ring holds %d points, want %d", len(pts), capacity)
	}
	for i, p := range pts {
		want := int64(7 + i)
		if int64(p.At) != want || p.V != want*100 {
			t.Errorf("pts[%d] = {%d, %d}, want {%d, %d}", i, int64(p.At), p.V, want, want*100)
		}
	}
	if s.Dropped() != 6 {
		t.Errorf("Dropped() = %d, want 6", s.Dropped())
	}
}

// TestSamplerWindows: counters sample as per-window deltas, gauges as values
// at the sample instant, histograms as .n/.p50/.p90/.p99 window series, and
// cumulative probes as deltas.
func TestSamplerWindows(t *testing.T) {
	reg := NewRegistry()
	s := NewSampler(reg, time.Second, 0)
	var probeTotal int64
	s.AddCumulative("probe.busy", func() int64 { return probeTotal })
	var level int64
	s.AddInstant("probe.queue", func() int64 { return level })

	c := reg.Counter("ops")
	g := reg.Gauge("depth")
	h := reg.Histogram("lat")

	c.Add(5)
	g.Set(2)
	h.Observe(time.Millisecond)
	h.Observe(time.Millisecond)
	probeTotal, level = 100, 7
	s.Sample(sim.Time(1e9))

	c.Add(3)
	g.Set(9)
	h.Observe(time.Second)
	probeTotal, level = 180, 1
	s.Sample(sim.Time(2e9))

	check := func(name string, want ...int64) {
		t.Helper()
		pts := s.Points(name)
		if len(pts) != len(want) {
			t.Fatalf("%s: %d points, want %d", name, len(pts), len(want))
		}
		for i, w := range want {
			if pts[i].V != w {
				t.Errorf("%s[%d] = %d, want %d", name, i, pts[i].V, w)
			}
		}
	}
	check("ops", 5, 3)
	check("depth", 2, 9)
	check("probe.busy", 100, 80)
	check("probe.queue", 7, 1)
	check("lat.n", 2, 1)
	p50 := s.Points("lat.p50")
	if len(p50) != 2 {
		t.Fatalf("lat.p50: %d points", len(p50))
	}
	// Window 1 holds two 1ms observations; window 2 one 1s observation. The
	// quantile is the bucket midpoint of the window's own distribution.
	w1 := bucketMid(bits.Len64(uint64(time.Millisecond / time.Microsecond)))
	w2 := bucketMid(bits.Len64(uint64(time.Second / time.Microsecond)))
	if p50[0].V != int64(w1) || p50[1].V != int64(w2) {
		t.Errorf("lat.p50 = [%d %d], want [%d %d]", p50[0].V, p50[1].V, int64(w1), int64(w2))
	}
	if s.Samples() != 2 {
		t.Errorf("Samples() = %d, want 2", s.Samples())
	}
}

// TestSamplerOnKernel: Start schedules horizon-bounded ticks — the kernel
// drains to idle (so Run terminates) and the sampler takes exactly
// horizon/cadence samples.
func TestSamplerOnKernel(t *testing.T) {
	k := sim.NewKernel()
	reg := NewRegistry()
	c := reg.Counter("ticks")
	s := NewSampler(reg, time.Second, 0)
	k.Spawn("load", func(p *sim.Proc) {
		for i := 0; i < 40; i++ {
			c.Inc()
			p.Sleep(100 * time.Millisecond)
		}
	})
	s.Start(k, 5*time.Second)
	end := k.Run()
	if s.Samples() != 5 {
		t.Errorf("Samples() = %d, want 5", s.Samples())
	}
	if end > sim.Time(5*time.Second) {
		t.Errorf("kernel ran to %v; sampler ticks must stop at the horizon", end)
	}
	pts := s.Points("ticks")
	var total int64
	for _, p := range pts {
		total += p.V
	}
	// 40 increments at 100ms spacing: the first 5 one-second windows cover
	// all but the tail that falls past the horizon.
	if len(pts) != 5 || total < 40 {
		t.Errorf("ticks series = %v (total %d), want 5 windows totalling >= 40", pts, total)
	}
}

// TestSamplerExportsDeterministic: identical observation sequences yield
// byte-identical CSV, JSON and dashboard output.
func TestSamplerExportsDeterministic(t *testing.T) {
	build := func() *Sampler {
		reg := NewRegistry()
		s := NewSampler(reg, time.Second, 0)
		c := reg.Counter("ops")
		h := reg.Histogram("lat")
		for i := 1; i <= 8; i++ {
			c.Add(int64(i))
			h.Observe(time.Duration(i) * time.Millisecond)
			s.Sample(sim.Time(int64(i) * 1e9))
		}
		return s
	}
	a, b := build(), build()
	var ac, bc, aj, bj, ad, bd bytes.Buffer
	if err := a.WriteCSV(&ac); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteCSV(&bc); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteJSON(&aj); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&bj); err != nil {
		t.Fatal(err)
	}
	a.WriteDashboard(&ad)
	b.WriteDashboard(&bd)
	if !bytes.Equal(ac.Bytes(), bc.Bytes()) {
		t.Error("CSV export differs between identical runs")
	}
	if !bytes.Equal(aj.Bytes(), bj.Bytes()) {
		t.Error("JSON export differs between identical runs")
	}
	if !bytes.Equal(ad.Bytes(), bd.Bytes()) {
		t.Error("dashboard differs between identical runs")
	}
	if ac.Len() == 0 || aj.Len() == 0 || ad.Len() == 0 {
		t.Error("empty export")
	}
}

// TestSamplerNil: a nil sampler is a no-op everywhere.
func TestSamplerNil(t *testing.T) {
	var s *Sampler
	s.AddCumulative("x", func() int64 { return 1 })
	s.AddInstant("y", func() int64 { return 1 })
	s.Sample(0)
	if s.Points("x") != nil || s.SeriesNames() != nil || s.Samples() != 0 || s.Every() != 0 {
		t.Error("nil sampler leaked state")
	}
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s.WriteDashboard(&buf)
}
