package trace

import "strconv"

// Canonical observability names. Every metric a layer registers and every
// flight-recorder event kind it logs is named here, in one table, so
// exporters, dashboards, the Sampler's collapse rules, the SLO layer and the
// docs all reference the same strings — and itcvet's driftcheck flags any
// instrument or event named from a string literal outside this package,
// which is how emitted names and their consumers were kept from drifting
// apart once the cell grew past the point where anyone could eyeball a
// metrics dump.
//
// Naming convention: "<layer>.<object>[.<qualifier>]", with per-entity
// families built by the helper functions below ("vice.vol.<id>.ops",
// "net.<link>.bytes", ...). Series derived from histograms append the
// Sampler's ".n"/".p50"/".p90"/".p99" suffixes to these names.

// Counters.
const (
	MetricVenusCacheHits      = "venus.cache.hits"
	MetricVenusCacheMisses    = "venus.cache.misses"
	MetricVenusFailover       = "venus.failover"
	MetricVenusCallbackBreaks = "venus.callback_breaks"

	MetricRPCRetries           = "rpc.retries"
	MetricRPCCallTimeouts      = "rpc.call.timeouts"
	MetricRPCReplyCacheReplays = "rpc.reply_cache.replays"
	MetricRPCDupSuppressed     = "rpc.dup_suppressed"

	MetricViceLockConflicts           = "vice.lock_conflicts"
	MetricViceCallbackBreaks          = "vice.callback.breaks"
	MetricViceCallbackBreakRPCs       = "vice.callback.break_rpcs"
	MetricViceSalvageReplayed         = "vice.salvage.replayed"
	MetricViceSalvageDiscardedRecords = "vice.salvage.discarded_records"
	MetricViceSalvageDiscardedBytes   = "vice.salvage.discarded_bytes"
	MetricViceSalvageOrphansRemoved   = "vice.salvage.orphans_removed"
	MetricViceSalvageDanglingEntries  = "vice.salvage.dangling_entries"
	MetricViceSalvageLinksFixed       = "vice.salvage.links_fixed"

	MetricReplicaReleaseInstalls     = "replica.release.installs"
	MetricReplicaReleasePushFailures = "replica.release.push_failures"

	// MetricFlightDropped counts flight-recorder events overwritten by ring
	// wrap — evidence in the metrics plane that the audit trail is lossy.
	MetricFlightDropped = "trace.flight.dropped"
)

// Gauges.
const (
	MetricReplicaDedupLogicalBytes  = "replica.dedup.logical_bytes"
	MetricReplicaDedupPhysicalBytes = "replica.dedup.physical_bytes"
)

// Histograms.
const (
	MetricVenusOpenLatency  = "venus.open.latency"
	MetricVenusStoreLatency = "venus.store.latency"

	MetricRPCServeLatency = "rpc.serve.latency"
	MetricRPCCallLatency  = "rpc.call.latency"
	// MetricRPCAcceptLatency is the wall-clock handshake cost of accepting
	// one authenticated peer; observed only by the TCP daemon.
	MetricRPCAcceptLatency = "rpc.accept.latency"

	MetricViceCallbackFanout = "vice.callback.fanout"
	MetricViceCallbackBatch  = "vice.callback.batch"
)

// Per-entity metric families.

// RPCInflightGauge names the per-endpoint in-flight call gauge.
func RPCInflightGauge(node string) string { return "rpc." + node + ".inflight" }

// VolOpsMetric names the per-volume hot-path operation counter a Vice
// server maintains.
func VolOpsMetric(vol uint32) string {
	return "vice.vol." + strconv.FormatUint(uint64(vol), 10) + ".ops"
}

// VolLatencyMetric names the per-volume service-time histogram.
func VolLatencyMetric(vol uint32) string {
	return "vice.vol." + strconv.FormatUint(uint64(vol), 10) + ".latency"
}

// LinkFramesMetric, LinkBytesMetric, LinkQueueMetric and LinkBusyGauge name
// the per-link instruments the simulated network registers.
func LinkFramesMetric(link string) string { return "net." + link + ".frames" }
func LinkBytesMetric(link string) string  { return "net." + link + ".bytes" }
func LinkQueueMetric(link string) string  { return "net." + link + ".queue" }
func LinkBusyGauge(link string) string    { return "net." + link + ".busy_ns" }

// Sampler probe series (no registry instrument behind them; the names live
// here so dashboards and the overload detector share them with the cell).

// ServerCPUSeries names the sampled per-window CPU busy-time series (ns).
func ServerCPUSeries(server string) string { return "server." + server + ".cpu.busy_ns" }

// ServerDiskSeries names the sampled per-window disk busy-time series.
func ServerDiskSeries(server string) string { return "server." + server + ".disk.busy_ns" }

// ServerQueueSeries names the sampled instantaneous CPU queue-depth series.
func ServerQueueSeries(server string) string { return "server." + server + ".cpu.queue" }

// LinkBusySeries names the sampled per-window link busy-time series.
func LinkBusySeries(link string) string { return "net." + link + ".link_busy_ns" }

// SLOBurnSeries names the derived per-class burn-rate series the SLO layer
// records on the sampling cadence (value = burn rate x 1000, integral so the
// series plane stays integer-only and byte-deterministic).
func SLOBurnSeries(class string) string { return "slo." + class + ".burn_milli" }

// Flight-recorder event kinds.
const (
	EventRPCRetry = "rpc.retry"

	EventVenusFailover       = "venus.failover"
	EventVenusDegradedEnter  = "venus.degraded.enter"
	EventVenusDegradedExit   = "venus.degraded.exit"
	EventVenusReconnectSweep = "venus.reconnect.sweep"

	EventViceCallbackStorm = "vice.callback.storm"
	EventViceVolumeMove    = "vice.volume.move"
	EventViceSalvage       = "vice.salvage"

	EventReplicaRelease = "replica.release"

	// EventSLOBreach and EventSLORecover bracket an SLO burn-rate episode;
	// the breach detail embeds the critical-path decomposition of the worst
	// sampled exemplar span (see monitor.SLOMonitor).
	EventSLOBreach  = "slo.breach"
	EventSLORecover = "slo.recover"
)

// Span classes. Sampling rates, slow-keep thresholds, exemplars and SLO
// objectives are all keyed by the root span's class, so these share the
// table with the metric names derived from them (class + ".latency").
const (
	SpanVenusOpen         = "venus.open"
	SpanVenusStore        = "venus.store"
	SpanVenusValidate     = "venus.validate"
	SpanVenusFetch        = "venus.fetch"
	SpanVenusRevalidate   = "venus.revalidate"
	SpanVenusValidateBulk = "venus.validate.bulk"
)
