package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"itcfs/internal/sim"
)

// TestRecorderRing: the ring keeps the newest events in arrival order,
// sequence numbers never reset, and Total counts evictions.
func TestRecorderRing(t *testing.T) {
	var now sim.Time
	r := NewRecorder(3, func() sim.Time { return now })
	kinds := []string{"a", "b", "c", "d", "e"}
	for i, k := range kinds {
		now = sim.Time(i) * sim.Time(time.Second)
		r.Log(k, "node", "detail")
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	for i, e := range evs {
		wantSeq := uint64(3 + i)
		wantKind := kinds[2+i]
		if e.Seq != wantSeq || e.Kind != wantKind {
			t.Errorf("evs[%d] = seq %d kind %q, want seq %d kind %q", i, e.Seq, e.Kind, wantSeq, wantKind)
		}
		if e.At != sim.Time(2+i)*sim.Time(time.Second) {
			t.Errorf("evs[%d].At = %v", i, e.At)
		}
	}
	if r.Total() != 5 {
		t.Errorf("Total() = %d, want 5", r.Total())
	}
}

// TestRecorderWriteText pins the dump format and its determinism.
func TestRecorderWriteText(t *testing.T) {
	build := func() *Recorder {
		var now sim.Time
		r := NewRecorder(2, func() sim.Time { return now })
		now = sim.Time(time.Second)
		r.Log("rpc.retry", "ws1", "op 3 attempt 1")
		now = sim.Time(2 * time.Second)
		r.Log("vice.salvage", "server0", "volume 2: clean")
		now = sim.Time(3 * time.Second)
		r.Log("venus.degraded.enter", "ws2", "custodian unreachable")
		return r
	}
	var a, b bytes.Buffer
	build().WriteText(&a)
	build().WriteText(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("identical recorders dumped different bytes")
	}
	out := a.String()
	if !strings.Contains(out, "2 events retained, 1 dropped") {
		t.Errorf("header missing eviction count:\n%s", out)
	}
	if strings.Contains(out, "rpc.retry") {
		t.Errorf("evicted event still present:\n%s", out)
	}
	if !strings.Contains(out, "vice.salvage") || !strings.Contains(out, "venus.degraded.enter") {
		t.Errorf("retained events missing:\n%s", out)
	}
}

// TestRecorderNil: every method is a no-op on a nil recorder.
func TestRecorderNil(t *testing.T) {
	var r *Recorder
	r.Log("k", "n", "d")
	if r.Events() != nil || r.Total() != 0 {
		t.Error("nil recorder leaked state")
	}
	var buf bytes.Buffer
	r.WriteText(&buf)
	if buf.Len() != 0 {
		t.Errorf("nil recorder wrote %q", buf.String())
	}
}
