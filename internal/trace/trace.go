// Package trace is the observability plane of the reproduction: a
// deterministic distributed-tracing and metrics subsystem in the style of
// span-based wide-area tracers, adapted to the discrete-event simulator.
//
// A Tracer records Spans — named intervals of virtual time with parent/child
// causality. Spans nest two ways: within a process, via a proc-local ambient
// span (sim.Proc.Trace), so instrumented layers need no plumbing through
// interfaces; and across RPC boundaries, via a wire.TraceHeader carried in
// every call packet. Timestamps come from the simulation kernel, and span and
// trace IDs are assigned in creation order, so two runs with the same seed
// produce byte-identical exported traces.
//
// Tracing is near-zero-cost when disabled: a nil *Tracer begins nil *Spans,
// and every Span method is a nil-receiver no-op, so instrumentation sites pay
// one nil check and no allocation. Sampling keeps cost bounded when enabled:
// a sampled-out root yields a *suppressed* span (non-nil, recording nothing)
// that still maintains the ambient stack and propagates a zero context, so an
// entire operation is traced or not traced as a unit across machines.
// Suppressed spans come from a pool and return to it at End, so the
// sampled-off path is allocation-free too (see sample.go for the policy:
// seeded per-class rates, slow always-keep, exemplars). The pool makes End a
// hard boundary: no Span may be used after its End returns.
package trace

import (
	"sort"
	"sync"
	"time"

	"itcfs/internal/sim"
	"itcfs/internal/wire"
)

// SpanContext identifies a span for propagation across an RPC boundary. It
// is the wire representation itself: sixteen bytes, always present in call
// packets, zero when the caller is untraced.
type SpanContext = wire.TraceHeader

// Span and attribute names shared between the instrumented layers and the
// critical-path analyzer. The analyzer keys on SpanRPCCall: everything below
// it in a trace happened on the far side of the network and is accounted by
// the attributes the RPC client stamps on the call span.
const (
	SpanRPCCall  = "rpc.call"  // client side of one RPC (send to reply)
	SpanRPCServe = "rpc.serve" // server side of one RPC (worker lifetime)

	AttrOp          = "op"            // RPC opcode
	AttrNetQueueNs  = "net_queue_ns"  // time frames waited for busy links
	AttrNetSerialNs = "net_serial_ns" // time frames clocked onto links
	AttrNetPropNs   = "net_prop_ns"   // propagation and bridge forwarding
	AttrServerNs    = "server_ns"     // server service time (dispatch + cost charges)
)

// Attr is one key/value annotation on a span. Attributes are stored in the
// order they were set, never in a map, so exports are deterministic.
type Attr struct {
	Key   string
	Int   int64
	Str   string
	IsStr bool
}

// Span is one named interval of virtual time within a trace. The zero of
// usefulness is a nil *Span: every method is a nil-receiver no-op, which is
// the disabled-tracing fast path. A non-nil span with a nil tracer is
// *suppressed* (its root was sampled out): it maintains the ambient stack and
// propagates a zero context but records nothing.
type Span struct {
	tr     *Tracer // nil for suppressed spans
	name   string
	node   string // machine the span ran on, for per-process grouping
	ctx    SpanContext
	parent uint64 // parent span ID within the same trace; 0 for roots
	start  sim.Time
	end    sim.Time
	attrs  []Attr
	ended  bool

	proc *sim.Proc // proc whose ambient slot this span occupies, until End
	prev any       // saved previous ambient value

	// Suppressed spans only: the tracer whose pool the span returns to at
	// End, and the class's slow always-keep threshold (set on suppressed
	// roots; zero elsewhere).
	owner *Tracer
	slow  time.Duration
}

// Tracer records spans against a clock. Create one with New; a nil *Tracer
// is valid and disables tracing entirely.
type Tracer struct {
	mu        sync.Mutex
	now       func() sim.Time        // set at construction, immutable afterwards
	def       ClassPolicy            // guarded by mu — default per-class policy
	seed      int64                  // guarded by mu — rotates class keep phases
	overrides map[string]ClassPolicy // guarded by mu — per-class policy overrides
	classes   map[string]*classState // guarded by mu — per-class arrival counters
	worst     map[string]Exemplar    // guarded by mu — worst root per class since harvest
	nextTrace uint64                 // guarded by mu
	nextSpan  uint64                 // guarded by mu
	spans     []*Span                // guarded by mu

	// pool recycles suppressed spans; sync.Pool carries its own sync.
	pool sync.Pool
}

// New returns a tracer reading timestamps from now — typically the simulation
// kernel's clock, or a monotonic wall offset for real transports.
func New(now func() sim.Time) *Tracer {
	return &Tracer{
		now:     now,
		def:     ClassPolicy{Rate: 1},
		classes: make(map[string]*classState),
		worst:   make(map[string]Exemplar),
	}
}

// SetSample records every nth root operation (and, transitively, its whole
// distributed trace); n <= 1 records everything. Shorthand for a SamplePolicy
// with one flat default rate and no seed, kept for the common case.
func (t *Tracer) SetSample(n int) {
	t.SetPolicy(SamplePolicy{Default: ClassPolicy{Rate: n}})
}

// Reset discards recorded spans — the boundary between an observation
// window and what preceded it (bootstrap, warm-up). ID counters keep
// increasing so spans recorded after a Reset are unaffected by when (or
// whether) it happened only in their numbering's starting point, which is
// itself deterministic.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = nil
	t.mu.Unlock()
}

// Current returns the ambient span of the process, or nil.
func Current(p *sim.Proc) *Span {
	if p == nil {
		return nil
	}
	s, _ := p.Trace.(*Span)
	return s
}

// ContextOf returns the propagation context of the process's ambient span;
// zero when untraced or suppressed.
func ContextOf(p *sim.Proc) SpanContext { return Current(p).Context() }

// install makes s the ambient span of p until End.
func (s *Span) install(p *sim.Proc) *Span {
	if p != nil {
		s.proc = p
		s.prev = p.Trace
		p.Trace = s
	}
	return s
}

// Begin starts a span on process p: a child of p's ambient span if there is
// one, otherwise a new root subject to the sampling policy. The span becomes
// p's ambient span until End. A nil tracer returns nil; a nil p is allowed
// (the span is simply not ambient anywhere).
func (t *Tracer) Begin(p *sim.Proc, name, node string) *Span {
	if t == nil {
		return nil
	}
	parent := Current(p)
	if parent != nil && parent.tr == nil {
		return t.getSuppressed().install(p) // suppressed parent: stay suppressed
	}
	t.mu.Lock()
	var s *Span
	if parent != nil {
		s = t.startLocked(name, node, parent.ctx.Trace, parent.ctx.Span)
		t.mu.Unlock()
	} else {
		cs := t.classLocked(name)
		n := cs.n
		cs.n++
		if cs.rate > 1 && (n+cs.offset)%uint64(cs.rate) != 0 {
			// Sampled out: suppress the whole operation. The root remembers
			// its class and (when the class has a slow threshold) its start,
			// so End can still promote a tail-latency operation to a
			// recorded span.
			slow := cs.slow
			t.mu.Unlock()
			s = t.getSuppressed()
			s.name, s.node = name, node
			if slow > 0 {
				s.slow = slow
				s.start = t.now()
			}
		} else {
			t.nextTrace++
			s = t.startLocked(name, node, t.nextTrace, 0)
			t.mu.Unlock()
		}
	}
	return s.install(p)
}

// BeginRemote starts the server-side span of a call that arrived with the
// given propagation context. A zero context means the caller was untraced or
// sampled out, so the server span is suppressed too — on the simulated
// network every endpoint shares one tracer, and a traced caller always sends
// a non-zero context.
func (t *Tracer) BeginRemote(p *sim.Proc, ctx SpanContext, name, node string) *Span {
	if t == nil {
		return nil
	}
	if ctx == (SpanContext{}) {
		return t.getSuppressed().install(p)
	}
	t.mu.Lock()
	s := t.startLocked(name, node, ctx.Trace, ctx.Span)
	t.mu.Unlock()
	return s.install(p)
}

// StartRemote begins a server span for a call arriving over a real
// transport, where a zero context means the client simply does not trace:
// it starts a new root instead of suppressing. Used by the TCP daemon.
func (t *Tracer) StartRemote(ctx SpanContext, name, node string) *Span {
	if t == nil {
		return nil
	}
	if ctx == (SpanContext{}) {
		return t.Begin(nil, name, node)
	}
	return t.BeginRemote(nil, ctx, name, node)
}

// startLocked allocates and registers a recording span. Caller holds t.mu.
//
//itcvet:holds mu
func (t *Tracer) startLocked(name, node string, traceID, parent uint64) *Span {
	t.nextSpan++
	s := &Span{
		tr:     t,
		name:   name,
		node:   node,
		ctx:    SpanContext{Trace: traceID, Span: t.nextSpan},
		parent: parent,
		start:  t.now(),
	}
	t.spans = append(t.spans, s)
	return s
}

// End finishes the span, restoring the process's previous ambient span and
// stamping the end time. Safe on nil spans. A span must not be used after
// End: suppressed spans return to their tracer's pool here (after the slow
// always-keep check), and recorded roots update the exemplar table.
func (s *Span) End() {
	if s == nil {
		return
	}
	if s.proc != nil && s.proc.Trace == s {
		s.proc.Trace = s.prev
		s.proc, s.prev = nil, nil
	}
	if s.tr == nil {
		if s.owner != nil {
			s.owner.finishSuppressed(s)
		}
		return
	}
	if s.ended {
		return
	}
	s.tr.mu.Lock()
	s.end = s.tr.now()
	s.ended = true
	if s.parent == 0 {
		s.tr.noteRootEndLocked(s)
	}
	s.tr.mu.Unlock()
}

// Context returns the span's propagation context; zero for nil or suppressed
// spans, which is exactly what goes on the wire for untraced calls.
func (s *Span) Context() SpanContext {
	if s == nil || s.tr == nil {
		return SpanContext{}
	}
	return s.ctx
}

// SetInt annotates the span. No-op on nil and suppressed spans.
func (s *Span) SetInt(key string, v int64) {
	if s == nil || s.tr == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Int: v})
}

// SetStr annotates the span. No-op on nil and suppressed spans.
func (s *Span) SetStr(key, v string) {
	if s == nil || s.tr == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Str: v, IsStr: true})
}

// IntAttr returns the last integer attribute set under key, or 0.
func (s *Span) IntAttr(key string) int64 {
	if s == nil {
		return 0
	}
	var v int64
	for _, a := range s.attrs {
		if a.Key == key && !a.IsStr {
			v = a.Int
		}
	}
	return v
}

// Name returns the span's name.
func (s *Span) Name() string { return s.name }

// Node returns the machine the span ran on.
func (s *Span) Node() string { return s.node }

// Parent returns the parent span ID within the trace; 0 for roots.
func (s *Span) Parent() uint64 { return s.parent }

// Start returns the span's start time.
func (s *Span) Start() sim.Time { return s.start }

// Duration returns the span's extent in virtual time.
func (s *Span) Duration() sim.Duration { return s.end.Sub(s.start) }

// Attrs returns the span's annotations in the order they were set.
func (s *Span) Attrs() []Attr { return s.attrs }

// Spans returns every finished span, ordered by start time then span ID —
// a total, deterministic order. Unfinished spans (long-lived daemon loops
// still open when the run stops) are omitted.
func (t *Tracer) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, 0, len(t.spans))
	for _, s := range t.spans {
		if s.ended {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].start != out[j].start {
			return out[i].start < out[j].start
		}
		return out[i].ctx.Span < out[j].ctx.Span
	})
	return out
}
