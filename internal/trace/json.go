package trace

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Machine-readable registry export. WriteJSON is the JSON twin of WriteText:
// every instrument in sorted name order, every field in a fixed order, and
// histogram buckets encoded as ascending [index, count] pairs — so two runs
// that observed the same values produce byte-identical documents. The
// itcbench series export and the itcfsd debug endpoint both serve it.

// NamedValue is one counter or gauge reading in a Snapshot.
type NamedValue struct {
	Name  string
	Value int64
}

// HistSnapshot is a point-in-time copy of one histogram's state. Bucket i
// holds observations whose microsecond count has bit length i (see
// Histogram); diffing two snapshots of the same histogram yields the
// per-window distribution the Sampler computes quantiles from.
type HistSnapshot struct {
	Name    string
	Buckets [histBuckets]int64
	Count   int64
	Sum     time.Duration
	Min     time.Duration
	Max     time.Duration
}

// quantile returns the q-quantile of the snapshot as the midpoint of the
// bucket containing that rank, clamped to the recorded min and max — the
// same convention as Histogram.Quantile.
func (h *HistSnapshot) quantile(q float64) time.Duration {
	if h.Count == 0 {
		return 0
	}
	v := bucketQuantile(&h.Buckets, h.Count, q)
	if v < h.Min {
		v = h.Min
	}
	if v > h.Max {
		v = h.Max
	}
	return v
}

// bucketQuantile returns the q-quantile (0 < q <= 1) of count observations
// spread over the logarithmic buckets, as the midpoint of the bucket holding
// that rank. It is the shared core of Histogram.Quantile and the Sampler's
// per-window quantiles (which diff two snapshots and so have no min/max to
// clamp against).
func bucketQuantile(buckets *[histBuckets]int64, count int64, q float64) time.Duration {
	if count <= 0 {
		return 0
	}
	rank := int64(q * float64(count))
	if rank < 1 {
		rank = 1
	}
	if rank > count {
		rank = count
	}
	var cum int64
	for i, n := range buckets {
		cum += n
		if cum >= rank {
			return bucketMid(i)
		}
	}
	return bucketMid(histBuckets - 1)
}

// Snapshot returns a point-in-time copy of every instrument, each section
// sorted by name. A nil registry yields an empty snapshot.
type Snapshot struct {
	Counters []NamedValue
	Gauges   []NamedValue
	Hists    []HistSnapshot
}

// Snapshot copies the registry's current state. It is safe to call
// concurrently with observations.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	type namedHist struct {
		name string
		h    *Histogram
	}
	r.mu.Lock()
	counters := make([]NamedValue, 0, len(r.counters)+len(r.striped))
	for n, c := range r.counters {
		counters = append(counters, NamedValue{Name: n, Value: c.Value()})
	}
	for n, c := range r.striped {
		counters = append(counters, NamedValue{Name: n, Value: c.Value()})
	}
	gauges := make([]NamedValue, 0, len(r.gauges))
	for n, g := range r.gauges {
		gauges = append(gauges, NamedValue{Name: n, Value: g.Value()})
	}
	hists := make([]namedHist, 0, len(r.hists))
	for n, h := range r.hists {
		hists = append(hists, namedHist{name: n, h: h})
	}
	r.mu.Unlock()
	sort.Slice(counters, func(i, j int) bool { return counters[i].Name < counters[j].Name })
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].Name < gauges[j].Name })
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })
	s.Counters, s.Gauges = counters, gauges
	s.Hists = make([]HistSnapshot, 0, len(hists))
	for _, nh := range hists {
		s.Hists = append(s.Hists, nh.h.snapshot(nh.name))
	}
	return s
}

// State copies the histogram's current state under its lock, labeled with
// name — the single-instrument twin of Registry.Snapshot, for consumers (the
// SLO layer) that window one histogram on their own cadence.
func (h *Histogram) State(name string) HistSnapshot { return h.snapshot(name) }

// snapshot copies the histogram's state under its lock.
func (h *Histogram) snapshot(name string) HistSnapshot {
	if h == nil {
		return HistSnapshot{Name: name}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistSnapshot{
		Name:    name,
		Buckets: h.buckets,
		Count:   h.count,
		Sum:     h.sum,
		Min:     h.min,
		Max:     h.max,
	}
}

// WriteJSON writes the registry as a deterministic JSON document: sections
// in fixed order, names sorted, histogram buckets as ascending
// [index, count] pairs with zero buckets omitted. A nil registry writes an
// empty document.
func (r *Registry) WriteJSON(w io.Writer) error {
	s := r.Snapshot()
	if _, err := io.WriteString(w, "{\n \"counters\": {"); err != nil {
		return err
	}
	for i, c := range s.Counters {
		comma := ","
		if i == 0 {
			comma = ""
		}
		if _, err := fmt.Fprintf(w, "%s\n  %s: %d", comma, jsonStr(c.Name), c.Value); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n },\n \"gauges\": {"); err != nil {
		return err
	}
	for i, g := range s.Gauges {
		comma := ","
		if i == 0 {
			comma = ""
		}
		if _, err := fmt.Fprintf(w, "%s\n  %s: %d", comma, jsonStr(g.Name), g.Value); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n },\n \"histograms\": {"); err != nil {
		return err
	}
	for i := range s.Hists {
		h := &s.Hists[i]
		comma := ","
		if i == 0 {
			comma = ""
		}
		if _, err := fmt.Fprintf(w,
			"%s\n  %s: {\"count\": %d, \"sum_ns\": %d, \"min_ns\": %d, \"max_ns\": %d, "+
				"\"p50_ns\": %d, \"p90_ns\": %d, \"p99_ns\": %d, \"buckets\": [",
			comma, jsonStr(h.Name), h.Count, int64(h.Sum), int64(h.Min), int64(h.Max),
			int64(h.quantile(0.50)), int64(h.quantile(0.90)), int64(h.quantile(0.99))); err != nil {
			return err
		}
		first := true
		for b, n := range h.Buckets {
			if n == 0 {
				continue
			}
			sep := ", "
			if first {
				sep = ""
				first = false
			}
			if _, err := fmt.Fprintf(w, "%s[%d, %d]", sep, b, n); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "]}"); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n }\n}\n")
	return err
}
