package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"itcfs/internal/sim"
)

// fakeClock drives a tracer without a kernel.
type fakeClock struct{ t sim.Time }

func (c *fakeClock) now() sim.Time          { return c.t }
func (c *fakeClock) advance(d sim.Duration) { c.t = c.t.Add(d) }

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	s := tr.Begin(nil, "op", "node")
	if s != nil {
		t.Fatalf("nil tracer produced a span")
	}
	// Every method must be callable on the nil span.
	s.SetInt("k", 1)
	s.SetStr("k", "v")
	s.End()
	if got := s.Context(); got != (SpanContext{}) {
		t.Fatalf("nil span context = %+v", got)
	}
	tr.SetSample(10)
	if tr.Spans() != nil {
		t.Fatalf("nil tracer has spans")
	}
}

func TestSpanNestingAndAmbientStack(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.now)
	k := sim.NewKernel()
	k.Spawn("p", func(p *sim.Proc) {
		root := tr.Begin(p, "venus.open", "ws0")
		clk.advance(time.Millisecond)
		child := tr.Begin(p, "rpc.call", "ws0")
		if Current(p) != child {
			t.Errorf("ambient span is not the child")
		}
		if child.Context().Trace != root.Context().Trace {
			t.Errorf("child joined a different trace")
		}
		if child.Parent() != root.Context().Span {
			t.Errorf("child parent = %d, want %d", child.Parent(), root.Context().Span)
		}
		clk.advance(2 * time.Millisecond)
		child.End()
		if Current(p) != root {
			t.Errorf("End did not restore the parent as ambient")
		}
		root.End()
		if Current(p) != nil {
			t.Errorf("End did not clear the ambient span")
		}
	})
	k.Run()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name() != "venus.open" || spans[1].Name() != "rpc.call" {
		t.Fatalf("span order: %s, %s", spans[0].Name(), spans[1].Name())
	}
	if d := spans[1].Duration(); d != 2*time.Millisecond {
		t.Fatalf("child duration = %v", d)
	}
}

func TestSamplingSuppressesWholeOperation(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.now)
	tr.SetSample(2) // every other root
	k := sim.NewKernel()
	k.Spawn("p", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			root := tr.Begin(p, "op", "ws0")
			child := tr.Begin(p, "rpc.call", "ws0")
			sampled := i%2 == 0
			if got := child.Context() != (SpanContext{}); got != sampled {
				t.Errorf("root %d: child traced=%v, want %v", i, got, sampled)
			}
			child.End()
			if Current(p) != root {
				t.Errorf("root %d: suppressed child broke the ambient stack", i)
			}
			root.End()
		}
	})
	k.Run()
	if n := len(tr.Spans()); n != 4 {
		t.Fatalf("recorded %d spans, want 4 (2 sampled roots x 2)", n)
	}
}

func TestRemotePropagation(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.now)
	k := sim.NewKernel()
	k.Spawn("p", func(p *sim.Proc) {
		call := tr.Begin(p, "rpc.call", "ws0")
		serve := tr.BeginRemote(nil, call.Context(), "rpc.serve", "srv")
		if serve.Context().Trace != call.Context().Trace {
			t.Errorf("server span left the trace")
		}
		if serve.Parent() != call.Context().Span {
			t.Errorf("server span parent = %d", serve.Parent())
		}
		serve.End()
		call.End()

		// Zero context means untraced caller: suppressed on the sim side...
		sup := tr.BeginRemote(nil, SpanContext{}, "rpc.serve", "srv")
		if sup == nil || sup.Context() != (SpanContext{}) {
			t.Errorf("zero-context BeginRemote should be suppressed, got %+v", sup.Context())
		}
		sup.End()
		// ...but a fresh root on a real transport.
		rem := tr.StartRemote(SpanContext{}, "rpc.serve", "srv")
		if rem.Context() == (SpanContext{}) {
			t.Errorf("StartRemote with zero context should start a root")
		}
		rem.End()
	})
	k.Run()
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != time.Microsecond || h.Max() != time.Millisecond {
		t.Fatalf("min=%v max=%v", h.Min(), h.Max())
	}
	// Log buckets: quantiles are within a factor of two of the true value.
	for _, c := range []struct {
		q    float64
		want time.Duration
	}{{0.50, 500 * time.Microsecond}, {0.90, 900 * time.Microsecond}, {0.99, 990 * time.Microsecond}} {
		got := h.Quantile(c.q)
		if got < c.want/2 || got > c.want*2 {
			t.Errorf("p%v = %v, want within 2x of %v", c.q*100, got, c.want)
		}
	}
	if r.FindHistogram("absent") != nil {
		t.Fatalf("FindHistogram created a histogram")
	}
	// Nil registry and instruments are inert.
	var nr *Registry
	nr.Counter("c").Inc()
	nr.Gauge("g").Set(1)
	nr.Histogram("h").Observe(time.Second)
	if nr.FindHistogram("h") != nil {
		t.Fatalf("nil registry returned a histogram")
	}
}

func TestExportChromeIsValidJSONAndDeterministic(t *testing.T) {
	run := func() []byte {
		clk := &fakeClock{}
		tr := New(clk.now)
		k := sim.NewKernel()
		k.Spawn("p", func(p *sim.Proc) {
			root := tr.Begin(p, "venus.open", "ws0")
			root.SetStr("path", "/vice/usr/f")
			clk.advance(time.Millisecond)
			call := tr.Begin(p, "rpc.call", "ws0")
			call.SetInt(AttrServerNs, 5)
			serve := tr.BeginRemote(nil, call.Context(), "rpc.serve", "srv")
			clk.advance(time.Millisecond)
			serve.End()
			call.End()
			root.End()
		})
		k.Run()
		var buf bytes.Buffer
		if err := tr.ExportChrome(&buf); err != nil {
			t.Fatalf("export: %v", err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("identical runs exported different traces:\n%s\n---\n%s", a, b)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, a)
	}
	// 2 process_name metadata events + 3 spans.
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("got %d events, want 5:\n%s", len(doc.TraceEvents), a)
	}
}

func TestAnalyzeComponentsSumToTotal(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.now)
	k := sim.NewKernel()
	k.Spawn("p", func(p *sim.Proc) {
		root := tr.Begin(p, "venus.open", "ws0")
		clk.advance(time.Millisecond) // 1ms client work before the call
		call := tr.Begin(p, "rpc.call", "ws0")
		clk.advance(7 * time.Millisecond)
		call.SetInt(AttrNetQueueNs, int64(time.Millisecond))
		call.SetInt(AttrNetSerialNs, int64(2*time.Millisecond))
		call.SetInt(AttrNetPropNs, int64(time.Millisecond))
		call.SetInt(AttrServerNs, int64(3*time.Millisecond))
		call.End()
		clk.advance(time.Millisecond) // 1ms client work after
		root.End()
	})
	k.Run()
	rows := Analyze(tr.Spans())
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1: %+v", len(rows), rows)
	}
	b := rows[0]
	if b.Name != "venus.open" || b.Count != 1 {
		t.Fatalf("row = %+v", b)
	}
	if b.Total != 9*time.Millisecond {
		t.Fatalf("total = %v", b.Total)
	}
	if b.Client != 2*time.Millisecond || b.Server != 3*time.Millisecond ||
		b.NetQueue != time.Millisecond || b.NetSerial != 2*time.Millisecond || b.NetProp != time.Millisecond {
		t.Fatalf("breakdown = %+v", b)
	}
	if sum := b.Client + b.Server + b.Net(); sum != b.Total {
		t.Fatalf("components sum to %v, total %v", sum, b.Total)
	}
	var buf bytes.Buffer
	WriteBreakdown(&buf, rows)
	if buf.Len() == 0 {
		t.Fatalf("empty breakdown table")
	}
}
