package volume

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"itcfs/internal/prot"
	"itcfs/internal/proto"
)

func newVol() *Volume {
	var t int64
	acl := prot.NewACL()
	acl.Grant("satya", prot.RightsAll)
	return New(1, "user.satya", acl, 0, "satya", func() int64 { t++; return t })
}

func mkFile(t *testing.T, v *Volume, dir proto.FID, name, contents string) proto.FID {
	t.Helper()
	vn, err := v.Create(dir, name, 0o644, "satya")
	if err != nil {
		t.Fatalf("Create(%s): %v", name, err)
	}
	if contents != "" {
		if _, err := v.WriteData(vn.Status.FID, []byte(contents)); err != nil {
			t.Fatalf("WriteData(%s): %v", name, err)
		}
	}
	return vn.Status.FID
}

func mkDir(t *testing.T, v *Volume, dir proto.FID, name string) proto.FID {
	t.Helper()
	vn, err := v.MakeDir(dir, name, 0o755, "satya")
	if err != nil {
		t.Fatalf("MakeDir(%s): %v", name, err)
	}
	return vn.Status.FID
}

func TestCreateWriteRead(t *testing.T) {
	v := newVol()
	fid := mkFile(t, v, v.Root(), "paper.mss", "scale is the dominant design influence")
	data, vn, err := v.ReadData(fid)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "scale is the dominant design influence" {
		t.Fatalf("data = %q", data)
	}
	if vn.Status.Size != int64(len(data)) || vn.Status.Type != proto.TypeFile {
		t.Fatalf("status = %+v", vn.Status)
	}
	if v.Used() != int64(len(data)) {
		t.Fatalf("Used = %d", v.Used())
	}
}

func TestVersionAdvancesOnWrite(t *testing.T) {
	v := newVol()
	fid := mkFile(t, v, v.Root(), "f", "v1")
	_, vn, _ := v.ReadData(fid)
	ver1 := vn.Status.Version
	if _, err := v.WriteData(fid, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	_, vn, _ = v.ReadData(fid)
	if vn.Status.Version <= ver1 {
		t.Fatalf("version %d -> %d", ver1, vn.Status.Version)
	}
}

func TestLookupAndList(t *testing.T) {
	v := newVol()
	mkFile(t, v, v.Root(), "b", "")
	mkFile(t, v, v.Root(), "a", "")
	sub := mkDir(t, v, v.Root(), "src")
	mkFile(t, v, sub, "main.c", "")
	entries, err := v.List(v.Root())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 || entries[0].Name != "a" || entries[2].Name != "src" {
		t.Fatalf("entries = %+v", entries)
	}
	de, err := v.Lookup(v.Root(), "src")
	if err != nil || de.Type != proto.TypeDir {
		t.Fatalf("Lookup: %+v %v", de, err)
	}
	if _, err := v.Lookup(v.Root(), "nope"); !errors.Is(err, proto.ErrNoEnt) {
		t.Fatalf("err = %v", err)
	}
}

func TestDirDataDecodes(t *testing.T) {
	v := newVol()
	mkFile(t, v, v.Root(), "x", "")
	data, err := v.DirData(v.Root())
	if err != nil {
		t.Fatal(err)
	}
	entries, err := proto.DecodeDirEntries(data)
	if err != nil || len(entries) != 1 || entries[0].Name != "x" {
		t.Fatalf("decoded = %+v, %v", entries, err)
	}
}

func TestStaleFIDRejected(t *testing.T) {
	v := newVol()
	fid := mkFile(t, v, v.Root(), "f", "data")
	if err := v.Remove(v.Root(), "f"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := v.ReadData(fid); !errors.Is(err, proto.ErrStale) {
		t.Fatalf("err = %v, want ErrStale", err)
	}
	// A new file reusing names gets a fresh Uniq; the old FID stays stale.
	fid2 := mkFile(t, v, v.Root(), "f", "new")
	if fid2 == fid {
		t.Fatal("FID reused")
	}
}

func TestQuotaEnforced(t *testing.T) {
	v := newVol()
	v.SetQuota(100)
	fid := mkFile(t, v, v.Root(), "f", "")
	if _, err := v.WriteData(fid, make([]byte, 100)); err != nil {
		t.Fatalf("write at quota: %v", err)
	}
	if _, err := v.WriteData(fid, make([]byte, 101)); !errors.Is(err, proto.ErrQuota) {
		t.Fatalf("err = %v, want ErrQuota", err)
	}
	// Shrinking is always allowed.
	if _, err := v.WriteData(fid, make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if v.Used() != 10 {
		t.Fatalf("Used = %d", v.Used())
	}
}

func TestOfflineRefusesEverything(t *testing.T) {
	v := newVol()
	fid := mkFile(t, v, v.Root(), "f", "x")
	v.SetOnline(false)
	if _, _, err := v.ReadData(fid); !errors.Is(err, proto.ErrOffline) {
		t.Fatalf("read err = %v", err)
	}
	if _, err := v.Create(v.Root(), "g", 0o644, "u"); !errors.Is(err, proto.ErrOffline) {
		t.Fatalf("create err = %v", err)
	}
	v.SetOnline(true)
	if _, _, err := v.ReadData(fid); err != nil {
		t.Fatalf("read after online: %v", err)
	}
}

func TestRemoveDirSemantics(t *testing.T) {
	v := newVol()
	sub := mkDir(t, v, v.Root(), "d")
	mkFile(t, v, sub, "f", "")
	if err := v.RemoveDir(v.Root(), "d"); !errors.Is(err, proto.ErrNotEmpty) {
		t.Fatalf("err = %v", err)
	}
	if err := v.Remove(v.Root(), "d"); !errors.Is(err, proto.ErrIsDir) {
		t.Fatalf("err = %v", err)
	}
	if err := v.Remove(sub, "f"); err != nil {
		t.Fatal(err)
	}
	if err := v.RemoveDir(v.Root(), "d"); err != nil {
		t.Fatal(err)
	}
}

func TestRenameKeepsFID(t *testing.T) {
	v := newVol()
	fid := mkFile(t, v, v.Root(), "old", "data")
	if err := v.Rename(v.Root(), "old", v.Root(), "new"); err != nil {
		t.Fatal(err)
	}
	de, err := v.Lookup(v.Root(), "new")
	if err != nil || de.FID != fid {
		t.Fatalf("FID changed across rename: %+v %v", de, err)
	}
	data, _, err := v.ReadData(fid)
	if err != nil || string(data) != "data" {
		t.Fatalf("data after rename: %q %v", data, err)
	}
}

func TestRenameDirectorySubtree(t *testing.T) {
	v := newVol()
	a := mkDir(t, v, v.Root(), "a")
	b := mkDir(t, v, v.Root(), "b")
	sub := mkDir(t, v, a, "sub")
	f := mkFile(t, v, sub, "f", "deep")
	if err := v.Rename(v.Root(), "a", b, "moved"); err != nil {
		t.Fatal(err)
	}
	// The whole subtree is reachable via b/moved/sub/f with unchanged FIDs.
	de, err := v.Lookup(b, "moved")
	if err != nil || de.FID != a {
		t.Fatal("dir FID changed")
	}
	data, _, err := v.ReadData(f)
	if err != nil || string(data) != "deep" {
		t.Fatalf("deep file: %q %v", data, err)
	}
}

func TestRenameUnderSelfRefused(t *testing.T) {
	v := newVol()
	a := mkDir(t, v, v.Root(), "a")
	b := mkDir(t, v, a, "b")
	if err := v.Rename(v.Root(), "a", b, "a"); !errors.Is(err, proto.ErrBadRequest) {
		t.Fatalf("err = %v", err)
	}
}

func TestRenameReplacesFile(t *testing.T) {
	v := newVol()
	mkFile(t, v, v.Root(), "src", "S")
	mkFile(t, v, v.Root(), "dst", "D")
	if err := v.Rename(v.Root(), "src", v.Root(), "dst"); err != nil {
		t.Fatal(err)
	}
	de, _ := v.Lookup(v.Root(), "dst")
	data, _, _ := v.ReadData(de.FID)
	if string(data) != "S" {
		t.Fatalf("dst = %q", data)
	}
	if _, err := v.Lookup(v.Root(), "src"); !errors.Is(err, proto.ErrNoEnt) {
		t.Fatal("src still present")
	}
}

func TestSymlinkAndLink(t *testing.T) {
	v := newVol()
	fid := mkFile(t, v, v.Root(), "f", "shared")
	ln, err := v.Symlink(v.Root(), "sym", "/vice/usr/f")
	if err != nil {
		t.Fatal(err)
	}
	if ln.Status.Target != "/vice/usr/f" || ln.Status.Type != proto.TypeSymlink {
		t.Fatalf("symlink status = %+v", ln.Status)
	}
	if err := v.Link(v.Root(), "hard", fid); err != nil {
		t.Fatal(err)
	}
	de, _ := v.Lookup(v.Root(), "hard")
	if de.FID != fid {
		t.Fatal("hard link FID differs")
	}
	vn, _ := v.Get(fid)
	if vn.Status.Links != 2 {
		t.Fatalf("links = %d", vn.Status.Links)
	}
	// Removing one name keeps the data.
	if err := v.Remove(v.Root(), "f"); err != nil {
		t.Fatal(err)
	}
	data, _, err := v.ReadData(fid)
	if err != nil || string(data) != "shared" {
		t.Fatalf("after unlink: %q %v", data, err)
	}
	if v.Used() != int64(len("shared")) {
		t.Fatalf("Used = %d", v.Used())
	}
}

func TestMakeDirInheritsACL(t *testing.T) {
	v := newVol()
	acl := prot.NewACL()
	acl.Grant("faculty", prot.RightRead|prot.RightLookup)
	if err := v.SetACL(v.Root(), acl); err != nil {
		t.Fatal(err)
	}
	sub := mkDir(t, v, v.Root(), "sub")
	got, err := v.GetACL(sub)
	if err != nil {
		t.Fatal(err)
	}
	if got.Positive["faculty"] != prot.RightRead|prot.RightLookup {
		t.Fatalf("inherited ACL = %+v", got)
	}
	// And it is a copy, not an alias.
	acl.Grant("faculty", prot.RightsAll)
	got, _ = v.GetACL(sub)
	if got.Positive["faculty"] == prot.RightsAll {
		t.Fatal("child ACL aliases parent")
	}
}

func TestCloneIsFrozenAndCheap(t *testing.T) {
	v := newVol()
	fid := mkFile(t, v, v.Root(), "binary", "version-1")
	clone := v.Clone(100, "user.satya.readonly")
	if !clone.ReadOnly() {
		t.Fatal("clone not read-only")
	}
	// Clone refuses writes.
	cfid := proto.FID{Volume: 100, Vnode: fid.Vnode, Uniq: fid.Uniq}
	if _, err := clone.WriteData(cfid, []byte("x")); !errors.Is(err, proto.ErrReadOnly) {
		t.Fatalf("err = %v, want ErrReadOnly", err)
	}
	// Writing the parent does not disturb the clone (copy-on-write).
	if _, err := v.WriteData(fid, []byte("version-2")); err != nil {
		t.Fatal(err)
	}
	data, _, err := clone.ReadData(cfid)
	if err != nil || string(data) != "version-1" {
		t.Fatalf("clone data = %q %v", data, err)
	}
	// And the parent really changed.
	data, _, _ = v.ReadData(fid)
	if string(data) != "version-2" {
		t.Fatalf("parent data = %q", data)
	}
}

func TestCloneSharesDataSlices(t *testing.T) {
	v := newVol()
	fid := mkFile(t, v, v.Root(), "big", string(bytes.Repeat([]byte("x"), 1024)))
	clone := v.Clone(100, "ro")
	vn, _ := v.Get(fid)
	cvn, _ := clone.Get(proto.FID{Volume: 100, Vnode: fid.Vnode, Uniq: fid.Uniq})
	if &vn.Data[0] != &cvn.Data[0] {
		t.Fatal("clone copied file data; expected shared slice")
	}
}

func TestSerializeDeserializeRoundTrip(t *testing.T) {
	v := newVol()
	sub := mkDir(t, v, v.Root(), "src")
	mkFile(t, v, sub, "main.c", "int main(){}")
	v.Symlink(v.Root(), "lnk", "/vice/elsewhere")
	v.SetQuota(1 << 20)

	got, err := Deserialize(v.Serialize(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID() != v.ID() || got.Name() != v.Name() || got.Quota() != v.Quota() || got.Used() != v.Used() {
		t.Fatalf("metadata mismatch: %+v", got)
	}
	de, err := got.Lookup(got.Root(), "src")
	if err != nil {
		t.Fatal(err)
	}
	fde, err := got.Lookup(de.FID, "main.c")
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := got.ReadData(fde.FID)
	if err != nil || string(data) != "int main(){}" {
		t.Fatalf("data = %q %v", data, err)
	}
	if _, err := Deserialize([]byte("garbage"), nil); err == nil {
		t.Fatal("garbage image accepted")
	}
}

func TestSalvageRepairsCorruption(t *testing.T) {
	v := newVol()
	sub := mkDir(t, v, v.Root(), "d")
	mkFile(t, v, sub, "f", "contents")
	usedBefore := v.Used()
	countBefore := v.VnodeCount()

	v.CorruptForTest()
	rep := v.Salvage()
	if rep.OrphansRemoved != 1 {
		t.Errorf("OrphansRemoved = %d, want 1", rep.OrphansRemoved)
	}
	if rep.DanglingEntries != 1 {
		t.Errorf("DanglingEntries = %d, want 1", rep.DanglingEntries)
	}
	if rep.LinksFixed == 0 {
		t.Error("LinksFixed = 0, want >0")
	}
	if !rep.BytesCorrected {
		t.Error("BytesCorrected = false")
	}
	if v.Used() != usedBefore {
		t.Errorf("Used = %d, want %d", v.Used(), usedBefore)
	}
	if v.VnodeCount() != countBefore {
		t.Errorf("VnodeCount = %d, want %d", v.VnodeCount(), countBefore)
	}
	// A second salvage finds nothing.
	rep = v.Salvage()
	if rep != (SalvageReport{}) {
		t.Errorf("second salvage repaired: %+v", rep)
	}
}

func TestSalvageCleanVolumeIsNoop(t *testing.T) {
	v := newVol()
	sub := mkDir(t, v, v.Root(), "d")
	mkFile(t, v, sub, "f", "x")
	fid := mkFile(t, v, v.Root(), "g", "y")
	v.Link(sub, "g2", fid)
	if rep := v.Salvage(); rep != (SalvageReport{}) {
		t.Fatalf("clean salvage repaired: %+v", rep)
	}
}

// Property: Used always equals the sum of reachable file sizes under random
// create/write/remove sequences.
func TestQuickUsedConsistent(t *testing.T) {
	f := func(ops []struct {
		N    uint8
		Size uint16
		Del  bool
	}) bool {
		v := newVol()
		for _, op := range ops {
			name := fmt.Sprintf("f%d", op.N%8)
			if op.Del {
				v.Remove(v.Root(), name)
				continue
			}
			de, err := v.Lookup(v.Root(), name)
			var fid proto.FID
			if err != nil {
				vn, err := v.Create(v.Root(), name, 0o644, "u")
				if err != nil {
					return false
				}
				fid = vn.Status.FID
			} else {
				fid = de.FID
			}
			if _, err := v.WriteData(fid, make([]byte, op.Size)); err != nil {
				return false
			}
		}
		var sum int64
		entries, _ := v.List(v.Root())
		for _, de := range entries {
			vn, err := v.Get(de.FID)
			if err == nil && vn.Status.Type == proto.TypeFile {
				sum += vn.Status.Size
			}
		}
		return sum == v.Used()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: serialize/deserialize is the identity on the serialized form.
func TestQuickSerializeStable(t *testing.T) {
	f := func(names []string, contents []byte) bool {
		v := newVol()
		for i, n := range names {
			if n == "" || len(n) > 64 {
				continue
			}
			name := fmt.Sprintf("n%d", i)
			vn, err := v.Create(v.Root(), name, 0o644, "u")
			if err != nil {
				return false
			}
			if _, err := v.WriteData(vn.Status.FID, contents); err != nil {
				return false
			}
		}
		img := v.Serialize()
		v2, err := Deserialize(img, nil)
		if err != nil {
			return false
		}
		return bytes.Equal(v2.Serialize(), img)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
